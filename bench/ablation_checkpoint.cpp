// Checkpoint/restart ablation: what does coordinated checkpointing cost when
// nothing fails, and what does it buy when a node crashes mid-run? Sweeps the
// checkpoint interval (0 = disabled) over a fault-free run and over a node
// crash, reporting checkpoint I/O volume, recovery outcome, and the lost-work
// accounting. The workload is the two-node 2x LU.W gang; every run is
// deterministic, so a row is reproducible from the config alone.
//
// Usage: ablation_checkpoint [--smoke]
//   --smoke   scaled-down iterations and an earlier crash (seconds; used by
//             CI). The full sweep runs the unscaled gang.

#include <cstdio>
#include <string>
#include <string_view>

#include "harness/figures.hpp"
#include "harness/runner.hpp"

namespace {

apsim::ExperimentConfig base_config(bool smoke) {
  apsim::ExperimentConfig config;
  config.app = apsim::NpbApp::kLU;
  config.cls = apsim::NpbClass::kW;
  config.nodes = 2;
  config.instances = 2;
  config.node_memory_mb = 64.0;
  config.usable_memory_mb = 22.0;
  config.quantum = 4 * apsim::kSecond;
  config.iterations_scale = smoke ? 0.2 : 1.0;
  return config;
}

std::string slowdown(apsim::SimTime makespan, apsim::SimTime reference) {
  if (makespan <= 0) return "failed";
  return apsim::Table::fmt(
      static_cast<double>(makespan) / static_cast<double>(reference), 2) + "x";
}

std::string mb(std::uint64_t bytes) {
  return apsim::Table::fmt(static_cast<double>(bytes) / (1024.0 * 1024.0), 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace apsim;

  const bool smoke = argc > 1 && std::string_view(argv[1]) == "--smoke";
  const std::vector<double> intervals =
      smoke ? std::vector<double>{0, 2, 4, 8} : std::vector<double>{0, 5, 10, 20};
  const double crash_s = smoke ? 6.0 : 60.0;

  std::printf("Checkpoint/restart ablation%s: 2x LU.W gang on 2 nodes, "
              "22 MB usable, q=4s\n"
              "(interval 0 = checkpointing disabled; crash kills node 1 at "
              "t=%.0fs)\n\n",
              smoke ? " (smoke)" : "", crash_s);

  const RunOutcome clean = run_gang(base_config(smoke));

  std::printf("Fault-free: checkpoint overhead vs interval\n");
  Table overhead({"interval (s)", "makespan (s)", "slowdown", "checkpoints",
                  "ckpt MB", "disk writes"});
  overhead.add_row({"off", Table::fmt(to_seconds(clean.makespan), 1), "1.00x",
                    "0", "0.0", std::to_string(clean.disk_blocks_written)});
  for (double interval : intervals) {
    if (interval == 0) continue;
    ExperimentConfig config = base_config(smoke);
    config.checkpoint_interval =
        static_cast<SimDuration>(interval * static_cast<double>(kSecond));
    const RunOutcome out = run_gang(config);
    overhead.add_row({Table::fmt(interval, 0),
                      Table::fmt(to_seconds(out.makespan), 1),
                      slowdown(out.makespan, clean.makespan),
                      std::to_string(out.checkpoints_taken),
                      mb(out.bytes_checkpointed),
                      std::to_string(out.disk_blocks_written)});
  }
  std::printf("%s\n", overhead.to_string().c_str());

  std::printf("Node crash at t=%.0fs: recovery vs interval\n", crash_s);
  Table crash({"interval (s)", "makespan (s)", "jobs failed", "jobs recovered",
               "pages staged", "lost work (ms)"});
  for (double interval : intervals) {
    ExperimentConfig config = base_config(smoke);
    config.checkpoint_interval =
        static_cast<SimDuration>(interval * static_cast<double>(kSecond));
    config.faults.add(FaultSpec::parse("node_crash node=1 at_s=" +
                                       Table::fmt(crash_s, 0)));
    const RunOutcome out = run_gang(config);
    crash.add_row({interval == 0 ? "off" : Table::fmt(interval, 0),
                   out.makespan > 0 ? Table::fmt(to_seconds(out.makespan), 1)
                                    : "failed",
                   std::to_string(out.jobs_failed),
                   std::to_string(out.jobs_recovered),
                   std::to_string(out.pages_staged),
                   Table::fmt(out.lost_work_ms, 1)});
  }
  std::printf("%s", crash.to_string().c_str());
  return 0;
}
