// Regenerates the Section 1 motivation data point (Moreira et al.): three
// 45 MB jobs gang-scheduled on a 128 MB vs a 256 MB machine; the paper
// reports ~3.5x slower average completion on the small machine.

#include <iostream>

#include "harness/figures.hpp"

int main() {
  const auto figure = apsim::run_motivation();
  apsim::print_figure(std::cout, figure);
  return 0;
}
