// Figure 5 companion: what actually happens inside one gang switch, per
// policy set. Runs a two-job single-node configuration with the switch-phase
// tracer enabled, then prints for each policy set (orig, so, so/ao,
// so/ao/ai/bg) an annotated timeline of a representative mid-run switch —
// stop_bgwrite / sigstop / page_out / page_in / sigcont with their start
// offsets and durations — followed by the per-phase latency summary table
// over the whole run. The timeline makes the paper's mechanism visible: the
// adaptive policies move paging out of the incoming job's demand-fault path
// and into the bracketed page_out/page_in phases.
//
// Usage: fig5_switch_timeline [--smoke] [json_prefix]
//   --smoke       small IS/LU.W configuration (seconds; used by CI)
//   json_prefix   also write Chrome trace_event JSON per policy to
//                 <prefix><policy>.json (open in chrome://tracing/Perfetto)

#include <cstdio>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "harness/runner.hpp"
#include "metrics/table.hpp"
#include "metrics/tracer.hpp"

namespace {

using namespace apsim;

ExperimentConfig base_config(bool smoke) {
  ExperimentConfig config;
  config.app = NpbApp::kLU;
  config.nodes = 1;
  config.instances = 2;
  if (smoke) {
    config.cls = NpbClass::kW;
    config.node_memory_mb = 64.0;
    config.usable_memory_mb = 22.0;
    config.quantum = 4 * kSecond;
    config.iterations_scale = 0.2;
  } else {
    config.cls = NpbClass::kB;
    config.usable_memory_mb = 230.0;
    config.quantum = 3 * kMinute;
  }
  return config;
}

/// One line of the reconstructed timeline.
struct Phase {
  SimTime begin = 0;
  SimTime end = -1;  ///< -1: still open at the switch span's end
  std::string name;
};

/// Pull the phases of one representative switch out of the event stream:
/// the median "switch" span on node 0's scheduler track, plus every span
/// that starts inside it on the same track.
std::vector<Phase> dissect_switch(const Tracer& tracer, SimTime* t0,
                                  SimTime* t1) {
  const auto& events = tracer.events();
  // Collect the [begin, end] windows of all completed "switch" spans.
  std::map<std::uint64_t, std::size_t> open;
  std::vector<std::pair<SimTime, SimTime>> switches;
  for (const TraceEvent& ev : events) {
    if (ev.track != trace_track(0, kTrackSched)) continue;
    if (tracer.string(ev.cat) != "switch" ||
        tracer.string(ev.name) != "switch") {
      continue;
    }
    if (ev.kind == TraceEventKind::kAsyncBegin) {
      open[ev.id] = switches.size();
      switches.emplace_back(ev.ts, -1);
    } else if (ev.kind == TraceEventKind::kAsyncEnd) {
      auto it = open.find(ev.id);
      if (it != open.end()) switches[it->second].second = ev.ts;
    }
  }
  std::vector<Phase> phases;
  // Prefer a mid-run switch: the first ones page little (cold start) and
  // the last may be truncated by job completion.
  for (std::size_t pick = switches.size() / 2; pick < switches.size();
       ++pick) {
    if (switches[pick].second < 0) continue;
    *t0 = switches[pick].first;
    *t1 = switches[pick].second;
    std::map<std::uint64_t, std::size_t> open_async;
    std::vector<std::size_t> sync_stack;
    for (const TraceEvent& ev : events) {
      if (ev.track != trace_track(0, kTrackSched)) continue;
      if (ev.ts < *t0 || ev.ts > *t1) continue;
      const std::string_view name = tracer.string(ev.name);
      if (name == "switch") continue;  // the container itself
      switch (ev.kind) {
        case TraceEventKind::kBegin:
          sync_stack.push_back(phases.size());
          phases.push_back({ev.ts, -1, std::string(name)});
          break;
        case TraceEventKind::kEnd:
          if (!sync_stack.empty()) {
            phases[sync_stack.back()].end = ev.ts;
            sync_stack.pop_back();
          }
          break;
        case TraceEventKind::kAsyncBegin:
          open_async[ev.id] = phases.size();
          phases.push_back({ev.ts, -1, std::string(name)});
          break;
        case TraceEventKind::kAsyncEnd: {
          auto it = open_async.find(ev.id);
          if (it != open_async.end()) phases[it->second].end = ev.ts;
          break;
        }
        case TraceEventKind::kInstant:
          phases.push_back({ev.ts, ev.ts, std::string(name) + " (instant)"});
          break;
        case TraceEventKind::kCounter:
          break;
      }
    }
    if (!phases.empty()) break;
    phases.clear();
  }
  return phases;
}

void print_timeline(const RunOutcome& out) {
  SimTime t0 = 0;
  SimTime t1 = 0;
  const std::vector<Phase> phases = dissect_switch(*out.trace, &t0, &t1);
  if (phases.empty()) {
    std::printf("  (no completed switch found in the trace)\n\n");
    return;
  }
  std::printf("  representative switch at t=%.3fs, total %.3fms:\n",
              to_seconds(t0), to_seconds(t1 - t0) * 1e3);
  for (const Phase& phase : phases) {
    const double off_ms = to_seconds(phase.begin - t0) * 1e3;
    if (phase.end >= 0) {
      std::printf("    +%9.3fms  %-14s %10.3fms\n", off_ms,
                  phase.name.c_str(), to_seconds(phase.end - phase.begin) * 1e3);
    } else {
      std::printf("    +%9.3fms  %-14s (open past the switch span)\n", off_ms,
                  phase.name.c_str());
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_prefix;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      json_prefix = argv[i];
    }
  }

  const struct {
    const char* name;
    PolicySet set;
  } policies[] = {{"orig", PolicySet::original()},
                  {"so", PolicySet::parse("so")},
                  {"so/ao", PolicySet::parse("so/ao")},
                  {"so/ao/ai/bg", PolicySet::all()}};

  const ExperimentConfig base = base_config(smoke);
  std::printf("Switch-phase timelines: 2x %s.%s on one node, %.0f MB usable, "
              "q=%.0fs%s\n\n",
              std::string(to_string(base.app)).c_str(),
              std::string(to_string(base.cls)).c_str(), base.usable_memory_mb,
              to_seconds(base.quantum), smoke ? " (smoke)" : "");

  for (const auto& policy : policies) {
    ExperimentConfig config = base;
    config.policy = policy.set;
    if (json_prefix.empty()) {
      config.trace_json.assign(1, '-');  // collect in memory, write no file
    } else {
      std::string path = json_prefix;
      for (const char* c = policy.name; *c != '\0'; ++c) {
        path += *c == '/' ? '-' : *c;
      }
      path += ".json";
      config.trace_json = std::move(path);
    }
    const RunOutcome out = run_gang(config);
    std::printf("policy %s: makespan %.1fs, %d switches, %llu pages out / "
                "%llu in\n",
                policy.name, to_seconds(out.makespan), out.switches,
                static_cast<unsigned long long>(out.pages_swapped_out),
                static_cast<unsigned long long>(out.pages_swapped_in));
    if (out.trace == nullptr) {
      std::printf("  (tracing unavailable)\n\n");
      continue;
    }
    print_timeline(out);
    std::printf("%s\n", switch_phase_table(out).to_string().c_str());
    if (!json_prefix.empty()) {
      std::printf("wrote %s\n\n", config.trace_json.c_str());
    }
  }
  return 0;
}
