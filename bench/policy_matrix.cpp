// Scheduler-policy zoo under open arrivals: every registered policy
// (matrix, admission, backfill, gang-edf, dfrs) runs the same open job
// streams — a saturated Poisson arrival process, a diurnal day/night
// stream, and a Poisson stream with straggler ranks — and the bench
// reports makespan plus mean/p99 bounded slowdown per (policy x arrival)
// cell. Every cell runs twice and the pair must be bit-identical, so the
// process exits nonzero only on a determinism mismatch, never on a
// performance regression. Results go to BENCH_policy.json.
//
// Usage: policy_matrix [--smoke] [--out PATH]
//   --smoke   fewer/shorter jobs (used by CI)

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "gang/policy_registry.hpp"
#include "harness/open_arrival.hpp"
#include "metrics/table.hpp"

namespace {

using namespace apsim;

struct Scenario {
  const char* name;
  ExperimentConfig config;
};

std::vector<Scenario> scenarios(bool smoke) {
  // The saturated base case: two nodes, fig7-style memory pressure (22 MB
  // usable), jobs whose joint footprints overcommit a node, and arrivals
  // fast enough that work queues up. Time-sharing policies pay switch
  // paging here; run-to-completion and memory-aware ones should not.
  ExperimentConfig base;
  base.nodes = 2;
  base.instances = smoke ? 10 : 24;
  base.node_memory_mb = 64.0;
  base.usable_memory_mb = 22.0;
  base.quantum = kSecond / 2;
  base.arrival_process = "poisson";
  base.arrival_mean_s = smoke ? 0.5 : 1.0;
  base.open_max_width = 2;
  base.open_min_pages = 1536;
  base.open_max_pages = 3584;
  base.open_min_iterations = smoke ? 15 : 30;
  base.open_max_iterations = smoke ? 40 : 80;
  base.num_tenants = 2;
  base.deadline_slack = 3.0;  // gang-edf has deadlines to order by
  base.horizon = 3600 * kSecond;

  std::vector<Scenario> out;
  out.push_back({"poisson-saturated", base});

  ExperimentConfig diurnal = base;
  diurnal.arrival_process = "diurnal";
  diurnal.arrival_mean_s = smoke ? 0.4 : 0.8;
  diurnal.diurnal_period_s = 60.0;
  diurnal.diurnal_low_frac = 0.1;
  out.push_back({"diurnal", diurnal});

  ExperimentConfig straggler = base;
  straggler.straggler_fraction = 0.25;
  straggler.straggler_slowdown = 4.0;
  out.push_back({"poisson-stragglers", straggler});

  return out;
}

struct Row {
  std::string scenario;
  std::string policy;
  double makespan_s = 0.0;
  double mean_slowdown = 0.0;
  double p99_slowdown = 0.0;
  std::uint64_t major_faults = 0;
  int jobs_failed = 0;
  int jobs_migrated = 0;
  bool reproduced = false;
  bool wins_mean_slowdown = false;  ///< vs the matrix baseline of the cell
};

/// The determinism gate: two runs of the same config must agree bit for bit.
bool same_run(const RunOutcome& a, const RunOutcome& b) {
  if (a.makespan != b.makespan || a.major_faults != b.major_faults ||
      a.pages_swapped_in != b.pages_swapped_in ||
      a.pages_swapped_out != b.pages_swapped_out ||
      a.mean_slowdown != b.mean_slowdown ||
      a.p99_slowdown != b.p99_slowdown ||
      a.jobs_migrated != b.jobs_migrated ||
      a.migration_bytes != b.migration_bytes ||
      a.jobs.size() != b.jobs.size()) {
    return false;
  }
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    if (a.jobs[j].completion != b.jobs[j].completion ||
        a.jobs[j].arrival != b.jobs[j].arrival ||
        a.jobs[j].slowdown != b.jobs[j].slowdown) {
      return false;
    }
  }
  return true;
}

std::string json_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void write_json(const std::string& path, const std::vector<Row>& rows,
                bool smoke, bool deterministic) {
  std::ofstream os(path);
  os << "{\n"
     << "  \"bench\": \"policy_matrix\",\n"
     << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
     << "  \"deterministic\": " << (deterministic ? "true" : "false") << ",\n"
     << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"scenario\": \"" << r.scenario << "\", \"policy\": \""
       << r.policy << "\", \"makespan_s\": " << json_number(r.makespan_s)
       << ", \"mean_slowdown\": " << json_number(r.mean_slowdown)
       << ", \"p99_slowdown\": " << json_number(r.p99_slowdown)
       << ", \"major_faults\": " << r.major_faults
       << ", \"jobs_failed\": " << r.jobs_failed
       << ", \"jobs_migrated\": " << r.jobs_migrated
       << ", \"reproduced\": " << (r.reproduced ? "true" : "false")
       << ", \"wins_mean_slowdown\": "
       << (r.wins_mean_slowdown ? "true" : "false") << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_policy.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: policy_matrix [--smoke] [--out PATH]\n");
      return 2;
    }
  }

  std::printf("Scheduler-policy zoo under open arrivals%s\n"
              "(every cell runs twice; pairs must be bit-identical)\n\n",
              smoke ? " (smoke)" : "");

  const std::vector<std::string> policies = sched_policy_names();
  std::vector<Row> rows;
  bool deterministic = true;

  for (const Scenario& scenario : scenarios(smoke)) {
    Table table({"policy", "makespan (s)", "mean slowdown", "p99 slowdown",
                 "major faults", "failed", "migrated", "reproduced"});
    double matrix_mean_slowdown = 0.0;
    for (const std::string& policy : policies) {
      ExperimentConfig config = scenario.config;
      config.sched_policy = policy;
      // Consolidation migration is dfrs's policy-visible primitive; the
      // others never ask for it.
      config.auto_migrate = policy == "dfrs";
      const RunOutcome first = run_open(config);
      const RunOutcome second = run_open(config);

      Row row;
      row.scenario = scenario.name;
      row.policy = policy;
      row.makespan_s = to_seconds(first.makespan);
      row.mean_slowdown = first.mean_slowdown;
      row.p99_slowdown = first.p99_slowdown;
      row.major_faults = first.major_faults;
      row.jobs_failed = first.jobs_failed;
      row.jobs_migrated = first.jobs_migrated;
      row.reproduced = same_run(first, second);
      if (!row.reproduced) deterministic = false;

      if (policy == "matrix") {
        matrix_mean_slowdown = row.mean_slowdown;
      } else {
        row.wins_mean_slowdown = row.mean_slowdown < matrix_mean_slowdown;
      }
      table.add_row({row.policy, Table::fmt(row.makespan_s, 1),
                     Table::fmt(row.mean_slowdown, 2),
                     Table::fmt(row.p99_slowdown, 2),
                     std::to_string(row.major_faults),
                     std::to_string(row.jobs_failed),
                     std::to_string(row.jobs_migrated),
                     row.reproduced ? "yes" : "NO"});
      rows.push_back(row);
    }
    std::printf("%s: %s\n%s\n\n", scenario.name,
                scenario.config.describe().c_str(), table.to_string().c_str());
  }

  write_json(out_path, rows, smoke, deterministic);
  std::printf("wrote %s\n", out_path.c_str());

  int winners = 0;
  for (const Row& r : rows) {
    if (r.wins_mean_slowdown) ++winners;
  }
  std::printf("policies beating matrix on mean slowdown: %d of %zu rows\n",
              winners, rows.size());

  if (!deterministic) {
    std::fprintf(stderr, "FAIL: a cell did not reproduce bit-for-bit\n");
    return 1;
  }
  return 0;
}
