// Ablation for the working-set-size source: the paper's API takes ws_size
// from the user-level scheduler but notes "the working set size also can be
// estimated by the kernel using the incoming process' run during the
// previous time quantum". Compares kernel estimation against the
// scheduler-declared value on the memory-stressed MG setup.

#include <cstdio>

#include "harness/figures.hpp"
#include "harness/runner.hpp"

int main() {
  using namespace apsim;

  std::printf("Working-set source ablation: 2x MG.B serial, 750 MB usable, "
              "so/ao/ai/bg\n\n");

  ExperimentConfig base = figure_base(NpbApp::kMG, 1,
                                      fig7_usable_mb(NpbApp::kMG),
                                      PolicySet::all());
  ExperimentConfig batch_config = base;
  batch_config.batch_mode = true;
  const RunOutcome batch = run_batch(batch_config);

  Table table({"ws_size source", "makespan (s)", "overhead",
               "pages replayed"});
  auto add = [&](const char* name, bool use_hint) {
    ExperimentConfig config = base;
    config.pass_ws_hint = use_hint;
    const RunOutcome outcome = run_gang(config);
    table.add_row(
        {name, Table::fmt(to_seconds(outcome.makespan), 0),
         Table::pct(switching_overhead(outcome.makespan, batch.makespan), 1),
         std::to_string(outcome.pages_replayed)});
  };
  add("kernel estimate (previous quantum)", false);
  add("scheduler-declared ws_size", true);
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Shape check: the kernel estimate starts at zero (no history) and "
      "converges to the\nreferenced set, so the first rotations drain less "
      "and preserve residual pages; a\nstatic full-footprint declaration "
      "over-evicts from the first switch and locks the\nrotation into "
      "full-drain/full-replay. The paper's fallback estimate is not merely\n"
      "adequate — on read-heavy MG it beats the naive declaration.\n");
  return 0;
}
