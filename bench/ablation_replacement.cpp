// Ablation over the *global replacement policy* itself: the paper argues
// the false-eviction pathology under gang scheduling is a property of
// recency-based replacement, not of Linux's clock approximation in
// particular. We run the same memory-stressed pair of LU jobs under the
// clock policy, exact LRU, and FIFO, then under selective page-out, and
// report false-eviction counts alongside the makespan.

#include <cstdio>
#include <memory>

#include "cluster/cluster.hpp"
#include "gang/gang_scheduler.hpp"
#include "mem/reclaim_extra.hpp"
#include "metrics/table.hpp"
#include "workloads/npb.hpp"

namespace {

using namespace apsim;

struct Result {
  double makespan_s = 0.0;
  std::uint64_t false_evictions = 0;
  std::uint64_t pages_in = 0;
};

enum class Baseline { kClock, kExactLru, kFifo, kSelective };

Result run(Baseline baseline) {
  NodeParams node;
  node.vmm.total_frames = mb_to_pages(1024.0);
  node.wired_mb = 1024.0 - 230.0;
  node.swap_slots = mb_to_pages(1024.0);
  node.disk.num_blocks = node.swap_slots;
  Cluster cluster(1, node);

  GangParams params;
  params.quantum = 5 * kMinute;
  if (baseline == Baseline::kSelective) {
    params.pager.policy = PolicySet::parse("so");
  }
  GangScheduler scheduler(cluster, params);

  // Non-default baselines replace the reclaim policy after construction.
  switch (baseline) {
    case Baseline::kExactLru:
      cluster.node(0).vmm().set_reclaim_policy(
          std::make_unique<ExactLruPolicy>());
      break;
    case Baseline::kFifo:
      cluster.node(0).vmm().set_reclaim_policy(std::make_unique<FifoPolicy>());
      break;
    case Baseline::kClock:
    case Baseline::kSelective:
      break;  // clock is the default; selective installed by the pager
  }

  const WorkloadSpec spec = npb_spec(NpbApp::kLU, NpbClass::kB);
  std::vector<std::unique_ptr<Process>> procs;
  for (int j = 0; j < 2; ++j) {
    Job& job = scheduler.create_job("LU#" + std::to_string(j));
    NpbBuildOptions options;
    options.seed = 42 + static_cast<std::uint64_t>(j);
    const Pid pid =
        cluster.node(0).vmm().create_process(spec.footprint_pages(1));
    procs.push_back(std::make_unique<Process>(
        "LU#" + std::to_string(j), pid, build_npb_program(spec, options)));
    cluster.node(0).cpu().attach(*procs.back());
    job.add_process(0, *procs.back());
  }
  scheduler.start();
  cluster.sim().run_until([&] { return scheduler.all_finished(); },
                          48 * 3600 * kSecond);

  Result result;
  result.makespan_s = to_seconds(scheduler.makespan());
  for (Pid pid : cluster.node(0).vmm().pids()) {
    const auto& stats = cluster.node(0).vmm().space(pid).stats();
    result.false_evictions += stats.false_evictions;
    result.pages_in += stats.pages_swapped_in;
  }
  return result;
}

}  // namespace

int main() {
  std::printf("Replacement-policy ablation: 2x LU.B gang-scheduled on one "
              "node (230 MB, 5 min quanta)\n(false eviction = a page evicted "
              "and faulted back within the same quantum)\n\n");

  Table table({"replacement policy", "makespan (s)", "false evictions",
               "pages swapped in"});
  auto row = [&](const char* name, const Result& r) {
    table.add_row({name, Table::fmt(r.makespan_s, 0),
                   std::to_string(r.false_evictions),
                   std::to_string(r.pages_in)});
  };
  row("clock (Linux 2.2)", run(Baseline::kClock));
  row("exact LRU", run(Baseline::kExactLru));
  row("FIFO", run(Baseline::kFifo));
  row("selective page-out (so)", run(Baseline::kSelective));
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Shape check: the clock approximation is the worst offender (its "
      "proportional sweep\nattacks the running job's pages too); exact LRU "
      "and FIFO still false-evict the\nresidual set by the thousands, and "
      "only gang-aware selective page-out, which knows\nwhich process is "
      "descheduled, eliminates false eviction entirely.\n");
  return 0;
}
