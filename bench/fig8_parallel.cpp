// Regenerates Figure 8: parallel NPB benchmarks on 2 and 4 machines —
// completion time, job-switching overhead, and paging-overhead reduction.

#include <iostream>

#include "harness/figures.hpp"

int main() {
  const auto figure = apsim::run_fig8();
  apsim::print_figure(std::cout, figure);
  return 0;
}
