// Regenerates Figure 8: parallel NPB benchmarks on 2 and 4 machines —
// completion time, job-switching overhead, and paging-overhead reduction.
//
// `--scalar` runs the sweep on the scalar per-touch access loop instead of
// the batched touch engine (perf baseline; the tables are bit-identical).

#include <cstring>
#include <iostream>

#include "harness/figures.hpp"

int main(int argc, char** argv) {
  bool scalar = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scalar") == 0) {
      scalar = true;
    } else {
      std::cerr << "usage: " << argv[0] << " [--scalar]\n";
      return 2;
    }
  }
  const auto figure = apsim::run_fig8(0, scalar);
  apsim::print_figure(std::cout, figure);
  return 0;
}
