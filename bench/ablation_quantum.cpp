// Ablation over the gang quantum length (the Wang et al. discussion in the
// paper's Section 5): longer quanta amortize the fixed job-switch paging
// cost but hurt responsiveness. Adaptive paging shrinks the per-switch cost
// itself, letting the scheduler run shorter quanta for the same overhead —
// the paper's stated motivation for the mechanisms.

#include <cstdio>

#include "harness/figures.hpp"
#include "harness/runner.hpp"

int main() {
  using namespace apsim;

  std::printf("Quantum-length ablation: 2x LU.B serial, 230 MB usable\n\n");

  ExperimentConfig base = figure_base(NpbApp::kLU, 1, fig7_usable_mb(NpbApp::kLU),
                                      PolicySet::original());
  ExperimentConfig batch_config = base;
  batch_config.batch_mode = true;
  const RunOutcome batch = run_batch(batch_config);

  Table table({"quantum", "overhead orig", "overhead so/ao/ai/bg",
               "reduction"});
  for (int minutes : {1, 2, 5, 10, 15}) {
    ExperimentConfig orig = base;
    orig.quantum = minutes * kMinute;
    const RunOutcome orig_run = run_gang(orig);

    ExperimentConfig adaptive = base;
    adaptive.quantum = minutes * kMinute;
    adaptive.policy = PolicySet::all();
    const RunOutcome adaptive_run = run_gang(adaptive);

    if (orig_run.makespan < 0 || adaptive_run.makespan < 0) {
      table.add_row({std::to_string(minutes) + " min", "(timeout)", "", ""});
      continue;
    }
    const double ov_orig = switching_overhead(orig_run.makespan, batch.makespan);
    const double ov_adpt =
        switching_overhead(adaptive_run.makespan, batch.makespan);
    table.add_row({std::to_string(minutes) + " min", Table::pct(ov_orig, 1),
                   Table::pct(ov_adpt, 1),
                   Table::pct(paging_reduction(ov_adpt, ov_orig))});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Shape check: overhead falls with quantum length for both "
              "policies, and the\nadaptive kernel at a short quantum beats "
              "the original kernel at a much longer one.\n");
  return 0;
}
