// Self-tuning ablation: fixed knobs vs the adaptive control plane's two
// controllers (dyn-thresh, hill-climb) across the paper's fig7 serial gang
// (IS.W on one node), the fig8 parallel gang (LU.W on two nodes), and a
// chaos variant with transient disk faults. Every configuration runs twice
// and the pairs must be bit-identical — the controllers are deterministic
// functions of simulated time and counters — so the process exits nonzero
// only on a determinism mismatch, never on a performance regression.
// Results (makespan, total fault stall, knob adjustments, win flags) are
// written to BENCH_selftune.json.
//
// Usage: ablation_selftune [--smoke] [--out PATH]
//   --smoke   scaled-down iterations (used by CI)

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "metrics/table.hpp"

namespace {

using namespace apsim;

struct Scenario {
  const char* name;
  ExperimentConfig config;
};

std::vector<Scenario> scenarios(bool smoke) {
  std::vector<Scenario> out;

  ExperimentConfig fig7;
  fig7.app = NpbApp::kIS;
  fig7.cls = NpbClass::kW;
  fig7.nodes = 1;
  fig7.instances = 2;
  fig7.node_memory_mb = 64.0;
  fig7.usable_memory_mb = 22.0;
  fig7.quantum = 4 * kSecond;
  fig7.iterations_scale = smoke ? 0.25 : 1.0;
  out.push_back({"fig7-IS.W", fig7});

  ExperimentConfig fig8 = fig7;
  fig8.app = NpbApp::kLU;
  fig8.nodes = 2;
  out.push_back({"fig8-LU.W", fig8});

  ExperimentConfig chaos = fig7;
  chaos.faults.add(
      FaultSpec::parse("disk_transient start_s=1 end_s=30 p=0.02"));
  out.push_back({"chaos-IS.W", chaos});

  return out;
}

struct Row {
  std::string scenario;
  std::string mode;
  double makespan_s = 0.0;
  double stall_s = 0.0;
  std::uint64_t major_faults = 0;
  std::uint64_t adjustments = 0;
  std::uint64_t policy_switches = 0;
  bool reproduced = false;
  bool wins_makespan = false;  ///< vs the fixed-knob baseline
  bool wins_stall = false;
};

double total_stall_s(const RunOutcome& out) {
  SimDuration stall = 0;
  for (const JobOutcome& job : out.jobs) stall += job.fault_wait;
  return to_seconds(stall);
}

/// The determinism gate: two runs of the same config must agree bit for bit.
bool same_run(const RunOutcome& a, const RunOutcome& b) {
  if (a.makespan != b.makespan || a.major_faults != b.major_faults ||
      a.pages_swapped_in != b.pages_swapped_in ||
      a.pages_swapped_out != b.pages_swapped_out ||
      a.autotune_ticks != b.autotune_ticks ||
      a.autotune_adjustments != b.autotune_adjustments ||
      a.autotune_policy_switches != b.autotune_policy_switches ||
      a.jobs.size() != b.jobs.size()) {
    return false;
  }
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    if (a.jobs[j].completion != b.jobs[j].completion ||
        a.jobs[j].fault_wait != b.jobs[j].fault_wait) {
      return false;
    }
  }
  return true;
}

std::string json_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void write_json(const std::string& path, const std::vector<Row>& rows,
                bool smoke, bool deterministic) {
  std::ofstream os(path);
  os << "{\n"
     << "  \"bench\": \"ablation_selftune\",\n"
     << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
     << "  \"deterministic\": " << (deterministic ? "true" : "false") << ",\n"
     << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"scenario\": \"" << r.scenario << "\", \"controller\": \""
       << r.mode << "\", \"makespan_s\": " << json_number(r.makespan_s)
       << ", \"stall_s\": " << json_number(r.stall_s)
       << ", \"major_faults\": " << r.major_faults
       << ", \"adjustments\": " << r.adjustments
       << ", \"policy_switches\": " << r.policy_switches
       << ", \"reproduced\": " << (r.reproduced ? "true" : "false")
       << ", \"wins_makespan\": " << (r.wins_makespan ? "true" : "false")
       << ", \"wins_stall\": " << (r.wins_stall ? "true" : "false") << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_selftune.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: ablation_selftune [--smoke] [--out PATH]\n");
      return 2;
    }
  }

  std::printf("Self-tuning ablation%s: fixed knobs vs adaptive controllers\n"
              "(every config runs twice; pairs must be bit-identical)\n\n",
              smoke ? " (smoke)" : "");

  const char* modes[] = {"fixed", "dyn-thresh", "hill-climb"};
  std::vector<Row> rows;
  bool deterministic = true;

  for (const Scenario& scenario : scenarios(smoke)) {
    Table table({"controller", "makespan (s)", "stall (s)", "major faults",
                 "adjustments", "policy switches", "reproduced"});
    double fixed_makespan = 0.0;
    double fixed_stall = 0.0;
    for (const char* mode : modes) {
      ExperimentConfig config = scenario.config;
      if (std::strcmp(mode, "fixed") != 0) {
        config.autotune = true;
        config.autotune_controller = mode;
        config.autotune_interval = kSecond;
        config.autotune_policy = true;
      }
      const RunOutcome first = run_gang(config);
      const RunOutcome second = run_gang(config);

      Row row;
      row.scenario = scenario.name;
      row.mode = mode;
      row.makespan_s = to_seconds(first.makespan);
      row.stall_s = total_stall_s(first);
      row.major_faults = first.major_faults;
      row.adjustments = first.autotune_adjustments;
      row.policy_switches = first.autotune_policy_switches;
      row.reproduced = same_run(first, second);
      if (!row.reproduced) deterministic = false;

      if (std::strcmp(mode, "fixed") == 0) {
        fixed_makespan = row.makespan_s;
        fixed_stall = row.stall_s;
      } else {
        row.wins_makespan = row.makespan_s < fixed_makespan;
        row.wins_stall = row.stall_s < fixed_stall;
      }
      table.add_row({row.mode, Table::fmt(row.makespan_s, 1),
                     Table::fmt(row.stall_s, 1),
                     std::to_string(row.major_faults),
                     std::to_string(row.adjustments),
                     std::to_string(row.policy_switches),
                     row.reproduced ? "yes" : "NO"});
      rows.push_back(row);
    }
    std::printf("%s: %s\n%s\n", scenario.name,
                scenario.config.describe().c_str(),
                table.to_string().c_str());
    std::printf("  baseline makespan %.1fs stall %.1fs\n\n", fixed_makespan,
                fixed_stall);
  }

  write_json(out_path, rows, smoke, deterministic);
  std::printf("wrote %s\n", out_path.c_str());

  int winners = 0;
  for (const Row& r : rows) {
    if (r.wins_makespan || r.wins_stall) ++winners;
  }
  std::printf("controller wins vs fixed baseline: %d of %zu tuned rows\n",
              winners, rows.size() - rows.size() / 3);

  if (!deterministic) {
    std::fprintf(stderr, "FAIL: a tuned run did not reproduce bit-for-bit\n");
    return 1;
  }
  return 0;
}
