// Ablation for the paper's Section 3.3 discussion: why not simply boost the
// kernel's swap read-ahead instead of recording and replaying the flushed
// set? Sweeps the read-ahead cluster size under the original policy and
// compares against adaptive page-in (so/ao/ai) at the default cluster.

#include <cstdio>

#include "harness/figures.hpp"
#include "harness/runner.hpp"

int main() {
  using namespace apsim;

  std::printf("Swap read-ahead ablation: 2x LU.B serial, 230 MB usable\n"
              "(paper 3.3: larger read-ahead helps at switches, but the "
              "recorded replay wins)\n\n");

  ExperimentConfig base = figure_base(NpbApp::kLU, 1, fig7_usable_mb(NpbApp::kLU),
                                      PolicySet::original());
  ExperimentConfig batch_config = base;
  batch_config.batch_mode = true;
  const RunOutcome batch = run_batch(batch_config);

  Table table({"configuration", "makespan (s)", "overhead", "pages in"});
  for (std::int64_t cluster : {1, 4, 16, 64, 256}) {
    ExperimentConfig config = base;
    config.page_cluster = cluster;
    const RunOutcome gang = run_gang(config);
    table.add_row({"orig, read-ahead " + std::to_string(cluster),
                   Table::fmt(to_seconds(gang.makespan), 0),
                   Table::pct(switching_overhead(gang.makespan, batch.makespan), 1),
                   std::to_string(gang.pages_swapped_in)});
  }
  {
    ExperimentConfig config = base;
    config.policy = PolicySet::parse("so/ao/ai");
    const RunOutcome gang = run_gang(config);
    table.add_row({"so/ao/ai, read-ahead 16",
                   Table::fmt(to_seconds(gang.makespan), 0),
                   Table::pct(switching_overhead(gang.makespan, batch.makespan), 1),
                   std::to_string(gang.pages_swapped_in)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
