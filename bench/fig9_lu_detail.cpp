// Regenerates Figure 9: the per-mechanism ablation on LU (orig, ai, so,
// so/ao, so/ao/bg, so/ao/ai/bg) for serial, 2-machine and 4-machine runs.

#include <iostream>

#include "harness/figures.hpp"

int main() {
  const auto figure = apsim::run_fig9();
  apsim::print_figure(std::cout, figure);
  return 0;
}
