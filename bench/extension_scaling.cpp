// Extension: the paper's stated future work — scaling the experiments to
// more nodes ("we are extending our performance study to parallel
// applications running on 8 and 16 nodes"). Runs 2x parallel LU at widths
// 1..8 with proportional memory stress and reports the paging-overhead
// reduction at each width.

#include <algorithm>
#include <cstdio>

#include "harness/figures.hpp"
#include "harness/runner.hpp"

int main() {
  using namespace apsim;

  std::printf("Cluster-width scaling (the paper's future work): 2x LU.B, "
              "per-node memory stressed\nproportionally to the per-rank "
              "footprint, 5 min quanta\n\n");

  const WorkloadSpec spec = npb_spec(NpbApp::kLU, NpbClass::kB);
  Table table({"nodes", "per-rank footprint (MB)", "usable (MB)",
               "overhead orig", "overhead so/ao/ai/bg", "reduction"});
  for (int nodes : {1, 2, 4, 8}) {
    const double footprint = spec.footprint_mb(nodes);
    const double usable = 1.21 * footprint;  // same relative stress everywhere

    ExperimentConfig base = figure_base(NpbApp::kLU, nodes, usable,
                                        PolicySet::original());
    base.iterations_scale = std::min(nodes, 4);  // span several quanta, bounded cost

    ExperimentConfig batch_config = base;
    batch_config.batch_mode = true;
    const RunOutcome batch = run_batch(batch_config);
    const RunOutcome orig = run_gang(base);
    ExperimentConfig adaptive = base;
    adaptive.policy = PolicySet::all();
    const RunOutcome adaptive_run = run_gang(adaptive);

    if (batch.makespan < 0 || orig.makespan < 0 || adaptive_run.makespan < 0) {
      table.add_row({std::to_string(nodes), "(timeout)", "", "", "", ""});
      continue;
    }
    const double ov_orig = switching_overhead(orig.makespan, batch.makespan);
    const double ov_adpt =
        switching_overhead(adaptive_run.makespan, batch.makespan);
    table.add_row({std::to_string(nodes), Table::fmt(footprint, 0),
                   Table::fmt(usable, 0), Table::pct(ov_orig, 1),
                   Table::pct(ov_adpt, 1),
                   Table::pct(paging_reduction(ov_adpt, ov_orig))});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Shape check: the reduction persists at every width — the "
              "mechanisms compact paging\nsimultaneously on all nodes, so "
              "the benefit does not erode as ranks are added.\n");
  return 0;
}
