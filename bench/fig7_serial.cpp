// Regenerates Figure 7: serial NPB class B benchmarks on one machine —
// completion time, job-switching overhead, and paging-overhead reduction
// for the original kernel vs all four adaptive mechanisms.
//
// `--scalar` runs the sweep on the scalar per-touch access loop instead of
// the batched touch engine (perf baseline; the tables are bit-identical).

#include <cstring>
#include <iostream>

#include "harness/figures.hpp"

int main(int argc, char** argv) {
  bool scalar = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scalar") == 0) {
      scalar = true;
    } else {
      std::cerr << "usage: " << argv[0] << " [--scalar]\n";
      return 2;
    }
  }
  const auto figure = apsim::run_fig7(0, scalar);
  apsim::print_figure(std::cout, figure);
  return 0;
}
