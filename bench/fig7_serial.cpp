// Regenerates Figure 7: serial NPB class B benchmarks on one machine —
// completion time, job-switching overhead, and paging-overhead reduction
// for the original kernel vs all four adaptive mechanisms.

#include <iostream>

#include "harness/figures.hpp"

int main() {
  const auto figure = apsim::run_fig7();
  apsim::print_figure(std::cout, figure);
  return 0;
}
