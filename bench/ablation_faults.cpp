// Fault-tolerance ablation: how much does the recovery machinery cost as
// faults intensify? Sweeps (a) the transient disk error rate against the
// Vmm's retry ladder, (b) the control-signal drop rate against the switch
// watchdog, and (c) a fail-slow disk against the paging pipeline. The
// workload is the small 2x LU.W gang under real memory pressure; every run
// is deterministic, so a row is reproducible from the config alone.

#include <cstdio>

#include "harness/figures.hpp"
#include "harness/runner.hpp"

namespace {

apsim::ExperimentConfig base_config() {
  apsim::ExperimentConfig config;
  config.app = apsim::NpbApp::kLU;
  config.cls = apsim::NpbClass::kW;
  config.nodes = 1;
  config.instances = 2;
  config.node_memory_mb = 64.0;
  config.usable_memory_mb = 22.0;
  config.quantum = 4 * apsim::kSecond;
  config.iterations_scale = 0.2;
  return config;
}

std::string slowdown(apsim::SimTime makespan, apsim::SimTime reference) {
  if (makespan <= 0) return "failed";
  return apsim::Table::fmt(
      static_cast<double>(makespan) / static_cast<double>(reference), 2) + "x";
}

}  // namespace

int main() {
  using namespace apsim;

  std::printf("Fault-tolerance ablation: 2x LU.W gang, 22 MB usable, q=4s\n"
              "(all runs deterministic; failed = at least one job aborted)\n\n");

  const RunOutcome clean = run_gang(base_config());

  std::printf("Transient disk errors (whole run), retried with capped "
              "exponential backoff:\n");
  Table disk({"error rate", "makespan (s)", "slowdown", "io errors",
              "retries", "lost pages", "jobs failed"});
  disk.add_row({"0", Table::fmt(to_seconds(clean.makespan), 1), "1.00x", "0",
                "0", "0", "0"});
  for (double p : {0.02, 0.05, 0.1, 0.2}) {
    ExperimentConfig config = base_config();
    config.faults.add(FaultSpec::parse("disk_transient p=" + Table::fmt(p, 2)));
    const RunOutcome out = run_gang(config);
    disk.add_row({Table::fmt(p, 2), Table::fmt(to_seconds(out.makespan), 1),
                  slowdown(out.makespan, clean.makespan),
                  std::to_string(out.io_errors), std::to_string(out.io_retries),
                  std::to_string(out.pages_unrecoverable),
                  std::to_string(out.jobs_failed)});
  }
  std::printf("%s\n", disk.to_string().c_str());

  std::printf("Dropped gang-switch signals, recovered by the 50 ms "
              "watchdog:\n");
  Table drop({"drop rate", "makespan (s)", "slowdown", "retransmits",
              "jobs failed"});
  drop.add_row({"0", Table::fmt(to_seconds(clean.makespan), 1), "1.00x", "0",
                "0"});
  for (double p : {0.1, 0.3, 0.5}) {
    ExperimentConfig config = base_config();
    config.faults.add(FaultSpec::parse("signal_drop p=" + Table::fmt(p, 2)));
    const RunOutcome out = run_gang(config);  // watchdog auto-armed
    drop.add_row({Table::fmt(p, 2), Table::fmt(to_seconds(out.makespan), 1),
                  slowdown(out.makespan, clean.makespan),
                  std::to_string(out.signal_retransmits),
                  std::to_string(out.jobs_failed)});
  }
  std::printf("%s\n", drop.to_string().c_str());

  std::printf("Fail-slow disk (service time multiplied for the whole run):\n");
  Table slow({"slow factor", "makespan (s)", "slowdown", "jobs failed"});
  slow.add_row({"1", Table::fmt(to_seconds(clean.makespan), 1), "1.00x", "0"});
  for (int factor : {2, 4, 8}) {
    ExperimentConfig config = base_config();
    config.faults.add(
        FaultSpec::parse("disk_slow slow=" + std::to_string(factor)));
    const RunOutcome out = run_gang(config);
    slow.add_row({std::to_string(factor),
                  Table::fmt(to_seconds(out.makespan), 1),
                  slowdown(out.makespan, clean.makespan),
                  std::to_string(out.jobs_failed)});
  }
  std::printf("%s", slow.to_string().c_str());
  return 0;
}
