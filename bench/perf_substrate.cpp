// Perf-regression harness for the simulator substrate. Times the event-queue
// hot path (schedule / cancel / pop, random times, same-time bursts) for the
// current slab-pool EventQueue *and* for an in-bench copy of the legacy
// shared_ptr-flag + std::function queue, so the reported speedup is measured
// against the exact pre-overhaul implementation on the same machine and
// build flags. On top of the microbenchmarks it times a demand-paging fault
// storm through the full Vmm and one small fig7-style gang run, so macro
// regressions (allocation creep anywhere on the event path) show up even
// when the queue microbenches stay flat.
//
// Results are written as JSON (default: BENCH_perf.json in the working
// directory) so the perf trajectory is tracked in-repo from run to run:
//
//   jq '.results[] | {name, speedup}' BENCH_perf.json
//
// An end-to-end macro section times small fig7-style and fig8-style gang
// runs with the batched touch engine against the scalar per-touch loop
// (ExperimentConfig::scalar_touch) and records the worse of the two as
// `endtoend_speedup`.
//
// `--smoke` shrinks the workloads for CI (seconds, not minutes);
// `--min-speedup X` exits non-zero when the schedule/pop speedup vs the
// legacy queue falls below X (the CI perf-smoke gate);
// `--min-endtoend-speedup X` gates the batched-touch macro speedup the same
// way; `--scalar` runs the fig7 macro bench on the scalar path for manual
// A/B comparisons; `--out PATH` moves the JSON.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "disk/disk.hpp"
#include "disk/swap_device.hpp"
#include "harness/config.hpp"
#include "harness/runner.hpp"
#include "harness/sweep.hpp"
#include "mem/page_table.hpp"
#include "mem/vmm.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "workloads/spec.hpp"

namespace {

using namespace apsim;

// ---------------------------------------------------------------------------
// The pre-overhaul event queue, verbatim: one std::function plus one
// shared_ptr<bool> cancellation flag per entry, callables sifted through the
// heap. Kept here (not in src/) so the comparison baseline cannot drift.

namespace legacy {

class EventHandle {
 public:
  EventHandle() = default;

  [[nodiscard]] bool pending() const {
    auto p = flag_.lock();
    return p != nullptr && !*p;
  }

  explicit EventHandle(std::weak_ptr<bool> flag) : flag_(std::move(flag)) {}
  std::weak_ptr<bool> flag_;
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventHandle schedule(SimTime when, Callback fn) {
    Entry entry;
    entry.time = when;
    entry.seq = seq_++;
    entry.fn = std::move(fn);
    entry.cancelled = std::make_shared<bool>(false);
    EventHandle handle{std::weak_ptr<bool>(entry.cancelled)};
    heap_.push_back(std::move(entry));
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
    ++live_;
    return handle;
  }

  void cancel(const EventHandle& handle) {
    if (auto flag = handle.flag_.lock(); flag && !*flag) {
      *flag = true;
      --live_;
    }
  }

  [[nodiscard]] bool empty() const {
    drop_cancelled_top();
    return heap_.empty();
  }

  struct Popped {
    SimTime time;
    Callback fn;
  };

  [[nodiscard]] Popped pop() {
    drop_cancelled_top();
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    --live_;
    *entry.cancelled = true;
    return Popped{entry.time, std::move(entry.fn)};
  }

 private:
  struct Entry {
    SimTime time = 0;
    std::uint64_t seq = 0;
    Callback fn;
    std::shared_ptr<bool> cancelled;

    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled_top() const {
    auto& heap = heap_;
    while (!heap.empty() && *heap.front().cancelled) {
      std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
      heap.pop_back();
    }
  }

  mutable std::vector<Entry> heap_;
  std::uint64_t seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace legacy

// ---------------------------------------------------------------------------
// Timing helpers

double now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

/// Median wall time of \p reps runs of \p fn, in milliseconds.
template <typename Fn>
double median_ms(int reps, Fn&& fn) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_ms();
    fn();
    times.push_back(now_ms() - t0);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

struct Result {
  std::string name;
  std::int64_t items = 0;        ///< events processed per run
  double new_ms = 0.0;           ///< current implementation, median wall ms
  double legacy_ms = -1.0;       ///< legacy queue, median wall ms (-1: n/a)
  double extra = -1.0;           ///< benchmark-specific metric (-1: n/a)
  const char* extra_name = "";

  [[nodiscard]] double mops(double ms) const {
    return ms > 0.0 ? static_cast<double>(items) / ms / 1e3 : 0.0;
  }
  [[nodiscard]] double speedup() const {
    return (legacy_ms > 0.0 && new_ms > 0.0) ? legacy_ms / new_ms : -1.0;
  }
};

// Dispatch counter shared by the queue microbench workloads: each popped
// callback bumps it, so neither queue can dead-code the callable away.
std::uint64_t g_dispatched = 0;

/// Workload A — the shape a running simulation actually has: a bounded
/// pending set (one event per process plus in-flight I/O, hundreds not
/// hundreds of thousands) churning through schedule/pop pairs. Prefill
/// `depth` events, then each iteration pops the earliest and schedules a
/// successor a random delay later, exactly like a dispatched callback
/// re-arming itself.
template <typename Queue>
void steady_state_churn(std::int64_t n, std::int64_t depth) {
  Queue queue;
  Rng rng(42);
  for (std::int64_t i = 0; i < depth; ++i) {
    (void)queue.schedule(static_cast<SimTime>(rng.next_below(1 << 16)),
                         [] { ++g_dispatched; });
  }
  for (std::int64_t i = 0; i < n; ++i) {
    auto popped = queue.pop();
    popped.fn();
    (void)queue.schedule(popped.time +
                             static_cast<SimTime>(1 + rng.next_below(1 << 16)),
                         [] { ++g_dispatched; });
  }
  while (!queue.empty()) queue.pop().fn();
}

/// Workload A': bulk fill-then-drain with a six-figure pending set — far
/// past any real run, so it isolates the heap-sift cost on huge heaps
/// (informational; the regression gate uses the steady-state shape).
template <typename Queue>
void schedule_pop_bulk(std::int64_t n) {
  Queue queue;
  Rng rng(42);
  for (std::int64_t i = 0; i < n; ++i) {
    (void)queue.schedule(static_cast<SimTime>(rng.next_below(1 << 20)),
                         [] { ++g_dispatched; });
  }
  while (!queue.empty()) queue.pop().fn();
}

/// Workload B: schedule N, cancel every other via its handle, pop the rest —
/// the switch-watchdog / retry-ladder pattern (most timers are cancelled).
template <typename Queue>
void schedule_cancel_pop(std::int64_t n) {
  Queue queue;
  Rng rng(43);
  using Handle = decltype(queue.schedule(0, [] {}));
  std::vector<Handle> handles;
  handles.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    handles.push_back(queue.schedule(
        static_cast<SimTime>(rng.next_below(1 << 20)), [] { ++g_dispatched; }));
  }
  for (std::int64_t i = 0; i < n; i += 2) {
    queue.cancel(handles[static_cast<std::size_t>(i)]);
  }
  while (!queue.empty()) queue.pop().fn();
}

/// Workload C: bursts of same-instant events (gang switches, signal
/// broadcasts, waiter releases) — the batched-pop fast path.
template <typename Queue>
void same_time_bursts(std::int64_t n) {
  Queue queue;
  constexpr std::int64_t kBurst = 256;
  for (std::int64_t t = 0; t * kBurst < n; ++t) {
    for (std::int64_t i = 0; i < kBurst; ++i) {
      (void)queue.schedule(static_cast<SimTime>(t) * 1000,
                           [] { ++g_dispatched; });
    }
  }
  while (!queue.empty()) queue.pop().fn();
}

template <typename Fn>
Result compare_queues(const char* name, std::int64_t items, int reps,
                      Fn&& run_new, Fn&& run_legacy) {
  Result res;
  res.name = name;
  res.items = items;
  // Interleave would be fairer under thermal drift, but medians over
  // separate batches are stable enough and keep the code simple.
  res.new_ms = median_ms(reps, run_new);
  res.legacy_ms = median_ms(reps, run_legacy);
  return res;
}

// ---------------------------------------------------------------------------
// Page-metadata sweeps: the SoA bitmap table against the pre-migration
// array-of-structs layout, kept here verbatim so the comparison baseline
// cannot drift. The workloads are the two hot sweep shapes of the VMM:
// the reclaim policies' full-table present scan and the background writer's
// dirty-candidate scan.

namespace legacy_aos {

struct Pte {
  FrameNum frame = kNoFrame;
  SwapSlot slot = kNoSwapSlot;
  SimTime last_ref = 0;
  std::uint32_t epoch = 0;
  std::uint8_t age = 0;
  bool present = false;
  bool referenced = false;
  bool dirty = false;
  bool io_busy = false;
  bool ever_touched = false;
};

}  // namespace legacy_aos

/// Sparse residency pattern shared by both layouts: runs of 8 present pages
/// every 64 (a post-reclaim table is mostly holes), every fourth present
/// page dirty — the shape word-at-a-time scans are built for.
bool pattern_present(std::int64_t v) { return (v & 63) < 8; }
bool pattern_dirty(std::int64_t v) { return pattern_present(v) && (v & 3) == 0; }

Result page_scan_sweep(bool smoke, int reps) {
  Result res;
  res.name = "page_scan_sweep";
  const std::int64_t npages = smoke ? (1 << 18) : (1 << 20);
  const int sweeps = 8;
  res.items = npages * sweeps * 2;  // one present + one dirty sweep each

  PageTable pt(npages);
  std::vector<legacy_aos::Pte> aos(static_cast<std::size_t>(npages));
  for (std::int64_t v = 0; v < npages; ++v) {
    if (!pattern_present(v)) continue;
    Pte pte = pt.at(v);
    pte.set_present(true);
    pte.set_frame(v);
    pte.set_last_ref(v);
    auto& a = aos[static_cast<std::size_t>(v)];
    a.present = true;
    a.frame = v;
    a.last_ref = v;
    if (pattern_dirty(v)) {
      pte.set_dirty(true);
      a.dirty = true;
    }
  }

  res.new_ms = median_ms(reps, [&] {
    std::uint64_t sum = 0;
    for (int s = 0; s < sweeps; ++s) {
      for (VPage v = pt.next_present(0); v < npages;
           v = pt.next_present(v + 1)) {
        sum += static_cast<std::uint64_t>(pt.at(v).last_ref());
      }
      for (VPage v = pt.next_dirty_candidate(0); v < npages;
           v = pt.next_dirty_candidate(v + 1)) {
        sum += static_cast<std::uint64_t>(v);
      }
    }
    g_dispatched += sum;
  });
  res.legacy_ms = median_ms(reps, [&] {
    std::uint64_t sum = 0;
    for (int s = 0; s < sweeps; ++s) {
      for (std::int64_t v = 0; v < npages; ++v) {
        const auto& p = aos[static_cast<std::size_t>(v)];
        if (p.present) sum += static_cast<std::uint64_t>(p.last_ref);
      }
      for (std::int64_t v = 0; v < npages; ++v) {
        const auto& p = aos[static_cast<std::size_t>(v)];
        if (p.present && p.dirty && !p.io_busy) {
          sum += static_cast<std::uint64_t>(v);
        }
      }
    }
    g_dispatched += sum;
  });
  return res;
}

// ---------------------------------------------------------------------------
// Sweep forking: k sweep points sharing a fault-storm warmup, forked from
// one copy-on-write MemSnapshot against re-running warmup + point from
// scratch per point. Aborts when any point's forked state diverges from its
// from-scratch twin: the speedup is only meaningful while forking is
// bit-identical.

/// Self-scheduling sequential sweep: `total` touches over [0, npages)
/// starting at `start`, every 8th a write; misses take the full fault path.
/// Returns immediately — the sweep continues from the event queue until the
/// touches are spent (the caller drains the simulator).
void touch_sweep(Simulator& /*sim*/, Vmm& vmm, Pid pid, std::int64_t npages,
                 std::int64_t start, std::int64_t total) {
  auto& as = vmm.space(pid);
  auto touched = std::make_shared<std::int64_t>(0);
  auto step = std::make_shared<std::function<void()>>();
  // Weak self-reference: the pending fault callback carries the strong one,
  // so the chain frees itself when the last touch lands (no shared_ptr cycle).
  const std::weak_ptr<std::function<void()>> weak = step;
  *step = [touched, weak, start, total, npages, pid, &vmm, &as] {
    while (*touched < total) {
      const VPage v = (start + *touched) % npages;
      const bool write = (*touched & 7) == 0;
      if (vmm.touch(as, v, write)) {
        ++*touched;
        continue;
      }
      vmm.fault(pid, v, write, [touched, strong = weak.lock()] {
        ++*touched;
        (*strong)();
      });
      return;
    }
  };
  (*step)();
}

/// Everything a sweep point's outcome consists of; forked and from-scratch
/// runs of the same point must agree on every field.
struct PointSignature {
  AddressSpace::Stats space;
  Vmm::Stats vmm;
  std::int64_t resident = 0;
  std::int64_t dirty = 0;
  std::int64_t free_frames = 0;
  std::int64_t used_slots = 0;
  SimTime now = 0;
  BlockNum disk_head = 0;
  std::uint64_t blocks_read = 0;
  std::uint64_t blocks_written = 0;
};

PointSignature point_signature(MemLab& lab) {
  const Pid pid = lab.vmm().pids().front();
  const auto& as = lab.vmm().space(pid);
  PointSignature sig;
  sig.space = as.stats();
  sig.vmm = lab.vmm().stats();
  sig.resident = as.resident_pages();
  sig.dirty = as.dirty_pages();
  sig.free_frames = lab.vmm().free_frames();
  sig.used_slots = lab.swap().used_slots();
  sig.now = lab.sim().now();
  sig.disk_head = lab.disk().head();
  sig.blocks_read = lab.disk().stats().blocks_read;
  sig.blocks_written = lab.disk().stats().blocks_written;
  return sig;
}

bool signatures_equal(const PointSignature& a, const PointSignature& b) {
  return a.space.minor_faults == b.space.minor_faults &&
         a.space.major_faults == b.space.major_faults &&
         a.space.pages_swapped_in == b.space.pages_swapped_in &&
         a.space.pages_swapped_out == b.space.pages_swapped_out &&
         a.space.pages_clean_dropped == b.space.pages_clean_dropped &&
         a.space.false_evictions == b.space.false_evictions &&
         a.vmm.reclaim_steps == b.vmm.reclaim_steps &&
         a.resident == b.resident && a.dirty == b.dirty &&
         a.free_frames == b.free_frames && a.used_slots == b.used_slots &&
         a.now == b.now && a.disk_head == b.disk_head &&
         a.blocks_read == b.blocks_read && a.blocks_written == b.blocks_written;
}

Result sweep_fork(bool smoke, int reps) {
  Result res;
  res.name = "sweep_fork";
  MemLabParams params;
  params.frames = smoke ? 1024 : 4096;
  params.disk_blocks = 1 << 16;
  params.swap_slots = 1 << 16;
  const std::int64_t npages = params.frames * 2;
  const std::int64_t warm_touches = npages * (smoke ? 3 : 4);
  const std::int64_t point_touches = npages / 2;

  auto warmup = [npages, warm_touches](MemLab& lab) {
    const Pid pid = lab.vmm().create_process(npages);
    touch_sweep(lab.sim(), lab.vmm(), pid, npages, 0, warm_touches);
  };
  std::vector<SweepPoint> points;
  for (std::int64_t batch : {8, 16, 32, 64}) {
    SweepPoint p;
    p.label = "reclaim_batch=" + std::to_string(batch);
    p.apply = [batch](MemLab& lab) { lab.vmm().set_reclaim_batch(batch); };
    p.body = [npages, point_touches](MemLab& lab) {
      const Pid pid = lab.vmm().pids().front();
      touch_sweep(lab.sim(), lab.vmm(), pid, npages, 0, point_touches);
    };
    points.push_back(std::move(p));
  }
  res.items = static_cast<std::int64_t>(points.size()) *
              (warm_touches + point_touches);

  // Forked: warmup once, fork each point from the snapshot. Single worker,
  // so forked and from-scratch timings compare the same wall-clock budget.
  std::vector<std::unique_ptr<MemLab>> forked;
  res.new_ms = median_ms(reps, [&] {
    forked = run_forked_sweep(params, warmup, points, /*threads=*/1);
  });

  // From scratch: every point re-runs the warmup prefix itself.
  std::vector<std::unique_ptr<MemLab>> scratch;
  res.legacy_ms = median_ms(reps, [&] {
    scratch.clear();
    for (const SweepPoint& p : points) {
      auto lab = std::make_unique<MemLab>(params);
      lab->run([&] { warmup(*lab); });
      if (p.apply) p.apply(*lab);
      lab->run([&] { p.body(*lab); });
      scratch.push_back(std::move(lab));
    }
  });

  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!signatures_equal(point_signature(*forked[i]),
                          point_signature(*scratch[i]))) {
      std::fprintf(stderr,
                   "FATAL: sweep_fork: point %s diverged from its "
                   "from-scratch run\n",
                   points[i].label.c_str());
      std::exit(1);
    }
  }
  res.extra = static_cast<double>(points.size());
  res.extra_name = "points";
  return res;
}

/// Fault storm through the real Vmm: one process twice the size of memory,
/// swept touch-by-touch so every miss takes the full fault path (alloc,
/// read-ahead, reclaim, event-queue round trips). Exercises the whole
/// allocation diet, not just the queue.
Result fault_storm(std::int64_t frames, std::int64_t sweeps, int reps) {
  Result res;
  res.name = "fault_storm";
  std::uint64_t events = 0;
  res.new_ms = median_ms(reps, [&] {
    Simulator sim;
    Disk disk(sim, DiskParams{.num_blocks = 1 << 22});
    SwapDevice swap(disk, 0, 1 << 22);
    VmmParams params;
    params.total_frames = frames;
    params.freepages_min = 64;
    params.freepages_low = 96;
    params.freepages_high = 128;
    Vmm vmm(sim, swap, params);
    const std::int64_t npages = frames * 2;
    const Pid pid = vmm.create_process(npages);
    auto& as = vmm.space(pid);

    // Self-scheduling sweep: touch pages in order; on a miss, fault and
    // resume the sweep from the event queue (exactly what the CPU executor
    // does, minus the compute cost model).
    std::int64_t touched = 0;
    const std::int64_t total = npages * sweeps;
    std::function<void()> step = [&] {
      while (touched < total) {
        const VPage v = touched % npages;
        if (vmm.touch(as, v, (touched & 7) == 0)) {
          ++touched;
          continue;
        }
        vmm.fault(pid, v, (touched & 7) == 0, [&] {
          ++touched;
          step();
        });
        return;
      }
      sim.stop();
    };
    sim.after(0, [&] { step(); });
    (void)sim.run();
    events = sim.events_dispatched();
    vmm.release_process(pid);
  });
  res.items = static_cast<std::int64_t>(events);
  res.extra = static_cast<double>(frames * 2 * sweeps);
  res.extra_name = "touches";
  return res;
}

/// One small fig7-style serial gang run end to end (build, run, collect) —
/// the unit every sweep multiplies.
Result fig7_small(double scale, int reps, bool scalar_touch) {
  Result res;
  res.name = "fig7_small_run";
  ExperimentConfig config;
  config.app = NpbApp::kIS;
  config.cls = NpbClass::kW;
  config.nodes = 1;
  config.instances = 2;
  config.node_memory_mb = 64.0;
  config.usable_memory_mb = 22.0;  // overcommitted: every switch pages
  config.quantum = 4 * kSecond;
  config.iterations_scale = scale;
  config.scalar_touch = scalar_touch;
  RunOutcome last;
  res.new_ms = median_ms(reps, [&] { last = run_gang(config); });
  res.items = static_cast<std::int64_t>(last.major_faults);
  res.extra = last.makespan_s();
  res.extra_name = "makespan_s";
  return res;
}

/// Rough total page touches of a config (per-rank cycle touches x ranks x
/// instances x iterations, plus the init sweeps) — the throughput unit of
/// the end-to-end benches.
std::int64_t estimate_touches(const ExperimentConfig& config) {
  const WorkloadSpec spec = npb_spec(config.app, config.cls);
  const auto npages = static_cast<double>(spec.footprint_pages(config.nodes));
  double per_cycle = 0.0;
  for (const auto& phase : spec.phases) {
    per_cycle += phase.touches_factor * phase.region_len * npages;
  }
  const double iterations =
      static_cast<double>(spec.iterations) * config.iterations_scale;
  const double ranks =
      static_cast<double>(config.nodes) * config.instances;
  return static_cast<std::int64_t>(ranks * (iterations * per_cycle + npages));
}

/// End-to-end macro bench: a small fig7-style (serial) or fig8-style
/// (parallel) gang run timed with the batched touch engine against the
/// scalar per-touch loop. The config is memory-adequate — after the init
/// sweep both instances stay resident — so host wall time is dominated by
/// the access hot loop, which is exactly the path the batched engine
/// replaces; the overcommitted shapes are covered by fig7_small above.
/// Aborts if the two engines disagree on any outcome counter: the speedup
/// is only meaningful while behaviour is bit-identical.
Result endtoend_fig(const char* name, int nodes, double scale, int reps) {
  Result res;
  res.name = name;
  ExperimentConfig config;
  config.app = NpbApp::kLU;  // strongly sequential: the common NPB shape
  config.cls = NpbClass::kW;
  config.nodes = nodes;
  config.instances = 2;
  config.node_memory_mb = 128.0;
  config.usable_memory_mb = 96.0;  // both instances fit once initialized
  config.quantum = 4 * kSecond;
  config.iterations_scale = scale;
  config.seed = 7;
  RunOutcome batched;
  RunOutcome scalar;
  // Interleave the two engines rep by rep so transient machine load drifts
  // into both measurements equally instead of skewing the ratio.
  std::vector<double> batched_ms;
  std::vector<double> scalar_ms;
  for (int r = 0; r < reps; ++r) {
    config.scalar_touch = false;
    batched_ms.push_back(median_ms(1, [&] { batched = run_gang(config); }));
    config.scalar_touch = true;
    scalar_ms.push_back(median_ms(1, [&] { scalar = run_gang(config); }));
  }
  std::sort(batched_ms.begin(), batched_ms.end());
  std::sort(scalar_ms.begin(), scalar_ms.end());
  res.new_ms = batched_ms[batched_ms.size() / 2];
  res.legacy_ms = scalar_ms[scalar_ms.size() / 2];
  if (batched.makespan != scalar.makespan ||
      batched.pages_swapped_in != scalar.pages_swapped_in ||
      batched.pages_swapped_out != scalar.pages_swapped_out ||
      batched.major_faults != scalar.major_faults ||
      batched.false_evictions != scalar.false_evictions ||
      batched.switches != scalar.switches) {
    std::fprintf(stderr,
                 "FATAL: %s: batched and scalar engines diverged "
                 "(makespan %lld vs %lld)\n",
                 name, static_cast<long long>(batched.makespan),
                 static_cast<long long>(scalar.makespan));
    std::exit(1);
  }
  res.items = estimate_touches(config);
  res.extra = batched.makespan_s();
  res.extra_name = "makespan_s";
  return res;
}

std::string json_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void write_json(const std::string& path, const std::vector<Result>& results,
                bool smoke, int reps, double schedule_pop_speedup,
                double endtoend_speedup, double sweep_fork_speedup) {
  std::ofstream os(path);
  os << "{\n"
     << "  \"bench\": \"perf_substrate\",\n"
     << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
     << "  \"repetitions\": " << reps << ",\n"
     << "  \"schedule_pop_speedup_vs_legacy\": "
     << json_number(schedule_pop_speedup) << ",\n"
     << "  \"endtoend_speedup\": " << json_number(endtoend_speedup) << ",\n"
     << "  \"sweep_fork_speedup\": " << json_number(sweep_fork_speedup)
     << ",\n"
     << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    os << "    {\"name\": \"" << r.name << "\", \"items\": " << r.items
       << ", \"wall_ms\": " << json_number(r.new_ms)
       << ", \"mitems_per_s\": " << json_number(r.mops(r.new_ms));
    if (r.legacy_ms >= 0.0) {
      os << ", \"legacy_wall_ms\": " << json_number(r.legacy_ms)
         << ", \"legacy_mitems_per_s\": " << json_number(r.mops(r.legacy_ms))
         << ", \"speedup\": " << json_number(r.speedup());
    }
    if (r.extra >= 0.0) {
      os << ", \"" << r.extra_name << "\": " << json_number(r.extra);
    }
    os << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool scalar = false;
  double min_speedup = 0.0;
  double min_endtoend_speedup = 0.0;
  double min_sweep_fork_speedup = 0.0;
  std::string out = "BENCH_perf.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--scalar") == 0) {
      // Run the fig7 macro bench on the scalar per-touch path (the
      // pre-batching engine) for manual A/B comparisons.
      scalar = true;
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-endtoend-speedup") == 0 &&
               i + 1 < argc) {
      min_endtoend_speedup = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-sweep-fork-speedup") == 0 &&
               i + 1 < argc) {
      min_sweep_fork_speedup = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--scalar] [--min-speedup X] "
                   "[--min-endtoend-speedup X] [--min-sweep-fork-speedup X] "
                   "[--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  const std::int64_t n = smoke ? (1 << 14) : (1 << 17);
  const int reps = smoke ? 3 : 7;
  std::vector<Result> results;

  std::printf("perf_substrate (%s): %lld events/run, median of %d\n\n",
              smoke ? "smoke" : "full", static_cast<long long>(n), reps);

  // Real runs keep the pending set small (one event per process plus
  // in-flight I/O), so the gate workload churns a bounded window.
  const std::int64_t depth = smoke ? (1 << 10) : (1 << 12);
  results.push_back(compare_queues(
      "schedule_pop_churn", n, reps,
      std::function<void()>(
          [n, depth] { steady_state_churn<EventQueue>(n, depth); }),
      std::function<void()>(
          [n, depth] { steady_state_churn<legacy::EventQueue>(n, depth); })));
  results.push_back(compare_queues(
      "schedule_pop_bulk", n, reps,
      std::function<void()>([n] { schedule_pop_bulk<EventQueue>(n); }),
      std::function<void()>(
          [n] { schedule_pop_bulk<legacy::EventQueue>(n); })));
  results.push_back(compare_queues(
      "schedule_cancel_pop", n, reps,
      std::function<void()>([n] { schedule_cancel_pop<EventQueue>(n); }),
      std::function<void()>(
          [n] { schedule_cancel_pop<legacy::EventQueue>(n); })));
  results.push_back(compare_queues(
      "same_time_bursts", n, reps,
      std::function<void()>([n] { same_time_bursts<EventQueue>(n); }),
      std::function<void()>(
          [n] { same_time_bursts<legacy::EventQueue>(n); })));

  results.push_back(page_scan_sweep(smoke, reps));
  results.push_back(
      fault_storm(smoke ? 2048 : 8192, smoke ? 2 : 4, smoke ? 2 : 3));
  results.push_back(fig7_small(smoke ? 0.25 : 0.5, smoke ? 1 : 3, scalar));
  results.push_back(sweep_fork(smoke, smoke ? 3 : 5));

  // End-to-end macro section: batched touch engine vs the scalar loop on
  // fig7-style (serial) and fig8-style (2-node parallel) runs.
  results.push_back(
      endtoend_fig("endtoend_fig7", 1, smoke ? 0.5 : 1.0, smoke ? 7 : 9));
  results.push_back(
      endtoend_fig("endtoend_fig8", 2, smoke ? 0.5 : 1.0, smoke ? 7 : 9));

  for (const Result& r : results) {
    if (r.legacy_ms >= 0.0) {
      std::printf("%-22s %9.2f ms  (%6.2f Mitems/s)  legacy %9.2f ms  "
                  "speedup %.2fx\n",
                  r.name.c_str(), r.new_ms, r.mops(r.new_ms), r.legacy_ms,
                  r.speedup());
    } else {
      std::printf("%-22s %9.2f ms  (%lld items%s%s)\n", r.name.c_str(),
                  r.new_ms, static_cast<long long>(r.items),
                  r.extra >= 0.0 ? ", " : "",
                  r.extra >= 0.0
                      ? (std::string(r.extra_name) + "=" + json_number(r.extra))
                            .c_str()
                      : "");
    }
  }

  const double gate = results[0].speedup();  // schedule_pop_churn
  // End-to-end gate: the worse of the fig7/fig8 macro speedups.
  double endtoend = -1.0;
  double fork_speedup = -1.0;
  for (const Result& r : results) {
    if (r.name == "sweep_fork") fork_speedup = r.speedup();
    if (r.name.rfind("endtoend_", 0) != 0) continue;
    const double s = r.speedup();
    if (endtoend < 0.0 || s < endtoend) endtoend = s;
  }
  write_json(out, results, smoke, reps, gate, endtoend, fork_speedup);
  std::printf("\nwrote %s (schedule/pop speedup vs legacy queue: %.2fx, "
              "end-to-end batched-touch speedup: %.2fx, "
              "sweep-fork speedup: %.2fx)\n",
              out.c_str(), gate, endtoend, fork_speedup);
  if (min_speedup > 0.0 && gate < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: schedule/pop speedup %.2fx below required %.2fx\n",
                 gate, min_speedup);
    return 1;
  }
  if (min_endtoend_speedup > 0.0 && endtoend < min_endtoend_speedup) {
    std::fprintf(stderr,
                 "FAIL: end-to-end speedup %.2fx below required %.2fx\n",
                 endtoend, min_endtoend_speedup);
    return 1;
  }
  if (min_sweep_fork_speedup > 0.0 && fork_speedup < min_sweep_fork_speedup) {
    std::fprintf(stderr,
                 "FAIL: sweep-fork speedup %.2fx below required %.2fx\n",
                 fork_speedup, min_sweep_fork_speedup);
    return 1;
  }
  return 0;
}
