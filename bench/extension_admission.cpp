// Extension: memory-aware admission control (Batat & Feitelson, cited in
// the paper's related work) vs adaptive paging. Admission control refuses
// to timeshare jobs whose combined working sets overcommit memory — great
// throughput, but a short job arriving next to a long one waits for the
// whole long job. Adaptive paging keeps the timesharing (responsiveness)
// while removing most of its paging cost. One long LU job plus one short
// IS-sized job on one node.

#include <cstdio>

#include "cluster/cluster.hpp"
#include "gang/gang_scheduler.hpp"
#include "metrics/table.hpp"
#include "workloads/npb.hpp"

namespace {

using namespace apsim;

struct Result {
  double short_completion_s = 0.0;
  double long_completion_s = 0.0;
  double makespan_s = 0.0;
};

Result run(const PolicySet& policy, bool admission, bool batch) {
  NodeParams node;
  node.vmm.total_frames = mb_to_pages(1024.0);
  node.wired_mb = 1024.0 - 230.0;
  node.swap_slots = mb_to_pages(1024.0);
  node.disk.num_blocks = node.swap_slots;
  Cluster cluster(1, node);

  const WorkloadSpec long_spec = npb_spec(NpbApp::kLU, NpbClass::kB);
  WorkloadSpec short_spec = npb_spec(NpbApp::kIS, NpbClass::kB);

  std::vector<std::unique_ptr<Process>> procs;
  auto add = [&](auto& scheduler, const char* name, const WorkloadSpec& spec,
                 double iterations_scale) -> Job& {
    Job& job = scheduler.create_job(name);
    NpbBuildOptions options;
    options.iterations_scale = iterations_scale;
    const Pid pid =
        cluster.node(0).vmm().create_process(spec.footprint_pages(1));
    procs.push_back(std::make_unique<Process>(name, pid,
                                              build_npb_program(spec, options)));
    cluster.node(0).cpu().attach(*procs.back());
    job.add_process(0, *procs.back());
    job.declared_ws_pages = spec.expected_ws_pages(1);
    return job;
  };

  Result result;
  if (batch) {
    BatchRunner runner(cluster);
    add(runner, "long-LU", long_spec, 1.0);
    add(runner, "short-IS", short_spec, 0.3);
    runner.start();
    cluster.sim().run_until([&] { return runner.all_finished(); },
                            24 * 3600 * kSecond);
    result.long_completion_s = to_seconds(runner.jobs()[0]->finished_at());
    result.short_completion_s = to_seconds(runner.jobs()[1]->finished_at());
    result.makespan_s = to_seconds(runner.makespan());
  } else {
    GangParams params;
    params.quantum = 2 * kMinute;
    params.pager.policy = policy;
    params.admission_control = admission;
    GangScheduler scheduler(cluster, params);
    add(scheduler, "long-LU", long_spec, 1.0);
    add(scheduler, "short-IS", short_spec, 0.3);
    scheduler.start();
    cluster.sim().run_until([&] { return scheduler.all_finished(); },
                            24 * 3600 * kSecond);
    result.long_completion_s = to_seconds(scheduler.jobs()[0]->finished_at());
    result.short_completion_s = to_seconds(scheduler.jobs()[1]->finished_at());
    result.makespan_s = to_seconds(scheduler.makespan());
  }
  return result;
}

}  // namespace

int main() {
  std::printf("Admission control vs adaptive paging: long LU.B + short IS job "
              "on one node, 230 MB usable, 2 min quanta\n\n");

  const Result batch = run(apsim::PolicySet::original(), false, true);
  const Result admission = run(apsim::PolicySet::original(), true, false);
  const Result gang_orig = run(apsim::PolicySet::original(), false, false);
  const Result gang_adaptive = run(apsim::PolicySet::all(), false, false);

  apsim::Table table({"scheduler", "short-job completion (s)",
                      "long-job completion (s)", "makespan (s)"});
  auto row = [&](const char* name, const Result& r) {
    table.add_row({name, apsim::Table::fmt(r.short_completion_s, 0),
                   apsim::Table::fmt(r.long_completion_s, 0),
                   apsim::Table::fmt(r.makespan_s, 0)});
  };
  row("batch (run-to-completion)", batch);
  row("gang + admission control", admission);
  row("gang, original paging", gang_orig);
  row("gang, adaptive so/ao/ai/bg", gang_adaptive);
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Shape check: admission control serializes the jobs (short job waits "
      "for the long\none), matching batch; gang scheduling gets the short "
      "job out early, and adaptive\npaging keeps that responsiveness at a "
      "fraction of the original paging cost.\n");
  return 0;
}
