// Ablation: Linux 2.2's page aging (PG_age) vs the plain one-bit
// second-chance clock, and its interaction with adaptive page-in. Our
// EXPERIMENTS.md hypothesises that the paper's kernel protected freshly
// replayed pages via aging — which would explain why its `ai`-alone result
// (>65% reduction) is far stronger than our clock-only model's. This bench
// tests that hypothesis in-model on the serial LU setup.

#include <cstdio>

#include "harness/figures.hpp"
#include "harness/runner.hpp"

int main() {
  using namespace apsim;

  std::printf("Page-aging ablation: 2x LU.B serial, 230 MB usable, 5 min "
              "quanta\n(aging gives referenced and freshly mapped pages "
              "several sweeps of protection)\n\n");

  ExperimentConfig base = figure_base(NpbApp::kLU, 1,
                                      fig7_usable_mb(NpbApp::kLU),
                                      PolicySet::original());
  ExperimentConfig batch_config = base;
  batch_config.batch_mode = true;
  const RunOutcome batch = run_batch(batch_config);

  Table table({"replacement", "policy", "makespan (s)", "overhead",
               "pages in", "reduction vs same-kernel orig"});
  for (bool aging : {false, true}) {
    double orig_overhead = 0.0;
    for (const char* combo : {"orig", "ai", "so/ao/ai/bg"}) {
      ExperimentConfig config = base;
      config.page_aging = aging;
      config.policy = PolicySet::parse(combo);
      const RunOutcome outcome = run_gang(config);
      const double overhead =
          switching_overhead(outcome.makespan, batch.makespan);
      if (std::string(combo) == "orig") orig_overhead = overhead;
      table.add_row({aging ? "clock + aging (2.2)" : "clock (1-bit)", combo,
                     Table::fmt(to_seconds(outcome.makespan), 0),
                     Table::pct(overhead, 1),
                     std::to_string(outcome.pages_swapped_in),
                     std::string(combo) == "orig"
                         ? "-"
                         : Table::pct(paging_reduction(overhead,
                                                       orig_overhead))});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Finding: aging barely moves any configuration — in particular it does "
      "NOT rescue\n`ai` alone. The limit is capacity, not sweep protection: "
      "replaying the full recorded\nset into an overcommitted machine forces "
      "the eviction of pages the incoming process\nstill needs, whichever "
      "pages the aging shields. Only gang-aware victim selection\n"
      "(selective page-out) breaks that loop, which is the paper's central "
      "design point.\n");
  return 0;
}
