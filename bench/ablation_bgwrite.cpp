// Ablation for the paper's Section 3.4 claim: background writing during
// roughly the last 10% of the quantum is the sweet spot — starting earlier
// re-writes pages that get dirtied again; starting later leaves dirty pages
// for the switch. Sweeps the bg start fraction on the serial LU setup.

#include <cstdio>

#include "harness/figures.hpp"
#include "harness/runner.hpp"

int main() {
  using namespace apsim;

  std::printf("Background-writing window ablation: 2x LU.B serial, 230 MB, "
              "so/ao/ai + bg\n(bg active from start_frac * quantum until the "
              "switch; paper: 0.9 works best)\n\n");

  ExperimentConfig base = figure_base(NpbApp::kLU, 1, fig7_usable_mb(NpbApp::kLU),
                                      PolicySet::parse("so/ao/ai/bg"));
  ExperimentConfig batch_config = base;
  batch_config.batch_mode = true;
  const RunOutcome batch = run_batch(batch_config);

  // Reference without background writing at all.
  ExperimentConfig no_bg = base;
  no_bg.policy = PolicySet::parse("so/ao/ai");
  const RunOutcome reference = run_gang(no_bg);
  const double ref_overhead =
      switching_overhead(reference.makespan, batch.makespan);

  Table table({"bg start fraction", "bg window", "makespan (s)", "overhead",
               "bg pages written", "vs no-bg overhead"});
  table.add_row({"(no bg)", "-", Table::fmt(to_seconds(reference.makespan), 0),
                 Table::pct(ref_overhead, 1), "0", "-"});
  for (double frac : {0.5, 0.7, 0.8, 0.9, 0.95}) {
    ExperimentConfig config = base;
    config.bg_start_frac = frac;
    const RunOutcome gang = run_gang(config);
    const double overhead = switching_overhead(gang.makespan, batch.makespan);
    table.add_row(
        {Table::fmt(frac, 2),
         "last " + Table::pct(1.0 - frac) + " of quantum",
         Table::fmt(to_seconds(gang.makespan), 0), Table::pct(overhead, 1),
         std::to_string(gang.bg_pages_written),
         Table::pct(paging_reduction(overhead, ref_overhead), 1)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
