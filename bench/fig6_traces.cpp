// Regenerates Figure 6: paging-activity traces of two gang-scheduled LU
// class C jobs on four machines under orig, so, so/ao and so/ao/ai/bg.

#include <iostream>

#include "harness/figures.hpp"

int main() {
  const auto figure = apsim::run_fig6();
  apsim::print_figure(std::cout, figure);
  return 0;
}
