// google-benchmark micro-benchmarks for the substrate hot paths: event
// queue, RNG, disk cost model, swap-slot allocator, clock reclaim sweep,
// VMM touch fast path, and the RLE page recorder.

#include <benchmark/benchmark.h>

#include "core/page_record.hpp"
#include "disk/disk_model.hpp"
#include "disk/swap_device.hpp"
#include "mem/vmm.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace apsim {
namespace {

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    EventQueue queue;
    for (std::size_t i = 0; i < n; ++i) {
      (void)queue.schedule(static_cast<SimTime>(rng.next_below(1 << 20)),
                           [] {});
    }
    while (!queue.empty()) {
      benchmark::DoNotOptimize(queue.pop().time);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1024)->Arg(16384);

void BM_RngZipf(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.zipf(100000, 0.9));
  }
}
BENCHMARK(BM_RngZipf);

void BM_DiskServiceTime(benchmark::State& state) {
  DiskModel model{DiskParams{}};
  Rng rng(3);
  for (auto _ : state) {
    const auto head = static_cast<BlockNum>(rng.next_below(1 << 20));
    const auto start = static_cast<BlockNum>(rng.next_below(1 << 20));
    benchmark::DoNotOptimize(model.service_time(head, start, 16));
  }
}
BENCHMARK(BM_DiskServiceTime);

void BM_SwapAllocFree(benchmark::State& state) {
  Simulator sim;
  Disk disk(sim, DiskParams{.num_blocks = 1 << 20});
  SwapDevice swap(disk, 0, 1 << 20);
  std::vector<SlotRun> runs;
  for (auto _ : state) {
    runs = swap.alloc_pages(512, 128);
    for (const auto& run : runs) {
      for (std::int64_t i = 0; i < run.count; ++i) {
        swap.free_slot(run.start + i);
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 512);
}
BENCHMARK(BM_SwapAllocFree);

struct VmmBench {
  Simulator sim;
  Disk disk{sim, DiskParams{.num_blocks = 1 << 20}};
  SwapDevice swap{disk, 0, 1 << 20};
  Vmm vmm{sim, swap, VmmParams{.total_frames = 1 << 18}};
};

void BM_VmmTouchFastPath(benchmark::State& state) {
  VmmBench bench;
  const Pid pid = bench.vmm.create_process(1 << 16);
  for (VPage v = 0; v < (1 << 16); ++v) {
    if (!bench.vmm.touch(pid, v, true)) {
      bench.vmm.fault(pid, v, true, [] {});
      bench.sim.run();
    }
  }
  auto& space = bench.vmm.space(pid);
  VPage v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench.vmm.touch(space, v, false));
    v = (v + 1) & 0xFFFF;
  }
}
BENCHMARK(BM_VmmTouchFastPath);

void BM_ClockPolicySweep(benchmark::State& state) {
  VmmBench bench;
  const Pid pid = bench.vmm.create_process(1 << 16);
  for (VPage v = 0; v < (1 << 16); ++v) {
    if (!bench.vmm.touch(pid, v, true)) {
      bench.vmm.fault(pid, v, true, [] {});
      bench.sim.run();
    }
  }
  ClockReclaimPolicy policy;
  for (auto _ : state) {
    auto victims = policy.select_victims(bench.vmm, 32);
    benchmark::DoNotOptimize(victims.size());
    // Re-reference so the next sweep has work to do.
    for (const auto& victim : victims) {
      benchmark::DoNotOptimize(bench.vmm.touch(victim.pid, victim.vpage, false));
    }
  }
}
BENCHMARK(BM_ClockPolicySweep);

void BM_PageRecorderSequential(benchmark::State& state) {
  const auto n = static_cast<VPage>(state.range(0));
  for (auto _ : state) {
    PageRecorder recorder;
    for (VPage v = 0; v < n; ++v) recorder.record(v);
    benchmark::DoNotOptimize(recorder.runs().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PageRecorderSequential)->Arg(4096)->Arg(65536);

void BM_PageRecorderFragmented(benchmark::State& state) {
  const auto n = static_cast<VPage>(state.range(0));
  for (auto _ : state) {
    PageRecorder recorder;
    for (VPage v = 0; v < n; ++v) recorder.record((v * 2) % n);
    benchmark::DoNotOptimize(recorder.runs().size());
  }
}
BENCHMARK(BM_PageRecorderFragmented)->Arg(4096);

}  // namespace
}  // namespace apsim

BENCHMARK_MAIN();
