// Tiering ablation: does a compressed in-RAM swap tier (zswap-style) in
// front of the disk cut gang-switch overhead? Sweeps the fig7 serial
// memory-pressure configurations with the tier off vs pool budgets of 10%
// and 25% of usable RAM, for the original kernel and the full so/ao/ai/bg
// policy. The pool budget is carved out of usable memory, so every win the
// tier shows is net of the RAM it consumes — and that carve also grows the
// per-switch paging deficit, so the tier only pays off when compression is
// strong enough that the pool absorbs more traffic than the carve creates.
// Each app gets the compressibility its data plausibly has: IS sorts
// zero-heavy integer keys (kZeroFilled, ~7:1), the dense floating-point
// apps get the bimodal mixed model (~2:1 with a quarter incompressible).
//
// Budgets that carve past the running job's own footprint are reported as
// infeasible instead of simulated: below that line the reclaimer thrashes
// the running job continuously and the run effectively never finishes.
//
// `--smoke` runs a small 2x IS.W pressure config instead (seconds, used by
// CI) with the same off/10%/25% sweep.

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "harness/figures.hpp"
#include "harness/runner.hpp"
#include "mem/vmm.hpp"
#include "workloads/spec.hpp"

namespace {

using namespace apsim;

struct Cell {
  std::string app;
  std::string policy;
  double budget_frac = 0.0;  // 0 = tier off
  bool infeasible = false;   // carve pushes the running job below its footprint
  EvaluatedRun run;
};

TierRatioModel tier_model_for(NpbApp app) {
  return app == NpbApp::kIS ? TierRatioModel::kZeroFilled
                            : TierRatioModel::kMixed;
}

/// A pool carve that leaves less than one running instance's footprint (plus
/// the reclaim watermark headroom) of usable memory puts the RUNNING job
/// under the reclaimer permanently — the run thrashes instead of switching.
bool carve_infeasible(const ExperimentConfig& config) {
  if (config.tier_mb <= 0.0) return false;
  const double headroom_mb =
      static_cast<double>(VmmParams{}.freepages_high) * kPageBytes /
      (1024.0 * 1024.0);
  const double footprint_mb = npb_spec(config.app, config.cls).footprint_mb(1);
  return config.usable_memory_mb - config.tier_mb <
         footprint_mb + headroom_mb;
}

ExperimentConfig smoke_base() {
  ExperimentConfig config;
  config.app = NpbApp::kIS;
  config.cls = NpbClass::kW;
  config.nodes = 1;
  config.instances = 2;
  config.node_memory_mb = 64.0;
  // Two 12 MB instances against 22 MB: enough overcommit that every switch
  // pages, while a 25% carve (16.5 MB left) still holds the running job
  // plus the freepages.high headroom.
  config.usable_memory_mb = 22.0;
  config.quantum = 4 * kSecond;
  config.iterations_scale = 0.5;
  return config;
}

std::string budget_name(double frac) {
  if (frac == 0.0) return "off";
  return Table::fmt(frac * 100.0, 0) + "%";
}

void print_app_panel(const std::string& app, TierRatioModel model,
                     const std::vector<Cell>& cells) {
  std::printf("%s (compressibility model: %s):\n", app.c_str(),
              std::string(to_string(model)).c_str());
  Table table({"policy", "tier", "makespan (s)", "overhead", "pool hit",
               "comp ratio", "writeback"});
  double overhead_off = -1.0, overhead_25 = -1.0;
  for (const Cell& cell : cells) {
    if (cell.app != app) continue;
    if (cell.infeasible) {
      table.add_row({cell.policy, budget_name(cell.budget_frac),
                     "infeasible: carve < running footprint", "-", "-", "-",
                     "-"});
      continue;
    }
    const RunOutcome& gang = cell.run.gang;
    const std::uint64_t swapins = gang.tier_pool_hits + gang.tier_pool_misses;
    const bool tiered = cell.budget_frac > 0.0;
    if (cell.policy != "orig") {
      if (cell.budget_frac == 0.0) overhead_off = cell.run.overhead;
      if (cell.budget_frac == 0.25) overhead_25 = cell.run.overhead;
    }
    table.add_row(
        {cell.policy, budget_name(cell.budget_frac),
         gang.makespan > 0 ? Table::fmt(to_seconds(gang.makespan), 1)
                           : "did not finish",
         Table::pct(cell.run.overhead, 1),
         tiered && swapins > 0
             ? Table::pct(static_cast<double>(gang.tier_pool_hits) /
                              static_cast<double>(swapins),
                          1)
             : "-",
         tiered ? Table::fmt(gang.tier_compression_ratio(), 2) : "-",
         tiered ? std::to_string(gang.tier_writeback_pages) : "-"});
  }
  std::printf("%s", table.to_string().c_str());
  if (overhead_off > 0.0 && overhead_25 >= 0.0) {
    std::printf("full-policy switch overhead, 25%% tier vs disk-only: "
                "%s -> %s\n",
                Table::pct(overhead_off, 1).c_str(),
                Table::pct(overhead_25, 1).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string_view(argv[1]) == "--smoke";
  const double budgets[] = {0.0, 0.10, 0.25};
  const struct {
    const char* name;
    PolicySet set;
  } policies[] = {{"orig", PolicySet::original()},
                  {"so/ao/ai/bg", PolicySet::all()}};

  std::vector<NpbApp> apps;
  if (smoke) {
    std::printf("Tiering ablation (smoke): 2x IS.W gang, 22 MB usable, "
                "q=4s, tier off/10%%/25%% of usable RAM\n\n");
    apps = {NpbApp::kIS};
  } else {
    std::printf("Tiering ablation: fig7 serial memory-pressure sweep, "
                "tier off/10%%/25%% of usable RAM\n"
                "(pool budget is wired out of usable memory; per-app "
                "compressibility: IS zero-heavy, others mixed)\n\n");
    apps = {NpbApp::kLU, NpbApp::kSP, NpbApp::kCG, NpbApp::kIS, NpbApp::kMG};
  }

  std::vector<Cell> cells;
  std::vector<ExperimentConfig> configs;  // only the feasible ones run
  std::vector<std::size_t> config_cell;
  for (NpbApp app : apps) {
    for (const auto& policy : policies) {
      for (double frac : budgets) {
        ExperimentConfig config =
            smoke ? smoke_base()
                  : figure_base(app, 1, fig7_usable_mb(app), policy.set);
        if (smoke) config.policy = policy.set;
        config.tier_mb = frac * config.usable_memory_mb;
        config.tier_ratio_model = tier_model_for(app);
        config.label = std::string(to_string(app)) + "/" + policy.name +
                       "/tier=" + budget_name(frac);
        Cell cell;
        cell.app = to_string(app);
        cell.policy = policy.name;
        cell.budget_frac = frac;
        cell.infeasible = carve_infeasible(config);
        cells.push_back(cell);
        if (!cells.back().infeasible) {
          configs.push_back(config);
          config_cell.push_back(cells.size() - 1);
        }
      }
    }
  }

  const auto evaluated = parallel_map<EvaluatedRun>(
      configs, [](const ExperimentConfig& c) { return evaluate(c); },
      smoke ? 2 : 0);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    cells[config_cell[i]].run = evaluated[i];
  }

  for (NpbApp app : apps) {
    print_app_panel(std::string(to_string(app)), tier_model_for(app), cells);
  }

  std::printf("tier counters (gang runs):\n");
  std::vector<RunOutcome> outcomes;
  for (const Cell& cell : cells) {
    if (cell.infeasible) continue;
    RunOutcome outcome = cell.run.gang;
    outcome.label = cell.app + " " + cell.policy + " tier=" +
                    budget_name(cell.budget_frac);
    outcomes.push_back(std::move(outcome));
  }
  std::printf("%s", tier_summary_table(outcomes).to_string().c_str());
  return 0;
}
