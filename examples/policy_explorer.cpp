// Policy explorer: a small CLI over the experiment harness. Pick an NPB
// app, data class, node count, usable memory, quantum and a set of policy
// combinations; get the paper's metrics (completion, switching overhead,
// paging reduction) for each combination.
//
// Usage:
//   policy_explorer [app] [class] [nodes] [usable_mb] [quantum_s] [policies...]
// Defaults: LU B 1 230 300 orig so so/ao so/ao/ai/bg

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/figures.hpp"
#include "harness/runner.hpp"

int main(int argc, char** argv) {
  using namespace apsim;

  NpbApp app = NpbApp::kLU;
  NpbClass cls = NpbClass::kB;
  int nodes = 1;
  double usable_mb = 230.0;
  double quantum_s = 300.0;
  std::vector<std::string> combos = {"orig", "so", "so/ao", "so/ao/ai/bg"};

  try {
    if (argc > 1) app = parse_app(argv[1]);
    if (argc > 2) cls = parse_class(argv[2]);
    if (argc > 3) nodes = std::atoi(argv[3]);
    if (argc > 4) usable_mb = std::atof(argv[4]);
    if (argc > 5) quantum_s = std::atof(argv[5]);
    if (argc > 6) {
      combos.clear();
      for (int i = 6; i < argc; ++i) {
        (void)PolicySet::parse(argv[i]);  // validate early
        combos.emplace_back(argv[i]);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    std::fprintf(stderr,
                 "usage: %s [LU|SP|CG|IS|MG] [S|W|A|B|C] [nodes] [usable_mb] "
                 "[quantum_s] [policies...]\n",
                 argv[0]);
    return 1;
  }

  const WorkloadSpec spec = npb_spec(app, cls);
  std::printf("%s class %s: footprint %.0f MB/process on %d node(s), "
              "%.0f MB usable, %.0fs quanta\n\n",
              std::string(to_string(app)).c_str(),
              std::string(to_string(cls)).c_str(), spec.footprint_mb(nodes),
              nodes, usable_mb, quantum_s);

  ExperimentConfig base = figure_base(app, nodes, usable_mb,
                                      PolicySet::original());
  base.cls = cls;
  base.quantum = static_cast<SimDuration>(quantum_s * kSecond);

  // Batch baseline first.
  ExperimentConfig batch_config = base;
  batch_config.batch_mode = true;
  const RunOutcome batch = run_batch(batch_config);
  if (batch.makespan < 0) {
    std::fprintf(stderr, "batch baseline did not finish within the horizon\n");
    return 1;
  }

  Table table({"policy", "makespan (s)", "overhead", "reduction vs orig",
               "pages in", "pages out"});
  double orig_overhead = -1.0;
  for (const auto& combo : combos) {
    ExperimentConfig config = base;
    config.policy = PolicySet::parse(combo);
    const RunOutcome gang = run_gang(config);
    if (gang.makespan < 0) {
      table.add_row({combo, "(timeout)", "-", "-", "-", "-"});
      continue;
    }
    const double overhead = switching_overhead(gang.makespan, batch.makespan);
    if (combo == "orig" || orig_overhead < 0.0) {
      if (!config.policy.any()) orig_overhead = overhead;
    }
    table.add_row({combo, Table::fmt(to_seconds(gang.makespan), 0),
                   Table::pct(overhead),
                   orig_overhead > 0.0
                       ? Table::pct(paging_reduction(overhead, orig_overhead))
                       : std::string("-"),
                   std::to_string(gang.pages_swapped_in),
                   std::to_string(gang.pages_swapped_out)});
  }
  std::printf("batch baseline: %.0fs\n\n%s", to_seconds(batch.makespan),
              table.to_string().c_str());
  return 0;
}
