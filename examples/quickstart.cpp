// Quickstart: gang-schedule two memory-hungry jobs on one simulated node,
// first with the original kernel paging, then with all four adaptive paging
// mechanisms, and compare the job-switch overhead against the batch
// baseline — the paper's core experiment in ~40 lines of API use.

#include <cstdio>

#include "harness/runner.hpp"
#include "metrics/table.hpp"

int main() {
  using namespace apsim;

  ExperimentConfig config;
  config.app = NpbApp::kLU;        // SSOR solver stand-in
  config.cls = NpbClass::kA;       // ~48 MB footprint
  config.nodes = 1;                // serial
  config.instances = 2;            // two jobs timeshare the node
  config.node_memory_mb = 128.0;
  config.usable_memory_mb = 64.0;  // force overcommit: 2 x 48 MB > 64 MB
  config.quantum = 30 * kSecond;

  std::printf("Running batch baseline and two gang-scheduled runs...\n");

  config.policy = PolicySet::original();
  const EvaluatedRun original = evaluate(config);

  config.policy = PolicySet::parse("so/ao/ai/bg");
  const EvaluatedRun adaptive = evaluate(config);

  Table table({"schedule", "makespan (s)", "switch overhead"});
  table.add_row({"batch (no timesharing)",
                 Table::fmt(to_seconds(original.batch.makespan), 1), "-"});
  table.add_row({"gang, original LRU paging",
                 Table::fmt(to_seconds(original.gang.makespan), 1),
                 Table::pct(original.overhead)});
  table.add_row({"gang, adaptive so/ao/ai/bg",
                 Table::fmt(to_seconds(adaptive.gang.makespan), 1),
                 Table::pct(adaptive.overhead)});
  std::printf("%s\n", table.to_string().c_str());

  const double reduction =
      paging_reduction(adaptive.overhead, original.overhead);
  std::printf("Adaptive paging removed %.0f%% of the job-switch paging "
              "overhead.\n", reduction * 100.0);
  return 0;
}
