// Cluster demo: two parallel LU jobs (one MPI rank per node) gang-scheduled
// across a simulated 4-node cluster, with adaptive paging compacting the
// job-switch paging on every node simultaneously. Prints per-node paging
// totals, the per-rank time breakdown, and the cluster-level result.

#include <cstdio>

#include "cluster/cluster.hpp"
#include "gang/gang_scheduler.hpp"
#include "metrics/table.hpp"
#include "net/mpi.hpp"
#include "workloads/npb.hpp"

namespace {

struct ClusterRun {
  double makespan_s = 0.0;
  std::vector<std::uint64_t> node_pages_in;
  std::vector<double> rank_fault_wait_s;
  std::vector<double> rank_comm_wait_s;
};

ClusterRun run(const apsim::PolicySet& policy) {
  using namespace apsim;
  constexpr int kNodes = 4;

  NodeParams node;
  node.vmm.total_frames = mb_to_pages(256.0);
  node.wired_mb = 256.0 - 120.0;  // 120 MB usable per node
  node.swap_slots = mb_to_pages(1024.0);
  node.disk.num_blocks = node.swap_slots;
  Cluster cluster(kNodes, node);

  GangParams params;
  params.quantum = 60 * kSecond;
  params.pager.policy = policy;
  GangScheduler scheduler(cluster, params);

  const WorkloadSpec spec = npb_spec(NpbApp::kLU, NpbClass::kB);
  std::vector<std::unique_ptr<Process>> procs;
  std::vector<std::unique_ptr<MpiComm>> comms;
  for (int j = 0; j < 2; ++j) {
    Job& job = scheduler.create_job("LU#" + std::to_string(j));
    auto comm = std::make_unique<MpiComm>(cluster.sim(), cluster.network(),
                                          kNodes);
    for (int n = 0; n < kNodes; ++n) {
      NpbBuildOptions options;
      options.nprocs = kNodes;
      options.seed = 11 + static_cast<std::uint64_t>(j);
      options.iterations_scale = 0.4;
      const Pid pid = cluster.node(n).vmm().create_process(
          spec.footprint_pages(kNodes));
      procs.push_back(std::make_unique<Process>(
          "LU#" + std::to_string(j) + ":r" + std::to_string(n), pid,
          build_npb_program(spec, options)));
      cluster.node(n).cpu().attach(*procs.back());
      comm->bind(n, *procs.back(), n);
      job.add_process(n, *procs.back());
    }
    comms.push_back(std::move(comm));
  }
  // CPUs host one rank of each job: dispatch comm ops by job id.
  for (int n = 0; n < kNodes; ++n) {
    cluster.node(n).cpu().set_comm_handler(
        [&comms](Process& p, const CommOp& op, std::function<void()> resume) {
          comms[static_cast<std::size_t>(p.job_id)]->enter(p, op,
                                                           std::move(resume));
        });
  }

  scheduler.start();
  cluster.sim().run_until([&] { return scheduler.all_finished(); },
                          24 * 3600 * kSecond);

  ClusterRun result;
  result.makespan_s = to_seconds(scheduler.makespan());
  for (int n = 0; n < kNodes; ++n) {
    result.node_pages_in.push_back(static_cast<std::uint64_t>(
        cluster.node(n).vmm().pagein_series().total()));
  }
  for (const auto& p : procs) {
    result.rank_fault_wait_s.push_back(to_seconds(p->stats().fault_wait));
    result.rank_comm_wait_s.push_back(to_seconds(p->stats().comm_wait));
  }
  return result;
}

}  // namespace

int main() {
  using namespace apsim;
  std::printf("Gang-scheduling 2x parallel LU (4 ranks each) on a 4-node "
              "cluster, 120 MB/node...\n\n");

  const ClusterRun orig = run(PolicySet::original());
  const ClusterRun adaptive = run(PolicySet::all());

  Table table({"metric", "orig", "so/ao/ai/bg"});
  table.add_row({"makespan", Table::seconds(orig.makespan_s),
                 Table::seconds(adaptive.makespan_s)});
  for (std::size_t n = 0; n < orig.node_pages_in.size(); ++n) {
    table.add_row({"node" + std::to_string(n) + " pages swapped in",
                   std::to_string(orig.node_pages_in[n]),
                   std::to_string(adaptive.node_pages_in[n])});
  }
  double orig_fault = 0, adpt_fault = 0, orig_comm = 0, adpt_comm = 0;
  for (std::size_t i = 0; i < orig.rank_fault_wait_s.size(); ++i) {
    orig_fault += orig.rank_fault_wait_s[i];
    adpt_fault += adaptive.rank_fault_wait_s[i];
    orig_comm += orig.rank_comm_wait_s[i];
    adpt_comm += adaptive.rank_comm_wait_s[i];
  }
  table.add_row({"total rank fault-wait", Table::seconds(orig_fault),
                 Table::seconds(adpt_fault)});
  table.add_row({"total rank comm-wait (gang skew)",
                 Table::seconds(orig_comm), Table::seconds(adpt_comm)});
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Adaptive paging makes all four nodes page simultaneously at "
              "the switch, so ranks\nreach their next barrier together — "
              "both fault-wait and comm-wait shrink.\n");
  return 0;
}
