// Trace visualizer: run one gang-scheduled configuration and render the
// Figure-6-style paging-activity trace of node 0 as ASCII charts, plus the
// switch-phase latency summary from the span tracer, plus a CSV dump for
// external plotting.
//
// Usage:
//   trace_visualizer [policy] [minutes] [csv_path] [trace_json]
// Defaults: so/ao/ai/bg, 30 minutes, no CSV, no Chrome trace file. Pass a
// trace_json path to also write Chrome trace_event JSON of the run (open in
// chrome://tracing or https://ui.perfetto.dev).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "harness/figures.hpp"
#include "harness/runner.hpp"
#include "metrics/table.hpp"
#include "metrics/trace.hpp"
#include "metrics/tracer.hpp"

int main(int argc, char** argv) {
  using namespace apsim;

  std::string policy = argc > 1 ? argv[1] : "so/ao/ai/bg";
  const long minutes = argc > 2 ? std::atol(argv[2]) : 30;
  const char* csv_path = argc > 3 ? argv[3] : nullptr;
  const char* json_path = argc > 4 ? argv[4] : nullptr;

  ExperimentConfig config;
  config.app = NpbApp::kLU;
  config.cls = NpbClass::kB;
  config.nodes = 1;
  config.instances = 2;
  config.usable_memory_mb = 230.0;
  config.quantum = 3 * kMinute;
  config.capture_traces = true;
  // Always collect switch-phase spans; only write the Chrome JSON on request.
  config.trace_json = json_path != nullptr ? json_path : "-";
  config.horizon = minutes * kMinute;
  try {
    config.policy = PolicySet::parse(policy);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::printf("2x LU.B on one node, 230 MB usable, 3 min quanta, policy %s, "
              "first %ld min:\n\n",
              config.policy.to_string().c_str(), minutes);
  const RunOutcome outcome = run_gang(config);
  if (outcome.traces.empty()) {
    std::fprintf(stderr, "no trace captured\n");
    return 1;
  }
  const PagingTrace& trace = outcome.traces.front();

  AsciiChartOptions chart;
  chart.columns = 110;
  chart.rows = 8;
  chart.t_end = minutes * kMinute;
  std::printf("%s\n", render_ascii_trace(trace, chart).c_str());
  std::printf("totals: %.0f pages in, %.0f pages out; burst concentration "
              "(top 30 s): in %.0f%%, out %.0f%%\n",
              trace.pages_in.total(), trace.pages_out.total(),
              100.0 * burst_concentration(trace.pages_in, 30),
              100.0 * burst_concentration(trace.pages_out, 30));

  if (!outcome.switch_phases.empty()) {
    std::printf("\nswitch-phase latencies (%d switches):\n%s",
                outcome.switches,
                switch_phase_table(outcome).to_string().c_str());
  }

  if (csv_path != nullptr) {
    std::ofstream csv(csv_path);
    if (!csv) {
      std::fprintf(stderr, "cannot open %s\n", csv_path);
      return 1;
    }
    write_trace_csv(csv, trace);
    std::printf("wrote %s\n", csv_path);
  }
  if (json_path != nullptr) {
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
