// Scenario runner: execute every [run] of a scenario file (see
// src/harness/scenario.hpp for the format) and print a comparison table,
// optionally exporting per-job results as CSV.
//
// Usage:
//   run_scenario <scenario-file> [results.csv]
//
// Without arguments, runs a built-in demo scenario.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "metrics/csv.hpp"
#include "metrics/table.hpp"

namespace {

constexpr const char* kDemoScenario = R"(
# Demo: the paper's serial LU experiment at three policy levels.
[defaults]
app = LU
class = B
nodes = 1
instances = 2
usable_mb = 230
quantum_s = 300

[run]
label = batch baseline
batch = true

[run]
label = original kernel
policy = orig

[run]
label = selective + aggressive
policy = so/ao

[run]
label = all four mechanisms
policy = so/ao/ai/bg
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace apsim;

  std::vector<ExperimentConfig> configs;
  try {
    if (argc > 1) {
      std::ifstream file(argv[1]);
      if (!file) {
        std::fprintf(stderr, "cannot open %s\n", argv[1]);
        return 1;
      }
      configs = parse_scenario(file);
    } else {
      std::printf("(no scenario file given; running the built-in demo)\n\n");
      configs = parse_scenario(kDemoScenario);
    }
    // Validate before launching the (parallel) runs: an exception thrown
    // inside a worker thread would terminate the process instead of
    // producing an error message.
    for (const auto& config : configs) config.validate();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  if (configs.empty()) {
    std::fprintf(stderr, "scenario contains no [run] sections\n");
    return 1;
  }

  auto outcomes = parallel_map<RunOutcome>(
      configs, [](const ExperimentConfig& c) { return run_config(c); });

  Table table({"run", "policy", "makespan (s)", "mean completion (s)",
               "pages in", "pages out", "failed"});
  for (const auto& outcome : outcomes) {
    std::string makespan = "(timeout)";
    if (outcome.makespan >= 0) {
      makespan = Table::fmt(to_seconds(outcome.makespan), 0);
    } else if (outcome.jobs_failed > 0) {
      makespan = "(jobs failed)";
    }
    table.add_row({outcome.label, outcome.policy, makespan,
                   Table::fmt(mean_completion_s(outcome), 0),
                   std::to_string(outcome.pages_swapped_in),
                   std::to_string(outcome.pages_swapped_out),
                   std::to_string(outcome.jobs_failed)});
  }
  std::printf("%s", table.to_string().c_str());

  if (argc > 2) {
    std::ofstream csv(argv[2]);
    if (!csv) {
      std::fprintf(stderr, "cannot open %s\n", argv[2]);
      return 1;
    }
    write_outcomes_csv(csv, outcomes);
    std::printf("\nwrote %s\n", argv[2]);
  }
  return 0;
}
