#pragma once

#include <cstdio>
#include <string>
#include <string_view>

#include "sim/time.hpp"

/// \file log.hpp
/// Minimal leveled logger with sim-time prefixes. Logging is per-Logger (not
/// global) so concurrent Simulators on worker threads never contend; each
/// Logger is bound to one Simulator's clock via a time callback.

namespace apsim {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

[[nodiscard]] std::string_view to_string(LogLevel level);

class Logger {
 public:
  using Clock = SimTime (*)(const void*);

  /// \p clock_ctx / \p clock supply the current sim time for prefixes; pass
  /// nullptr for both to log without timestamps.
  Logger(std::string name, const void* clock_ctx, Clock clock,
         LogLevel level = LogLevel::kWarn, std::FILE* sink = stderr)
      : name_(std::move(name)), clock_ctx_(clock_ctx), clock_(clock),
        level_(level), sink_(sink) {}

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  /// printf-style logging; cheap no-op when the level is filtered out.
  template <typename... Args>
  void log(LogLevel level, const char* fmt, Args... args) {
    if (!enabled(level)) return;
    write_prefix(level);
    std::fprintf(sink_, fmt, args...);
    std::fputc('\n', sink_);
  }

  template <typename... Args>
  void trace(const char* fmt, Args... args) { log(LogLevel::kTrace, fmt, args...); }
  template <typename... Args>
  void debug(const char* fmt, Args... args) { log(LogLevel::kDebug, fmt, args...); }
  template <typename... Args>
  void info(const char* fmt, Args... args) { log(LogLevel::kInfo, fmt, args...); }
  template <typename... Args>
  void warn(const char* fmt, Args... args) { log(LogLevel::kWarn, fmt, args...); }
  template <typename... Args>
  void error(const char* fmt, Args... args) { log(LogLevel::kError, fmt, args...); }

 private:
  void write_prefix(LogLevel level);

  std::string name_;
  const void* clock_ctx_;
  Clock clock_;
  LogLevel level_;
  std::FILE* sink_;
};

}  // namespace apsim
