#pragma once

#include <cstdint>
#include <string>

/// \file time.hpp
/// Simulated-time primitives. All simulation time is integer nanoseconds so
/// that runs are exactly reproducible; helpers below make call sites read in
/// natural units (us/ms/s/minutes).

namespace apsim {

/// Simulated time in nanoseconds since the start of the run.
using SimTime = std::int64_t;

/// Durations share the representation of SimTime.
using SimDuration = std::int64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1'000;
inline constexpr SimDuration kMillisecond = 1'000'000;
inline constexpr SimDuration kSecond = 1'000'000'000;
inline constexpr SimDuration kMinute = 60 * kSecond;

/// Construct durations from natural units.
[[nodiscard]] constexpr SimDuration nanoseconds(std::int64_t n) { return n; }
[[nodiscard]] constexpr SimDuration microseconds(std::int64_t n) { return n * kMicrosecond; }
[[nodiscard]] constexpr SimDuration milliseconds(std::int64_t n) { return n * kMillisecond; }
[[nodiscard]] constexpr SimDuration seconds(std::int64_t n) { return n * kSecond; }
[[nodiscard]] constexpr SimDuration minutes(std::int64_t n) { return n * kMinute; }

/// Convert to floating-point seconds (for reporting only; never feeds back
/// into simulation decisions).
[[nodiscard]] constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

[[nodiscard]] constexpr double to_milliseconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

/// Render a duration as a short human-readable string, e.g. "4m32.1s".
[[nodiscard]] std::string format_duration(SimDuration d);

}  // namespace apsim
