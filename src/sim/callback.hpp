#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>

/// \file callback.hpp
/// Small-buffer-optimized callable for the simulator's event hot path.
/// `std::function` heap-allocates for any capture larger than two pointers,
/// which on the fault path means one malloc/free pair per scheduled event.
/// `InlineCallback` stores callables up to kInlineSize bytes in place, so the
/// common scheduling path (captures of a component pointer plus a few ids and
/// a nested continuation) performs no allocation at all; oversized callables
/// fall back to a single heap cell.

namespace apsim {

namespace detail {

/// Callable types that have a natural empty state worth preserving: wrapping
/// an empty std::function (or a null function pointer) yields an empty
/// InlineCallback instead of a callable that would throw when invoked.
template <typename T>
inline constexpr bool is_null_checkable_v = false;
template <typename R, typename... A>
inline constexpr bool is_null_checkable_v<std::function<R(A...)>> = true;
template <typename R, typename... A>
inline constexpr bool is_null_checkable_v<R (*)(A...)> = true;

}  // namespace detail

/// Move-only `void()` callable with inline storage. Invoking an empty
/// InlineCallback is undefined (asserted in debug builds), matching the
/// EventQueue precondition that scheduled callbacks are non-empty.
class InlineCallback {
 public:
  /// Sized so the Vmm fault path's largest common capture set (component
  /// pointer, pid/page ids, a nested std::function continuation, retry
  /// counters) stays inline.
  static constexpr std::size_t kInlineSize = 96;

  InlineCallback() = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, InlineCallback> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (detail::is_null_checkable_v<Fn>) {
      if (!f) return;  // empty in, empty out
    }
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      call_ = [](void* buf) { (*std::launder(reinterpret_cast<Fn*>(buf)))(); };
      manage_ = [](Op op, void* self, void* other) {
        Fn* fn = std::launder(reinterpret_cast<Fn*>(self));
        if (op == Op::kMoveTo) {
          ::new (other) Fn(std::move(*fn));
        }
        fn->~Fn();
      };
    } else {
      Fn* heap = new Fn(std::forward<F>(f));
      std::memcpy(buf_, &heap, sizeof heap);
      call_ = [](void* buf) {
        Fn* fn;
        std::memcpy(&fn, buf, sizeof fn);
        (*fn)();
      };
      manage_ = [](Op op, void* self, void* other) {
        if (op == Op::kMoveTo) {
          std::memcpy(other, self, sizeof(void*));  // transfer ownership
        } else {
          Fn* fn;
          std::memcpy(&fn, self, sizeof fn);
          delete fn;
        }
      };
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { move_from(other); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  /// Destroy the held callable (no-op when empty).
  void reset() {
    if (call_ != nullptr) {
      manage_(Op::kDestroy, buf_, nullptr);
      call_ = nullptr;
      manage_ = nullptr;
    }
  }

  void operator()() {
    assert(call_ != nullptr && "invoking an empty InlineCallback");
    call_(buf_);
  }

  [[nodiscard]] explicit operator bool() const { return call_ != nullptr; }

 private:
  enum class Op : std::uint8_t { kMoveTo, kDestroy };

  void move_from(InlineCallback& other) noexcept {
    if (other.call_ != nullptr) {
      other.manage_(Op::kMoveTo, other.buf_, buf_);
      call_ = other.call_;
      manage_ = other.manage_;
      other.call_ = nullptr;
      other.manage_ = nullptr;
    }
  }

  void (*call_)(void*) = nullptr;
  void (*manage_)(Op, void*, void*) = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
};

}  // namespace apsim
