#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"

/// \file event_queue.hpp
/// The simulator's pending-event set: a binary heap ordered by (time, seq).
/// The monotonically increasing sequence number makes ordering of same-time
/// events deterministic (FIFO in scheduling order), which in turn makes every
/// simulation run bit-reproducible.
///
/// Hot-path design (the simulator dispatches millions of events per run):
///  * Callbacks live in a slab-allocated slot pool; the heap itself holds
///    24-byte (time, seq, slot) entries, so sift operations move small PODs
///    instead of type-erased callables.
///  * Slots are recycled through a free list and carry a generation counter;
///    an EventHandle is (slot, generation), so cancellation needs no
///    per-event shared_ptr control block and a stale handle to a recycled
///    slot can never cancel its new occupant.
///  * Callbacks are `InlineCallback`s (small-buffer optimized), so the
///    common schedule() performs no heap allocation at all.
///  * pop() drains the whole same-time run at the top of the heap into a
///    flat batch buffer once, then serves the run FIFO in O(1) per event —
///    gang switches, signal broadcasts and waiter releases schedule many
///    events at one instant.

namespace apsim {

namespace detail {

/// One pooled event: the callback plus the slot's bookkeeping. `generation`
/// increments every time the slot is released, invalidating old handles.
struct EventSlot {
  InlineCallback fn;
  std::uint32_t generation = 1;
  std::uint32_t next_free = 0;  ///< free-list link, index + 1 (0 = end)
  bool armed = false;           ///< slot holds a scheduled, unpopped event
  bool cancelled = false;       ///< tombstone: dropped lazily at the heap top
};

/// Slab-allocated slot pool. Slabs are never moved or freed while the queue
/// lives, so slots have stable addresses; the pool is shared (via
/// shared_ptr) with EventHandles so `pending()` stays safe after the owning
/// queue is destroyed.
class EventPool {
 public:
  static constexpr std::uint32_t kSlabBits = 8;
  static constexpr std::uint32_t kSlabSize = 1u << kSlabBits;  // slots/slab

  [[nodiscard]] EventSlot& slot(std::uint32_t index) {
    return slabs_[index >> kSlabBits]->slots[index & (kSlabSize - 1)];
  }
  [[nodiscard]] const EventSlot& slot(std::uint32_t index) const {
    return slabs_[index >> kSlabBits]->slots[index & (kSlabSize - 1)];
  }

  /// Pop a free slot (or grow by one slab). The returned slot is disarmed.
  [[nodiscard]] std::uint32_t acquire() {
    if (free_head_ != 0) {
      const std::uint32_t index = free_head_ - 1;
      free_head_ = slot(index).next_free;
      return index;
    }
    if (allocated_ == slabs_.size() * kSlabSize) {
      slabs_.push_back(std::make_unique<Slab>());
    }
    return allocated_++;
  }

  /// Return a slot to the free list: drops the callback, bumps the
  /// generation (outstanding handles stop matching), clears the flags.
  void release(std::uint32_t index) {
    EventSlot& s = slot(index);
    s.fn.reset();
    s.armed = false;
    s.cancelled = false;
    ++s.generation;
    s.next_free = free_head_;
    free_head_ = index + 1;
  }

 private:
  struct Slab {
    std::array<EventSlot, kSlabSize> slots;
  };
  std::vector<std::unique_ptr<Slab>> slabs_;
  std::uint32_t free_head_ = 0;  ///< index + 1 (0 = empty)
  std::uint32_t allocated_ = 0;
};

}  // namespace detail

/// Opaque handle to a scheduled event; used only for cancellation. Copyable;
/// remains safe (reports !pending()) after the event fires, is cancelled,
/// its slot is reused, or the whole queue is destroyed.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the handle refers to an event that has neither fired nor been
  /// cancelled.
  [[nodiscard]] bool pending() const {
    auto pool = pool_.lock();
    if (pool == nullptr) return false;
    const detail::EventSlot& s = pool->slot(slot_);
    return s.generation == generation_ && s.armed && !s.cancelled;
  }

 private:
  friend class EventQueue;
  EventHandle(std::weak_ptr<detail::EventPool> pool, std::uint32_t slot,
              std::uint32_t generation)
      : pool_(std::move(pool)), slot_(slot), generation_(generation) {}

  std::weak_ptr<detail::EventPool> pool_;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;  ///< 0 never matches a live slot
};

/// Min-heap of timed callbacks. Not thread-safe by design: each Simulator is
/// single-threaded; concurrency in experiments is one Simulator per thread.
class EventQueue {
 public:
  using Callback = InlineCallback;

  EventQueue() : pool_(std::make_shared<detail::EventPool>()) {}

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;
  EventQueue(EventQueue&&) = default;
  EventQueue& operator=(EventQueue&&) = default;
  ~EventQueue() = default;

  /// Schedule \p fn at absolute time \p when (must be >= the last popped
  /// time; enforced by the Simulator, not here).
  EventHandle schedule(SimTime when, Callback fn);

  /// Cancel a previously scheduled event. Cancelling an already-fired or
  /// already-cancelled event is a harmless no-op. The callback is destroyed
  /// eagerly; the heap entry is dropped lazily when it reaches the top.
  void cancel(const EventHandle& handle);

  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Time of the earliest pending event. Precondition: !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Remove and return the earliest pending callback along with its time.
  /// Precondition: !empty().
  struct Popped {
    SimTime time;
    Callback fn;
  };
  [[nodiscard]] Popped pop();

  /// Number of live (non-cancelled) events currently queued.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Total events ever scheduled (diagnostic).
  [[nodiscard]] std::uint64_t total_scheduled() const { return seq_; }

 private:
  struct HeapEntry {
    SimTime time = 0;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;

    friend bool operator>(const HeapEntry& a, const HeapEntry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Shed cancelled tombstones from the batch head and the heap top.
  void prune() const;
  [[nodiscard]] bool batch_pending() const {
    return batch_head_ < batch_.size();
  }

  std::shared_ptr<detail::EventPool> pool_;
  // Mutable so that next_time()/prune() can shed cancelled tombstones.
  mutable std::vector<HeapEntry> heap_;
  mutable std::vector<HeapEntry> batch_;  ///< drained same-time run (FIFO)
  mutable std::size_t batch_head_ = 0;
  std::uint64_t seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace apsim
