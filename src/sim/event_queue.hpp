#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/time.hpp"

/// \file event_queue.hpp
/// The simulator's pending-event set: a binary heap ordered by (time, seq).
/// The monotonically increasing sequence number makes ordering of same-time
/// events deterministic (FIFO in scheduling order), which in turn makes every
/// simulation run bit-reproducible.

namespace apsim {

/// Opaque handle to a scheduled event; used only for cancellation.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the handle refers to an event that has neither fired nor been
  /// cancelled.
  [[nodiscard]] bool pending() const {
    auto p = flag_.lock();
    return p != nullptr && !*p;
  }

 private:
  friend class EventQueue;
  explicit EventHandle(std::weak_ptr<bool> flag) : flag_(std::move(flag)) {}
  std::weak_ptr<bool> flag_;  // points at the event's cancelled flag
};

/// Min-heap of timed callbacks. Not thread-safe by design: each Simulator is
/// single-threaded; concurrency in experiments is one Simulator per thread.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule \p fn at absolute time \p when (must be >= the last popped
  /// time; enforced by the Simulator, not here).
  EventHandle schedule(SimTime when, Callback fn);

  /// Cancel a previously scheduled event. Cancelling an already-fired or
  /// already-cancelled event is a harmless no-op. Cancelled events are
  /// dropped lazily when they reach the top of the heap.
  void cancel(const EventHandle& handle);

  [[nodiscard]] bool empty() const;

  /// Time of the earliest pending event. Precondition: !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Remove and return the earliest pending callback along with its time.
  /// Precondition: !empty().
  struct Popped {
    SimTime time;
    Callback fn;
  };
  [[nodiscard]] Popped pop();

  /// Number of live (non-cancelled) events currently queued.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Total events ever scheduled (diagnostic).
  [[nodiscard]] std::uint64_t total_scheduled() const { return seq_; }

 private:
  struct Entry {
    SimTime time = 0;
    std::uint64_t seq = 0;
    Callback fn;
    std::shared_ptr<bool> cancelled;  // shared with EventHandle

    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled_top() const;

  // Mutable so that empty()/next_time() can shed cancelled tombstones.
  mutable std::vector<Entry> heap_;
  std::uint64_t seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace apsim
