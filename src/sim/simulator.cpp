#include "sim/simulator.hpp"

#include <cassert>
#include <cstdio>
#include <utility>

namespace apsim {

EventHandle Simulator::at(SimTime when, EventQueue::Callback fn) {
  assert(when >= now_ && "cannot schedule into the past");
  return queue_.schedule(when < now_ ? now_ : when, std::move(fn));
}

EventHandle Simulator::after(SimDuration delay, EventQueue::Callback fn) {
  assert(delay >= 0 && "negative delay");
  return at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
}

std::uint64_t Simulator::run(SimTime horizon) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && !queue_.empty()) {
    if (queue_.next_time() > horizon) break;
    auto [time, fn] = queue_.pop();
    assert(time >= now_);
    now_ = time;
    fn();
    ++n;
    ++dispatched_;
  }
  return n;
}

bool Simulator::run_until(const std::function<bool()>& pred, SimTime horizon) {
  stopped_ = false;
  if (pred()) return true;
  while (!stopped_ && !queue_.empty()) {
    if (queue_.next_time() > horizon) break;
    auto [time, fn] = queue_.pop();
    assert(time >= now_);
    now_ = time;
    fn();
    ++dispatched_;
    if (pred()) return true;
  }
  return false;
}

}  // namespace apsim
