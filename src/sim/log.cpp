#include "sim/log.hpp"

#include <cmath>
#include <cstdio>

namespace apsim {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::string format_duration(SimDuration d) {
  char buf[64];
  const bool negative = d < 0;
  if (negative) d = -d;
  const double secs = to_seconds(d);
  if (secs >= 60.0) {
    const auto mins = static_cast<long>(secs / 60.0);
    std::snprintf(buf, sizeof buf, "%s%ldm%.1fs", negative ? "-" : "", mins,
                  secs - static_cast<double>(mins) * 60.0);
  } else if (secs >= 1.0) {
    std::snprintf(buf, sizeof buf, "%s%.3fs", negative ? "-" : "", secs);
  } else if (d >= kMillisecond) {
    std::snprintf(buf, sizeof buf, "%s%.3fms", negative ? "-" : "",
                  to_milliseconds(d));
  } else {
    std::snprintf(buf, sizeof buf, "%s%ldus", negative ? "-" : "",
                  static_cast<long>(d / kMicrosecond));
  }
  return buf;
}

void Logger::write_prefix(LogLevel level) {
  if (clock_ != nullptr) {
    const SimTime t = clock_(clock_ctx_);
    std::fprintf(sink_, "[%10.4fs] %-5s %s: ", to_seconds(t),
                 std::string(to_string(level)).c_str(), name_.c_str());
  } else {
    std::fprintf(sink_, "%-5s %s: ", std::string(to_string(level)).c_str(),
                 name_.c_str());
  }
}

}  // namespace apsim
