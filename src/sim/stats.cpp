#include "sim/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace apsim {

void RunningStat::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double RunningStat::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  assert(hi > lo && buckets > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge
    ++counts_[idx];
  }
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  // Occupied extent: quantiles of a sparse histogram should report edges of
  // buckets that actually hold samples, not the [lo, hi) frame it was
  // configured with.
  std::size_t first = counts_.size();
  std::size_t last = counts_.size();
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] > 0) {
      if (first == counts_.size()) first = i;
      last = i;
    }
  }
  if (q == 0.0) {
    // The 0-quantile is the smallest observed value's bucket edge: lo_ only
    // when the underflow bin holds samples, else the first occupied bucket's
    // lower edge (hi_ when every sample overflowed).
    if (underflow_ > 0) return lo_;
    if (first != counts_.size()) {
      return lo_ + static_cast<double>(first) * width_;
    }
    return hi_;
  }
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return lo_ + (static_cast<double>(i) + frac) * width_;
    }
    cum = next;
  }
  // Target beyond the last occupied bucket: only the overflow bin can
  // account for it. With nothing overflowed the answer is the upper edge of
  // the last occupied bucket, not hi_.
  if (overflow_ == 0 && last != counts_.size()) {
    return lo_ + static_cast<double>(last + 1) * width_;
  }
  return hi_;
}

TimeSeries::TimeSeries(SimDuration bucket_width, SimTime origin)
    : width_(bucket_width), origin_(origin) {
  assert(bucket_width > 0);
}

void TimeSeries::add(SimTime t, double amount) {
  if (t < origin_) t = origin_;
  const auto idx = static_cast<std::size_t>((t - origin_) / width_);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0.0);
  buckets_[idx] += amount;
  total_ += amount;
}

double TimeSeries::sum_range(SimTime t0, SimTime t1) const {
  if (t1 <= t0 || buckets_.empty()) return 0.0;
  const auto last_end =
      origin_ + static_cast<SimTime>(buckets_.size()) * width_;
  t0 = std::max(t0, origin_);
  t1 = std::min(t1, last_end);
  if (t1 <= t0) return 0.0;
  const auto first = static_cast<std::size_t>((t0 - origin_) / width_);
  const auto last = static_cast<std::size_t>((t1 - 1 - origin_) / width_);
  double sum = 0.0;
  for (std::size_t i = first; i <= last && i < buckets_.size(); ++i) {
    sum += buckets_[i];
  }
  return sum;
}

double TimeSeries::peak() const {
  double best = 0.0;
  for (double b : buckets_) best = std::max(best, b);
  return best;
}

}  // namespace apsim
