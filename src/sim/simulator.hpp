#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

/// \file simulator.hpp
/// Discrete-event simulation kernel. One Simulator instance owns virtual time
/// and the pending-event set for one modelled cluster. All model components
/// (disks, kernels, CPUs, the network, the gang scheduler) hold a reference to
/// the Simulator and advance exclusively by scheduling events on it.

namespace apsim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Root RNG; components derive their own streams by drawing seeds here
  /// during construction so that adding a component does not perturb others.
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Schedule \p fn at absolute virtual time \p when (>= now()).
  EventHandle at(SimTime when, EventQueue::Callback fn);

  /// Schedule \p fn \p delay nanoseconds from now (delay >= 0).
  EventHandle after(SimDuration delay, EventQueue::Callback fn);

  /// Cancel a pending event (no-op if it already fired or was cancelled).
  void cancel(const EventHandle& handle) { queue_.cancel(handle); }

  /// Run until the event queue drains, until stop() is called, or until
  /// virtual time would exceed \p horizon, whichever comes first.
  /// Returns the number of events dispatched by this call.
  std::uint64_t run(SimTime horizon = std::numeric_limits<SimTime>::max());

  /// Run until \p pred() becomes true (checked after every event) or the
  /// queue drains. Returns true if the predicate was satisfied.
  bool run_until(const std::function<bool()>& pred,
                 SimTime horizon = std::numeric_limits<SimTime>::max());

  /// Request that run() return after the current event completes.
  void stop() { stopped_ = true; }

  [[nodiscard]] bool stopped() const { return stopped_; }

  /// Number of pending (non-cancelled) events.
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Total events dispatched over the Simulator's lifetime.
  [[nodiscard]] std::uint64_t events_dispatched() const { return dispatched_; }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  Rng rng_;
  bool stopped_ = false;
  std::uint64_t dispatched_ = 0;
};

}  // namespace apsim
