#pragma once

#include <cstdint>
#include <cmath>
#include <limits>

/// \file rng.hpp
/// Deterministic pseudo-random generation for the simulator.
///
/// We use xoshiro256** seeded through splitmix64: fast, high quality, and —
/// unlike std::mt19937 + std::*_distribution — bit-for-bit identical across
/// standard library implementations, which keeps experiment outputs stable.

namespace apsim {

/// splitmix64 step; used for seeding and as a cheap standalone mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x5DEECE66DULL) { reseed(seed); }

  constexpr void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method: unbiased and branch-light.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// True with probability p.
  [[nodiscard]] bool bernoulli(double p) { return uniform() < p; }

  /// Exponentially distributed with the given mean (> 0).
  [[nodiscard]] double exponential(double mean) {
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
    return -mean * std::log(u);
  }

  /// Standard normal via Marsaglia polar method.
  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0) {
    if (have_spare_) {
      have_spare_ = false;
      return mean + stddev * spare_;
    }
    double u = 0.0, v = 0.0, s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    have_spare_ = true;
    return mean + stddev * u * factor;
  }

  /// Zipf-like rank selection over [0, n): rank r is chosen with probability
  /// proportional to 1/(r+1)^theta. Uses inverse-CDF over a coarse harmonic
  /// approximation; adequate for workload locality modelling.
  [[nodiscard]] std::uint64_t zipf(std::uint64_t n, double theta = 0.99) {
    // Rejection-inversion (Hörmann); simplified for theta in (0, 2).
    const double h = harmonic_approx(static_cast<double>(n), theta);
    const double u = uniform() * h;
    const double x = inverse_harmonic_approx(u, theta);
    auto r = static_cast<std::uint64_t>(x);
    return r >= n ? n - 1 : r;
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  [[nodiscard]] static double harmonic_approx(double n, double theta) {
    if (theta == 1.0) return std::log(n + 1.0);
    return (std::pow(n + 1.0, 1.0 - theta) - 1.0) / (1.0 - theta);
  }

  [[nodiscard]] static double inverse_harmonic_approx(double v, double theta) {
    if (theta == 1.0) return std::exp(v) - 1.0;
    return std::pow(v * (1.0 - theta) + 1.0, 1.0 / (1.0 - theta)) - 1.0;
  }

  std::uint64_t state_[4]{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace apsim
