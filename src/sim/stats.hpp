#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

/// \file stats.hpp
/// Small statistics utilities shared across the library: streaming moments,
/// fixed-bucket histograms, and time-bucketed counter series (the backing
/// store for paging-activity traces).

namespace apsim {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStat {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Histogram over [lo, hi) with uniform buckets; out-of-range samples land in
/// saturating under/overflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const { return counts_; }

  /// Value below which \p q (in [0,1]) of samples fall, interpolated within
  /// the containing bucket. Returns lo/hi for extreme quantiles.
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Counter sampled into fixed-width time buckets, e.g. "pages swapped in per
/// second". Grows on demand; bucket 0 starts at time origin().
class TimeSeries {
 public:
  explicit TimeSeries(SimDuration bucket_width = kSecond, SimTime origin = 0);

  /// Add \p amount at time \p t.
  void add(SimTime t, double amount);

  [[nodiscard]] SimDuration bucket_width() const { return width_; }
  [[nodiscard]] SimTime origin() const { return origin_; }
  [[nodiscard]] const std::vector<double>& buckets() const { return buckets_; }
  [[nodiscard]] double total() const { return total_; }

  /// Sum over buckets intersecting [t0, t1).
  [[nodiscard]] double sum_range(SimTime t0, SimTime t1) const;

  /// Largest single-bucket value.
  [[nodiscard]] double peak() const;

 private:
  SimDuration width_;
  SimTime origin_;
  std::vector<double> buckets_;
  double total_ = 0.0;
};

}  // namespace apsim
