#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <functional>

namespace apsim {

EventHandle EventQueue::schedule(SimTime when, Callback fn) {
  assert(fn && "cannot schedule an empty callback");
  const std::uint32_t index = pool_->acquire();
  detail::EventSlot& slot = pool_->slot(index);
  slot.fn = std::move(fn);
  slot.armed = true;
  heap_.push_back(HeapEntry{when, seq_++, index});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  ++live_;
  return EventHandle{pool_, index, slot.generation};
}

void EventQueue::cancel(const EventHandle& handle) {
  if (handle.pool_.lock() != pool_) return;  // default handle / foreign queue
  detail::EventSlot& slot = pool_->slot(handle.slot_);
  if (slot.generation != handle.generation_ || !slot.armed || slot.cancelled) {
    return;  // already fired, already cancelled, or slot reused since
  }
  slot.cancelled = true;
  slot.fn.reset();  // drop captured state eagerly
  assert(live_ > 0);
  --live_;
}

void EventQueue::prune() const {
  while (batch_pending() && pool_->slot(batch_[batch_head_].slot).cancelled) {
    pool_->release(batch_[batch_head_].slot);
    ++batch_head_;
  }
  if (!batch_pending() && !batch_.empty()) {
    batch_.clear();
    batch_head_ = 0;
  }
  while (!heap_.empty() && pool_->slot(heap_.front().slot).cancelled) {
    const std::uint32_t index = heap_.front().slot;
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
    pool_->release(index);
  }
}

SimTime EventQueue::next_time() const {
  prune();
  assert(batch_pending() || !heap_.empty());
  if (batch_pending() &&
      (heap_.empty() || batch_[batch_head_].time <= heap_.front().time)) {
    // Batch entries predate (in seq) every same-time heap entry, so the
    // batch wins ties.
    return batch_[batch_head_].time;
  }
  return heap_.front().time;
}

EventQueue::Popped EventQueue::pop() {
  prune();
  assert(live_ > 0 && (batch_pending() || !heap_.empty()));

  if (!batch_pending() && !heap_.empty()) {
    // Start a fresh batch: drain the entire same-time run at the top of the
    // heap once; subsequent pops at this instant are O(1) from the flat
    // buffer. pop_heap yields the run in ascending seq order, so the batch
    // is already FIFO.
    const SimTime top_time = heap_.front().time;
    do {
      batch_.push_back(heap_.front());
      std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
      heap_.pop_back();
    } while (!heap_.empty() && heap_.front().time == top_time);
  } else if (batch_pending() && !heap_.empty() &&
             heap_.front().time < batch_[batch_head_].time) {
    // Only possible for standalone queues (the Simulator never schedules
    // into the past): an event earlier than the drained batch showed up.
    // Serve it directly without touching the batch.
    const HeapEntry entry = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
    detail::EventSlot& slot = pool_->slot(entry.slot);
    Popped popped{entry.time, std::move(slot.fn)};
    pool_->release(entry.slot);
    --live_;
    return popped;
  }

  const HeapEntry entry = batch_[batch_head_++];
  detail::EventSlot& slot = pool_->slot(entry.slot);
  assert(slot.armed && !slot.cancelled);
  Popped popped{entry.time, std::move(slot.fn)};
  pool_->release(entry.slot);
  --live_;
  if (!batch_pending()) {
    batch_.clear();
    batch_head_ = 0;
  }
  return popped;
}

}  // namespace apsim
