#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace apsim {

EventHandle EventQueue::schedule(SimTime when, Callback fn) {
  assert(fn && "cannot schedule an empty callback");
  Entry entry;
  entry.time = when;
  entry.seq = seq_++;
  entry.fn = std::move(fn);
  entry.cancelled = std::make_shared<bool>(false);
  EventHandle handle{std::weak_ptr<bool>(entry.cancelled)};
  heap_.push_back(std::move(entry));
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  ++live_;
  return handle;
}

void EventQueue::cancel(const EventHandle& handle) {
  if (auto flag = handle.flag_.lock(); flag && !*flag) {
    *flag = true;
    assert(live_ > 0);
    --live_;
  }
}

void EventQueue::drop_cancelled_top() const {
  auto& heap = heap_;
  while (!heap.empty() && *heap.front().cancelled) {
    std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
    heap.pop_back();
  }
}

bool EventQueue::empty() const {
  drop_cancelled_top();
  return heap_.empty();
}

SimTime EventQueue::next_time() const {
  drop_cancelled_top();
  assert(!heap_.empty());
  return heap_.front().time;
}

EventQueue::Popped EventQueue::pop() {
  drop_cancelled_top();
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  assert(live_ > 0);
  --live_;
  *entry.cancelled = true;  // handle now reports !pending()
  return Popped{entry.time, std::move(entry.fn)};
}

}  // namespace apsim
