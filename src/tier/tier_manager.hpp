#pragma once

#include <cstdint>
#include <memory>

#include "disk/disk.hpp"
#include "disk/swap_device.hpp"
#include "metrics/tracer.hpp"
#include "sim/log.hpp"
#include "sim/simulator.hpp"
#include "tier/compressed_pool.hpp"

/// \file tier_manager.hpp
/// Interposes a compressed RAM tier (CompressedPool) on the Vmm<->SwapDevice
/// path, the way zswap fronts a disk swap device:
///
///   * swap-out: pages land in the pool when they fit (microsecond-scale
///     compress), the remainder of the run goes to disk;
///   * swap-in: pool-resident slots decompress in microseconds, only the
///     disk-resident remainder of a run is issued as block reads;
///   * writeback: when occupancy crosses a high watermark, a background
///     pass on the bg-daemon cadence streams LRU-cold entries to their own
///     disk slots (the slot was reserved at allocation, exactly like
///     zswap's backing-store convention) until a low watermark is reached.
///
/// Slot identity stays with the SwapDevice: the tier registers its slot
/// release hook so every free_slot() — eviction aborts, process teardown,
/// re-dirtied pages — invalidates the compressed copy and keeps the pool
/// leak-free. With no TierManager constructed the Vmm talks to the
/// SwapDevice directly and behaves bit-identically to the pre-tier tree.

namespace apsim {

class FaultInjector;

struct TierParams {
  /// Pool RAM budget, MB; 0 disables the tier entirely (no TierManager is
  /// constructed). The node wires down this many frames, so enabling the
  /// tier trades usable RAM for cheap switch-time paging.
  double pool_mb = 0.0;

  TierRatioModel ratio_model = TierRatioModel::kMixed;

  /// Pages compressing worse than this are sent to disk (zswap's
  /// incompressible-page rejection).
  double max_admit_ratio = 0.9;

  /// Background writeback: enabled flag, batch per tick, tick cadence (the
  /// same 50 ms rhythm as the adaptive pager's bg daemon), and the
  /// occupancy watermarks that start/stop the drain.
  bool writeback = true;
  std::int64_t writeback_batch = 64;
  SimDuration writeback_interval = 50 * kMillisecond;
  double writeback_high_frac = 0.85;
  double writeback_low_frac = 0.60;

  /// CPU cost per page for the simulated compressor (zswap's lzo/zstd runs
  /// in single-digit microseconds per 4 KB page).
  SimDuration compress_cost = 3 * kMicrosecond;
  SimDuration decompress_cost = 2 * kMicrosecond;
};

class TierManager {
 public:
  /// Registers the slot release hook on \p swap; the pool's compressibility
  /// seed is drawn from the Simulator's root RNG (construction-time, like
  /// every other component stream).
  TierManager(Simulator& sim, SwapDevice& swap, TierParams params);
  ~TierManager();

  TierManager(const TierManager&) = delete;
  TierManager& operator=(const TierManager&) = delete;

  /// Attach the cluster's fault injector (nullptr = fault-free). \p node is
  /// the owning node index, used to match FaultSpec targets.
  void set_fault_injector(FaultInjector* injector, int node) {
    injector_ = injector;
    node_index_ = node;
  }

  /// Attach the run's tracer (nullptr = untraced). Admissions, loads and
  /// writeback batches become instant events on \p track.
  void set_tracer(Tracer* tracer, int track) {
    tracer_ = tracer;
    trace_track_ = track;
  }

  /// Swap-out a slot run. Pages the pool admits complete after the
  /// compress cost; the rest is written to disk. \p on_complete fires once
  /// with the aggregate result when every part has landed.
  void write(SlotRun run, IoPriority priority, IoCallback on_complete);

  /// Swap-in a slot run: pool-resident segments decompress in microseconds,
  /// disk-resident segments are issued as block reads. \p on_complete fires
  /// once with the aggregate result.
  void read(SlotRun run, IoPriority priority, IoCallback on_complete);

  [[nodiscard]] CompressedPool& pool() { return pool_; }
  [[nodiscard]] const CompressedPool& pool() const { return pool_; }

  /// Runtime actuator (adaptive control plane): retarget the pool budget,
  /// clamped to (0, boot budget] — the frame carve happened at boot, so the
  /// budget can only shrink (and later return). Shrinking under the current
  /// occupancy kicks the background writeback to drain the excess.
  void set_pool_budget_bytes(std::int64_t bytes);
  [[nodiscard]] SwapDevice& swap() { return swap_; }
  [[nodiscard]] const TierParams& params() const { return params_; }

  struct Stats {
    std::uint64_t pool_hits = 0;        ///< pages swapped in from the pool
    std::uint64_t pool_misses = 0;      ///< pages swapped in from disk
    std::uint64_t stores_rejected = 0;  ///< pages the pool refused (to disk)
    std::uint64_t stores_faulted = 0;   ///< pages rejected by injected faults
    std::uint64_t writeback_pages = 0;  ///< pool entries drained to disk
    std::uint64_t writeback_failures = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  /// One aggregate completion spanning the pool and disk parts of a run.
  struct PendingIo {
    int remaining = 0;
    bool ok = true;
    IoCallback on_complete;
  };
  void finish_part(const std::shared_ptr<PendingIo>& pending, IoResult result);

  void on_slot_released(SwapSlot slot);
  /// True when the injector says pool admissions fail right now.
  [[nodiscard]] bool pool_faulted();

  void maybe_start_writeback();
  void writeback_tick();

  static SimTime clock_thunk(const void* ctx) {
    return static_cast<const Simulator*>(ctx)->now();
  }

  Simulator& sim_;
  SwapDevice& swap_;
  TierParams params_;
  CompressedPool pool_;
  Logger log_;
  FaultInjector* injector_ = nullptr;
  int node_index_ = 0;
  Tracer* tracer_ = nullptr;
  int trace_track_ = 0;
  bool writeback_ticking_ = false;
  std::int64_t writebacks_in_flight_ = 0;
  Stats stats_;
};

}  // namespace apsim
