#include "tier/compressed_pool.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "mem/page.hpp"
#include "sim/rng.hpp"

namespace apsim {

std::string_view to_string(TierRatioModel model) {
  switch (model) {
    case TierRatioModel::kMixed: return "mixed";
    case TierRatioModel::kText: return "text";
    case TierRatioModel::kZeroFilled: return "zero";
    case TierRatioModel::kIncompressible: return "incompressible";
  }
  return "?";
}

TierRatioModel parse_tier_ratio_model(std::string_view text) {
  for (TierRatioModel model :
       {TierRatioModel::kMixed, TierRatioModel::kText,
        TierRatioModel::kZeroFilled, TierRatioModel::kIncompressible}) {
    if (text == to_string(model)) return model;
  }
  throw std::invalid_argument("tier: unknown ratio model '" +
                              std::string(text) + "'");
}

CompressedPool::CompressedPool(CompressedPoolParams params)
    : params_(params) {
  assert(params_.budget_bytes > 0);
  assert(params_.max_admit_ratio > 0.0 && params_.max_admit_ratio <= 1.0);
}

double CompressedPool::ratio_of(SwapSlot slot) const {
  // Two independent uniforms from the (seed, slot) hash: one selects the
  // mode of a bimodal model, the other positions within the mode's range.
  std::uint64_t state =
      params_.seed ^ (static_cast<std::uint64_t>(slot) * 0x9E3779B97F4A7C15ULL);
  const double u = static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
  const double v = static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
  switch (params_.model) {
    case TierRatioModel::kMixed:
      // ~25% of pages are entropy-dense and effectively incompressible.
      return u < 0.25 ? 0.85 + 0.15 * v : 0.20 + 0.40 * v;
    case TierRatioModel::kText:
      return 0.25 + 0.30 * v;
    case TierRatioModel::kZeroFilled:
      return u < 0.80 ? 0.02 + 0.08 * v : 0.30 + 0.30 * v;
    case TierRatioModel::kIncompressible:
      return 0.92 + 0.08 * v;
  }
  return 1.0;
}

std::int64_t CompressedPool::compressed_bytes_of(SwapSlot slot) const {
  const auto bytes = static_cast<std::int64_t>(
      ratio_of(slot) * static_cast<double>(kPageBytes));
  return std::clamp<std::int64_t>(bytes, 128, kPageBytes);
}

std::optional<std::int64_t> CompressedPool::store(SwapSlot slot) {
  if (ratio_of(slot) > params_.max_admit_ratio) {
    ++stats_.rejects_ratio;
    return std::nullopt;
  }
  const std::int64_t bytes = compressed_bytes_of(slot);
  auto it = entries_.find(slot);
  const std::int64_t charge = bytes - (it != entries_.end() ? it->second.bytes : 0);
  if (bytes_used_ + charge > params_.budget_bytes) {
    ++stats_.rejects_budget;
    return std::nullopt;
  }
  if (it != entries_.end()) {
    // Replace: same slot re-stored (defensive; the VMM frees a slot before
    // rewriting it, so in practice the hook has dropped the old entry).
    if (!it->second.writing) lru_.erase(it->second.lru_pos);
    bytes_used_ -= it->second.bytes;
    entries_.erase(it);
  }
  lru_.push_front(slot);
  entries_.emplace(slot, Entry{bytes, false, lru_.begin()});
  bytes_used_ += bytes;
  ++stats_.pages_stored;
  stats_.bytes_stored += static_cast<std::uint64_t>(bytes);
  stats_.peak_bytes = std::max(stats_.peak_bytes,
                               static_cast<std::uint64_t>(bytes_used_));
  return bytes;
}

void CompressedPool::touch(SwapSlot slot) {
  auto it = entries_.find(slot);
  if (it == entries_.end() || it->second.writing) return;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
}

bool CompressedPool::drop(SwapSlot slot) {
  auto it = entries_.find(slot);
  if (it == entries_.end()) return false;
  if (!it->second.writing) lru_.erase(it->second.lru_pos);
  bytes_used_ -= it->second.bytes;
  entries_.erase(it);
  ++stats_.invalidations;
  return true;
}

std::vector<SwapSlot> CompressedPool::begin_writeback(std::int64_t max_slots) {
  std::vector<SwapSlot> out;
  while (std::ssize(out) < max_slots && !lru_.empty()) {
    const SwapSlot slot = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(slot);
    assert(it != entries_.end() && !it->second.writing);
    it->second.writing = true;
    out.push_back(slot);
  }
  return out;
}

void CompressedPool::finish_writeback(SwapSlot slot, bool ok) {
  auto it = entries_.find(slot);
  // The entry may have been invalidated while the write flew — and the slot
  // may even have been recycled and re-stored since (a fresh, non-writing
  // entry). Either way the in-flight write no longer corresponds to the
  // pool's state for this slot, so it must not touch the entry.
  if (it == entries_.end() || !it->second.writing) return;
  if (ok) {
    bytes_used_ -= it->second.bytes;
    entries_.erase(it);
    return;
  }
  // Failed write: the compressed copy is still the only copy. Re-queue at
  // the cold end so the next pass retries it.
  it->second.writing = false;
  lru_.push_back(slot);
  it->second.lru_pos = std::prev(lru_.end());
}

}  // namespace apsim
