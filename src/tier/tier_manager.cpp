#include "tier/tier_manager.hpp"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

#include "fault/fault_injector.hpp"
#include "mem/page.hpp"

namespace apsim {

namespace {

/// Sort slots and merge adjacent ones into contiguous runs, so pool
/// writeback and the disk remainder of a swap-out stream as few transfers
/// as the slot layout allows.
std::vector<SlotRun> coalesce(std::vector<SwapSlot> slots) {
  std::sort(slots.begin(), slots.end());
  std::vector<SlotRun> runs;
  for (const SwapSlot slot : slots) {
    if (!runs.empty() && runs.back().start + runs.back().count == slot) {
      ++runs.back().count;
    } else {
      runs.push_back(SlotRun{slot, 1});
    }
  }
  return runs;
}

}  // namespace

TierManager::TierManager(Simulator& sim, SwapDevice& swap, TierParams params)
    : sim_(sim), swap_(swap), params_(params),
      pool_(CompressedPoolParams{
          .budget_bytes = static_cast<std::int64_t>(params.pool_mb *
                                                    1024.0 * 1024.0),
          .model = params.ratio_model,
          .max_admit_ratio = params.max_admit_ratio,
          .seed = sim.rng()(),
      }),
      log_("tier", &sim, &clock_thunk) {
  assert(params_.pool_mb > 0.0);
  assert(params_.writeback_batch > 0);
  assert(params_.writeback_interval > 0);
  assert(params_.writeback_low_frac >= 0.0 &&
         params_.writeback_low_frac <= params_.writeback_high_frac);
  swap_.set_slot_release_hook(
      [this](SwapSlot slot) { on_slot_released(slot); });
}

TierManager::~TierManager() { swap_.set_slot_release_hook(nullptr); }

void TierManager::set_pool_budget_bytes(std::int64_t bytes) {
  const auto boot_budget =
      static_cast<std::int64_t>(params_.pool_mb * 1024.0 * 1024.0);
  pool_.set_budget_bytes(std::clamp<std::int64_t>(bytes, 1, boot_budget));
  maybe_start_writeback();
}

void TierManager::finish_part(const std::shared_ptr<PendingIo>& pending,
                              IoResult result) {
  pending->ok = pending->ok && result.ok;
  assert(pending->remaining > 0);
  if (--pending->remaining == 0) {
    auto cb = std::move(pending->on_complete);
    if (cb) cb(pending->ok ? IoResult::success() : IoResult::error());
  }
}

bool TierManager::pool_faulted() {
  return injector_ != nullptr && injector_->on_tier_store(node_index_);
}

void TierManager::write(SlotRun run, IoPriority priority,
                        IoCallback on_complete) {
  assert(run.count > 0);
  std::int64_t pooled = 0;
  std::vector<SwapSlot> to_disk;
  for (std::int64_t i = 0; i < run.count; ++i) {
    const SwapSlot slot = run.start + i;
    if (pool_faulted()) {
      ++stats_.stores_faulted;
      to_disk.push_back(slot);
      continue;
    }
    if (pool_.store(slot)) {
      ++pooled;
    } else {
      ++stats_.stores_rejected;
      to_disk.push_back(slot);
    }
  }

  auto pending = std::make_shared<PendingIo>();
  pending->on_complete = std::move(on_complete);
  const auto disk_runs = coalesce(std::move(to_disk));
  pending->remaining = (pooled > 0 ? 1 : 0) +
                       static_cast<int>(disk_runs.size());

  if (pooled > 0) {
    sim_.after(params_.compress_cost * pooled,
               [this, pending] { finish_part(pending, IoResult::success()); });
  }
  for (const SlotRun& dr : disk_runs) {
    swap_.write(dr, priority, [this, pending](IoResult result) {
      finish_part(pending, result);
    });
  }
  log_.trace("write [%lld,+%lld): %lld pooled, %zu disk runs",
             static_cast<long long>(run.start),
             static_cast<long long>(run.count),
             static_cast<long long>(pooled), disk_runs.size());
  if (tracer_ != nullptr) {
    tracer_->instant(trace_track_, "tier", "store",
                     {{"pooled", static_cast<double>(pooled)},
                      {"to_disk", static_cast<double>(run.count - pooled)},
                      {"occupancy", pool_.occupancy()}});
  }
  maybe_start_writeback();
}

void TierManager::read(SlotRun run, IoPriority priority,
                       IoCallback on_complete) {
  assert(run.count > 0);
  // Split the run into maximal pool-resident and disk-resident segments.
  // Pool segments cost only the decompressor; disk segments become block
  // reads. A slot under writeback still reads from the pool — the entry
  // stays until the write lands.
  std::int64_t pool_pages = 0;
  std::vector<SlotRun> disk_segs;
  for (std::int64_t i = 0; i < run.count; ++i) {
    const SwapSlot slot = run.start + i;
    if (pool_.contains(slot)) {
      pool_.touch(slot);
      ++pool_pages;
    } else if (!disk_segs.empty() &&
               disk_segs.back().start + disk_segs.back().count == slot) {
      ++disk_segs.back().count;
    } else {
      disk_segs.push_back(SlotRun{slot, 1});
    }
  }
  stats_.pool_hits += static_cast<std::uint64_t>(pool_pages);
  for (const SlotRun& seg : disk_segs) {
    stats_.pool_misses += static_cast<std::uint64_t>(seg.count);
  }

  auto pending = std::make_shared<PendingIo>();
  pending->on_complete = std::move(on_complete);
  pending->remaining = (pool_pages > 0 ? 1 : 0) +
                       static_cast<int>(disk_segs.size());

  if (tracer_ != nullptr) {
    tracer_->instant(trace_track_, "tier", "load",
                     {{"pool_pages", static_cast<double>(pool_pages)},
                      {"disk_pages", static_cast<double>(run.count - pool_pages)},
                      {"disk_segs", static_cast<double>(disk_segs.size())}});
  }

  if (pool_pages > 0) {
    sim_.after(params_.decompress_cost * pool_pages,
               [this, pending] { finish_part(pending, IoResult::success()); });
  }
  for (const SlotRun& seg : disk_segs) {
    swap_.read(seg, priority, [this, pending](IoResult result) {
      finish_part(pending, result);
    });
  }
}

void TierManager::on_slot_released(SwapSlot slot) { pool_.drop(slot); }

void TierManager::maybe_start_writeback() {
  if (!params_.writeback || writeback_ticking_) return;
  if (pool_.occupancy() < params_.writeback_high_frac) return;
  if (swap_.disk().failed()) return;
  writeback_ticking_ = true;
  sim_.after(params_.writeback_interval, [this] { writeback_tick(); });
}

void TierManager::writeback_tick() {
  // Stop conditions keep the event queue quiescent: no re-arm when the
  // drain target is met, the disk is gone, or a whole batch failed (a
  // future store above the high watermark re-arms the daemon).
  if (swap_.disk().failed() ||
      pool_.occupancy() <= params_.writeback_low_frac) {
    writeback_ticking_ = false;
    return;
  }
  const auto batch = pool_.begin_writeback(params_.writeback_batch);
  if (batch.empty()) {
    writeback_ticking_ = false;
    return;
  }
  const auto runs = coalesce(batch);
  // One shared completion for the whole batch decides whether to re-arm.
  struct BatchState {
    std::size_t remaining = 0;
    std::int64_t failed_pages = 0;
    std::int64_t total_pages = 0;
  };
  auto state = std::make_shared<BatchState>();
  state->remaining = runs.size();
  for (const SlotRun& r : runs) state->total_pages += r.count;
  writebacks_in_flight_ += state->total_pages;

  for (const SlotRun& r : runs) {
    swap_.write(r, IoPriority::kBackground,
                [this, r, state](IoResult result) {
      for (std::int64_t i = 0; i < r.count; ++i) {
        pool_.finish_writeback(r.start + i, result.ok);
      }
      writebacks_in_flight_ -= r.count;
      if (result.ok) {
        stats_.writeback_pages += static_cast<std::uint64_t>(r.count);
      } else {
        stats_.writeback_failures += static_cast<std::uint64_t>(r.count);
        state->failed_pages += r.count;
      }
      if (--state->remaining > 0) return;
      // Batch done: keep draining unless nothing landed or the target is met.
      if (swap_.disk().failed() ||
          state->failed_pages == state->total_pages ||
          pool_.occupancy() <= params_.writeback_low_frac) {
        writeback_ticking_ = false;
        return;
      }
      sim_.after(params_.writeback_interval, [this] { writeback_tick(); });
    });
  }
  log_.trace("writeback tick: %lld pages in %zu runs, occupancy %.2f",
             static_cast<long long>(state->total_pages), runs.size(),
             pool_.occupancy());
  if (tracer_ != nullptr) {
    tracer_->instant(trace_track_, "tier", "writeback",
                     {{"pages", static_cast<double>(state->total_pages)},
                      {"runs", static_cast<double>(runs.size())},
                      {"occupancy", pool_.occupancy()}});
  }
}

}  // namespace apsim
