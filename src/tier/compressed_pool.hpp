#pragma once

#include <algorithm>
#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string_view>

#include "disk/swap_device.hpp"
#include "sim/time.hpp"

/// \file compressed_pool.hpp
/// Simulated zswap-style compressed RAM tier. The pool holds compressed
/// copies of swap-slot contents against a fixed byte budget carved out of
/// the node's physical frames. Per-page compressibility comes from a
/// deterministic hash of (seed, slot) mapped through a workload-dependent
/// ratio model, so runs are bit-reproducible without consuming any shared
/// RNG stream per operation. The pool is pure state — the TierManager owns
/// all timing (compress/decompress costs, writeback I/O).

namespace apsim {

/// How compressible the workload's pages are. Chosen per scenario
/// (`tier_ratio_model`); the distributions are loosely calibrated to the
/// zswap literature: dense numeric data compresses ~2-3x, zero-dominated
/// pages nearly vanish, entropy-dense data defeats the compressor.
enum class TierRatioModel : std::uint8_t {
  kMixed,           ///< bimodal: most pages ~2-4x, a tail incompressible
  kText,            ///< uniformly ~2-4x (structured/numeric data)
  kZeroFilled,      ///< mostly near-empty pages (sparse matrices)
  kIncompressible,  ///< entropy-dense; the pool admits almost nothing
};

[[nodiscard]] std::string_view to_string(TierRatioModel model);

/// Parse a scenario-file value ("mixed", "text", "zero", "incompressible").
/// Throws std::invalid_argument on unknown names.
[[nodiscard]] TierRatioModel parse_tier_ratio_model(std::string_view text);

struct CompressedPoolParams {
  /// RAM budget for compressed data, bytes. Must be > 0.
  std::int64_t budget_bytes = 0;

  TierRatioModel model = TierRatioModel::kMixed;

  /// Pages compressing worse than this ratio are rejected (zswap's
  /// "incompressible page" path) and go straight to disk.
  double max_admit_ratio = 0.9;

  /// Seed for the deterministic per-slot compressibility hash.
  std::uint64_t seed = 1;
};

class CompressedPool {
 public:
  explicit CompressedPool(CompressedPoolParams params);

  CompressedPool(const CompressedPool&) = delete;
  CompressedPool& operator=(const CompressedPool&) = delete;

  /// Deterministic compression ratio the model assigns to \p slot's
  /// contents, in (0, 1].
  [[nodiscard]] double ratio_of(SwapSlot slot) const;

  /// Compressed size of \p slot under the model, bytes.
  [[nodiscard]] std::int64_t compressed_bytes_of(SwapSlot slot) const;

  /// Try to admit \p slot. Returns the compressed size charged against the
  /// budget, or std::nullopt when the page is rejected (ratio above the
  /// admit threshold, or insufficient budget). Re-storing a resident slot
  /// replaces the old entry.
  std::optional<std::int64_t> store(SwapSlot slot);

  [[nodiscard]] bool contains(SwapSlot slot) const {
    return entries_.contains(slot);
  }

  /// Mark \p slot most-recently-used (pool load hit). No-op if absent.
  void touch(SwapSlot slot);

  /// Drop \p slot's entry, releasing its budget (slot freed, or written
  /// back to disk). Safe to call for absent slots; returns true if dropped.
  bool drop(SwapSlot slot);

  /// Pop up to \p max_slots of the coldest entries not already under
  /// writeback and mark them as writing. The caller must finish each with
  /// finish_writeback().
  [[nodiscard]] std::vector<SwapSlot> begin_writeback(std::int64_t max_slots);

  /// Conclude a writeback started by begin_writeback(). On success the
  /// entry is dropped (the data now lives on disk); on failure it returns
  /// to the cold end of the LRU for a later retry. No-op if the slot was
  /// invalidated while the write was in flight.
  void finish_writeback(SwapSlot slot, bool ok);

  [[nodiscard]] std::int64_t bytes_used() const { return bytes_used_; }
  [[nodiscard]] std::int64_t budget_bytes() const { return params_.budget_bytes; }

  /// Runtime actuator (adaptive control plane): retarget the byte budget.
  /// Shrinking below the current occupancy rejects new stores until the LRU
  /// writeback (or invalidations) drain the excess; nothing is dropped
  /// eagerly. The boot-time frame carve is fixed, so the budget can only be
  /// returned, never grown past its construction value — the TierManager's
  /// wrapper enforces that bound.
  void set_budget_bytes(std::int64_t bytes) {
    params_.budget_bytes = std::max<std::int64_t>(1, bytes);
  }
  [[nodiscard]] std::int64_t entry_count() const {
    return static_cast<std::int64_t>(entries_.size());
  }
  /// Occupancy as a fraction of the budget, in [0, ~1].
  [[nodiscard]] double occupancy() const {
    return static_cast<double>(bytes_used_) /
           static_cast<double>(params_.budget_bytes);
  }

  [[nodiscard]] const CompressedPoolParams& params() const { return params_; }

  struct Stats {
    std::uint64_t pages_stored = 0;
    std::uint64_t bytes_stored = 0;      ///< cumulative compressed bytes admitted
    std::uint64_t rejects_ratio = 0;     ///< page compressed too poorly
    std::uint64_t rejects_budget = 0;    ///< pool out of budget
    std::uint64_t invalidations = 0;     ///< entries dropped via drop()
    std::uint64_t peak_bytes = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    std::int64_t bytes = 0;
    bool writing = false;            ///< writeback in flight
    std::list<SwapSlot>::iterator lru_pos;
  };

  CompressedPoolParams params_;
  std::map<SwapSlot, Entry> entries_;
  /// LRU order: front = hottest, back = coldest. Entries under writeback
  /// are removed from the list (they have no position until the write
  /// fails and they rejoin at the cold end).
  std::list<SwapSlot> lru_;
  std::int64_t bytes_used_ = 0;
  Stats stats_;
};

}  // namespace apsim
