#include "disk/disk.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <memory>

namespace apsim {

void Disk::submit(DiskRequest req) {
  assert(req.nblocks > 0);
  assert(req.start >= 0 && req.start + req.nblocks <= model_.params().num_blocks);
  ++stats_.requests;
  if (failed_) {
    ++stats_.io_errors;
    if (req.on_complete) {
      sim_.after(0, [fn = std::move(req.on_complete)] { fn(IoResult::error()); });
    }
    return;
  }
  auto& queue =
      req.priority == IoPriority::kForeground ? foreground_ : background_;
  queue.push_back(std::move(req));
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_depth());
  if (!busy_) start_next();
}

std::size_t Disk::pick_clook(const std::deque<DiskRequest>& queue) const {
  // C-LOOK: serve the closest request at or beyond the head; if none, wrap
  // to the lowest-addressed request.
  std::size_t best_forward = queue.size();
  BlockNum best_forward_start = std::numeric_limits<BlockNum>::max();
  std::size_t best_wrap = queue.size();
  BlockNum best_wrap_start = std::numeric_limits<BlockNum>::max();
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const BlockNum s = queue[i].start;
    if (s >= head_) {
      if (s < best_forward_start) {
        best_forward_start = s;
        best_forward = i;
      }
    } else if (s < best_wrap_start) {
      best_wrap_start = s;
      best_wrap = i;
    }
  }
  return best_forward != queue.size() ? best_forward : best_wrap;
}

void Disk::start_next() {
  assert(!busy_);
  auto* queue = &foreground_;
  if (queue->empty()) queue = &background_;
  if (queue->empty()) return;

  const std::size_t idx = pick_clook(*queue);
  assert(idx < queue->size());
  DiskRequest first = std::move((*queue)[idx]);
  queue->erase(queue->begin() + static_cast<std::ptrdiff_t>(idx));

  // Coalesce exactly-contiguous same-direction requests into one transfer
  // (block-layer request merging). Completion callbacks fire together at the
  // end of the merged transfer and share its outcome.
  std::vector<IoCallback> completions;
  completions.push_back(std::move(first.on_complete));
  BlockNum start = first.start;
  BlockNum nblocks = first.nblocks;
  bool merged = true;
  while (merged) {
    merged = false;
    for (std::size_t i = 0; i < queue->size(); ++i) {
      auto& candidate = (*queue)[i];
      if (candidate.write == first.write &&
          candidate.start == start + nblocks) {
        nblocks += candidate.nblocks;
        completions.push_back(std::move(candidate.on_complete));
        queue->erase(queue->begin() + static_cast<std::ptrdiff_t>(i));
        merged = true;
        break;
      }
    }
  }

  SimDuration service = model_.service_time(head_, start, nblocks);
  bool inject_error = false;
  if (injector_ != nullptr) {
    const auto outcome = injector_->on_disk_request(node_index_, first.write);
    inject_error = outcome.fail;
    if (outcome.slow_factor != 1.0) {
      service = static_cast<SimDuration>(static_cast<double>(service) *
                                         outcome.slow_factor);
    }
  }
  busy_ = true;
  ++stats_.services;
  stats_.busy_time += service;
  if (first.write) {
    stats_.blocks_written += static_cast<std::uint64_t>(nblocks);
  } else {
    stats_.blocks_read += static_cast<std::uint64_t>(nblocks);
  }

  // Spans outlive this call, and std::function needs copyable captures, so a
  // traced service carries its span in a shared_ptr; untraced runs carry a
  // null pointer and allocate nothing.
  std::shared_ptr<TraceSpan> service_span;
  if (tracer_ != nullptr) {
    tracer_->counter(trace_track_, "disk", "queue_depth",
                     static_cast<double>(queue_depth()));
    service_span = std::make_shared<TraceSpan>(tracer_->span(
        trace_track_, "disk", first.write ? "service_write" : "service_read",
        {{"blocks", static_cast<double>(nblocks)},
         {"start", static_cast<double>(start)},
         {"queued", static_cast<double>(queue_depth())}}));
  }

  sim_.after(service, [this, start, nblocks, inject_error, service_span,
                       completions = std::move(completions)]() mutable {
    head_ = start + nblocks;
    busy_ = false;
    // End before running completions: one of them may submit and start the
    // next service, whose begin must come after this span's end.
    if (service_span) service_span->end();
    // The device may have failed while the transfer was in flight.
    const IoResult result{!(inject_error || failed_)};
    if (!result.ok) stats_.io_errors += completions.size();
    for (auto& fn : completions) {
      if (fn) fn(result);
    }
    if (!busy_ && !failed_) start_next();  // a completion may have restarted the device
  });
}

void Disk::fail_device() {
  if (failed_) return;
  failed_ = true;
  // Drain both queues with error completions; anything in flight errors in
  // its own completion event. New submits error immediately.
  auto drain = [this](std::deque<DiskRequest>& queue) {
    for (auto& req : queue) {
      ++stats_.io_errors;
      if (req.on_complete) {
        sim_.after(0,
                   [fn = std::move(req.on_complete)] { fn(IoResult::error()); });
      }
    }
    queue.clear();
  };
  drain(foreground_);
  drain(background_);
}

double Disk::utilization() const {
  const SimTime now = sim_.now();
  if (now <= 0) return 0.0;
  return static_cast<double>(stats_.busy_time) / static_cast<double>(now);
}

}  // namespace apsim
