#include "disk/swap_device.hpp"

#include <algorithm>
#include <cassert>

namespace apsim {

SwapDevice::SwapDevice(Disk& disk, BlockNum base_block, std::int64_t num_slots)
    : disk_(disk), base_(base_block),
      used_(static_cast<std::size_t>(num_slots), false),
      free_count_(num_slots) {
  assert(num_slots > 0);
  assert(base_block >= 0);
  assert(base_block + num_slots <= disk.model().params().num_blocks);
}

std::optional<SwapSlot> SwapDevice::alloc_one() {
  auto run = alloc_run(1);
  if (!run) return std::nullopt;
  return run->start;
}

std::optional<SlotRun> SwapDevice::alloc_run(std::int64_t max_len) {
  assert(max_len >= 1);
  if (free_count_ == 0) return std::nullopt;
  const auto n = num_slots();
  // Next-fit: scan from the hint, wrapping once.
  for (std::int64_t scanned = 0; scanned < n; ++scanned) {
    const SwapSlot s = (hint_ + scanned) % n;
    if (used_[static_cast<std::size_t>(s)]) continue;
    // Found a free slot; extend the run as far as possible.
    std::int64_t len = 0;
    while (s + len < n && len < max_len &&
           !used_[static_cast<std::size_t>(s + len)]) {
      ++len;
    }
    for (std::int64_t i = 0; i < len; ++i) {
      used_[static_cast<std::size_t>(s + i)] = true;
    }
    free_count_ -= len;
    hint_ = (s + len) % n;
    return SlotRun{s, len};
  }
  return std::nullopt;
}

std::vector<SlotRun> SwapDevice::alloc_pages(std::int64_t n,
                                             std::int64_t max_run) {
  assert(max_run >= 1);
  std::vector<SlotRun> runs;
  std::int64_t remaining = n;
  while (remaining > 0) {
    auto run = alloc_run(std::min(remaining, max_run));
    if (!run) break;
    remaining -= run->count;
    // Merge with the previous run if the allocator happened to continue it.
    if (!runs.empty() && runs.back().start + runs.back().count == run->start) {
      runs.back().count += run->count;
    } else {
      runs.push_back(*run);
    }
  }
  return runs;
}

void SwapDevice::free_slot(SwapSlot slot) {
  assert(slot >= 0 && slot < num_slots());
  auto ref = used_[static_cast<std::size_t>(slot)];
  assert(ref && "double free of swap slot");
  if (ref) {
    if (release_hook_) release_hook_(slot);
    used_[static_cast<std::size_t>(slot)] = false;
    ++free_count_;
  }
}

bool SwapDevice::is_allocated(SwapSlot slot) const {
  assert(slot >= 0 && slot < num_slots());
  return used_[static_cast<std::size_t>(slot)];
}

void SwapDevice::restore_alloc(const AllocImage& image) {
  assert(std::ssize(image.used) == num_slots());
  used_ = image.used;
  free_count_ = image.free_count;
  hint_ = image.hint;
}

void SwapDevice::submit(SlotRun run, bool is_write, IoPriority priority,
                        IoCallback on_complete) {
  assert(run.count > 0);
  assert(run.start >= 0 && run.start + run.count <= num_slots());
  DiskRequest req;
  req.start = block_of(run.start);
  req.nblocks = run.count;
  req.write = is_write;
  req.priority = priority;
  req.on_complete = std::move(on_complete);
  disk_.submit(std::move(req));
}

void SwapDevice::read(SlotRun run, IoPriority priority,
                      IoCallback on_complete) {
  submit(run, /*is_write=*/false, priority, std::move(on_complete));
}

void SwapDevice::write(SlotRun run, IoPriority priority,
                       IoCallback on_complete) {
  submit(run, /*is_write=*/true, priority, std::move(on_complete));
}

}  // namespace apsim
