#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "disk/disk.hpp"

/// \file swap_device.hpp
/// Swap area on top of a Disk: page-sized slots with a bitmap allocator that
/// prefers contiguous runs. Contiguity is what lets the adaptive mechanisms
/// turn a job switch into a handful of streaming transfers, so the allocator
/// exposes run-granular allocation rather than slot-at-a-time only.

namespace apsim {

/// Index of a page slot within the swap area.
using SwapSlot = std::int64_t;
inline constexpr SwapSlot kNoSwapSlot = -1;

/// A contiguous run of swap slots [start, start + count).
struct SlotRun {
  SwapSlot start = 0;
  std::int64_t count = 0;

  friend bool operator==(const SlotRun&, const SlotRun&) = default;
};

class SwapDevice {
 public:
  /// Swap area occupying slots [0, num_slots) mapped onto disk blocks
  /// [base_block, base_block + num_slots).
  SwapDevice(Disk& disk, BlockNum base_block, std::int64_t num_slots);

  SwapDevice(const SwapDevice&) = delete;
  SwapDevice& operator=(const SwapDevice&) = delete;

  [[nodiscard]] std::int64_t num_slots() const { return static_cast<std::int64_t>(used_.size()); }
  [[nodiscard]] std::int64_t free_slots() const { return free_count_; }
  [[nodiscard]] std::int64_t used_slots() const { return num_slots() - free_count_; }

  /// Allocate one slot (next-fit). Returns std::nullopt when full.
  [[nodiscard]] std::optional<SwapSlot> alloc_one();

  /// Allocate a single contiguous run of up to \p max_len slots (>= 1 on
  /// success). Returns the run actually obtained, which may be shorter than
  /// requested when free space is fragmented; std::nullopt when full.
  [[nodiscard]] std::optional<SlotRun> alloc_run(std::int64_t max_len);

  /// Allocate \p n slots as few runs as the free map allows, each run at
  /// most \p max_run long. May return fewer than n slots in total when the
  /// device fills up.
  [[nodiscard]] std::vector<SlotRun> alloc_pages(std::int64_t n,
                                                 std::int64_t max_run);

  /// Release one slot. Freeing an unallocated slot is a programming error.
  void free_slot(SwapSlot slot);

  /// Observer invoked for every free_slot() just before the slot is
  /// released. The compressed tier registers here so any slot the VMM frees
  /// — eviction aborts, process teardown, re-dirtied pages — also drops the
  /// pool's compressed copy. Pass nullptr to unregister.
  void set_slot_release_hook(std::function<void(SwapSlot)> hook) {
    release_hook_ = std::move(hook);
  }

  /// True if \p slot is currently allocated.
  [[nodiscard]] bool is_allocated(SwapSlot slot) const;

  /// Allocator image for memory snapshots: the slot bitmap plus the next-fit
  /// cursor, so a restored run allocates the exact same runs as the
  /// original. Excludes the device/disk wiring, which the restored stack
  /// rebuilds itself.
  struct AllocImage {
    std::vector<bool> used;
    std::int64_t free_count = 0;
    SwapSlot hint = 0;
  };
  [[nodiscard]] AllocImage capture_alloc() const {
    return AllocImage{used_, free_count_, hint_};
  }
  /// Restore a captured allocator image (same num_slots required).
  void restore_alloc(const AllocImage& image);

  /// Submit a read/write of a slot run; \p on_complete fires when the
  /// transfer finishes, receiving its IoResult (errors come from the fault
  /// injector or a failed device).
  void read(SlotRun run, IoPriority priority, IoCallback on_complete);
  void write(SlotRun run, IoPriority priority, IoCallback on_complete);

  [[nodiscard]] Disk& disk() { return disk_; }
  [[nodiscard]] const Disk& disk() const { return disk_; }

  /// Disk block backing a slot.
  [[nodiscard]] BlockNum block_of(SwapSlot slot) const { return base_ + slot; }

 private:
  void submit(SlotRun run, bool is_write, IoPriority priority,
              IoCallback on_complete);

  Disk& disk_;
  BlockNum base_;
  std::vector<bool> used_;
  std::int64_t free_count_;
  SwapSlot hint_ = 0;  // next-fit scan start
  std::function<void(SwapSlot)> release_hook_;
};

}  // namespace apsim
