#include "disk/disk_model.hpp"

#include <cassert>
#include <cmath>
#include <cstdlib>

namespace apsim {

SimDuration DiskModel::seek_time(BlockNum from, BlockNum to) const {
  if (from == to) return 0;
  const auto distance = static_cast<double>(std::llabs(to - from));
  const auto span = static_cast<double>(params_.num_blocks);
  const double frac = distance / span;
  const auto t2t = static_cast<double>(params_.track_to_track_seek);
  const auto full = static_cast<double>(params_.full_stroke_seek);
  return static_cast<SimDuration>(t2t + (full - t2t) * std::sqrt(frac));
}

SimDuration DiskModel::transfer_time(BlockNum nblocks) const {
  assert(nblocks >= 0);
  const double bytes =
      static_cast<double>(nblocks) * static_cast<double>(params_.block_bytes);
  return static_cast<SimDuration>(bytes / params_.transfer_bytes_per_sec *
                                  kSecond);
}

SimDuration DiskModel::service_time(BlockNum head, BlockNum start,
                                    BlockNum nblocks) const {
  SimDuration t = params_.per_request_overhead + transfer_time(nblocks);
  if (head != start) {
    t += seek_time(head, start) + params_.rotation_half();
  }
  return t;
}

}  // namespace apsim
