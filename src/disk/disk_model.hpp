#pragma once

#include <cstdint>

#include "sim/time.hpp"

/// \file disk_model.hpp
/// Analytic service-time model for a single-spindle disk of the paper's era
/// (circa-2002 IDE/SCSI drive backing a Linux swap partition).
///
/// The model is the standard seek + rotation + transfer decomposition:
///   seek(d)   = track_to_track + (full_seek - track_to_track) * sqrt(d/D)
///   rotation  = half a revolution on any non-sequential access
///   transfer  = bytes / media_rate
/// plus a fixed per-request controller overhead. Sequential requests (head
/// already positioned at the first block) skip both seek and rotation, which
/// is precisely the effect block/swap paging exploits: one N-page contiguous
/// I/O costs one seek, N single-page scattered I/Os cost N of them.

namespace apsim {

/// Disk block index (one block == one 4 KiB page slot).
using BlockNum = std::int64_t;

struct DiskParams {
  /// Total capacity in blocks.
  BlockNum num_blocks = 2 * 1024 * 1024;  // 8 GiB swap area

  /// Block size in bytes; equals the VM page size throughout the library.
  std::int64_t block_bytes = 4096;

  /// Shortest possible (track-to-track) seek.
  SimDuration track_to_track_seek = 1 * kMillisecond;

  /// Full-stroke seek across the whole device.
  SimDuration full_stroke_seek = 18 * kMillisecond;

  /// Spindle speed, used for rotational latency (half revolution average).
  double rpm = 5400.0;

  /// Sustained media transfer rate, bytes per second.
  double transfer_bytes_per_sec = 25.0e6;

  /// Fixed controller/command overhead charged to every request.
  SimDuration per_request_overhead = 250 * kMicrosecond;

  [[nodiscard]] SimDuration rotation_half() const {
    return static_cast<SimDuration>(0.5 * 60.0 / rpm * kSecond);
  }
};

/// Stateless cost functions over DiskParams plus the current head position.
class DiskModel {
 public:
  explicit DiskModel(DiskParams params) : params_(params) {}

  [[nodiscard]] const DiskParams& params() const { return params_; }

  /// Seek time to move the head from \p from to \p to.
  [[nodiscard]] SimDuration seek_time(BlockNum from, BlockNum to) const;

  /// Time to transfer \p nblocks once positioned.
  [[nodiscard]] SimDuration transfer_time(BlockNum nblocks) const;

  /// Full service time for a request starting at \p start of \p nblocks with
  /// the head currently at \p head. Sequential continuation (head == start)
  /// pays neither seek nor rotation.
  [[nodiscard]] SimDuration service_time(BlockNum head, BlockNum start,
                                         BlockNum nblocks) const;

 private:
  DiskParams params_;
};

}  // namespace apsim
