#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "disk/disk_model.hpp"
#include "fault/fault_injector.hpp"
#include "metrics/tracer.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

/// \file disk.hpp
/// Queued disk device: accepts block requests, schedules them with a C-LOOK
/// elevator, coalesces contiguous requests into single transfers, and
/// services background-priority requests only when no foreground work is
/// queued. The latter is how the paper's background dirty-page writer avoids
/// competing with demand paging.

namespace apsim {

enum class IoPriority : std::uint8_t { kForeground = 0, kBackground = 1 };

/// Completion status of one disk transfer. Errors come from the fault
/// injector (transient/persistent media errors) or a failed device; coalesced
/// requests share the outcome of their merged transfer.
struct IoResult {
  bool ok = true;

  [[nodiscard]] static IoResult success() { return IoResult{true}; }
  [[nodiscard]] static IoResult error() { return IoResult{false}; }
};

using IoCallback = std::function<void(IoResult)>;

struct DiskRequest {
  BlockNum start = 0;
  BlockNum nblocks = 1;
  bool write = false;
  IoPriority priority = IoPriority::kForeground;
  /// Invoked exactly once when the transfer finishes (or errors out).
  IoCallback on_complete;
};

class Disk {
 public:
  Disk(Simulator& sim, DiskParams params)
      : sim_(sim), model_(params) {}

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  /// Enqueue a request. Service begins immediately if the device is idle.
  /// On a failed device the request completes with an error instead.
  void submit(DiskRequest req);

  /// Attach the cluster's fault injector (nullptr = fault-free). \p node is
  /// this disk's owning node index, used to match FaultSpec targets.
  void set_fault_injector(FaultInjector* injector, int node) {
    injector_ = injector;
    node_index_ = node;
  }

  /// Attach the run's tracer (nullptr = untraced; the default costs nothing).
  /// Each physical service becomes a span on \p track with a queue-depth
  /// counter sampled at service start.
  void set_tracer(Tracer* tracer, int track) {
    tracer_ = tracer;
    trace_track_ = track;
  }

  /// Permanently fail the device (node crash): queued requests complete with
  /// errors, in-flight transfers error on landing, and every future submit
  /// errors immediately. Idempotent.
  void fail_device();
  [[nodiscard]] bool failed() const { return failed_; }

  [[nodiscard]] const DiskModel& model() const { return model_; }
  [[nodiscard]] BlockNum head() const { return head_; }

  /// Reposition the head (snapshot restore). Only meaningful while the
  /// device is idle: seek distances of queued work are computed at service
  /// start from wherever the head is then.
  void set_head(BlockNum head) { head_ = head; }
  [[nodiscard]] bool busy() const { return busy_; }
  [[nodiscard]] std::size_t queue_depth() const {
    return foreground_.size() + background_.size();
  }

  /// Cumulative statistics.
  struct Stats {
    std::uint64_t requests = 0;          ///< requests submitted
    std::uint64_t services = 0;          ///< physical I/Os after coalescing
    std::uint64_t blocks_read = 0;
    std::uint64_t blocks_written = 0;
    SimDuration busy_time = 0;           ///< time spent servicing
    std::size_t max_queue_depth = 0;
    std::uint64_t io_errors = 0;         ///< requests completed with an error
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Overwrite the cumulative statistics (snapshot restore: a forked stack
  /// continues the captured run, so it inherits the prefix's counters).
  void set_stats(const Stats& stats) { stats_ = stats; }

  /// Fraction of [0, now] the device spent busy.
  [[nodiscard]] double utilization() const;

 private:
  void start_next();
  /// Pick the next request index from \p queue using C-LOOK order relative
  /// to the current head position. Returns queue.size() if empty.
  [[nodiscard]] std::size_t pick_clook(const std::deque<DiskRequest>& queue) const;

  Simulator& sim_;
  DiskModel model_;
  std::deque<DiskRequest> foreground_;
  std::deque<DiskRequest> background_;
  BlockNum head_ = 0;
  bool busy_ = false;
  bool failed_ = false;
  FaultInjector* injector_ = nullptr;
  int node_index_ = 0;
  Tracer* tracer_ = nullptr;
  int trace_track_ = 0;
  Stats stats_;
};

}  // namespace apsim
