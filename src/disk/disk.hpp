#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "disk/disk_model.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

/// \file disk.hpp
/// Queued disk device: accepts block requests, schedules them with a C-LOOK
/// elevator, coalesces contiguous requests into single transfers, and
/// services background-priority requests only when no foreground work is
/// queued. The latter is how the paper's background dirty-page writer avoids
/// competing with demand paging.

namespace apsim {

enum class IoPriority : std::uint8_t { kForeground = 0, kBackground = 1 };

struct DiskRequest {
  BlockNum start = 0;
  BlockNum nblocks = 1;
  bool write = false;
  IoPriority priority = IoPriority::kForeground;
  /// Invoked exactly once when the transfer finishes.
  std::function<void()> on_complete;
};

class Disk {
 public:
  Disk(Simulator& sim, DiskParams params)
      : sim_(sim), model_(params) {}

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  /// Enqueue a request. Service begins immediately if the device is idle.
  void submit(DiskRequest req);

  [[nodiscard]] const DiskModel& model() const { return model_; }
  [[nodiscard]] BlockNum head() const { return head_; }
  [[nodiscard]] bool busy() const { return busy_; }
  [[nodiscard]] std::size_t queue_depth() const {
    return foreground_.size() + background_.size();
  }

  /// Cumulative statistics.
  struct Stats {
    std::uint64_t requests = 0;          ///< requests submitted
    std::uint64_t services = 0;          ///< physical I/Os after coalescing
    std::uint64_t blocks_read = 0;
    std::uint64_t blocks_written = 0;
    SimDuration busy_time = 0;           ///< time spent servicing
    std::size_t max_queue_depth = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Fraction of [0, now] the device spent busy.
  [[nodiscard]] double utilization() const;

 private:
  void start_next();
  /// Pick the next request index from \p queue using C-LOOK order relative
  /// to the current head position. Returns queue.size() if empty.
  [[nodiscard]] std::size_t pick_clook(const std::deque<DiskRequest>& queue) const;

  Simulator& sim_;
  DiskModel model_;
  std::deque<DiskRequest> foreground_;
  std::deque<DiskRequest> background_;
  BlockNum head_ = 0;
  bool busy_ = false;
  Stats stats_;
};

}  // namespace apsim
