#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "disk/swap_device.hpp"
#include "mem/frame_table.hpp"
#include "mem/page_table.hpp"
#include "mem/reclaim.hpp"
#include "mem/touch_plan.hpp"
#include "metrics/tracer.hpp"
#include "sim/log.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

/// \file vmm.hpp
/// Per-node virtual-memory manager modelling the Linux 2.2 paging machinery
/// the paper modifies: demand paging with zero-fill minor faults, swap-backed
/// major faults with cluster read-ahead, watermark-driven reclaim
/// (freepages.min / low / high), a kswapd-style background reclaimer, and a
/// swap cache (a clean page may keep a valid swap copy, making its eviction
/// free). The adaptive mechanisms in src/core drive this class exclusively
/// through its public hooks: pluggable reclaim policy, explicit reclaim
/// requests, prefetch (artificial faults), dirty-page writeback and the
/// eviction observer.

namespace apsim {

class TierManager;

struct VmmParams {
  /// Physical frames on the node (before wiring).
  std::int64_t total_frames = mb_to_pages(1024.0);

  /// Watermarks, in frames (Linux 2.2 freepages.min/low/high analogues).
  std::int64_t freepages_min = 256;
  std::int64_t freepages_low = 512;
  std::int64_t freepages_high = 768;

  /// Swap read-ahead: pages fetched per major fault (Linux 2.2 default 16).
  std::int64_t page_cluster = 16;

  /// Victims requested from the policy per reclaim step.
  std::int64_t reclaim_batch = 32;

  /// Longest contiguous run a single prefetch read may use.
  std::int64_t max_prefetch_run = 512;

  /// Longest contiguous swap-slot run sought when writing out a batch.
  std::int64_t max_writeout_run = 512;

  /// Page aging (Linux 2.2's PG_age): when enabled, the clock sweep ages
  /// pages down by age_decline per encounter and up by age_advance per
  /// observed reference, evicting only at age 0 — giving recently-used (and
  /// freshly mapped) pages several sweeps of protection instead of the
  /// one-bit second chance. Default off: the shipped calibration models the
  /// plain referenced-bit clock.
  bool page_aging = false;
  std::uint8_t age_initial = 3;
  std::uint8_t age_advance = 3;
  std::uint8_t age_max = 20;
  std::uint8_t age_decline = 1;

  /// CPU cost of a zero-fill (minor) fault.
  SimDuration minor_fault_cost = 3 * kMicrosecond;

  /// Kernel CPU overhead of a major fault, excluding disk time.
  SimDuration major_fault_cpu = 8 * kMicrosecond;

  /// Transient-I/O recovery: a failed demand/read-ahead swap read is retried
  /// with capped exponential backoff (base, base*2, base*4, ... up to cap)
  /// at most io_retry_limit times before the page is declared unrecoverable.
  int io_retry_limit = 4;
  SimDuration io_retry_base = 5 * kMillisecond;
  SimDuration io_retry_cap = 80 * kMillisecond;

  /// Faults that keep retrying while reclaim is stalled (swap exhausted or
  /// the device persistently failing) are abandoned after this many 1 ms
  /// retries instead of looping forever.
  int stalled_fault_retry_limit = 200;

  /// Consecutive failed eviction write-outs before the reclaimer reports
  /// itself stalled (stops the kswapd goal; demand waiters still probe).
  int write_failure_streak_limit = 3;
};

/// Per-process memory state owned by the VMM.
class AddressSpace {
 public:
  AddressSpace(Pid pid, std::int64_t num_pages)
      : pid_(pid), pt_(num_pages) {}

  [[nodiscard]] Pid pid() const { return pid_; }
  [[nodiscard]] PageTable& page_table() { return pt_; }
  [[nodiscard]] const PageTable& page_table() const { return pt_; }
  [[nodiscard]] std::int64_t num_pages() const { return pt_.num_pages(); }
  [[nodiscard]] std::int64_t resident_pages() const { return resident_; }
  [[nodiscard]] std::int64_t dirty_pages() const { return dirty_resident_; }
  [[nodiscard]] bool alive() const { return alive_; }

  /// Distinct pages touched since the last begin_ws_epoch() call; this is
  /// the kernel-side working-set estimate the paper's API consumes.
  [[nodiscard]] std::int64_t ws_pages() const { return ws_pages_; }

  struct Stats {
    std::uint64_t minor_faults = 0;
    std::uint64_t major_faults = 0;
    std::uint64_t pages_swapped_in = 0;   ///< pages read from swap
    std::uint64_t pages_swapped_out = 0;  ///< pages written to swap (evict)
    std::uint64_t pages_clean_dropped = 0;
    std::uint64_t false_evictions = 0;    ///< evicted then re-faulted within one quantum
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  friend class Vmm;

  /// Residency cache: one watched region with an exact count of its
  /// non-resident pages. Registered lazily by Vmm::region_fully_resident
  /// (one O(region) scan), then kept exact by note_mapped/note_unmapped at
  /// every present-bit transition — so the batched touch engine's
  /// fully-resident test is O(#watches) per slice with no page-table walk,
  /// and eviction/reclaim/tier-writeback/fault paths invalidate it for free
  /// (they all unmap through the VMM, which bumps the counter).
  struct WatchedRegion {
    VPage start = 0;
    std::int64_t pages = 0;
    std::int64_t nonresident = 0;
    bool active = false;
  };
  static constexpr int kWatchedRegions = 8;

  void note_mapped(VPage v) {
    for (auto& w : watched_) {
      if (w.active && v >= w.start && v < w.start + w.pages) --w.nonresident;
    }
  }
  void note_unmapped(VPage v) {
    for (auto& w : watched_) {
      if (w.active && v >= w.start && v < w.start + w.pages) ++w.nonresident;
    }
  }
  void drop_watches() {
    for (auto& w : watched_) w.active = false;
  }

  Pid pid_;
  PageTable pt_;
  std::int64_t resident_ = 0;
  std::int64_t dirty_resident_ = 0;
  std::int64_t ws_pages_ = 0;
  VPage writeback_hand_ = 0;  ///< background-writer sweep position
  bool alive_ = true;
  WatchedRegion watched_[kWatchedRegions];
  int watch_cursor_ = 0;
  Stats stats_;
};

/// A contiguous run of virtual pages [start, start + count).
struct PageRun {
  VPage start = 0;
  std::int64_t count = 0;

  friend bool operator==(const PageRun&, const PageRun&) = default;
};

struct MemSnapshot;

class Vmm {
 public:
  Vmm(Simulator& sim, SwapDevice& swap, VmmParams params);

  Vmm(const Vmm&) = delete;
  Vmm& operator=(const Vmm&) = delete;

  // ---- process lifecycle ----

  /// Register a process with an anonymous address space of \p num_pages.
  Pid create_process(std::int64_t num_pages);

  /// Tear down a process: unmap resident pages and release swap slots.
  /// Pages with in-flight I/O are reaped when that I/O completes.
  void release_process(Pid pid);

  [[nodiscard]] AddressSpace& space(Pid pid);
  [[nodiscard]] const AddressSpace& space(Pid pid) const;
  [[nodiscard]] const std::vector<Pid>& pids() const { return pids_; }

  // ---- the hot path used by the CPU executor ----

  /// Reference a page. Returns true and updates referenced/dirty/age bits if
  /// the page is resident; returns false (caller must fault()) otherwise.
  [[nodiscard]] bool touch(Pid pid, VPage vpage, bool write);

  /// Hot-path overload for callers that cache the AddressSpace pointer.
  [[nodiscard]] bool touch(AddressSpace& as, VPage vpage, bool write);

  /// Result of a batched touch run.
  struct TouchRun {
    std::int64_t consumed = 0;  ///< touches applied before stopping
    VPage fault_page = -1;      ///< first non-resident page (when faulted)
    bool faulted = false;
  };

  /// Batched touch engine: apply touches [begin, begin + budget) of \p plan
  /// in one call. Stops at the first non-resident page (consumed = touches
  /// applied before it, fault_page = the page the caller must fault()).
  /// Observable state after the call — referenced/dirty/age bits, last_ref,
  /// ws-epoch counts, dirty accounting, swap-slot frees and their order — is
  /// bit-identical to calling the scalar touch() once per touch: all touches
  /// in a run happen at one instant of simulated time, so per-page effects
  /// are idempotent and the engine may apply them once per distinct page in
  /// first-touch order. Sequential/strided plans over a fully-resident
  /// region (per the residency cache) take a closed-form fast-forward that
  /// touches each distinct page of the orbit once instead of looping per
  /// touch.
  [[nodiscard]] TouchRun touch_run(AddressSpace& as, const TouchPlan& plan,
                                   std::int64_t begin, std::int64_t budget);

  /// True iff every page of [start, start + pages) is resident. Served from
  /// the per-space residency cache; registers a watch on first query for a
  /// region (one O(pages) scan) and is O(1) afterwards. Public so tests can
  /// probe cache invalidation directly.
  [[nodiscard]] bool region_fully_resident(AddressSpace& as, VPage start,
                                           std::int64_t pages);

  /// Handle a fault on a non-resident page. \p resume runs (via an event)
  /// once the page is mapped; the caller keeps the process blocked until
  /// then. Covers minor (zero-fill) and major (swap read + read-ahead)
  /// faults, and piggybacks on in-flight I/O for the same page.
  void fault(Pid pid, VPage vpage, bool write, std::function<void()> resume);

  // ---- hooks used by the adaptive mechanisms (src/core) ----

  /// Replace the victim-selection policy (selective page-out plugs in here).
  void set_reclaim_policy(std::unique_ptr<ReclaimPolicy> policy);
  [[nodiscard]] ReclaimPolicy& reclaim_policy() { return *policy_; }

  /// Ask the reclaimer to bring free_frames() up to \p target_free, then run
  /// \p done (immediately if already satisfied). This is the engine behind
  /// both the watermark path and aggressive page-out. Best-effort requests
  /// are released silently when the target becomes unreachable (aggressive
  /// page-out races the incoming process for the freed frames, so its
  /// target is advisory); strict requests warn in that case.
  void request_free_frames(std::int64_t target_free, std::function<void()> done,
                           bool best_effort = false,
                           std::function<bool()> give_up = {});

  /// Artificially fault in the given page runs (adaptive page-in replay).
  /// Pages already resident or with I/O in flight are skipped. \p done runs
  /// when every started read has landed.
  void prefetch(Pid pid, std::vector<PageRun> runs, std::function<void()> done);

  /// Write up to \p max_pages dirty resident pages of \p pid to swap without
  /// unmapping them (background writing). \p done receives the number of
  /// pages whose writes were started.
  void writeback_dirty(Pid pid, std::int64_t max_pages, IoPriority priority,
                       std::function<void(std::int64_t)> done);

  /// Observer invoked for every page evicted from memory (clean drop or
  /// write-out start); the adaptive page-in recorder attaches here.
  using EvictObserver = std::function<void(Pid, VPage)>;
  void set_evict_observer(EvictObserver observer) {
    evict_observer_ = std::move(observer);
  }

  /// Start a new working-set accounting epoch for \p pid (call at quantum
  /// start); ws_pages() then counts distinct pages touched in the new epoch.
  void begin_ws_epoch(Pid pid);

  // ---- checkpoint/restart support ----

  /// Everything a checkpoint image needs about one address space, taken at
  /// a single instant: the runs of live pages (resident or with a valid
  /// swap copy — pages that would survive to the next touch) and the live
  /// and dirty counts used for incremental checkpoint sizing.
  struct ImageSnapshot {
    std::vector<PageRun> live;
    std::int64_t live_pages = 0;
    std::int64_t dirty_pages = 0;
  };
  [[nodiscard]] ImageSnapshot snapshot_image(Pid pid) const;

  /// Stage a checkpoint image into a freshly created address space: bind
  /// the image's live page runs to the given swap-slot runs (same total
  /// length), so subsequent demand faults read them back as real major
  /// faults. The caller owns writing the image data to those slots through
  /// the disk model; the slots become pte-owned here and are released with
  /// the process as usual.
  void bind_swap_image(Pid pid, const std::vector<PageRun>& pages,
                       const std::vector<SlotRun>& slots);

  // ---- copy-on-write memory snapshots (prefix forking) ----

  /// Capture this Vmm's complete paging state as an in-memory image. Page
  /// metadata is shared copy-on-write with the live tables — capturing is
  /// O(#spaces + frames + swap bitmap), not O(pages), and costs nothing more
  /// until one side mutates. Requires an I/O-quiet instant (no in-flight
  /// transfers, no blocked waiters: run the simulator until the queue
  /// drains first) and a clonable reclaim policy. The image stays valid and
  /// restorable any number of times, independent of this Vmm's future.
  [[nodiscard]] MemSnapshot capture_snapshot() const;

  /// Adopt a captured image: rebuild every address space (page metadata
  /// shared copy-on-write with the image), the frame table, the swap
  /// allocator, the reclaim policy and all counters, and reposition the
  /// disk head, so that — once the caller advances the simulator clock to
  /// the image's `when` — this stack continues bit-identically to the one
  /// that was captured. Intended for a freshly built Vmm with the same
  /// frame count and swap geometry; any existing state is discarded.
  /// Residency-cache watches are not part of the image (they re-register
  /// lazily and never change observable results).
  void restore_snapshot(const MemSnapshot& snap);

  // ---- failure reporting ----

  /// Why a page became unrecoverable.
  enum class PageFailure : std::uint8_t {
    kIoError,    ///< swap read kept failing after capped-backoff retries
    kOutOfSwap,  ///< reclaim stalled (swap exhausted / unwritable) past the cap
  };

  /// Invoked (via an event) when a fault on (pid, vpage) is abandoned: the
  /// faulting process stays blocked, so the handler should kill the job.
  /// Without a handler the process simply never resumes — the queue still
  /// quiesces and the stats below make the outcome diagnosable.
  using FailureHandler = std::function<void(Pid, VPage, PageFailure)>;
  void set_failure_handler(FailureHandler handler) {
    failure_handler_ = std::move(handler);
  }

  /// Interpose the compressed swap tier on every swap read/write this VMM
  /// issues (nullptr = talk to the SwapDevice directly, the pre-tier path).
  void set_tier(TierManager* tier) { tier_ = tier; }
  [[nodiscard]] TierManager* tier() { return tier_; }

  /// Attach the run's tracer (nullptr = untraced). Fault kinds, reclaim
  /// batches and retry-ladder attempts become instants on \p track;
  /// request_free_frames waiters become async spans ending at release.
  void set_tracer(Tracer* tracer, int track) {
    tracer_ = tracer;
    trace_track_ = track;
  }

  // ---- introspection ----

  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] SwapDevice& swap() { return swap_; }
  [[nodiscard]] FrameTable& frames() { return frames_; }
  [[nodiscard]] const FrameTable& frames() const { return frames_; }
  [[nodiscard]] const VmmParams& params() const { return params_; }
  [[nodiscard]] std::int64_t free_frames() const { return frames_.free_frames(); }

  /// Wire down \p n frames (mlock emulation for the experiments).
  std::int64_t wire_down(std::int64_t n) { return frames_.wire_down(n); }

  // ---- runtime actuators (adaptive control plane) ----
  //
  // Bounded re-tuning of the paging knobs while the run is live. Each
  // setter clamps to a sane range and preserves the watermark invariant
  // freepages_min <= low <= high; all take effect on the next reclaim
  // step / prefetch pump / watermark check, so the effects are
  // deterministic functions of when the controller fires them.

  void set_reclaim_batch(std::int64_t pages) {
    params_.reclaim_batch = std::max<std::int64_t>(1, pages);
  }
  void set_max_prefetch_run(std::int64_t pages) {
    params_.max_prefetch_run = std::max<std::int64_t>(1, pages);
  }
  void set_freepages_low(std::int64_t frames) {
    params_.freepages_low =
        std::clamp(frames, params_.freepages_min, params_.freepages_high);
    // Raising the watermark above the current free level means kswapd has
    // new work; kick it rather than waiting for the next fault.
    if (free_frames() < params_.freepages_low) kick_reclaim();
  }
  void set_freepages_high(std::int64_t frames) {
    params_.freepages_high = std::max(frames, params_.freepages_low);
  }

  struct Stats {
    std::uint64_t reclaim_steps = 0;
    std::uint64_t oom_waiter_releases = 0;  ///< waiters released unsatisfied
    std::uint64_t alloc_retries = 0;        ///< frame allocation retried after delay
    std::uint64_t io_read_failures = 0;     ///< failed swap read transfers
    std::uint64_t io_write_failures = 0;    ///< failed swap write transfers
    std::uint64_t io_retries = 0;           ///< read retries after transient errors
    std::uint64_t pages_unrecoverable = 0;  ///< faults abandoned: I/O retry exhaustion
    std::uint64_t out_of_swap_faults = 0;   ///< faults abandoned: stalled reclaim
    std::uint64_t prefetch_aborts = 0;      ///< prefetch replays abandoned on error
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// True while the reclaimer cannot make progress (swap exhausted or its
  /// writes persistently failing); the adaptive pager uses this to degrade.
  [[nodiscard]] bool reclaim_stalled() const { return reclaim_stalled_; }

  /// Pages read from swap per second (trace for Figure 6).
  [[nodiscard]] TimeSeries& pagein_series() { return pagein_series_; }
  /// Pages written to swap per second (trace for Figure 6).
  [[nodiscard]] TimeSeries& pageout_series() { return pageout_series_; }

  [[nodiscard]] Logger& log() { return log_; }

 private:
  struct Waiter {
    std::int64_t target = 0;
    std::function<void()> done;
    bool best_effort = false;
    std::function<bool()> give_up;  ///< release (satisfied-enough) when true
    TraceSpan span;  ///< ends when the waiter is released (destroyed)
  };

  /// Shared body of touch()/touch_run() for a page already known resident.
  void touch_resident(AddressSpace& as, Pte pte, bool write);

  // Fault machinery.
  void fault_impl(Pid pid, VPage vpage, bool write,
                  std::function<void()> resume, bool skip_watermark);
  void retry_fault_later(Pid pid, VPage vpage, bool write,
                         std::function<void()> resume);
  void start_major_fault(Pid pid, VPage vpage, bool write,
                         std::function<void()> resume);
  /// Issue (or re-issue, attempt > 0) the swap read for a major fault whose
  /// frames are already reserved over [lo, lo + count).
  void issue_major_read(Pid pid, VPage lo, std::int64_t count, VPage vpage,
                        bool write, std::function<void()> resume, int attempt);
  void finish_minor_fault(Pid pid, VPage vpage, bool write,
                          std::function<void()> resume);
  void add_io_waiter(Pid pid, VPage vpage, std::function<void()> resume);
  void fire_io_waiters(Pid pid, VPage vpage);
  [[nodiscard]] bool has_io_waiters(Pid pid, VPage vpage) const {
    return !io_waiters_.empty() && io_waiters_.contains({pid, vpage});
  }
  void drop_io_waiters(Pid pid, VPage vpage);
  /// Return a fired waiter list's capacity to the spare pool for reuse.
  void recycle_waiter_list(std::vector<std::function<void()>>&& list);
  /// Abandon the fault on (pid, vpage) and notify the failure handler.
  void declare_unrecoverable(Pid pid, VPage vpage, PageFailure failure);

  // Reclaim machinery.
  void kick_reclaim();
  void reclaim_step();
  void warn_release_rate_limited(const char* reason);
  /// Begin eviction of the given victims; returns frames freed instantly
  /// (clean drops) with write-backed frees counted in evictions_in_flight_.
  std::int64_t evict_batch(std::span<const Victim> victims, IoPriority priority);
  void note_evicted(Pid pid, VPage vpage);
  void check_waiters();

  // Prefetch driver.
  struct PrefetchJob {
    Pid pid = kNoPid;
    std::vector<PageRun> runs;
    std::size_t run_idx = 0;
    std::int64_t page_idx = 0;
    std::int64_t reads_in_flight = 0;
    std::function<void()> done;
  };
  void prefetch_pump(const std::shared_ptr<PrefetchJob>& job);

  void account_pagein(std::int64_t pages, AddressSpace& as);
  void account_pageout(std::int64_t pages, AddressSpace& as);

  /// Swap I/O entry points: route via the tier when one is attached,
  /// straight to the device otherwise.
  void swap_read(SlotRun run, IoPriority priority, IoCallback on_complete);
  void swap_write(SlotRun run, IoPriority priority, IoCallback on_complete);

  static SimTime clock_thunk(const void* ctx) {
    return static_cast<const Simulator*>(ctx)->now();
  }

  Simulator& sim_;
  SwapDevice& swap_;
  TierManager* tier_ = nullptr;
  Tracer* tracer_ = nullptr;
  int trace_track_ = 0;
  VmmParams params_;
  FrameTable frames_;
  Logger log_;

  std::map<Pid, std::unique_ptr<AddressSpace>> spaces_;
  std::vector<Pid> pids_;
  Pid next_pid_ = 1;

  std::unique_ptr<ReclaimPolicy> policy_;
  std::vector<Waiter> waiters_;
  std::int64_t evictions_in_flight_ = 0;  ///< frames that will free on write completion
  bool reclaim_scheduled_ = false;
  std::uint64_t release_warnings_ = 0;

  /// Reclaim cannot currently make progress (swap exhausted or its writes
  /// keep failing). Suppresses the background kswapd goal — demand waiters
  /// still probe — and starts the stalled-fault abandonment countdown.
  /// Cleared by any successful eviction or freed memory.
  bool reclaim_stalled_ = false;
  int write_failure_streak_ = 0;
  std::map<std::pair<Pid, VPage>, int> stalled_retry_counts_;

  FailureHandler failure_handler_;

  std::map<std::pair<Pid, VPage>, std::vector<std::function<void()>>> io_waiters_;
  /// Capacity recycling for fired/dropped io-waiter lists (allocation diet:
  /// piggybacked faults are common under gang switches, and each list would
  /// otherwise re-grow from zero).
  static constexpr std::size_t kMaxSpareWaiterLists = 16;
  std::vector<std::vector<std::function<void()>>> spare_waiter_lists_;
  /// Reusable pass-2 buffer for evict_batch (allocation diet: reclaim runs
  /// every step of a fault storm and must not allocate per invocation).
  std::vector<Victim> write_scratch_;

  EvictObserver evict_observer_;

  TimeSeries pagein_series_{kSecond};
  TimeSeries pageout_series_{kSecond};
  Stats stats_;
};

/// In-memory image of one Vmm's complete paging state, taken at an I/O-quiet
/// instant by Vmm::capture_snapshot(). Page metadata is shared copy-on-write
/// with the live tables, so a capture costs one refcount per space and the
/// big arrays are copied only when either side mutates them afterwards.
/// Restoring into a freshly built stack with the same frame count and swap
/// geometry — then advancing that stack's clock to `when` — reproduces the
/// original run exactly: paging is a deterministic function of this state
/// and future touches. This is what lets sweep benches sharing an expensive
/// warmup prefix fork each sweep point from one image instead of re-running
/// the prefix per point.
struct MemSnapshot {
  struct SpaceImage {
    Pid pid = kNoPid;
    std::shared_ptr<const PageTable::Meta> meta;  ///< shared copy-on-write
    VPage clock_hand = 0;
    std::int64_t resident = 0;
    std::int64_t dirty_resident = 0;
    std::int64_t ws_pages = 0;
    VPage writeback_hand = 0;
    bool alive = true;
    AddressSpace::Stats stats;
  };
  std::vector<SpaceImage> spaces;
  Pid next_pid = 1;

  FrameTable frames{0};            ///< eager copy (small next to the tables)
  SwapDevice::AllocImage swap;     ///< slot bitmap + next-fit cursor
  std::unique_ptr<ReclaimPolicy> policy;  ///< clone; re-cloned per restore

  VmmParams params;
  Vmm::Stats stats;
  bool reclaim_stalled = false;
  int write_failure_streak = 0;
  std::uint64_t release_warnings = 0;
  TimeSeries pagein{kSecond};
  TimeSeries pageout{kSecond};

  SimTime when = 0;        ///< capture instant (advance the fork's clock here)
  BlockNum disk_head = 0;  ///< head position, for identical seek costs
  Disk::Stats disk_stats;  ///< cumulative disk counters up to the capture
};

}  // namespace apsim
