#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>

#include "mem/page.hpp"
#include "sim/rng.hpp"

/// \file touch_plan.hpp
/// Prepared form of one page-touch chunk, consumed by the VMM's batched
/// touch engine (Vmm::touch_run). A TouchPlan carries the chunk's addressing
/// parameters plus everything that is loop-invariant across its touches —
/// the zipf harmonic constant and exponent, the pre-mixed seed — so the
/// per-touch `page_at` does no `pow`/`log` and no redundant hashing. The
/// proc layer builds plans from AccessChunks (AccessChunk::prepare());
/// keeping the type here lets src/mem consume it without depending on the
/// process layer.
///
/// Determinism contract: for the same parameters, TouchPlan::page_at and
/// AccessChunk::page_at return bit-identical pages for every index — both
/// are implemented on the shared helpers below, and the golden-value test in
/// tests/test_touch_engine.cpp pins the outputs for all four patterns.

namespace apsim {

/// Chunk addressing pattern (mirrors AccessChunk::Pattern; the proc layer
/// static_asserts the correspondence).
enum class TouchPattern : std::uint8_t {
  kSequential,  ///< region_start + i
  kStrided,     ///< region_start + (i * stride) mod region_pages
  kRandom,      ///< uniform over the region, hashed from (seed, i)
  kZipf,        ///< zipf-skewed over the region, hashed from (seed, i)
};

/// Stateless hash of (seed, i) with splitmix64.
[[nodiscard]] constexpr std::uint64_t touch_hash(std::uint64_t seed,
                                                 std::int64_t i) {
  std::uint64_t s =
      seed ^ (0x9E3779B97F4A7C15ULL + static_cast<std::uint64_t>(i));
  return splitmix64(s);
}

/// The zipf normalization constant H(n, theta) used by the inverse-CDF
/// approximation below. One log/pow per chunk, not per touch.
[[nodiscard]] inline double zipf_harmonic(std::int64_t n, double theta) {
  if (theta == 1.0) {
    return std::log(static_cast<double>(n) + 1.0);
  }
  return (std::pow(static_cast<double>(n) + 1.0, 1.0 - theta) - 1.0) /
         (1.0 - theta);
}

/// Map a uniform u64 to a zipf-distributed rank in [0, n), given the
/// precomputed harmonic constant `hn` = zipf_harmonic(n, theta).
[[nodiscard]] inline std::int64_t zipf_rank(std::uint64_t h, std::int64_t n,
                                            double theta, double hn) {
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  double x = 0.0;
  if (theta == 1.0) {
    x = std::exp(u * hn) - 1.0;
  } else {
    x = std::pow(u * hn * (1.0 - theta) + 1.0, 1.0 / (1.0 - theta)) - 1.0;
  }
  auto r = static_cast<std::int64_t>(x);
  return r >= n ? n - 1 : (r < 0 ? 0 : r);
}

/// One access chunk, prepared for the batched touch engine.
struct TouchPlan {
  TouchPattern pattern = TouchPattern::kSequential;
  VPage region_start = 0;
  std::int64_t region_pages = 0;
  std::int64_t touches = 0;  ///< total touches in the chunk (debug bounds)
  std::int64_t stride = 1;   ///< for kStrided
  bool write = false;
  std::uint64_t seed = 0;
  double theta = 0.8;
  double zipf_hn = 0.0;  ///< zipf_harmonic(region_pages, theta) for kZipf

  /// Deterministic page for the i-th touch; bit-identical to
  /// AccessChunk::page_at for the chunk this plan was prepared from.
  [[nodiscard]] VPage page_at(std::int64_t i) const {
    assert(i >= 0 && i < touches);
    assert(region_pages > 0);
    switch (pattern) {
      case TouchPattern::kSequential:
        return region_start + (i % region_pages);
      case TouchPattern::kStrided:
        return region_start + (i * stride) % region_pages;
      case TouchPattern::kRandom:
        return region_start +
               static_cast<VPage>(touch_hash(seed, i) %
                                  static_cast<std::uint64_t>(region_pages));
      case TouchPattern::kZipf:
        return region_start +
               zipf_rank(touch_hash(seed, i), region_pages, theta, zipf_hn);
    }
    return region_start;
  }
};

}  // namespace apsim
