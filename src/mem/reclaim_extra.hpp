#pragma once

#include "mem/reclaim.hpp"

/// \file reclaim_extra.hpp
/// Additional global replacement baselines beyond the Linux-2.2 clock:
/// exact LRU (evict the globally oldest page by reference timestamp) and
/// FIFO (evict in fault order, ignoring references). Used by the
/// replacement-policy ablation: under gang scheduling the clock's
/// proportional sweep false-evicts massively (it attacks the running job's
/// pages too); exact LRU and FIFO do better but still false-evict the
/// descheduled job's residual set by the thousands, because no
/// gang-oblivious policy can know that the oldest pages belong to a job
/// that is about to be rescheduled. Only the paper's selective page-out
/// eliminates the pathology.

namespace apsim {

/// Exact global LRU over reference timestamps. O(n log n) per refill of its
/// victim cache; a reference model, not a performance model.
class ExactLruPolicy final : public ReclaimPolicy {
 public:
  [[nodiscard]] std::vector<Victim> select_victims(Vmm& vmm,
                                                   std::int64_t max_pages) override;

  [[nodiscard]] std::string_view name() const override { return "exact-lru"; }

  [[nodiscard]] std::unique_ptr<ReclaimPolicy> clone() const override {
    return std::make_unique<ExactLruPolicy>(*this);
  }
};

/// Global FIFO by fault order. Maintains its own queue of (pid, vpage)
/// mapped-in pages, refreshed lazily against the page tables.
class FifoPolicy final : public ReclaimPolicy {
 public:
  [[nodiscard]] std::vector<Victim> select_victims(Vmm& vmm,
                                                   std::int64_t max_pages) override;

  [[nodiscard]] std::string_view name() const override { return "fifo"; }

  [[nodiscard]] std::unique_ptr<ReclaimPolicy> clone() const override {
    return std::make_unique<FifoPolicy>(*this);
  }

 private:
  void refill(Vmm& vmm);

  std::vector<Victim> queue_;  ///< oldest-mapped first
  std::size_t cursor_ = 0;
};

}  // namespace apsim
