#pragma once

#include <cstdint>
#include <vector>

#include "mem/page.hpp"

/// \file page_table.hpp
/// Flat page table for one process's anonymous address space, plus the
/// resident/dirty counters and the clock hand the replacement sweep uses.

namespace apsim {

class PageTable {
 public:
  explicit PageTable(std::int64_t num_pages)
      : ptes_(static_cast<std::size_t>(num_pages)) {}

  [[nodiscard]] std::int64_t num_pages() const {
    return static_cast<std::int64_t>(ptes_.size());
  }

  [[nodiscard]] Pte& at(VPage v) { return ptes_[static_cast<std::size_t>(v)]; }
  [[nodiscard]] const Pte& at(VPage v) const {
    return ptes_[static_cast<std::size_t>(v)];
  }

  [[nodiscard]] bool valid(VPage v) const {
    return v >= 0 && v < num_pages();
  }

  /// Clock hand for the replacement sweep; wraps modulo num_pages().
  [[nodiscard]] VPage clock_hand() const { return clock_hand_; }
  void set_clock_hand(VPage v) { clock_hand_ = v % num_pages(); }
  VPage advance_clock_hand() {
    clock_hand_ = (clock_hand_ + 1) % num_pages();
    return clock_hand_;
  }

 private:
  std::vector<Pte> ptes_;
  VPage clock_hand_ = 0;
};

}  // namespace apsim
