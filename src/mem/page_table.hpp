#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "mem/page.hpp"

/// \file page_table.hpp
/// Flat page table for one process's anonymous address space. Per-page
/// metadata is stored structure-of-arrays: one `uint64_t` bitmap per hot
/// flag (present/referenced/dirty/io_busy/ever_touched/has_slot plus the
/// two working-set epoch tags) and plain arrays for frame/slot/last_ref/age.
/// Reclaim sweeps, residency checks and bgwrite dirty scans walk the
/// bitmaps word-at-a-time with `std::countr_zero`; call sites that deal
/// with a single page go through the `Pte` accessor view, which keeps the
/// old field-per-page reading while compiling down to single bit ops.
///
/// The whole metadata block lives behind a shared_ptr so a snapshot can
/// share it copy-on-write: capturing costs one refcount, and the table
/// detaches (copies) only on the first mutation after a capture.

namespace apsim {

/// Word index of a virtual page in a per-flag bitmap row.
[[nodiscard]] constexpr std::size_t page_word(VPage v) {
  return static_cast<std::size_t>(v) >> 6;
}

/// Single-bit mask of a virtual page within its bitmap word.
[[nodiscard]] constexpr std::uint64_t page_bit(VPage v) {
  return std::uint64_t{1} << (static_cast<std::uint64_t>(v) & 63);
}

class Pte;
class ConstPte;

class PageTable {
 public:
  /// Structure-of-arrays metadata for every page of one address space.
  /// Bits past num_pages() in the last word of each row are always zero.
  struct Meta {
    std::int64_t npages = 0;
    std::vector<std::uint64_t> present;
    std::vector<std::uint64_t> referenced;
    std::vector<std::uint64_t> dirty;
    std::vector<std::uint64_t> io_busy;
    std::vector<std::uint64_t> ever_touched;
    std::vector<std::uint64_t> has_slot;  ///< slot[v] != kNoSwapSlot
    std::vector<std::uint64_t> ws_seen;   ///< referenced this WS epoch
    std::vector<std::uint64_t> evicted;   ///< evicted this WS epoch
    std::vector<FrameNum> frame;
    std::vector<SwapSlot> slot;
    std::vector<SimTime> last_ref;
    std::vector<std::uint8_t> age;
  };

  /// Raw row pointers for a hot loop that touches many pages. Obtained via
  /// hot_rows(), which detaches from any snapshot first; the pointers stay
  /// valid until the next capture/restore on this table.
  struct HotRows {
    std::uint64_t* present = nullptr;
    std::uint64_t* referenced = nullptr;
    std::uint64_t* dirty = nullptr;
    std::uint64_t* io_busy = nullptr;
    std::uint64_t* ever_touched = nullptr;
    std::uint64_t* has_slot = nullptr;
    std::uint64_t* ws_seen = nullptr;
    SwapSlot* slot = nullptr;
    SimTime* last_ref = nullptr;
  };

  explicit PageTable(std::int64_t num_pages);

  [[nodiscard]] std::int64_t num_pages() const { return meta_->npages; }

  [[nodiscard]] inline Pte at(VPage v);
  [[nodiscard]] inline ConstPte at(VPage v) const;

  [[nodiscard]] bool valid(VPage v) const {
    return v >= 0 && v < num_pages();
  }

  /// Clock hand for the replacement sweep; wraps modulo num_pages().
  [[nodiscard]] VPage clock_hand() const { return clock_hand_; }
  void set_clock_hand(VPage v) { clock_hand_ = v % num_pages(); }
  VPage advance_clock_hand() {
    clock_hand_ = (clock_hand_ + 1) % num_pages();
    return clock_hand_;
  }

  // --- word-at-a-time scans -------------------------------------------------

  /// First page >= from with the present bit set; num_pages() if none.
  [[nodiscard]] VPage next_present(VPage from) const {
    const Meta& m = *meta_;
    return scan_from(from, [&m](std::size_t w) { return m.present[w]; });
  }

  /// First page >= from that is live (present or holding a swap copy);
  /// num_pages() if none.
  [[nodiscard]] VPage next_live(VPage from) const {
    const Meta& m = *meta_;
    return scan_from(from,
                     [&m](std::size_t w) { return m.present[w] | m.has_slot[w]; });
  }

  /// First page >= from that bgwrite could write back (present, dirty, no
  /// I/O in flight); num_pages() if none.
  [[nodiscard]] VPage next_dirty_candidate(VPage from) const {
    const Meta& m = *meta_;
    return scan_from(from, [&m](std::size_t w) {
      return m.present[w] & m.dirty[w] & ~m.io_busy[w];
    });
  }

  /// Number of present pages in [start, start + count).
  [[nodiscard]] std::int64_t count_present(VPage start, std::int64_t count) const;

  // --- working-set epoch ----------------------------------------------------

  /// Start a new WS epoch: forget which pages were seen or evicted in the
  /// previous one. Replaces the per-page epoch stamps of the AoS layout.
  void clear_epoch_tags();

  // --- copy-on-write sharing ------------------------------------------------

  /// Share the metadata block (for a snapshot image). The table keeps using
  /// it; the first mutation afterwards detaches onto a private copy.
  [[nodiscard]] std::shared_ptr<const Meta> share_meta() const { return meta_; }

  /// Point this table at a previously shared metadata block (snapshot
  /// restore). Future mutations copy-on-write; the image stays intact.
  void adopt_meta(std::shared_ptr<const Meta> m) {
    assert(m && m->npages == meta_->npages);
    meta_ = std::move(m);
  }

  /// Row pointers for a hot loop; detaches from any snapshot first.
  [[nodiscard]] HotRows hot_rows();

  /// Read-only metadata view (never detaches).
  [[nodiscard]] const Meta& ro() const { return *meta_; }

  /// Mutable metadata view; detaches from any snapshot sharing first.
  [[nodiscard]] Meta& rw() {
    if (meta_.use_count() > 1) detach();
    // Sole owner: shedding const is safe, the block was created non-const.
    return const_cast<Meta&>(*meta_);
  }

 private:
  void detach();

  template <class WordAt>
  [[nodiscard]] VPage scan_from(VPage from, WordAt word_at) const {
    const std::int64_t n = num_pages();
    if (from >= n) return n;
    if (from < 0) from = 0;
    std::size_t wi = page_word(from);
    const std::size_t nwords = meta_->present.size();
    std::uint64_t w = word_at(wi) & (~std::uint64_t{0} << (from & 63));
    while (w == 0) {
      if (++wi >= nwords) return n;
      w = word_at(wi);
    }
    return static_cast<VPage>((wi << 6) + std::countr_zero(w));
  }

  std::shared_ptr<const Meta> meta_;
  VPage clock_hand_ = 0;
};

/// Mutable accessor view of one page-table entry. A lightweight
/// (table, page) pair: every accessor resolves the row on use, so views
/// stay valid across copy-on-write detaches. Setters detach the table
/// from any live snapshot before writing.
class Pte {
 public:
  Pte(PageTable* pt, VPage v) : pt_(pt), v_(v) {}

  [[nodiscard]] bool present() const { return get(ro().present); }
  [[nodiscard]] bool referenced() const { return get(ro().referenced); }
  [[nodiscard]] bool dirty() const { return get(ro().dirty); }
  [[nodiscard]] bool io_busy() const { return get(ro().io_busy); }
  [[nodiscard]] bool ever_touched() const { return get(ro().ever_touched); }
  [[nodiscard]] bool ws_seen() const { return get(ro().ws_seen); }
  [[nodiscard]] bool evicted_this_epoch() const { return get(ro().evicted); }
  [[nodiscard]] FrameNum frame() const { return ro().frame[idx()]; }
  [[nodiscard]] SwapSlot slot() const { return ro().slot[idx()]; }
  [[nodiscard]] SimTime last_ref() const { return ro().last_ref[idx()]; }
  [[nodiscard]] std::uint8_t age() const { return ro().age[idx()]; }

  void set_present(bool b) { put(rw().present, b); }
  void set_referenced(bool b) { put(rw().referenced, b); }
  void set_dirty(bool b) { put(rw().dirty, b); }
  void set_io_busy(bool b) { put(rw().io_busy, b); }
  void set_ever_touched(bool b) { put(rw().ever_touched, b); }
  void set_ws_seen() { rw().ws_seen[page_word(v_)] |= page_bit(v_); }
  void set_evicted_this_epoch() { rw().evicted[page_word(v_)] |= page_bit(v_); }
  void set_frame(FrameNum f) { rw().frame[idx()] = f; }
  void set_slot(SwapSlot s) {
    PageTable::Meta& m = rw();
    m.slot[idx()] = s;
    put_row(m.has_slot, s != kNoSwapSlot);
  }
  void set_last_ref(SimTime t) { rw().last_ref[idx()] = t; }
  void set_age(std::uint8_t a) { rw().age[idx()] = a; }

  /// True when eviction would need no disk write (valid swap copy, clean).
  [[nodiscard]] bool clean_drop_ok() const {
    const PageTable::Meta& m = ro();
    const std::uint64_t bit = page_bit(v_);
    const std::size_t w = page_word(v_);
    return (m.present[w] & bit) && !(m.dirty[w] & bit) && (m.has_slot[w] & bit);
  }

 private:
  [[nodiscard]] const PageTable::Meta& ro() const { return pt_->ro(); }
  [[nodiscard]] PageTable::Meta& rw() const { return pt_->rw(); }
  [[nodiscard]] std::size_t idx() const { return static_cast<std::size_t>(v_); }
  [[nodiscard]] bool get(const std::vector<std::uint64_t>& row) const {
    return (row[page_word(v_)] & page_bit(v_)) != 0;
  }
  void put(std::vector<std::uint64_t>& row, bool b) const { put_row(row, b); }
  void put_row(std::vector<std::uint64_t>& row, bool b) const {
    if (b) {
      row[page_word(v_)] |= page_bit(v_);
    } else {
      row[page_word(v_)] &= ~page_bit(v_);
    }
  }

  PageTable* pt_;
  VPage v_;
};

/// Read-only accessor view of one page-table entry.
class ConstPte {
 public:
  ConstPte(const PageTable* pt, VPage v) : pt_(pt), v_(v) {}

  [[nodiscard]] bool present() const { return get(ro().present); }
  [[nodiscard]] bool referenced() const { return get(ro().referenced); }
  [[nodiscard]] bool dirty() const { return get(ro().dirty); }
  [[nodiscard]] bool io_busy() const { return get(ro().io_busy); }
  [[nodiscard]] bool ever_touched() const { return get(ro().ever_touched); }
  [[nodiscard]] bool ws_seen() const { return get(ro().ws_seen); }
  [[nodiscard]] bool evicted_this_epoch() const { return get(ro().evicted); }
  [[nodiscard]] FrameNum frame() const { return ro().frame[idx()]; }
  [[nodiscard]] SwapSlot slot() const { return ro().slot[idx()]; }
  [[nodiscard]] SimTime last_ref() const { return ro().last_ref[idx()]; }
  [[nodiscard]] std::uint8_t age() const { return ro().age[idx()]; }

  [[nodiscard]] bool clean_drop_ok() const {
    const PageTable::Meta& m = ro();
    const std::uint64_t bit = page_bit(v_);
    const std::size_t w = page_word(v_);
    return (m.present[w] & bit) && !(m.dirty[w] & bit) && (m.has_slot[w] & bit);
  }

 private:
  [[nodiscard]] const PageTable::Meta& ro() const { return pt_->ro(); }
  [[nodiscard]] std::size_t idx() const { return static_cast<std::size_t>(v_); }
  [[nodiscard]] bool get(const std::vector<std::uint64_t>& row) const {
    return (row[page_word(v_)] & page_bit(v_)) != 0;
  }

  const PageTable* pt_;
  VPage v_;
};

inline Pte PageTable::at(VPage v) {
  assert(valid(v));
  return Pte(this, v);
}

inline ConstPte PageTable::at(VPage v) const {
  assert(valid(v));
  return ConstPte(this, v);
}

}  // namespace apsim
