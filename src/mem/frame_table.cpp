#include "mem/frame_table.hpp"

#include <algorithm>
#include <cassert>

namespace apsim {

FrameTable::FrameTable(std::int64_t num_frames)
    : frames_(static_cast<std::size_t>(num_frames)) {
  // 0 frames is a valid (empty) table: MemSnapshot default-constructs one
  // as a placeholder before capture fills it in.
  assert(num_frames >= 0);
  free_.reserve(frames_.size());
  // Hand out low frame numbers first (purely cosmetic determinism).
  for (std::int64_t f = num_frames - 1; f >= 0; --f) free_.push_back(f);
}

std::int64_t FrameTable::wire_down(std::int64_t n) {
  const std::int64_t taken = std::min<std::int64_t>(n, free_frames());
  for (std::int64_t i = 0; i < taken; ++i) {
    const FrameNum f = free_.back();
    free_.pop_back();
    frames_[static_cast<std::size_t>(f)].owner = kNoPid;
    frames_[static_cast<std::size_t>(f)].vpage = -2;  // wired marker
  }
  wired_ += taken;
  return taken;
}

std::optional<FrameNum> FrameTable::alloc(Pid owner, VPage vpage) {
  if (free_.empty()) return std::nullopt;
  const FrameNum f = free_.back();
  free_.pop_back();
  auto& fr = frames_[static_cast<std::size_t>(f)];
  fr.owner = owner;
  fr.vpage = vpage;
  return f;
}

void FrameTable::free(FrameNum frame) {
  assert(frame >= 0 && frame < total_frames());
  auto& fr = frames_[static_cast<std::size_t>(frame)];
  assert(fr.owner != kNoPid && "freeing an unowned frame");
  fr.owner = kNoPid;
  fr.vpage = -1;
  free_.push_back(frame);
}

}  // namespace apsim
