#include "mem/reclaim_registry.hpp"

#include <stdexcept>

#include "mem/reclaim_extra.hpp"
#include "mem/reclaim_gen.hpp"

namespace apsim {

const std::vector<std::string_view>& reclaim_policy_names() {
  static const std::vector<std::string_view> kNames = {
      "clock-lru", "exact-lru", "fifo", "mglru", "s3-fifo"};
  return kNames;
}

bool is_reclaim_policy(std::string_view name) {
  for (std::string_view known : reclaim_policy_names()) {
    if (name == known) return true;
  }
  return false;
}

std::string reclaim_policy_names_hint() {
  std::string hint = "valid policies are:";
  for (std::string_view known : reclaim_policy_names()) {
    hint += ' ';
    hint += known;
  }
  return hint;
}

std::unique_ptr<ReclaimPolicy> make_reclaim_policy(std::string_view name) {
  if (name == "clock-lru") return std::make_unique<ClockReclaimPolicy>();
  if (name == "exact-lru") return std::make_unique<ExactLruPolicy>();
  if (name == "fifo") return std::make_unique<FifoPolicy>();
  if (name == "mglru") return std::make_unique<MglruPolicy>();
  if (name == "s3-fifo") return std::make_unique<S3FifoPolicy>();
  throw std::invalid_argument("unknown reclaim policy '" + std::string(name) +
                              "'; " + reclaim_policy_names_hint());
}

}  // namespace apsim
