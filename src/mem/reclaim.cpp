#include "mem/reclaim.hpp"

#include <algorithm>

#include "mem/vmm.hpp"

namespace apsim {

std::vector<Victim> ClockReclaimPolicy::select_victims(Vmm& vmm,
                                                       std::int64_t max_pages) {
  std::vector<Victim> out;
  if (max_pages <= 0) return out;

  const auto& pids = vmm.pids();
  if (pids.empty()) return out;

  std::int64_t total_resident = 0;
  for (Pid pid : pids) {
    const auto& as = vmm.space(pid);
    if (as.alive()) total_resident += as.resident_pages();
  }
  if (total_resident == 0) return out;

  // Without aging: up to two full revolutions over all resident pages — the
  // first encounter with a referenced page clears its bit (second chance),
  // the second reclaims it if untouched in between. With aging (Linux 2.2
  // PG_age mode), pages need up to age_max/age_decline additional
  // encounters to age out, so the budget scales accordingly. The budget
  // counts resident-page encounters only — non-present PTEs are skipped for
  // free (bounded by the per-visit step cap below, so sparse address spaces
  // cannot spin the sweep).
  const auto& params = vmm.params();
  const std::int64_t revolutions =
      params.page_aging
          ? 2 + (params.age_max + params.age_decline - 1) /
                    std::max<std::int64_t>(1, params.age_decline)
          : 2;
  std::int64_t budget = revolutions * total_resident + 1;
  std::size_t exhausted_streak = 0;  // processes in a row with nothing to scan

  while (budget > 0 && std::ssize(out) < max_pages &&
         exhausted_streak < pids.size()) {
    const Pid pid = pids[cursor_ % pids.size()];
    auto& as = vmm.space(pid);
    if (!as.alive() || as.resident_pages() == 0) {
      ++cursor_;
      ++exhausted_streak;
      continue;
    }

    // Scan quota proportional to resident size (swap_out's swap_cnt):
    // larger processes absorb proportionally more of the sweep.
    auto& pt = as.page_table();
    std::int64_t quota =
        std::max<std::int64_t>(32, as.resident_pages() / 16);
    quota = std::min(quota, budget);
    const std::int64_t npages = pt.num_pages();
    std::int64_t steps = npages;  // at most one revolution per visit
    bool found_any = false;
    while (quota > 0 && steps > 0 && std::ssize(out) < max_pages) {
      const VPage v = pt.clock_hand();
      // Word-skip runs of non-present pages. Each skipped page still costs
      // one step (the page-at-a-time sweep visited it), so the hand lands
      // exactly where it would have — including when the step budget runs
      // out mid-run.
      const VPage np = pt.next_present(v);
      if (np != v) {
        const std::int64_t gap = (np >= npages ? npages : np) - v;
        if (gap >= steps) {
          pt.set_clock_hand((v + steps) % npages);
          steps = 0;
          break;
        }
        steps -= gap;
        pt.set_clock_hand((v + gap) % npages);
        continue;
      }
      pt.advance_clock_hand();
      --steps;
      Pte pte = pt.at(v);
      if (pte.io_busy()) continue;
      --quota;
      --budget;
      if (pte.referenced()) {
        pte.set_referenced(false);  // second chance
        if (params.page_aging) {
          pte.set_age(static_cast<std::uint8_t>(
              std::min<int>(pte.age() + params.age_advance, params.age_max)));
        }
        found_any = true;
        continue;
      }
      if (params.page_aging && pte.age() > 0) {
        pte.set_age(static_cast<std::uint8_t>(
            pte.age() > params.age_decline ? pte.age() - params.age_decline
                                           : 0));
        if (pte.age() > 0) {
          found_any = true;
          continue;  // still protected
        }
      }
      out.push_back(Victim{pid, v});
      found_any = true;
    }
    exhausted_streak = found_any ? 0 : exhausted_streak + 1;
    ++cursor_;
  }
  return out;
}

}  // namespace apsim
