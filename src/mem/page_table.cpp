#include "mem/page_table.hpp"

#include <algorithm>

namespace apsim {

namespace {
[[nodiscard]] std::size_t words_for(std::int64_t npages) {
  return static_cast<std::size_t>((npages + 63) / 64);
}
}  // namespace

PageTable::PageTable(std::int64_t num_pages) {
  auto meta = std::make_shared<Meta>();
  meta->npages = num_pages;
  const std::size_t nwords = words_for(num_pages);
  const std::size_t n = static_cast<std::size_t>(num_pages);
  meta->present.assign(nwords, 0);
  meta->referenced.assign(nwords, 0);
  meta->dirty.assign(nwords, 0);
  meta->io_busy.assign(nwords, 0);
  meta->ever_touched.assign(nwords, 0);
  meta->has_slot.assign(nwords, 0);
  meta->ws_seen.assign(nwords, 0);
  meta->evicted.assign(nwords, 0);
  meta->frame.assign(n, kNoFrame);
  meta->slot.assign(n, kNoSwapSlot);
  meta->last_ref.assign(n, 0);
  meta->age.assign(n, 0);
  meta_ = std::move(meta);
}

void PageTable::detach() {
  meta_ = std::make_shared<Meta>(*meta_);
}

std::int64_t PageTable::count_present(VPage start, std::int64_t count) const {
  const Meta& m = *meta_;
  if (count <= 0) return 0;
  if (start < 0) {
    count += start;
    start = 0;
    if (count <= 0) return 0;
  }
  const std::int64_t end = std::min<std::int64_t>(start + count, m.npages);
  if (start >= end) return 0;
  std::size_t wi = page_word(start);
  const std::size_t we = page_word(end - 1);
  std::int64_t total = 0;
  std::uint64_t w = m.present[wi] & (~std::uint64_t{0} << (start & 63));
  while (true) {
    if (wi == we) {
      const unsigned last = static_cast<unsigned>((end - 1) & 63);
      if (last != 63) w &= (std::uint64_t{1} << (last + 1)) - 1;
      total += std::popcount(w);
      return total;
    }
    total += std::popcount(w);
    w = m.present[++wi];
  }
}

void PageTable::clear_epoch_tags() {
  Meta& m = rw();
  std::fill(m.ws_seen.begin(), m.ws_seen.end(), 0);
  std::fill(m.evicted.begin(), m.evicted.end(), 0);
}

PageTable::HotRows PageTable::hot_rows() {
  Meta& m = rw();
  HotRows rows;
  rows.present = m.present.data();
  rows.referenced = m.referenced.data();
  rows.dirty = m.dirty.data();
  rows.io_busy = m.io_busy.data();
  rows.ever_touched = m.ever_touched.data();
  rows.has_slot = m.has_slot.data();
  rows.ws_seen = m.ws_seen.data();
  rows.slot = m.slot.data();
  rows.last_ref = m.last_ref.data();
  return rows;
}

}  // namespace apsim
