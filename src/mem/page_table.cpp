#include "mem/page_table.hpp"

// PageTable is header-only today; this TU anchors the library target and
// keeps a stable home for future out-of-line members.
