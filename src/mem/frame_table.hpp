#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/page.hpp"

/// \file frame_table.hpp
/// Physical-memory accounting for one node: a frame array plus a free list.
/// Frames can be wired down in bulk to emulate the paper's use of mlock() to
/// shrink usable memory and force overcommit with the NPB data sizes at hand.

namespace apsim {

class FrameTable {
 public:
  struct Frame {
    Pid owner = kNoPid;
    VPage vpage = -1;
  };

  explicit FrameTable(std::int64_t num_frames);

  [[nodiscard]] std::int64_t total_frames() const {
    return static_cast<std::int64_t>(frames_.size());
  }
  [[nodiscard]] std::int64_t free_frames() const {
    return static_cast<std::int64_t>(free_.size());
  }
  [[nodiscard]] std::int64_t wired_frames() const { return wired_; }
  /// Frames a process could ever hold (total minus wired).
  [[nodiscard]] std::int64_t usable_frames() const {
    return total_frames() - wired_;
  }
  [[nodiscard]] std::int64_t used_frames() const {
    return usable_frames() - free_frames();
  }

  /// Permanently remove \p n frames from circulation (mlock emulation).
  /// Returns the number actually wired (limited by the current free pool).
  std::int64_t wire_down(std::int64_t n);

  /// Allocate a free frame for (\p owner, \p vpage); nullopt when exhausted.
  [[nodiscard]] std::optional<FrameNum> alloc(Pid owner, VPage vpage);

  /// Return a frame to the free pool.
  void free(FrameNum frame);

  [[nodiscard]] const Frame& frame(FrameNum f) const {
    return frames_[static_cast<std::size_t>(f)];
  }

 private:
  std::vector<Frame> frames_;
  std::vector<FrameNum> free_;
  std::int64_t wired_ = 0;
};

}  // namespace apsim
