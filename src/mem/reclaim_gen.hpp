#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <utility>

#include "mem/reclaim.hpp"

/// \file reclaim_gen.hpp
/// Generational additions to the eviction zoo, selectable through the policy
/// registry (mem/reclaim_registry.hpp) so the adaptive control plane can
/// switch replacement policy as an actuator:
///
///   * MglruPolicy — MGLRU-style generational clock: every tracked page
///     carries a small generation counter; a referenced page is promoted to
///     the youngest generation, an unreferenced one ages down a generation
///     per sweep encounter and is evicted only from generation 0. Compared
///     with the one-bit second-chance clock this gives the active working
///     set several sweeps of protection while cold pages still drain fast.
///
///   * S3FifoPolicy — S3-FIFO (small/main/ghost queues): newly mapped pages
///     enter a small probationary FIFO; pages evicted from it leave a ghost
///     entry, and a page that re-enters memory while its ghost is live is
///     promoted straight to the main queue (the "one-hit wonder" filter).
///     Queue membership is rebuilt lazily against the page tables, like the
///     FIFO baseline in reclaim_extra.hpp.
///
/// Both policies keep all bookkeeping on their side of the ReclaimPolicy
/// interface and are deterministic functions of the page tables they scan.

namespace apsim {

class MglruPolicy final : public ReclaimPolicy {
 public:
  [[nodiscard]] std::vector<Victim> select_victims(Vmm& vmm,
                                                   std::int64_t max_pages) override;

  [[nodiscard]] std::string_view name() const override { return "mglru"; }

  [[nodiscard]] std::unique_ptr<ReclaimPolicy> clone() const override {
    return std::make_unique<MglruPolicy>(*this);
  }

  /// Generation a referenced page is promoted to; pages enter at kEntryGen.
  static constexpr std::uint8_t kYoungest = 3;
  static constexpr std::uint8_t kEntryGen = 1;

 private:
  struct ProcState {
    std::vector<std::uint8_t> gen;  ///< per-vpage generation (sized lazily)
    VPage hand = 0;                 ///< per-process sweep position
  };

  void prune_dead(Vmm& vmm);

  std::map<Pid, ProcState> procs_;
  std::size_t cursor_ = 0;  ///< rotating process index
};

class S3FifoPolicy final : public ReclaimPolicy {
 public:
  [[nodiscard]] std::vector<Victim> select_victims(Vmm& vmm,
                                                   std::int64_t max_pages) override;

  [[nodiscard]] std::string_view name() const override { return "s3-fifo"; }

  [[nodiscard]] std::unique_ptr<ReclaimPolicy> clone() const override {
    return std::make_unique<S3FifoPolicy>(*this);
  }

  struct Stats {
    std::uint64_t ghost_hits = 0;        ///< re-entries promoted via ghost
    std::uint64_t promotions = 0;        ///< small -> main (referenced)
    std::uint64_t small_evictions = 0;
    std::uint64_t main_evictions = 0;
    std::uint64_t reinserts = 0;         ///< main second chances
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  // Introspection for tests.
  [[nodiscard]] std::int64_t small_size() const {
    return static_cast<std::int64_t>(small_.size());
  }
  [[nodiscard]] std::int64_t main_size() const {
    return static_cast<std::int64_t>(main_.size());
  }
  [[nodiscard]] std::int64_t ghost_size() const {
    return static_cast<std::int64_t>(ghost_.size());
  }
  [[nodiscard]] bool in_main(Pid pid, VPage v) const {
    auto it = tracked_.find({pid, v});
    return it != tracked_.end() && it->second == Where::kMain;
  }
  [[nodiscard]] bool in_ghost(Pid pid, VPage v) const {
    return ghost_.contains({pid, v});
  }

 private:
  using Key = std::pair<Pid, VPage>;
  enum class Where : std::uint8_t { kSmall, kMain };

  /// Enqueue resident pages not yet tracked, routing ghost re-entries to
  /// the main queue. Deterministic scan order: pid then vpage ascending.
  void ingest(Vmm& vmm);
  void ghost_insert(const Key& key);

  std::deque<Key> small_;
  std::deque<Key> main_;
  std::map<Key, Where> tracked_;
  std::set<Key> ghost_;
  std::deque<Key> ghost_fifo_;  ///< ghost eviction order (capacity-bounded)
  Stats stats_;
};

}  // namespace apsim
