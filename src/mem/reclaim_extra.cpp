#include "mem/reclaim_extra.hpp"

#include <algorithm>

#include "mem/vmm.hpp"

namespace apsim {

std::vector<Victim> ExactLruPolicy::select_victims(Vmm& vmm,
                                                   std::int64_t max_pages) {
  std::vector<Victim> out;
  if (max_pages <= 0) return out;

  // Gather all evictable pages with their last-reference times and take the
  // oldest max_pages. Exactness over efficiency: this is a reference model.
  std::vector<std::pair<SimTime, Victim>> candidates;
  for (Pid pid : vmm.pids()) {
    const auto& as = vmm.space(pid);
    if (!as.alive() || as.resident_pages() == 0) continue;
    const auto& pt = as.page_table();
    const std::int64_t npages = pt.num_pages();
    for (VPage v = pt.next_present(0); v < npages; v = pt.next_present(v + 1)) {
      const auto pte = pt.at(v);
      if (!pte.io_busy()) {
        candidates.emplace_back(pte.last_ref(), Victim{pid, v});
      }
    }
  }
  const auto take = std::min<std::size_t>(
      candidates.size(), static_cast<std::size_t>(max_pages));
  std::partial_sort(candidates.begin(),
                    candidates.begin() + static_cast<std::ptrdiff_t>(take),
                    candidates.end(), [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first < b.first;
                      if (a.second.pid != b.second.pid) {
                        return a.second.pid < b.second.pid;
                      }
                      return a.second.vpage < b.second.vpage;
                    });
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) out.push_back(candidates[i].second);
  return out;
}

void FifoPolicy::refill(Vmm& vmm) {
  // Rebuild the queue ordered by first-mapped approximation: we do not
  // track map-in time separately, so use last_ref of never-re-referenced
  // pages and vpage order otherwise. For FIFO's purpose (a reference-blind
  // baseline) ordering by (last_ref, vpage) of the current resident set is
  // adequate and deterministic.
  queue_.clear();
  cursor_ = 0;
  std::vector<std::pair<SimTime, Victim>> candidates;
  for (Pid pid : vmm.pids()) {
    const auto& as = vmm.space(pid);
    if (!as.alive() || as.resident_pages() == 0) continue;
    const auto& pt = as.page_table();
    const std::int64_t npages = pt.num_pages();
    for (VPage v = pt.next_present(0); v < npages; v = pt.next_present(v + 1)) {
      const auto pte = pt.at(v);
      if (!pte.io_busy()) {
        candidates.emplace_back(pte.last_ref(), Victim{pid, v});
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              if (a.second.pid != b.second.pid) {
                return a.second.pid < b.second.pid;
              }
              return a.second.vpage < b.second.vpage;
            });
  queue_.reserve(candidates.size());
  for (auto& [t, victim] : candidates) queue_.push_back(victim);
}

std::vector<Victim> FifoPolicy::select_victims(Vmm& vmm,
                                               std::int64_t max_pages) {
  std::vector<Victim> out;
  if (max_pages <= 0) return out;
  for (int attempt = 0; attempt < 2 && out.empty(); ++attempt) {
    while (cursor_ < queue_.size() && std::ssize(out) < max_pages) {
      const Victim victim = queue_[cursor_++];
      const auto& as = vmm.space(victim.pid);
      if (!as.alive()) continue;
      const auto pte = as.page_table().at(victim.vpage);
      if (pte.present() && !pte.io_busy()) out.push_back(victim);
    }
    if (out.empty() && cursor_ >= queue_.size()) refill(vmm);
  }
  return out;
}

}  // namespace apsim
