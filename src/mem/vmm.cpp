#include "mem/vmm.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <utility>

#include "tier/tier_manager.hpp"

namespace apsim {

Vmm::Vmm(Simulator& sim, SwapDevice& swap, VmmParams params)
    : sim_(sim), swap_(swap), params_(params), frames_(params.total_frames),
      log_("vmm", &sim, &Vmm::clock_thunk, LogLevel::kWarn),
      policy_(std::make_unique<ClockReclaimPolicy>()) {
  assert(params_.freepages_min <= params_.freepages_low);
  assert(params_.freepages_low <= params_.freepages_high);
  assert(params_.page_cluster >= 1);
}

void Vmm::swap_read(SlotRun run, IoPriority priority, IoCallback on_complete) {
  if (tier_ != nullptr) {
    tier_->read(run, priority, std::move(on_complete));
  } else {
    swap_.read(run, priority, std::move(on_complete));
  }
}

void Vmm::swap_write(SlotRun run, IoPriority priority, IoCallback on_complete) {
  if (tier_ != nullptr) {
    tier_->write(run, priority, std::move(on_complete));
  } else {
    swap_.write(run, priority, std::move(on_complete));
  }
}

// ---------------------------------------------------------------------------
// Process lifecycle

Pid Vmm::create_process(std::int64_t num_pages) {
  assert(num_pages > 0);
  const Pid pid = next_pid_++;
  spaces_.emplace(pid, std::make_unique<AddressSpace>(pid, num_pages));
  pids_.push_back(pid);
  return pid;
}

void Vmm::release_process(Pid pid) {
  auto& as = space(pid);
  as.alive_ = false;
  as.drop_watches();  // the residency cache dies with the process
  auto& pt = as.page_table();
  // Only live pages (present or holding a swap copy) need teardown work;
  // every in-flight page is live too (a read keeps its slot, a write keeps
  // the page mapped), so the word scan visits everything the full walk did.
  const std::int64_t npages = pt.num_pages();
  for (VPage v = pt.next_live(0); v < npages; v = pt.next_live(v + 1)) {
    Pte pte = pt.at(v);
    if (pte.io_busy()) continue;  // reaped by the I/O completion handler
    if (pte.present()) {
      frames_.free(pte.frame());
      pte.set_frame(kNoFrame);
      pte.set_present(false);
      --as.resident_;
      if (pte.dirty()) {
        pte.set_dirty(false);
        --as.dirty_resident_;
      }
    }
    if (pte.slot() != kNoSwapSlot) {
      swap_.free_slot(pte.slot());
      pte.set_slot(kNoSwapSlot);
    }
  }
  // Freed frames and slots are reclaim progress: clear any stall.
  reclaim_stalled_ = false;
  write_failure_streak_ = 0;
  std::erase_if(stalled_retry_counts_,
                [pid](const auto& kv) { return kv.first.first == pid; });
  kick_reclaim();  // freed frames may satisfy waiters
}

AddressSpace& Vmm::space(Pid pid) {
  auto it = spaces_.find(pid);
  assert(it != spaces_.end() && "unknown pid");
  return *it->second;
}

const AddressSpace& Vmm::space(Pid pid) const {
  auto it = spaces_.find(pid);
  assert(it != spaces_.end() && "unknown pid");
  return *it->second;
}

// ---------------------------------------------------------------------------
// Hot path

bool Vmm::touch(Pid pid, VPage vpage, bool write) {
  return touch(space(pid), vpage, write);
}

bool Vmm::touch(AddressSpace& as, VPage vpage, bool write) {
  assert(as.page_table().valid(vpage));
  Pte pte = as.page_table().at(vpage);
  if (!pte.present()) return false;
  touch_resident(as, pte, write);
  return true;
}

void Vmm::touch_resident(AddressSpace& as, Pte pte, bool write) {
  pte.set_referenced(true);
  pte.set_last_ref(sim_.now());
  if (!pte.ws_seen()) {
    pte.set_ws_seen();
    ++as.ws_pages_;
  }
  if (write && !pte.dirty()) {
    pte.set_dirty(true);
    ++as.dirty_resident_;
    // The swap copy (if any) is now stale. With I/O in flight the completion
    // handler performs the invalidation instead.
    if (!pte.io_busy() && pte.slot() != kNoSwapSlot) {
      swap_.free_slot(pte.slot());
      pte.set_slot(kNoSwapSlot);
    }
  }
}

bool Vmm::region_fully_resident(AddressSpace& as, VPage start,
                                std::int64_t pages) {
  if (pages <= 0) return true;
  assert(as.page_table().valid(start) &&
         as.page_table().valid(start + pages - 1));
  // O(1) outs before consulting (or building) a watch.
  if (as.resident_ >= as.num_pages()) return true;  // whole space resident
  if (as.resident_ < pages) return false;           // cannot possibly cover it
  for (const auto& w : as.watched_) {
    if (w.active && w.start == start && w.pages == pages) {
      return w.nonresident == 0;
    }
  }
  // First query for this region: register a watch (round-robin slot) with
  // one popcount pass over the present bitmap. From here on the unmap hooks
  // keep the count exact.
  auto& w = as.watched_[as.watch_cursor_];
  as.watch_cursor_ = (as.watch_cursor_ + 1) % AddressSpace::kWatchedRegions;
  w.active = true;
  w.start = start;
  w.pages = pages;
  w.nonresident = pages - as.page_table().count_present(start, pages);
  return w.nonresident == 0;
}

Vmm::TouchRun Vmm::touch_run(AddressSpace& as, const TouchPlan& plan,
                             std::int64_t begin, std::int64_t budget) {
  TouchRun out;
  if (budget <= 0) return out;

  // Closed-form fast-forward: a sequential or (non-negative) strided walk
  // over a fully-resident region revisits pages with period
  // region_pages / gcd(step, region_pages). All touches of a run share one
  // simulated instant, so re-touching a page is a no-op: applying the
  // effects once per distinct page — in first-touch order, which preserves
  // the order of stale swap-slot frees — is bit-identical to the scalar
  // loop, and no fault can interrupt a fully-resident run.
  if ((plan.pattern == TouchPattern::kSequential ||
       plan.pattern == TouchPattern::kStrided) &&
      plan.stride >= 0 &&
      region_fully_resident(as, plan.region_start, plan.region_pages)) {
    const std::int64_t rp = plan.region_pages;
    const std::int64_t step =
        plan.pattern == TouchPattern::kSequential ? 1 : plan.stride % rp;
    const std::int64_t period = step == 0 ? 1 : rp / std::gcd(step, rp);
    const std::int64_t distinct = std::min(budget, period);
    // Walk the orbit incrementally — idx is page_at(begin + k) - region_start
    // ((begin + k) * stride mod rp, reduced factor-wise so the products stay
    // in range), advanced by one add and a conditional subtract per touch
    // instead of a divide.
    std::int64_t idx =
        plan.pattern == TouchPattern::kSequential
            ? begin % rp
            : ((begin % rp) * step) % rp;
    // Raw bitmap rows, hoisted out of the loop: the simulated instant and
    // the write flag are loop invariants, and per-page effects compile down
    // to single bit ops against these rows instead of accessor calls the
    // compiler cannot hoist through the stores.
    const PageTable::HotRows rows = as.page_table().hot_rows();
    const SimTime now = sim_.now();
    const bool write = plan.write;
    std::int64_t ws_new = 0;
    for (std::int64_t k = 0; k < distinct; ++k) {
      const VPage v = plan.region_start + idx;
      const std::size_t w = page_word(v);
      const std::uint64_t bit = page_bit(v);
      rows.referenced[w] |= bit;
      rows.last_ref[v] = now;
      if ((rows.ws_seen[w] & bit) == 0) {
        rows.ws_seen[w] |= bit;
        ++ws_new;
      }
      if (write && (rows.dirty[w] & bit) == 0) {
        rows.dirty[w] |= bit;
        ++as.dirty_resident_;
        // Stale swap copy: same invalidation rule as touch_resident.
        if ((rows.io_busy[w] & bit) == 0 && (rows.has_slot[w] & bit) != 0) {
          swap_.free_slot(rows.slot[v]);
          rows.slot[v] = kNoSwapSlot;
          rows.has_slot[w] &= ~bit;
        }
      }
      idx += step;
      if (idx >= rp) idx -= rp;
    }
    as.ws_pages_ += ws_new;
    out.consumed = budget;
    return out;
  }

  // Generic batch loop: one virtual call and one page_at per touch, but no
  // per-touch round trip through the caller.
  auto& pt = as.page_table();
  for (std::int64_t k = 0; k < budget; ++k) {
    const VPage v = plan.page_at(begin + k);
    Pte pte = pt.at(v);
    if (!pte.present()) {
      out.faulted = true;
      out.fault_page = v;
      out.consumed = k;
      return out;
    }
    touch_resident(as, pte, plan.write);
  }
  out.consumed = budget;
  return out;
}

void Vmm::begin_ws_epoch(Pid pid) {
  auto& as = space(pid);
  as.page_table().clear_epoch_tags();
  as.ws_pages_ = 0;
}

// ---------------------------------------------------------------------------
// Checkpoint/restart support

Vmm::ImageSnapshot Vmm::snapshot_image(Pid pid) const {
  const auto& as = space(pid);
  const auto& pt = as.page_table();
  ImageSnapshot snap;
  snap.dirty_pages = as.dirty_pages();
  const std::int64_t npages = pt.num_pages();
  for (VPage v = pt.next_live(0); v < npages; v = pt.next_live(v + 1)) {
    ++snap.live_pages;
    if (!snap.live.empty() &&
        snap.live.back().start + snap.live.back().count == v) {
      ++snap.live.back().count;
    } else {
      snap.live.push_back({v, 1});
    }
  }
  return snap;
}

void Vmm::bind_swap_image(Pid pid, const std::vector<PageRun>& pages,
                          const std::vector<SlotRun>& slots) {
  auto& as = space(pid);
  assert(as.alive_);
  assert(as.resident_ == 0 && "bind_swap_image expects a fresh space");
  auto& pt = as.page_table();
  auto slot_it = slots.begin();
  std::int64_t slot_off = 0;
  for (const PageRun& run : pages) {
    for (std::int64_t i = 0; i < run.count; ++i) {
      assert(slot_it != slots.end());
      Pte pte = pt.at(run.start + i);
      assert(pte.slot() == kNoSwapSlot && !pte.present());
      pte.set_slot(slot_it->start + slot_off);
      pte.set_ever_touched(true);
      if (++slot_off == slot_it->count) {
        ++slot_it;
        slot_off = 0;
      }
    }
  }
  assert(slot_it == slots.end() && slot_off == 0 &&
         "page/slot run totals must match");
}

// ---------------------------------------------------------------------------
// Copy-on-write memory snapshots

MemSnapshot Vmm::capture_snapshot() const {
  // Only an I/O-quiet instant can be captured: an in-flight transfer holds a
  // callback into this Vmm that a restored stack could never re-create.
  assert(waiters_.empty() && evictions_in_flight_ == 0 && io_waiters_.empty() &&
         stalled_retry_counts_.empty() && "capture requires quiescence");
  MemSnapshot snap;
  snap.spaces.reserve(spaces_.size());
  for (const auto& [pid, as] : spaces_) {
    const PageTable& pt = as->pt_;
#ifndef NDEBUG
    for (std::uint64_t w : pt.ro().io_busy) assert(w == 0);
#endif
    MemSnapshot::SpaceImage image;
    image.pid = pid;
    image.meta = pt.share_meta();
    image.clock_hand = pt.clock_hand();
    image.resident = as->resident_;
    image.dirty_resident = as->dirty_resident_;
    image.ws_pages = as->ws_pages_;
    image.writeback_hand = as->writeback_hand_;
    image.alive = as->alive_;
    image.stats = as->stats_;
    snap.spaces.push_back(std::move(image));
  }
  snap.next_pid = next_pid_;
  snap.frames = frames_;
  snap.swap = swap_.capture_alloc();
  snap.policy = policy_->clone();
  assert(snap.policy && "snapshots need a clonable reclaim policy");
  snap.params = params_;
  snap.stats = stats_;
  snap.reclaim_stalled = reclaim_stalled_;
  snap.write_failure_streak = write_failure_streak_;
  snap.release_warnings = release_warnings_;
  snap.pagein = pagein_series_;
  snap.pageout = pageout_series_;
  snap.when = sim_.now();
  snap.disk_head = swap_.disk().head();
  snap.disk_stats = swap_.disk().stats();
  return snap;
}

void Vmm::restore_snapshot(const MemSnapshot& snap) {
  assert(waiters_.empty() && evictions_in_flight_ == 0 && io_waiters_.empty() &&
         "restore requires a quiescent target");
  assert(frames_.total_frames() == snap.frames.total_frames());
  spaces_.clear();
  pids_.clear();
  pids_.reserve(snap.spaces.size());
  for (const MemSnapshot::SpaceImage& image : snap.spaces) {
    // The AddressSpace constructor allocates a fresh metadata block;
    // adopt_meta immediately replaces it with the image's shared one, so
    // the restored table starts copy-on-write against the snapshot.
    auto as = std::make_unique<AddressSpace>(image.pid, image.meta->npages);
    PageTable& pt = as->pt_;
    pt.adopt_meta(image.meta);
    pt.set_clock_hand(image.clock_hand);
    as->resident_ = image.resident;
    as->dirty_resident_ = image.dirty_resident;
    as->ws_pages_ = image.ws_pages;
    as->writeback_hand_ = image.writeback_hand;
    as->alive_ = image.alive;
    as->stats_ = image.stats;
    pids_.push_back(image.pid);
    spaces_.emplace(image.pid, std::move(as));
  }
  next_pid_ = snap.next_pid;
  frames_ = snap.frames;
  swap_.restore_alloc(snap.swap);
  policy_ = snap.policy->clone();
  params_ = snap.params;
  stats_ = snap.stats;
  reclaim_stalled_ = snap.reclaim_stalled;
  write_failure_streak_ = snap.write_failure_streak;
  release_warnings_ = snap.release_warnings;
  pagein_series_ = snap.pagein;
  pageout_series_ = snap.pageout;
  reclaim_scheduled_ = false;
  swap_.disk().set_head(snap.disk_head);
  swap_.disk().set_stats(snap.disk_stats);
}

// ---------------------------------------------------------------------------
// Faults

void Vmm::fault(Pid pid, VPage vpage, bool write, std::function<void()> resume) {
  fault_impl(pid, vpage, write, std::move(resume), /*skip_watermark=*/false);
}

void Vmm::fault_impl(Pid pid, VPage vpage, bool write,
                     std::function<void()> resume, bool skip_watermark) {
  auto& as = space(pid);
  assert(as.page_table().valid(vpage));
  if (!as.alive_) return;  // process was killed while the fault was pending
  Pte pte = as.page_table().at(vpage);

  if (pte.present()) {
    // Raced with a prefetch or read-ahead that mapped the page meanwhile.
    (void)touch(as, vpage, write);
    sim_.after(0, std::move(resume));
    return;
  }
  if (pte.io_busy()) {
    // Page-in already in flight (read-ahead, prefetch, or another waiter):
    // piggyback instead of issuing new I/O.
    add_io_waiter(pid, vpage, [this, pid, vpage, write,
                               resume = std::move(resume)]() mutable {
      (void)touch(pid, vpage, write);
      resume();
    });
    return;
  }

  // Watermark check: below freepages.min the faulting task synchronously
  // frees memory up to freepages.high before proceeding (Linux 2.2
  // try_to_free_pages semantics; the paper's Figure 2 shows the same loop).
  // The retry after reclaim skips the check so an out-of-memory release
  // cannot spin at one instant of simulated time.
  if (!skip_watermark && frames_.free_frames() < params_.freepages_min) {
    request_free_frames(params_.freepages_high,
                        [this, pid, vpage, write,
                         resume = std::move(resume)]() mutable {
                          fault_impl(pid, vpage, write, std::move(resume),
                                     /*skip_watermark=*/true);
                        });
    return;
  }

  if (pte.slot() != kNoSwapSlot) {
    start_major_fault(pid, vpage, write, std::move(resume));
  } else {
    finish_minor_fault(pid, vpage, write, std::move(resume));
  }
}

void Vmm::retry_fault_later(Pid pid, VPage vpage, bool write,
                            std::function<void()> resume) {
  if (reclaim_stalled_) {
    // Reclaim cannot help this fault. Count the consecutive stalled retries
    // and abandon past the cap instead of spinning for the whole horizon —
    // this is the diagnosable out-of-swap outcome.
    int& count = stalled_retry_counts_[{pid, vpage}];
    if (++count > params_.stalled_fault_retry_limit) {
      stalled_retry_counts_.erase({pid, vpage});
      declare_unrecoverable(pid, vpage, PageFailure::kOutOfSwap);
      return;  // resume dropped: the process stays blocked (handler kills it)
    }
  } else if (!stalled_retry_counts_.empty()) {
    stalled_retry_counts_.erase({pid, vpage});
  }
  ++stats_.alloc_retries;
  kick_reclaim();
  sim_.after(kMillisecond, [this, pid, vpage, write,
                            resume = std::move(resume)]() mutable {
    fault_impl(pid, vpage, write, std::move(resume), /*skip_watermark=*/false);
  });
}

void Vmm::finish_minor_fault(Pid pid, VPage vpage, bool write,
                             std::function<void()> resume) {
  auto& as = space(pid);
  Pte pte = as.page_table().at(vpage);
  auto frame = frames_.alloc(pid, vpage);
  if (!frame) {
    retry_fault_later(pid, vpage, write, std::move(resume));
    return;
  }
  // Anonymous zero-fill: the page has no backing store, so it is born dirty.
  pte.set_frame(*frame);
  pte.set_present(true);
  pte.set_referenced(true);
  pte.set_dirty(true);
  pte.set_ever_touched(true);
  pte.set_age(params_.age_initial);
  pte.set_last_ref(sim_.now());
  if (!pte.ws_seen()) {
    pte.set_ws_seen();
    ++as.ws_pages_;
  }
  ++as.resident_;
  as.note_mapped(vpage);
  ++as.dirty_resident_;
  ++as.stats_.minor_faults;
  if (tracer_ != nullptr) {
    tracer_->instant(trace_track_, "vmm", "minor_fault",
                     {{"pid", static_cast<double>(pid)},
                      {"vpage", static_cast<double>(vpage)}});
  }
  if (frames_.free_frames() < params_.freepages_low) kick_reclaim();
  sim_.after(params_.minor_fault_cost, std::move(resume));
}

void Vmm::start_major_fault(Pid pid, VPage vpage, bool write,
                            std::function<void()> resume) {
  auto& as = space(pid);
  auto& pt = as.page_table();
  Pte base = pt.at(vpage);
  assert(base.slot() != kNoSwapSlot && !base.present() && !base.io_busy());

  const auto frame0 = frames_.alloc(pid, vpage);
  if (!frame0) {
    retry_fault_later(pid, vpage, write, std::move(resume));
    return;
  }
  ++as.stats_.major_faults;
  if (base.evicted_this_epoch()) ++as.stats_.false_evictions;
  base.set_frame(*frame0);
  base.set_io_busy(true);

  // Swap read-ahead: extend the read over neighbouring virtual pages whose
  // swap slots are exactly consecutive with ours (forward first, then
  // backward), up to page_cluster pages, frames permitting.
  VPage lo = vpage;
  VPage hi = vpage;
  const SwapSlot s0 = base.slot();
  auto eligible = [&](VPage v) {
    if (!pt.valid(v)) return false;
    const Pte p = pt.at(v);
    return !p.present() && !p.io_busy() && p.slot() == s0 + (v - vpage);
  };
  while (hi - lo + 1 < params_.page_cluster && eligible(hi + 1)) {
    const auto f = frames_.alloc(pid, hi + 1);
    if (!f) break;
    Pte p = pt.at(hi + 1);
    p.set_frame(*f);
    p.set_io_busy(true);
    ++hi;
  }
  while (hi - lo + 1 < params_.page_cluster && eligible(lo - 1)) {
    const auto f = frames_.alloc(pid, lo - 1);
    if (!f) break;
    Pte p = pt.at(lo - 1);
    p.set_frame(*f);
    p.set_io_busy(true);
    --lo;
  }

  const std::int64_t count = hi - lo + 1;
  if (tracer_ != nullptr) {
    tracer_->instant(trace_track_, "vmm", "major_fault",
                     {{"pid", static_cast<double>(pid)},
                      {"vpage", static_cast<double>(vpage)},
                      {"cluster", static_cast<double>(count)}});
  }
  if (frames_.free_frames() < params_.freepages_low) kick_reclaim();

  issue_major_read(pid, lo, count, vpage, write, std::move(resume),
                   /*attempt=*/0);
}

void Vmm::issue_major_read(Pid pid, VPage lo, std::int64_t count, VPage vpage,
                           bool write, std::function<void()> resume,
                           int attempt) {
  auto& as = space(pid);
  auto& pt = as.page_table();

  // Reap path shared by "owner died while waiting" and "retries exhausted":
  // release the reserved frames; a live owner keeps the swap slots (the data
  // is still on disk, a later demand fault may succeed once the fault
  // condition clears), a dead one gives them back.
  auto abandon = [this, pid, lo, count](AddressSpace& as2) {
    auto& pt2 = as2.page_table();
    for (VPage v = lo; v < lo + count; ++v) {
      Pte p = pt2.at(v);
      assert(p.io_busy() && !p.present());
      p.set_io_busy(false);
      frames_.free(p.frame());
      p.set_frame(kNoFrame);
      if (!as2.alive_ && p.slot() != kNoSwapSlot) {
        swap_.free_slot(p.slot());
        p.set_slot(kNoSwapSlot);
      }
      drop_io_waiters(pid, v);
    }
    kick_reclaim();
  };

  if (!as.alive_) {
    abandon(as);
    return;
  }

  const SlotRun run{pt.at(lo).slot(), count};
  swap_read(
      run, IoPriority::kForeground,
      [this, pid, lo, count, vpage, write, resume = std::move(resume), attempt,
       abandon](IoResult result) mutable {
        auto& as2 = space(pid);
        auto& pt2 = as2.page_table();
        if (!result.ok) {
          ++stats_.io_read_failures;
          if (as2.alive_ && attempt < params_.io_retry_limit &&
              !swap_.disk().failed()) {
            // Transient error: retry the whole read with capped exponential
            // backoff. The frames stay reserved (io_busy), so concurrent
            // faults keep piggybacking on this read.
            ++stats_.io_retries;
            if (tracer_ != nullptr) {
              tracer_->instant(trace_track_, "vmm", "io_retry",
                               {{"attempt", static_cast<double>(attempt + 1)},
                                {"pages", static_cast<double>(count)}});
            }
            const SimDuration backoff =
                std::min(params_.io_retry_cap,
                         params_.io_retry_base << std::min(attempt, 30));
            sim_.after(backoff, [this, pid, lo, count, vpage, write,
                                 resume = std::move(resume),
                                 attempt]() mutable {
              issue_major_read(pid, lo, count, vpage, write, std::move(resume),
                               attempt + 1);
            });
            return;
          }
          abandon(as2);
          if (as2.alive_) {
            ++stats_.pages_unrecoverable;
            log_.error("swap read for pid %d page %lld failed %d time(s); "
                       "declaring unrecoverable",
                       static_cast<int>(pid), static_cast<long long>(vpage),
                       attempt + 1);
            declare_unrecoverable(pid, vpage, PageFailure::kIoError);
          }
          return;
        }
        for (VPage v = lo; v < lo + count; ++v) {
          Pte p = pt2.at(v);
          assert(p.io_busy() && !p.present());
          p.set_io_busy(false);
          if (!as2.alive_) {
            frames_.free(p.frame());
            p.set_frame(kNoFrame);
            if (p.slot() != kNoSwapSlot) {
              swap_.free_slot(p.slot());
              p.set_slot(kNoSwapSlot);
            }
            continue;
          }
          p.set_present(true);
          // Only the faulting page counts as referenced; read-ahead
          // pages age out if they go unused (Linux behaviour).
          p.set_referenced(v == vpage);
          p.set_age(params_.age_initial);
          p.set_last_ref(sim_.now());
          ++as2.resident_;
          as2.note_mapped(v);
          if (!stalled_retry_counts_.empty()) {
            stalled_retry_counts_.erase({pid, v});
          }
          fire_io_waiters(pid, v);
        }
        if (!as2.alive_) return;
        account_pagein(count, as2);
        (void)touch(as2, vpage, write);
        if (resume) sim_.after(params_.major_fault_cpu, std::move(resume));
      });
}

void Vmm::drop_io_waiters(Pid pid, VPage vpage) {
  if (io_waiters_.empty()) return;
  auto it = io_waiters_.find({pid, vpage});
  if (it == io_waiters_.end()) return;
  auto waiters = std::move(it->second);
  io_waiters_.erase(it);
  recycle_waiter_list(std::move(waiters));
}

void Vmm::declare_unrecoverable(Pid pid, VPage vpage, PageFailure failure) {
  if (tracer_ != nullptr) {
    tracer_->instant(trace_track_, "vmm", "unrecoverable",
                     {{"pid", static_cast<double>(pid)},
                      {"vpage", static_cast<double>(vpage)},
                      {"out_of_swap",
                       failure == PageFailure::kOutOfSwap ? 1.0 : 0.0}});
  }
  if (failure == PageFailure::kOutOfSwap) {
    ++stats_.out_of_swap_faults;
    log_.error("fault for pid %d page %lld cannot be served: reclaim stalled "
               "(out of swap space); abandoning",
               static_cast<int>(pid), static_cast<long long>(vpage));
  }
  if (failure_handler_) {
    // Via an event: the handler typically kills the job (release_process),
    // which must not run inside I/O completion or reclaim iteration.
    sim_.after(0, [this, pid, vpage, failure] {
      if (failure_handler_) failure_handler_(pid, vpage, failure);
    });
  }
}

void Vmm::add_io_waiter(Pid pid, VPage vpage, std::function<void()> resume) {
  auto& list = io_waiters_[{pid, vpage}];
  if (list.capacity() == 0 && !spare_waiter_lists_.empty()) {
    // Reuse the capacity of a previously fired waiter list instead of
    // growing a fresh vector for every piggybacked fault.
    list = std::move(spare_waiter_lists_.back());
    spare_waiter_lists_.pop_back();
  }
  list.push_back(std::move(resume));
}

void Vmm::recycle_waiter_list(std::vector<std::function<void()>>&& list) {
  if (spare_waiter_lists_.size() >= kMaxSpareWaiterLists) return;
  list.clear();
  spare_waiter_lists_.push_back(std::move(list));
}

void Vmm::fire_io_waiters(Pid pid, VPage vpage) {
  if (io_waiters_.empty()) return;  // the common page-in: nobody piggybacked
  auto it = io_waiters_.find({pid, vpage});
  if (it == io_waiters_.end()) return;
  auto waiters = std::move(it->second);
  io_waiters_.erase(it);
  for (auto& fn : waiters) sim_.after(0, std::move(fn));
  recycle_waiter_list(std::move(waiters));
}

// ---------------------------------------------------------------------------
// Reclaim

void Vmm::set_reclaim_policy(std::unique_ptr<ReclaimPolicy> policy) {
  assert(policy != nullptr);
  policy_ = std::move(policy);
}

void Vmm::request_free_frames(std::int64_t target_free,
                              std::function<void()> done, bool best_effort,
                              std::function<bool()> give_up) {
  if (frames_.free_frames() >= target_free) {
    sim_.after(0, std::move(done));
    return;
  }
  waiters_.push_back(Waiter{target_free, std::move(done), best_effort,
                            std::move(give_up), TraceSpan{}});
  if (tracer_ != nullptr) {
    // Async span ending when the waiter is released (its destructor runs):
    // the visible width is exactly how long the request blocked.
    waiters_.back().span = tracer_->async_span(
        trace_track_, "vmm", "request_free_frames",
        {{"target", static_cast<double>(target_free)},
         {"free", static_cast<double>(frames_.free_frames())},
         {"best_effort", best_effort ? 1.0 : 0.0}});
  }
  kick_reclaim();
}

void Vmm::kick_reclaim() {
  if (reclaim_scheduled_) return;
  reclaim_scheduled_ = true;
  sim_.after(0, [this] {
    reclaim_scheduled_ = false;
    reclaim_step();
  });
}

void Vmm::check_waiters() {
  // In-place compaction, preserving order: reclaim runs this every step, so
  // it must not allocate a scratch vector per invocation. Released waiters
  // are overwritten (or destroyed by the resize), which ends their trace
  // spans exactly as the old copy-out did.
  const std::int64_t free = frames_.free_frames();
  std::size_t kept = 0;
  for (std::size_t i = 0; i < waiters_.size(); ++i) {
    Waiter& w = waiters_[i];
    if (free >= w.target || (w.give_up && w.give_up())) {
      sim_.after(0, std::move(w.done));
    } else {
      if (kept != i) waiters_[kept] = std::move(w);
      ++kept;
    }
  }
  waiters_.resize(kept);
}

void Vmm::reclaim_step() {
  ++stats_.reclaim_steps;
  check_waiters();

  std::int64_t goal = 0;
  for (const auto& w : waiters_) goal = std::max(goal, w.target);
  // A stalled reclaimer drops the kswapd goal (its evictions cannot complete)
  // but demand waiters keep probing so a transient window recovers.
  if (!reclaim_stalled_ && frames_.free_frames() < params_.freepages_low) {
    goal = std::max(goal, params_.freepages_high);  // kswapd target
  }
  if (goal == 0) return;

  const std::int64_t projected = frames_.free_frames() + evictions_in_flight_;
  const std::int64_t deficit = goal - projected;
  if (deficit <= 0) return;  // in-flight write-outs will cover it

  auto victims = policy_->select_victims(
      *this, std::min(deficit, params_.reclaim_batch));
  if (victims.empty()) {
    if (evictions_in_flight_ == 0 && !waiters_.empty()) {
      // Nothing evictable and nothing in flight: release the waiters rather
      // than deadlock. Strict waiters reaching this indicate real memory
      // exhaustion; best-effort ones (aggressive page-out) are routine.
      std::size_t strict = 0;
      for (const auto& w : waiters_) {
        if (!w.best_effort) ++strict;
      }
      if (strict > 0) {
        stats_.oom_waiter_releases += strict;
        warn_release_rate_limited("reclaim found no victims");
      }
      for (auto& w : waiters_) sim_.after(0, std::move(w.done));
      waiters_.clear();
    }
    return;
  }
  const std::int64_t in_flight_before = evictions_in_flight_;
  const std::int64_t freed_now = evict_batch(victims, IoPriority::kForeground);
  if (freed_now == 0 && evictions_in_flight_ == in_flight_before) {
    // No progress despite victims — e.g. the swap device is full. Treat it
    // like memory exhaustion rather than spinning at this instant.
    if (evictions_in_flight_ == 0) {
      reclaim_stalled_ = true;  // starts the stalled-fault countdown
      if (!waiters_.empty()) {
        std::size_t strict = 0;
        for (const auto& w : waiters_) {
          if (!w.best_effort) ++strict;
        }
        if (strict > 0) {
          stats_.oom_waiter_releases += strict;
          warn_release_rate_limited("reclaim cannot make progress");
        }
        for (auto& w : waiters_) sim_.after(0, std::move(w.done));
        waiters_.clear();
      }
    }
    return;
  }
  kick_reclaim();  // keep going until the goal is met
}

void Vmm::warn_release_rate_limited(const char* reason) {
  // Sustained exhaustion can release waiters thousands of times; log the
  // first few occurrences and then only milestones, never a flood.
  ++release_warnings_;
  if (release_warnings_ <= 5 || release_warnings_ % 100000 == 0) {
    log_.warn("%s; releasing waiter(s) early (occurrence %llu)", reason,
              static_cast<unsigned long long>(release_warnings_));
  }
}

void Vmm::note_evicted(Pid pid, VPage vpage) {
  if (evict_observer_) evict_observer_(pid, vpage);
}

std::int64_t Vmm::evict_batch(std::span<const Victim> victims,
                              IoPriority priority) {
  std::int64_t freed_now = 0;

  // Pass 1: clean pages with a valid swap copy are dropped instantly; dirty
  // pages are reserved (io_busy) so duplicate victim entries are harmless
  // and collected for a batched write-out in pass 2. The scratch buffer is a
  // member so steady-state reclaim reuses its capacity instead of
  // allocating per step.
  std::vector<Victim>& writes = write_scratch_;
  writes.clear();
  writes.reserve(victims.size());
  for (const Victim& victim : victims) {
    auto& as = space(victim.pid);
    Pte pte = as.page_table().at(victim.vpage);
    if (!pte.present() || pte.io_busy()) continue;  // duplicate or raced
    if (pte.clean_drop_ok()) {
      pte.set_present(false);
      pte.set_referenced(false);
      pte.set_evicted_this_epoch();
      frames_.free(pte.frame());
      pte.set_frame(kNoFrame);
      --as.resident_;
      as.note_unmapped(victim.vpage);
      ++as.stats_.pages_clean_dropped;
      ++freed_now;
      note_evicted(victim.pid, victim.vpage);
    } else {
      pte.set_io_busy(true);  // reserve
      writes.push_back(victim);
    }
  }

  // Pass 2: group write victims into maximal vpage-contiguous groups per
  // process, then cover each group with contiguous swap-slot runs so that
  // the disk sees streaming writes and future page-ins can cluster.
  std::size_t i = 0;
  while (i < writes.size()) {
    std::size_t j = i + 1;
    while (j < writes.size() && writes[j].pid == writes[i].pid &&
           writes[j].vpage == writes[j - 1].vpage + 1) {
      ++j;
    }
    const Pid pid = writes[i].pid;
    auto& as = space(pid);
    auto& pt = as.page_table();
    std::int64_t remaining = static_cast<std::int64_t>(j - i);
    VPage v = writes[i].vpage;
    while (remaining > 0) {
      auto run = swap_.alloc_run(std::min(remaining, params_.max_writeout_run));
      if (!run) {
        log_.error("swap device full; cannot evict %lld page(s)",
                   static_cast<long long>(remaining));
        // Un-reserve the pages we could not place.
        for (std::int64_t k = 0; k < remaining; ++k) {
          pt.at(v + k).set_io_busy(false);
        }
        break;
      }
      const VPage run_begin = v;
      for (std::int64_t k = 0; k < run->count; ++k, ++v) {
        Pte pte = pt.at(v);
        assert(pte.present() && pte.io_busy());
        if (pte.slot() != kNoSwapSlot) swap_.free_slot(pte.slot());  // stale copy
        pte.set_slot(run->start + k);
        if (pte.dirty()) {
          pte.set_dirty(false);
          --as.dirty_resident_;
        }
        pte.set_evicted_this_epoch();
        note_evicted(pid, v);
      }
      remaining -= run->count;
      evictions_in_flight_ += run->count;

      swap_write(*run, priority,
                 [this, pid, run_begin, count = run->count](IoResult result) {
                    auto& as2 = space(pid);
                    auto& pt2 = as2.page_table();
                    if (!result.ok) {
                      ++stats_.io_write_failures;
                      if (++write_failure_streak_ >=
                              params_.write_failure_streak_limit &&
                          !reclaim_stalled_) {
                        reclaim_stalled_ = true;
                        log_.warn("eviction write-outs keep failing; reclaim "
                                  "stalled");
                      }
                    } else {
                      // Reclaim progress: clear any stall.
                      write_failure_streak_ = 0;
                      reclaim_stalled_ = false;
                    }
                    for (VPage p = run_begin; p < run_begin + count; ++p) {
                      Pte pte = pt2.at(p);
                      assert(pte.io_busy());
                      pte.set_io_busy(false);
                      if (!result.ok && pte.slot() != kNoSwapSlot) {
                        // The swap copy was never written; drop the slot.
                        swap_.free_slot(pte.slot());
                        pte.set_slot(kNoSwapSlot);
                      }
                      if (!as2.alive_) {
                        frames_.free(pte.frame());
                        pte.set_frame(kNoFrame);
                        pte.set_present(false);
                        --as2.resident_;
                        as2.note_unmapped(p);
                        if (pte.dirty()) {
                          pte.set_dirty(false);
                          --as2.dirty_resident_;
                        }
                        if (pte.slot() != kNoSwapSlot) {
                          swap_.free_slot(pte.slot());
                          pte.set_slot(kNoSwapSlot);
                        }
                        continue;
                      }
                      if (!result.ok) {
                        // The data exists only in memory: the page stays
                        // resident and is dirty again. kswapd retries later.
                        if (!pte.dirty()) {
                          pte.set_dirty(true);
                          ++as2.dirty_resident_;
                        }
                        continue;
                      }
                      if (pte.dirty()) {
                        // Re-dirtied while the write was in flight: the just
                        // written copy is stale; the eviction is aborted.
                        swap_.free_slot(pte.slot());
                        pte.set_slot(kNoSwapSlot);
                        continue;
                      }
                      pte.set_present(false);
                      pte.set_referenced(false);
                      frames_.free(pte.frame());
                      pte.set_frame(kNoFrame);
                      --as2.resident_;
                      as2.note_unmapped(p);
                    }
                    evictions_in_flight_ -= count;
                    if (result.ok && as2.alive_) account_pageout(count, as2);
                    kick_reclaim();
                  });
    }
    i = j;
  }

  if (tracer_ != nullptr) {
    tracer_->instant(trace_track_, "vmm", "reclaim_batch",
                     {{"victims", static_cast<double>(victims.size())},
                      {"freed_now", static_cast<double>(freed_now)},
                      {"writes", static_cast<double>(writes.size())}});
  }
  if (freed_now > 0) kick_reclaim();
  return freed_now;
}

// ---------------------------------------------------------------------------
// Prefetch (adaptive page-in replay)

void Vmm::prefetch(Pid pid, std::vector<PageRun> runs,
                   std::function<void()> done) {
  auto job = std::make_shared<PrefetchJob>();
  job->pid = pid;
  job->runs = std::move(runs);
  job->done = std::move(done);
  prefetch_pump(job);
}

void Vmm::prefetch_pump(const std::shared_ptr<PrefetchJob>& job) {
  auto& as = space(job->pid);
  auto& pt = as.page_table();
  if (!as.alive_) {
    job->run_idx = job->runs.size();
    if (job->reads_in_flight == 0 && job->done) {
      auto done = std::move(job->done);
      done();
    }
    return;
  }

  while (job->run_idx < job->runs.size()) {
    const PageRun& run = job->runs[job->run_idx];
    if (job->page_idx >= run.count) {
      ++job->run_idx;
      job->page_idx = 0;
      continue;
    }
    const VPage v = run.start + job->page_idx;
    if (!pt.valid(v)) {
      ++job->page_idx;
      continue;
    }
    Pte pte = pt.at(v);
    if (pte.present() || pte.io_busy() || pte.slot() == kNoSwapSlot) {
      ++job->page_idx;
      continue;
    }

    // Head of a read batch: extend while slots stay consecutive and frames
    // remain available.
    const SwapSlot s0 = pte.slot();
    std::int64_t len = 0;
    while (job->page_idx + len < run.count && len < params_.max_prefetch_run) {
      const VPage vc = run.start + job->page_idx + len;
      if (!pt.valid(vc)) break;
      Pte pc = pt.at(vc);
      if (pc.present() || pc.io_busy() || pc.slot() != s0 + len) break;
      auto frame = frames_.alloc(job->pid, vc);
      if (!frame) break;
      pc.set_frame(*frame);
      pc.set_io_busy(true);
      ++len;
    }
    if (len == 0) {
      // No frame even for the first page. Nudge the reclaimer and retry a
      // moment later. (Not via a reclaim waiter: when everything evictable
      // is this prefetch's own in-flight reads, the reclaimer would release
      // the waiter unsatisfied at the same instant and the pump would spin;
      // a real delay lets the outstanding disk reads land and map.)
      kick_reclaim();
      sim_.after(kMillisecond, [this, job] { prefetch_pump(job); });
      return;
    }
    job->page_idx += len;
    ++job->reads_in_flight;

    const VPage batch_begin = v;
    swap_read(SlotRun{s0, len}, IoPriority::kForeground,
              [this, job, batch_begin, len](IoResult result) {
                 auto& as2 = space(job->pid);
                 auto& pt2 = as2.page_table();
                 if (!result.ok) {
                   ++stats_.io_read_failures;
                   ++stats_.prefetch_aborts;
                   for (VPage p = batch_begin; p < batch_begin + len; ++p) {
                     Pte pte = pt2.at(p);
                     assert(pte.io_busy() && !pte.present());
                     if (as2.alive_ && has_io_waiters(job->pid, p)) {
                       // A demand fault piggybacked on this prefetch read:
                       // escalate to a single-page foreground read with the
                       // full retry budget so the waiter is not dropped.
                       issue_major_read(job->pid, p, 1, p, /*write=*/false,
                                        /*resume=*/{}, /*attempt=*/1);
                       continue;
                     }
                     // Release the frame but keep the swap slot (live owner):
                     // plain demand paging retries the page later.
                     pte.set_io_busy(false);
                     frames_.free(pte.frame());
                     pte.set_frame(kNoFrame);
                     if (!as2.alive_ && pte.slot() != kNoSwapSlot) {
                       swap_.free_slot(pte.slot());
                       pte.set_slot(kNoSwapSlot);
                     }
                   }
                   // Abandon the rest of the replay: the pager falls back to
                   // demand paging for whatever was not yet fetched.
                   job->run_idx = job->runs.size();
                   job->page_idx = 0;
                   --job->reads_in_flight;
                   kick_reclaim();
                   if (job->reads_in_flight == 0 && job->done) {
                     auto done = std::move(job->done);
                     done();
                   }
                   return;
                 }
                 for (VPage p = batch_begin; p < batch_begin + len; ++p) {
                   Pte pte = pt2.at(p);
                   assert(pte.io_busy() && !pte.present());
                   pte.set_io_busy(false);
                   if (!as2.alive_) {
                     frames_.free(pte.frame());
                     pte.set_frame(kNoFrame);
                     if (pte.slot() != kNoSwapSlot) {
                       swap_.free_slot(pte.slot());
                       pte.set_slot(kNoSwapSlot);
                     }
                     continue;
                   }
                   pte.set_present(true);
                   // Recorded working-set pages: mapped hot so a concurrent
                   // sweep does not immediately reclaim them again.
                   pte.set_referenced(true);
                   pte.set_age(params_.age_initial);
                   pte.set_last_ref(sim_.now());
                   ++as2.resident_;
                   as2.note_mapped(p);
                   fire_io_waiters(job->pid, p);
                 }
                 if (as2.alive_) account_pagein(len, as2);
                 --job->reads_in_flight;
                 if (job->run_idx >= job->runs.size() &&
                     job->reads_in_flight == 0 && job->done) {
                   auto done = std::move(job->done);
                   done();
                 }
               });
    if (frames_.free_frames() < params_.freepages_low) kick_reclaim();
  }

  if (job->reads_in_flight == 0 && job->done) {
    auto done = std::move(job->done);
    done();
  }
}

// ---------------------------------------------------------------------------
// Background writeback

void Vmm::writeback_dirty(Pid pid, std::int64_t max_pages, IoPriority priority,
                          std::function<void(std::int64_t)> done) {
  auto& as = space(pid);
  auto& pt = as.page_table();

  if (!as.alive_ || as.dirty_resident_ == 0 || max_pages <= 0) {
    if (done) done(0);
    return;
  }

  auto candidate = [&](VPage p) {
    const Pte e = pt.at(p);
    return e.present() && e.dirty() && !e.io_busy();
  };

  // Sweep from the per-space hand in vpage order so successive calls cover
  // the space and consecutive dirty pages get contiguous slots. Runs of
  // non-candidates are skipped word-at-a-time via the dirty bitmap; the
  // skipped pages still count against the scan budget so the final hand
  // position — (old hand + scanned) mod npages — matches the page-at-a-time
  // sweep exactly.
  const std::int64_t npages = pt.num_pages();
  std::int64_t started = 0;
  std::int64_t scanned = 0;
  VPage v = as.writeback_hand_ % npages;
  while (scanned < npages && started < max_pages) {
    if (!candidate(v)) {
      const VPage nc = pt.next_dirty_candidate(v);  // >= v, npages if none
      const std::int64_t skip = nc - v;             // non-candidates skipped
      if (scanned + skip >= npages) {
        // Scan budget exhausts mid-skip: the hand stops where the scalar
        // sweep would have stopped.
        v = (v + (npages - scanned)) % npages;
        scanned = npages;
        break;
      }
      scanned += skip;
      v = nc;
      if (v == npages) {
        v = 0;  // wrap and keep sweeping from the bottom
        continue;
      }
    }
    // Extend a contiguous group without wrapping around the end.
    const VPage begin = v;
    std::int64_t len = 0;
    while (v < npages && scanned < npages && started + len < max_pages &&
           candidate(v)) {
      ++len;
      ++v;
      ++scanned;
    }
    if (v == npages) v = 0;

    std::int64_t remaining = len;
    VPage gv = begin;
    while (remaining > 0) {
      auto run = swap_.alloc_run(std::min(remaining, params_.max_writeout_run));
      if (!run) {
        log_.error("swap device full during writeback");
        break;
      }
      const VPage run_begin = gv;
      for (std::int64_t k = 0; k < run->count; ++k, ++gv) {
        Pte pte = pt.at(run_begin + k);
        if (pte.slot() != kNoSwapSlot) swap_.free_slot(pte.slot());
        pte.set_slot(run->start + k);
        pte.set_io_busy(true);
        pte.set_dirty(false);
        --as.dirty_resident_;
      }
      remaining -= run->count;
      started += run->count;

      swap_write(*run, priority, [this, pid, run_begin,
                                  count = run->count](IoResult result) {
        auto& as2 = space(pid);
        auto& pt2 = as2.page_table();
        if (!result.ok) ++stats_.io_write_failures;
        for (VPage p = run_begin; p < run_begin + count; ++p) {
          Pte pte = pt2.at(p);
          assert(pte.io_busy() && pte.present());
          pte.set_io_busy(false);
          if (!result.ok && pte.slot() != kNoSwapSlot) {
            // The swap copy was never written; drop the slot.
            swap_.free_slot(pte.slot());
            pte.set_slot(kNoSwapSlot);
          }
          if (!as2.alive_) {
            frames_.free(pte.frame());
            pte.set_frame(kNoFrame);
            pte.set_present(false);
            --as2.resident_;
            as2.note_unmapped(p);
            if (pte.dirty()) {
              pte.set_dirty(false);
              --as2.dirty_resident_;
            }
            if (pte.slot() != kNoSwapSlot) {
              swap_.free_slot(pte.slot());
              pte.set_slot(kNoSwapSlot);
            }
            continue;
          }
          if (!result.ok) {
            // The page is still dirty in memory only. No retry here — the
            // background writer's next tick tries again naturally.
            if (!pte.dirty()) {
              pte.set_dirty(true);
              ++as2.dirty_resident_;
            }
            continue;
          }
          if (pte.dirty()) {
            // Re-dirtied during the write: the swap copy is stale.
            swap_.free_slot(pte.slot());
            pte.set_slot(kNoSwapSlot);
          }
          // Page stays mapped either way; cleaning it without unmapping is
          // the point of background writing.
        }
        if (result.ok && as2.alive_) account_pageout(count, as2);
      });
      if (run->count == 0) break;
    }
  }
  as.writeback_hand_ = v;

  if (done) done(started);
}

// ---------------------------------------------------------------------------
// Accounting

void Vmm::account_pagein(std::int64_t pages, AddressSpace& as) {
  as.stats_.pages_swapped_in += static_cast<std::uint64_t>(pages);
  pagein_series_.add(sim_.now(), static_cast<double>(pages));
}

void Vmm::account_pageout(std::int64_t pages, AddressSpace& as) {
  as.stats_.pages_swapped_out += static_cast<std::uint64_t>(pages);
  pageout_series_.add(sim_.now(), static_cast<double>(pages));
}

}  // namespace apsim
