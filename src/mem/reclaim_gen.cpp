#include "mem/reclaim_gen.hpp"

#include <algorithm>

#include "mem/vmm.hpp"

namespace apsim {

// ---------------------------------------------------------------------------
// MglruPolicy

void MglruPolicy::prune_dead(Vmm& vmm) {
  for (auto it = procs_.begin(); it != procs_.end();) {
    const bool live = std::find(vmm.pids().begin(), vmm.pids().end(),
                                it->first) != vmm.pids().end() &&
                      vmm.space(it->first).alive();
    it = live ? std::next(it) : procs_.erase(it);
  }
}

std::vector<Victim> MglruPolicy::select_victims(Vmm& vmm,
                                                std::int64_t max_pages) {
  std::vector<Victim> out;
  if (max_pages <= 0) return out;
  prune_dead(vmm);

  const auto& pids = vmm.pids();
  std::int64_t resident = 0;
  for (Pid pid : pids) {
    const auto& as = vmm.space(pid);
    if (as.alive()) resident += as.resident_pages();
  }
  if (resident == 0) return out;

  // Work bound: with kYoungest+1 generations a hot page survives several
  // encounters, so allow the sweep a few passes over the resident set before
  // giving up (mirrors the clock policy's revolution budget).
  std::int64_t budget = (static_cast<std::int64_t>(kYoungest) + 2) * resident;
  // Pages examined on one process before rotating to the next.
  constexpr std::int64_t kQuota = 64;

  while (std::ssize(out) < max_pages && budget > 0) {
    if (cursor_ >= pids.size()) cursor_ = 0;
    const Pid pid = pids[cursor_];
    auto& as = vmm.space(pid);
    if (!as.alive() || as.resident_pages() == 0) {
      ++cursor_;
      --budget;  // guarantees termination when nothing is evictable
      continue;
    }
    auto& st = procs_[pid];
    auto& pt = as.page_table();
    if (std::ssize(st.gen) != pt.num_pages()) {
      st.gen.assign(static_cast<std::size_t>(pt.num_pages()), kEntryGen);
      st.hand = 0;
    }
    const std::int64_t npages = pt.num_pages();
    for (std::int64_t q = 0;
         q < kQuota && budget > 0 && std::ssize(out) < max_pages; ++q) {
      if (st.hand >= npages) st.hand = 0;
      const VPage v = st.hand;
      // Word-skip runs of non-present pages; each skipped page still costs
      // one quota step and one budget unit, exactly like the page-at-a-time
      // sweep, so rotation and give-up points are unchanged.
      const VPage np = pt.next_present(v);
      if (np != v) {
        const std::int64_t gap = (np >= npages ? npages : np) - v;
        const std::int64_t avail =
            std::min(gap, std::min(kQuota - q, budget));
        st.hand = v + avail;  // == npages wraps at the top of the loop
        budget -= avail;
        q += avail - 1;  // the loop increment covers the last page
        continue;
      }
      ++st.hand;
      --budget;
      Pte pte = pt.at(v);
      auto& gen = st.gen[static_cast<std::size_t>(v)];
      if (pte.referenced()) {
        pte.set_referenced(false);
        gen = kYoungest;
      } else if (gen > 0) {
        --gen;
      } else if (!pte.io_busy()) {
        out.push_back(Victim{pid, v});
        // If the page comes back it re-enters on probation, not at gen 0.
        gen = kEntryGen;
      }
    }
    ++cursor_;
  }
  return out;
}

// ---------------------------------------------------------------------------
// S3FifoPolicy

void S3FifoPolicy::ghost_insert(const Key& key) {
  if (ghost_.insert(key).second) ghost_fifo_.push_back(key);
  // Ghost capacity tracks the resident population (the classic sizing: the
  // ghost remembers about one cache-full of departures).
  const auto cap =
      std::max<std::size_t>(tracked_.size() + small_.size() + main_.size(), 64);
  while (ghost_fifo_.size() > cap) {
    ghost_.erase(ghost_fifo_.front());
    ghost_fifo_.pop_front();
  }
}

void S3FifoPolicy::ingest(Vmm& vmm) {
  for (Pid pid : vmm.pids()) {
    const auto& as = vmm.space(pid);
    if (!as.alive() || as.resident_pages() == 0) continue;
    const auto& pt = as.page_table();
    const std::int64_t npages = pt.num_pages();
    for (VPage v = pt.next_present(0); v < npages; v = pt.next_present(v + 1)) {
      const Key key{pid, v};
      if (tracked_.contains(key)) continue;
      if (ghost_.contains(key)) {
        // The page was evicted recently and came back: skip probation.
        ghost_.erase(key);
        main_.push_back(key);
        tracked_.emplace(key, Where::kMain);
        ++stats_.ghost_hits;
      } else {
        small_.push_back(key);
        tracked_.emplace(key, Where::kSmall);
      }
    }
  }
}

std::vector<Victim> S3FifoPolicy::select_victims(Vmm& vmm,
                                                 std::int64_t max_pages) {
  std::vector<Victim> out;
  if (max_pages <= 0) return out;
  ingest(vmm);

  // Every referenced page re-enters its queue with the bit cleared, so each
  // entry is examined at most twice per call; the scan bound only has to
  // cover the all-io-busy corner.
  std::int64_t scans =
      2 * (std::ssize(small_) + std::ssize(main_)) + 4 * max_pages;
  while (std::ssize(out) < max_pages && scans-- > 0 &&
         (!small_.empty() || !main_.empty())) {
    // Evict from the probationary queue while it holds >= ~10% of the
    // tracked population (the S3-FIFO small-queue target), else from main.
    const bool from_small =
        !small_.empty() &&
        (main_.empty() ||
         10 * std::ssize(small_) >= std::ssize(small_) + std::ssize(main_));
    auto& queue = from_small ? small_ : main_;
    const Key key = queue.front();
    queue.pop_front();

    const auto tracked_it = tracked_.find(key);
    const bool in_this_queue =
        tracked_it != tracked_.end() &&
        tracked_it->second == (from_small ? Where::kSmall : Where::kMain);
    if (!in_this_queue) continue;  // stale entry (re-tracked elsewhere)

    const auto& pids = vmm.pids();
    if (std::find(pids.begin(), pids.end(), key.first) == pids.end()) {
      tracked_.erase(tracked_it);
      continue;
    }
    auto& as = vmm.space(key.first);
    if (!as.alive() || !as.page_table().valid(key.second)) {
      tracked_.erase(tracked_it);
      continue;
    }
    Pte pte = as.page_table().at(key.second);
    if (!pte.present()) {
      tracked_.erase(tracked_it);
      continue;
    }
    if (pte.referenced()) {
      pte.set_referenced(false);
      if (from_small) {
        tracked_it->second = Where::kMain;
        main_.push_back(key);
        ++stats_.promotions;
      } else {
        main_.push_back(key);
        ++stats_.reinserts;
      }
      continue;
    }
    if (pte.io_busy()) {
      queue.push_back(key);  // retry later; bounded by the scan budget
      continue;
    }
    out.push_back(Victim{key.first, key.second});
    tracked_.erase(tracked_it);
    if (from_small) {
      ghost_insert(key);
      ++stats_.small_evictions;
    } else {
      ++stats_.main_evictions;
    }
  }
  return out;
}

}  // namespace apsim
