#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "mem/page.hpp"

/// \file reclaim.hpp
/// Victim-selection policy interface for page reclaim, plus the default
/// policy modelled on Linux 2.2's swap_out(): pick the process with the
/// largest resident set and sweep its page table with a clock hand, clearing
/// referenced bits and reclaiming unreferenced pages. The paper's selective
/// page-out is an alternative implementation of this interface (in
/// src/core), preferring the *outgoing* gang process's pages oldest-first.

namespace apsim {

class Vmm;

/// A page chosen for eviction.
struct Victim {
  Pid pid = kNoPid;
  VPage vpage = -1;

  friend bool operator==(const Victim&, const Victim&) = default;
};

class ReclaimPolicy {
 public:
  virtual ~ReclaimPolicy() = default;

  /// Select up to \p max_pages evictable pages (present, not io-busy).
  /// Returning fewer than max_pages means the policy found nothing more;
  /// returning an empty vector means no evictable page exists right now.
  [[nodiscard]] virtual std::vector<Victim> select_victims(Vmm& vmm,
                                                           std::int64_t max_pages) = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Deep copy including sweep state (clock hands, queues, ghost lists), so
  /// a memory snapshot can save and restore the policy mid-run. Policies
  /// that do not support snapshotting return nullptr (the default).
  [[nodiscard]] virtual std::unique_ptr<ReclaimPolicy> clone() const {
    return nullptr;
  }
};

/// Linux-2.2-style global clock replacement: a persistent sweep that visits
/// processes round-robin with scan quotas proportional to their resident
/// size (swap_out's swap_cnt weighting), clearing referenced bits on the
/// first encounter and reclaiming pages found unreferenced. Recently-touched
/// pages thus get a genuine second chance, while a stopped job's stale pages
/// are reclaimed quickly — including, notoriously, the *residual working
/// set* of the job about to be rescheduled (the false eviction the paper's
/// selective page-out removes).
class ClockReclaimPolicy final : public ReclaimPolicy {
 public:
  [[nodiscard]] std::vector<Victim> select_victims(Vmm& vmm,
                                                   std::int64_t max_pages) override;

  [[nodiscard]] std::string_view name() const override { return "clock-lru"; }

  [[nodiscard]] std::unique_ptr<ReclaimPolicy> clone() const override {
    return std::make_unique<ClockReclaimPolicy>(*this);
  }

 private:
  std::size_t cursor_ = 0;  ///< rotating process index
};

}  // namespace apsim
