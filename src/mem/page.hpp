#pragma once

#include <cstdint>

#include "disk/swap_device.hpp"
#include "sim/time.hpp"

/// \file page.hpp
/// Core virtual-memory types: page/frame numbering and size conversions.
/// Per-page metadata (present/referenced/dirty/... bits) lives in
/// `PageTable` as structure-of-arrays bitmaps; see page_table.hpp for the
/// `Pte` accessor view that call sites read and write through.

namespace apsim {

/// Process identifier within one simulated cluster.
using Pid = std::int32_t;
inline constexpr Pid kNoPid = -1;

/// Virtual page number within a process's address space.
using VPage = std::int64_t;

/// Physical frame number within a node's memory.
using FrameNum = std::int64_t;
inline constexpr FrameNum kNoFrame = -1;

/// Page size; fixed at the i386 value the paper's kernel used.
inline constexpr std::int64_t kPageBytes = 4096;

/// Convert megabytes to pages (rounding up).
[[nodiscard]] constexpr std::int64_t mb_to_pages(double mb) {
  const auto bytes = static_cast<std::int64_t>(mb * 1024.0 * 1024.0);
  return (bytes + kPageBytes - 1) / kPageBytes;
}

/// Convert a page count to megabytes.
[[nodiscard]] constexpr double pages_to_mb(std::int64_t pages) {
  return static_cast<double>(pages * kPageBytes) / (1024.0 * 1024.0);
}

}  // namespace apsim
