#pragma once

#include <cstdint>

#include "disk/swap_device.hpp"
#include "sim/time.hpp"

/// \file page.hpp
/// Core virtual-memory types: page/frame numbering and the page-table entry.
/// The PTE mirrors what the paper's mechanisms need from Linux 2.2: present,
/// referenced and dirty bits, the backing swap slot, plus an age stamp (the
/// paper's selective page-out evicts the outgoing process's pages "in order
/// of decreasing age") and a working-set epoch stamp (the kernel estimates
/// the incoming process's working set from references in its previous
/// quantum).

namespace apsim {

/// Process identifier within one simulated cluster.
using Pid = std::int32_t;
inline constexpr Pid kNoPid = -1;

/// Virtual page number within a process's address space.
using VPage = std::int64_t;

/// Physical frame number within a node's memory.
using FrameNum = std::int64_t;
inline constexpr FrameNum kNoFrame = -1;

/// Page size; fixed at the i386 value the paper's kernel used.
inline constexpr std::int64_t kPageBytes = 4096;

/// Convert megabytes to pages (rounding up).
[[nodiscard]] constexpr std::int64_t mb_to_pages(double mb) {
  const auto bytes = static_cast<std::int64_t>(mb * 1024.0 * 1024.0);
  return (bytes + kPageBytes - 1) / kPageBytes;
}

/// Convert a page count to megabytes.
[[nodiscard]] constexpr double pages_to_mb(std::int64_t pages) {
  return static_cast<double>(pages * kPageBytes) / (1024.0 * 1024.0);
}

/// Page-table entry.
struct Pte {
  FrameNum frame = kNoFrame;     ///< physical frame while present
  SwapSlot slot = kNoSwapSlot;   ///< valid swap copy while >= 0
  SimTime last_ref = 0;          ///< age information for selective page-out
  std::uint32_t epoch = 0;       ///< working-set accounting epoch
  std::uint32_t evict_epoch = 0; ///< epoch of last eviction (false-eviction detection)
  std::uint8_t age = 0;          ///< page age (optional aging mode, cf. Linux 2.2)
  bool present = false;
  bool referenced = false;
  bool dirty = false;
  bool io_busy = false;          ///< page-in or page-out in flight
  bool ever_touched = false;     ///< first touch is a zero-fill minor fault

  /// True when eviction would need no disk write (valid swap copy, clean).
  [[nodiscard]] bool clean_drop_ok() const {
    return present && !dirty && slot != kNoSwapSlot;
  }
};

}  // namespace apsim
