#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mem/reclaim.hpp"

/// \file reclaim_registry.hpp
/// Name-keyed factory over the eviction zoo. Config validation, the scenario
/// parser and the adaptive control plane's policy-switch actuator all resolve
/// replacement policies through here, so adding a policy means one line in
/// the registry and nothing else. "clock-lru" is the kernel default: callers
/// preserving bit-identity only install a policy when the name differs.

namespace apsim {

/// Valid policy names, in registry order: clock-lru, exact-lru, fifo, mglru,
/// s3-fifo. (The paper's "selective" policy is not listed — it is a wrapper
/// composed by the adaptive pager, with one of these as its fallback.)
[[nodiscard]] const std::vector<std::string_view>& reclaim_policy_names();

[[nodiscard]] bool is_reclaim_policy(std::string_view name);

/// One-line "valid names are: ..." suffix for error messages.
[[nodiscard]] std::string reclaim_policy_names_hint();

/// Construct the named policy. Throws std::invalid_argument naming the valid
/// policies when \p name is unknown.
[[nodiscard]] std::unique_ptr<ReclaimPolicy> make_reclaim_policy(
    std::string_view name);

}  // namespace apsim
