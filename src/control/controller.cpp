#include "control/controller.hpp"

#include <cmath>
#include <stdexcept>

namespace apsim {

// ---------------------------------------------------------------------------
// DynThreshController

void DynThreshController::tick(const SignalRates& rates, KnobRegistry& knobs) {
  // Mode transitions with hysteresis: the entry thresholds (hi) sit above
  // the exit thresholds (lo) so one noisy interval cannot flap the mode.
  switch (mode_) {
    case Mode::kCalm:
      if (rates.stall_frac > params_.stall_hi) {
        mode_ = Mode::kThrash;
      } else if (rates.fault_rate > params_.fault_hi) {
        mode_ = Mode::kPressure;
      }
      break;
    case Mode::kPressure:
      if (rates.stall_frac > params_.stall_hi) {
        mode_ = Mode::kThrash;
      } else if (rates.fault_rate < params_.fault_lo &&
                 rates.stall_frac < params_.stall_lo) {
        mode_ = Mode::kCalm;
      }
      break;
    case Mode::kThrash:
      if (rates.stall_frac < params_.stall_lo) {
        mode_ = rates.fault_rate > params_.fault_lo ? Mode::kPressure
                                                    : Mode::kCalm;
      }
      break;
  }

  // Actuate: one step per knob per tick toward the mode's target, so knob
  // trajectories ramp instead of jumping and mode flaps cost little.
  for (std::size_t i = 0; i < knobs.size(); ++i) {
    const KnobSpec& spec = knobs.spec(i);
    if (!spec.continuous) {
      // Discrete selector (the reclaim-policy knob): snap, don't ramp.
      if (spec.name == "reclaim_policy" && params_.thrash_policy_index >= 0) {
        const double target = mode_ == Mode::kThrash
                                  ? params_.thrash_policy_index
                                  : knobs.initial(i);
        if (knobs.get(i) != target) knobs.set(i, target);
      }
      continue;
    }
    const double target = target_for(knobs, i);
    const double cur = knobs.get(i);
    if (std::abs(cur - target) > spec.step * 0.5) {
      knobs.step(i, target > cur ? 1 : -1);
    }
  }
}

double DynThreshController::target_for(const KnobRegistry& knobs,
                                       std::size_t i) const {
  const KnobSpec& spec = knobs.spec(i);
  const double init = knobs.initial(i);
  switch (mode_) {
    case Mode::kCalm:
      return init;
    case Mode::kPressure:
      // Widen the paging pipes a little; leave watermarks alone.
      if (spec.name == "reclaim_batch" || spec.name == "prefetch_run" ||
          spec.name == "bg_batch") {
        return (init + spec.max) / 2.0;
      }
      return init;
    case Mode::kThrash:
      // Max out reclaim/prefetch throughput, pull the watermarks down so
      // reclaim triggers later (the working sets do not fit anyway), and
      // start background writeback earlier.
      if (spec.name == "reclaim_batch" || spec.name == "prefetch_run" ||
          spec.name == "bg_batch") {
        return spec.max;
      }
      if (spec.name == "freepages_low") return spec.min;
      if (spec.name == "freepages_high") return (init + spec.min) / 2.0;
      if (spec.name == "bg_start_frac") {
        return std::max(spec.min, init - 2.0 * spec.step);
      }
      return init;
  }
  return init;
}

// ---------------------------------------------------------------------------
// HillClimbController

double HillClimbController::cost_of(const SignalRates& rates) {
  // Stall fraction is the primary objective; a small fault-rate term breaks
  // ties between configs that hide stall equally well.
  return rates.stall_frac + 1e-4 * rates.fault_rate;
}

void HillClimbController::tick(const SignalRates& rates, KnobRegistry& knobs) {
  if (state_.size() != knobs.size()) state_.resize(knobs.size());
  if (knobs.size() == 0) return;
  const double cost = cost_of(rates);

  if (probing_) {
    // Measure interval: decide whether last tick's perturbation paid off.
    KnobState& ks = state_[probe_idx_];
    const double margin =
        std::max(params_.eps * baseline_, params_.eps_floor);
    if (cost < baseline_ - margin) {
      baseline_ = cost;  // keep the move; same direction next visit
      ks.failed_dirs = 0;
    } else {
      knobs.set(probe_idx_, prev_value_);
      ks.dir = -ks.dir;
      if (++ks.failed_dirs >= 2) {
        // Both directions failed: the objective is flat (or noisy) along
        // this knob — park it for a few probe visits to damp oscillation.
        ks.cooldown = params_.cooldown;
        ks.failed_dirs = 0;
      }
      // The measurement included a rejected perturbation; fold it in only
      // as far as it confirms the baseline.
      baseline_ = (1.0 - params_.smooth) * baseline_ +
                  params_.smooth * std::min(cost, baseline_);
    }
    probing_ = false;
    return;  // next tick measures the settled config before a new probe
  }

  if (!have_baseline_) {
    baseline_ = cost;
    have_baseline_ = true;
  } else {
    baseline_ = (1.0 - params_.smooth) * baseline_ + params_.smooth * cost;
  }

  // Start the next probe: round-robin over continuous knobs, skipping any
  // still cooling down (skips count down their cooldown).
  for (std::size_t tries = 0; tries < knobs.size(); ++tries) {
    rr_ = (rr_ + 1) % knobs.size();
    KnobState& ks = state_[rr_];
    if (!knobs.spec(rr_).continuous) continue;
    if (ks.cooldown > 0) {
      --ks.cooldown;
      continue;
    }
    prev_value_ = knobs.get(rr_);
    if (!knobs.step(rr_, ks.dir)) {
      ks.dir = -ks.dir;
      if (!knobs.step(rr_, ks.dir)) continue;  // pinned: zero-width knob
    }
    probe_idx_ = rr_;
    probing_ = true;
    break;
  }
}

// ---------------------------------------------------------------------------
// Registry

const std::vector<std::string_view>& controller_names() {
  static const std::vector<std::string_view> names = {"dyn-thresh",
                                                      "hill-climb"};
  return names;
}

bool is_controller(std::string_view name) {
  for (std::string_view n : controller_names()) {
    if (n == name) return true;
  }
  return false;
}

std::string controller_names_hint() {
  std::string hint = "valid controllers are:";
  for (std::string_view n : controller_names()) {
    hint += ' ';
    hint += n;
  }
  return hint;
}

std::unique_ptr<Controller> make_controller(std::string_view name,
                                            const ControllerConfig& config) {
  if (name == "dyn-thresh") {
    return std::make_unique<DynThreshController>(config.dyn);
  }
  if (name == "hill-climb") {
    return std::make_unique<HillClimbController>(config.hill);
  }
  throw std::invalid_argument("unknown controller '" + std::string(name) +
                              "'; " + controller_names_hint());
}

}  // namespace apsim
