#pragma once

#include <cstdint>

#include "cluster/node.hpp"

/// \file signals.hpp
/// The control plane's sensor: per-node cumulative counter snapshots taken
/// off the event queue, and the per-interval rates derived from consecutive
/// snapshots. Everything here is read from counters the simulator already
/// maintains (Vmm, AddressSpace, TierManager, Process stats) at an instant
/// of simulated time — no wall clock, no extra events — so sampling is free
/// of observable side effects and controller inputs are deterministic.

namespace apsim {

/// One cumulative snapshot of a node's paging signals.
struct SignalSample {
  SimTime t = 0;
  std::int64_t free_frames = 0;
  std::int64_t usable_frames = 0;
  std::uint64_t major_faults = 0;       ///< summed over address spaces
  std::uint64_t pages_swapped_in = 0;
  std::uint64_t pages_swapped_out = 0;
  std::uint64_t false_evictions = 0;
  std::uint64_t reclaim_steps = 0;
  std::uint64_t alloc_retries = 0;
  SimDuration fault_stall = 0;          ///< summed process fault_wait
  std::uint64_t tier_pool_hits = 0;
  std::uint64_t tier_pool_misses = 0;
};

/// Rates over the interval (prev, cur]. Cumulative sums can step backwards
/// when a process is torn down mid-interval (its counters leave the sum);
/// every delta clamps at zero so controllers never see negative rates.
struct SignalRates {
  double dt_s = 0.0;
  double fault_rate = 0.0;        ///< major faults per second
  double pagein_rate = 0.0;       ///< pages swapped in per second
  double pageout_rate = 0.0;      ///< pages swapped out per second
  double false_evict_rate = 0.0;  ///< false evictions per second
  double stall_frac = 0.0;        ///< fault-stall time per wall time
  double free_frac = 0.0;         ///< free frames / usable frames (at cur)
  double pool_hit_ratio = 1.0;    ///< tier hits / (hits+misses); 1 if idle
};

class SignalSampler {
 public:
  explicit SignalSampler(Node& node) : node_(node) {}

  [[nodiscard]] SignalSample sample(SimTime now) const;

  [[nodiscard]] static SignalRates rates(const SignalSample& prev,
                                         const SignalSample& cur);

 private:
  Node& node_;
};

}  // namespace apsim
