#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "control/controller.hpp"
#include "control/knobs.hpp"
#include "control/signals.hpp"
#include "gang/gang_scheduler.hpp"
#include "metrics/tracer.hpp"

/// \file control_plane.hpp
/// The adaptive control plane: a periodic tick off the simulator's event
/// queue that, per node, samples paging signals, derives interval rates,
/// and lets a Controller adjust that node's knob registry. Entirely
/// simulation-time driven — every decision is a deterministic function of
/// simulated time and counters, so runs stay bit-reproducible across hosts
/// and thread counts. When the harness leaves `autotune` off, no
/// ControlPlane is constructed at all and behaviour is bit-identical to
/// builds without this subsystem.

namespace apsim {

struct ControlPlaneParams {
  /// Controller name (see controller_names()): dyn-thresh or hill-climb.
  std::string controller = "dyn-thresh";

  /// Sampling / decision interval in simulated time.
  SimDuration interval = kSecond;

  /// Expose the reclaim-policy selector as a (discrete) knob, letting mode
  /// controllers switch replacement policy at runtime.
  bool tune_policy = false;

  /// Band thresholds / climber settings forwarded to the controller.
  ControllerConfig config;
};

class ControlPlane {
 public:
  ControlPlane(Cluster& cluster, GangScheduler& sched,
               ControlPlaneParams params);

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  /// Schedule the first tick at now + interval. Call after
  /// GangScheduler::start(); ticking stops by itself once the schedule has
  /// drained (all_finished), so the queue still quiesces.
  void start();

  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  struct Stats {
    std::uint64_t ticks = 0;            ///< control-plane tick events run
    std::uint64_t adjustments = 0;      ///< knob writes that changed a value
    std::uint64_t policy_switches = 0;  ///< reclaim-policy swaps actuated
  };
  /// Adjustments are summed over every node's registry at call time.
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] const ControlPlaneParams& params() const { return params_; }
  [[nodiscard]] KnobRegistry& knobs(int node) {
    return nodes_[static_cast<std::size_t>(node)].knobs;
  }
  [[nodiscard]] Controller& controller(int node) {
    return *nodes_[static_cast<std::size_t>(node)].controller;
  }

 private:
  struct NodeCtl {
    std::unique_ptr<SignalSampler> sampler;
    KnobRegistry knobs;
    std::unique_ptr<Controller> controller;
    SignalSample last;
    bool primed = false;
  };

  void register_knobs(int n);
  void tick();
  void trace_tick(int n, const SignalRates& rates, std::uint64_t adjustments);

  Cluster& cluster_;
  GangScheduler& sched_;
  ControlPlaneParams params_;
  std::vector<NodeCtl> nodes_;
  Tracer* tracer_ = nullptr;
  std::uint64_t ticks_ = 0;
  std::uint64_t policy_switches_ = 0;
};

}  // namespace apsim
