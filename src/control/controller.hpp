#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "control/knobs.hpp"
#include "control/signals.hpp"

/// \file controller.hpp
/// The control plane's decision makers. A Controller is ticked once per
/// sampling interval with the interval's signal rates and the node's knob
/// registry; everything it decides is a deterministic function of those
/// inputs and its own state. Two are shipped, mirroring the classic DRAM
/// scheduler pair: a dynamic-threshold controller that switches between
/// calm / pressure / thrash modes on signal bands (with hysteresis) and
/// walks each knob one step toward the mode's target, and a hill climber
/// that perturbs one knob at a time, measures the next interval, and keeps
/// or reverts the move (with per-knob cooldowns damping oscillation on flat
/// or noisy objectives).

namespace apsim {

class Controller {
 public:
  virtual ~Controller() = default;

  /// One decision: read this interval's rates, adjust knobs.
  virtual void tick(const SignalRates& rates, KnobRegistry& knobs) = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Small numeric summary of internal state for trace counters
  /// (dyn-thresh: mode index; hill-climb: probing knob index or -1).
  [[nodiscard]] virtual double state_metric() const { return 0.0; }
};

struct DynThreshParams {
  /// Major-fault-rate band (faults/s): above hi enters pressure, below lo
  /// (with stall also calm) leaves it.
  double fault_hi = 200.0;
  double fault_lo = 50.0;
  /// Stall-fraction band: above hi enters thrash, below lo leaves it.
  double stall_hi = 0.4;
  double stall_lo = 0.15;
  /// Target index for a discrete "reclaim_policy" knob while in thrash
  /// (-1 = never touch the policy selector).
  double thrash_policy_index = -1.0;
};

class DynThreshController final : public Controller {
 public:
  explicit DynThreshController(DynThreshParams params = {})
      : params_(params) {}

  enum class Mode : std::uint8_t { kCalm = 0, kPressure = 1, kThrash = 2 };

  void tick(const SignalRates& rates, KnobRegistry& knobs) override;

  [[nodiscard]] std::string_view name() const override { return "dyn-thresh"; }
  [[nodiscard]] double state_metric() const override {
    return static_cast<double>(mode_);
  }
  [[nodiscard]] Mode mode() const { return mode_; }

 private:
  [[nodiscard]] double target_for(const KnobRegistry& knobs,
                                  std::size_t i) const;

  DynThreshParams params_;
  Mode mode_ = Mode::kCalm;
};

struct HillClimbParams {
  /// Relative (and absolute floor) improvement a probe must show to be kept.
  double eps = 0.02;
  double eps_floor = 1e-4;
  /// Probe visits a knob sits out after failing in both directions.
  int cooldown = 4;
  /// EWMA factor folding fresh measurements into the baseline cost.
  double smooth = 0.3;
};

class HillClimbController final : public Controller {
 public:
  explicit HillClimbController(HillClimbParams params = {})
      : params_(params) {}

  void tick(const SignalRates& rates, KnobRegistry& knobs) override;

  [[nodiscard]] std::string_view name() const override { return "hill-climb"; }
  [[nodiscard]] double state_metric() const override {
    return probing_ ? static_cast<double>(probe_idx_) : -1.0;
  }

  /// The scalar objective being minimised (fault-service stall dominated).
  [[nodiscard]] static double cost_of(const SignalRates& rates);

  [[nodiscard]] bool probing() const { return probing_; }
  [[nodiscard]] double baseline_cost() const { return baseline_; }

 private:
  struct KnobState {
    int dir = 1;          ///< direction of the next probe
    int cooldown = 0;     ///< probe visits left to sit out
    int failed_dirs = 0;  ///< consecutive rejected probes on this knob
  };

  HillClimbParams params_;
  std::vector<KnobState> state_;
  double baseline_ = 0.0;
  bool have_baseline_ = false;
  bool probing_ = false;
  std::size_t probe_idx_ = 0;
  double prev_value_ = 0.0;
  std::size_t rr_ = 0;  ///< round-robin cursor over knobs
};

/// Settings forwarded by the factory to whichever controller is named.
struct ControllerConfig {
  DynThreshParams dyn;
  HillClimbParams hill;
};

/// Valid controller names, in registry order: dyn-thresh, hill-climb.
[[nodiscard]] const std::vector<std::string_view>& controller_names();

[[nodiscard]] bool is_controller(std::string_view name);

/// One-line "valid controllers are: ..." suffix for error messages.
[[nodiscard]] std::string controller_names_hint();

/// Construct the named controller. Throws std::invalid_argument naming the
/// valid controllers when \p name is unknown.
[[nodiscard]] std::unique_ptr<Controller> make_controller(
    std::string_view name, const ControllerConfig& config = {});

}  // namespace apsim
