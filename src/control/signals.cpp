#include "control/signals.hpp"

namespace apsim {

SignalSample SignalSampler::sample(SimTime now) const {
  SignalSample s;
  s.t = now;
  Vmm& vmm = node_.vmm();
  s.free_frames = vmm.free_frames();
  s.usable_frames = vmm.frames().usable_frames();
  for (Pid pid : vmm.pids()) {
    const auto& stats = vmm.space(pid).stats();
    s.major_faults += stats.major_faults;
    s.pages_swapped_in += stats.pages_swapped_in;
    s.pages_swapped_out += stats.pages_swapped_out;
    s.false_evictions += stats.false_evictions;
  }
  s.reclaim_steps = vmm.stats().reclaim_steps;
  s.alloc_retries = vmm.stats().alloc_retries;
  for (const Process* p : node_.cpu().attached()) {
    s.fault_stall += p->stats().fault_wait;
  }
  if (const TierManager* tier = node_.tier()) {
    s.tier_pool_hits = tier->stats().pool_hits;
    s.tier_pool_misses = tier->stats().pool_misses;
  }
  return s;
}

SignalRates SignalSampler::rates(const SignalSample& prev,
                                 const SignalSample& cur) {
  SignalRates r;
  r.free_frac = cur.usable_frames > 0
                    ? static_cast<double>(cur.free_frames) /
                          static_cast<double>(cur.usable_frames)
                    : 1.0;
  const double dt = to_seconds(cur.t - prev.t);
  r.dt_s = dt;
  if (dt <= 0.0) return r;

  const auto rate = [dt](std::uint64_t before, std::uint64_t after) {
    return after > before ? static_cast<double>(after - before) / dt : 0.0;
  };
  r.fault_rate = rate(prev.major_faults, cur.major_faults);
  r.pagein_rate = rate(prev.pages_swapped_in, cur.pages_swapped_in);
  r.pageout_rate = rate(prev.pages_swapped_out, cur.pages_swapped_out);
  r.false_evict_rate = rate(prev.false_evictions, cur.false_evictions);
  if (cur.fault_stall > prev.fault_stall) {
    r.stall_frac = to_seconds(cur.fault_stall - prev.fault_stall) / dt;
  }
  const std::uint64_t hits = cur.tier_pool_hits > prev.tier_pool_hits
                                 ? cur.tier_pool_hits - prev.tier_pool_hits
                                 : 0;
  const std::uint64_t misses =
      cur.tier_pool_misses > prev.tier_pool_misses
          ? cur.tier_pool_misses - prev.tier_pool_misses
          : 0;
  if (hits + misses > 0) {
    r.pool_hit_ratio =
        static_cast<double>(hits) / static_cast<double>(hits + misses);
  }
  return r;
}

}  // namespace apsim
