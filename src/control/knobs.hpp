#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

/// \file knobs.hpp
/// The control plane's actuator surface: a registry of bounded, steppable
/// knobs. Each knob binds a getter/setter pair onto a live component (VMM
/// watermarks, reclaim batch, pager bg batch, tier budget, ...); the
/// registry clamps every write into [min, max] and counts the writes that
/// actually changed a value, so controllers can actuate blindly and the
/// underlying component is still free to apply its own (dynamic) invariants
/// — the registry reads the value back after setting.

namespace apsim {

/// Description of one bounded, steppable actuator.
struct KnobSpec {
  std::string name;
  double min = 0.0;
  double max = 1.0;
  double step = 0.1;
  /// Continuous knobs are fair game for the hill climber; discrete ones
  /// (the reclaim-policy selector) are only driven by mode controllers.
  bool continuous = true;
};

class KnobRegistry {
 public:
  using Getter = std::function<double()>;
  using Setter = std::function<void(double)>;

  /// Register an actuator. The current value is captured as the knob's
  /// initial (the "calm" target controllers return to).
  void add(KnobSpec spec, Getter get, Setter set);

  [[nodiscard]] std::size_t size() const { return knobs_.size(); }
  [[nodiscard]] const KnobSpec& spec(std::size_t i) const {
    return knobs_[i].spec;
  }
  /// Index of the named knob, or -1.
  [[nodiscard]] int find(std::string_view name) const;

  [[nodiscard]] double get(std::size_t i) const { return knobs_[i].get(); }
  [[nodiscard]] double initial(std::size_t i) const {
    return knobs_[i].initial;
  }

  /// Clamp \p value into [min, max] and apply it. Returns the value read
  /// back after the write (the component may clamp further). Counts one
  /// adjustment when the readback differs from the previous value.
  double set(std::size_t i, double value);

  /// Step by +/- one spec.step. Returns false — applying nothing — when
  /// already at the bound in that direction.
  bool step(std::size_t i, int direction);

  /// Knob writes that changed a value (the control plane's decision count).
  [[nodiscard]] std::uint64_t adjustments() const { return adjustments_; }

 private:
  struct Knob {
    KnobSpec spec;
    Getter get;
    Setter set;
    double initial = 0.0;
  };
  std::vector<Knob> knobs_;
  std::uint64_t adjustments_ = 0;
};

}  // namespace apsim
