#include "control/knobs.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace apsim {

void KnobRegistry::add(KnobSpec spec, Getter get, Setter set) {
  assert(get && set);
  assert(spec.min <= spec.max);
  assert(spec.step > 0.0);
  Knob knob{std::move(spec), std::move(get), std::move(set), 0.0};
  knob.initial = std::clamp(knob.get(), knob.spec.min, knob.spec.max);
  knobs_.push_back(std::move(knob));
}

int KnobRegistry::find(std::string_view name) const {
  for (std::size_t i = 0; i < knobs_.size(); ++i) {
    if (knobs_[i].spec.name == name) return static_cast<int>(i);
  }
  return -1;
}

double KnobRegistry::set(std::size_t i, double value) {
  Knob& knob = knobs_[i];
  const double before = knob.get();
  knob.set(std::clamp(value, knob.spec.min, knob.spec.max));
  const double after = knob.get();
  if (after != before) ++adjustments_;
  return after;
}

bool KnobRegistry::step(std::size_t i, int direction) {
  const Knob& knob = knobs_[i];
  const double cur = knob.get();
  const double target =
      cur + (direction >= 0 ? knob.spec.step : -knob.spec.step);
  if (target > knob.spec.max + 1e-9 || target < knob.spec.min - 1e-9) {
    return false;
  }
  set(i, target);
  return true;
}

}  // namespace apsim
