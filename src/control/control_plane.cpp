#include "control/control_plane.hpp"

#include <algorithm>
#include <cmath>

#include "mem/reclaim_registry.hpp"

namespace apsim {

namespace {

/// Index of \p name in reclaim_policy_names(), or -1.
int policy_index(std::string_view name) {
  const auto& names = reclaim_policy_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

ControlPlane::ControlPlane(Cluster& cluster, GangScheduler& sched,
                           ControlPlaneParams params)
    : cluster_(cluster), sched_(sched), params_(std::move(params)) {
  if (params_.tune_policy && params_.config.dyn.thrash_policy_index < 0) {
    // Default thrash policy for the mode controller: S3-FIFO, whose ghost
    // queue resists the one-shot scan patterns that thrash a clock.
    params_.config.dyn.thrash_policy_index = policy_index("s3-fifo");
  }
  nodes_.resize(static_cast<std::size_t>(cluster_.size()));
  for (int n = 0; n < cluster_.size(); ++n) {
    NodeCtl& ctl = nodes_[static_cast<std::size_t>(n)];
    ctl.sampler = std::make_unique<SignalSampler>(cluster_.node(n));
    register_knobs(n);
    ctl.controller = make_controller(params_.controller, params_.config);
  }
}

void ControlPlane::register_knobs(int n) {
  KnobRegistry& knobs = nodes_[static_cast<std::size_t>(n)].knobs;
  Node& node = cluster_.node(n);
  Vmm& vmm = node.vmm();
  const VmmParams& vp = vmm.params();

  const auto i64 = [](double v) {
    return static_cast<std::int64_t>(std::llround(v));
  };

  knobs.add({"reclaim_batch", 8.0,
             static_cast<double>(std::max<std::int64_t>(512, vp.reclaim_batch)),
             16.0},
            [&vmm] { return static_cast<double>(vmm.params().reclaim_batch); },
            [&vmm, i64](double v) { vmm.set_reclaim_batch(i64(v)); });
  knobs.add(
      {"prefetch_run", 64.0,
       static_cast<double>(std::max<std::int64_t>(4096, vp.max_prefetch_run)),
       128.0},
      [&vmm] { return static_cast<double>(vmm.params().max_prefetch_run); },
      [&vmm, i64](double v) { vmm.set_max_prefetch_run(i64(v)); });

  const std::int64_t low0 = vp.freepages_low;
  const std::int64_t high0 = vp.freepages_high;
  const double wm_step =
      static_cast<double>(std::max<std::int64_t>((high0 - vp.freepages_min) / 8, 8));
  knobs.add({"freepages_low", static_cast<double>(vp.freepages_min),
             static_cast<double>(2 * low0), wm_step},
            [&vmm] { return static_cast<double>(vmm.params().freepages_low); },
            [&vmm, i64](double v) { vmm.set_freepages_low(i64(v)); });
  knobs.add({"freepages_high", static_cast<double>(low0),
             static_cast<double>(2 * high0), wm_step},
            [&vmm] { return static_cast<double>(vmm.params().freepages_high); },
            [&vmm, i64](double v) { vmm.set_freepages_high(i64(v)); });

  AdaptivePager& pager = sched_.pager(n);
  knobs.add(
      {"bg_batch", 16.0,
       static_cast<double>(std::max<std::int64_t>(512, pager.bg_batch())),
       32.0},
      [&pager] { return static_cast<double>(pager.bg_batch()); },
      [&pager, i64](double v) { pager.set_bg_batch(i64(v)); });

  if (n == 0) {
    // Scheduler-wide knob; registered on node 0 only so a single controller
    // owns it.
    knobs.add({"bg_start_frac", 0.5, 0.99, 0.05},
              [this] { return sched_.params().bg_start_frac; },
              [this](double v) { sched_.set_bg_start_frac(v); });
  }

  if (TierManager* tier = node.tier()) {
    const double boot = static_cast<double>(tier->pool().budget_bytes());
    knobs.add({"tier_budget", std::max(1.0, boot / 4.0), boot,
               std::max(1.0, boot / 8.0)},
              [tier] { return static_cast<double>(tier->pool().budget_bytes()); },
              [tier, i64](double v) { tier->set_pool_budget_bytes(i64(v)); });
  }

  if (params_.tune_policy) {
    const auto& names = reclaim_policy_names();
    knobs.add(
        {"reclaim_policy", 0.0, static_cast<double>(names.size() - 1), 1.0,
         /*continuous=*/false},
        [&pager] {
          const int idx = policy_index(pager.base_reclaim_policy());
          return idx >= 0 ? static_cast<double>(idx) : 0.0;
        },
        [this, &pager, &names](double v) {
          const auto idx = static_cast<std::size_t>(std::clamp<double>(
              std::llround(v), 0.0, static_cast<double>(names.size() - 1)));
          if (names[idx] != pager.base_reclaim_policy()) {
            pager.set_base_reclaim_policy(names[idx]);
            ++policy_switches_;
          }
        });
  }
}

void ControlPlane::start() {
  cluster_.sim().after(params_.interval, [this] { tick(); });
}

void ControlPlane::tick() {
  // Once the schedule has drained, stop rescheduling so the event queue
  // quiesces (fuzz invariant: no pending events shortly after completion).
  if (sched_.all_finished()) return;
  ++ticks_;
  const SimTime now = cluster_.sim().now();
  for (int n = 0; n < cluster_.size(); ++n) {
    if (!cluster_.node_alive(n)) continue;
    NodeCtl& ctl = nodes_[static_cast<std::size_t>(n)];
    const SignalSample cur = ctl.sampler->sample(now);
    if (!ctl.primed) {
      ctl.last = cur;
      ctl.primed = true;
      continue;
    }
    const SignalRates rates = SignalSampler::rates(ctl.last, cur);
    ctl.last = cur;
    const std::uint64_t before = ctl.knobs.adjustments();
    ctl.controller->tick(rates, ctl.knobs);
    trace_tick(n, rates, ctl.knobs.adjustments() - before);
  }
  cluster_.sim().after(params_.interval, [this] { tick(); });
}

void ControlPlane::trace_tick(int n, const SignalRates& rates,
                              std::uint64_t adjustments) {
  if (!tracer_) return;
  NodeCtl& ctl = nodes_[static_cast<std::size_t>(n)];
  const int track = trace_track(n, kTrackSched);
  tracer_->instant(track, "control", "autotune_tick",
                   {{"adjustments", static_cast<double>(adjustments)},
                    {"stall_frac", rates.stall_frac},
                    {"fault_rate", rates.fault_rate},
                    {"state", ctl.controller->state_metric()}});
  for (std::size_t i = 0; i < ctl.knobs.size(); ++i) {
    const std::string name = "knob:" + ctl.knobs.spec(i).name;
    tracer_->counter(track, "control", name, ctl.knobs.get(i));
  }
}

ControlPlane::Stats ControlPlane::stats() const {
  Stats s;
  s.ticks = ticks_;
  s.policy_switches = policy_switches_;
  for (const NodeCtl& ctl : nodes_) s.adjustments += ctl.knobs.adjustments();
  return s;
}

}  // namespace apsim
