#include "recover/restart_planner.hpp"

#include <algorithm>
#include <stdexcept>

namespace apsim {

std::string_view to_string(RestartPlacement placement) {
  switch (placement) {
    case RestartPlacement::kSpread: return "spread";
    case RestartPlacement::kPacked: return "packed";
  }
  return "?";
}

std::string_view to_string(LostWorkModel model) {
  switch (model) {
    case LostWorkModel::kCpu: return "cpu";
    case LostWorkModel::kWall: return "wall";
  }
  return "?";
}

RestartPlacement parse_restart_placement(std::string_view text) {
  if (text == "spread") return RestartPlacement::kSpread;
  if (text == "packed") return RestartPlacement::kPacked;
  throw std::invalid_argument("restart_placement must be spread|packed, got '" +
                              std::string(text) + "'");
}

LostWorkModel parse_lost_work_model(std::string_view text) {
  if (text == "cpu") return LostWorkModel::kCpu;
  if (text == "wall") return LostWorkModel::kWall;
  throw std::invalid_argument("lost_work_model must be cpu|wall, got '" +
                              std::string(text) + "'");
}

std::optional<std::vector<int>> RestartPlanner::plan(
    const std::vector<std::int64_t>& rank_pages,
    std::vector<RestartCandidate> candidates, RestartPlacement placement) {
  // Deterministic regardless of caller ordering.
  std::sort(candidates.begin(), candidates.end(),
            [](const RestartCandidate& a, const RestartCandidate& b) {
              return a.node < b.node;
            });
  std::vector<int> assigned_count(candidates.size(), 0);
  std::vector<int> out(rank_pages.size(), -1);

  for (std::size_t r = 0; r < rank_pages.size(); ++r) {
    std::size_t pick = candidates.size();
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      const RestartCandidate& cand = candidates[c];
      if (cand.usable_frames < cand.min_frames) continue;
      if (cand.free_swap_slots < rank_pages[r]) continue;
      if (placement == RestartPlacement::kPacked) {
        pick = c;
        break;
      }
      if (pick == candidates.size() ||
          assigned_count[c] < assigned_count[pick]) {
        pick = c;
      }
    }
    if (pick == candidates.size()) return std::nullopt;
    candidates[pick].free_swap_slots -= rank_pages[r];
    ++assigned_count[pick];
    out[r] = candidates[pick].node;
  }
  return out;
}

}  // namespace apsim
