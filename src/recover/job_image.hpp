#pragma once

#include <cstdint>
#include <vector>

#include "mem/vmm.hpp"
#include "proc/access.hpp"
#include "sim/time.hpp"

/// \file job_image.hpp
/// The in-memory form of one job's last committed coordinated checkpoint.
/// Everything is captured at a single simulated instant (a consistent cut:
/// the mini-MPI model has no in-flight point-to-point messages, so the only
/// cross-rank state is the set of open collectives, resolved per rank into
/// either a rewind or a roll-forward of the in-flight comm op).

namespace apsim {

/// One rank's slice of a checkpoint.
struct RankImage {
  int node = -1;               ///< placement at snapshot time (informational)
  std::int64_t num_pages = 0;  ///< address-space size
  ProgramCursor cursor;        ///< program position to rewind to
  Op current_op;               ///< in-flight op (meaningful when op_active)
  bool op_active = false;
  std::int64_t op_pos = 0;     ///< progress within current_op
  bool comm_rewind = false;    ///< restore re-enters the in-flight collective
  SimDuration cpu_time = 0;    ///< accounting anchor for lost-work (cpu model)
  Vmm::ImageSnapshot mem;      ///< live-page layout + sizing counts
};

/// One job's coordinated checkpoint.
struct JobImage {
  bool valid = false;
  SimTime taken_at = -1;
  std::vector<RankImage> ranks;          ///< by placement index
  std::vector<std::uint64_t> comm_seqs;  ///< MpiComm per-rank seq restore values

  [[nodiscard]] std::int64_t total_live_pages() const {
    std::int64_t total = 0;
    for (const RankImage& r : ranks) total += r.mem.live_pages;
    return total;
  }
};

}  // namespace apsim
