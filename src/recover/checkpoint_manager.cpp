#include "recover/checkpoint_manager.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

#include "tier/tier_manager.hpp"

namespace apsim {

CheckpointManager::CheckpointManager(Cluster& cluster, GangScheduler& sched,
                                     CheckpointParams params)
    : cluster_(cluster), sched_(sched), params_(params) {
  assert(params_.interval > 0 && "checkpoint_interval = 0 means no manager");
  sched_.set_recovery(this);
}

CheckpointManager::~CheckpointManager() { sched_.set_recovery(nullptr); }

void CheckpointManager::start() {
  assert(!started_);
  started_ = true;
  states_.resize(sched_.jobs().size());
  ckpt_cursor_.assign(static_cast<std::size_t>(cluster_.size()), 0);
  for (const auto& job : sched_.jobs()) {
    JobState& st = states_[static_cast<std::size_t>(job->id())];
    st.out_baseline.assign(job->processes().size(), 0);
    if (job->done()) continue;
    // Epoch-0 image: a from-scratch restart is available immediately, so a
    // crash before the first periodic checkpoint still gets a recovery
    // attempt instead of aborting the job. Costs no I/O and is not counted
    // in checkpoints_taken — nothing has been written anywhere yet.
    auto img = snapshot_job(*job, st);
    if (img) st.image = std::move(*img);
  }
  arm_tick();
}

void CheckpointManager::arm_tick() {
  cluster_.sim().after(params_.interval, [this] { tick(); });
}

void CheckpointManager::tick() {
  if (sched_.all_finished()) return;  // let the event queue drain
  // A checkpoint must not tear a gang mid-switch: wait for every live node
  // to have applied the current switch generation. The defer cap keeps a
  // pathological never-settling rotation from starving checkpoints forever.
  if (!sched_.switch_settled() && settle_defers_ < 512) {
    ++settle_defers_;
    cluster_.sim().after(5 * kMillisecond, [this] { tick(); });
    return;
  }
  settle_defers_ = 0;
  for (const auto& job : sched_.jobs()) {
    JobState& st = state_of(*job);
    if (job->done() || st.restoring || st.ckpt_in_flight || !st.checkpointable)
      continue;
    checkpoint_job(*job, st);
  }
  arm_tick();
}

void CheckpointManager::checkpoint_job(Job& job, JobState& st) {
  auto img = snapshot_job(job, st);
  if (!img) return;
  st.ckpt_in_flight = true;
  write_image(job, st, std::move(*img));
}

std::optional<JobImage> CheckpointManager::snapshot_job(Job& job,
                                                        JobState& st) {
  JobImage img;
  img.taken_at = cluster_.sim().now();
  MpiComm* comm = comm_of_ ? comm_of_(job.id()) : nullptr;
  if (comm != nullptr) img.comm_seqs = comm->rank_seqs();
  img.ranks.reserve(job.processes().size());
  for (const auto& placement : job.processes()) {
    Process& p = *placement.process;
    const auto cursor = p.program().save_cursor();
    if (!cursor) {
      // The program cannot describe its position; the job is permanently
      // uncheckpointable (a later tick would fail the same way).
      st.checkpointable = false;
      return std::nullopt;
    }
    auto& vmm = cluster_.node(placement.node).vmm();
    RankImage r;
    r.node = placement.node;
    r.num_pages = vmm.space(p.pid()).num_pages();
    r.cursor = *cursor;
    r.current_op = p.current_op_;
    r.op_active = p.op_active_;
    r.op_pos = p.op_pos_;
    r.cpu_time = p.stats_.cpu_time;
    if (comm != nullptr && p.state() == ProcState::kBlockedComm &&
        r.op_active && r.current_op.kind == Op::Kind::kComm) {
      // Consistent cut for the one piece of cross-rank state, the open
      // collective: if the collective this rank entered is still open
      // cluster-wide, rewind the rank to re-enter it on restore; if it
      // already completed, roll the rank forward past the comm op.
      auto& seq = img.comm_seqs[static_cast<std::size_t>(p.rank)];
      const std::uint64_t entered = seq - 1;
      if (comm->collective_open(entered)) {
        r.comm_rewind = true;
        seq = entered;
      } else {
        r.op_active = false;
      }
    }
    r.mem = vmm.snapshot_image(p.pid());
    img.ranks.push_back(std::move(r));
  }
  img.valid = true;
  return img;
}

void CheckpointManager::write_image(Job& job, JobState& st, JobImage img) {
  auto batch = std::make_shared<WriteBatch>();
  batch->gen = st.gen;
  // Raw image size per node. Incremental epochs write the pages dirtied in
  // memory plus those swapped out since the last commit (capped at the live
  // set); full epochs (and epoch 1, whose baseline is the costless epoch-0
  // image) write everything live.
  std::map<int, std::int64_t> node_pages;  // ordered -> deterministic submits
  const auto& placements = job.processes();
  for (std::size_t i = 0; i < img.ranks.size(); ++i) {
    const RankImage& rank = img.ranks[i];
    std::int64_t pages = rank.mem.live_pages;
    if (params_.incremental && st.image.valid && st.image.taken_at >= 0) {
      const auto& sp = cluster_.node(placements[i].node)
                           .vmm()
                           .space(placements[i].process->pid())
                           .stats();
      const auto delta = static_cast<std::int64_t>(sp.pages_swapped_out) -
                         static_cast<std::int64_t>(st.out_baseline[i]);
      pages = std::min(pages,
                       rank.mem.dirty_pages + std::max<std::int64_t>(delta, 0));
    }
    node_pages[rank.node] += pages;
    batch->raw_pages += static_cast<std::uint64_t>(pages);
  }
  batch->img = std::move(img);

  for (const auto& [node_index, pages] : node_pages) {
    if (pages <= 0) continue;
    auto& node = cluster_.node(node_index);
    const double ratio = compression_ratio(node_index);
    std::int64_t blocks = static_cast<std::int64_t>(
        std::ceil(static_cast<double>(pages) * ratio));
    blocks = std::max<std::int64_t>(blocks, 1);
    // The checkpoint region lives past the swap partition. A disk that is
    // exactly swap-sized has no such region; wrap over the whole device
    // instead — the disk model stores no data, so only the seek/transfer
    // timing matters, and all submits must stay in range.
    const BlockNum past_swap = node.swap().block_of(0) + node.swap().num_slots();
    const BlockNum capacity = node.disk().model().params().num_blocks;
    const BlockNum region_lo = past_swap < capacity ? past_swap : 0;
    const std::int64_t span = capacity - region_lo;
    auto& cursor = ckpt_cursor_[static_cast<std::size_t>(node_index)];
    if (tracer_ != nullptr) {
      batch->spans.push_back(std::make_shared<TraceSpan>(tracer_->async_span(
          trace_track(node_index, kTrackSched), "ckpt", "checkpoint",
          {{"job", static_cast<double>(job.id())},
           {"pages", static_cast<double>(pages)},
           {"blocks", static_cast<double>(blocks)}})));
    }
    while (blocks > 0) {
      const std::int64_t len =
          std::min({blocks, params_.max_io_run, span - cursor});
      ++batch->outstanding;
      submit_ckpt_write(job, node_index, region_lo + cursor, len, 0, batch);
      cursor = (cursor + len) % span;
      blocks -= len;
    }
  }
  finish_ckpt_write(job, batch);  // drop the submission sentinel
}

void CheckpointManager::submit_ckpt_write(
    Job& job, int node, BlockNum start, BlockNum nblocks, int attempt,
    const std::shared_ptr<WriteBatch>& batch) {
  auto on_done = [this, &job, node, start, nblocks, attempt,
                  batch](IoResult result) {
    if (result.ok) {
      finish_ckpt_write(job, batch);
      return;
    }
    JobState& st = state_of(job);
    if (st.gen != batch->gen || job.done()) {
      finish_ckpt_write(job, batch);
      return;
    }
    if (attempt >= params_.max_retries) {
      batch->failed = true;
      finish_ckpt_write(job, batch);
      return;
    }
    ++stats_.ckpt_io_retries;
    if (tracer_ != nullptr) {
      tracer_->instant(trace_track(node, kTrackSched), "ckpt", "retry",
                       {{"job", static_cast<double>(job.id())},
                        {"attempt", static_cast<double>(attempt + 1)}});
    }
    const SimDuration backoff =
        std::min(params_.retry_base << attempt, params_.retry_cap);
    cluster_.sim().after(backoff, [this, &job, node, start, nblocks, attempt,
                                   batch] {
      submit_ckpt_write(job, node, start, nblocks, attempt + 1, batch);
    });
  };
  FaultInjector* injector = cluster_.fault_injector();
  if (injector != nullptr && injector->on_ckpt_write(node)) {
    // Injected failure: surface it after a token latency so the retry
    // ladder's backoff is exercised in simulated time.
    cluster_.sim().after(kMillisecond,
                         [on_done] { on_done(IoResult::error()); });
    return;
  }
  cluster_.node(node).disk().submit(
      {start, nblocks, /*write=*/true, IoPriority::kForeground,
       std::move(on_done)});
}

void CheckpointManager::finish_ckpt_write(
    Job& job, const std::shared_ptr<WriteBatch>& batch) {
  if (--batch->outstanding > 0) return;
  batch->spans.clear();  // close the per-node checkpoint spans
  JobState& st = state_of(job);
  // A casualty bumped the generation (and cleared ckpt_in_flight) while the
  // writes were in flight: the image describes a world that no longer
  // exists, so drop it.
  if (st.gen != batch->gen) return;
  st.ckpt_in_flight = false;
  if (job.done()) return;
  if (batch->failed) {
    ++stats_.checkpoint_failures;
    cluster_.node(job.processes().front().node)
        .vmm()
        .log()
        .warn("job %d checkpoint abandoned after I/O retries; keeping the "
              "previous image",
              job.id());
    return;
  }
  st.image = std::move(batch->img);
  ++stats_.checkpoints_taken;
  stats_.bytes_checkpointed +=
      batch->raw_pages * static_cast<std::uint64_t>(kPageBytes);
  const auto& placements = job.processes();
  for (std::size_t i = 0; i < placements.size(); ++i) {
    st.out_baseline[i] = cluster_.node(placements[i].node)
                             .vmm()
                             .space(placements[i].process->pid())
                             .stats()
                             .pages_swapped_out;
  }
}

bool CheckpointManager::on_job_casualty(Job& job, const char* reason) {
  if (!started_) return false;
  JobState& st = state_of(job);
  if (job.done()) return false;
  if (st.restoring) {
    // A second casualty mid-restore (e.g. a staging target crashed).
    // Invalidate the in-flight attempt — its completions will release any
    // staged spaces — and replan from scratch once this event settles.
    ++st.gen;
    const std::uint64_t gen = st.gen;
    cluster_.sim().after(0, [this, &job, gen] {
      JobState& s = state_of(job);
      if (s.gen != gen || !s.restoring || job.done()) return;
      plan_and_stage(job);
    });
    return true;
  }
  if (!st.checkpointable || !st.image.valid ||
      st.restarts >= params_.max_restarts_per_job) {
    return false;
  }
  cluster_.node(job.processes().front().node)
      .vmm()
      .log()
      .info("job %d casualty (%s); restarting from checkpoint t=%lld (restart "
            "%d)",
            job.id(), reason, static_cast<long long>(st.image.taken_at),
            st.restarts + 1);
  begin_restore(job, st, reason);
  return true;
}

void CheckpointManager::begin_restore(Job& job, JobState& st,
                                      const char* reason) {
  (void)reason;
  ++st.restarts;
  ++stats_.restarts_started;
  if (params_.lost_work == LostWorkModel::kWall) {
    stats_.lost_work += cluster_.sim().now() - st.image.taken_at;
  } else {
    const auto& placements = job.processes();
    for (std::size_t i = 0; i < placements.size(); ++i) {
      const SimDuration burned = placements[i].process->stats().cpu_time -
                                 st.image.ranks[i].cpu_time;
      if (burned > 0) stats_.lost_work += burned;
    }
  }
  st.ckpt_in_flight = false;  // any in-flight image write is now void
  ++st.gen;
  st.restoring = true;
  st.bad_nodes.clear();
  sched_.suspend_job(job);
  if (tracer_ != nullptr) {
    st.restore_span = std::make_shared<TraceSpan>(tracer_->async_span(
        trace_track(job.processes().front().node, kTrackSched), "ckpt",
        "restore",
        {{"job", static_cast<double>(job.id())},
         {"restart", static_cast<double>(st.restarts)}}));
  }
  // Defer planning one event: the casualty handler (node teardown, fencing)
  // may still be mid-flight, and planning wants settled node state.
  const std::uint64_t gen = st.gen;
  cluster_.sim().after(0, [this, &job, gen] {
    JobState& s = state_of(job);
    if (s.gen != gen || !s.restoring || job.done()) return;
    plan_and_stage(job);
  });
}

void CheckpointManager::plan_and_stage(Job& job) {
  JobState& st = state_of(job);
  std::vector<std::int64_t> rank_pages;
  rank_pages.reserve(st.image.ranks.size());
  for (const RankImage& rank : st.image.ranks)
    rank_pages.push_back(rank.mem.live_pages);
  std::vector<RestartCandidate> candidates;
  for (int n = 0; n < cluster_.size(); ++n) {
    if (!sched_.node_alive(n) || st.bad_nodes.contains(n)) continue;
    auto& node = cluster_.node(n);
    if (node.disk().failed()) continue;
    RestartCandidate cand;
    cand.node = n;
    cand.free_swap_slots = node.swap().free_slots();
    cand.usable_frames = node.vmm().frames().usable_frames();
    cand.min_frames = node.vmm().params().freepages_high + params_.frame_headroom;
    candidates.push_back(cand);
  }
  auto plan =
      RestartPlanner::plan(rank_pages, std::move(candidates), params_.placement);
  if (!plan) {
    give_up_restore(job, st, "no feasible placement on surviving nodes");
    return;
  }
  stage(job, st, std::move(*plan));
}

void CheckpointManager::stage(Job& job, JobState& st,
                              std::vector<int> targets) {
  auto attempt = std::make_shared<StageAttempt>();
  attempt->gen = st.gen;
  attempt->target = std::move(targets);
  const std::size_t nranks = st.image.ranks.size();
  attempt->pid.assign(nranks, kNoPid);
  attempt->slots.resize(nranks);
  // Synchronous phase: create a fresh space per rank on its target and bind
  // the image pages to freshly allocated swap slots.
  for (std::size_t i = 0; i < nranks; ++i) {
    const RankImage& rank = st.image.ranks[i];
    auto& node = cluster_.node(attempt->target[i]);
    attempt->pid[i] = node.vmm().create_process(rank.num_pages);
    if (rank.mem.live_pages == 0) continue;
    if (node.swap().free_slots() < rank.mem.live_pages) {
      // The planner saw enough slots but a concurrent consumer raced us:
      // treat it like a staging failure of that node and replan without it.
      release_staged(*attempt);
      fail_staging_node(job, st, attempt->target[i]);
      return;
    }
    attempt->slots[i] =
        node.swap().alloc_pages(rank.mem.live_pages, params_.max_io_run);
    node.vmm().bind_swap_image(attempt->pid[i], rank.mem.live,
                               attempt->slots[i]);
  }
  // Submit phase: the image lands in the target swap partitions as real
  // foreground I/O; demand paging then pays the major faults as the job
  // re-touches its pages.
  std::uint64_t total_pages = 0;
  for (std::size_t i = 0; i < nranks; ++i) {
    const int target = attempt->target[i];
    for (const SlotRun& run : attempt->slots[i]) {
      ++attempt->outstanding;
      total_pages += static_cast<std::uint64_t>(run.count);
      cluster_.node(target).swap().write(
          run, IoPriority::kForeground,
          [this, &job, attempt, target](IoResult result) {
            if (!result.ok && !attempt->failed) {
              attempt->failed = true;
              attempt->failed_node = target;
            }
            stage_complete(job, attempt);
          });
    }
  }
  stats_.pages_staged += total_pages;
  stage_complete(job, attempt);  // drop the submission sentinel
}

void CheckpointManager::stage_complete(
    Job& job, const std::shared_ptr<StageAttempt>& attempt) {
  if (--attempt->outstanding > 0) return;
  JobState& st = state_of(job);
  if (st.gen != attempt->gen || job.done() || !st.restoring) {
    release_staged(*attempt);  // superseded mid-flight
    return;
  }
  if (attempt->failed) {
    release_staged(*attempt);
    fail_staging_node(job, st, attempt->failed_node);
    return;
  }
  finish_restore(job, st, *attempt);
}

void CheckpointManager::release_staged(const StageAttempt& attempt) {
  for (std::size_t i = 0; i < attempt.pid.size(); ++i) {
    if (attempt.pid[i] == kNoPid) continue;
    const int node_index = attempt.target[i];
    if (!cluster_.node_alive(node_index)) continue;  // crash tore it down
    auto& vmm = cluster_.node(node_index).vmm();
    if (vmm.space(attempt.pid[i]).alive()) vmm.release_process(attempt.pid[i]);
  }
}

void CheckpointManager::fail_staging_node(Job& job, JobState& st, int node) {
  cluster_.node(job.processes().front().node)
      .vmm()
      .log()
      .warn("job %d image staging failed on node %d; replanning without it",
            job.id(), node);
  st.bad_nodes.insert(node);
  plan_and_stage(job);
}

void CheckpointManager::finish_restore(Job& job, JobState& st,
                                       const StageAttempt& attempt) {
  MpiComm* comm = comm_of_ ? comm_of_(job.id()) : nullptr;
  const auto& placements = job.processes();
  for (std::size_t i = 0; i < placements.size(); ++i) {
    Process& p = *placements[i].process;
    const RankImage& rank = st.image.ranks[i];
    // Re-home the process: off the old CPU, onto its target, under the
    // staged address space, with a fresh run generation (adopt) so stale
    // continuations from its previous life are dropped.
    cluster_.node(placements[i].node).cpu().detach(p);
    job.move_process(i, attempt.target[i]);
    auto& cpu = cluster_.node(attempt.target[i]).cpu();
    cpu.adopt(p, attempt.pid[i]);
    const bool ok = p.program().restore_cursor(rank.cursor);
    assert(ok && "a checkpointable program must accept its own cursor");
    (void)ok;
    p.current_op_ = rank.current_op;
    p.op_active_ = rank.op_active;
    p.op_pos_ = rank.op_pos;
    if (p.op_active_ && p.current_op_.kind == Op::Kind::kAccess &&
        cpu.params().batched_touch) {
      p.touch_plan_ = p.current_op_.access.prepare();
    }
    if (comm != nullptr) comm->rebind_node(p.rank, attempt.target[i]);
  }
  if (comm != nullptr) comm->reset_for_restart(st.image.comm_seqs);
  // The staged spaces start fully swapped: the next incremental image must
  // size against a zero swap-out baseline of the new spaces.
  st.out_baseline.assign(placements.size(), 0);
  st.restoring = false;
  st.bad_nodes.clear();
  st.restore_span.reset();
  cluster_.node(placements.front().node)
      .vmm()
      .log()
      .info("job %d restored from checkpoint t=%lld; resuming", job.id(),
            static_cast<long long>(st.image.taken_at));
  sched_.resume_restarted_job(job);
}

void CheckpointManager::give_up_restore(Job& job, JobState& st,
                                        const char* why) {
  st.restoring = false;
  ++st.gen;
  ++stats_.restarts_failed;
  st.restore_span.reset();
  cluster_.node(job.processes().front().node)
      .vmm()
      .log()
      .warn("job %d restart abandoned: %s", job.id(), why);
  sched_.abandon_job(job);
}

double CheckpointManager::compression_ratio(int node) const {
  if (const TierManager* tier = cluster_.node(node).tier()) {
    const auto& pool_stats = tier->pool().stats();
    if (pool_stats.pages_stored > 0) {
      const double ratio =
          static_cast<double>(pool_stats.bytes_stored) /
          (static_cast<double>(pool_stats.pages_stored) *
           static_cast<double>(kPageBytes));
      return std::clamp(ratio, 0.05, 1.0);
    }
  }
  return 1.0;
}

const JobImage* CheckpointManager::image(int job_id) const {
  const auto index = static_cast<std::size_t>(job_id);
  if (index >= states_.size() || !states_[index].image.valid) return nullptr;
  return &states_[index].image;
}

int CheckpointManager::restarts_of(int job_id) const {
  const auto index = static_cast<std::size_t>(job_id);
  return index < states_.size() ? states_[index].restarts : 0;
}

CheckpointManager::JobState& CheckpointManager::state_of(const Job& job) {
  return states_[static_cast<std::size_t>(job.id())];
}

}  // namespace apsim
