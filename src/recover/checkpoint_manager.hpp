#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "gang/gang_scheduler.hpp"
#include "net/mpi.hpp"
#include "recover/job_image.hpp"
#include "recover/restart_planner.hpp"

/// \file checkpoint_manager.hpp
/// Coordinated checkpoint/restart for gang-scheduled jobs. Periodically (and
/// aligned to settled switch generations, so a checkpoint never tears a gang
/// mid-switch) the manager snapshots each job — program cursors, in-flight
/// ops, the open-collective cut, and the live-page layout of every address
/// space — and writes the image through the disk model into a dedicated
/// region beyond the swap partition, so checkpoint overhead is real I/O that
/// shows up in makespan. On a node crash, fencing, or unrecoverable page
/// loss the manager intercepts the gang scheduler's fail path, suspends the
/// job, re-places its ranks on surviving nodes, stages the image into their
/// swap partitions (again as real I/O), rewinds program/comm cursors, and
/// puts the job back into the rotation. With checkpoint_interval = 0 the
/// harness never constructs a manager: no events, no RNG draws, bit-identical
/// runs — the golden suites pin that.

namespace apsim {

struct CheckpointParams {
  /// Time between coordinated checkpoints. Must be > 0 (the harness gates
  /// construction on it).
  SimDuration interval = 60 * kSecond;

  /// Incremental images: size each epoch's write as dirty pages plus pages
  /// swapped out since the last commit, instead of the full live set.
  bool incremental = true;

  /// Retry ladder for checkpoint image writes: capped exponential backoff,
  /// at most max_retries re-issues per request before the whole checkpoint
  /// attempt is abandoned (the previous image stays valid).
  int max_retries = 3;
  SimDuration retry_base = 10 * kMillisecond;
  SimDuration retry_cap = 160 * kMillisecond;

  RestartPlacement placement = RestartPlacement::kSpread;
  LostWorkModel lost_work = LostWorkModel::kCpu;

  /// Give up on a job after this many restarts (crash loops must terminate).
  int max_restarts_per_job = 8;

  /// Longest contiguous run for image/staging writes, in blocks.
  std::int64_t max_io_run = 512;

  /// A restart target must have usable_frames >= freepages_high + headroom.
  std::int64_t frame_headroom = 64;
};

class CheckpointManager : public RecoveryHook {
 public:
  /// Installs itself as the scheduler's recovery hook; the destructor
  /// uninstalls it, so the manager must outlive no scheduler it serves.
  CheckpointManager(Cluster& cluster, GangScheduler& sched,
                    CheckpointParams params);
  ~CheckpointManager() override;

  CheckpointManager(const CheckpointManager&) = delete;
  CheckpointManager& operator=(const CheckpointManager&) = delete;

  /// Resolver from job id to its communicator (nullptr for single-rank
  /// jobs). Install before start().
  void set_comm_resolver(std::function<MpiComm*(int)> resolver) {
    comm_of_ = std::move(resolver);
  }

  /// Attach the run's tracer (nullptr = untraced): per-node "ckpt" spans
  /// for image writes, per-job "restore" spans, retry instants.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  /// Take the epoch-0 (from-scratch) images and arm the periodic tick.
  /// Call after GangScheduler::start().
  void start();

  /// RecoveryHook: intercept a job casualty. Returns true when a restart
  /// was started (or is already in progress) for the job.
  bool on_job_casualty(Job& job, const char* reason) override;

  struct Stats {
    std::uint64_t checkpoints_taken = 0;    ///< committed job images
    std::uint64_t checkpoint_failures = 0;  ///< attempts lost to I/O errors
    std::uint64_t ckpt_io_retries = 0;      ///< image-write re-issues
    std::uint64_t bytes_checkpointed = 0;   ///< raw (pre-compression) bytes
    std::uint64_t pages_staged = 0;         ///< image pages written on restore
    int restarts_started = 0;
    int restarts_failed = 0;                ///< give-ups (no placement/staging)
    SimDuration lost_work = 0;              ///< per lost_work model
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Last committed image for a job (nullptr when none yet).
  [[nodiscard]] const JobImage* image(int job_id) const;
  /// Completed restarts of a job.
  [[nodiscard]] int restarts_of(int job_id) const;

 private:
  struct JobState {
    JobImage image;
    bool checkpointable = true;
    bool ckpt_in_flight = false;
    bool restoring = false;
    std::uint64_t gen = 0;  ///< attempt generation; bumps invalidate in-flight work
    int restarts = 0;
    std::set<int> bad_nodes;  ///< staging failed there during this restart
    std::vector<std::uint64_t> out_baseline;  ///< pages_swapped_out at commit
    std::shared_ptr<TraceSpan> restore_span;
  };

  /// Shared aggregate for one checkpoint attempt's disk writes.
  struct WriteBatch {
    std::uint64_t gen = 0;
    int outstanding = 1;  ///< +1 sentinel until all requests are submitted
    bool failed = false;
    JobImage img;                 ///< pending image, committed on success
    std::uint64_t raw_pages = 0;  ///< pre-compression page count
    std::vector<std::shared_ptr<TraceSpan>> spans;
  };

  /// Shared aggregate for one restore attempt's staging.
  struct StageAttempt {
    std::uint64_t gen = 0;
    std::vector<int> target;                  ///< per rank
    std::vector<Pid> pid;                     ///< per rank, on target node
    std::vector<std::vector<SlotRun>> slots;  ///< per rank staging slots
    int outstanding = 1;
    bool failed = false;
    int failed_node = -1;
  };

  void arm_tick();
  void tick();
  void checkpoint_job(Job& job, JobState& st);
  [[nodiscard]] std::optional<JobImage> snapshot_job(Job& job, JobState& st);
  void write_image(Job& job, JobState& st, JobImage img);
  void submit_ckpt_write(Job& job, int node, BlockNum start, BlockNum nblocks,
                         int attempt, const std::shared_ptr<WriteBatch>& batch);
  void finish_ckpt_write(Job& job, const std::shared_ptr<WriteBatch>& batch);

  void begin_restore(Job& job, JobState& st, const char* reason);
  void plan_and_stage(Job& job);
  void stage(Job& job, JobState& st, std::vector<int> targets);
  void stage_complete(Job& job, const std::shared_ptr<StageAttempt>& attempt);
  void release_staged(const StageAttempt& attempt);
  void fail_staging_node(Job& job, JobState& st, int node);
  void finish_restore(Job& job, JobState& st, const StageAttempt& attempt);
  void give_up_restore(Job& job, JobState& st, const char* why);

  [[nodiscard]] double compression_ratio(int node) const;
  [[nodiscard]] JobState& state_of(const Job& job);

  Cluster& cluster_;
  GangScheduler& sched_;
  CheckpointParams params_;
  std::function<MpiComm*(int)> comm_of_;
  Tracer* tracer_ = nullptr;
  std::vector<JobState> states_;
  /// Per-node rotating write cursor within the checkpoint disk region.
  std::vector<std::int64_t> ckpt_cursor_;
  int settle_defers_ = 0;
  bool started_ = false;
  Stats stats_;
};

}  // namespace apsim
