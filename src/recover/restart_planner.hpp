#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

/// \file restart_planner.hpp
/// Placement planning for checkpoint restarts, plus the small enums the
/// harness config exposes. Kept dependency-free so harness/config.hpp can
/// include it without pulling the whole recovery subsystem.

namespace apsim {

/// Where a restarted job's ranks land on the surviving nodes.
enum class RestartPlacement : std::uint8_t {
  kSpread,  ///< balance ranks across all feasible nodes
  kPacked,  ///< fill the first feasible node before moving to the next
};

/// How the work destroyed by a crash is accounted in lost_work_ms.
enum class LostWorkModel : std::uint8_t {
  kCpu,   ///< CPU time burned since the restored checkpoint was taken
  kWall,  ///< wall-clock time since the restored checkpoint was taken
};

[[nodiscard]] std::string_view to_string(RestartPlacement placement);
[[nodiscard]] std::string_view to_string(LostWorkModel model);

/// Parse "spread" / "packed"; throws std::invalid_argument otherwise.
[[nodiscard]] RestartPlacement parse_restart_placement(std::string_view text);
/// Parse "cpu" / "wall"; throws std::invalid_argument otherwise.
[[nodiscard]] LostWorkModel parse_lost_work_model(std::string_view text);

/// One surviving node offered to the planner, with its staging budgets.
struct RestartCandidate {
  int node = -1;
  std::int64_t free_swap_slots = 0;  ///< slots available for image staging
  std::int64_t usable_frames = 0;    ///< physical frames (wired excluded)
  std::int64_t min_frames = 0;       ///< floor below which the node cannot page
};

/// Pure assignment of ranks to surviving nodes; no simulator state, so the
/// planning policy is unit-testable in isolation.
class RestartPlanner {
 public:
  /// Assign every rank (rank_pages[i] = swap slots its image needs) to a
  /// candidate. A candidate is feasible for a rank while its remaining swap
  /// budget covers the rank's pages and its usable_frames clear min_frames.
  /// kSpread picks the feasible node with the fewest ranks assigned so far
  /// (ties to the lowest node index); kPacked takes the first feasible node
  /// in index order. Returns one node index per rank, or std::nullopt when
  /// some rank cannot be placed.
  [[nodiscard]] static std::optional<std::vector<int>> plan(
      const std::vector<std::int64_t>& rank_pages,
      std::vector<RestartCandidate> candidates, RestartPlacement placement);
};

}  // namespace apsim
