#pragma once

#include <cstdint>
#include <vector>

#include "mem/vmm.hpp"

/// \file page_record.hpp
/// The adaptive page-in recorder (paper §3.3, Figure 4): as a process's
/// pages are flushed at a job switch, record them as (base address, offset)
/// runs — the paper's run-length encoding that keeps the kernel-memory cost
/// of the record small, since flushed pages are largely contiguous. On the
/// process's next switch-in the recorded list is replayed as artificial
/// faults in large block reads.

namespace apsim {

class PageRecorder {
 public:
  /// Record one flushed page. Extends the current run when \p addr is
  /// exactly contiguous with it (the common case for swept address spaces);
  /// otherwise opens a new run.
  void record(VPage addr);

  [[nodiscard]] const std::vector<PageRun>& runs() const { return runs_; }
  [[nodiscard]] std::int64_t pages() const { return pages_; }
  [[nodiscard]] bool empty() const { return runs_.empty(); }

  /// Move the recorded runs out, leaving the recorder empty.
  [[nodiscard]] std::vector<PageRun> take();

  void clear();

  /// Kernel memory the record costs under run-length encoding, vs. what a
  /// flat page list would cost — the saving the paper calls "substantial".
  [[nodiscard]] std::int64_t encoded_bytes() const;
  [[nodiscard]] std::int64_t flat_bytes() const;

 private:
  std::vector<PageRun> runs_;
  std::int64_t pages_ = 0;
};

}  // namespace apsim
