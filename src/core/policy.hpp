#pragma once

#include <string>
#include <string_view>

/// \file policy.hpp
/// The four adaptive paging mechanisms of the paper and their combinations.
/// The evaluation uses the shorthand "so/ao/ai/bg"; parse() accepts exactly
/// that notation (and "orig"/"lru" for the unmodified kernel).

namespace apsim {

struct PolicySet {
  bool selective_out = false;   ///< `so`: evict the outgoing process first
  bool aggressive_out = false;  ///< `ao`: free the incoming WS at the switch
  bool adaptive_in = false;     ///< `ai`: record flushed pages, replay on switch-in
  bool bg_write = false;        ///< `bg`: background-write dirty pages late in quantum

  [[nodiscard]] static PolicySet original() { return {}; }
  [[nodiscard]] static PolicySet all() { return {true, true, true, true}; }

  /// Parse "so/ao/ai/bg" notation; unordered, '/'-separated. "orig", "lru"
  /// and "" give the original policy. Throws std::invalid_argument on an
  /// unknown token.
  [[nodiscard]] static PolicySet parse(std::string_view text);

  /// Canonical "so/ao/ai/bg" rendering ("orig" when none enabled).
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool any() const {
    return selective_out || aggressive_out || adaptive_in || bg_write;
  }

  friend bool operator==(const PolicySet&, const PolicySet&) = default;
};

}  // namespace apsim
