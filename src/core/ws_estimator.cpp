#include "core/ws_estimator.hpp"

#include <cmath>

namespace apsim {

void WsEstimator::observe(std::int64_t ws_pages) {
  if (n_ == 0) {
    value_ = static_cast<double>(ws_pages);
  } else {
    value_ = alpha_ * static_cast<double>(ws_pages) + (1.0 - alpha_) * value_;
  }
  ++n_;
}

std::int64_t WsEstimator::estimate() const {
  return static_cast<std::int64_t>(std::llround(value_));
}

}  // namespace apsim
