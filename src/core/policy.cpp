#include "core/policy.hpp"

#include <stdexcept>

namespace apsim {

PolicySet PolicySet::parse(std::string_view text) {
  PolicySet set;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t sep = text.find('/', pos);
    const std::string_view token =
        text.substr(pos, sep == std::string_view::npos ? text.size() - pos
                                                       : sep - pos);
    if (token == "so") {
      set.selective_out = true;
    } else if (token == "ao") {
      set.aggressive_out = true;
    } else if (token == "ai") {
      set.adaptive_in = true;
    } else if (token == "bg") {
      set.bg_write = true;
    } else if (token == "orig" || token == "lru" || token.empty()) {
      // original kernel: nothing enabled
    } else {
      throw std::invalid_argument("unknown paging policy token: " +
                                  std::string(token));
    }
    if (sep == std::string_view::npos) break;
    pos = sep + 1;
  }
  return set;
}

std::string PolicySet::to_string() const {
  if (!any()) return "orig";
  std::string out;
  auto append = [&out](std::string_view token) {
    if (!out.empty()) out += '/';
    out += token;
  };
  if (selective_out) append("so");
  if (aggressive_out) append("ao");
  if (adaptive_in) append("ai");
  if (bg_write) append("bg");
  return out;
}

}  // namespace apsim
