#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/node.hpp"
#include "core/page_record.hpp"
#include "core/policy.hpp"
#include "core/ws_estimator.hpp"
#include "mem/reclaim.hpp"
#include "metrics/tracer.hpp"

/// \file adaptive_pager.hpp
/// The paper's contribution: per-node adaptive paging driven by gang-switch
/// knowledge. Exposes the paper's kernel API —
///   adaptive_page_out(out_pid, in_pid, ws_size)
///   adaptive_page_in(in_pid)
///   start_bgwrite(pid) / stop_bgwrite()
/// — implemented against the VMM hooks (pluggable reclaim policy, explicit
/// reclaim requests, prefetch, background writeback, eviction observer).

namespace apsim {

/// Selective page-out (paper §3.1, Figure 2): while the outgoing process
/// still has resident pages, evict those — oldest first; only then fall back
/// to the base replacement policy (the clock by default, or any registry
/// policy via set_fallback). Prevents the false eviction of the incoming
/// process's residual working set.
class SelectiveReclaimPolicy final : public ReclaimPolicy {
 public:
  SelectiveReclaimPolicy();

  /// Designate the current outgoing process (kNoPid to disable).
  void set_victim_process(Pid pid);

  [[nodiscard]] Pid victim_process() const { return victim_; }

  /// Replace the base policy consulted once the outgoing process is fully
  /// swapped out. This is the policy-switch actuation point when selective
  /// page-out is enabled (the selective wrapper itself stays installed).
  void set_fallback(std::unique_ptr<ReclaimPolicy> fallback);

  [[nodiscard]] std::string_view fallback_name() const {
    return fallback_->name();
  }

  [[nodiscard]] std::vector<Victim> select_victims(Vmm& vmm,
                                                   std::int64_t max_pages) override;

  [[nodiscard]] std::string_view name() const override { return "selective"; }

  [[nodiscard]] std::unique_ptr<ReclaimPolicy> clone() const override;

 private:
  void rebuild_cache(Vmm& vmm);

  Pid victim_ = kNoPid;
  std::vector<VPage> cache_;          ///< victim's pages, oldest first
  std::size_t cursor_ = 0;
  std::int64_t cache_resident_ = -1;  ///< resident count at build time
  std::unique_ptr<ReclaimPolicy> fallback_;
};

struct AdaptivePagerParams {
  PolicySet policy;

  /// Background writer: batch size per tick and tick interval. The default
  /// rate (64 pages / 50 ms = 5 MB/s) stays well under the disk's streaming
  /// rate; background requests additionally yield to all foreground I/O.
  std::int64_t bg_batch = 64;
  SimDuration bg_interval = 50 * kMillisecond;

  /// Safety factor applied to the working-set estimate before aggressive
  /// page-out.
  double ws_margin = 1.0;

  /// Base replacement policy (registry name). "clock-lru" — the kernel
  /// default — installs nothing and keeps the VMM's constructor policy, so
  /// runs stay bit-identical to the pre-registry tree. Any other name is
  /// installed either directly or as the selective wrapper's fallback.
  std::string reclaim_policy = "clock-lru";
};

class AdaptivePager {
 public:
  AdaptivePager(Node& node, AdaptivePagerParams params);
  ~AdaptivePager();

  AdaptivePager(const AdaptivePager&) = delete;
  AdaptivePager& operator=(const AdaptivePager&) = delete;

  [[nodiscard]] const PolicySet& policy() const { return params_.policy; }
  [[nodiscard]] Node& node() { return node_; }

  /// Declare a process as gang-managed (its evictions are recorded for
  /// adaptive page-in while it is descheduled).
  void register_process(Pid pid);

  // ---- the paper's API ----

  /// Invoked at a job switch, before the incoming process resumes. Applies
  /// selective page-out targeting \p out and, when enabled, aggressively
  /// frees room for \p in's working set (\p ws_pages_hint overrides the
  /// kernel estimate when >= 0, mirroring the API's ws_size argument).
  void adaptive_page_out(Pid out, Pid in, std::int64_t ws_pages_hint = -1);

  /// Replay the pages recorded while \p in was descheduled as artificial
  /// faults in large block reads. \p done (optional) fires when every
  /// started read has landed.
  void adaptive_page_in(Pid in, std::function<void()> done = {});

  /// Begin background-writing \p pid's dirty pages at low priority.
  void start_bgwrite(Pid pid);

  /// Stop background writing (idempotent).
  void stop_bgwrite();

  // ---- scheduler bookkeeping ----

  /// Call when \p in's quantum begins: starts its working-set epoch.
  void on_quantum_start(Pid in);

  /// Call when \p out's quantum ends: feeds the working-set estimator.
  void on_quantum_end(Pid out);

  /// Current working-set estimate for \p pid, in pages (0 if never run).
  [[nodiscard]] std::int64_t ws_estimate(Pid pid) const;

  /// True once the pager gave up on its optimizations after persistent I/O
  /// errors (failed disk, stalled reclaim, or an aborted prefetch replay):
  /// adaptive page-in and background writing become no-ops and the node falls
  /// back to plain demand paging. One-way; fault-free runs never set this.
  [[nodiscard]] bool degraded() const { return degraded_; }

  /// Attach the run's tracer (nullptr = untraced). Emits the switch-phase
  /// async spans "page_out" (until the aggressive free-frame request is
  /// satisfied) and "page_in" (until the replay drains), plus replay-issue
  /// and bg-write instants, on \p track.
  void set_tracer(Tracer* tracer, int track) {
    tracer_ = tracer;
    trace_track_ = track;
  }

  // ---- runtime actuators (adaptive control plane) ----

  /// Background-writer batch per tick, clamped to >= 1.
  void set_bg_batch(std::int64_t pages) {
    params_.bg_batch = std::max<std::int64_t>(1, pages);
  }
  [[nodiscard]] std::int64_t bg_batch() const { return params_.bg_batch; }

  /// Swap the base replacement policy at runtime (registry name). With
  /// selective page-out enabled the new policy becomes the selective
  /// wrapper's fallback — the wrapper itself stays installed; otherwise it
  /// replaces the VMM's policy directly. Throws std::invalid_argument on
  /// unknown names. No-op when \p name is already active.
  void set_base_reclaim_policy(std::string_view name);

  /// Registry name of the active base policy.
  [[nodiscard]] std::string_view base_reclaim_policy() const {
    return base_policy_name_;
  }

  /// Recorder contents for \p pid (for tests and diagnostics).
  [[nodiscard]] const PageRecorder& recorder(Pid pid) const;

  struct Stats {
    std::uint64_t pages_recorded = 0;
    std::uint64_t pages_replayed = 0;
    std::uint64_t bg_pages_written = 0;
    std::uint64_t aggressive_requests = 0;
    std::uint64_t switches = 0;
    std::uint64_t degradations = 0;  ///< times the pager entered degraded mode
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void on_evict(Pid pid, VPage vpage);
  void schedule_bg_tick();
  void enter_degraded(const char* reason);
  /// Degrade if the node shows persistent I/O trouble; returns degraded().
  bool check_degraded();

  Node& node_;
  AdaptivePagerParams params_;
  SelectiveReclaimPolicy* selective_ = nullptr;  ///< owned by the VMM
  std::string base_policy_name_ = "clock-lru";

  std::set<Pid> managed_;
  std::map<Pid, PageRecorder> recorders_;
  std::map<Pid, WsEstimator> estimators_;
  Pid current_in_ = kNoPid;

  Pid bg_pid_ = kNoPid;
  EventHandle bg_event_;
  bool degraded_ = false;
  Tracer* tracer_ = nullptr;
  int trace_track_ = 0;

  Stats stats_;
};

}  // namespace apsim
