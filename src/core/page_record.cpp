#include "core/page_record.hpp"

namespace apsim {

void PageRecorder::record(VPage addr) {
  ++pages_;
  if (!runs_.empty()) {
    PageRun& last = runs_.back();
    if (addr == last.start + last.count) {
      ++last.count;
      return;
    }
  }
  runs_.push_back(PageRun{addr, 1});
}

std::vector<PageRun> PageRecorder::take() {
  auto out = std::move(runs_);
  runs_.clear();
  pages_ = 0;
  return out;
}

void PageRecorder::clear() {
  runs_.clear();
  pages_ = 0;
}

std::int64_t PageRecorder::encoded_bytes() const {
  // One (base, offset) record per run: 8-byte address + 4-byte count.
  return static_cast<std::int64_t>(runs_.size()) * 12;
}

std::int64_t PageRecorder::flat_bytes() const {
  return pages_ * 8;  // one 8-byte address per page
}

}  // namespace apsim
