#pragma once

#include <cstdint>

/// \file ws_estimator.hpp
/// Working-set size estimator (paper §3.2): the kernel estimates the
/// incoming process's working set from the page references observed during
/// its previous time quanta. We keep an exponentially weighted average
/// biased toward the most recent quantum, which tracks phase changes while
/// smoothing single-quantum noise.

namespace apsim {

class WsEstimator {
 public:
  /// \p alpha is the weight of the newest observation (0 < alpha <= 1).
  explicit WsEstimator(double alpha = 0.7) : alpha_(alpha) {}

  /// Record the pages referenced during the process's just-ended quantum.
  void observe(std::int64_t ws_pages);

  /// Current estimate in pages; 0 until the first observation.
  [[nodiscard]] std::int64_t estimate() const;

  [[nodiscard]] std::int64_t observations() const { return n_; }

 private:
  double alpha_;
  double value_ = 0.0;
  std::int64_t n_ = 0;
};

}  // namespace apsim
