#include "core/adaptive_pager.hpp"

#include <algorithm>
#include <cassert>
#include <memory>

#include "mem/reclaim_registry.hpp"

namespace apsim {

// ---------------------------------------------------------------------------
// SelectiveReclaimPolicy

SelectiveReclaimPolicy::SelectiveReclaimPolicy()
    : fallback_(std::make_unique<ClockReclaimPolicy>()) {}

void SelectiveReclaimPolicy::set_fallback(
    std::unique_ptr<ReclaimPolicy> fallback) {
  assert(fallback != nullptr);
  fallback_ = std::move(fallback);
}

void SelectiveReclaimPolicy::set_victim_process(Pid pid) {
  victim_ = pid;
  cache_.clear();
  cursor_ = 0;
  cache_resident_ = -1;
}

std::unique_ptr<ReclaimPolicy> SelectiveReclaimPolicy::clone() const {
  auto copy = std::make_unique<SelectiveReclaimPolicy>();
  copy->victim_ = victim_;
  copy->cache_ = cache_;
  copy->cursor_ = cursor_;
  copy->cache_resident_ = cache_resident_;
  auto fallback = fallback_->clone();
  if (!fallback) return nullptr;  // fallback not snapshottable
  copy->fallback_ = std::move(fallback);
  return copy;
}

void SelectiveReclaimPolicy::rebuild_cache(Vmm& vmm) {
  cache_.clear();
  cursor_ = 0;
  auto& as = vmm.space(victim_);
  cache_resident_ = as.resident_pages();
  auto& pt = as.page_table();
  std::vector<std::pair<SimTime, VPage>> pages;
  pages.reserve(static_cast<std::size_t>(as.resident_pages()));
  const std::int64_t npages = pt.num_pages();
  for (VPage v = pt.next_present(0); v < npages; v = pt.next_present(v + 1)) {
    const auto pte = pt.at(v);
    if (!pte.io_busy()) pages.emplace_back(pte.last_ref(), v);
  }
  // Oldest first (paper: "in the order of decreasing age"); ties resolve by
  // vpage so sweeps stay address-contiguous for the write batcher.
  std::sort(pages.begin(), pages.end());
  cache_.reserve(pages.size());
  for (const auto& [ref, v] : pages) cache_.push_back(v);
}

std::vector<Victim> SelectiveReclaimPolicy::select_victims(
    Vmm& vmm, std::int64_t max_pages) {
  std::vector<Victim> out;
  if (max_pages <= 0) return out;

  if (victim_ != kNoPid) {
    auto& as = vmm.space(victim_);
    if (as.alive() && as.resident_pages() > 0) {
      if (cache_resident_ < 0) rebuild_cache(vmm);
      for (int attempt = 0; attempt < 2 && out.empty(); ++attempt) {
        while (cursor_ < cache_.size() && std::ssize(out) < max_pages) {
          const VPage v = cache_[cursor_++];
          const auto pte = as.page_table().at(v);
          if (pte.present() && !pte.io_busy()) out.push_back(Victim{victim_, v});
        }
        if (!out.empty()) break;
        // Cache exhausted but pages remain resident (mapped after the cache
        // was built, e.g. in-flight page-ins landing): rebuild once.
        if (cursor_ >= cache_.size() && as.resident_pages() > 0 &&
            cache_resident_ != as.resident_pages()) {
          rebuild_cache(vmm);
        } else {
          break;
        }
      }
      if (!out.empty()) return out;
    }
  }
  // The outgoing process is fully swapped out (or none designated): the
  // base replacement takes over, exactly as in the paper's Figure 2.
  return fallback_->select_victims(vmm, max_pages);
}

// ---------------------------------------------------------------------------
// AdaptivePager

AdaptivePager::AdaptivePager(Node& node, AdaptivePagerParams params)
    : node_(node), params_(std::move(params)) {
  // "clock-lru" is the VMM's constructor default: install nothing so the
  // no-selective, default-policy path stays bit-identical to the
  // pre-registry tree.
  std::unique_ptr<ReclaimPolicy> base;
  if (params_.reclaim_policy != "clock-lru") {
    base = make_reclaim_policy(params_.reclaim_policy);
    base_policy_name_ = params_.reclaim_policy;
  }
  if (params_.policy.selective_out) {
    auto policy = std::make_unique<SelectiveReclaimPolicy>();
    if (base) policy->set_fallback(std::move(base));
    selective_ = policy.get();
    node_.vmm().set_reclaim_policy(std::move(policy));
  } else if (base) {
    node_.vmm().set_reclaim_policy(std::move(base));
  }
  if (params_.policy.adaptive_in) {
    node_.vmm().set_evict_observer(
        [this](Pid pid, VPage vpage) { on_evict(pid, vpage); });
  }
}

AdaptivePager::~AdaptivePager() {
  stop_bgwrite();
  if (params_.policy.adaptive_in) {
    node_.vmm().set_evict_observer(nullptr);
  }
}

void AdaptivePager::register_process(Pid pid) {
  managed_.insert(pid);
  recorders_.try_emplace(pid);
  estimators_.try_emplace(pid);
}

void AdaptivePager::on_evict(Pid pid, VPage vpage) {
  // Record flushes of any managed process that is not the one currently
  // scheduled; its recorder is replayed (and cleared) at its next switch-in.
  if (pid == current_in_) return;
  auto it = recorders_.find(pid);
  if (it == recorders_.end()) return;
  it->second.record(vpage);
  ++stats_.pages_recorded;
}

void AdaptivePager::enter_degraded(const char* reason) {
  if (degraded_) return;
  degraded_ = true;
  ++stats_.degradations;
  node_.vmm().log().warn(
      "adaptive pager degraded to plain demand paging: %s", reason);
  stop_bgwrite();
}

bool AdaptivePager::check_degraded() {
  if (!degraded_) {
    if (node_.disk().failed()) {
      enter_degraded("swap disk failed");
    } else if (node_.vmm().reclaim_stalled()) {
      enter_degraded("reclaim stalled (swap exhausted or unwritable)");
    }
  }
  return degraded_;
}

void AdaptivePager::adaptive_page_out(Pid out, Pid in,
                                      std::int64_t ws_pages_hint) {
  ++stats_.switches;
  // Async: the phase may outlive this call (it ends when the aggressive
  // free-frame request is satisfied). Without an aggressive wait the span
  // closes on scope exit, i.e. zero width at the switch instant.
  TraceSpan page_out_span;
  if (tracer_ != nullptr) {
    page_out_span = tracer_->async_span(
        trace_track_, "switch", "page_out",
        {{"out", static_cast<double>(out)}, {"in", static_cast<double>(in)}});
  }
  if (selective_ != nullptr) selective_->set_victim_process(out);

  if (params_.policy.aggressive_out && !check_degraded()) {
    std::int64_t ws = ws_pages_hint >= 0 ? ws_pages_hint : ws_estimate(in);
    ws = static_cast<std::int64_t>(static_cast<double>(ws) * params_.ws_margin);
    auto& vmm = node_.vmm();
    // The incoming process's residual pages already serve part of its
    // working set; room is only needed for the missing remainder. (Draining
    // the outgoing process beyond that would just enlarge both directions
    // of the next switch.)
    ws -= vmm.space(in).resident_pages();
    if (ws > 0) {
      const std::int64_t wanted = ws + vmm.params().freepages_high;
      // Never demand more than evicting the outgoing process can provide,
      // and stop once it is fully swapped out (the incoming process may be
      // consuming the freed frames concurrently, so the free-frame target
      // is advisory): otherwise the fallback policy would start eating the
      // incoming process's own pages to meet the target.
      const std::int64_t achievable =
          vmm.free_frames() + vmm.space(out).resident_pages();
      const std::int64_t target =
          std::min({wanted, achievable, vmm.frames().usable_frames()});
      if (target > vmm.free_frames()) {
        ++stats_.aggressive_requests;
        std::function<void()> on_satisfied = [] {};
        if (page_out_span.active()) {
          // std::function needs copyable captures; park the move-only span
          // in a shared_ptr. Untraced runs keep the captureless lambda.
          auto sp = std::make_shared<TraceSpan>(std::move(page_out_span));
          on_satisfied = [sp] { sp->end(); };
        }
        Vmm* vmm_ptr = &vmm;  // NOLINT: outlives the waiter (owns the queue)
        vmm.request_free_frames(
            target, std::move(on_satisfied), /*best_effort=*/true,
            /*give_up=*/[vmm_ptr, out] {
              return vmm_ptr->space(out).resident_pages() == 0;
            });
      }
    }
  }
}

void AdaptivePager::adaptive_page_in(Pid in, std::function<void()> done) {
  if (tracer_ != nullptr) {
    // Wrap before any early-out so every switch shows a page_in phase; it
    // ends when the replay drains (or immediately when there is none).
    auto sp = std::make_shared<TraceSpan>(tracer_->async_span(
        trace_track_, "switch", "page_in", {{"in", static_cast<double>(in)}}));
    done = [sp, done = std::move(done)] {
      sp->end();
      if (done) done();
    };
  }
  if (!params_.policy.adaptive_in || check_degraded()) {
    if (done) node_.vmm().sim().after(0, std::move(done));
    return;
  }
  auto it = recorders_.find(in);
  if (it == recorders_.end() || it->second.empty()) {
    if (done) node_.vmm().sim().after(0, std::move(done));
    return;
  }
  auto runs = it->second.take();
  std::int64_t total = 0;
  for (const auto& run : runs) total += run.count;
  stats_.pages_replayed += static_cast<std::uint64_t>(total);
  if (tracer_ != nullptr) {
    tracer_->instant(trace_track_, "pager", "replay_issue",
                     {{"pages", static_cast<double>(total)},
                      {"runs", static_cast<double>(runs.size())}});
  }
  // If the replay aborts on an I/O error the VMM counts a prefetch abort;
  // seeing one means the disk is unreliable, so give up on replays for good.
  const std::uint64_t aborts_before = node_.vmm().stats().prefetch_aborts;
  node_.vmm().prefetch(
      in, std::move(runs),
      [this, aborts_before, done = std::move(done)]() mutable {
        if (node_.vmm().stats().prefetch_aborts > aborts_before) {
          enter_degraded("prefetch replay aborted on I/O error");
        }
        if (done) done();
      });
}

void AdaptivePager::start_bgwrite(Pid pid) {
  if (!params_.policy.bg_write || check_degraded()) return;
  stop_bgwrite();
  bg_pid_ = pid;
  schedule_bg_tick();
}

void AdaptivePager::stop_bgwrite() {
  if (bg_pid_ == kNoPid) return;
  bg_pid_ = kNoPid;
  node_.vmm().sim().cancel(bg_event_);
}

void AdaptivePager::schedule_bg_tick() {
  bg_event_ = node_.vmm().sim().after(params_.bg_interval, [this] {
    if (bg_pid_ == kNoPid) return;
    // The target died (job failed / node-local kill) or the disk went bad:
    // stop rescheduling so the event queue can quiesce.
    if (!node_.vmm().space(bg_pid_).alive() || check_degraded()) {
      bg_pid_ = kNoPid;
      return;
    }
    node_.vmm().writeback_dirty(
        bg_pid_, params_.bg_batch, IoPriority::kBackground,
        [this](std::int64_t written) {
          stats_.bg_pages_written += static_cast<std::uint64_t>(written);
          if (tracer_ != nullptr && written > 0) {
            tracer_->instant(trace_track_, "pager", "bgwrite",
                             {{"pages", static_cast<double>(written)}});
          }
        });
    schedule_bg_tick();
  });
}

void AdaptivePager::on_quantum_start(Pid in) {
  current_in_ = in;
  node_.vmm().begin_ws_epoch(in);
}

void AdaptivePager::on_quantum_end(Pid out) {
  auto it = estimators_.find(out);
  if (it == estimators_.end()) return;
  it->second.observe(node_.vmm().space(out).ws_pages());
}

std::int64_t AdaptivePager::ws_estimate(Pid pid) const {
  auto it = estimators_.find(pid);
  return it == estimators_.end() ? 0 : it->second.estimate();
}

void AdaptivePager::set_base_reclaim_policy(std::string_view name) {
  if (name == base_policy_name_) return;
  auto base = make_reclaim_policy(name);  // throws on unknown names
  base_policy_name_ = std::string(name);
  if (selective_ != nullptr) {
    selective_->set_fallback(std::move(base));
  } else {
    node_.vmm().set_reclaim_policy(std::move(base));
  }
}

const PageRecorder& AdaptivePager::recorder(Pid pid) const {
  static const PageRecorder kEmpty;
  auto it = recorders_.find(pid);
  return it == recorders_.end() ? kEmpty : it->second;
}

}  // namespace apsim
