#pragma once

#include <cstdint>
#include <functional>

#include "fault/fault_plan.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

/// \file fault_injector.hpp
/// Runtime evaluator of a FaultPlan. One injector per Cluster; consumers
/// (Disk for I/O faults, GangScheduler for control-plane faults) hold a
/// nullable pointer and query it per event. The injector derives its RNG
/// stream from the Simulator's root RNG at construction, so chaos runs are
/// bit-reproducible and a Cluster without a plan never constructs one —
/// fault-free runs draw nothing and stay bit-identical to a build without
/// this subsystem.

namespace apsim {

class FaultInjector {
 public:
  FaultInjector(Simulator& sim, FaultPlan plan)
      : sim_(sim), plan_(std::move(plan)), rng_(sim.rng()()) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// Outcome of one disk request on \p node at the current virtual time.
  struct DiskOutcome {
    bool fail = false;          ///< complete the transfer with an I/O error
    double slow_factor = 1.0;   ///< multiply the service time
  };
  [[nodiscard]] DiskOutcome on_disk_request(int node, bool write);

  /// Outcome of one gang-scheduler control message to \p node.
  struct SignalOutcome {
    bool drop = false;          ///< the message is lost
    SimDuration extra_delay = 0;
  };
  [[nodiscard]] SignalOutcome on_control_signal(int node);

  /// Schedule every kNodeCrash spec as a simulator event invoking \p crash
  /// with the node index at the spec's time. Call exactly once.
  void schedule_crashes(std::function<void(int)> crash);

  /// True when a compressed-tier store on \p node should be rejected right
  /// now (the page falls back to the disk path).
  [[nodiscard]] bool on_tier_store(int node);

  /// True when a checkpoint image write on \p node should fail right now
  /// (the checkpoint manager's retry ladder handles it).
  [[nodiscard]] bool on_ckpt_write(int node);

  struct Stats {
    std::uint64_t disk_errors_injected = 0;
    std::uint64_t disk_requests_slowed = 0;
    std::uint64_t signals_dropped = 0;
    std::uint64_t signals_delayed = 0;
    std::uint64_t node_crashes = 0;
    std::uint64_t tier_stores_rejected = 0;
    std::uint64_t ckpt_writes_failed = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  Simulator& sim_;
  FaultPlan plan_;
  Rng rng_;
  Stats stats_;
};

}  // namespace apsim
