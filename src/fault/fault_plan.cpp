#include "fault/fault_plan.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "sim/rng.hpp"

namespace apsim {

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDiskTransient: return "disk_transient";
    case FaultKind::kDiskPersistent: return "disk_persistent";
    case FaultKind::kDiskSlow: return "disk_slow";
    case FaultKind::kSignalDelay: return "signal_delay";
    case FaultKind::kSignalDrop: return "signal_drop";
    case FaultKind::kNodeCrash: return "node_crash";
    case FaultKind::kTierFault: return "tier_fault";
    case FaultKind::kCkptFault: return "ckpt_fault";
  }
  return "?";
}

namespace {

[[nodiscard]] FaultKind parse_kind(std::string_view token) {
  for (FaultKind kind :
       {FaultKind::kDiskTransient, FaultKind::kDiskPersistent,
        FaultKind::kDiskSlow, FaultKind::kSignalDelay, FaultKind::kSignalDrop,
        FaultKind::kNodeCrash, FaultKind::kTierFault, FaultKind::kCkptFault}) {
    if (token == to_string(kind)) return kind;
  }
  throw std::invalid_argument("fault: unknown kind '" + std::string(token) +
                              "'");
}

[[nodiscard]] double parse_number(std::string_view value,
                                  std::string_view key) {
  // std::from_chars, not stod: rejects trailing junk and locale quirks; the
  // isfinite check additionally rejects "inf"/"nan", which from_chars still
  // parses — no fault knob has a meaningful non-finite setting.
  double out = 0.0;
  const auto* begin = value.data();
  const auto* end = value.data() + value.size();
  const auto result = std::from_chars(begin, end, out);
  if (result.ec != std::errc{} || result.ptr != end || !std::isfinite(out)) {
    throw std::invalid_argument("fault: bad number for '" + std::string(key) +
                                "': " + std::string(value));
  }
  return out;
}

}  // namespace

FaultSpec FaultSpec::parse(std::string_view text) {
  // Tokenize on whitespace: first token is the kind, the rest key=value.
  std::vector<std::string_view> tokens;
  std::size_t pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
    std::size_t start = pos;
    while (pos < text.size() && !std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
    if (pos > start) tokens.push_back(text.substr(start, pos - start));
  }
  if (tokens.empty()) throw std::invalid_argument("fault: empty spec");

  FaultSpec spec;
  spec.kind = parse_kind(tokens[0]);
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string_view token = tokens[i];
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("fault: expected key=value, got '" +
                                  std::string(token) + "'");
    }
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (key == "node") {
      spec.node = static_cast<int>(parse_number(value, key));
    } else if (key == "start_s" || key == "at_s") {
      spec.start = static_cast<SimTime>(parse_number(value, key) *
                                        static_cast<double>(kSecond));
    } else if (key == "end_s") {
      spec.end = static_cast<SimTime>(parse_number(value, key) *
                                      static_cast<double>(kSecond));
    } else if (key == "p") {
      spec.probability = parse_number(value, key);
    } else if (key == "slow") {
      spec.slow_factor = parse_number(value, key);
    } else if (key == "delay_ms") {
      spec.extra_delay = static_cast<SimDuration>(
          parse_number(value, key) * static_cast<double>(kMillisecond));
    } else {
      throw std::invalid_argument("fault: unknown key '" + std::string(key) +
                                  "'");
    }
  }

  if (spec.probability < 0.0 || spec.probability > 1.0) {
    throw std::invalid_argument("fault: p must be in [0, 1]");
  }
  if (spec.slow_factor < 1.0) {
    throw std::invalid_argument("fault: slow must be >= 1");
  }
  if (spec.extra_delay < 0) {
    throw std::invalid_argument("fault: delay_ms must be >= 0");
  }
  if (spec.start < 0 || spec.end < spec.start) {
    throw std::invalid_argument("fault: window must satisfy 0 <= start <= end");
  }
  if (spec.kind == FaultKind::kDiskSlow && spec.slow_factor == 1.0) {
    throw std::invalid_argument("fault: disk_slow needs slow=<factor>");
  }
  if (spec.kind == FaultKind::kSignalDelay && spec.extra_delay == 0) {
    throw std::invalid_argument("fault: signal_delay needs delay_ms=<ms>");
  }
  return spec;
}

std::string FaultSpec::to_string() const {
  char buf[192];
  std::string out{apsim::to_string(kind)};
  if (node >= 0) {
    std::snprintf(buf, sizeof buf, " node=%d", node);
    out += buf;
  }
  if (kind == FaultKind::kNodeCrash) {
    std::snprintf(buf, sizeof buf, " at_s=%.3f", to_seconds(start));
    out += buf;
    return out;
  }
  if (start > 0) {
    std::snprintf(buf, sizeof buf, " start_s=%.3f", to_seconds(start));
    out += buf;
  }
  if (end != std::numeric_limits<SimTime>::max()) {
    std::snprintf(buf, sizeof buf, " end_s=%.3f", to_seconds(end));
    out += buf;
  }
  if (probability != 1.0) {
    std::snprintf(buf, sizeof buf, " p=%g", probability);
    out += buf;
  }
  if (kind == FaultKind::kDiskSlow) {
    std::snprintf(buf, sizeof buf, " slow=%g", slow_factor);
    out += buf;
  }
  if (kind == FaultKind::kSignalDelay) {
    std::snprintf(buf, sizeof buf, " delay_ms=%.3f",
                  to_milliseconds(extra_delay));
    out += buf;
  }
  return out;
}

FaultPlan FaultPlan::random(std::uint64_t seed, int nodes, SimTime horizon) {
  Rng rng(seed ^ 0xFA17FA17FA17FA17ULL);
  FaultPlan plan;

  auto window = [&](FaultSpec& spec) {
    // Start somewhere in the first 60% of the horizon, last at most 25% of
    // it: every window closes well before the run must quiesce.
    const auto h = static_cast<double>(horizon);
    spec.start = static_cast<SimTime>(rng.uniform(0.05, 0.6) * h);
    spec.end = spec.start + static_cast<SimTime>(rng.uniform(0.02, 0.25) * h);
  };

  const int n_faults = 1 + static_cast<int>(rng.next_below(3));
  for (int i = 0; i < n_faults; ++i) {
    FaultSpec spec;
    spec.node = static_cast<int>(rng.next_below(
                    static_cast<std::uint64_t>(nodes) + 1)) - 1;  // -1 = all
    switch (rng.next_below(5)) {
      case 0:
        spec.kind = FaultKind::kDiskTransient;
        window(spec);
        spec.probability = rng.uniform(0.01, 0.4);
        break;
      case 1:
        spec.kind = FaultKind::kDiskSlow;
        window(spec);
        spec.slow_factor = rng.uniform(1.5, 8.0);
        break;
      case 2:
        spec.kind = FaultKind::kSignalDrop;
        window(spec);
        spec.probability = rng.uniform(0.05, 0.6);
        break;
      case 3:
        spec.kind = FaultKind::kSignalDelay;
        window(spec);
        spec.extra_delay = static_cast<SimDuration>(
            rng.uniform(0.5, 20.0) * static_cast<double>(kMillisecond));
        break;
      case 4:
        spec.kind = FaultKind::kDiskTransient;
        window(spec);
        spec.probability = rng.uniform(0.3, 1.0);
        break;
    }
    plan.add(spec);
  }

  // Sometimes crash one node; never more than one, so that on multi-node
  // clusters at least one node always survives.
  if (nodes > 1 && rng.bernoulli(0.35)) {
    FaultSpec crash;
    crash.kind = FaultKind::kNodeCrash;
    crash.node = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nodes)));
    crash.start = static_cast<SimTime>(
        rng.uniform(0.2, 0.7) * static_cast<double>(horizon));
    plan.add(crash);
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const auto& spec : specs) {
    if (!out.empty()) out += "; ";
    out += spec.to_string();
  }
  return out.empty() ? "(no faults)" : out;
}

}  // namespace apsim
