#include "fault/fault_injector.hpp"

namespace apsim {

FaultInjector::DiskOutcome FaultInjector::on_disk_request(int node,
                                                          bool /*write*/) {
  DiskOutcome out;
  const SimTime now = sim_.now();
  for (const auto& spec : plan_.specs) {
    if (!spec.applies(node, now)) continue;
    switch (spec.kind) {
      case FaultKind::kDiskTransient:
      case FaultKind::kDiskPersistent:
        if (rng_.bernoulli(spec.probability)) out.fail = true;
        break;
      case FaultKind::kDiskSlow:
        out.slow_factor *= spec.slow_factor;
        break;
      default:
        break;
    }
  }
  if (out.fail) ++stats_.disk_errors_injected;
  if (out.slow_factor != 1.0) ++stats_.disk_requests_slowed;
  return out;
}

FaultInjector::SignalOutcome FaultInjector::on_control_signal(int node) {
  SignalOutcome out;
  const SimTime now = sim_.now();
  for (const auto& spec : plan_.specs) {
    if (!spec.applies(node, now)) continue;
    switch (spec.kind) {
      case FaultKind::kSignalDrop:
        if (rng_.bernoulli(spec.probability)) out.drop = true;
        break;
      case FaultKind::kSignalDelay:
        out.extra_delay += spec.extra_delay;
        break;
      default:
        break;
    }
  }
  if (out.drop) {
    ++stats_.signals_dropped;
  } else if (out.extra_delay > 0) {
    ++stats_.signals_delayed;
  }
  return out;
}

bool FaultInjector::on_tier_store(int node) {
  const SimTime now = sim_.now();
  for (const auto& spec : plan_.specs) {
    if (spec.kind != FaultKind::kTierFault || !spec.applies(node, now)) {
      continue;
    }
    if (rng_.bernoulli(spec.probability)) {
      ++stats_.tier_stores_rejected;
      return true;
    }
  }
  return false;
}

bool FaultInjector::on_ckpt_write(int node) {
  const SimTime now = sim_.now();
  for (const auto& spec : plan_.specs) {
    if (spec.kind != FaultKind::kCkptFault || !spec.applies(node, now)) {
      continue;
    }
    if (rng_.bernoulli(spec.probability)) {
      ++stats_.ckpt_writes_failed;
      return true;
    }
  }
  return false;
}

void FaultInjector::schedule_crashes(std::function<void(int)> crash) {
  for (const auto& spec : plan_.specs) {
    if (spec.kind != FaultKind::kNodeCrash || spec.node < 0) continue;
    sim_.at(spec.start, [this, crash, node = spec.node] {
      ++stats_.node_crashes;
      crash(node);
    });
  }
}

}  // namespace apsim
