#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

/// \file fault_plan.hpp
/// Declarative fault schedule for chaos experiments. A FaultPlan is a list of
/// timed/probabilistic FaultSpecs; the FaultInjector evaluates it at run time
/// with an RNG stream derived from the Simulator seed, so every chaos run is
/// bit-reproducible. An empty plan means a fault-free run: the consumers then
/// take the exact code paths of a build without the fault subsystem.

namespace apsim {

enum class FaultKind : std::uint8_t {
  kDiskTransient,   ///< each disk request fails with `probability` inside the window
  kDiskPersistent,  ///< every disk request fails from `start` on (probability defaults to 1)
  kDiskSlow,        ///< fail-slow device: service time x slow_factor inside the window
  kSignalDelay,     ///< gang control messages gain extra_delay inside the window
  kSignalDrop,      ///< gang control messages are lost with `probability` inside the window
  kNodeCrash,       ///< the whole node dies at `start`
  kTierFault,       ///< compressed-tier stores fail with `probability` inside the
                    ///< window (pages fall back to disk; resident pool data
                    ///< stays readable)
  kCkptFault,       ///< checkpoint image writes fail with `probability` inside
                    ///< the window (the checkpoint retry ladder re-issues them)
};

[[nodiscard]] std::string_view to_string(FaultKind kind);

struct FaultSpec {
  FaultKind kind = FaultKind::kDiskTransient;

  /// Target node index; -1 applies to every node.
  int node = -1;

  /// Active window [start, end); kNodeCrash fires once at `start`.
  SimTime start = 0;
  SimTime end = std::numeric_limits<SimTime>::max();

  /// Per-event probability (disk errors, signal drops); 1.0 = always.
  double probability = 1.0;

  /// Service-time multiplier for kDiskSlow (>= 1.0).
  double slow_factor = 1.0;

  /// Added control-message latency for kSignalDelay.
  SimDuration extra_delay = 0;

  /// True when the spec targets \p node (or all nodes) and `now` falls in
  /// the active window.
  [[nodiscard]] bool applies(int target_node, SimTime now) const {
    return (node < 0 || node == target_node) && now >= start && now < end;
  }

  /// Render as the scenario-file syntax parse() accepts.
  [[nodiscard]] std::string to_string() const;

  /// Parse one spec from scenario-file syntax, e.g.
  ///   "disk_transient node=0 start_s=10 end_s=60 p=0.05"
  ///   "disk_slow start_s=30 end_s=90 slow=4"
  ///   "signal_drop node=1 p=0.2"
  ///   "signal_delay delay_ms=5"
  ///   "node_crash node=1 at_s=120"
  /// Throws std::invalid_argument on malformed input or out-of-range values.
  [[nodiscard]] static FaultSpec parse(std::string_view text);
};

struct FaultPlan {
  std::vector<FaultSpec> specs;

  [[nodiscard]] bool empty() const { return specs.empty(); }

  FaultPlan& add(FaultSpec spec) {
    specs.push_back(spec);
    return *this;
  }

  [[nodiscard]] bool has(FaultKind kind) const {
    for (const auto& s : specs) {
      if (s.kind == kind) return true;
    }
    return false;
  }

  /// True when the plan can interfere with the gang scheduler's control
  /// messages or kill nodes — the cases a switch watchdog must cover.
  [[nodiscard]] bool disturbs_control_plane() const {
    return has(FaultKind::kSignalDrop) || has(FaultKind::kSignalDelay) ||
           has(FaultKind::kNodeCrash);
  }

  /// Randomized plan for chaos testing: one to three faults with bounded
  /// probabilities and windows inside [0, horizon), plus (sometimes) a
  /// single node crash, so that runs always quiesce and — on multi-node
  /// clusters — some node can survive. Deterministic in `seed`.
  [[nodiscard]] static FaultPlan random(std::uint64_t seed, int nodes,
                                        SimTime horizon);

  [[nodiscard]] std::string to_string() const;
};

}  // namespace apsim
