#include "workloads/spec.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

namespace apsim {

std::string_view to_string(NpbApp app) {
  switch (app) {
    case NpbApp::kLU: return "LU";
    case NpbApp::kSP: return "SP";
    case NpbApp::kCG: return "CG";
    case NpbApp::kIS: return "IS";
    case NpbApp::kMG: return "MG";
  }
  return "?";
}

std::string_view to_string(NpbClass cls) {
  switch (cls) {
    case NpbClass::kS: return "S";
    case NpbClass::kW: return "W";
    case NpbClass::kA: return "A";
    case NpbClass::kB: return "B";
    case NpbClass::kC: return "C";
  }
  return "?";
}

NpbApp parse_app(std::string_view name) {
  for (NpbApp app : kAllApps) {
    if (name == to_string(app)) return app;
  }
  throw std::invalid_argument("unknown NPB app: " + std::string(name));
}

NpbClass parse_class(std::string_view name) {
  for (NpbClass cls : {NpbClass::kS, NpbClass::kW, NpbClass::kA, NpbClass::kB,
                       NpbClass::kC}) {
    if (name == to_string(cls)) return cls;
  }
  throw std::invalid_argument("unknown NPB class: " + std::string(name));
}

namespace {

/// Footprint scaling across data classes, relative to class B.
[[nodiscard]] double class_scale(NpbClass cls) {
  switch (cls) {
    case NpbClass::kS: return 0.02;
    case NpbClass::kW: return 0.08;
    case NpbClass::kA: return 0.25;
    case NpbClass::kB: return 1.0;
    case NpbClass::kC: return 4.0;
  }
  return 1.0;
}

/// Iteration-count scaling across classes (larger classes run more steps).
[[nodiscard]] double iter_scale(NpbClass cls) {
  switch (cls) {
    case NpbClass::kS: return 0.25;
    case NpbClass::kW: return 0.5;
    case NpbClass::kA: return 0.8;
    case NpbClass::kB: return 1.0;
    case NpbClass::kC: return 1.2;
  }
  return 1.0;
}

}  // namespace

double WorkloadSpec::footprint_mb(int nprocs) const {
  assert(nprocs >= 1);
  if (nprocs == 1) return total_footprint_mb;
  const double share = total_footprint_mb / static_cast<double>(nprocs);
  return share * (1.0 + replication);
}

std::int64_t WorkloadSpec::footprint_pages(int nprocs) const {
  return mb_to_pages(footprint_mb(nprocs));
}

std::int64_t WorkloadSpec::expected_ws_pages(int nprocs) const {
  const auto npages = static_cast<double>(footprint_pages(nprocs));
  double ws = 0.0;
  for (const auto& phase : phases) {
    const double region = phase.region_len * npages;
    const double touches = phase.touches_factor * region;
    double distinct = 0.0;
    switch (phase.pattern) {
      case AccessChunk::Pattern::kSequential:
      case AccessChunk::Pattern::kStrided:
        distinct = std::min(region, touches);
        break;
      case AccessChunk::Pattern::kRandom:
        // Coupon-collector coverage of a uniform sample.
        distinct = region * (1.0 - std::exp(-touches / std::max(region, 1.0)));
        break;
      case AccessChunk::Pattern::kZipf:
        // Skewed sampling touches distinctly fewer pages; empirical factor.
        distinct = 0.55 * region *
                   (1.0 - std::exp(-touches / std::max(region, 1.0)));
        break;
    }
    ws += distinct;
  }
  // Phases overlap within the footprint; cap at the footprint itself.
  return static_cast<std::int64_t>(std::min(ws, npages));
}

WorkloadSpec npb_spec(NpbApp app, NpbClass cls) {
  WorkloadSpec spec;
  spec.app = app;
  spec.cls = cls;

  using Pattern = AccessChunk::Pattern;
  switch (app) {
    case NpbApp::kLU:
      // SSOR: lower and upper triangular sweeps over the full solution
      // arrays every time step; write-heavy, strongly sequential.
      spec.total_footprint_mb = 190.0;
      spec.iterations = 250;
      spec.compute_per_touch = 55 * kMicrosecond;
      spec.phases = {
          {0.0, 1.0, 1.0, Pattern::kSequential, 0.8, /*write=*/false, 1.0},
          {0.0, 1.0, 1.0, Pattern::kSequential, 0.8, /*write=*/true, 1.0},
      };
      spec.exchange_bytes = 160 * 1024;
      spec.allreduce_bytes = 40;
      spec.allreduce_every = 5;
      break;

    case NpbApp::kSP:
      // ADI: three directional sweeps; the largest sequential worker after
      // MG; write-heavy.
      spec.total_footprint_mb = 330.0;
      spec.iterations = 240;
      spec.compute_per_touch = 24 * kMicrosecond;
      spec.phases = {
          {0.0, 1.0, 1.0, Pattern::kSequential, 0.8, false, 1.0},
          {0.0, 1.0, 1.0, Pattern::kSequential, 0.8, true, 1.0},
          {0.0, 1.0, 1.0, Pattern::kSequential, 0.8, true, 1.0},
      };
      spec.exchange_bytes = 220 * 1024;
      spec.allreduce_bytes = 40;
      spec.allreduce_every = 1;
      break;

    case NpbApp::kCG:
      // Sparse CG: the matrix occupies most of the footprint but each
      // iteration touches a skewed subset (the paper: "CG typically has a
      // small working set size"); the vectors are small and hot.
      spec.total_footprint_mb = 420.0;
      spec.iterations = 220;
      spec.compute_per_touch = 200 * kMicrosecond;
      spec.phases = {
          // matrix region, read-only: a strongly skewed subset per
          // iteration — a hot head that persists plus a churning tail
          // ("CG typically has a small working set size" relative to its
          // large footprint).
          {0.0, 0.90, 0.16, Pattern::kZipf, 1.0, false, 1.0},
          // vector region, read/write, hot
          {0.90, 0.10, 2.0, Pattern::kSequential, 0.8, true, 0.5},
      };
      spec.exchange_bytes = 96 * 1024;
      spec.allreduce_bytes = 16;
      spec.allreduce_every = 1;
      break;

    case NpbApp::kIS:
      // Integer sort: sequential key scan plus randomly scattered bucket
      // increments; the smallest footprint of the five.
      spec.total_footprint_mb = 150.0;
      spec.iterations = 550;
      spec.compute_per_touch = 24 * kMicrosecond;
      spec.phases = {
          {0.0, 0.65, 1.0, Pattern::kSequential, 0.8, false, 1.0},
          {0.65, 0.35, 0.8, Pattern::kRandom, 0.8, true, 1.0},
      };
      spec.exchange_bytes = 512 * 1024;  // all-to-all-ish key exchange
      spec.allreduce_bytes = 4096;
      spec.allreduce_every = 1;
      break;

    case NpbApp::kMG:
      // Multigrid V-cycles over the grid hierarchy: the finest grid
      // dominates the footprint; coarser levels are revisited more often.
      spec.total_footprint_mb = 460.0;
      spec.iterations = 260;
      spec.compute_per_touch = 16 * kMicrosecond;
      spec.phases = {
          // V-cycle over the grid hierarchy. The solution grids are
          // read+written every cycle; the operator/right-hand-side arrays
          // (a large share of the footprint) are read-only, so their pages
          // stay clean once written back and evict for free.
          {0.00, 0.35, 1.0, Pattern::kSequential, 0.8, false, 1.0},  // sol r
          {0.00, 0.35, 1.0, Pattern::kSequential, 0.8, true, 1.0},   // sol w
          {0.35, 0.35, 2.0, Pattern::kSequential, 0.8, false, 1.0},  // oper r
          {0.70, 0.22, 1.0, Pattern::kSequential, 0.8, true, 1.0},   // mid
          {0.92, 0.08, 2.0, Pattern::kSequential, 0.8, true, 0.7},   // coarse
      };
      spec.exchange_bytes = 192 * 1024;
      spec.allreduce_bytes = 40;
      spec.allreduce_every = 1;
      break;
  }

  spec.total_footprint_mb *= class_scale(cls);
  spec.iterations = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::llround(
             static_cast<double>(spec.iterations) * iter_scale(cls))));
  return spec;
}

}  // namespace apsim
