#include "workloads/generator.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

namespace apsim {

namespace {

[[nodiscard]] std::vector<Op> init_prologue(std::int64_t pages) {
  AccessChunk init;
  init.pattern = AccessChunk::Pattern::kSequential;
  init.region_start = 0;
  init.region_pages = pages;
  init.touches = pages;
  init.write = true;
  init.compute_per_touch = 2 * kMicrosecond;
  return {Op::access_op(init)};
}

}  // namespace

std::unique_ptr<Program> make_sweep_program(const SweepOptions& options) {
  assert(options.pages > 0 && options.iterations >= 0);
  AccessChunk sweep;
  sweep.pattern = AccessChunk::Pattern::kSequential;
  sweep.region_start = 0;
  sweep.region_pages = options.pages;
  sweep.touches = options.pages;
  sweep.write = options.write;
  sweep.compute_per_touch = options.compute_per_touch;
  return std::make_unique<IterativeProgram>(
      options.init_pass ? init_prologue(options.pages) : std::vector<Op>{},
      std::vector<Op>{Op::access_op(sweep)}, options.iterations);
}

std::unique_ptr<Program> make_hot_cold_program(const HotColdOptions& options) {
  assert(options.pages > 0);
  const auto hot_pages = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(options.hot_fraction *
                                   static_cast<double>(options.pages)));
  const std::int64_t cold_pages = std::max<std::int64_t>(
      1, options.pages - hot_pages);
  const auto hot_touches = static_cast<std::int64_t>(
      options.hot_touch_share *
      static_cast<double>(options.touches_per_iteration));
  const std::int64_t cold_touches =
      std::max<std::int64_t>(1, options.touches_per_iteration - hot_touches);

  AccessChunk hot;
  hot.pattern = AccessChunk::Pattern::kRandom;
  hot.region_start = 0;
  hot.region_pages = hot_pages;
  hot.touches = std::max<std::int64_t>(1, hot_touches);
  hot.write = options.write;
  hot.compute_per_touch = options.compute_per_touch;
  hot.seed = options.seed;

  AccessChunk cold;
  cold.pattern = AccessChunk::Pattern::kRandom;
  cold.region_start = hot_pages;
  cold.region_pages = cold_pages;
  cold.touches = cold_touches;
  cold.write = options.write;
  cold.compute_per_touch = options.compute_per_touch;
  cold.seed = options.seed + 1;

  return std::make_unique<IterativeProgram>(
      init_prologue(options.pages),
      std::vector<Op>{Op::access_op(hot), Op::access_op(cold)},
      options.iterations, options.seed);
}

std::unique_ptr<Program> make_random_program(const RandomOptions& options) {
  assert(options.pages > 0);
  const auto writes = static_cast<std::int64_t>(
      options.write_fraction *
      static_cast<double>(options.touches_per_iteration));
  const std::int64_t reads =
      std::max<std::int64_t>(0, options.touches_per_iteration - writes);

  std::vector<Op> cycle;
  if (reads > 0) {
    AccessChunk chunk;
    chunk.pattern = AccessChunk::Pattern::kRandom;
    chunk.region_pages = options.pages;
    chunk.touches = reads;
    chunk.write = false;
    chunk.compute_per_touch = options.compute_per_touch;
    chunk.seed = options.seed;
    cycle.push_back(Op::access_op(chunk));
  }
  if (writes > 0) {
    AccessChunk chunk;
    chunk.pattern = AccessChunk::Pattern::kRandom;
    chunk.region_pages = options.pages;
    chunk.touches = writes;
    chunk.write = true;
    chunk.compute_per_touch = options.compute_per_touch;
    chunk.seed = options.seed + 7;
    cycle.push_back(Op::access_op(chunk));
  }
  return std::make_unique<IterativeProgram>(init_prologue(options.pages),
                                            std::move(cycle),
                                            options.iterations, options.seed);
}

}  // namespace apsim
