#include "workloads/generator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/rng.hpp"

namespace apsim {

namespace {

[[nodiscard]] std::vector<Op> init_prologue(std::int64_t pages) {
  AccessChunk init;
  init.pattern = AccessChunk::Pattern::kSequential;
  init.region_start = 0;
  init.region_pages = pages;
  init.touches = pages;
  init.write = true;
  init.compute_per_touch = 2 * kMicrosecond;
  return {Op::access_op(init)};
}

}  // namespace

std::unique_ptr<Program> make_sweep_program(const SweepOptions& options) {
  assert(options.pages > 0 && options.iterations >= 0);
  AccessChunk sweep;
  sweep.pattern = AccessChunk::Pattern::kSequential;
  sweep.region_start = 0;
  sweep.region_pages = options.pages;
  sweep.touches = options.pages;
  sweep.write = options.write;
  sweep.compute_per_touch = options.compute_per_touch;
  return std::make_unique<IterativeProgram>(
      options.init_pass ? init_prologue(options.pages) : std::vector<Op>{},
      std::vector<Op>{Op::access_op(sweep)}, options.iterations);
}

std::unique_ptr<Program> make_hot_cold_program(const HotColdOptions& options) {
  assert(options.pages > 0);
  const auto hot_pages = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(options.hot_fraction *
                                   static_cast<double>(options.pages)));
  const std::int64_t cold_pages = std::max<std::int64_t>(
      1, options.pages - hot_pages);
  const auto hot_touches = static_cast<std::int64_t>(
      options.hot_touch_share *
      static_cast<double>(options.touches_per_iteration));
  const std::int64_t cold_touches =
      std::max<std::int64_t>(1, options.touches_per_iteration - hot_touches);

  AccessChunk hot;
  hot.pattern = AccessChunk::Pattern::kRandom;
  hot.region_start = 0;
  hot.region_pages = hot_pages;
  hot.touches = std::max<std::int64_t>(1, hot_touches);
  hot.write = options.write;
  hot.compute_per_touch = options.compute_per_touch;
  hot.seed = options.seed;

  AccessChunk cold;
  cold.pattern = AccessChunk::Pattern::kRandom;
  cold.region_start = hot_pages;
  cold.region_pages = cold_pages;
  cold.touches = cold_touches;
  cold.write = options.write;
  cold.compute_per_touch = options.compute_per_touch;
  cold.seed = options.seed + 1;

  return std::make_unique<IterativeProgram>(
      init_prologue(options.pages),
      std::vector<Op>{Op::access_op(hot), Op::access_op(cold)},
      options.iterations, options.seed);
}

std::unique_ptr<Program> make_random_program(const RandomOptions& options) {
  assert(options.pages > 0);
  const auto writes = static_cast<std::int64_t>(
      options.write_fraction *
      static_cast<double>(options.touches_per_iteration));
  const std::int64_t reads =
      std::max<std::int64_t>(0, options.touches_per_iteration - writes);

  std::vector<Op> cycle;
  if (reads > 0) {
    AccessChunk chunk;
    chunk.pattern = AccessChunk::Pattern::kRandom;
    chunk.region_pages = options.pages;
    chunk.touches = reads;
    chunk.write = false;
    chunk.compute_per_touch = options.compute_per_touch;
    chunk.seed = options.seed;
    cycle.push_back(Op::access_op(chunk));
  }
  if (writes > 0) {
    AccessChunk chunk;
    chunk.pattern = AccessChunk::Pattern::kRandom;
    chunk.region_pages = options.pages;
    chunk.touches = writes;
    chunk.write = true;
    chunk.compute_per_touch = options.compute_per_touch;
    chunk.seed = options.seed + 7;
    cycle.push_back(Op::access_op(chunk));
  }
  return std::make_unique<IterativeProgram>(init_prologue(options.pages),
                                            std::move(cycle),
                                            options.iterations, options.seed);
}

// ---- open-arrival job streams ----

ArrivalProcess parse_arrival_process(std::string_view text) {
  if (text == "poisson") return ArrivalProcess::kPoisson;
  if (text == "diurnal") return ArrivalProcess::kDiurnal;
  throw std::invalid_argument("unknown arrival process '" + std::string(text) +
                              "'; valid: poisson, diurnal");
}

std::string_view to_string(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kDiurnal: return "diurnal";
  }
  return "?";
}

namespace {

/// Diurnal rate envelope in [low_frac, 1]: trough at t = 0, crest at P/2.
[[nodiscard]] double diurnal_envelope(double t_s, double period_s,
                                      double low_frac) {
  const double phase = 2.0 * 3.14159265358979323846 * (t_s / period_s);
  const double wave = 0.5 * (1.0 - std::cos(phase));  // [0, 1]
  return low_frac + (1.0 - low_frac) * wave;
}

/// Next arrival after \p t_s. Poisson draws one exponential; diurnal thins
/// a peak-rate Poisson stream against the envelope (Lewis & Shedler).
[[nodiscard]] double next_arrival_s(double t_s, const OpenArrivalOptions& o,
                                    Rng& rng) {
  if (o.process == ArrivalProcess::kPoisson) {
    return t_s + rng.exponential(o.mean_interarrival_s);
  }
  for (;;) {
    t_s += rng.exponential(o.mean_interarrival_s);
    const double keep =
        diurnal_envelope(t_s, o.diurnal_period_s, o.diurnal_low_frac);
    if (rng.uniform() < keep) return t_s;
  }
}

[[nodiscard]] int pick_tenant(const OpenArrivalOptions& o, Rng& rng) {
  if (o.num_tenants <= 1) return 0;
  if (o.tenant_weights.empty()) {
    return static_cast<int>(rng.uniform_int(0, o.num_tenants - 1));
  }
  double total = 0.0;
  for (int t = 0; t < o.num_tenants; ++t) {
    total += t < static_cast<int>(o.tenant_weights.size())
                 ? o.tenant_weights[static_cast<std::size_t>(t)]
                 : 0.0;
  }
  if (total <= 0.0) return 0;
  double u = rng.uniform() * total;
  for (int t = 0; t < o.num_tenants; ++t) {
    const double w = t < static_cast<int>(o.tenant_weights.size())
                         ? o.tenant_weights[static_cast<std::size_t>(t)]
                         : 0.0;
    if (u < w) return t;
    u -= w;
  }
  return o.num_tenants - 1;
}

}  // namespace

std::vector<int> OpenJobSpec::placement(int cluster_nodes) const {
  assert(cluster_nodes > 0 && width <= cluster_nodes);
  std::vector<int> nodes;
  nodes.reserve(static_cast<std::size_t>(width));
  for (int r = 0; r < width; ++r) {
    nodes.push_back((first_node + r) % cluster_nodes);
  }
  return nodes;
}

std::vector<OpenJobSpec> make_open_arrivals(const OpenArrivalOptions& options,
                                            int cluster_nodes) {
  assert(cluster_nodes > 0);
  assert(options.num_jobs >= 0);
  assert(options.mean_interarrival_s > 0.0);
  assert(options.min_pages > 0 && options.min_pages <= options.max_pages);
  assert(options.min_iterations > 0 &&
         options.min_iterations <= options.max_iterations);
  Rng rng(options.seed * 0x9E3779B97F4A7C15ULL + 1);

  std::vector<OpenJobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(options.num_jobs));
  double t_s = 0.0;
  const int max_width = std::max(1, std::min(options.max_width, cluster_nodes));
  for (int j = 0; j < options.num_jobs; ++j) {
    t_s = next_arrival_s(t_s, options, rng);
    OpenJobSpec job;
    job.arrival = static_cast<SimTime>(t_s * static_cast<double>(kSecond));
    job.tenant = pick_tenant(options, rng);
    job.width = static_cast<int>(rng.uniform_int(1, max_width));
    job.first_node = static_cast<int>(rng.uniform_int(0, cluster_nodes - 1));
    job.pages = rng.uniform_int(options.min_pages, options.max_pages);
    job.iterations =
        rng.uniform_int(options.min_iterations, options.max_iterations);
    job.compute_per_touch = options.compute_per_touch;
    if (options.straggler_fraction > 0.0 &&
        rng.bernoulli(options.straggler_fraction)) {
      job.straggler_rank = static_cast<int>(rng.uniform_int(0, job.width - 1));
    }
    // The analytic runtime of the reference string on warm memory: the
    // zero-fill prologue plus `iterations` passes of `pages` touches.
    job.estimated_runtime =
        job.pages * (2 * kMicrosecond) +
        job.iterations * job.pages * job.compute_per_touch;
    if (options.deadline_slack > 0.0) {
      job.deadline = job.arrival +
                     static_cast<SimTime>(options.deadline_slack *
                                          static_cast<double>(
                                              job.estimated_runtime));
    }
    job.straggler_slowdown = options.straggler_slowdown;
    job.seed = rng();
    jobs.push_back(job);
  }
  return jobs;
}

std::unique_ptr<Program> make_open_job_program(const OpenJobSpec& job,
                                               int rank) {
  assert(rank >= 0 && rank < job.width);
  const SimDuration cpt =
      rank == job.straggler_rank
          ? static_cast<SimDuration>(static_cast<double>(job.compute_per_touch) *
                                     job.straggler_slowdown)
          : job.compute_per_touch;
  if (job.tenant % 2 == 0) {
    SweepOptions sweep;
    sweep.pages = job.pages;
    sweep.iterations = job.iterations;
    sweep.compute_per_touch = cpt;
    return make_sweep_program(sweep);
  }
  HotColdOptions hc;
  hc.pages = job.pages;
  hc.iterations = job.iterations;
  hc.touches_per_iteration = job.pages;  // same touch volume as the sweep
  hc.compute_per_touch = cpt;
  hc.seed = job.seed;
  return make_hot_cold_program(hc);
}

}  // namespace apsim
