#include "workloads/npb.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace apsim {

std::unique_ptr<Program> build_npb_program(const WorkloadSpec& spec,
                                           const NpbBuildOptions& options) {
  assert(options.nprocs >= 1);
  const std::int64_t npages = spec.footprint_pages(options.nprocs);
  assert(npages > 0);

  // Initialization: allocate-and-fill the whole footprint once (zero-fill
  // minor faults), cheap per page.
  std::vector<Op> prologue;
  {
    AccessChunk init;
    init.pattern = AccessChunk::Pattern::kSequential;
    init.region_start = 0;
    init.region_pages = npages;
    init.touches = npages;
    init.write = true;
    init.compute_per_touch = 2 * kMicrosecond;
    prologue.push_back(Op::access_op(init));
  }

  std::vector<Op> cycle;
  for (const auto& phase : spec.phases) {
    AccessChunk chunk;
    chunk.pattern = phase.pattern;
    chunk.region_start =
        static_cast<VPage>(phase.region_begin * static_cast<double>(npages));
    chunk.region_pages = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(phase.region_len *
                                     static_cast<double>(npages)));
    if (chunk.region_start + chunk.region_pages > npages) {
      chunk.region_pages = npages - chunk.region_start;
    }
    chunk.touches = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(phase.touches_factor *
                                     static_cast<double>(chunk.region_pages)));
    chunk.write = phase.write;
    chunk.compute_per_touch = static_cast<SimDuration>(
        phase.compute_scale * static_cast<double>(spec.compute_per_touch));
    chunk.theta = phase.zipf_theta;
    chunk.seed = options.seed;
    chunk.reseed_per_iteration = !phase.stable_seed;
    cycle.push_back(Op::access_op(chunk));
  }

  if (options.nprocs > 1) {
    if (spec.exchange_bytes > 0) {
      cycle.push_back(Op::comm_op(
          CommOp{CommOp::Type::kExchange, spec.exchange_bytes}));
    }
    if (spec.allreduce_bytes > 0 && spec.allreduce_every == 1) {
      cycle.push_back(Op::comm_op(
          CommOp{CommOp::Type::kAllreduce, spec.allreduce_bytes}));
    }
    // allreduce_every > 1 is approximated by scaling the payload down
    // rather than complicating the cycle (volume is negligible either way).
    if (spec.allreduce_bytes > 0 && spec.allreduce_every > 1) {
      cycle.push_back(Op::comm_op(CommOp{
          CommOp::Type::kAllreduce,
          std::max<std::int64_t>(1, spec.allreduce_bytes /
                                        spec.allreduce_every)}));
    }
  }

  const auto iterations = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::llround(static_cast<double>(spec.iterations) *
                          options.iterations_scale)));
  return std::make_unique<IterativeProgram>(std::move(prologue),
                                            std::move(cycle), iterations,
                                            options.seed);
}

std::unique_ptr<Program> build_npb_program(NpbApp app, NpbClass cls,
                                           const NpbBuildOptions& options) {
  return build_npb_program(npb_spec(app, cls), options);
}

}  // namespace apsim
