#pragma once

#include <cstdint>
#include <memory>

#include "proc/access.hpp"
#include "workloads/spec.hpp"

/// \file npb.hpp
/// Build executable Programs from WorkloadSpecs: a one-time initialization
/// pass over the footprint (minor-faulting it in, as the real benchmarks do
/// when allocating and filling their arrays) followed by the iteration
/// cycle, with communication ops appended for parallel ranks.

namespace apsim {

struct NpbBuildOptions {
  int nprocs = 1;              ///< job width (processes == nodes)
  std::uint64_t seed = 1;      ///< randomness root for randomized phases
  double iterations_scale = 1.0;  ///< multiply iteration count (experiments)
};

/// Program for one rank of the given workload.
[[nodiscard]] std::unique_ptr<Program> build_npb_program(
    const WorkloadSpec& spec, const NpbBuildOptions& options = {});

/// Convenience: spec + program in one call.
[[nodiscard]] std::unique_ptr<Program> build_npb_program(
    NpbApp app, NpbClass cls, const NpbBuildOptions& options = {});

}  // namespace apsim
