#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "proc/access.hpp"

/// \file spec.hpp
/// Synthetic stand-ins for the NAS NPB2 benchmarks the paper evaluates (LU,
/// SP, CG, IS, MG). Real NPB binaries are not usable inside a simulator, so
/// each application is described by the properties that determine paging
/// behaviour: footprint per class, iteration structure, per-iteration access
/// phases (region, pattern, read/write mix, compute intensity) and
/// communication volume. Values are calibrated to published NPB2 memory
/// sizes and to the paper's qualitative descriptions (CG: large footprint
/// but small per-iteration working set; IS: small footprint; MG: largest
/// footprint). See DESIGN.md §5.

namespace apsim {

enum class NpbApp : std::uint8_t { kLU, kSP, kCG, kIS, kMG };
enum class NpbClass : std::uint8_t { kS, kW, kA, kB, kC };

[[nodiscard]] std::string_view to_string(NpbApp app);
[[nodiscard]] std::string_view to_string(NpbClass cls);
[[nodiscard]] NpbApp parse_app(std::string_view name);
[[nodiscard]] NpbClass parse_class(std::string_view name);

inline constexpr NpbApp kAllApps[] = {NpbApp::kLU, NpbApp::kSP, NpbApp::kCG,
                                      NpbApp::kIS, NpbApp::kMG};

/// One access phase within an iteration, expressed relative to the
/// process's footprint.
struct PhaseSpec {
  double region_begin = 0.0;   ///< start of the region, fraction of footprint
  double region_len = 1.0;     ///< region length, fraction of footprint
  double touches_factor = 1.0; ///< touches = factor * region pages
  AccessChunk::Pattern pattern = AccessChunk::Pattern::kSequential;
  double zipf_theta = 0.8;     ///< for kZipf
  bool write = false;
  double compute_scale = 1.0;  ///< multiplies the spec's compute_per_touch

  /// Randomized phases only: keep the same skewed subset hot across
  /// iterations instead of re-drawing it (see AccessChunk).
  bool stable_seed = false;
};

struct WorkloadSpec {
  NpbApp app = NpbApp::kLU;
  NpbClass cls = NpbClass::kB;

  /// Total footprint of the (serial) class-B-scaled problem, MB.
  double total_footprint_mb = 0.0;

  /// Per-process replication overhead when run on P > 1 processes
  /// (ghost cells, buffers), as a fraction of the per-process share.
  double replication = 0.08;

  std::int64_t iterations = 0;
  SimDuration compute_per_touch = 0;
  std::vector<PhaseSpec> phases;

  /// Communication per iteration for parallel runs.
  std::int64_t exchange_bytes = 0;
  std::int64_t allreduce_bytes = 0;
  int allreduce_every = 1;  ///< allreduce every k-th iteration

  /// Footprint of one process when the job runs on \p nprocs processes, MB.
  [[nodiscard]] double footprint_mb(int nprocs) const;

  /// Footprint of one process, in pages.
  [[nodiscard]] std::int64_t footprint_pages(int nprocs) const;

  /// Approximate distinct pages one process touches per iteration.
  [[nodiscard]] std::int64_t expected_ws_pages(int nprocs) const;
};

/// Canonical spec for an NPB application and data class.
[[nodiscard]] WorkloadSpec npb_spec(NpbApp app, NpbClass cls);

}  // namespace apsim
