#pragma once

#include <cstdint>
#include <memory>

#include "proc/access.hpp"

/// \file generator.hpp
/// Generic synthetic workload builders used by tests, examples and the
/// motivation benchmark — simple, fully-parameterized reference strings
/// independent of the NPB specs.

namespace apsim {

struct SweepOptions {
  std::int64_t pages = 1024;         ///< footprint
  std::int64_t iterations = 10;      ///< full sweeps
  bool write = true;
  SimDuration compute_per_touch = 10 * kMicrosecond;
  bool init_pass = true;             ///< zero-fill prologue
};

/// Repeated sequential sweeps over a footprint.
[[nodiscard]] std::unique_ptr<Program> make_sweep_program(
    const SweepOptions& options);

struct HotColdOptions {
  std::int64_t pages = 1024;
  std::int64_t iterations = 10;
  double hot_fraction = 0.1;    ///< leading fraction of the footprint
  double hot_touch_share = 0.9; ///< share of touches landing in the hot set
  std::int64_t touches_per_iteration = 2048;
  bool write = true;
  SimDuration compute_per_touch = 10 * kMicrosecond;
  std::uint64_t seed = 1;
};

/// Hot/cold footprint: most touches hit a small hot set, the rest scatter
/// uniformly over the cold region.
[[nodiscard]] std::unique_ptr<Program> make_hot_cold_program(
    const HotColdOptions& options);

struct RandomOptions {
  std::int64_t pages = 1024;
  std::int64_t iterations = 10;
  std::int64_t touches_per_iteration = 2048;
  double write_fraction = 0.5;  ///< approximated by alternating chunks
  SimDuration compute_per_touch = 10 * kMicrosecond;
  std::uint64_t seed = 1;
};

/// Uniform random touches over the footprint.
[[nodiscard]] std::unique_ptr<Program> make_random_program(
    const RandomOptions& options);

}  // namespace apsim
