#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "proc/access.hpp"

/// \file generator.hpp
/// Generic synthetic workload builders used by tests, examples and the
/// motivation benchmark — simple, fully-parameterized reference strings
/// independent of the NPB specs — plus the open-arrival job streams
/// (Poisson and diurnal) that feed the scheduler-policy benchmarks.

namespace apsim {

struct SweepOptions {
  std::int64_t pages = 1024;         ///< footprint
  std::int64_t iterations = 10;      ///< full sweeps
  bool write = true;
  SimDuration compute_per_touch = 10 * kMicrosecond;
  bool init_pass = true;             ///< zero-fill prologue
};

/// Repeated sequential sweeps over a footprint.
[[nodiscard]] std::unique_ptr<Program> make_sweep_program(
    const SweepOptions& options);

struct HotColdOptions {
  std::int64_t pages = 1024;
  std::int64_t iterations = 10;
  double hot_fraction = 0.1;    ///< leading fraction of the footprint
  double hot_touch_share = 0.9; ///< share of touches landing in the hot set
  std::int64_t touches_per_iteration = 2048;
  bool write = true;
  SimDuration compute_per_touch = 10 * kMicrosecond;
  std::uint64_t seed = 1;
};

/// Hot/cold footprint: most touches hit a small hot set, the rest scatter
/// uniformly over the cold region.
[[nodiscard]] std::unique_ptr<Program> make_hot_cold_program(
    const HotColdOptions& options);

struct RandomOptions {
  std::int64_t pages = 1024;
  std::int64_t iterations = 10;
  std::int64_t touches_per_iteration = 2048;
  double write_fraction = 0.5;  ///< approximated by alternating chunks
  SimDuration compute_per_touch = 10 * kMicrosecond;
  std::uint64_t seed = 1;
};

/// Uniform random touches over the footprint.
[[nodiscard]] std::unique_ptr<Program> make_random_program(
    const RandomOptions& options);

// ---- open-arrival job streams ----

/// Stochastic arrival process driving an open workload.
enum class ArrivalProcess {
  kPoisson,  ///< homogeneous: exponential interarrivals at a fixed rate
  kDiurnal,  ///< non-homogeneous: raised-cosine day/night rate envelope
};

/// Parses "poisson" / "diurnal"; throws std::invalid_argument otherwise.
[[nodiscard]] ArrivalProcess parse_arrival_process(std::string_view text);
[[nodiscard]] std::string_view to_string(ArrivalProcess process);

/// Knobs for one open-arrival job stream. All randomness derives from
/// `seed` through the simulator's Rng, so a stream is bit-reproducible.
struct OpenArrivalOptions {
  ArrivalProcess process = ArrivalProcess::kPoisson;
  int num_jobs = 16;

  /// Mean interarrival at the peak rate, seconds. Poisson runs at the peak
  /// rate throughout; diurnal modulates it with the envelope below.
  double mean_interarrival_s = 60.0;

  /// Diurnal envelope: rate(t) = peak * (low + (1-low) * (1 - cos(2*pi*t/P))/2)
  /// with period P — arrivals start in the trough and crest mid-period.
  double diurnal_period_s = 3600.0;
  double diurnal_low_frac = 0.2;  ///< trough rate as a fraction of peak, (0, 1]

  /// Tenants cycle access patterns (even = sequential sweep, odd = hot/cold)
  /// so a multi-tenant stream is a genuine workload mix. Arrival shares
  /// follow tenant_weights (empty = uniform).
  int num_tenants = 1;
  std::vector<double> tenant_weights;

  /// With this probability a job carries one straggler rank whose
  /// compute-per-touch is inflated by straggler_slowdown.
  double straggler_fraction = 0.0;
  double straggler_slowdown = 4.0;

  // Job shape, sampled uniformly per job.
  int max_width = 1;  ///< ranks per job, in [1, min(max_width, cluster)]
  std::int64_t min_pages = 2048;   ///< per-rank footprint
  std::int64_t max_pages = 8192;
  std::int64_t min_iterations = 4;
  std::int64_t max_iterations = 12;
  SimDuration compute_per_touch = 10 * kMicrosecond;

  /// When > 0, every job gets deadline = arrival + slack * estimated
  /// runtime (feeds the gang-edf policy). 0 = no deadlines.
  double deadline_slack = 0.0;

  std::uint64_t seed = 1;
};

/// One sampled job of an open stream: when it arrives, where it lands, and
/// what its ranks execute. The placement is `width` consecutive nodes
/// starting at first_node (mod cluster size).
struct OpenJobSpec {
  SimTime arrival = 0;
  int tenant = 0;
  int width = 1;
  int first_node = 0;
  std::int64_t pages = 0;  ///< per-rank footprint
  std::int64_t iterations = 0;
  SimDuration compute_per_touch = 0;
  int straggler_rank = -1;  ///< -1 = none
  double straggler_slowdown = 4.0;
  /// Analytic runtime of the job's reference string on an unloaded,
  /// memory-resident node (no straggler correction — estimates are
  /// user-supplied, and users do not know about stragglers).
  SimDuration estimated_runtime = 0;
  std::optional<SimTime> deadline;
  std::uint64_t seed = 0;  ///< per-job program seed

  [[nodiscard]] std::vector<int> placement(int cluster_nodes) const;
};

/// Sample \p options.num_jobs arrivals onto a cluster of \p cluster_nodes
/// nodes, in nondecreasing arrival order.
[[nodiscard]] std::vector<OpenJobSpec> make_open_arrivals(
    const OpenArrivalOptions& options, int cluster_nodes);

/// The reference string rank \p rank of \p job executes (straggler-aware).
[[nodiscard]] std::unique_ptr<Program> make_open_job_program(
    const OpenJobSpec& job, int rank);

}  // namespace apsim
