#include "gang/matrix.hpp"

#include <algorithm>
#include <cassert>

namespace apsim {

ScheduleMatrix::ScheduleMatrix(int num_nodes) : num_nodes_(num_nodes) {
  assert(num_nodes > 0);
}

int ScheduleMatrix::assign(int job_id, const std::vector<int>& nodes) {
  assert(!nodes.empty());
  for (int node : nodes) {
    assert(node >= 0 && node < num_nodes_);
    (void)node;
  }
  for (int s = 0; s < num_slots(); ++s) {
    auto& row = slots_[static_cast<std::size_t>(s)];
    const bool free = std::all_of(nodes.begin(), nodes.end(), [&](int n) {
      return row[static_cast<std::size_t>(n)] == -1;
    });
    if (free) {
      for (int n : nodes) row[static_cast<std::size_t>(n)] = job_id;
      return s;
    }
  }
  slots_.emplace_back(static_cast<std::size_t>(num_nodes_), -1);
  ids_.push_back(next_id_++);
  for (int n : nodes) slots_.back()[static_cast<std::size_t>(n)] = job_id;
  return num_slots() - 1;
}

void ScheduleMatrix::remove(int job_id) {
  for (auto& row : slots_) {
    for (auto& cell : row) {
      if (cell == job_id) cell = -1;
    }
  }
  // Compact empty rows, keeping slots_ and ids_ in lockstep so surviving
  // rows retain their stable identities.
  std::size_t w = 0;
  for (std::size_t r = 0; r < slots_.size(); ++r) {
    const bool empty = std::all_of(slots_[r].begin(), slots_[r].end(),
                                   [](int cell) { return cell == -1; });
    if (empty) continue;
    if (w != r) {
      slots_[w] = std::move(slots_[r]);
      ids_[w] = ids_[r];
    }
    ++w;
  }
  slots_.resize(w);
  ids_.resize(w);
}

std::uint64_t ScheduleMatrix::slot_id(int slot) const {
  assert(slot >= 0 && slot < num_slots());
  return ids_[static_cast<std::size_t>(slot)];
}

std::optional<int> ScheduleMatrix::slot_index(std::uint64_t id) const {
  for (int s = 0; s < num_slots(); ++s) {
    if (ids_[static_cast<std::size_t>(s)] == id) return s;
  }
  return std::nullopt;
}

int ScheduleMatrix::job_at(int slot, int node) const {
  assert(slot >= 0 && slot < num_slots());
  assert(node >= 0 && node < num_nodes_);
  return slots_[static_cast<std::size_t>(slot)][static_cast<std::size_t>(node)];
}

std::vector<int> ScheduleMatrix::jobs_in_slot(int slot) const {
  assert(slot >= 0 && slot < num_slots());
  std::vector<int> out;
  for (int cell : slots_[static_cast<std::size_t>(slot)]) {
    if (cell != -1 && std::find(out.begin(), out.end(), cell) == out.end()) {
      out.push_back(cell);
    }
  }
  return out;
}

std::optional<int> ScheduleMatrix::slot_of(int job_id) const {
  for (int s = 0; s < num_slots(); ++s) {
    for (int cell : slots_[static_cast<std::size_t>(s)]) {
      if (cell == job_id) return s;
    }
  }
  return std::nullopt;
}

double ScheduleMatrix::occupancy() const {
  if (slots_.empty()) return 0.0;
  std::int64_t used = 0;
  for (const auto& row : slots_) {
    used += std::count_if(row.begin(), row.end(),
                          [](int cell) { return cell != -1; });
  }
  return static_cast<double>(used) /
         (static_cast<double>(slots_.size()) * static_cast<double>(num_nodes_));
}

}  // namespace apsim
