#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/adaptive_pager.hpp"
#include "gang/job.hpp"
#include "gang/matrix.hpp"
#include "gang/sched_policy.hpp"

/// \file gang_scheduler.hpp
/// The user-level gang scheduler of the paper's Figure 5: a controller that,
/// at every quantum boundary, sends SIGSTOP to the current slot's processes
/// and SIGCONT to the next slot's on every node, invoking the adaptive
/// paging API (adaptive_page_out / adaptive_page_in / start_bgwrite /
/// stop_bgwrite) around the signals. *What* runs in each slot is decided by
/// a pluggable SchedulerPolicy (sched_policy.hpp, resolved by name through
/// policy_registry.hpp); the default "matrix" policy reproduces the paper's
/// Ousterhout rotation bit-identically. Also provides the batch baseline
/// used by the evaluation (jobs run back to back, no switching).

namespace apsim {

class MpiComm;

/// Recovery delegate consulted before the scheduler gives up on a job. The
/// checkpoint manager (src/recover) implements it; the interface lives here
/// so the gang layer needs no dependency on the recovery subsystem.
class RecoveryHook {
 public:
  virtual ~RecoveryHook() = default;

  /// A job is about to be failed (\p reason: node crash, lost page, ...).
  /// Return true to take ownership — the scheduler then leaves the job
  /// unfailed and expects suspend_job()/resume_restarted_job() (or
  /// abandon_job() on give-up) to be driven by the hook. Return false to
  /// let the scheduler fail the job as usual.
  virtual bool on_job_casualty(Job& job, const char* reason) = 0;
};

struct GangParams {
  /// Default scheduling quantum (the paper uses 5 minutes).
  SimDuration quantum = 5 * kMinute;

  /// Background writing covers the last (1 - bg_start_frac) of the quantum;
  /// the paper found starting at 90% of the quantum works best.
  double bg_start_frac = 0.9;

  /// Latency of the control message that carries a signal to a node.
  SimDuration signal_latency = 200 * kMicrosecond;

  /// Per-switch watchdog: when > 0, a node that has not applied the current
  /// switch this long after its signal was sent gets the signal retransmitted
  /// (control signals can be dropped or delayed by the fault injector); after
  /// watchdog_max_retries retransmissions the node is declared failed and
  /// fenced. 0 disables the watchdog entirely — the fault-free default, so
  /// undisturbed runs schedule no extra events. The harness auto-enables it
  /// when the fault plan disturbs the control plane.
  SimDuration switch_watchdog = 0;
  int watchdog_max_retries = 8;

  /// When true, the scheduler passes each job's declared_ws_pages as the
  /// ws_size API argument; otherwise the kernel estimate is used.
  bool pass_ws_hint = false;

  /// Memory-aware admission control (the Batat & Feitelson alternative the
  /// paper's related work discusses): a job joins the timesharing rotation
  /// only while the declared working sets of all admitted jobs fit within
  /// admission_margin of usable memory on every node it uses; otherwise it
  /// waits for a running job to finish. Trades responsiveness for zero
  /// switch paging — the trade-off adaptive paging avoids.
  bool admission_control = false;
  double admission_margin = 0.9;

  /// Scheduler policy, resolved through policy_registry.hpp ("matrix",
  /// "admission", "backfill", "gang-edf", "dfrs", ...). For backward
  /// compatibility, admission_control=true upgrades the default "matrix" to
  /// "admission"; an explicit non-matrix name wins over the legacy flag.
  std::string sched_policy = "matrix";

  /// Tunables shared by the registered policies. admission_margin above is
  /// the authoritative legacy field: the engine copies it into
  /// policy_opts.admission_margin on construction.
  SchedPolicyOptions policy_opts;

  /// Per-node adaptive pager configuration (incl. the PolicySet).
  AdaptivePagerParams pager;
};

class GangScheduler : private SchedContext {
 public:
  /// Throws std::invalid_argument if params.sched_policy is unknown.
  GangScheduler(Cluster& cluster, GangParams params);
  ~GangScheduler() override;

  GangScheduler(const GangScheduler&) = delete;
  GangScheduler& operator=(const GangScheduler&) = delete;

  /// Create a job; attach its per-node processes via Job::add_process before
  /// calling start().
  Job& create_job(std::string name);

  /// Begin gang scheduling: slot 0 starts immediately.
  void start();

  // ---- open arrivals ----

  /// Create a job after start() (an open arrival). Attach its processes via
  /// Job::add_process, then hand it to start_job().
  Job& submit_job(std::string name);

  /// Admit a job created by submit_job() into the live schedule: register
  /// its processes with the pagers, stamp its arrival time, and — if the
  /// policy schedules it immediately — deliver the switch signals without
  /// waiting for the next quantum boundary.
  void start_job(Job& job);

  /// Every job reached a terminal state (finished or failed).
  [[nodiscard]] bool all_finished() const;

  /// Completion time of the last job (-1 while any job is unfinished).
  [[nodiscard]] SimTime makespan() const;

  [[nodiscard]] AdaptivePager& pager(int node) {
    return *pagers_[static_cast<std::size_t>(node)];
  }
  [[nodiscard]] const std::vector<std::unique_ptr<Job>>& jobs() const {
    return jobs_;
  }
  [[nodiscard]] const GangParams& params() const { return params_; }
  [[nodiscard]] int switches() const { return switch_count_; }

  /// Runtime actuator (adaptive control plane): background writing covers
  /// the last (1 - frac) of each quantum. Takes effect from the next slot
  /// activation — bg start times are computed per slot.
  void set_bg_start_frac(double frac) {
    params_.bg_start_frac = std::clamp(frac, 0.0, 1.0);
  }
  /// The engine-owned Ousterhout matrix (meaningful under matrix-backed
  /// policies; backfill/dfrs keep their own structures and leave it empty).
  [[nodiscard]] const ScheduleMatrix& matrix() const { return matrix_; }

  /// The active scheduler policy.
  [[nodiscard]] SchedulerPolicy& policy() { return *policy_; }
  [[nodiscard]] const SchedulerPolicy& policy() const { return *policy_; }

  /// True once the job has been admitted to the rotation (always true
  /// without admission control / queueing policies).
  [[nodiscard]] bool admitted(const Job& job) const {
    return policy_->is_admitted(job);
  }

  /// React to a crashed node: fail every job placed there, drop the node
  /// from the rotation, and keep scheduling the survivors. Wired to the
  /// cluster's node-failure observer; also callable directly from tests.
  void handle_node_failure(int node);

  [[nodiscard]] bool node_alive(int node) const {
    return !node_dead_[static_cast<std::size_t>(node)];
  }

  // ---- checkpoint/restart integration ----

  /// Install (or clear) the recovery delegate consulted before failing a
  /// job on a node crash or unrecoverable page loss.
  void set_recovery(RecoveryHook* hook) { recovery_ = hook; }

  /// Take an unfinished job out of the rotation without failing it: kill
  /// and release its processes on surviving nodes, leaving the job eligible
  /// for resume_restarted_job(). Counterpart of fail_job minus the verdict.
  void suspend_job(Job& job);

  /// Put a restored job back into the rotation: re-register its (possibly
  /// re-placed) processes with the pagers, re-assign it in the matrix, and
  /// reschedule. The checkpoint manager calls this once staging completed.
  void resume_restarted_job(Job& job);

  /// Give up on a suspended job whose restart cannot proceed (no feasible
  /// placement, staging kept failing): fail it and reschedule.
  void abandon_job(Job& job);

  /// True when no live node still has the current switch generation's
  /// action in flight — the quiescent instant at which a coordinated
  /// checkpoint cannot tear a gang mid-switch.
  [[nodiscard]] bool switch_settled() const;

  [[nodiscard]] std::uint64_t switch_generation() const { return switch_gen_; }

  // ---- inter-node job migration ----

  /// Resolver from job id to the job's communicator, so migration can
  /// re-home ranks (mirrors CheckpointManager::set_comm_resolver). Without
  /// one, only single-rank jobs migrate.
  void set_comm_resolver(std::function<MpiComm*(int)> resolver) {
    comm_of_ = std::move(resolver);
  }

  /// Migrate \p job so placement i lands on targets[i]: snapshot each
  /// rank's live pages, take the job out of the rotation (suspend), ship
  /// the images through the network model, stage them into the target swap
  /// partitions as foreground I/O, re-home the processes (Cpu::adopt) and
  /// hand the job back to the policy (readmit). Demand paging then pays the
  /// major faults as the job re-touches its pages — the realistic cost of a
  /// migration. Returns false (and does nothing) unless every process is
  /// SIGSTOPped with no collective partially entered, all nodes involved
  /// are alive, and the targets have swap room; policies call this through
  /// SchedContext::request_migration.
  bool migrate_job(Job& job, const std::vector<int>& targets);

  /// True while a migration of \p job is in flight.
  [[nodiscard]] bool migrating(const Job& job) const {
    return migrations_.contains(job.id());
  }

  /// Attach the run's tracer (nullptr = untraced). Each delivered switch
  /// action emits, on the owning node's scheduler track, an async "switch"
  /// span (ending when the adaptive page-in replay drains) containing the
  /// Figure 5 phases stop_bgwrite/sigstop/sigcont as sync spans; watchdog
  /// retransmissions become instant events. page_out/page_in come from the
  /// pagers — wire them separately.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  /// Failure-path statistics (all zero on undisturbed runs).
  struct Stats {
    std::uint64_t signal_retransmits = 0;  ///< watchdog-resent switch signals
    int jobs_failed = 0;
    int nodes_failed = 0;
    int jobs_recovered = 0;  ///< restarts that made it back into the rotation
    std::uint64_t lost_pages_fatal = 0;      ///< page losses that failed a job
    std::uint64_t lost_pages_recovered = 0;  ///< page losses a restart absorbed
    int jobs_migrated = 0;             ///< completed inter-node migrations
    int migrations_failed = 0;         ///< migrations aborted mid-flight
    std::uint64_t migrated_pages = 0;  ///< live pages shipped by migrations
    std::uint64_t migration_bytes = 0; ///< network bytes spent on migrations
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  // ---- SchedContext (the policy's view of the engine) ----
  [[nodiscard]] ScheduleMatrix& shared_matrix() override { return matrix_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Job>>& all_jobs()
      const override {
    return jobs_;
  }
  [[nodiscard]] int num_nodes() const override { return cluster_.size(); }
  [[nodiscard]] SimTime sim_now() const override;
  [[nodiscard]] std::int64_t usable_frames(int node) const override;
  [[nodiscard]] const SchedPolicyOptions& sched_options() const override {
    return params_.policy_opts;
  }
  bool request_migration(Job& job, const std::vector<int>& targets) override {
    return migrate_job(job, targets);
  }

  /// In-flight migration of one job (mirrors the checkpoint manager's
  /// staging attempt: spaces created and swap slots bound up front, image
  /// writes counted down, finalization re-homes the processes).
  struct Migration {
    std::vector<int> from;
    std::vector<int> to;
    std::vector<Pid> pid;                        ///< staged target pids
    std::vector<std::vector<SlotRun>> slots;     ///< per-rank staged runs
    int outstanding = 0;                         ///< network + I/O countdown
    bool failed = false;
  };

  void activate_slot(int to_slot);
  void do_switch();
  /// Deliver \p action to \p node after the (possibly disturbed) signal
  /// latency; a dropped signal is simply never delivered.
  void send_signal(int node, const std::function<void()>& action);
  void arm_watchdog(std::uint64_t gen);
  void check_watchdog(std::uint64_t gen);
  /// Abort an unfinished job: kill and release its processes on surviving
  /// nodes and take it out of the rotation.
  void fail_job(Job& job);
  /// A page of (node, pid) became unrecoverable: abort the owning job.
  void on_page_unrecoverable(int node, Pid pid);
  /// Re-activate the current slot after the schedule changed.
  void reschedule();
  /// Register a job's processes with the pagers and wire on_finish.
  void wire_job(Job& job);
  void schedule_switch_timer(int slot);
  void schedule_bg_start(int slot);
  void on_job_finished(Job& job);
  void migration_step_done(int job_id);
  void finish_migration(Job& job, const Migration& mig);
  void release_migration_staging(const Migration& mig);
  [[nodiscard]] SimDuration slot_quantum(int slot) const;

  Cluster& cluster_;
  GangParams params_;
  std::unique_ptr<SchedulerPolicy> policy_;
  std::vector<std::unique_ptr<AdaptivePager>> pagers_;
  std::vector<std::unique_ptr<Job>> jobs_;
  /// Jobs currently holding each node (delivery-time truth; more than one
  /// under co-scheduling policies).
  std::vector<std::vector<Job*>> running_jobs_;
  ScheduleMatrix matrix_;
  std::map<int, std::shared_ptr<Migration>> migrations_;  ///< by job id
  std::function<MpiComm*(int)> comm_of_;
  int current_slot_ = -1;
  EventHandle switch_event_;
  EventHandle bg_event_;
  bool started_ = false;
  int switch_count_ = 0;
  SimTime last_finish_ = -1;

  // Failure handling. Each activate_slot() starts a new switch generation;
  // per node we remember the generation last applied and the pending switch
  // action so the watchdog can retransmit idempotently.
  std::uint64_t switch_gen_ = 0;
  std::vector<std::uint64_t> switch_applied_;
  std::vector<std::function<void()>> switch_action_;
  std::vector<int> switch_retries_;
  std::vector<bool> node_dead_;
  EventHandle watchdog_event_;
  Tracer* tracer_ = nullptr;
  RecoveryHook* recovery_ = nullptr;
  Stats stats_;
};

/// Batch baseline: run the same jobs strictly one after another. The paper
/// uses this as the zero-switching reference when computing the job-switch
/// overhead.
class BatchRunner {
 public:
  explicit BatchRunner(Cluster& cluster) : cluster_(cluster) {}

  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;

  Job& create_job(std::string name);

  void start();

  [[nodiscard]] bool all_finished() const;
  [[nodiscard]] SimTime makespan() const;
  [[nodiscard]] const std::vector<std::unique_ptr<Job>>& jobs() const {
    return jobs_;
  }

 private:
  void start_job(std::size_t index);
  void on_job_finished(std::size_t index);

  Cluster& cluster_;
  std::vector<std::unique_ptr<Job>> jobs_;
  std::size_t running_ = 0;
  bool started_ = false;
  SimTime last_finish_ = -1;
};

}  // namespace apsim
