#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/adaptive_pager.hpp"
#include "gang/job.hpp"
#include "gang/matrix.hpp"

/// \file gang_scheduler.hpp
/// The user-level gang scheduler of the paper's Figure 5: a controller that,
/// at every quantum boundary, sends SIGSTOP to the current slot's processes
/// and SIGCONT to the next slot's on every node, invoking the adaptive
/// paging API (adaptive_page_out / adaptive_page_in / start_bgwrite /
/// stop_bgwrite) around the signals. Also provides the batch baseline used
/// by the evaluation (jobs run back to back, no switching).

namespace apsim {

struct GangParams {
  /// Default scheduling quantum (the paper uses 5 minutes).
  SimDuration quantum = 5 * kMinute;

  /// Background writing covers the last (1 - bg_start_frac) of the quantum;
  /// the paper found starting at 90% of the quantum works best.
  double bg_start_frac = 0.9;

  /// Latency of the control message that carries a signal to a node.
  SimDuration signal_latency = 200 * kMicrosecond;

  /// When true, the scheduler passes each job's declared_ws_pages as the
  /// ws_size API argument; otherwise the kernel estimate is used.
  bool pass_ws_hint = false;

  /// Memory-aware admission control (the Batat & Feitelson alternative the
  /// paper's related work discusses): a job joins the timesharing rotation
  /// only while the declared working sets of all admitted jobs fit within
  /// admission_margin of usable memory on every node it uses; otherwise it
  /// waits for a running job to finish. Trades responsiveness for zero
  /// switch paging — the trade-off adaptive paging avoids.
  bool admission_control = false;
  double admission_margin = 0.9;

  /// Per-node adaptive pager configuration (incl. the PolicySet).
  AdaptivePagerParams pager;
};

class GangScheduler {
 public:
  GangScheduler(Cluster& cluster, GangParams params);

  GangScheduler(const GangScheduler&) = delete;
  GangScheduler& operator=(const GangScheduler&) = delete;

  /// Create a job; attach its per-node processes via Job::add_process before
  /// calling start().
  Job& create_job(std::string name);

  /// Begin gang scheduling: slot 0 starts immediately.
  void start();

  [[nodiscard]] bool all_finished() const;

  /// Completion time of the last job (-1 while any job is unfinished).
  [[nodiscard]] SimTime makespan() const;

  [[nodiscard]] AdaptivePager& pager(int node) {
    return *pagers_[static_cast<std::size_t>(node)];
  }
  [[nodiscard]] const std::vector<std::unique_ptr<Job>>& jobs() const {
    return jobs_;
  }
  [[nodiscard]] const GangParams& params() const { return params_; }
  [[nodiscard]] int switches() const { return switch_count_; }
  [[nodiscard]] const ScheduleMatrix& matrix() const { return matrix_; }

  /// True once the job has been admitted to the rotation (always true
  /// without admission control).
  [[nodiscard]] bool admitted(const Job& job) const {
    return admitted_[static_cast<std::size_t>(job.id())];
  }

 private:
  void activate_slot(int to_slot);
  void do_switch();
  /// Admit every waiting job whose memory demand fits (no-op without
  /// admission control, which admits everything up front).
  void try_admit();
  [[nodiscard]] bool fits_in_memory(const Job& job) const;
  void schedule_switch_timer(int slot);
  void schedule_bg_start(int slot);
  void on_job_finished(Job& job);
  [[nodiscard]] SimDuration slot_quantum(int slot) const;

  Cluster& cluster_;
  GangParams params_;
  std::vector<std::unique_ptr<AdaptivePager>> pagers_;
  std::vector<std::unique_ptr<Job>> jobs_;
  std::vector<bool> admitted_;
  std::vector<Job*> running_job_;  ///< job currently holding each node
  ScheduleMatrix matrix_;
  int current_slot_ = -1;
  EventHandle switch_event_;
  EventHandle bg_event_;
  bool started_ = false;
  int switch_count_ = 0;
  SimTime last_finish_ = -1;
};

/// Batch baseline: run the same jobs strictly one after another. The paper
/// uses this as the zero-switching reference when computing the job-switch
/// overhead.
class BatchRunner {
 public:
  explicit BatchRunner(Cluster& cluster) : cluster_(cluster) {}

  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;

  Job& create_job(std::string name);

  void start();

  [[nodiscard]] bool all_finished() const;
  [[nodiscard]] SimTime makespan() const;
  [[nodiscard]] const std::vector<std::unique_ptr<Job>>& jobs() const {
    return jobs_;
  }

 private:
  void start_job(std::size_t index);
  void on_job_finished(std::size_t index);

  Cluster& cluster_;
  std::vector<std::unique_ptr<Job>> jobs_;
  std::size_t running_ = 0;
  bool started_ = false;
  SimTime last_finish_ = -1;
};

}  // namespace apsim
