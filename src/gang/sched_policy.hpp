#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "gang/job.hpp"
#include "gang/matrix.hpp"
#include "sim/time.hpp"

/// \file sched_policy.hpp
/// The scheduler-policy interface extracted from GangScheduler. The engine
/// (signal delivery, watchdog, paging calls, failure handling) stays in
/// gang_scheduler.cpp; a SchedulerPolicy decides *what runs when*: which
/// jobs join the rotation, which jobs share a (slot, node) cell, and which
/// slot follows the current one. Policies are looked up by name through
/// policy_registry.hpp, mirroring the reclaim-policy registry in src/mem.

namespace apsim {

/// Tunables shared by the registered policies. GangParams carries one of
/// these; the legacy GangParams::admission_margin field remains the
/// authoritative source for admission_margin (the engine copies it in).
struct SchedPolicyOptions {
  /// "admission": fraction of usable memory the declared working sets of
  /// admitted jobs may fill per node.
  double admission_margin = 0.9;

  /// "dfrs": co-resident declared working sets may fill this fraction of a
  /// node's usable memory...
  double dfrs_mem_frac = 0.85;
  /// ...and at most this many gangs share one node's quantum.
  int dfrs_max_share = 2;

  /// "backfill": reservation length for jobs without an estimated_runtime.
  SimDuration backfill_estimate_default = 30 * kMinute;

  /// "dfrs": when true, a departure may trigger one inter-node migration of
  /// a memory-light gang into a fuller co-schedule group (costed through
  /// the network model). Off by default so fixed-set runs stay untouched.
  bool auto_migrate = false;
  /// Only jobs whose live image is at most this many pages migrate.
  std::int64_t migrate_max_pages = 1 << 20;
};

/// What the engine exposes to a policy. GangScheduler implements this.
class SchedContext {
 public:
  virtual ~SchedContext() = default;

  /// The engine-owned Ousterhout matrix. The matrix-backed policies
  /// (matrix, admission, gang-edf) schedule through it; others ignore it.
  [[nodiscard]] virtual ScheduleMatrix& shared_matrix() = 0;

  /// Every job ever submitted, indexed by job id (ids are dense).
  [[nodiscard]] virtual const std::vector<std::unique_ptr<Job>>& all_jobs()
      const = 0;

  [[nodiscard]] virtual int num_nodes() const = 0;
  [[nodiscard]] virtual bool node_alive(int node) const = 0;
  [[nodiscard]] virtual SimTime sim_now() const = 0;

  /// Usable memory frames on \p node (admission / co-residency budgets).
  [[nodiscard]] virtual std::int64_t usable_frames(int node) const = 0;

  [[nodiscard]] virtual const SchedPolicyOptions& sched_options() const = 0;

  /// Ask the engine to migrate \p job so that placement i lands on
  /// targets[i]. Returns false if preconditions fail (job running, node
  /// dead, no comm resolver for a parallel job, target swap full, ...).
  /// On success the job leaves the rotation immediately; once its memory
  /// image has been shipped through the network and staged into the target
  /// swap, the engine calls SchedulerPolicy::readmit with the new placement.
  virtual bool request_migration(Job& job, const std::vector<int>& targets) = 0;
};

/// Scheduling decisions behind the gang engine. All hooks are synchronous
/// and deterministic; a policy must never touch simulator time directly.
///
/// Contract (enforced by tests/test_policy_conformance.cpp):
///  - jobs_at() never names a job with no live placement claim on the node,
///    and never more than max_coscheduled() jobs per (slot, node) cell;
///  - every job passed to admit() is eventually scheduled (appears in some
///    cell while unfinished) unless the engine abandons it first;
///  - while any admitted unfinished job waits, num_slots() > 0 (work
///    conservation: the cluster never goes fully idle with work queued).
class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  /// Registry key, e.g. "matrix".
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Called once by the engine before any other hook.
  void bind(SchedContext& ctx) {
    ctx_ = &ctx;
    on_bind();
  }

  /// Max jobs this policy will co-schedule on one node in one slot (the
  /// oversubscription bound the conformance suite checks).
  [[nodiscard]] virtual int max_coscheduled() const { return 1; }

  /// A job entered the system (at start() or as an open arrival): place it
  /// in the schedule now or queue it internally.
  virtual void admit(Job& job) = 0;

  /// A job left for good (finished or failed): drop it everywhere; freed
  /// resources may admit queued jobs.
  virtual void remove(Job& job) = 0;

  /// A job was suspended (checkpoint restart, migration): drop it from the
  /// schedule but start nothing in its place — it is expected back.
  virtual void detach(Job& job) { remove(job); }

  /// A suspended job returned (restart or migration re-placed its
  /// processes): put it straight back into the schedule.
  virtual void readmit(Job& job) { admit(job); }

  /// True once the job has (ever) been admitted to the schedule; stays true
  /// after the job completes (legacy GangScheduler::admitted semantics).
  [[nodiscard]] virtual bool is_admitted(const Job& job) const = 0;

  /// Rows in the rotation. 0 means nothing is scheduled.
  [[nodiscard]] virtual int num_slots() const = 0;

  /// Job ids occupying (slot, node), in deterministic order; the first one
  /// is the node's primary (its pid anchors adaptive_page_out/page_in).
  virtual void jobs_at(int slot, int node, std::vector<int>& out) const = 0;

  /// Distinct job ids in a slot (quantum overrides, bench accounting).
  [[nodiscard]] virtual std::vector<int> jobs_in_slot(int slot) const = 0;

  /// The slot to activate after \p current at a quantum boundary.
  [[nodiscard]] virtual int next_slot(int current) const = 0;

  /// The engine activated \p slot (record identity for resolve_slot).
  virtual void note_active(int /*slot*/) {}

  /// Re-derive the active slot's index after the schedule changed
  /// (arrival, departure, compaction). \p current is the stale index; the
  /// default keeps legacy modulo behaviour.
  [[nodiscard]] virtual int resolve_slot(int current) const {
    const int n = num_slots();
    return n > 0 ? current % n : -1;
  }

  /// A node was fenced or crashed; the engine already failed/suspended the
  /// jobs placed there.
  virtual void on_node_failed(int /*node*/) {}

  /// A job departed cleanly; the policy may rebalance (e.g. request one
  /// migration). Called after remove(), before the engine reschedules.
  virtual void on_departure() {}

 protected:
  virtual void on_bind() {}

  SchedContext* ctx_ = nullptr;
};

}  // namespace apsim
