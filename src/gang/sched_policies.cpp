#include "gang/sched_policies.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace apsim {

namespace {

std::vector<int> deduped_nodes(const Job& job) {
  std::vector<int> nodes = job.nodes();
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

}  // namespace

// ---------------------------------------------------------------------------
// MatrixPolicy

void MatrixPolicy::assign_deduped(Job& job) {
  ctx_->shared_matrix().assign(job.id(), deduped_nodes(job));
  admitted_.insert(job.id());
}

void MatrixPolicy::admit(Job& job) {
  if (job.done()) return;
  // Raw (non-deduplicated) node list, exactly like the legacy try_admit;
  // fresh jobs hold one placement per node.
  ctx_->shared_matrix().assign(job.id(), job.nodes());
  admitted_.insert(job.id());
}

void MatrixPolicy::remove(Job& job) {
  // admitted_ records *ever admitted* (legacy GangScheduler::admitted
  // stayed true after completion), so only the matrix changes here.
  ctx_->shared_matrix().remove(job.id());
}

void MatrixPolicy::readmit(Job& job) {
  // A restarted or migrated job may hold several ranks on one node.
  assign_deduped(job);
}

bool MatrixPolicy::is_admitted(const Job& job) const {
  return admitted_.contains(job.id());
}

int MatrixPolicy::num_slots() const {
  return ctx_->shared_matrix().num_slots();
}

void MatrixPolicy::jobs_at(int slot, int node, std::vector<int>& out) const {
  const int id = ctx_->shared_matrix().job_at(slot, node);
  if (id >= 0) out.push_back(id);
}

std::vector<int> MatrixPolicy::jobs_in_slot(int slot) const {
  return ctx_->shared_matrix().jobs_in_slot(slot);
}

int MatrixPolicy::next_slot(int current) const {
  return (current + 1) % ctx_->shared_matrix().num_slots();
}

void MatrixPolicy::note_active(int slot) {
  active_row_ = ctx_->shared_matrix().slot_id(slot);
}

int MatrixPolicy::resolve_slot(int current) const {
  const int n = num_slots();
  if (n <= 0) return -1;
  // Follow the active row's stable identity across compaction: an arrival
  // or an unrelated removal must not silently re-point the live quantum at
  // a different row. Only when the active row itself is gone does the
  // legacy index fallback apply (the next row slides into its place).
  if (active_row_ != 0) {
    if (const auto idx = ctx_->shared_matrix().slot_index(active_row_)) {
      return *idx;
    }
  }
  return current % n;
}

// ---------------------------------------------------------------------------
// AdmissionPolicy

bool AdmissionPolicy::fits_in_memory(const Job& job) const {
  // Per node: the declared working sets of every admitted job on that node
  // plus this one must fit in admission_margin of usable memory. Jobs
  // without a declaration are assumed to need their full address space.
  auto demand = [](const Job& j, int node) -> std::int64_t {
    std::int64_t total = 0;
    for (const auto& pl : j.processes()) {
      if (pl.node != node) continue;
      total += j.declared_ws_pages ? *j.declared_ws_pages : 0;
    }
    return total;
  };
  const auto& jobs = ctx_->all_jobs();
  for (int node : job.nodes()) {
    std::int64_t total = demand(job, node);
    for (const auto& other : jobs) {
      if (!admitted_.contains(other->id()) || other->done()) continue;
      total += demand(*other, node);
    }
    const auto budget = static_cast<std::int64_t>(
        ctx_->sched_options().admission_margin *
        static_cast<double>(ctx_->usable_frames(node)));
    if (total > budget) return false;
  }
  return true;
}

void AdmissionPolicy::drain_waiting() {
  for (const auto& job : ctx_->all_jobs()) {
    if (admitted_.contains(job->id()) || job->done()) continue;
    if (!fits_in_memory(*job)) continue;
    ctx_->shared_matrix().assign(job->id(), job->nodes());
    admitted_.insert(job->id());
  }
}

void AdmissionPolicy::admit(Job& job) {
  if (job.done()) return;
  if (!fits_in_memory(job)) return;  // waits for a departure
  ctx_->shared_matrix().assign(job.id(), job.nodes());
  admitted_.insert(job.id());
}

void AdmissionPolicy::remove(Job& job) {
  ctx_->shared_matrix().remove(job.id());
  drain_waiting();  // freed memory may let a waiting job in
}

void AdmissionPolicy::detach(Job& job) {
  // Suspension (checkpoint restart, migration): the job is expected back,
  // so its memory claim stays counted and nobody is admitted in its place.
  ctx_->shared_matrix().remove(job.id());
}

void AdmissionPolicy::readmit(Job& job) {
  // Legacy resume semantics: a restarted job re-enters unconditionally —
  // the planner already sized its placement against surviving memory.
  assign_deduped(job);
}

// ---------------------------------------------------------------------------
// GangEdfPolicy

int GangEdfPolicy::next_slot(int current) const {
  const auto& matrix = ctx_->shared_matrix();
  const int n = matrix.num_slots();
  if (n <= 1) return 0;
  // Earliest deadline first over whole rows: a row's key is the earliest
  // member deadline (rows without deadlines sort last); ties fall to the
  // least recently activated row so deadline-free workloads degrade to a
  // fair rotation instead of starving high-index rows.
  int best = -1;
  SimTime best_deadline = 0;
  std::uint64_t best_last = 0;
  for (int s = 0; s < n; ++s) {
    if (s == current) continue;
    SimTime deadline = std::numeric_limits<SimTime>::max();
    for (int id : matrix.jobs_in_slot(s)) {
      const Job& job = *ctx_->all_jobs()[static_cast<std::size_t>(id)];
      if (job.deadline && *job.deadline < deadline) deadline = *job.deadline;
    }
    const auto it = last_run_.find(matrix.slot_id(s));
    const std::uint64_t last = it == last_run_.end() ? 0 : it->second;
    if (best < 0 || deadline < best_deadline ||
        (deadline == best_deadline && last < best_last)) {
      best = s;
      best_deadline = deadline;
      best_last = last;
    }
  }
  return best;
}

void GangEdfPolicy::note_active(int slot) {
  MatrixPolicy::note_active(slot);
  last_run_[ctx_->shared_matrix().slot_id(slot)] = ++tick_;
}

// ---------------------------------------------------------------------------
// BackfillPolicy

SimDuration BackfillPolicy::estimate(const Job& job) const {
  const SimDuration est = job.estimated_runtime
                              ? *job.estimated_runtime
                              : ctx_->sched_options().backfill_estimate_default;
  return std::max<SimDuration>(est, 1);
}

void BackfillPolicy::start_job(Job& job) {
  running_.insert(job.id());
  started_.insert(job.id());
  est_finish_[job.id()] = ctx_->sim_now() + estimate(job);
}

void BackfillPolicy::schedule_pass() {
  const SimTime now = ctx_->sim_now();
  // When each node frees up, by the running jobs' estimated completions.
  std::vector<SimTime> free_at(static_cast<std::size_t>(ctx_->num_nodes()),
                               now);
  for (int id : running_) {
    const Job& job = *ctx_->all_jobs()[static_cast<std::size_t>(id)];
    const SimTime fin = est_finish_.at(id);
    for (int n : deduped_nodes(job)) {
      auto& t = free_at[static_cast<std::size_t>(n)];
      t = std::max(t, fin);
    }
  }
  struct Reservation {
    SimTime start = 0;
    SimTime end = 0;
    std::vector<int> nodes;
  };
  std::vector<Reservation> reservations;
  const std::vector<int> pending = queue_;
  for (int id : pending) {
    Job& job = *ctx_->all_jobs()[static_cast<std::size_t>(id)];
    if (job.done()) continue;  // the engine's remove() is on its way
    const std::vector<int> nodes = deduped_nodes(job);
    if (std::any_of(nodes.begin(), nodes.end(),
                    [&](int n) { return !ctx_->node_alive(n); })) {
      continue;  // placed on a fenced node; the engine fails it
    }
    const SimDuration est = estimate(job);
    auto overlaps = [&nodes](const Reservation& r) {
      return std::any_of(nodes.begin(), nodes.end(), [&](int n) {
        return std::find(r.nodes.begin(), r.nodes.end(), n) != r.nodes.end();
      });
    };
    bool can_now = std::all_of(nodes.begin(), nodes.end(), [&](int n) {
      return free_at[static_cast<std::size_t>(n)] <= now;
    });
    if (can_now) {
      // Conservative: starting now must not push past any earlier job's
      // reservation on a shared node.
      for (const Reservation& r : reservations) {
        if (overlaps(r) && now + est > r.start) {
          can_now = false;
          break;
        }
      }
    }
    if (can_now) {
      start_job(job);
      std::erase(queue_, id);
      for (int n : nodes) free_at[static_cast<std::size_t>(n)] = now + est;
      continue;
    }
    Reservation r;
    r.start = now;
    for (int n : nodes) {
      r.start = std::max(r.start, free_at[static_cast<std::size_t>(n)]);
    }
    for (const Reservation& prev : reservations) {
      if (overlaps(prev)) r.start = std::max(r.start, prev.end);
    }
    r.end = r.start + est;
    r.nodes = nodes;
    reservations.push_back(std::move(r));
  }
}

void BackfillPolicy::admit(Job& job) {
  if (job.done()) return;
  queue_.push_back(job.id());
  schedule_pass();
}

void BackfillPolicy::remove(Job& job) {
  running_.erase(job.id());
  est_finish_.erase(job.id());
  std::erase(queue_, job.id());
  schedule_pass();
}

void BackfillPolicy::detach(Job& job) {
  running_.erase(job.id());
  est_finish_.erase(job.id());
  std::erase(queue_, job.id());
}

void BackfillPolicy::readmit(Job& job) {
  if (job.done()) return;
  start_job(job);
}

bool BackfillPolicy::is_admitted(const Job& job) const {
  return started_.contains(job.id());
}

int BackfillPolicy::num_slots() const { return running_.empty() ? 0 : 1; }

void BackfillPolicy::jobs_at(int slot, int node, std::vector<int>& out) const {
  assert(slot == 0);
  (void)slot;
  for (int id : running_) {
    const Job& job = *ctx_->all_jobs()[static_cast<std::size_t>(id)];
    if (!job.done() && job.process_on(node) != nullptr) out.push_back(id);
  }
}

std::vector<int> BackfillPolicy::jobs_in_slot(int slot) const {
  assert(slot == 0);
  (void)slot;
  return {running_.begin(), running_.end()};
}

// ---------------------------------------------------------------------------
// DfrsPolicy

int DfrsPolicy::max_coscheduled() const {
  return ctx_ != nullptr ? ctx_->sched_options().dfrs_max_share : 2;
}

std::int64_t DfrsPolicy::demand(const Job& job, int node) const {
  // A job that declares nothing is assumed to need its whole address space:
  // it never co-resides (sentinel larger than any node's memory).
  if (!job.declared_ws_pages) return std::int64_t{1} << 50;
  std::int64_t total = 0;
  for (const auto& pl : job.processes()) {
    if (pl.node == node) total += *job.declared_ws_pages;
  }
  return total;
}

bool DfrsPolicy::fits_group(const Group& g, const Job& job) const {
  const auto& opts = ctx_->sched_options();
  for (int node : deduped_nodes(job)) {
    int count = 0;
    std::int64_t resident = 0;
    for (int id : g.members) {
      const Job& member = *ctx_->all_jobs()[static_cast<std::size_t>(id)];
      if (member.done() || member.process_on(node) == nullptr) continue;
      ++count;
      resident += demand(member, node);
    }
    if (count == 0) continue;  // pure space sharing on this node
    if (count >= opts.dfrs_max_share) return false;
    const auto budget = static_cast<std::int64_t>(
        opts.dfrs_mem_frac * static_cast<double>(ctx_->usable_frames(node)));
    if (resident + demand(job, node) > budget) return false;
  }
  return true;
}

void DfrsPolicy::drop_member(int job_id) {
  for (Group& g : groups_) std::erase(g.members, job_id);
  std::erase_if(groups_, [](const Group& g) { return g.members.empty(); });
}

void DfrsPolicy::admit(Job& job) {
  if (job.done()) return;
  drop_member(job.id());  // idempotent (readmit re-places a member)
  for (Group& g : groups_) {
    if (fits_group(g, job)) {
      g.members.push_back(job.id());
      admitted_.insert(job.id());
      return;
    }
  }
  groups_.push_back(Group{next_group_++, {job.id()}});
  admitted_.insert(job.id());
}

void DfrsPolicy::remove(Job& job) { drop_member(job.id()); }

void DfrsPolicy::readmit(Job& job) { admit(job); }

bool DfrsPolicy::is_admitted(const Job& job) const {
  return admitted_.contains(job.id());
}

int DfrsPolicy::num_slots() const { return static_cast<int>(groups_.size()); }

void DfrsPolicy::jobs_at(int slot, int node, std::vector<int>& out) const {
  const Group& g = groups_[static_cast<std::size_t>(slot)];
  for (int id : g.members) {
    const Job& job = *ctx_->all_jobs()[static_cast<std::size_t>(id)];
    if (!job.done() && job.process_on(node) != nullptr) out.push_back(id);
  }
}

std::vector<int> DfrsPolicy::jobs_in_slot(int slot) const {
  return groups_[static_cast<std::size_t>(slot)].members;
}

int DfrsPolicy::next_slot(int current) const {
  return (current + 1) % static_cast<int>(groups_.size());
}

void DfrsPolicy::note_active(int slot) {
  active_group_ = groups_[static_cast<std::size_t>(slot)].id;
}

int DfrsPolicy::resolve_slot(int current) const {
  const int n = num_slots();
  if (n <= 0) return -1;
  for (int s = 0; s < n; ++s) {
    if (groups_[static_cast<std::size_t>(s)].id == active_group_) return s;
  }
  return current % n;
}

void DfrsPolicy::on_departure() {
  const auto& opts = ctx_->sched_options();
  if (!opts.auto_migrate) return;
  // Consolidation: a lone memory-light single-rank gang whose node blocks
  // co-residency gets moved (once) onto a node where it can share an
  // existing group's quantum, shrinking the rotation by one slot.
  for (const Group& src : groups_) {
    if (src.members.size() != 1) continue;
    Job& job = *ctx_->all_jobs()[static_cast<std::size_t>(src.members[0])];
    if (job.done() || migrated_.contains(job.id())) continue;
    if (job.processes().size() != 1) continue;
    if (!job.declared_ws_pages ||
        *job.declared_ws_pages > opts.migrate_max_pages) {
      continue;
    }
    const int home = job.processes().front().node;
    for (const Group& dst : groups_) {
      if (dst.id == src.id) continue;
      for (int node = 0; node < ctx_->num_nodes(); ++node) {
        if (node == home || !ctx_->node_alive(node)) continue;
        // Would the job fit dst if its single rank lived on this node?
        int count = 0;
        std::int64_t resident = 0;
        bool dst_uses_node = false;
        for (int id : dst.members) {
          const Job& member = *ctx_->all_jobs()[static_cast<std::size_t>(id)];
          if (member.done() || member.process_on(node) == nullptr) continue;
          dst_uses_node = true;
          ++count;
          resident += demand(member, node);
        }
        if (!dst_uses_node) continue;  // no consolidation win there
        if (count >= opts.dfrs_max_share) continue;
        const auto budget = static_cast<std::int64_t>(
            opts.dfrs_mem_frac *
            static_cast<double>(ctx_->usable_frames(node)));
        if (resident + *job.declared_ws_pages > budget) continue;
        if (ctx_->request_migration(job, {node})) {
          migrated_.insert(job.id());
          return;  // at most one migration per departure
        }
      }
    }
  }
}

}  // namespace apsim
