#include "gang/policy_registry.hpp"

#include <stdexcept>
#include <utility>

#include "gang/sched_policies.hpp"

namespace apsim {

namespace {

struct Entry {
  std::string name;
  SchedPolicyFactory factory;
  bool builtin = false;
};

std::vector<Entry>& registry() {
  static std::vector<Entry> entries = [] {
    std::vector<Entry> e;
    e.push_back({"matrix", [] { return std::make_unique<MatrixPolicy>(); },
                 true});
    e.push_back({"admission",
                 [] { return std::make_unique<AdmissionPolicy>(); }, true});
    e.push_back({"backfill",
                 [] { return std::make_unique<BackfillPolicy>(); }, true});
    e.push_back({"gang-edf",
                 [] { return std::make_unique<GangEdfPolicy>(); }, true});
    e.push_back({"dfrs", [] { return std::make_unique<DfrsPolicy>(); }, true});
    return e;
  }();
  return entries;
}

}  // namespace

std::vector<std::string> sched_policy_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const Entry& e : registry()) names.push_back(e.name);
  return names;
}

bool is_sched_policy(std::string_view name) {
  for (const Entry& e : registry()) {
    if (e.name == name) return true;
  }
  return false;
}

std::string sched_policy_names_hint() {
  std::string hint = "valid policies are:";
  for (const Entry& e : registry()) {
    hint += ' ';
    hint += e.name;
  }
  return hint;
}

std::unique_ptr<SchedulerPolicy> make_sched_policy(std::string_view name) {
  for (const Entry& e : registry()) {
    if (e.name == name) return e.factory();
  }
  throw std::invalid_argument("unknown scheduler policy '" +
                              std::string(name) + "'; " +
                              sched_policy_names_hint());
}

void register_sched_policy(std::string name, SchedPolicyFactory factory) {
  if (name.empty()) {
    throw std::invalid_argument("scheduler policy name must be non-empty");
  }
  if (!factory) {
    throw std::invalid_argument("scheduler policy factory must be callable");
  }
  if (is_sched_policy(name)) {
    throw std::invalid_argument("scheduler policy '" + name +
                                "' is already registered");
  }
  registry().push_back({std::move(name), std::move(factory), false});
}

bool unregister_sched_policy(std::string_view name) {
  auto& entries = registry();
  for (auto it = entries.begin(); it != entries.end(); ++it) {
    if (it->name == name && !it->builtin) {
      entries.erase(it);
      return true;
    }
  }
  return false;
}

}  // namespace apsim
