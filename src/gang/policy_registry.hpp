#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "gang/sched_policy.hpp"

/// \file policy_registry.hpp
/// Name-keyed factory over the scheduler-policy zoo, mirroring the reclaim
/// registry in src/mem: config validation, the scenario parser and the gang
/// engine all resolve policies through here, so adding one means a single
/// registration and nothing else. "matrix" is the paper's default: the gang
/// engine behaves bit-identically to the pre-extraction scheduler under it.

namespace apsim {

using SchedPolicyFactory = std::function<std::unique_ptr<SchedulerPolicy>()>;

/// Valid policy names, in registration order: matrix, admission, backfill,
/// gang-edf, dfrs, then any register_sched_policy() additions. Returned by
/// value (threaded sweeps may consult the registry concurrently).
[[nodiscard]] std::vector<std::string> sched_policy_names();

[[nodiscard]] bool is_sched_policy(std::string_view name);

/// One-line "valid policies are: ..." suffix for error messages.
[[nodiscard]] std::string sched_policy_names_hint();

/// Construct the named policy. Throws std::invalid_argument naming the
/// valid policies when \p name is unknown.
[[nodiscard]] std::unique_ptr<SchedulerPolicy> make_sched_policy(
    std::string_view name);

/// Register an out-of-tree policy (tests, experiments). Throws
/// std::invalid_argument on an empty name or a duplicate registration —
/// built-ins included, so a test cannot shadow "matrix".
void register_sched_policy(std::string name, SchedPolicyFactory factory);

/// Drop a registration added by register_sched_policy (test teardown).
/// Built-ins cannot be unregistered; returns false if \p name was not a
/// dynamic registration.
bool unregister_sched_policy(std::string_view name);

}  // namespace apsim
