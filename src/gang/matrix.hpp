#pragma once

#include <cstdint>
#include <optional>
#include <vector>

/// \file matrix.hpp
/// Ousterhout scheduling matrix: rows are time slots, columns are nodes.
/// Each job occupies a set of node columns within exactly one slot; the gang
/// scheduler cycles through the slots round-robin, one quantum per slot.
/// Our experiments use full-width jobs (one per slot), but the matrix packs
/// narrower jobs side by side, as gang schedulers generally do.

namespace apsim {

class ScheduleMatrix {
 public:
  explicit ScheduleMatrix(int num_nodes);

  [[nodiscard]] int num_nodes() const { return num_nodes_; }
  [[nodiscard]] int num_slots() const { return static_cast<int>(slots_.size()); }

  /// Place a job on the given nodes in the first slot where all of them are
  /// free, appending a new slot if necessary. Returns the slot index.
  int assign(int job_id, const std::vector<int>& nodes);

  /// Remove a job everywhere; empty slots are dropped (compaction).
  void remove(int job_id);

  /// Job occupying (slot, node), or -1.
  [[nodiscard]] int job_at(int slot, int node) const;

  /// Distinct jobs in a slot, in column order.
  [[nodiscard]] std::vector<int> jobs_in_slot(int slot) const;

  /// Slot currently holding \p job_id.
  [[nodiscard]] std::optional<int> slot_of(int job_id) const;

  /// Fraction of cells occupied (a packing-quality diagnostic).
  [[nodiscard]] double occupancy() const;

 private:
  int num_nodes_;
  std::vector<std::vector<int>> slots_;  ///< slots_[slot][node] = job id or -1
};

}  // namespace apsim
