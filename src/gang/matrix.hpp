#pragma once

#include <cstdint>
#include <optional>
#include <vector>

/// \file matrix.hpp
/// Ousterhout scheduling matrix: rows are time slots, columns are nodes.
/// Each job occupies a set of node columns within exactly one slot; the gang
/// scheduler cycles through the slots round-robin, one quantum per slot.
/// Our experiments use full-width jobs (one per slot), but the matrix packs
/// narrower jobs side by side, as gang schedulers generally do.

namespace apsim {

class ScheduleMatrix {
 public:
  explicit ScheduleMatrix(int num_nodes);

  [[nodiscard]] int num_nodes() const { return num_nodes_; }
  [[nodiscard]] int num_slots() const { return static_cast<int>(slots_.size()); }

  /// Place a job on the given nodes in the first slot where all of them are
  /// free, appending a new slot if necessary. Returns the slot index.
  int assign(int job_id, const std::vector<int>& nodes);

  /// Remove a job everywhere; empty slots are dropped (compaction). Slot
  /// indices shift, but slot identities (slot_id) survive — a caller holding
  /// the active slot's id can re-find its row after arrivals and removals
  /// instead of trusting a stale index.
  void remove(int job_id);

  /// Stable identity of the slot currently at \p slot: assigned when the row
  /// is created, never reused, unaffected by compaction. Always > 0.
  [[nodiscard]] std::uint64_t slot_id(int slot) const;

  /// Current index of the row with stable id \p id, if it still exists.
  [[nodiscard]] std::optional<int> slot_index(std::uint64_t id) const;

  /// Job occupying (slot, node), or -1.
  [[nodiscard]] int job_at(int slot, int node) const;

  /// Distinct jobs in a slot, in column order.
  [[nodiscard]] std::vector<int> jobs_in_slot(int slot) const;

  /// Slot currently holding \p job_id.
  [[nodiscard]] std::optional<int> slot_of(int job_id) const;

  /// Fraction of cells occupied (a packing-quality diagnostic).
  [[nodiscard]] double occupancy() const;

 private:
  int num_nodes_;
  std::vector<std::vector<int>> slots_;  ///< slots_[slot][node] = job id or -1
  std::vector<std::uint64_t> ids_;       ///< ids_[slot] = stable row identity
  std::uint64_t next_id_ = 1;
};

}  // namespace apsim
