#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "gang/sched_policy.hpp"

/// \file sched_policies.hpp
/// The built-in scheduler policies behind policy_registry.hpp:
///   matrix     — the paper's Ousterhout round-robin rotation (default;
///                bit-identical to the pre-extraction scheduler).
///   admission  — matrix plus the Batat & Feitelson memory-aware gate: a
///                job joins only while declared working sets fit.
///   backfill   — conservative backfilling: space-sharing run-to-completion
///                with an FCFS queue and runtime-estimate reservations.
///   gang-edf   — the matrix rotation with deadline-ordered slot selection.
///   dfrs       — DFRS-style fractional co-scheduling: memory-light gangs
///                share one node's quantum (the CPU executor time-slices
///                them round-robin), optionally consolidating via migration.

namespace apsim {

class MatrixPolicy : public SchedulerPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "matrix"; }
  void admit(Job& job) override;
  void remove(Job& job) override;
  void readmit(Job& job) override;
  [[nodiscard]] bool is_admitted(const Job& job) const override;
  [[nodiscard]] int num_slots() const override;
  void jobs_at(int slot, int node, std::vector<int>& out) const override;
  [[nodiscard]] std::vector<int> jobs_in_slot(int slot) const override;
  [[nodiscard]] int next_slot(int current) const override;
  void note_active(int slot) override;
  [[nodiscard]] int resolve_slot(int current) const override;

 protected:
  /// Assign the job's (deduplicated) node set in the matrix.
  void assign_deduped(Job& job);

  std::set<int> admitted_;          ///< ever-admitted job ids
  std::uint64_t active_row_ = 0;    ///< stable id of the last activated row
};

class AdmissionPolicy : public MatrixPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "admission"; }
  void admit(Job& job) override;
  void remove(Job& job) override;
  void detach(Job& job) override;
  void readmit(Job& job) override;

 private:
  [[nodiscard]] bool fits_in_memory(const Job& job) const;
  /// Admit every waiting job whose declared memory demand fits, in job-id
  /// order (the legacy try_admit scan).
  void drain_waiting();
};

class GangEdfPolicy : public MatrixPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "gang-edf"; }
  [[nodiscard]] int next_slot(int current) const override;
  void note_active(int slot) override;

 private:
  std::map<std::uint64_t, std::uint64_t> last_run_;  ///< row id -> tick
  std::uint64_t tick_ = 0;
};

class BackfillPolicy : public SchedulerPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "backfill"; }
  void admit(Job& job) override;
  void remove(Job& job) override;
  void detach(Job& job) override;
  void readmit(Job& job) override;
  [[nodiscard]] bool is_admitted(const Job& job) const override;
  [[nodiscard]] int num_slots() const override;
  void jobs_at(int slot, int node, std::vector<int>& out) const override;
  [[nodiscard]] std::vector<int> jobs_in_slot(int slot) const override;
  [[nodiscard]] int next_slot(int /*current*/) const override { return 0; }
  [[nodiscard]] int resolve_slot(int /*current*/) const override {
    return num_slots() > 0 ? 0 : -1;
  }

 private:
  [[nodiscard]] SimDuration estimate(const Job& job) const;
  void start_job(Job& job);
  /// Conservative backfilling pass: walk the FCFS queue; start a job when
  /// its nodes are free now and running it would not push past any earlier
  /// job's reservation, otherwise book the earliest consistent reservation.
  void schedule_pass();

  std::vector<int> queue_;               ///< FCFS arrival order (job ids)
  std::set<int> running_;                ///< space-sharing, run-to-completion
  std::map<int, SimTime> est_finish_;    ///< running job -> estimated finish
  std::set<int> started_;                ///< ever-started job ids
};

class DfrsPolicy : public SchedulerPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "dfrs"; }
  [[nodiscard]] int max_coscheduled() const override;
  void admit(Job& job) override;
  void remove(Job& job) override;
  void readmit(Job& job) override;
  [[nodiscard]] bool is_admitted(const Job& job) const override;
  [[nodiscard]] int num_slots() const override;
  void jobs_at(int slot, int node, std::vector<int>& out) const override;
  [[nodiscard]] std::vector<int> jobs_in_slot(int slot) const override;
  [[nodiscard]] int next_slot(int current) const override;
  void note_active(int slot) override;
  [[nodiscard]] int resolve_slot(int current) const override;
  void on_departure() override;

 private:
  struct Group {
    std::uint64_t id = 0;
    std::vector<int> members;  ///< job ids, insertion order
  };

  /// Declared per-node demand; jobs without a declaration never co-reside.
  [[nodiscard]] std::int64_t demand(const Job& job, int node) const;
  [[nodiscard]] bool fits_group(const Group& g, const Job& job) const;
  void drop_member(int job_id);

  std::vector<Group> groups_;
  std::uint64_t next_group_ = 1;
  std::uint64_t active_group_ = 0;
  std::set<int> admitted_;
  std::set<int> migrated_;  ///< one consolidation migration per job
};

}  // namespace apsim
