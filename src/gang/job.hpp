#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "proc/process.hpp"
#include "sim/time.hpp"

/// \file job.hpp
/// A gang-scheduled parallel job: one process per participating node, all
/// stopped and resumed together.

namespace apsim {

class Job {
 public:
  Job(int id, std::string name) : id_(id), name_(std::move(name)) {}

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Attach the job's process on \p node_index.
  void add_process(int node_index, Process& p) {
    p.job_id = id_;
    procs_.push_back({node_index, &p});
  }

  struct Placement {
    int node = -1;
    Process* process = nullptr;
  };
  [[nodiscard]] const std::vector<Placement>& processes() const { return procs_; }

  /// Re-home placement \p index onto \p node (checkpoint restart may place
  /// a process on a different surviving node).
  void move_process(std::size_t index, int node) {
    procs_.at(index).node = node;
  }

  [[nodiscard]] std::vector<int> nodes() const {
    std::vector<int> out;
    out.reserve(procs_.size());
    for (const auto& p : procs_) out.push_back(p.node);
    return out;
  }

  [[nodiscard]] Process* process_on(int node) const {
    for (const auto& p : procs_) {
      if (p.node == node) return p.process;
    }
    return nullptr;
  }

  [[nodiscard]] bool finished() const {
    for (const auto& p : procs_) {
      if (!p.process->finished()) return false;
    }
    return !procs_.empty();
  }

  /// The job was aborted (node crash or unrecoverable page fault) and will
  /// never finish.
  [[nodiscard]] bool failed() const { return failed_at_ >= 0; }
  [[nodiscard]] SimTime failed_at() const { return failed_at_; }
  void mark_failed(SimTime now) {
    if (failed_at_ < 0) failed_at_ = now;
  }

  /// Finished or failed: no further scheduling for this job.
  [[nodiscard]] bool done() const { return failed() || finished(); }

  /// Completion time: when the last process finished (-1 if not finished).
  [[nodiscard]] SimTime finished_at() const {
    SimTime t = -1;
    for (const auto& p : procs_) {
      const SimTime f = p.process->stats().finished_at;
      if (f < 0) return -1;
      t = std::max(t, f);
    }
    return t;
  }

  /// Per-job quantum override (the paper runs SP with 7-minute quanta on 4
  /// machines while everything else uses 5).
  std::optional<SimDuration> quantum_override;

  /// Scheduler-declared working-set size per process (pages), passed as the
  /// ws_size argument of the adaptive-paging API when the scheduler is
  /// configured to supply it; otherwise the kernel estimate is used.
  std::optional<std::int64_t> declared_ws_pages;

  /// Open-arrival metadata (set by the open-arrival driver; the defaults
  /// keep fixed-set runs unchanged). arrival feeds the per-job slowdown
  /// metric, deadline orders gang-EDF, estimated_runtime sizes conservative
  /// backfilling reservations, tenant labels multi-tenant mixes.
  SimTime arrival = 0;
  std::optional<SimTime> deadline;
  std::optional<SimDuration> estimated_runtime;
  int tenant = 0;

 private:
  int id_;
  std::string name_;
  std::vector<Placement> procs_;
  SimTime failed_at_ = -1;
};

}  // namespace apsim
