#include "gang/gang_scheduler.hpp"

#include <algorithm>
#include <cassert>

namespace apsim {

GangScheduler::GangScheduler(Cluster& cluster, GangParams params)
    : cluster_(cluster), params_(params), matrix_(cluster.size()) {
  pagers_.reserve(static_cast<std::size_t>(cluster.size()));
  for (int n = 0; n < cluster.size(); ++n) {
    pagers_.push_back(
        std::make_unique<AdaptivePager>(cluster.node(n), params_.pager));
  }
  running_job_.assign(static_cast<std::size_t>(cluster.size()), nullptr);
  switch_applied_.assign(static_cast<std::size_t>(cluster.size()), 0);
  switch_action_.assign(static_cast<std::size_t>(cluster.size()), nullptr);
  switch_retries_.assign(static_cast<std::size_t>(cluster.size()), 0);
  node_dead_.assign(static_cast<std::size_t>(cluster.size()), false);
  for (int n = 0; n < cluster.size(); ++n) {
    cluster_.node(n).vmm().set_failure_handler(
        [this, n](Pid pid, VPage, Vmm::PageFailure) {
          on_page_unrecoverable(n, pid);
        });
  }
  cluster_.set_node_failure_observer(
      [this](int n) { handle_node_failure(n); });
}

GangScheduler::~GangScheduler() {
  cluster_.set_node_failure_observer(nullptr);
  for (int n = 0; n < cluster_.size(); ++n) {
    cluster_.node(n).vmm().set_failure_handler(nullptr);
  }
}

Job& GangScheduler::create_job(std::string name) {
  assert(!started_ && "cannot add jobs after start()");
  jobs_.push_back(
      std::make_unique<Job>(static_cast<int>(jobs_.size()), std::move(name)));
  return *jobs_.back();
}

void GangScheduler::start() {
  assert(!started_);
  started_ = true;
  admitted_.assign(jobs_.size(), false);
  for (auto& job : jobs_) {
    assert(!job->processes().empty() && "job has no processes");
    for (const auto& placement : job->processes()) {
      pagers_[static_cast<std::size_t>(placement.node)]->register_process(
          placement.process->pid());
      Job* job_ptr = job.get();
      placement.process->on_finish = [this, job_ptr](Process&) {
        if (job_ptr->finished()) on_job_finished(*job_ptr);
      };
    }
  }
  try_admit();
  // A node may have crashed before start (a t=0 planned fault): its jobs are
  // lost before they ever run.
  for (int n = 0; n < cluster_.size(); ++n) {
    if (!node_dead_[static_cast<std::size_t>(n)]) continue;
    for (auto& job : jobs_) {
      if (!job->done() && job->process_on(n) != nullptr) fail_job(*job);
    }
  }
  if (matrix_.num_slots() == 0) return;  // everything failed already
  current_slot_ = 0;
  activate_slot(0);
  schedule_switch_timer(0);
  schedule_bg_start(0);
}

bool GangScheduler::fits_in_memory(const Job& job) const {
  // Per node: the declared working sets of every admitted job on that node
  // plus this one must fit in admission_margin of usable memory. Jobs
  // without a declaration are assumed to need their full address space.
  auto demand = [](const Job& j, int node) -> std::int64_t {
    // Sum per placement: a restarted job may hold several ranks on a node.
    std::int64_t total = 0;
    for (const auto& pl : j.processes()) {
      if (pl.node != node) continue;
      // The address-space size is the upper bound; the declaration refines it.
      total += j.declared_ws_pages ? *j.declared_ws_pages : 0;
    }
    return total;
  };
  for (int node : job.nodes()) {
    std::int64_t total = demand(job, node);
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      if (!admitted_[i] || jobs_[i]->done()) continue;
      total += demand(*jobs_[i], node);
    }
    const auto& frames = cluster_.node(node).vmm().frames();
    const auto budget = static_cast<std::int64_t>(
        params_.admission_margin *
        static_cast<double>(frames.usable_frames()));
    if (total > budget) return false;
  }
  return true;
}

void GangScheduler::try_admit() {
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (admitted_[i] || jobs_[i]->done()) continue;
    if (params_.admission_control && !fits_in_memory(*jobs_[i])) continue;
    admitted_[i] = true;
    matrix_.assign(jobs_[i]->id(), jobs_[i]->nodes());
  }
}

SimDuration GangScheduler::slot_quantum(int slot) const {
  SimDuration q = params_.quantum;
  for (int job_id : matrix_.jobs_in_slot(slot)) {
    const auto& job = *jobs_[static_cast<std::size_t>(job_id)];
    if (job.quantum_override) q = std::max(q, *job.quantum_override);
  }
  return q;
}

void GangScheduler::activate_slot(int to_slot) {
  assert(to_slot >= 0 && to_slot < matrix_.num_slots());
  const std::uint64_t gen = ++switch_gen_;
  bool any_pending = false;
  for (int node = 0; node < cluster_.size(); ++node) {
    const auto ni = static_cast<std::size_t>(node);
    switch_action_[ni] = nullptr;
    if (node_dead_[ni]) continue;
    const int in_job_id = matrix_.job_at(to_slot, node);
    Job* in_job = in_job_id >= 0 ? jobs_[static_cast<std::size_t>(in_job_id)].get()
                                 : nullptr;
    // running_job_ is delivery-time truth: it only changes when a switch
    // action actually runs on the node. Skip the signal only when the node
    // both runs the right job and has no older action still in flight —
    // otherwise a dropped cont could leave the job stopped forever while the
    // bookkeeping claims it is running.
    if (in_job == running_job_[ni] && switch_applied_[ni] == gen - 1) {
      switch_applied_[ni] = gen;  // nothing to apply on this node
      continue;
    }

    AdaptivePager* pager = pagers_[ni].get();
    auto& cpu = cluster_.node(node).cpu();

    std::int64_t ws_hint = -1;
    if (params_.pass_ws_hint && in_job && in_job->declared_ws_pages) {
      ws_hint = *in_job->declared_ws_pages;
    }

    // The per-node switch sequence, run when the control message arrives,
    // mirroring the paper's Figure 5 (scheduler signals + kernel API calls).
    // Applying is idempotent per generation — a watchdog retransmission that
    // races a late original delivery runs the body only once — and a stale
    // generation is skipped once a newer switch has been applied. The
    // outgoing job, its placements on this node and liveness (dead()) are
    // all evaluated at delivery time, not send time: a process may finish,
    // be killed, or be re-placed here by a checkpoint restart while this
    // signal is in flight (a restarted job may also put several of its
    // ranks on one node, hence the placement loops).
    switch_action_[ni] = [this, node, ni, gen, pager, &cpu, in_job, ws_hint] {
      if (switch_applied_[ni] >= gen || node_dead_[ni]) return;
      switch_applied_[ni] = gen;
      Job* out_job = running_job_[ni];
      if (out_job == in_job) return;  // already running the right job
      running_job_[ni] = in_job;
      auto live_on_node = [node](Job* job, std::vector<Process*>& out) {
        out.clear();
        if (job == nullptr) return;
        for (const auto& pl : job->processes()) {
          if (pl.node == node && !pl.process->dead()) out.push_back(pl.process);
        }
      };
      std::vector<Process*> outs, ins;
      live_on_node(out_job, outs);
      live_on_node(in_job, ins);
      const bool out_live = !outs.empty();
      const int st = trace_track(node, kTrackSched);
      // The enclosing switch span is async: it ends only when the adaptive
      // page-in replay drains, long after this callback returns. The signal
      // phases below are synchronous markers nested inside it.
      std::shared_ptr<TraceSpan> switch_span;
      if (tracer_ != nullptr) {
        switch_span = std::make_shared<TraceSpan>(tracer_->async_span(
            st, "switch", "switch",
            {{"gen", static_cast<double>(gen)},
             {"out", out_job ? static_cast<double>(out_job->id()) : -1.0},
             {"in", in_job ? static_cast<double>(in_job->id()) : -1.0}}));
      }
      {
        TraceSpan s;
        if (tracer_ != nullptr) s = tracer_->span(st, "switch", "stop_bgwrite");
        pager->stop_bgwrite();
      }
      if (out_live) {
        TraceSpan s;
        if (tracer_ != nullptr) s = tracer_->span(st, "switch", "sigstop");
        for (Process* out_proc : outs) {
          pager->on_quantum_end(out_proc->pid());
          cpu.stop_process(*out_proc);
        }
      }
      if (!ins.empty()) {
        Process* in_primary = ins.front();
        if (out_live) {
          pager->adaptive_page_out(outs.front()->pid(), in_primary->pid(),
                                   ws_hint);
        }
        for (Process* in_proc : ins) pager->on_quantum_start(in_proc->pid());
        if (switch_span) {
          pager->adaptive_page_in(in_primary->pid(),
                                  [switch_span] { switch_span->end(); });
        } else {
          pager->adaptive_page_in(in_primary->pid());
        }
        for (std::size_t i = 1; i < ins.size(); ++i) {
          pager->adaptive_page_in(ins[i]->pid());
        }
        TraceSpan s;
        if (tracer_ != nullptr) s = tracer_->span(st, "switch", "sigcont");
        for (Process* in_proc : ins) cpu.cont_process(*in_proc);
      }
    };
    switch_retries_[ni] = 0;
    any_pending = true;
    send_signal(node, switch_action_[ni]);
  }
  if (any_pending) arm_watchdog(gen);
}

void GangScheduler::send_signal(int node, const std::function<void()>& action) {
  SimDuration latency = params_.signal_latency;
  if (FaultInjector* injector = cluster_.fault_injector()) {
    const auto outcome = injector->on_control_signal(node);
    if (outcome.drop) return;  // lost in transit; the watchdog recovers
    latency += outcome.extra_delay;
  }
  cluster_.sim().after(latency, action);
}

void GangScheduler::arm_watchdog(std::uint64_t gen) {
  if (params_.switch_watchdog <= 0) return;
  cluster_.sim().cancel(watchdog_event_);
  watchdog_event_ =
      cluster_.sim().after(params_.signal_latency + params_.switch_watchdog,
                           [this, gen] { check_watchdog(gen); });
}

void GangScheduler::check_watchdog(std::uint64_t gen) {
  if (gen != switch_gen_) return;  // superseded by a newer switch
  bool pending = false;
  for (int node = 0; node < cluster_.size(); ++node) {
    const auto ni = static_cast<std::size_t>(node);
    if (node_dead_[ni] || !switch_action_[ni]) continue;
    if (switch_applied_[ni] >= gen) continue;
    if (switch_retries_[ni] >= params_.watchdog_max_retries) {
      // The node does not respond to control signals: fence it (STONITH)
      // so the rotation can make progress without it.
      cluster_.node(node).vmm().log().warn(
          "node %d unresponsive after %d switch retransmissions; fencing",
          node, switch_retries_[ni]);
      cluster_.fail_node(node);  // observer -> handle_node_failure
      if (gen != switch_gen_) return;  // failure handling rescheduled
      continue;
    }
    ++switch_retries_[ni];
    ++stats_.signal_retransmits;
    if (tracer_ != nullptr) {
      tracer_->instant(trace_track(node, kTrackSched), "switch", "retransmit",
                       {{"gen", static_cast<double>(gen)},
                        {"retry", static_cast<double>(switch_retries_[ni])}});
    }
    send_signal(node, switch_action_[ni]);
    pending = true;
  }
  if (pending && gen == switch_gen_) arm_watchdog(gen);
}

void GangScheduler::schedule_switch_timer(int slot) {
  cluster_.sim().cancel(switch_event_);
  if (matrix_.num_slots() <= 1) return;  // nothing to switch to
  switch_event_ =
      cluster_.sim().after(slot_quantum(slot), [this] { do_switch(); });
}

void GangScheduler::schedule_bg_start(int slot) {
  cluster_.sim().cancel(bg_event_);
  if (!params_.pager.policy.bg_write) return;
  if (matrix_.num_slots() <= 1) return;  // no upcoming switch to prepare for
  const auto delay = static_cast<SimDuration>(
      params_.bg_start_frac * static_cast<double>(slot_quantum(slot)));
  bg_event_ = cluster_.sim().after(delay, [this, slot] {
    if (current_slot_ != slot || matrix_.num_slots() <= slot) return;
    for (int node = 0; node < cluster_.size(); ++node) {
      if (node_dead_[static_cast<std::size_t>(node)]) continue;
      const int job_id = matrix_.job_at(slot, node);
      if (job_id < 0) continue;
      for (const auto& pl : jobs_[static_cast<std::size_t>(job_id)]->processes()) {
        if (pl.node != node || pl.process->dead()) continue;
        pagers_[static_cast<std::size_t>(node)]->start_bgwrite(
            pl.process->pid());
        break;  // one background writer per node is enough
      }
    }
  });
}

void GangScheduler::do_switch() {
  if (matrix_.num_slots() == 0) return;
  ++switch_count_;
  const int next = (current_slot_ + 1) % matrix_.num_slots();
  current_slot_ = next;
  activate_slot(next);
  schedule_switch_timer(next);
  schedule_bg_start(next);
}

void GangScheduler::on_job_finished(Job& job) {
  last_finish_ = cluster_.sim().now();

  // Tear down the job: release its memory on every node, exactly like a
  // real exit under the paper's scheduler.
  for (const auto& placement : job.processes()) {
    cluster_.node(placement.node).vmm().release_process(
        placement.process->pid());
    if (running_job_[static_cast<std::size_t>(placement.node)] == &job) {
      running_job_[static_cast<std::size_t>(placement.node)] = nullptr;
    }
  }
  matrix_.remove(job.id());
  try_admit();  // freed memory may let a waiting job in (admission control)
  reschedule();
}

void GangScheduler::fail_job(Job& job) {
  if (job.done()) return;
  job.mark_failed(cluster_.sim().now());
  ++stats_.jobs_failed;
  for (const auto& placement : job.processes()) {
    const auto ni = static_cast<std::size_t>(placement.node);
    if (!node_dead_[ni]) {
      auto& node = cluster_.node(placement.node);
      node.cpu().kill_process(*placement.process);
      if (node.vmm().space(placement.process->pid()).alive()) {
        node.vmm().release_process(placement.process->pid());
      }
    }
    if (running_job_[ni] == &job) running_job_[ni] = nullptr;
  }
  matrix_.remove(job.id());
  try_admit();  // freed memory may admit a waiting job
}

void GangScheduler::on_page_unrecoverable(int node, Pid pid) {
  for (auto& job : jobs_) {
    if (job->done()) continue;
    bool hit = false;
    for (const auto& pl : job->processes()) {
      if (pl.node == node && pl.process->pid() == pid) hit = true;
    }
    if (!hit) continue;
    if (recovery_ != nullptr && recovery_->on_job_casualty(*job, "lost page")) {
      ++stats_.lost_pages_recovered;
      reschedule();
      return;
    }
    ++stats_.lost_pages_fatal;
    cluster_.node(node).vmm().log().warn(
        "job %d lost a page on node %d (pid %d); aborting the job",
        job->id(), node, static_cast<int>(pid));
    fail_job(*job);
    reschedule();
    return;
  }
}

void GangScheduler::handle_node_failure(int node) {
  const auto ni = static_cast<std::size_t>(node);
  if (node_dead_[ni]) return;
  node_dead_[ni] = true;
  ++stats_.nodes_failed;
  running_job_[ni] = nullptr;
  switch_action_[ni] = nullptr;
  if (!started_) return;  // start() fails the affected jobs itself
  for (auto& job : jobs_) {
    if (job->done() || job->process_on(node) == nullptr) continue;
    if (recovery_ != nullptr &&
        recovery_->on_job_casualty(*job, "node crash")) {
      continue;  // the checkpoint manager took the job over
    }
    fail_job(*job);
  }
  reschedule();
}

void GangScheduler::suspend_job(Job& job) {
  assert(!job.done());
  for (const auto& placement : job.processes()) {
    const auto ni = static_cast<std::size_t>(placement.node);
    if (!node_dead_[ni]) {
      auto& node = cluster_.node(placement.node);
      node.cpu().kill_process(*placement.process);
      if (node.vmm().space(placement.process->pid()).alive()) {
        node.vmm().release_process(placement.process->pid());
      }
    }
    if (running_job_[ni] == &job) running_job_[ni] = nullptr;
  }
  matrix_.remove(job.id());
}

void GangScheduler::resume_restarted_job(Job& job) {
  assert(!job.done());
  ++stats_.jobs_recovered;
  for (const auto& placement : job.processes()) {
    pagers_[static_cast<std::size_t>(placement.node)]->register_process(
        placement.process->pid());
  }
  std::vector<int> nodes = job.nodes();
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  matrix_.assign(job.id(), nodes);
  reschedule();
}

void GangScheduler::abandon_job(Job& job) {
  if (job.done()) return;
  fail_job(job);
  reschedule();
}

bool GangScheduler::switch_settled() const {
  for (int node = 0; node < cluster_.size(); ++node) {
    const auto ni = static_cast<std::size_t>(node);
    if (node_dead_[ni] || !switch_action_[ni]) continue;
    if (switch_applied_[ni] < switch_gen_) return false;
  }
  return true;
}

void GangScheduler::reschedule() {
  if (!started_) return;
  cluster_.sim().cancel(switch_event_);
  cluster_.sim().cancel(bg_event_);
  cluster_.sim().cancel(watchdog_event_);
  if (matrix_.num_slots() == 0) return;  // all done

  // Promote whatever should run now (compaction may have shifted slots).
  current_slot_ = current_slot_ % matrix_.num_slots();
  activate_slot(current_slot_);
  schedule_switch_timer(current_slot_);
  schedule_bg_start(current_slot_);
}

bool GangScheduler::all_finished() const {
  return std::all_of(jobs_.begin(), jobs_.end(),
                     [](const auto& job) { return job->done(); });
}

SimTime GangScheduler::makespan() const {
  return all_finished() ? last_finish_ : -1;
}

// ---------------------------------------------------------------------------
// BatchRunner

Job& BatchRunner::create_job(std::string name) {
  assert(!started_);
  jobs_.push_back(
      std::make_unique<Job>(static_cast<int>(jobs_.size()), std::move(name)));
  return *jobs_.back();
}

void BatchRunner::start() {
  assert(!started_);
  started_ = true;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    for (const auto& placement : jobs_[i]->processes()) {
      placement.process->on_finish = [this, i](Process&) {
        if (jobs_[i]->finished()) on_job_finished(i);
      };
    }
  }
  if (!jobs_.empty()) start_job(0);
}

void BatchRunner::start_job(std::size_t index) {
  running_ = index;
  for (const auto& placement : jobs_[index]->processes()) {
    cluster_.node(placement.node).cpu().cont_process(*placement.process);
  }
}

void BatchRunner::on_job_finished(std::size_t index) {
  last_finish_ = cluster_.sim().now();
  for (const auto& placement : jobs_[index]->processes()) {
    cluster_.node(placement.node).vmm().release_process(
        placement.process->pid());
  }
  if (index + 1 < jobs_.size()) start_job(index + 1);
}

bool BatchRunner::all_finished() const {
  return std::all_of(jobs_.begin(), jobs_.end(),
                     [](const auto& job) { return job->finished(); });
}

SimTime BatchRunner::makespan() const {
  return all_finished() ? last_finish_ : -1;
}

}  // namespace apsim
