#include "gang/gang_scheduler.hpp"

#include <algorithm>
#include <cassert>

namespace apsim {

GangScheduler::GangScheduler(Cluster& cluster, GangParams params)
    : cluster_(cluster), params_(params), matrix_(cluster.size()) {
  pagers_.reserve(static_cast<std::size_t>(cluster.size()));
  for (int n = 0; n < cluster.size(); ++n) {
    pagers_.push_back(
        std::make_unique<AdaptivePager>(cluster.node(n), params_.pager));
  }
  running_job_.assign(static_cast<std::size_t>(cluster.size()), nullptr);
}

Job& GangScheduler::create_job(std::string name) {
  assert(!started_ && "cannot add jobs after start()");
  jobs_.push_back(
      std::make_unique<Job>(static_cast<int>(jobs_.size()), std::move(name)));
  return *jobs_.back();
}

void GangScheduler::start() {
  assert(!started_);
  started_ = true;
  admitted_.assign(jobs_.size(), false);
  for (auto& job : jobs_) {
    assert(!job->processes().empty() && "job has no processes");
    for (const auto& placement : job->processes()) {
      pagers_[static_cast<std::size_t>(placement.node)]->register_process(
          placement.process->pid());
      Job* job_ptr = job.get();
      placement.process->on_finish = [this, job_ptr](Process&) {
        if (job_ptr->finished()) on_job_finished(*job_ptr);
      };
    }
  }
  try_admit();
  assert(matrix_.num_slots() > 0 && "no job admitted at start");
  current_slot_ = 0;
  activate_slot(0);
  schedule_switch_timer(0);
  schedule_bg_start(0);
}

bool GangScheduler::fits_in_memory(const Job& job) const {
  // Per node: the declared working sets of every admitted job on that node
  // plus this one must fit in admission_margin of usable memory. Jobs
  // without a declaration are assumed to need their full address space.
  auto demand = [](const Job& j, int node) -> std::int64_t {
    const Process* p = j.process_on(node);
    if (p == nullptr) return 0;
    // The address-space size is the upper bound; the declaration refines it.
    return j.declared_ws_pages ? *j.declared_ws_pages : 0;
  };
  for (int node : job.nodes()) {
    std::int64_t total = demand(job, node);
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      if (!admitted_[i] || jobs_[i]->finished()) continue;
      total += demand(*jobs_[i], node);
    }
    const auto& frames = cluster_.node(node).vmm().frames();
    const auto budget = static_cast<std::int64_t>(
        params_.admission_margin *
        static_cast<double>(frames.usable_frames()));
    if (total > budget) return false;
  }
  return true;
}

void GangScheduler::try_admit() {
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (admitted_[i] || jobs_[i]->finished()) continue;
    if (params_.admission_control && !fits_in_memory(*jobs_[i])) continue;
    admitted_[i] = true;
    matrix_.assign(jobs_[i]->id(), jobs_[i]->nodes());
  }
}

SimDuration GangScheduler::slot_quantum(int slot) const {
  SimDuration q = params_.quantum;
  for (int job_id : matrix_.jobs_in_slot(slot)) {
    const auto& job = *jobs_[static_cast<std::size_t>(job_id)];
    if (job.quantum_override) q = std::max(q, *job.quantum_override);
  }
  return q;
}

void GangScheduler::activate_slot(int to_slot) {
  assert(to_slot >= 0 && to_slot < matrix_.num_slots());
  for (int node = 0; node < cluster_.size(); ++node) {
    const int in_job_id = matrix_.job_at(to_slot, node);
    Job* in_job = in_job_id >= 0 ? jobs_[static_cast<std::size_t>(in_job_id)].get()
                                 : nullptr;
    Job* out_job = running_job_[static_cast<std::size_t>(node)];
    if (in_job == out_job) continue;  // same job keeps the node: no switch
    running_job_[static_cast<std::size_t>(node)] = in_job;

    Process* out_proc = out_job ? out_job->process_on(node) : nullptr;
    Process* in_proc = in_job ? in_job->process_on(node) : nullptr;
    const bool out_live = out_proc != nullptr && !out_proc->finished();
    AdaptivePager* pager = pagers_[static_cast<std::size_t>(node)].get();
    auto& cpu = cluster_.node(node).cpu();

    std::int64_t ws_hint = -1;
    if (params_.pass_ws_hint && in_job && in_job->declared_ws_pages) {
      ws_hint = *in_job->declared_ws_pages;
    }

    // The control message reaches the node after the signal latency; the
    // whole per-node switch sequence then runs locally, mirroring the
    // paper's Figure 5 (scheduler signals + kernel API calls).
    cluster_.sim().after(
        params_.signal_latency,
        [pager, &cpu, out_proc, in_proc, out_live, ws_hint] {
          pager->stop_bgwrite();
          if (out_live) {
            pager->on_quantum_end(out_proc->pid());
            cpu.stop_process(*out_proc);
          }
          if (in_proc != nullptr && !in_proc->finished()) {
            if (out_live) {
              pager->adaptive_page_out(out_proc->pid(), in_proc->pid(),
                                       ws_hint);
            }
            pager->on_quantum_start(in_proc->pid());
            pager->adaptive_page_in(in_proc->pid());
            cpu.cont_process(*in_proc);
          }
        });
  }
}

void GangScheduler::schedule_switch_timer(int slot) {
  cluster_.sim().cancel(switch_event_);
  if (matrix_.num_slots() <= 1) return;  // nothing to switch to
  switch_event_ =
      cluster_.sim().after(slot_quantum(slot), [this] { do_switch(); });
}

void GangScheduler::schedule_bg_start(int slot) {
  cluster_.sim().cancel(bg_event_);
  if (!params_.pager.policy.bg_write) return;
  if (matrix_.num_slots() <= 1) return;  // no upcoming switch to prepare for
  const auto delay = static_cast<SimDuration>(
      params_.bg_start_frac * static_cast<double>(slot_quantum(slot)));
  bg_event_ = cluster_.sim().after(delay, [this, slot] {
    if (current_slot_ != slot || matrix_.num_slots() <= slot) return;
    for (int node = 0; node < cluster_.size(); ++node) {
      const int job_id = matrix_.job_at(slot, node);
      if (job_id < 0) continue;
      Process* p = jobs_[static_cast<std::size_t>(job_id)]->process_on(node);
      if (p != nullptr && !p->finished()) {
        pagers_[static_cast<std::size_t>(node)]->start_bgwrite(p->pid());
      }
    }
  });
}

void GangScheduler::do_switch() {
  if (matrix_.num_slots() == 0) return;
  ++switch_count_;
  const int next = (current_slot_ + 1) % matrix_.num_slots();
  current_slot_ = next;
  activate_slot(next);
  schedule_switch_timer(next);
  schedule_bg_start(next);
}

void GangScheduler::on_job_finished(Job& job) {
  last_finish_ = cluster_.sim().now();

  // Tear down the job: release its memory on every node, exactly like a
  // real exit under the paper's scheduler.
  for (const auto& placement : job.processes()) {
    cluster_.node(placement.node).vmm().release_process(
        placement.process->pid());
    if (running_job_[static_cast<std::size_t>(placement.node)] == &job) {
      running_job_[static_cast<std::size_t>(placement.node)] = nullptr;
    }
  }
  matrix_.remove(job.id());
  try_admit();  // freed memory may let a waiting job in (admission control)

  cluster_.sim().cancel(switch_event_);
  cluster_.sim().cancel(bg_event_);
  if (matrix_.num_slots() == 0) return;  // all done

  // Promote whatever should run now (compaction may have shifted slots).
  current_slot_ = current_slot_ % matrix_.num_slots();
  activate_slot(current_slot_);
  schedule_switch_timer(current_slot_);
  schedule_bg_start(current_slot_);
}

bool GangScheduler::all_finished() const {
  return std::all_of(jobs_.begin(), jobs_.end(),
                     [](const auto& job) { return job->finished(); });
}

SimTime GangScheduler::makespan() const {
  return all_finished() ? last_finish_ : -1;
}

// ---------------------------------------------------------------------------
// BatchRunner

Job& BatchRunner::create_job(std::string name) {
  assert(!started_);
  jobs_.push_back(
      std::make_unique<Job>(static_cast<int>(jobs_.size()), std::move(name)));
  return *jobs_.back();
}

void BatchRunner::start() {
  assert(!started_);
  started_ = true;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    for (const auto& placement : jobs_[i]->processes()) {
      placement.process->on_finish = [this, i](Process&) {
        if (jobs_[i]->finished()) on_job_finished(i);
      };
    }
  }
  if (!jobs_.empty()) start_job(0);
}

void BatchRunner::start_job(std::size_t index) {
  running_ = index;
  for (const auto& placement : jobs_[index]->processes()) {
    cluster_.node(placement.node).cpu().cont_process(*placement.process);
  }
}

void BatchRunner::on_job_finished(std::size_t index) {
  last_finish_ = cluster_.sim().now();
  for (const auto& placement : jobs_[index]->processes()) {
    cluster_.node(placement.node).vmm().release_process(
        placement.process->pid());
  }
  if (index + 1 < jobs_.size()) start_job(index + 1);
}

bool BatchRunner::all_finished() const {
  return std::all_of(jobs_.begin(), jobs_.end(),
                     [](const auto& job) { return job->finished(); });
}

SimTime BatchRunner::makespan() const {
  return all_finished() ? last_finish_ : -1;
}

}  // namespace apsim
