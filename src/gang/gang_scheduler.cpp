#include "gang/gang_scheduler.hpp"

#include <algorithm>
#include <cassert>

#include "gang/policy_registry.hpp"
#include "net/mpi.hpp"

namespace apsim {

GangScheduler::GangScheduler(Cluster& cluster, GangParams params)
    : cluster_(cluster), params_(std::move(params)), matrix_(cluster.size()) {
  // The legacy admission fields stay authoritative: admission_control
  // upgrades the default policy, admission_margin seeds the shared options.
  params_.policy_opts.admission_margin = params_.admission_margin;
  std::string policy_name = params_.sched_policy;
  if (policy_name == "matrix" && params_.admission_control) {
    policy_name = "admission";
  }
  policy_ = make_sched_policy(policy_name);
  policy_->bind(*this);
  pagers_.reserve(static_cast<std::size_t>(cluster.size()));
  for (int n = 0; n < cluster.size(); ++n) {
    pagers_.push_back(
        std::make_unique<AdaptivePager>(cluster.node(n), params_.pager));
  }
  running_jobs_.assign(static_cast<std::size_t>(cluster.size()), {});
  switch_applied_.assign(static_cast<std::size_t>(cluster.size()), 0);
  switch_action_.assign(static_cast<std::size_t>(cluster.size()), nullptr);
  switch_retries_.assign(static_cast<std::size_t>(cluster.size()), 0);
  node_dead_.assign(static_cast<std::size_t>(cluster.size()), false);
  for (int n = 0; n < cluster.size(); ++n) {
    cluster_.node(n).vmm().set_failure_handler(
        [this, n](Pid pid, VPage, Vmm::PageFailure) {
          on_page_unrecoverable(n, pid);
        });
  }
  cluster_.set_node_failure_observer(
      [this](int n) { handle_node_failure(n); });
}

GangScheduler::~GangScheduler() {
  cluster_.set_node_failure_observer(nullptr);
  for (int n = 0; n < cluster_.size(); ++n) {
    cluster_.node(n).vmm().set_failure_handler(nullptr);
  }
}

SimTime GangScheduler::sim_now() const { return cluster_.sim().now(); }

std::int64_t GangScheduler::usable_frames(int node) const {
  return cluster_.node(node).vmm().frames().usable_frames();
}

Job& GangScheduler::create_job(std::string name) {
  assert(!started_ && "cannot add jobs after start(); use submit_job()");
  jobs_.push_back(
      std::make_unique<Job>(static_cast<int>(jobs_.size()), std::move(name)));
  return *jobs_.back();
}

Job& GangScheduler::submit_job(std::string name) {
  jobs_.push_back(
      std::make_unique<Job>(static_cast<int>(jobs_.size()), std::move(name)));
  return *jobs_.back();
}

void GangScheduler::wire_job(Job& job) {
  for (const auto& placement : job.processes()) {
    pagers_[static_cast<std::size_t>(placement.node)]->register_process(
        placement.process->pid());
    Job* job_ptr = &job;
    placement.process->on_finish = [this, job_ptr](Process&) {
      if (job_ptr->finished()) on_job_finished(*job_ptr);
    };
  }
}

void GangScheduler::start() {
  assert(!started_);
  started_ = true;
  for (auto& job : jobs_) {
    assert(!job->processes().empty() && "job has no processes");
    wire_job(*job);
  }
  for (auto& job : jobs_) policy_->admit(*job);
  // A node may have crashed before start (a t=0 planned fault): its jobs are
  // lost before they ever run.
  for (int n = 0; n < cluster_.size(); ++n) {
    if (!node_dead_[static_cast<std::size_t>(n)]) continue;
    for (auto& job : jobs_) {
      if (!job->done() && job->process_on(n) != nullptr) fail_job(*job);
    }
  }
  if (policy_->num_slots() == 0) return;  // everything failed already
  current_slot_ = 0;
  activate_slot(0);
  schedule_switch_timer(0);
  schedule_bg_start(0);
}

void GangScheduler::start_job(Job& job) {
  assert(started_ && "start_job() is for arrivals after start()");
  assert(!job.processes().empty() && "job has no processes");
  wire_job(job);
  job.arrival = cluster_.sim().now();
  // A job placed on an already-dead node is lost on arrival.
  for (const auto& placement : job.processes()) {
    if (node_dead_[static_cast<std::size_t>(placement.node)]) {
      fail_job(job);
      return;
    }
  }
  const int slots_before = policy_->num_slots();
  policy_->admit(job);
  const int slots_now = policy_->num_slots();
  if (slots_now == 0) return;  // queued (admission/backfill gate)
  if (slots_before == 0 || current_slot_ < 0) {
    // The rotation was empty (or never started): this arrival revives it.
    current_slot_ = 0;
    activate_slot(0);
    schedule_switch_timer(0);
    schedule_bg_start(0);
    return;
  }
  current_slot_ = policy_->resolve_slot(current_slot_);
  // If the arrival landed in the active slot on any of its nodes, deliver
  // the switch signals now rather than after the remaining quantum.
  bool in_active = false;
  std::vector<int> cell;
  for (int node : job.nodes()) {
    if (node_dead_[static_cast<std::size_t>(node)]) continue;
    cell.clear();
    policy_->jobs_at(current_slot_, node, cell);
    if (std::find(cell.begin(), cell.end(), job.id()) != cell.end()) {
      in_active = true;
      break;
    }
  }
  if (in_active) activate_slot(current_slot_);
  if (slots_before == 1 && slots_now > 1) {
    // The rotation just grew past one slot: the quantum timers were idle.
    schedule_switch_timer(current_slot_);
    schedule_bg_start(current_slot_);
  }
}

SimDuration GangScheduler::slot_quantum(int slot) const {
  SimDuration q = params_.quantum;
  for (int job_id : policy_->jobs_in_slot(slot)) {
    const auto& job = *jobs_[static_cast<std::size_t>(job_id)];
    if (job.quantum_override) q = std::max(q, *job.quantum_override);
  }
  return q;
}

void GangScheduler::activate_slot(int to_slot) {
  assert(to_slot >= 0 && to_slot < policy_->num_slots());
  policy_->note_active(to_slot);
  const std::uint64_t gen = ++switch_gen_;
  bool any_pending = false;
  std::vector<int> cell;
  for (int node = 0; node < cluster_.size(); ++node) {
    const auto ni = static_cast<std::size_t>(node);
    switch_action_[ni] = nullptr;
    if (node_dead_[ni]) continue;
    cell.clear();
    policy_->jobs_at(to_slot, node, cell);
    std::vector<Job*> in_jobs;
    in_jobs.reserve(cell.size());
    for (int id : cell) in_jobs.push_back(jobs_[static_cast<std::size_t>(id)].get());
    // running_jobs_ is delivery-time truth: it only changes when a switch
    // action actually runs on the node. Skip the signal only when the node
    // both runs the right jobs and has no older action still in flight —
    // otherwise a dropped cont could leave a job stopped forever while the
    // bookkeeping claims it is running.
    if (in_jobs == running_jobs_[ni] && switch_applied_[ni] == gen - 1) {
      switch_applied_[ni] = gen;  // nothing to apply on this node
      continue;
    }

    AdaptivePager* pager = pagers_[ni].get();
    auto& cpu = cluster_.node(node).cpu();

    std::int64_t ws_hint = -1;
    Job* in_primary = in_jobs.empty() ? nullptr : in_jobs.front();
    if (params_.pass_ws_hint && in_primary != nullptr &&
        in_primary->declared_ws_pages) {
      ws_hint = *in_primary->declared_ws_pages;
    }

    // The per-node switch sequence, run when the control message arrives,
    // mirroring the paper's Figure 5 (scheduler signals + kernel API calls).
    // Applying is idempotent per generation — a watchdog retransmission that
    // races a late original delivery runs the body only once — and a stale
    // generation is skipped once a newer switch has been applied. The
    // outgoing jobs, their placements on this node and liveness (dead())
    // are all evaluated at delivery time, not send time: a process may
    // finish, be killed, or be re-placed here by a checkpoint restart while
    // this signal is in flight (a restarted job may also put several of its
    // ranks on one node, hence the placement loops). Under co-scheduling
    // policies a cell holds several jobs: members present in both the
    // outgoing and incoming sets keep running untouched.
    switch_action_[ni] = [this, node, ni, gen, pager, &cpu,
                          in_jobs = std::move(in_jobs), ws_hint] {
      if (switch_applied_[ni] >= gen || node_dead_[ni]) return;
      switch_applied_[ni] = gen;
      std::vector<Job*> out_jobs = running_jobs_[ni];
      if (out_jobs == in_jobs) return;  // already running the right jobs
      running_jobs_[ni] = in_jobs;
      auto contains = [](const std::vector<Job*>& v, Job* j) {
        return std::find(v.begin(), v.end(), j) != v.end();
      };
      auto live_on_node = [node](Job* job, std::vector<Process*>& out) {
        for (const auto& pl : job->processes()) {
          if (pl.node == node && !pl.process->dead()) out.push_back(pl.process);
        }
      };
      std::vector<Process*> outs, ins;
      for (Job* job : out_jobs) {
        if (!contains(in_jobs, job)) live_on_node(job, outs);
      }
      for (Job* job : in_jobs) {
        if (!contains(out_jobs, job)) live_on_node(job, ins);
      }
      const bool out_live = !outs.empty();
      const int st = trace_track(node, kTrackSched);
      // The enclosing switch span is async: it ends only when the adaptive
      // page-in replay drains, long after this callback returns. The signal
      // phases below are synchronous markers nested inside it.
      std::shared_ptr<TraceSpan> switch_span;
      if (tracer_ != nullptr) {
        Job* out_first = out_jobs.empty() ? nullptr : out_jobs.front();
        Job* in_first = in_jobs.empty() ? nullptr : in_jobs.front();
        switch_span = std::make_shared<TraceSpan>(tracer_->async_span(
            st, "switch", "switch",
            {{"gen", static_cast<double>(gen)},
             {"out", out_first ? static_cast<double>(out_first->id()) : -1.0},
             {"in", in_first ? static_cast<double>(in_first->id()) : -1.0}}));
      }
      {
        TraceSpan s;
        if (tracer_ != nullptr) s = tracer_->span(st, "switch", "stop_bgwrite");
        pager->stop_bgwrite();
      }
      if (out_live) {
        TraceSpan s;
        if (tracer_ != nullptr) s = tracer_->span(st, "switch", "sigstop");
        for (Process* out_proc : outs) {
          pager->on_quantum_end(out_proc->pid());
          cpu.stop_process(*out_proc);
        }
      }
      if (!ins.empty()) {
        Process* in_primary_proc = ins.front();
        if (out_live) {
          pager->adaptive_page_out(outs.front()->pid(), in_primary_proc->pid(),
                                   ws_hint);
        }
        for (Process* in_proc : ins) pager->on_quantum_start(in_proc->pid());
        if (switch_span) {
          pager->adaptive_page_in(in_primary_proc->pid(),
                                  [switch_span] { switch_span->end(); });
        } else {
          pager->adaptive_page_in(in_primary_proc->pid());
        }
        for (std::size_t i = 1; i < ins.size(); ++i) {
          pager->adaptive_page_in(ins[i]->pid());
        }
        TraceSpan s;
        if (tracer_ != nullptr) s = tracer_->span(st, "switch", "sigcont");
        for (Process* in_proc : ins) cpu.cont_process(*in_proc);
      }
    };
    switch_retries_[ni] = 0;
    any_pending = true;
    send_signal(node, switch_action_[ni]);
  }
  if (any_pending) arm_watchdog(gen);
}

void GangScheduler::send_signal(int node, const std::function<void()>& action) {
  SimDuration latency = params_.signal_latency;
  if (FaultInjector* injector = cluster_.fault_injector()) {
    const auto outcome = injector->on_control_signal(node);
    if (outcome.drop) return;  // lost in transit; the watchdog recovers
    latency += outcome.extra_delay;
  }
  cluster_.sim().after(latency, action);
}

void GangScheduler::arm_watchdog(std::uint64_t gen) {
  if (params_.switch_watchdog <= 0) return;
  cluster_.sim().cancel(watchdog_event_);
  watchdog_event_ =
      cluster_.sim().after(params_.signal_latency + params_.switch_watchdog,
                           [this, gen] { check_watchdog(gen); });
}

void GangScheduler::check_watchdog(std::uint64_t gen) {
  if (gen != switch_gen_) return;  // superseded by a newer switch
  bool pending = false;
  for (int node = 0; node < cluster_.size(); ++node) {
    const auto ni = static_cast<std::size_t>(node);
    if (node_dead_[ni] || !switch_action_[ni]) continue;
    if (switch_applied_[ni] >= gen) continue;
    if (switch_retries_[ni] >= params_.watchdog_max_retries) {
      // The node does not respond to control signals: fence it (STONITH)
      // so the rotation can make progress without it.
      cluster_.node(node).vmm().log().warn(
          "node %d unresponsive after %d switch retransmissions; fencing",
          node, switch_retries_[ni]);
      cluster_.fail_node(node);  // observer -> handle_node_failure
      if (gen != switch_gen_) return;  // failure handling rescheduled
      continue;
    }
    ++switch_retries_[ni];
    ++stats_.signal_retransmits;
    if (tracer_ != nullptr) {
      tracer_->instant(trace_track(node, kTrackSched), "switch", "retransmit",
                       {{"gen", static_cast<double>(gen)},
                        {"retry", static_cast<double>(switch_retries_[ni])}});
    }
    send_signal(node, switch_action_[ni]);
    pending = true;
  }
  if (pending && gen == switch_gen_) arm_watchdog(gen);
}

void GangScheduler::schedule_switch_timer(int slot) {
  cluster_.sim().cancel(switch_event_);
  if (policy_->num_slots() <= 1) return;  // nothing to switch to
  switch_event_ =
      cluster_.sim().after(slot_quantum(slot), [this] { do_switch(); });
}

void GangScheduler::schedule_bg_start(int slot) {
  cluster_.sim().cancel(bg_event_);
  if (!params_.pager.policy.bg_write) return;
  if (policy_->num_slots() <= 1) return;  // no upcoming switch to prepare for
  const auto delay = static_cast<SimDuration>(
      params_.bg_start_frac * static_cast<double>(slot_quantum(slot)));
  bg_event_ = cluster_.sim().after(delay, [this, slot] {
    if (current_slot_ != slot || policy_->num_slots() <= slot) return;
    std::vector<int> cell;
    for (int node = 0; node < cluster_.size(); ++node) {
      if (node_dead_[static_cast<std::size_t>(node)]) continue;
      cell.clear();
      policy_->jobs_at(slot, node, cell);
      bool started = false;
      for (int job_id : cell) {
        for (const auto& pl :
             jobs_[static_cast<std::size_t>(job_id)]->processes()) {
          if (pl.node != node || pl.process->dead()) continue;
          pagers_[static_cast<std::size_t>(node)]->start_bgwrite(
              pl.process->pid());
          started = true;
          break;  // one background writer per node is enough
        }
        if (started) break;
      }
    }
  });
}

void GangScheduler::do_switch() {
  if (policy_->num_slots() == 0) return;
  ++switch_count_;
  const int next = policy_->next_slot(current_slot_);
  current_slot_ = next;
  activate_slot(next);
  schedule_switch_timer(next);
  schedule_bg_start(next);
}

void GangScheduler::on_job_finished(Job& job) {
  last_finish_ = cluster_.sim().now();

  // Tear down the job: release its memory on every node, exactly like a
  // real exit under the paper's scheduler.
  for (const auto& placement : job.processes()) {
    cluster_.node(placement.node).vmm().release_process(
        placement.process->pid());
    std::erase(running_jobs_[static_cast<std::size_t>(placement.node)], &job);
  }
  policy_->remove(job);  // freed resources may let a queued job in
  policy_->on_departure();
  reschedule();
}

void GangScheduler::fail_job(Job& job) {
  if (job.done()) return;
  job.mark_failed(cluster_.sim().now());
  ++stats_.jobs_failed;
  for (const auto& placement : job.processes()) {
    const auto ni = static_cast<std::size_t>(placement.node);
    if (!node_dead_[ni]) {
      auto& node = cluster_.node(placement.node);
      node.cpu().kill_process(*placement.process);
      if (node.vmm().space(placement.process->pid()).alive()) {
        node.vmm().release_process(placement.process->pid());
      }
    }
    std::erase(running_jobs_[ni], &job);
  }
  policy_->remove(job);  // freed resources may admit a queued job
}

void GangScheduler::on_page_unrecoverable(int node, Pid pid) {
  for (auto& job : jobs_) {
    if (job->done()) continue;
    bool hit = false;
    for (const auto& pl : job->processes()) {
      if (pl.node == node && pl.process->pid() == pid) hit = true;
    }
    if (!hit) continue;
    if (recovery_ != nullptr && recovery_->on_job_casualty(*job, "lost page")) {
      ++stats_.lost_pages_recovered;
      reschedule();
      return;
    }
    ++stats_.lost_pages_fatal;
    cluster_.node(node).vmm().log().warn(
        "job %d lost a page on node %d (pid %d); aborting the job",
        job->id(), node, static_cast<int>(pid));
    fail_job(*job);
    reschedule();
    return;
  }
}

void GangScheduler::handle_node_failure(int node) {
  const auto ni = static_cast<std::size_t>(node);
  if (node_dead_[ni]) return;
  node_dead_[ni] = true;
  ++stats_.nodes_failed;
  running_jobs_[ni].clear();
  switch_action_[ni] = nullptr;
  if (!started_) return;  // start() fails the affected jobs itself
  for (auto& job : jobs_) {
    if (job->done() || job->process_on(node) == nullptr) continue;
    if (recovery_ != nullptr &&
        recovery_->on_job_casualty(*job, "node crash")) {
      continue;  // the checkpoint manager took the job over
    }
    fail_job(*job);
  }
  policy_->on_node_failed(node);
  reschedule();
}

void GangScheduler::suspend_job(Job& job) {
  assert(!job.done());
  for (const auto& placement : job.processes()) {
    const auto ni = static_cast<std::size_t>(placement.node);
    if (!node_dead_[ni]) {
      auto& node = cluster_.node(placement.node);
      node.cpu().kill_process(*placement.process);
      if (node.vmm().space(placement.process->pid()).alive()) {
        node.vmm().release_process(placement.process->pid());
      }
    }
    std::erase(running_jobs_[ni], &job);
  }
  policy_->detach(job);
}

void GangScheduler::resume_restarted_job(Job& job) {
  assert(!job.done());
  ++stats_.jobs_recovered;
  for (const auto& placement : job.processes()) {
    pagers_[static_cast<std::size_t>(placement.node)]->register_process(
        placement.process->pid());
  }
  policy_->readmit(job);
  reschedule();
}

void GangScheduler::abandon_job(Job& job) {
  if (job.done()) return;
  fail_job(job);
  reschedule();
}

bool GangScheduler::switch_settled() const {
  for (int node = 0; node < cluster_.size(); ++node) {
    const auto ni = static_cast<std::size_t>(node);
    if (node_dead_[ni] || !switch_action_[ni]) continue;
    if (switch_applied_[ni] < switch_gen_) return false;
  }
  return true;
}

void GangScheduler::reschedule() {
  if (!started_) return;
  cluster_.sim().cancel(switch_event_);
  cluster_.sim().cancel(bg_event_);
  cluster_.sim().cancel(watchdog_event_);
  if (policy_->num_slots() == 0) return;  // all done

  // Promote whatever should run now. The policy re-derives the active
  // slot's index (compaction may have shifted it; matrix-backed policies
  // follow the row's stable identity).
  current_slot_ = policy_->resolve_slot(current_slot_);
  activate_slot(current_slot_);
  schedule_switch_timer(current_slot_);
  schedule_bg_start(current_slot_);
}

// ---------------------------------------------------------------------------
// Inter-node job migration

bool GangScheduler::migrate_job(Job& job, const std::vector<int>& targets) {
  if (!started_ || job.done() || migrations_.contains(job.id())) return false;
  const auto& placements = job.processes();
  if (placements.empty() || targets.size() != placements.size()) return false;
  // A parallel job needs its communicator re-homed; without a resolver only
  // single-rank jobs are safe to move.
  if (placements.size() > 1 && !comm_of_) return false;
  for (int target : targets) {
    if (target < 0 || target >= cluster_.size()) return false;
    if (node_dead_[static_cast<std::size_t>(target)]) return false;
  }
  for (const auto& pl : placements) {
    if (node_dead_[static_cast<std::size_t>(pl.node)]) return false;
    // Only a fully SIGSTOPped gang moves: a running or fault/comm-blocked
    // rank may hold a partially entered collective or in-flight I/O whose
    // completion would target the torn-down incarnation.
    if (pl.process->dead() ||
        pl.process->state() != ProcState::kStopped) {
      return false;
    }
  }
  // Snapshot the live images and check the targets can hold them before
  // tearing anything down.
  auto mig = std::make_shared<Migration>();
  mig->to = targets;
  std::vector<Vmm::ImageSnapshot> snaps;
  std::vector<std::int64_t> num_pages;
  snaps.reserve(placements.size());
  std::vector<std::int64_t> swap_need(
      static_cast<std::size_t>(cluster_.size()), 0);
  for (const auto& pl : placements) {
    mig->from.push_back(pl.node);
    const Pid pid = pl.process->pid();
    auto& vmm = cluster_.node(pl.node).vmm();
    num_pages.push_back(vmm.space(pid).num_pages());
    snaps.push_back(vmm.snapshot_image(pid));
    swap_need[static_cast<std::size_t>(
        targets[snaps.size() - 1])] += snaps.back().live_pages;
  }
  for (int n = 0; n < cluster_.size(); ++n) {
    if (swap_need[static_cast<std::size_t>(n)] == 0) continue;
    if (cluster_.node(n).swap().free_slots() <
        swap_need[static_cast<std::size_t>(n)]) {
      return false;
    }
  }
  // Point of no return: take the job out of the rotation (kills the stopped
  // processes and releases the source spaces) and ship the images.
  suspend_job(job);
  migrations_[job.id()] = mig;
  mig->pid.assign(placements.size(), kNoPid);
  mig->slots.resize(placements.size());
  mig->outstanding = 1;  // submission sentinel
  const int job_id = job.id();
  for (std::size_t i = 0; i < placements.size(); ++i) {
    auto& node = cluster_.node(targets[i]);
    mig->pid[i] = node.vmm().create_process(num_pages[i]);
    const auto& snap = snaps[i];
    if (snap.live_pages > 0) {
      mig->slots[i] = node.swap().alloc_pages(snap.live_pages, 64);
      node.vmm().bind_swap_image(mig->pid[i], snap.live, mig->slots[i]);
    }
    stats_.migrated_pages += static_cast<std::uint64_t>(snap.live_pages);
    // The image crosses the network as one transfer per rank (page data
    // plus one page of metadata), then lands in the target swap partition
    // as real foreground I/O.
    const std::int64_t bytes = (snap.live_pages + 1) * kPageBytes;
    stats_.migration_bytes += static_cast<std::uint64_t>(bytes);
    ++mig->outstanding;
    const int target = targets[i];
    const std::size_t rank = i;
    cluster_.network().send(
        mig->from[i], target, bytes, [this, job_id, mig, target, rank] {
          // Delivered: write the staged runs to the target swap.
          if (node_dead_[static_cast<std::size_t>(target)] ||
              mig->slots[rank].empty()) {
            migration_step_done(job_id);
            return;
          }
          for (const SlotRun& run : mig->slots[rank]) {
            ++mig->outstanding;
            cluster_.node(target).swap().write(
                run, IoPriority::kForeground,
                [this, job_id, mig](IoResult result) {
                  if (!result.ok) mig->failed = true;
                  migration_step_done(job_id);
                });
          }
          migration_step_done(job_id);  // drop the delivery token
        });
  }
  migration_step_done(job_id);  // drop the submission sentinel
  return true;
}

void GangScheduler::migration_step_done(int job_id) {
  const auto it = migrations_.find(job_id);
  if (it == migrations_.end()) return;
  const std::shared_ptr<Migration> mig = it->second;
  if (--mig->outstanding > 0) return;
  migrations_.erase(it);
  Job& job = *jobs_[static_cast<std::size_t>(job_id)];
  if (job.done()) {
    // The job was failed while its image was in flight (e.g. a source-node
    // crash handled by handle_node_failure): drop the staged spaces.
    release_migration_staging(*mig);
    ++stats_.migrations_failed;
    return;
  }
  for (int target : mig->to) {
    if (node_dead_[static_cast<std::size_t>(target)]) {
      // A target died mid-flight: the image is gone; the job cannot resume.
      release_migration_staging(*mig);
      ++stats_.migrations_failed;
      fail_job(job);
      reschedule();
      return;
    }
  }
  if (mig->failed) {
    release_migration_staging(*mig);
    ++stats_.migrations_failed;
    fail_job(job);
    reschedule();
    return;
  }
  finish_migration(job, *mig);
}

void GangScheduler::release_migration_staging(const Migration& mig) {
  for (std::size_t i = 0; i < mig.pid.size(); ++i) {
    if (mig.pid[i] == kNoPid) continue;
    const int node_index = mig.to[i];
    if (node_dead_[static_cast<std::size_t>(node_index)]) continue;
    auto& vmm = cluster_.node(node_index).vmm();
    if (vmm.space(mig.pid[i]).alive()) vmm.release_process(mig.pid[i]);
  }
}

void GangScheduler::finish_migration(Job& job, const Migration& mig) {
  MpiComm* comm = comm_of_ ? comm_of_(job.id()) : nullptr;
  const auto& placements = job.processes();
  for (std::size_t i = 0; i < placements.size(); ++i) {
    Process& p = *placements[i].process;
    // Re-home the process: off the old CPU, onto its target, under the
    // staged address space. adopt() leaves the op cursor untouched — unlike
    // a checkpoint restart nothing rewinds; the job continues exactly where
    // its SIGSTOP left it, paying major faults to pull its pages back in.
    cluster_.node(placements[i].node).cpu().detach(p);
    job.move_process(i, mig.to[i]);
    cluster_.node(mig.to[i]).cpu().adopt(p, mig.pid[i]);
    pagers_[static_cast<std::size_t>(mig.to[i])]->register_process(mig.pid[i]);
    if (comm != nullptr) comm->rebind_node(p.rank, mig.to[i]);
  }
  ++stats_.jobs_migrated;
  cluster_.node(mig.to.front())
      .vmm()
      .log()
      .info("job %d migrated onto node %d; resuming", job.id(), mig.to.front());
  policy_->readmit(job);
  reschedule();
}

bool GangScheduler::all_finished() const {
  return std::all_of(jobs_.begin(), jobs_.end(),
                     [](const auto& job) { return job->done(); });
}

SimTime GangScheduler::makespan() const {
  return all_finished() ? last_finish_ : -1;
}

// ---------------------------------------------------------------------------
// BatchRunner

Job& BatchRunner::create_job(std::string name) {
  assert(!started_);
  jobs_.push_back(
      std::make_unique<Job>(static_cast<int>(jobs_.size()), std::move(name)));
  return *jobs_.back();
}

void BatchRunner::start() {
  assert(!started_);
  started_ = true;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    for (const auto& placement : jobs_[i]->processes()) {
      placement.process->on_finish = [this, i](Process&) {
        if (jobs_[i]->finished()) on_job_finished(i);
      };
    }
  }
  if (!jobs_.empty()) start_job(0);
}

void BatchRunner::start_job(std::size_t index) {
  running_ = index;
  for (const auto& placement : jobs_[index]->processes()) {
    cluster_.node(placement.node).cpu().cont_process(*placement.process);
  }
}

void BatchRunner::on_job_finished(std::size_t index) {
  last_finish_ = cluster_.sim().now();
  for (const auto& placement : jobs_[index]->processes()) {
    cluster_.node(placement.node).vmm().release_process(
        placement.process->pid());
  }
  if (index + 1 < jobs_.size()) start_job(index + 1);
}

bool BatchRunner::all_finished() const {
  return std::all_of(jobs_.begin(), jobs_.end(),
                     [](const auto& job) { return job->finished(); });
}

SimTime BatchRunner::makespan() const {
  return all_finished() ? last_finish_ : -1;
}

}  // namespace apsim
