#include "gang/job.hpp"

// Job is header-only today; this TU anchors the library target.
