#pragma once

#include <cstdint>
#include <memory>

#include "disk/disk.hpp"
#include "disk/swap_device.hpp"
#include "mem/vmm.hpp"
#include "proc/cpu.hpp"
#include "sim/simulator.hpp"
#include "tier/tier_manager.hpp"

/// \file node.hpp
/// One compute node of the modelled cluster: CPU executor, VMM, and a local
/// disk holding the swap partition — the paper's per-machine configuration
/// (1 GB RAM, local swap, one application process per gang job).

namespace apsim {

struct NodeParams {
  DiskParams disk;
  /// Size of the swap partition, in page slots (defaults to the whole disk).
  std::int64_t swap_slots = 0;
  VmmParams vmm;
  CpuParams cpu;

  /// Megabytes wired down at boot (the paper's mlock() trick for stressing
  /// memory). Applied after watermark sanity checks.
  double wired_mb = 0.0;

  /// Compressed swap tier. pool_mb == 0 (the default) means no TierManager
  /// is constructed at all, and the node behaves bit-identically to the
  /// pre-tier tree. When enabled, the pool's budget is wired down out of
  /// the node's frames on top of wired_mb.
  TierParams tier;
};

class Node {
 public:
  Node(Simulator& sim, const NodeParams& params, int index);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] int index() const { return index_; }
  [[nodiscard]] Disk& disk() { return disk_; }
  [[nodiscard]] SwapDevice& swap() { return swap_; }
  [[nodiscard]] Vmm& vmm() { return vmm_; }
  [[nodiscard]] Cpu& cpu() { return cpu_; }
  /// The compressed swap tier, or nullptr when disabled.
  [[nodiscard]] TierManager* tier() { return tier_.get(); }
  [[nodiscard]] const TierManager* tier() const { return tier_.get(); }

  /// Crash the node: the disk fails permanently, every attached process is
  /// killed, and their address spaces are released. Idempotent.
  void fail();
  [[nodiscard]] bool failed() const { return failed_; }

 private:
  int index_;
  Disk disk_;
  SwapDevice swap_;
  /// Constructed before (destroyed after) the Vmm that routes through it,
  /// and destroyed before the SwapDevice whose release hook it holds.
  std::unique_ptr<TierManager> tier_;
  Vmm vmm_;
  Cpu cpu_;
  bool failed_ = false;
};

}  // namespace apsim
