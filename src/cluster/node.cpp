#include "cluster/node.hpp"

namespace apsim {

Node::Node(Simulator& sim, const NodeParams& params, int index)
    : index_(index),
      disk_(sim, params.disk),
      swap_(disk_, 0,
            params.swap_slots > 0 ? params.swap_slots
                                  : params.disk.num_blocks),
      vmm_(sim, swap_, params.vmm),
      cpu_(sim, vmm_, params.cpu) {
  if (params.wired_mb > 0.0) {
    vmm_.wire_down(mb_to_pages(params.wired_mb));
  }
}

void Node::fail() {
  if (failed_) return;
  failed_ = true;
  disk_.fail_device();
  cpu_.kill_all();
  // Release every still-live address space; pages with I/O in flight are
  // reaped by the (now erroring) completion handlers.
  for (const Pid pid : vmm_.pids()) {
    if (vmm_.space(pid).alive()) vmm_.release_process(pid);
  }
}

}  // namespace apsim
