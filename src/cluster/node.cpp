#include "cluster/node.hpp"

namespace apsim {

Node::Node(Simulator& sim, const NodeParams& params, int index)
    : index_(index),
      disk_(sim, params.disk),
      swap_(disk_, 0,
            params.swap_slots > 0 ? params.swap_slots
                                  : params.disk.num_blocks),
      vmm_(sim, swap_, params.vmm),
      cpu_(sim, vmm_, params.cpu) {
  if (params.wired_mb > 0.0) {
    vmm_.wire_down(mb_to_pages(params.wired_mb));
  }
}

}  // namespace apsim
