#include "cluster/node.hpp"

namespace apsim {

Node::Node(Simulator& sim, const NodeParams& params, int index)
    : index_(index),
      disk_(sim, params.disk),
      swap_(disk_, 0,
            params.swap_slots > 0 ? params.swap_slots
                                  : params.disk.num_blocks),
      tier_(params.tier.pool_mb > 0.0
                ? std::make_unique<TierManager>(sim, swap_, params.tier)
                : nullptr),
      vmm_(sim, swap_, params.vmm),
      cpu_(sim, vmm_, params.cpu) {
  if (params.wired_mb > 0.0) {
    vmm_.wire_down(mb_to_pages(params.wired_mb));
  }
  if (tier_) {
    // The pool's RAM comes out of the node's frames: enabling the tier is
    // an honest trade of usable memory for cheap switch-time paging.
    vmm_.wire_down(mb_to_pages(params.tier.pool_mb));
    vmm_.set_tier(tier_.get());
  }
}

void Node::fail() {
  if (failed_) return;
  failed_ = true;
  disk_.fail_device();
  cpu_.kill_all();
  // Release every still-live address space; pages with I/O in flight are
  // reaped by the (now erroring) completion handlers.
  for (const Pid pid : vmm_.pids()) {
    if (vmm_.space(pid).alive()) vmm_.release_process(pid);
  }
}

}  // namespace apsim
