#include "cluster/cluster.hpp"

#include <cassert>

namespace apsim {

Cluster::Cluster(int num_nodes, const NodeParams& node_params,
                 NetParams net_params, std::uint64_t seed, FaultPlan faults)
    : sim_(seed), net_(sim_, num_nodes, net_params) {
  assert(num_nodes > 0);
  nodes_.reserve(static_cast<std::size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(sim_, node_params, i));
  }
  if (!faults.empty()) {
    injector_ = std::make_unique<FaultInjector>(sim_, std::move(faults));
    for (int i = 0; i < num_nodes; ++i) {
      nodes_[static_cast<std::size_t>(i)]->disk().set_fault_injector(
          injector_.get(), i);
      if (TierManager* tier = nodes_[static_cast<std::size_t>(i)]->tier()) {
        tier->set_fault_injector(injector_.get(), i);
      }
    }
    injector_->schedule_crashes([this](int n) {
      if (n >= 0 && n < size()) fail_node(n);
    });
  }
}

void Cluster::fail_node(int i) {
  Node& n = node(i);
  if (n.failed()) return;
  n.fail();
  if (node_failure_observer_) node_failure_observer_(i);
}

}  // namespace apsim
