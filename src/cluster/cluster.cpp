#include "cluster/cluster.hpp"

#include <cassert>

namespace apsim {

Cluster::Cluster(int num_nodes, const NodeParams& node_params,
                 NetParams net_params, std::uint64_t seed)
    : sim_(seed), net_(sim_, num_nodes, net_params) {
  assert(num_nodes > 0);
  nodes_.reserve(static_cast<std::size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(sim_, node_params, i));
  }
}

}  // namespace apsim
