#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cluster/node.hpp"
#include "fault/fault_injector.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

/// \file cluster.hpp
/// The whole modelled system: a Simulator, N identical nodes, and the
/// interconnect. Experiments construct one Cluster per configuration; sweep
/// runners construct many Clusters, one per worker thread (shared-nothing).
/// A non-empty FaultPlan attaches a FaultInjector to every node's disk and
/// schedules any planned node crashes; with an empty plan no injector exists
/// at all, so fault-free runs are bit-identical to builds without faults.

namespace apsim {

class Cluster {
 public:
  Cluster(int num_nodes, const NodeParams& node_params,
          NetParams net_params = {}, std::uint64_t seed = 1,
          FaultPlan faults = {});

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] Network& network() { return net_; }
  [[nodiscard]] int size() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] Node& node(int i) { return *nodes_[static_cast<std::size_t>(i)]; }

  /// The fault injector, or nullptr when the plan is empty (fault-free).
  [[nodiscard]] FaultInjector* fault_injector() { return injector_.get(); }

  /// Crash node \p i at the current virtual time (idempotent). The
  /// node-failure observer, if any, runs after the node is torn down.
  void fail_node(int i);
  [[nodiscard]] bool node_alive(int i) { return !node(i).failed(); }

  /// Invoked after a node crashes; the gang scheduler hooks in here to fail
  /// affected jobs and drop the node from the rotation.
  void set_node_failure_observer(std::function<void(int)> observer) {
    node_failure_observer_ = std::move(observer);
  }

 private:
  Simulator sim_;
  Network net_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<FaultInjector> injector_;
  std::function<void(int)> node_failure_observer_;
};

}  // namespace apsim
