#pragma once

#include <memory>
#include <vector>

#include "cluster/node.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

/// \file cluster.hpp
/// The whole modelled system: a Simulator, N identical nodes, and the
/// interconnect. Experiments construct one Cluster per configuration; sweep
/// runners construct many Clusters, one per worker thread (shared-nothing).

namespace apsim {

class Cluster {
 public:
  Cluster(int num_nodes, const NodeParams& node_params,
          NetParams net_params = {}, std::uint64_t seed = 1);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] Network& network() { return net_; }
  [[nodiscard]] int size() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] Node& node(int i) { return *nodes_[static_cast<std::size_t>(i)]; }

 private:
  Simulator sim_;
  Network net_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace apsim
