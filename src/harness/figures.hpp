#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "harness/config.hpp"
#include "harness/runner.hpp"
#include "metrics/table.hpp"

/// \file figures.hpp
/// One entry point per table/figure of the paper's evaluation. Each returns
/// printable panels (with the paper's reported values alongside ours where
/// the paper states them) so bench binaries and EXPERIMENTS.md share one
/// source of truth. `threads` caps the sweep parallelism (0 = all cores).

namespace apsim {

struct FigurePanel {
  std::string title;
  Table table;
};

struct FigureResult {
  std::string title;
  std::vector<FigurePanel> panels;
  std::string notes;  ///< free-form extra output (e.g. ASCII traces)
};

void print_figure(std::ostream& os, const FigureResult& figure);

/// Figure 6: paging-activity traces of 2x LU on 4 machines (350 MB usable,
/// 300 s quanta) under orig, so, so/ao and so/ao/ai/bg.
[[nodiscard]] FigureResult run_fig6(unsigned threads = 0);

/// Figure 7: serial benchmarks (1 node, class B, 2 instances): completion
/// time, switching overhead, paging reduction. \p scalar_touch forces the
/// scalar per-touch access loop (perf baseline; results are bit-identical).
[[nodiscard]] FigureResult run_fig7(unsigned threads = 0,
                                    bool scalar_touch = false);

/// Figure 8: parallel benchmarks on 2 and 4 machines: completion time,
/// switching overhead, paging reduction. \p scalar_touch as in run_fig7.
[[nodiscard]] FigureResult run_fig8(unsigned threads = 0,
                                    bool scalar_touch = false);

/// Figure 9: LU mechanism ablation (orig, ai, so, so/ao, so/ao/bg,
/// so/ao/ai/bg) for serial, 2- and 4-machine runs.
[[nodiscard]] FigureResult run_fig9(unsigned threads = 0);

/// Section 1 motivation (Moreira et al.): three 45 MB jobs gang-scheduled
/// on a 128 MB vs a 256 MB machine.
[[nodiscard]] FigureResult run_motivation(unsigned threads = 0);

/// The serial Figure 7 memory configuration (usable MB) for an app; exposed
/// so tests and ablation benches reuse the calibrated values.
[[nodiscard]] double fig7_usable_mb(NpbApp app);

/// The parallel Figure 8 memory configuration (usable MB per node).
[[nodiscard]] double fig8_usable_mb(NpbApp app, int nodes);

/// Baseline experiment configuration shared by the figures: class B, two
/// instances, 5-minute quanta, 1 GB nodes.
[[nodiscard]] ExperimentConfig figure_base(NpbApp app, int nodes,
                                           double usable_mb, PolicySet policy);

}  // namespace apsim
