#pragma once

#include "harness/config.hpp"
#include "metrics/experiment.hpp"

/// \file open_arrival.hpp
/// The open-arrival driver: streams synthetic jobs (Poisson or diurnal
/// interarrivals, multi-tenant mixes, optional stragglers — see
/// workloads/generator.hpp) onto a gang-scheduled cluster. Jobs are created
/// at their arrival instant and handed to GangScheduler::submit_job /
/// start_job, so the configured SchedulerPolicy sees a live, changing job
/// set instead of the classic fixed one. Slowdown metrics come out per job.

namespace apsim {

/// Run \p config as an open-arrival experiment. Requires
/// config.arrival_process != "none"; `nodes` is the cluster size and
/// `instances` the number of streamed jobs. run_config() dispatches here
/// automatically.
[[nodiscard]] RunOutcome run_open(const ExperimentConfig& config);

}  // namespace apsim
