#include "harness/config.hpp"

#include <cassert>

namespace apsim {

std::string ExperimentConfig::describe() const {
  if (!label.empty()) return label;
  std::string out;
  out += to_string(app);
  out += '.';
  out += to_string(cls);
  out += " x";
  out += std::to_string(instances);
  out += " on ";
  out += std::to_string(nodes);
  out += " node(s), ";
  out += std::to_string(static_cast<int>(usable_memory_mb));
  out += "MB, ";
  out += policy.to_string();
  return out;
}

NodeParams ExperimentConfig::make_node_params() const {
  assert(usable_memory_mb > 0.0 && usable_memory_mb <= node_memory_mb);
  NodeParams node;
  node.vmm.total_frames = mb_to_pages(node_memory_mb);
  node.vmm.page_cluster = page_cluster;
  node.vmm.page_aging = page_aging;
  node.wired_mb = node_memory_mb - usable_memory_mb;
  // Swap partition sized like a 2002 installation: ~1.5x the anonymous
  // memory it must hold. Tight enough that slot churn from partially
  // re-dirtied footprints fragments the free map over time (defeating block
  // transfers for scatter-write workloads such as IS), roomy enough never
  // to run out.
  const WorkloadSpec spec = npb_spec(app, cls);
  const std::int64_t per_proc = spec.footprint_pages(nodes);
  node.swap_slots =
      std::max<std::int64_t>((3 * per_proc * instances) / 2, mb_to_pages(512.0));
  node.disk.num_blocks = node.swap_slots;
  return node;
}

}  // namespace apsim
