#include "harness/config.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "control/controller.hpp"
#include "gang/policy_registry.hpp"
#include "mem/reclaim_registry.hpp"
#include "workloads/generator.hpp"

namespace apsim {

void ExperimentConfig::validate() const {
  auto fail = [](const std::string& message) {
    throw std::invalid_argument("config: " + message);
  };
  if (nodes < 1) fail("nodes must be >= 1, got " + std::to_string(nodes));
  if (instances < 1) {
    fail("instances must be >= 1, got " + std::to_string(instances));
  }
  if (quantum <= 0) {
    fail("quantum must be positive, got " + std::to_string(quantum) + " ns");
  }
  if (quantum_override && *quantum_override <= 0) {
    fail("quantum_override must be positive, got " +
         std::to_string(*quantum_override) + " ns");
  }
  if (bg_start_frac < 0.0 || bg_start_frac > 1.0) {
    fail("bg_start_frac must be in [0, 1], got " +
         std::to_string(bg_start_frac));
  }
  if (node_memory_mb <= 0.0) {
    fail("node_memory_mb must be positive, got " +
         std::to_string(node_memory_mb));
  }
  if (usable_memory_mb <= 0.0) {
    fail("usable_memory_mb must be positive, got " +
         std::to_string(usable_memory_mb));
  }
  if (usable_memory_mb > node_memory_mb) {
    fail("usable_memory_mb (" + std::to_string(usable_memory_mb) +
         ") exceeds node_memory_mb (" + std::to_string(node_memory_mb) + ")");
  }
  const VmmParams vmm_defaults;
  if (mb_to_pages(usable_memory_mb) <= vmm_defaults.freepages_high) {
    fail("usable memory of " + std::to_string(usable_memory_mb) +
         " MB leaves no frames above the freepages.high watermark");
  }
  if (page_cluster < 1) {
    fail("page_cluster must be >= 1, got " + std::to_string(page_cluster));
  }
  if (iterations_scale <= 0.0) {
    fail("iterations_scale must be positive, got " +
         std::to_string(iterations_scale));
  }
  if (horizon <= 0) {
    fail("horizon must be positive, got " + std::to_string(horizon) + " ns");
  }
  if (swap_mb < 0.0) {
    fail("swap_mb must be >= 0, got " + std::to_string(swap_mb));
  }
  if (swap_mb > 0.0 && swap_mb < node_memory_mb - usable_memory_mb) {
    fail("swap of " + std::to_string(swap_mb) +
         " MB is smaller than the wired-down memory (" +
         std::to_string(node_memory_mb - usable_memory_mb) + " MB)");
  }
  if (tier_mb < 0.0) {
    fail("tier_mb must be >= 0, got " + std::to_string(tier_mb));
  }
  if (tier_mb > 0.0 &&
      mb_to_pages(usable_memory_mb) - mb_to_pages(tier_mb) <=
          vmm_defaults.freepages_high) {
    fail("tier pool of " + std::to_string(tier_mb) +
         " MB leaves no usable frames above the freepages.high watermark");
  }
  if (io_retry_limit < 0) {
    fail("io_retry_limit must be >= 0, got " + std::to_string(io_retry_limit));
  }
  if (io_retry_base <= 0) {
    fail("io_retry_base must be positive, got " +
         std::to_string(io_retry_base) + " ns");
  }
  if (io_retry_cap < io_retry_base) {
    fail("io_retry_cap must be >= io_retry_base, got cap " +
         std::to_string(io_retry_cap) + " ns < base " +
         std::to_string(io_retry_base) + " ns");
  }
  if (stalled_fault_retry_limit < 1) {
    fail("stalled_fault_retry_limit must be >= 1, got " +
         std::to_string(stalled_fault_retry_limit));
  }
  if (write_failure_streak_limit < 1) {
    fail("write_failure_streak_limit must be >= 1, got " +
         std::to_string(write_failure_streak_limit));
  }
  if (checkpoint_interval < 0) {
    fail("checkpoint_interval must be >= 0, got " +
         std::to_string(checkpoint_interval) + " ns");
  }
  if (ckpt_max_retries < 0) {
    fail("ckpt_max_retries must be >= 0, got " +
         std::to_string(ckpt_max_retries));
  }
  if (!is_reclaim_policy(reclaim_policy)) {
    fail("unknown reclaim_policy '" + reclaim_policy + "'; " +
         reclaim_policy_names_hint());
  }
  if (reclaim_batch < 1) {
    fail("reclaim_batch must be >= 1, got " + std::to_string(reclaim_batch));
  }
  if (max_prefetch_run < 1) {
    fail("max_prefetch_run must be >= 1, got " +
         std::to_string(max_prefetch_run));
  }
  if (!is_sched_policy(sched_policy)) {
    fail("unknown sched_policy '" + sched_policy + "'; " +
         sched_policy_names_hint());
  }
  if (dfrs_mem_frac <= 0.0 || dfrs_mem_frac > 1.0) {
    fail("dfrs_mem_frac must be in (0, 1], got " +
         std::to_string(dfrs_mem_frac));
  }
  if (dfrs_max_share < 1) {
    fail("dfrs_max_share must be >= 1, got " + std::to_string(dfrs_max_share));
  }
  if (arrival_process != "none") {
    // Throws with the valid names on a bad value.
    static_cast<void>(parse_arrival_process(arrival_process));
    if (arrival_mean_s <= 0.0) {
      fail("arrival_mean_s must be positive, got " +
           std::to_string(arrival_mean_s));
    }
    if (diurnal_period_s <= 0.0) {
      fail("diurnal_period_s must be positive, got " +
           std::to_string(diurnal_period_s));
    }
    if (diurnal_low_frac <= 0.0 || diurnal_low_frac > 1.0) {
      fail("diurnal_low_frac must be in (0, 1], got " +
           std::to_string(diurnal_low_frac));
    }
    if (num_tenants < 1) {
      fail("num_tenants must be >= 1, got " + std::to_string(num_tenants));
    }
    if (straggler_fraction < 0.0 || straggler_fraction > 1.0) {
      fail("straggler_fraction must be in [0, 1], got " +
           std::to_string(straggler_fraction));
    }
    if (straggler_slowdown < 1.0) {
      fail("straggler_slowdown must be >= 1, got " +
           std::to_string(straggler_slowdown));
    }
    if (deadline_slack < 0.0) {
      fail("deadline_slack must be >= 0, got " +
           std::to_string(deadline_slack));
    }
    if (open_max_width < 1 || open_max_width > nodes) {
      fail("open_max_width must be in [1, nodes], got " +
           std::to_string(open_max_width));
    }
    if (open_min_pages < 1 || open_min_pages > open_max_pages) {
      fail("open page bounds must satisfy 1 <= min <= max, got [" +
           std::to_string(open_min_pages) + ", " +
           std::to_string(open_max_pages) + "]");
    }
    if (open_min_iterations < 1 || open_min_iterations > open_max_iterations) {
      fail("open iteration bounds must satisfy 1 <= min <= max, got [" +
           std::to_string(open_min_iterations) + ", " +
           std::to_string(open_max_iterations) + "]");
    }
    if (batch_mode) fail("open arrivals have no batch baseline mode");
  }
  if (!is_controller(autotune_controller)) {
    fail("unknown autotune_controller '" + autotune_controller + "'; " +
         controller_names_hint());
  }
  if (autotune_interval <= 0) {
    fail("autotune_interval must be positive, got " +
         std::to_string(autotune_interval) + " ns");
  }
}

std::string ExperimentConfig::describe() const {
  if (!label.empty()) return label;
  std::string out;
  if (arrival_process != "none") {
    out += arrival_process;
    out += " x";
    out += std::to_string(instances);
    out += " on ";
    out += std::to_string(nodes);
    out += " node(s), ";
    out += sched_policy;
    return out;
  }
  out += to_string(app);
  out += '.';
  out += to_string(cls);
  out += " x";
  out += std::to_string(instances);
  out += " on ";
  out += std::to_string(nodes);
  out += " node(s), ";
  out += std::to_string(static_cast<int>(usable_memory_mb));
  out += "MB, ";
  out += policy.to_string();
  return out;
}

NodeParams ExperimentConfig::make_node_params() const {
  validate();
  NodeParams node;
  node.vmm.total_frames = mb_to_pages(node_memory_mb);
  node.vmm.page_cluster = page_cluster;
  node.vmm.page_aging = page_aging;
  node.vmm.reclaim_batch = reclaim_batch;
  node.vmm.max_prefetch_run = max_prefetch_run;
  node.vmm.io_retry_limit = io_retry_limit;
  node.vmm.io_retry_base = io_retry_base;
  node.vmm.io_retry_cap = io_retry_cap;
  node.vmm.stalled_fault_retry_limit = stalled_fault_retry_limit;
  node.vmm.write_failure_streak_limit = write_failure_streak_limit;
  node.cpu.batched_touch = !scalar_touch;
  node.wired_mb = node_memory_mb - usable_memory_mb;
  node.tier.pool_mb = tier_mb;
  node.tier.ratio_model = tier_ratio_model;
  node.tier.writeback = tier_writeback;
  if (swap_mb > 0.0) {
    node.swap_slots = mb_to_pages(swap_mb);
  } else if (arrival_process != "none") {
    // Open streams have no NPB footprint to size against; give every node
    // room for 1.5x the largest possible rank image per in-flight job.
    node.swap_slots = std::max<std::int64_t>(
        (3 * open_max_pages * instances) / 2, mb_to_pages(512.0));
  } else {
    // Swap partition sized like a 2002 installation: ~1.5x the anonymous
    // memory it must hold. Tight enough that slot churn from partially
    // re-dirtied footprints fragments the free map over time (defeating
    // block transfers for scatter-write workloads such as IS), roomy enough
    // never to run out.
    const WorkloadSpec spec = npb_spec(app, cls);
    const std::int64_t per_proc = spec.footprint_pages(nodes);
    node.swap_slots = std::max<std::int64_t>((3 * per_proc * instances) / 2,
                                             mb_to_pages(512.0));
  }
  node.disk.num_blocks = node.swap_slots;
  if (checkpoint_interval > 0) {
    // Checkpoint images live in a region past the swap partition on the
    // same device, so image writes contend with paging I/O for the head.
    node.disk.num_blocks = node.swap_slots * 2;
  }
  return node;
}

}  // namespace apsim
