#include "harness/scenario.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace apsim {

namespace {

[[nodiscard]] std::string_view trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

[[nodiscard]] double parse_double(std::string_view value,
                                  std::string_view key) {
  // std::from_chars, not stod: reject trailing junk ("5x" is not 5), locale
  // quirks, and the textual non-finites ("inf", "nan") from_chars itself
  // still accepts — no scenario knob has a meaningful non-finite setting.
  double out = 0.0;
  const auto* begin = value.data();
  const auto* end = value.data() + value.size();
  const auto result = std::from_chars(begin, end, out);
  if (result.ec != std::errc{} || result.ptr != end || !std::isfinite(out)) {
    throw std::invalid_argument("scenario: bad number for '" +
                                std::string(key) + "': " + std::string(value));
  }
  return out;
}

[[nodiscard]] std::int64_t parse_int(std::string_view value,
                                     std::string_view key) {
  std::int64_t out = 0;
  const auto* begin = value.data();
  const auto* end = value.data() + value.size();
  const auto result = std::from_chars(begin, end, out);
  if (result.ec != std::errc{} || result.ptr != end) {
    throw std::invalid_argument("scenario: bad integer for '" +
                                std::string(key) + "': " + std::string(value));
  }
  return out;
}

[[nodiscard]] bool parse_bool(std::string_view value, std::string_view key) {
  if (value == "true" || value == "1" || value == "yes" || value == "on") {
    return true;
  }
  if (value == "false" || value == "0" || value == "no" || value == "off") {
    return false;
  }
  throw std::invalid_argument("scenario: bad boolean for '" +
                              std::string(key) + "': " + std::string(value));
}

}  // namespace

void apply_scenario_key(ExperimentConfig& config, std::string_view key,
                        std::string_view value) {
  if (key == "app") {
    config.app = parse_app(value);
  } else if (key == "class") {
    config.cls = parse_class(value);
  } else if (key == "nodes") {
    config.nodes = static_cast<int>(parse_int(value, key));
  } else if (key == "instances") {
    config.instances = static_cast<int>(parse_int(value, key));
  } else if (key == "memory_mb") {
    config.node_memory_mb = parse_double(value, key);
  } else if (key == "usable_mb") {
    config.usable_memory_mb = parse_double(value, key);
  } else if (key == "policy") {
    config.policy = PolicySet::parse(value);
  } else if (key == "quantum_s") {
    config.quantum = static_cast<SimDuration>(parse_double(value, key) *
                                              static_cast<double>(kSecond));
  } else if (key == "quantum_override_s") {
    config.quantum_override = static_cast<SimDuration>(
        parse_double(value, key) * static_cast<double>(kSecond));
  } else if (key == "page_cluster") {
    config.page_cluster = parse_int(value, key);
  } else if (key == "bg_start_frac") {
    config.bg_start_frac = parse_double(value, key);
  } else if (key == "pass_ws_hint") {
    config.pass_ws_hint = parse_bool(value, key);
  } else if (key == "seed") {
    config.seed = static_cast<std::uint64_t>(parse_int(value, key));
  } else if (key == "iterations_scale") {
    config.iterations_scale = parse_double(value, key);
  } else if (key == "capture_traces") {
    config.capture_traces = parse_bool(value, key);
  } else if (key == "trace_json") {
    // Switch-phase tracer output path ("-" = collect in memory only); see
    // ExperimentConfig::trace_json.
    config.trace_json = std::string(value);
  } else if (key == "batch") {
    config.batch_mode = parse_bool(value, key);
  } else if (key == "scalar_touch") {
    // Perf baseline: force the scalar per-touch loop (bit-identical output).
    config.scalar_touch = parse_bool(value, key);
  } else if (key == "label") {
    config.label = std::string(value);
  } else if (key == "horizon_s") {
    config.horizon = static_cast<SimDuration>(parse_double(value, key) *
                                              static_cast<double>(kSecond));
  } else if (key == "fault") {
    // Repeatable: each line appends one FaultSpec, e.g.
    //   fault = disk_transient node=0 start_s=60 end_s=120 p=0.05
    config.faults.add(FaultSpec::parse(value));
  } else if (key == "watchdog_ms") {
    config.switch_watchdog = static_cast<SimDuration>(
        parse_double(value, key) * static_cast<double>(kMillisecond));
  } else if (key == "swap_mb") {
    config.swap_mb = parse_double(value, key);
  } else if (key == "tier_mb") {
    config.tier_mb = parse_double(value, key);
  } else if (key == "tier_ratio_model") {
    config.tier_ratio_model = parse_tier_ratio_model(value);
  } else if (key == "tier_writeback") {
    config.tier_writeback = parse_bool(value, key);
  } else if (key == "io_retry_limit") {
    config.io_retry_limit = static_cast<int>(parse_int(value, key));
  } else if (key == "io_retry_base_ms") {
    config.io_retry_base = static_cast<SimDuration>(
        parse_double(value, key) * static_cast<double>(kMillisecond));
  } else if (key == "io_retry_cap_ms") {
    config.io_retry_cap = static_cast<SimDuration>(
        parse_double(value, key) * static_cast<double>(kMillisecond));
  } else if (key == "stalled_retry_limit") {
    config.stalled_fault_retry_limit = static_cast<int>(parse_int(value, key));
  } else if (key == "write_failure_streak") {
    config.write_failure_streak_limit = static_cast<int>(parse_int(value, key));
  } else if (key == "checkpoint_interval_s") {
    // 0 disables checkpoint/restart entirely (bit-identical runs).
    config.checkpoint_interval = static_cast<SimDuration>(
        parse_double(value, key) * static_cast<double>(kSecond));
  } else if (key == "ckpt_incremental") {
    config.ckpt_incremental = parse_bool(value, key);
  } else if (key == "ckpt_max_retries") {
    config.ckpt_max_retries = static_cast<int>(parse_int(value, key));
  } else if (key == "restart_placement") {
    config.restart_placement = parse_restart_placement(value);
  } else if (key == "lost_work_model") {
    config.lost_work_model = parse_lost_work_model(value);
  } else if (key == "reclaim_policy") {
    config.reclaim_policy = std::string(value);
  } else if (key == "reclaim_batch") {
    config.reclaim_batch = parse_int(value, key);
  } else if (key == "max_prefetch_run") {
    config.max_prefetch_run = parse_int(value, key);
  } else if (key == "sched_policy") {
    config.sched_policy = std::string(value);
  } else if (key == "dfrs_mem_frac") {
    config.dfrs_mem_frac = parse_double(value, key);
  } else if (key == "dfrs_max_share") {
    config.dfrs_max_share = static_cast<int>(parse_int(value, key));
  } else if (key == "auto_migrate") {
    config.auto_migrate = parse_bool(value, key);
  } else if (key == "arrival") {
    // "none" (fixed job set), "poisson" or "diurnal" (open stream).
    config.arrival_process = std::string(value);
  } else if (key == "arrival_mean_s") {
    config.arrival_mean_s = parse_double(value, key);
  } else if (key == "diurnal_period_s") {
    config.diurnal_period_s = parse_double(value, key);
  } else if (key == "diurnal_low_frac") {
    config.diurnal_low_frac = parse_double(value, key);
  } else if (key == "tenants") {
    config.num_tenants = static_cast<int>(parse_int(value, key));
  } else if (key == "straggler_fraction") {
    config.straggler_fraction = parse_double(value, key);
  } else if (key == "straggler_slowdown") {
    config.straggler_slowdown = parse_double(value, key);
  } else if (key == "deadline_slack") {
    config.deadline_slack = parse_double(value, key);
  } else if (key == "job_width_max") {
    config.open_max_width = static_cast<int>(parse_int(value, key));
  } else if (key == "job_pages_min") {
    config.open_min_pages = parse_int(value, key);
  } else if (key == "job_pages_max") {
    config.open_max_pages = parse_int(value, key);
  } else if (key == "job_iterations_min") {
    config.open_min_iterations = parse_int(value, key);
  } else if (key == "job_iterations_max") {
    config.open_max_iterations = parse_int(value, key);
  } else if (key == "autotune") {
    config.autotune = parse_bool(value, key);
  } else if (key == "autotune_controller") {
    config.autotune_controller = std::string(value);
  } else if (key == "autotune_interval_s") {
    config.autotune_interval = static_cast<SimDuration>(
        parse_double(value, key) * static_cast<double>(kSecond));
  } else if (key == "autotune_policy") {
    config.autotune_policy = parse_bool(value, key);
  } else {
    throw std::invalid_argument("scenario: unknown key '" + std::string(key) +
                                "'");
  }
}

std::vector<ExperimentConfig> parse_scenario(std::istream& in) {
  std::vector<ExperimentConfig> runs;
  ExperimentConfig defaults;
  enum class Section { kNone, kDefaults, kRun };
  Section section = Section::kNone;

  std::string raw;
  int line_no = 0;
  auto fail = [&](const std::string& message) {
    throw std::invalid_argument("scenario line " + std::to_string(line_no) +
                                ": " + message);
  };

  while (std::getline(in, raw)) {
    ++line_no;
    std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#') continue;

    if (line.front() == '[') {
      if (line.back() != ']') fail("unterminated section header");
      const std::string_view name = trim(line.substr(1, line.size() - 2));
      if (name == "defaults") {
        if (!runs.empty()) fail("[defaults] must precede every [run]");
        section = Section::kDefaults;
      } else if (name == "run") {
        runs.push_back(defaults);
        section = Section::kRun;
      } else {
        fail("unknown section [" + std::string(name) + "]");
      }
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) fail("expected 'key = value'");
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));
    if (key.empty()) fail("empty key");

    try {
      switch (section) {
        case Section::kNone:
          fail("key outside of a [defaults] or [run] section");
          break;
        case Section::kDefaults:
          apply_scenario_key(defaults, key, value);
          break;
        case Section::kRun:
          apply_scenario_key(runs.back(), key, value);
          break;
      }
    } catch (const std::invalid_argument& e) {
      fail(e.what());
    }
  }
  return runs;
}

std::vector<ExperimentConfig> parse_scenario(std::string_view text) {
  std::istringstream in{std::string(text)};
  return parse_scenario(in);
}

}  // namespace apsim
