#include "harness/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <fstream>
#include <map>
#include <memory>
#include <stdexcept>
#include <thread>

#include "cluster/cluster.hpp"
#include "control/control_plane.hpp"
#include "harness/open_arrival.hpp"
#include "gang/gang_scheduler.hpp"
#include "mem/reclaim_registry.hpp"
#include "metrics/tracer.hpp"
#include "net/mpi.hpp"
#include "recover/checkpoint_manager.hpp"
#include "workloads/npb.hpp"

namespace apsim {

namespace {

SimTime trace_clock(const void* ctx) {
  return static_cast<const Simulator*>(ctx)->now();
}

/// Everything a run owns: the cluster, its processes and communicators.
struct Built {
  std::unique_ptr<Cluster> cluster;
  std::vector<std::unique_ptr<Process>> processes;
  std::map<int, std::unique_ptr<MpiComm>> comm_by_job;
  WorkloadSpec spec;
};

[[nodiscard]] Built build_cluster(const ExperimentConfig& config) {
  Built built;
  built.spec = npb_spec(config.app, config.cls);
  built.cluster = std::make_unique<Cluster>(
      config.nodes, config.make_node_params(), config.make_net_params(),
      config.seed, config.faults);
  return built;
}

/// Create the jobs and processes on a scheduler (GangScheduler or
/// BatchRunner share the create_job interface).
template <typename Scheduler>
void build_jobs(Built& built, const ExperimentConfig& config,
                Scheduler& scheduler) {
  const std::int64_t npages = built.spec.footprint_pages(config.nodes);
  for (int j = 0; j < config.instances; ++j) {
    std::string job_name = std::string(to_string(config.app)) + "." +
                           std::string(to_string(config.cls)) + "#" +
                           std::to_string(j);
    Job& job = scheduler.create_job(job_name);
    if (config.quantum_override) job.quantum_override = config.quantum_override;
    job.declared_ws_pages = built.spec.expected_ws_pages(config.nodes);

    std::unique_ptr<MpiComm> comm;
    if (config.nodes > 1) {
      comm = std::make_unique<MpiComm>(built.cluster->sim(),
                                       built.cluster->network(), config.nodes);
    }
    for (int n = 0; n < config.nodes; ++n) {
      auto& node = built.cluster->node(n);
      const Pid pid = node.vmm().create_process(npages);
      NpbBuildOptions options;
      options.nprocs = config.nodes;
      options.seed = config.seed * 7919 + static_cast<std::uint64_t>(j) * 131 +
                     static_cast<std::uint64_t>(n);
      options.iterations_scale = config.iterations_scale;
      auto process = std::make_unique<Process>(
          job_name + ":r" + std::to_string(n), pid,
          build_npb_program(built.spec, options));
      node.cpu().attach(*process);
      if (comm) comm->bind(n, *process, n);
      job.add_process(n, *process);
      built.processes.push_back(std::move(process));
    }
    if (comm) built.comm_by_job.emplace(job.id(), std::move(comm));
  }

  // CPUs are shared between jobs, so the comm handler dispatches on the
  // process's job id.
  if (config.nodes > 1) {
    auto* comms = &built.comm_by_job;
    for (int n = 0; n < config.nodes; ++n) {
      built.cluster->node(n).cpu().set_comm_handler(
          [comms](Process& p, const CommOp& op, std::function<void()> resume) {
            comms->at(p.job_id)->enter(p, op, std::move(resume));
          });
    }
  }
}

/// Harvest per-job and cluster-wide statistics into a RunOutcome.
template <typename Scheduler>
void collect(const Built& built, const ExperimentConfig& config,
             const Scheduler& scheduler, bool finished, RunOutcome& out) {
  out.makespan = finished ? scheduler.makespan() : -1;
  for (const auto& job : scheduler.jobs()) {
    JobOutcome jo;
    jo.name = job->name();
    jo.completion = job->finished_at();
    jo.failed = job->failed();
    if (jo.failed) ++out.jobs_failed;
    for (const auto& placement : job->processes()) {
      const auto& proc = *placement.process;
      const auto& space =
          built.cluster->node(placement.node).vmm().space(proc.pid());
      jo.major_faults += space.stats().major_faults;
      jo.minor_faults += space.stats().minor_faults;
      jo.pages_swapped_in += space.stats().pages_swapped_in;
      jo.pages_swapped_out += space.stats().pages_swapped_out;
      jo.false_evictions += space.stats().false_evictions;
      jo.cpu_time += proc.stats().cpu_time;
      jo.fault_wait += proc.stats().fault_wait;
      jo.comm_wait += proc.stats().comm_wait;
    }
    out.pages_swapped_in += jo.pages_swapped_in;
    out.pages_swapped_out += jo.pages_swapped_out;
    out.major_faults += jo.major_faults;
    out.false_evictions += jo.false_evictions;
    out.jobs.push_back(std::move(jo));
  }
  for (int n = 0; n < built.cluster->size(); ++n) {
    auto& node = built.cluster->node(n);
    out.io_errors += node.disk().stats().io_errors;
    out.disk_blocks_written += node.disk().stats().blocks_written;
    out.disk_blocks_read += node.disk().stats().blocks_read;
    const auto& vstats = node.vmm().stats();
    out.io_retries += vstats.io_retries;
    out.pages_unrecoverable +=
        vstats.pages_unrecoverable + vstats.out_of_swap_faults;
    if (const TierManager* tier = node.tier()) {
      const auto& tstats = tier->stats();
      out.tier_pool_hits += tstats.pool_hits;
      out.tier_pool_misses += tstats.pool_misses;
      out.tier_writeback_pages += tstats.writeback_pages;
      const auto& pstats = tier->pool().stats();
      out.tier_pages_stored += pstats.pages_stored;
      out.tier_bytes_stored += pstats.bytes_stored;
    }
  }
  if (config.capture_traces) {
    for (int n = 0; n < built.cluster->size(); ++n) {
      auto& vmm = built.cluster->node(n).vmm();
      PagingTrace trace;
      trace.label = "node" + std::to_string(n);
      trace.pages_in = vmm.pagein_series();
      trace.pages_out = vmm.pageout_series();
      out.traces.push_back(std::move(trace));
    }
  }
}

/// Construct the run's switch-phase tracer and attach it to every component
/// on the switch path. Returns nullptr (and touches nothing) when
/// config.trace_json is empty, keeping untraced runs bit-identical.
[[nodiscard]] std::shared_ptr<Tracer> wire_tracer(
    Built& built, GangScheduler& scheduler, const ExperimentConfig& config) {
  if (config.trace_json.empty()) return nullptr;
  auto tracer = std::make_shared<Tracer>(&built.cluster->sim(), trace_clock);
  scheduler.set_tracer(tracer.get());
  for (int n = 0; n < built.cluster->size(); ++n) {
    auto& node = built.cluster->node(n);
    const std::string prefix = "node" + std::to_string(n) + " ";
    scheduler.pager(n).set_tracer(tracer.get(), trace_track(n, kTrackSched));
    node.vmm().set_tracer(tracer.get(), trace_track(n, kTrackVmm));
    node.disk().set_tracer(tracer.get(), trace_track(n, kTrackDisk));
    tracer->set_track_name(trace_track(n, kTrackSched), prefix + "switch");
    tracer->set_track_name(trace_track(n, kTrackVmm), prefix + "vmm");
    tracer->set_track_name(trace_track(n, kTrackDisk), prefix + "disk");
    if (TierManager* tier = node.tier()) {
      tier->set_tracer(tracer.get(), trace_track(n, kTrackTier));
      tracer->set_track_name(trace_track(n, kTrackTier), prefix + "tier");
    }
  }
  return tracer;
}

/// Export the tracer into the outcome: phase statistics always, Chrome JSON
/// unless the configured path is the in-memory magic value "-".
void finish_trace(std::shared_ptr<Tracer> tracer,
                  const ExperimentConfig& config, RunOutcome& out) {
  if (!tracer) return;
  out.switch_phases = tracer->phase_stats();
  if (config.trace_json != "-") {
    std::ofstream os(config.trace_json);
    if (!os) {
      throw std::runtime_error("run_gang: cannot open trace_json path '" +
                               config.trace_json + "'");
    }
    tracer->write_chrome_json(os);
  }
  out.trace = std::move(tracer);
}

}  // namespace

void parallel_indices(std::size_t n, unsigned threads,
                      const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = std::min<unsigned>(threads, static_cast<unsigned>(n));
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      body(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
}

RunOutcome run_gang(const ExperimentConfig& config) {
  config.validate();
  Built built = build_cluster(config);

  GangParams params;
  params.quantum = config.quantum;
  params.bg_start_frac = config.bg_start_frac;
  params.pass_ws_hint = config.pass_ws_hint;
  params.pager.policy = config.policy;
  params.pager.reclaim_policy = config.reclaim_policy;
  params.sched_policy = config.sched_policy;
  params.policy_opts.dfrs_mem_frac = config.dfrs_mem_frac;
  params.policy_opts.dfrs_max_share = config.dfrs_max_share;
  params.policy_opts.auto_migrate = config.auto_migrate;
  if (config.switch_watchdog > 0) {
    params.switch_watchdog = config.switch_watchdog;
  } else if (config.switch_watchdog == 0 &&
             config.faults.disturbs_control_plane()) {
    // Auto mode: the control plane is under attack, so arm the watchdog;
    // undisturbed runs keep it off and schedule no extra events.
    params.switch_watchdog = 50 * kMillisecond;
  }
  GangScheduler scheduler(*built.cluster, params);
  build_jobs(built, config, scheduler);
  scheduler.set_comm_resolver([&built](int job_id) -> MpiComm* {
    const auto it = built.comm_by_job.find(job_id);
    return it == built.comm_by_job.end() ? nullptr : it->second.get();
  });
  std::shared_ptr<Tracer> tracer = wire_tracer(built, scheduler, config);

  // Coordinated checkpoint/restart. interval = 0 constructs nothing at all:
  // no events, no extra disk region, bit-identical to a recovery-free build.
  // Declared after the scheduler so it uninstalls its hook before the
  // scheduler is torn down.
  std::unique_ptr<CheckpointManager> ckpt;
  if (config.checkpoint_interval > 0) {
    CheckpointParams cparams;
    cparams.interval = config.checkpoint_interval;
    cparams.incremental = config.ckpt_incremental;
    cparams.max_retries = config.ckpt_max_retries;
    cparams.placement = config.restart_placement;
    cparams.lost_work = config.lost_work_model;
    ckpt = std::make_unique<CheckpointManager>(*built.cluster, scheduler,
                                               cparams);
    ckpt->set_comm_resolver([&built](int job_id) -> MpiComm* {
      const auto it = built.comm_by_job.find(job_id);
      return it == built.comm_by_job.end() ? nullptr : it->second.get();
    });
    if (tracer) ckpt->set_tracer(tracer.get());
  }

  // Adaptive control plane. autotune off constructs nothing at all: no
  // sampling, no events, bit-identical to a build without the subsystem.
  std::unique_ptr<ControlPlane> plane;
  if (config.autotune) {
    ControlPlaneParams pparams;
    pparams.controller = config.autotune_controller;
    pparams.interval = config.autotune_interval;
    pparams.tune_policy = config.autotune_policy;
    plane = std::make_unique<ControlPlane>(*built.cluster, scheduler, pparams);
    if (tracer) plane->set_tracer(tracer.get());
  }

  scheduler.start();
  if (ckpt) ckpt->start();
  if (plane) plane->start();

  const bool finished = built.cluster->sim().run_until(
      [&scheduler] { return scheduler.all_finished(); }, config.horizon);

  RunOutcome out;
  out.label = config.describe();
  out.policy = config.policy.to_string();
  collect(built, config, scheduler, finished, out);
  out.switches = scheduler.switches();
  for (int n = 0; n < built.cluster->size(); ++n) {
    const auto& stats = scheduler.pager(n).stats();
    out.pages_recorded += stats.pages_recorded;
    out.pages_replayed += stats.pages_replayed;
    out.bg_pages_written += stats.bg_pages_written;
  }
  out.nodes_failed = scheduler.stats().nodes_failed;
  out.signal_retransmits = scheduler.stats().signal_retransmits;
  out.jobs_recovered = scheduler.stats().jobs_recovered;
  out.lost_pages_recovered = scheduler.stats().lost_pages_recovered;
  out.lost_pages_fatal = scheduler.stats().lost_pages_fatal;
  if (ckpt) {
    const auto& cstats = ckpt->stats();
    out.checkpoints_taken = cstats.checkpoints_taken;
    out.checkpoint_failures = cstats.checkpoint_failures;
    out.ckpt_io_retries = cstats.ckpt_io_retries;
    out.bytes_checkpointed = cstats.bytes_checkpointed;
    out.pages_staged = cstats.pages_staged;
    out.restarts_failed = cstats.restarts_failed;
    out.lost_work_ms = to_seconds(cstats.lost_work) * 1000.0;
    const auto& jobs = scheduler.jobs();
    for (std::size_t i = 0; i < out.jobs.size() && i < jobs.size(); ++i) {
      out.jobs[i].recovered = ckpt->restarts_of(jobs[i]->id()) > 0;
    }
  }
  if (plane) {
    const auto& pstats = plane->stats();
    out.autotune_ticks = pstats.ticks;
    out.autotune_adjustments = pstats.adjustments;
    out.autotune_policy_switches = pstats.policy_switches;
  }
  finish_trace(std::move(tracer), config, out);
  return out;
}

RunOutcome run_batch(const ExperimentConfig& config) {
  config.validate();
  Built built = build_cluster(config);

  // Batch mode has no AdaptivePager to compose policies through; install a
  // non-default base policy directly on each node's VMM.
  if (config.reclaim_policy != "clock-lru") {
    for (int n = 0; n < built.cluster->size(); ++n) {
      built.cluster->node(n).vmm().set_reclaim_policy(
          make_reclaim_policy(config.reclaim_policy));
    }
  }

  BatchRunner runner(*built.cluster);
  build_jobs(built, config, runner);
  runner.start();

  const bool finished = built.cluster->sim().run_until(
      [&runner] { return runner.all_finished(); }, config.horizon);

  RunOutcome out;
  out.label = config.describe() + " [batch]";
  out.policy = "batch";
  collect(built, config, runner, finished, out);
  return out;
}

RunOutcome run_config(const ExperimentConfig& config) {
  if (config.batch_mode) return run_batch(config);
  if (config.arrival_process != "none") return run_open(config);
  return run_gang(config);
}

EvaluatedRun evaluate(const ExperimentConfig& config) {
  EvaluatedRun result;
  result.gang = run_gang(config);
  ExperimentConfig batch_config = config;
  batch_config.capture_traces = false;
  result.batch = run_batch(batch_config);
  if (result.gang.makespan > 0 && result.batch.makespan > 0) {
    result.overhead =
        switching_overhead(result.gang.makespan, result.batch.makespan);
  }
  return result;
}

}  // namespace apsim
