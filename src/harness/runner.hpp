#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "harness/config.hpp"
#include "metrics/experiment.hpp"

/// \file runner.hpp
/// Builds the cluster + workloads for a configuration, runs it gang- or
/// batch-scheduled, and extracts the outcome. Sweeps run one Simulator per
/// worker thread (shared-nothing), so experiments scale with host cores
/// while every individual simulation stays deterministic.

namespace apsim {

/// Run the configuration under the gang scheduler with its PolicySet.
[[nodiscard]] RunOutcome run_gang(const ExperimentConfig& config);

/// Run the same jobs back to back (the zero-switching baseline).
[[nodiscard]] RunOutcome run_batch(const ExperimentConfig& config);

/// Dispatch on config.batch_mode (handy with parallel_map over mixed lists).
[[nodiscard]] RunOutcome run_config(const ExperimentConfig& config);

/// Gang run plus batch baseline plus the derived paper metrics.
struct EvaluatedRun {
  RunOutcome gang;
  RunOutcome batch;
  double overhead = 0.0;  ///< switching_overhead(gang, batch)
};
[[nodiscard]] EvaluatedRun evaluate(const ExperimentConfig& config);

/// Run \p body(i) for every i in [0, n) on up to \p threads workers (0 =
/// hardware concurrency), self-scheduling over indices. The shared-nothing
/// worker pool behind parallel_map and the sweep-fork harness; \p body must
/// be thread-safe for distinct indices.
void parallel_indices(std::size_t n, unsigned threads,
                      const std::function<void(std::size_t)>& body);

/// Map \p configs through \p fn on up to \p threads workers (0 = hardware
/// concurrency), preserving order. \p fn must be thread-safe for distinct
/// configs (run_gang/run_batch/evaluate are: each run builds its own
/// Simulator and touches no shared state).
template <typename Result>
[[nodiscard]] std::vector<Result> parallel_map(
    const std::vector<ExperimentConfig>& configs,
    const std::function<Result(const ExperimentConfig&)>& fn,
    unsigned threads = 0) {
  std::vector<Result> results(configs.size());
  parallel_indices(configs.size(), threads,
                   [&](std::size_t i) { results[i] = fn(configs[i]); });
  return results;
}

}  // namespace apsim
