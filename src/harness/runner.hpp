#pragma once

#include <algorithm>
#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "harness/config.hpp"
#include "metrics/experiment.hpp"

/// \file runner.hpp
/// Builds the cluster + workloads for a configuration, runs it gang- or
/// batch-scheduled, and extracts the outcome. Sweeps run one Simulator per
/// worker thread (shared-nothing), so experiments scale with host cores
/// while every individual simulation stays deterministic.

namespace apsim {

/// Run the configuration under the gang scheduler with its PolicySet.
[[nodiscard]] RunOutcome run_gang(const ExperimentConfig& config);

/// Run the same jobs back to back (the zero-switching baseline).
[[nodiscard]] RunOutcome run_batch(const ExperimentConfig& config);

/// Dispatch on config.batch_mode (handy with parallel_map over mixed lists).
[[nodiscard]] RunOutcome run_config(const ExperimentConfig& config);

/// Gang run plus batch baseline plus the derived paper metrics.
struct EvaluatedRun {
  RunOutcome gang;
  RunOutcome batch;
  double overhead = 0.0;  ///< switching_overhead(gang, batch)
};
[[nodiscard]] EvaluatedRun evaluate(const ExperimentConfig& config);

/// Map \p configs through \p fn on up to \p threads workers (0 = hardware
/// concurrency), preserving order. \p fn must be thread-safe for distinct
/// configs (run_gang/run_batch/evaluate are: each run builds its own
/// Simulator and touches no shared state).
template <typename Result>
[[nodiscard]] std::vector<Result> parallel_map(
    const std::vector<ExperimentConfig>& configs,
    const std::function<Result(const ExperimentConfig&)>& fn,
    unsigned threads = 0) {
  std::vector<Result> results(configs.size());
  if (configs.empty()) return results;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = std::min<unsigned>(threads,
                               static_cast<unsigned>(configs.size()));
  if (threads <= 1) {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      results[i] = fn(configs[i]);
    }
    return results;
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (std::size_t i = next.fetch_add(1); i < configs.size();
         i = next.fetch_add(1)) {
      results[i] = fn(configs[i]);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  return results;
}

}  // namespace apsim
