#include "harness/sweep.hpp"

#include "harness/runner.hpp"

namespace apsim {

MemLab::MemLab(const MemLabParams& params) : params_(params) {
  sim_ = std::make_unique<Simulator>();
  disk_ = std::make_unique<Disk>(*sim_,
                                 DiskParams{.num_blocks = params.disk_blocks});
  swap_ = std::make_unique<SwapDevice>(*disk_, 0, params.swap_slots);
  VmmParams vp;
  vp.total_frames = params.frames;
  vp.freepages_min = params.freepages_min;
  vp.freepages_low = params.freepages_low;
  vp.freepages_high = params.freepages_high;
  vmm_ = std::make_unique<Vmm>(*sim_, *swap_, vp);
}

void MemLab::run(const std::function<void()>& work) {
  sim_->after(0, [&work] { work(); });
  (void)sim_->run();
}

std::unique_ptr<MemLab> MemLab::fork(const MemLabParams& params,
                                     const MemSnapshot& snap) {
  auto lab = std::make_unique<MemLab>(params);
  lab->vmm_->restore_snapshot(snap);
  // Advance the fresh clock to the capture instant (the queue is empty, so
  // this dispatches exactly one no-op event).
  (void)lab->sim_->at(snap.when, [] {});
  (void)lab->sim_->run();
  return lab;
}

std::vector<std::unique_ptr<MemLab>> run_forked_sweep(
    const MemLabParams& params, const std::function<void(MemLab&)>& warmup,
    const std::vector<SweepPoint>& points, unsigned threads) {
  MemLab prefix(params);
  prefix.run([&] { warmup(prefix); });
  const MemSnapshot snap = prefix.checkpoint();
  std::vector<std::unique_ptr<MemLab>> labs(points.size());
  parallel_indices(points.size(), threads, [&](std::size_t i) {
    labs[i] = MemLab::fork(params, snap);
    MemLab& lab = *labs[i];
    if (points[i].apply) points[i].apply(lab);
    lab.run([&] { points[i].body(lab); });
  });
  return labs;
}

}  // namespace apsim
