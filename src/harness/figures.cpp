#include "harness/figures.hpp"

#include <cassert>
#include <map>
#include <sstream>

#include "cluster/cluster.hpp"
#include "gang/gang_scheduler.hpp"
#include "metrics/trace.hpp"
#include "workloads/generator.hpp"

namespace apsim {

void print_figure(std::ostream& os, const FigureResult& figure) {
  os << "== " << figure.title << " ==\n\n";
  for (const auto& panel : figure.panels) {
    os << panel.title << '\n';
    panel.table.print(os);
    os << '\n';
  }
  if (!figure.notes.empty()) os << figure.notes << '\n';
}

ExperimentConfig figure_base(NpbApp app, int nodes, double usable_mb,
                             PolicySet policy) {
  ExperimentConfig config;
  config.app = app;
  config.cls = NpbClass::kB;
  config.nodes = nodes;
  config.instances = 2;
  config.node_memory_mb = 1024.0;
  config.usable_memory_mb = usable_mb;
  config.policy = policy;
  config.quantum = 5 * kMinute;
  config.seed = 42;
  return config;
}

double fig7_usable_mb(NpbApp app) {
  // Per-app usable memory for the serial class-B experiments (paper: "some
  // memory wired down with mlock"; exact amounts unpublished, chosen here so
  // that two instances overcommit memory in proportion to the app's
  // footprint, lightly for IS).
  switch (app) {
    case NpbApp::kLU: return 230.0;  // footprint 190
    case NpbApp::kSP: return 400.0;  // footprint 330
    case NpbApp::kCG: return 610.0;  // footprint 420
    case NpbApp::kIS: return 276.0;  // footprint 150: light overcommit
    case NpbApp::kMG: return 750.0;  // footprint 460
  }
  return 512.0;
}

double fig8_usable_mb(NpbApp app, int nodes) {
  assert(nodes == 2 || nodes == 4);
  if (nodes == 2) {
    switch (app) {
      case NpbApp::kLU: return 160.0;  // per-proc ~103
      case NpbApp::kCG: return 420.0;  // per-proc ~227
      case NpbApp::kIS: return 110.0;  // per-proc ~81
      case NpbApp::kMG: return 330.0;  // per-proc ~248
      case NpbApp::kSP: return 240.0;  // (not in the paper's 2-machine set)
    }
  } else {
    switch (app) {
      case NpbApp::kLU: return 88.0;   // per-proc ~51
      case NpbApp::kSP: return 120.0;  // per-proc ~89
      case NpbApp::kCG: return 350.0;  // per-proc ~113: both jobs fit -> no paging
      case NpbApp::kIS: return 56.0;   // per-proc ~41
      case NpbApp::kMG: return 170.0;  // (not in the paper's 4-machine set)
    }
  }
  return 256.0;
}

namespace {

const PolicySet kAllPolicies = PolicySet::all();

[[nodiscard]] std::string app_name(NpbApp app) {
  return std::string(to_string(app));
}

/// Index outcomes of a mixed gang/batch config list by label.
[[nodiscard]] std::map<std::string, RunOutcome> run_indexed(
    std::vector<ExperimentConfig> configs, unsigned threads) {
  auto outcomes = parallel_map<RunOutcome>(
      configs, [](const ExperimentConfig& c) { return run_config(c); },
      threads);
  std::map<std::string, RunOutcome> by_label;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    by_label.emplace(configs[i].label, std::move(outcomes[i]));
  }
  return by_label;
}

}  // namespace

// ---------------------------------------------------------------------------
// Figure 7: serial benchmarks

FigureResult run_fig7(unsigned threads, bool scalar_touch) {
  const NpbApp apps[] = {NpbApp::kLU, NpbApp::kSP, NpbApp::kCG, NpbApp::kIS,
                         NpbApp::kMG};
  // Paper-reported paging reductions with so/ao/ai/bg (Figure 7c).
  const std::map<NpbApp, double> paper_reduction = {
      {NpbApp::kLU, 0.84}, {NpbApp::kSP, 0.78}, {NpbApp::kCG, 0.68},
      {NpbApp::kIS, 0.19}, {NpbApp::kMG, 0.93}};

  std::vector<ExperimentConfig> configs;
  for (NpbApp app : apps) {
    const double usable = fig7_usable_mb(app);
    auto orig = figure_base(app, 1, usable, PolicySet::original());
    orig.label = app_name(app) + "/orig";
    auto adaptive = figure_base(app, 1, usable, kAllPolicies);
    adaptive.label = app_name(app) + "/all";
    auto batch = figure_base(app, 1, usable, PolicySet::original());
    batch.batch_mode = true;
    batch.label = app_name(app) + "/batch";
    configs.push_back(orig);
    configs.push_back(adaptive);
    configs.push_back(batch);
  }
  for (auto& config : configs) config.scalar_touch = scalar_touch;
  auto results = run_indexed(std::move(configs), threads);

  FigureResult figure;
  figure.title =
      "Figure 7: serial NPB class B, 2 instances, 1 node, 5 min quanta";

  Table completion({"app", "orig (s)", "so/ao/ai/bg (s)", "batch (s)"});
  Table overhead({"app", "overhead orig", "overhead so/ao/ai/bg"});
  Table reduction({"app", "paging reduction", "paper"});
  for (NpbApp app : apps) {
    const auto& orig = results.at(app_name(app) + "/orig");
    const auto& adaptive = results.at(app_name(app) + "/all");
    const auto& batch = results.at(app_name(app) + "/batch");
    completion.add_row({app_name(app), Table::fmt(mean_completion_s(orig), 0),
                        Table::fmt(mean_completion_s(adaptive), 0),
                        Table::fmt(mean_completion_s(batch), 0)});
    const double ov_orig = switching_overhead(orig.makespan, batch.makespan);
    const double ov_adpt =
        switching_overhead(adaptive.makespan, batch.makespan);
    overhead.add_row({app_name(app), Table::pct(ov_orig), Table::pct(ov_adpt)});
    reduction.add_row({app_name(app),
                       Table::pct(paging_reduction(ov_adpt, ov_orig)),
                       Table::pct(paper_reduction.at(app))});
  }
  figure.panels.push_back({"(a) job completion time", completion});
  figure.panels.push_back({"(b) job switching overhead", overhead});
  figure.panels.push_back({"(c) reduction in paging overhead", reduction});
  figure.notes =
      "Paper (b): overhead >= ~50% for SP/CG/IS/MG and 26% for LU under the\n"
      "original kernel, dropping to 5%-37% with all adaptive policies.";
  return figure;
}

// ---------------------------------------------------------------------------
// Figure 8: parallel benchmarks

FigureResult run_fig8(unsigned threads, bool scalar_touch) {
  struct Entry {
    NpbApp app;
    int nodes;
    double paper_reduction;  // < 0: not reported
  };
  const Entry entries[] = {
      {NpbApp::kLU, 2, 0.61}, {NpbApp::kCG, 2, 0.38},
      {NpbApp::kIS, 2, 0.72}, {NpbApp::kMG, 2, -1.0},
      {NpbApp::kLU, 4, 0.43}, {NpbApp::kSP, 4, 0.70},
      {NpbApp::kCG, 4, 0.07}, {NpbApp::kIS, 4, 0.57},
  };

  std::vector<ExperimentConfig> configs;
  for (const auto& entry : entries) {
    const double usable = fig8_usable_mb(entry.app, entry.nodes);
    const std::string key =
        app_name(entry.app) + "@" + std::to_string(entry.nodes);
    auto orig = figure_base(entry.app, entry.nodes, usable,
                            PolicySet::original());
    auto adaptive = figure_base(entry.app, entry.nodes, usable, kAllPolicies);
    auto batch = figure_base(entry.app, entry.nodes, usable,
                             PolicySet::original());
    batch.batch_mode = true;
    // Run enough timesteps that each parallel job spans several quanta, as
    // the paper's parallel runs did (dividing the serial iteration count by
    // the rank count would end inside the first quantum).
    orig.iterations_scale = entry.nodes;
    adaptive.iterations_scale = entry.nodes;
    batch.iterations_scale = entry.nodes;
    if (entry.app == NpbApp::kSP && entry.nodes == 4) {
      // SP needs a 7-minute quantum on 4 machines (paper 4.2).
      orig.quantum_override = 7 * kMinute;
      adaptive.quantum_override = 7 * kMinute;
    }
    orig.label = key + "/orig";
    adaptive.label = key + "/all";
    batch.label = key + "/batch";
    configs.push_back(orig);
    configs.push_back(adaptive);
    configs.push_back(batch);
  }
  for (auto& config : configs) config.scalar_touch = scalar_touch;
  auto results = run_indexed(std::move(configs), threads);

  FigureResult figure;
  figure.title = "Figure 8: parallel NPB class B, 2 instances, 2 and 4 nodes";
  for (int nodes : {2, 4}) {
    Table completion({"app", "orig (s)", "so/ao/ai/bg (s)", "batch (s)"});
    Table overhead({"app", "overhead orig", "overhead so/ao/ai/bg"});
    Table reduction({"app", "paging reduction", "paper"});
    for (const auto& entry : entries) {
      if (entry.nodes != nodes) continue;
      const std::string key =
          app_name(entry.app) + "@" + std::to_string(entry.nodes);
      const auto& orig = results.at(key + "/orig");
      const auto& adaptive = results.at(key + "/all");
      const auto& batch = results.at(key + "/batch");
      completion.add_row({app_name(entry.app),
                          Table::fmt(mean_completion_s(orig), 0),
                          Table::fmt(mean_completion_s(adaptive), 0),
                          Table::fmt(mean_completion_s(batch), 0)});
      const double ov_orig =
          switching_overhead(orig.makespan, batch.makespan);
      const double ov_adpt =
          switching_overhead(adaptive.makespan, batch.makespan);
      overhead.add_row(
          {app_name(entry.app), Table::pct(ov_orig), Table::pct(ov_adpt)});
      reduction.add_row({app_name(entry.app),
                         Table::pct(paging_reduction(ov_adpt, ov_orig)),
                         entry.paper_reduction >= 0
                             ? Table::pct(entry.paper_reduction)
                             : "(graph only)"});
    }
    const std::string suffix = " (" + std::to_string(nodes) + " machines)";
    figure.panels.push_back({"(a/d) job completion time" + suffix, completion});
    figure.panels.push_back({"(b/e) job switching overhead" + suffix, overhead});
    figure.panels.push_back({"(c/f) reduction in paging overhead" + suffix,
                             reduction});
  }
  figure.notes =
      "Paper: SP runs with a 7-minute quantum on 4 machines; CG on 4 machines\n"
      "fits in memory and shows almost no paging to reduce.";
  return figure;
}

// ---------------------------------------------------------------------------
// Figure 9: LU mechanism ablation

FigureResult run_fig9(unsigned threads) {
  struct Setup {
    const char* name;
    int nodes;
    double usable_mb;
    double paper_reduction_all;  // so/ao/ai/bg vs orig (Figure 9c)
  };
  const Setup setups[] = {
      // Memory per setup is stressed harder than Figure 8 (the paper notes
      // different input sizes / locking were used; its Figure 9 shows 55-75%
      // original overhead for the parallel runs).
      {"serial", 1, 230.0, 0.83},
      {"2 machines", 2, 115.0, 0.61},
      {"4 machines", 4, 58.0, 0.71},
  };
  const char* combos[] = {"orig", "ai", "so", "so/ao", "so/ao/bg",
                          "so/ao/ai/bg"};

  std::vector<ExperimentConfig> configs;
  for (const auto& setup : setups) {
    for (const char* combo : combos) {
      auto config = figure_base(NpbApp::kLU, setup.nodes, setup.usable_mb,
                                PolicySet::parse(combo));
      config.iterations_scale = setup.nodes;
      config.label = std::string(setup.name) + "/" + combo;
      configs.push_back(config);
    }
    auto batch = figure_base(NpbApp::kLU, setup.nodes, setup.usable_mb,
                             PolicySet::original());
    batch.iterations_scale = setup.nodes;
    batch.batch_mode = true;
    batch.label = std::string(setup.name) + "/batch";
    configs.push_back(batch);
  }
  auto results = run_indexed(std::move(configs), threads);

  FigureResult figure;
  figure.title = "Figure 9: LU, effect of each adaptive paging mechanism";

  Table completion({"policy", "serial (s)", "2 machines (s)", "4 machines (s)"});
  Table overhead({"policy", "serial", "2 machines", "4 machines"});
  Table reduction({"policy", "serial", "2 machines", "4 machines"});
  std::map<std::string, double> orig_overhead;
  for (const auto& setup : setups) {
    const auto& orig = results.at(std::string(setup.name) + "/orig");
    const auto& batch = results.at(std::string(setup.name) + "/batch");
    orig_overhead[setup.name] =
        switching_overhead(orig.makespan, batch.makespan);
  }
  {
    std::vector<std::string> row{"batch"};
    for (const auto& setup : setups) {
      row.push_back(Table::fmt(
          mean_completion_s(results.at(std::string(setup.name) + "/batch")),
          0));
    }
    completion.add_row(std::move(row));
  }
  for (const char* combo : combos) {
    std::vector<std::string> crow{combo};
    std::vector<std::string> orow{combo};
    std::vector<std::string> rrow{combo};
    for (const auto& setup : setups) {
      const auto& run = results.at(std::string(setup.name) + "/" + combo);
      const auto& batch = results.at(std::string(setup.name) + "/batch");
      const double ov = switching_overhead(run.makespan, batch.makespan);
      crow.push_back(Table::fmt(mean_completion_s(run), 0));
      orow.push_back(Table::pct(ov));
      rrow.push_back(Table::pct(paging_reduction(ov, orig_overhead[setup.name])));
    }
    completion.add_row(std::move(crow));
    overhead.add_row(std::move(orow));
    reduction.add_row(std::move(rrow));
  }
  {
    std::vector<std::string> paper_row{"paper (so/ao/ai/bg)"};
    for (const auto& setup : setups) {
      paper_row.push_back(Table::pct(setup.paper_reduction_all));
    }
    reduction.add_row(std::move(paper_row));
  }
  figure.panels.push_back({"(a) completion time", completion});
  figure.panels.push_back({"(b) paging overhead", overhead});
  figure.panels.push_back({"(c) reduction in paging overhead", reduction});
  figure.notes =
      "Paper: adaptive page-in and selective page-out are individually the\n"
      "strongest mechanisms (>65% reduction each); the full combination\n"
      "reaches 83%/61%/71% for serial/2-machine/4-machine runs.";
  return figure;
}

// ---------------------------------------------------------------------------
// Figure 6: paging-activity traces

FigureResult run_fig6(unsigned threads) {
  const char* combos[] = {"orig", "so", "so/ao", "so/ao/ai/bg"};
  std::vector<ExperimentConfig> configs;
  for (const char* combo : combos) {
    ExperimentConfig config;
    config.app = NpbApp::kLU;
    config.cls = NpbClass::kC;
    config.nodes = 4;
    config.instances = 2;
    config.usable_memory_mb = 350.0;
    config.policy = PolicySet::parse(combo);
    config.quantum = 5 * kMinute;
    config.capture_traces = true;
    config.horizon = 50 * kMinute;  // the paper plots the first 50 minutes
    config.seed = 42;
    config.label = combo;
    configs.push_back(config);
  }
  auto results = run_indexed(std::move(configs), threads);

  FigureResult figure;
  figure.title =
      "Figure 6: paging traces, 2x LU class C on 4 machines (350 MB, 300 s "
      "quanta, first 50 min)";

  Table summary({"policy", "pages in", "pages out",
                 "in-burst conc. (top 30s)", "out-burst conc. (top 30s)"});
  std::ostringstream notes;
  for (const char* combo : combos) {
    const auto& run = results.at(combo);
    assert(!run.traces.empty());
    const auto& trace = run.traces.front();  // node 0, as in the paper's plot
    summary.add_row(
        {combo, Table::fmt(trace.pages_in.total(), 0),
         Table::fmt(trace.pages_out.total(), 0),
         Table::pct(burst_concentration(trace.pages_in, 30)),
         Table::pct(burst_concentration(trace.pages_out, 30))});
    AsciiChartOptions chart;
    chart.columns = 100;
    chart.rows = 6;
    chart.t_end = 50 * kMinute;
    notes << "--- policy " << combo << " (node 0) ---\n"
          << render_ascii_trace(trace, chart) << '\n';
  }
  figure.panels.push_back(
      {"trace summary per policy (node 0)", summary});
  figure.notes = notes.str() +
                 "Burst concentration = share of paging volume inside the 30 "
                 "busiest seconds;\nadaptive policies compact paging into "
                 "switch-time bursts (paper Figure 1/6).";
  return figure;
}

// ---------------------------------------------------------------------------
// Section 1 motivation (Moreira et al.)

namespace {

/// One gang-scheduled run of three 45 MB sweep jobs on a single machine
/// with the given usable memory; returns the mean job completion (s).
[[nodiscard]] double run_moreira(double memory_mb) {
  NodeParams node;
  node.vmm.total_frames = mb_to_pages(memory_mb);
  node.wired_mb = 36.0;  // OS, daemons, buffers — as on the paper's nodes
  node.swap_slots = mb_to_pages(2048.0);
  node.disk.num_blocks = node.swap_slots;
  Cluster cluster(1, node);

  GangParams params;
  params.quantum = 10 * kSecond;
  GangScheduler scheduler(cluster, params);

  std::vector<std::unique_ptr<Process>> processes;
  constexpr int kJobs = 3;
  for (int j = 0; j < kJobs; ++j) {
    Job& job = scheduler.create_job("job" + std::to_string(j));
    SweepOptions sweep;
    sweep.pages = mb_to_pages(45.0);
    sweep.iterations = 400;  // each job spans many quanta
    sweep.compute_per_touch = 60 * kMicrosecond;
    const Pid pid = cluster.node(0).vmm().create_process(sweep.pages);
    auto process = std::make_unique<Process>("job" + std::to_string(j), pid,
                                             make_sweep_program(sweep));
    cluster.node(0).cpu().attach(*process);
    job.add_process(0, *process);
    processes.push_back(std::move(process));
  }
  scheduler.start();
  const bool finished = cluster.sim().run_until(
      [&scheduler] { return scheduler.all_finished(); },
      200 * 3600 * kSecond);
  if (!finished) return -1.0;
  double sum = 0.0;
  for (const auto& job : scheduler.jobs()) {
    sum += to_seconds(job->finished_at());
  }
  return sum / kJobs;
}

}  // namespace

FigureResult run_motivation(unsigned /*threads*/) {
  const double small = run_moreira(128.0);
  const double large = run_moreira(256.0);

  FigureResult figure;
  figure.title =
      "Section 1 motivation (Moreira et al.): 3 jobs x 45 MB, 128 vs 256 MB";
  Table table({"memory", "avg completion (s)", "vs 256 MB"});
  table.add_row({"256 MB", Table::fmt(large, 0), "1.0x"});
  table.add_row({"128 MB", Table::fmt(small, 0),
                 Table::fmt(small / large, 1) + "x"});
  figure.panels.push_back({"average job completion", table});
  figure.notes =
      "Paper reports ~3.5x slower average completion on the 128 MB system;\n"
      "the ratio above should be well above 1 and of that order.";
  return figure;
}

}  // namespace apsim
