#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "cluster/node.hpp"
#include "core/policy.hpp"
#include "fault/fault_plan.hpp"
#include "net/network.hpp"
#include "recover/restart_planner.hpp"
#include "workloads/spec.hpp"

/// \file config.hpp
/// One experiment configuration: which workload, how many nodes, how much
/// usable memory (the rest is wired down, reproducing the paper's mlock
/// trick), which adaptive-paging policy, and the gang quantum.

namespace apsim {

struct ExperimentConfig {
  std::string label;

  NpbApp app = NpbApp::kLU;
  NpbClass cls = NpbClass::kB;
  int nodes = 1;       ///< job width == cluster size
  int instances = 2;   ///< identical jobs sharing the machine(s)

  double node_memory_mb = 1024.0;   ///< physical RAM per node (paper: 1 GB)
  double usable_memory_mb = 350.0;  ///< after wiring the rest down

  PolicySet policy;
  SimDuration quantum = 5 * kMinute;

  /// Swap read-ahead pages per major fault (Linux 2.2 default: 16).
  std::int64_t page_cluster = 16;

  /// Enable the kernel's page-aging mode (Linux 2.2 PG_age) instead of the
  /// one-bit second-chance clock (see VmmParams::page_aging).
  bool page_aging = false;
  std::optional<SimDuration> quantum_override;  ///< per-job (paper: SP 7 min)
  double bg_start_frac = 0.9;
  bool pass_ws_hint = false;  ///< scheduler-declared WS instead of kernel estimate

  std::uint64_t seed = 1;
  double iterations_scale = 1.0;
  bool capture_traces = false;

  /// When non-empty, the run constructs a switch-phase Tracer, instruments
  /// the whole switch path, writes Chrome trace_event JSON to this path
  /// (open in chrome://tracing or Perfetto) and fills
  /// RunOutcome::switch_phases. Empty (the default) constructs no tracer at
  /// all: output is bit-identical to a tracer-free build. The magic value
  /// "-" collects spans and phase stats without writing a file (for tests
  /// and benches that consume RunOutcome::trace in memory).
  std::string trace_json;

  /// Run the jobs back to back instead of gang-scheduled (the baseline);
  /// `policy` is ignored in this mode.
  bool batch_mode = false;

  /// Force the scalar per-touch access loop instead of the batched touch
  /// engine (see CpuParams::batched_touch). The two are bit-identical in
  /// every counter; this knob exists for perf baselines (bench --scalar)
  /// and equivalence tests.
  bool scalar_touch = false;

  /// Simulation horizon safety net; runs not finished by then are reported
  /// with makespan == -1.
  SimDuration horizon = 100 * 3600 * kSecond;

  /// Faults injected into the run. An empty plan means no injector is
  /// constructed at all: fault-free runs are bit-identical to pre-fault
  /// builds.
  FaultPlan faults;

  /// Gang switch watchdog. 0 = automatic: enabled (50 ms) only when the
  /// fault plan disturbs the control plane (dropped/delayed signals or node
  /// crashes), disabled otherwise so undisturbed runs schedule no extra
  /// events. > 0 forces that timeout; < 0 forces the watchdog off.
  SimDuration switch_watchdog = 0;

  /// Swap partition size per node, MB. 0 = auto-size to ~1.5x the workload's
  /// anonymous footprint (the default installation). A small explicit value
  /// exercises the out-of-swap failure path.
  double swap_mb = 0.0;

  /// Compressed swap tier (zswap-style) in front of the disk swap device.
  /// tier_mb is the pool's RAM budget, carved out of the node's usable
  /// memory; 0 disables the tier entirely (bit-identical to a build without
  /// it). The ratio model describes how compressible the workload's pages
  /// are; tier_writeback enables the background drain of LRU-cold pool
  /// entries to disk.
  double tier_mb = 0.0;
  TierRatioModel tier_ratio_model = TierRatioModel::kMixed;
  bool tier_writeback = true;

  /// Vmm swap-in retry/backoff tuning (VmmParams equivalents; see vmm.hpp
  /// for semantics). Defaults match the kernel model's shipped values.
  int io_retry_limit = 4;
  SimDuration io_retry_base = 5 * kMillisecond;
  SimDuration io_retry_cap = 80 * kMillisecond;
  int stalled_fault_retry_limit = 200;
  int write_failure_streak_limit = 3;

  /// Coordinated checkpoint/restart. 0 disables recovery entirely: no
  /// CheckpointManager is constructed, no events are scheduled, and the run
  /// is bit-identical to a build without the subsystem (the golden suites
  /// pin this). > 0 takes a coordinated checkpoint of every job at this
  /// period and restarts crashed jobs from their last image on surviving
  /// nodes. When enabled, each node's disk gains a checkpoint region past
  /// the swap partition (num_blocks doubles), so checkpoint I/O contends
  /// with paging on the same device.
  SimDuration checkpoint_interval = 0;
  bool ckpt_incremental = true;  ///< dirty/delta images vs full live set
  int ckpt_max_retries = 3;      ///< image-write retry ladder depth
  RestartPlacement restart_placement = RestartPlacement::kSpread;
  LostWorkModel lost_work_model = LostWorkModel::kCpu;

  /// Base page-replacement policy, by registry name (see
  /// reclaim_registry.hpp): clock-lru (the kernel default), exact-lru, fifo,
  /// mglru, s3-fifo. "clock-lru" installs nothing and is bit-identical to
  /// builds without the registry.
  std::string reclaim_policy = "clock-lru";

  /// VmmParams::reclaim_batch / max_prefetch_run (see vmm.hpp). These are
  /// the boot values; the control plane may move them at runtime.
  std::int64_t reclaim_batch = 32;
  std::int64_t max_prefetch_run = 512;

  /// Gang scheduler policy, by registry name (see gang/policy_registry.hpp):
  /// matrix (the paper's rotation, the default), admission, backfill,
  /// gang-edf, dfrs. "matrix" reproduces the pre-registry scheduler
  /// bit-identically (the golden suites pin this).
  std::string sched_policy = "matrix";

  /// dfrs tuning: co-resident declared working sets may fill this fraction
  /// of usable memory, and at most dfrs_max_share gangs share one node.
  double dfrs_mem_frac = 0.85;
  int dfrs_max_share = 2;

  /// dfrs: allow one consolidation migration (costed through the network
  /// model) per clean job departure.
  bool auto_migrate = false;

  /// Open-arrival mode: "none" (the default) runs the classic fixed job
  /// set; "poisson" / "diurnal" stream `instances` synthetic jobs onto the
  /// cluster over time (see workloads/generator.hpp), with `nodes` acting
  /// as the cluster size and each job's width sampled in
  /// [1, open_max_width]. The NPB app/class knobs are ignored in this mode.
  std::string arrival_process = "none";
  double arrival_mean_s = 60.0;     ///< mean interarrival at the peak rate
  double diurnal_period_s = 3600.0;
  double diurnal_low_frac = 0.2;
  int num_tenants = 1;
  double straggler_fraction = 0.0;
  double straggler_slowdown = 4.0;
  double deadline_slack = 0.0;      ///< 0 = no deadlines
  int open_max_width = 1;
  std::int64_t open_min_pages = 2048;   ///< per-rank footprint bounds
  std::int64_t open_max_pages = 8192;
  std::int64_t open_min_iterations = 4;
  std::int64_t open_max_iterations = 12;

  /// Adaptive control plane (src/control). Off (the default) constructs no
  /// ControlPlane at all: runs are bit-identical to builds without the
  /// subsystem. On, `autotune_controller` names the decision maker
  /// (dyn-thresh or hill-climb) ticked every `autotune_interval` of
  /// simulated time; `autotune_policy` additionally exposes the reclaim
  /// policy selector as a discrete knob.
  bool autotune = false;
  std::string autotune_controller = "dyn-thresh";
  SimDuration autotune_interval = kSecond;
  bool autotune_policy = false;

  /// Check the configuration for nonsense (negative quantum, bg_start_frac
  /// outside [0, 1], zero usable memory, swap smaller than wired memory,
  /// ...). Throws std::invalid_argument with a specific message.
  void validate() const;

  /// Canonical one-line description used as the outcome label.
  [[nodiscard]] std::string describe() const;

  /// Node hardware/kernel parameters implied by this config. Calls
  /// validate().
  [[nodiscard]] NodeParams make_node_params() const;

  [[nodiscard]] NetParams make_net_params() const { return NetParams{}; }
};

}  // namespace apsim
