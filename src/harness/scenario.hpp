#pragma once

#include <istream>
#include <string>
#include <string_view>
#include <vector>

#include "harness/config.hpp"

/// \file scenario.hpp
/// Text scenario files: one ExperimentConfig per `[run]` section, simple
/// `key = value` lines, `#` comments. Lets users sweep configurations from
/// the command line (examples/run_scenario) without recompiling.
///
/// ```ini
/// # defaults apply to every following run until overridden
/// [defaults]
/// app = LU
/// class = B
/// nodes = 1
/// usable_mb = 230
/// quantum_s = 300
///
/// [run]
/// label = original
/// policy = orig
///
/// [run]
/// label = adaptive
/// policy = so/ao/ai/bg
/// batch = false
/// ```
///
/// Recognised keys: app, class, nodes, instances, memory_mb, usable_mb,
/// policy, quantum_s, quantum_override_s, page_cluster, bg_start_frac,
/// pass_ws_hint, seed, iterations_scale, capture_traces, trace_json (switch
/// tracer output path, "-" = in-memory only), batch, scalar_touch (force the
/// scalar per-touch access loop; perf baseline, bit-identical output), label,
/// horizon_s, fault (repeatable; see FaultSpec::parse), watchdog_ms,
/// swap_mb, tier_mb, tier_ratio_model (mixed/text/zero/incompressible),
/// tier_writeback, io_retry_limit, io_retry_base_ms, io_retry_cap_ms,
/// stalled_retry_limit, write_failure_streak, checkpoint_interval_s (0 =
/// checkpoint/restart off), ckpt_incremental, ckpt_max_retries,
/// restart_placement (spread/packed), lost_work_model (cpu/wall).

namespace apsim {

/// Parse a scenario stream. Throws std::invalid_argument with a
/// line-numbered message on malformed input.
[[nodiscard]] std::vector<ExperimentConfig> parse_scenario(std::istream& in);

/// Convenience overload over a string.
[[nodiscard]] std::vector<ExperimentConfig> parse_scenario(
    std::string_view text);

/// Apply one key/value pair to a config (exposed for tests). Throws on
/// unknown keys or unparsable values.
void apply_scenario_key(ExperimentConfig& config, std::string_view key,
                        std::string_view value);

}  // namespace apsim
