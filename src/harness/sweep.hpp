#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "disk/disk.hpp"
#include "disk/swap_device.hpp"
#include "mem/vmm.hpp"
#include "sim/simulator.hpp"

/// \file sweep.hpp
/// Prefix-forked parameter sweeps over the paging stack. A sweep whose
/// points share an expensive warmup (fill memory, reach paging steady
/// state) runs the warmup ONCE, captures a copy-on-write MemSnapshot at
/// quiescence, and forks every sweep point from that image instead of
/// replaying the prefix per point. Forked labs are shared-nothing, so
/// points can run on worker threads (parallel_indices) and each one is
/// bit-identical to a from-scratch run of warmup + point.

namespace apsim {

struct MemLabParams {
  std::int64_t frames = 2048;
  std::int64_t freepages_min = 64;
  std::int64_t freepages_low = 96;
  std::int64_t freepages_high = 128;
  std::int64_t disk_blocks = 1 << 22;
  std::int64_t swap_slots = 1 << 22;
};

/// One self-contained paging stack (Simulator + Disk + SwapDevice + Vmm):
/// the unit a sweep point runs in. Construction is cheap next to any real
/// warmup, and labs share nothing, so forks can run concurrently.
class MemLab {
 public:
  explicit MemLab(const MemLabParams& params);

  MemLab(const MemLab&) = delete;
  MemLab& operator=(const MemLab&) = delete;

  [[nodiscard]] Simulator& sim() { return *sim_; }
  [[nodiscard]] Disk& disk() { return *disk_; }
  [[nodiscard]] SwapDevice& swap() { return *swap_; }
  [[nodiscard]] Vmm& vmm() { return *vmm_; }

  /// Schedule \p work at the current instant and drain the event queue.
  void run(const std::function<void()>& work);

  /// Capture the stack's paging state (call after run(): the queue must
  /// have drained, so the stack is I/O-quiet).
  [[nodiscard]] MemSnapshot checkpoint() const {
    return vmm_->capture_snapshot();
  }

  /// Build a fresh lab continuing from \p snap: restores the image and
  /// advances the new clock to the capture instant, so subsequent events
  /// land at the same absolute times as in the captured run.
  [[nodiscard]] static std::unique_ptr<MemLab> fork(const MemLabParams& params,
                                                    const MemSnapshot& snap);

 private:
  MemLabParams params_;
  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<Disk> disk_;
  std::unique_ptr<SwapDevice> swap_;
  std::unique_ptr<Vmm> vmm_;
};

/// One sweep point: `apply` sets the knob under sweep on the forked lab,
/// then `body` drives the measurement workload inside the lab's simulator.
struct SweepPoint {
  std::string label;
  std::function<void(MemLab&)> apply;  ///< set the point's knob(s) (optional)
  std::function<void(MemLab&)> body;   ///< the measurement workload
};

/// Run \p warmup once in a fresh lab, checkpoint it, then fork every point
/// from the image on up to \p threads workers. Returns the finished labs,
/// one per point, holding each point's final state for inspection.
[[nodiscard]] std::vector<std::unique_ptr<MemLab>> run_forked_sweep(
    const MemLabParams& params, const std::function<void(MemLab&)>& warmup,
    const std::vector<SweepPoint>& points, unsigned threads = 1);

}  // namespace apsim
