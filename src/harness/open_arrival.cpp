#include "harness/open_arrival.hpp"

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "gang/gang_scheduler.hpp"
#include "net/mpi.hpp"
#include "workloads/generator.hpp"

namespace apsim {

namespace {

[[nodiscard]] OpenArrivalOptions open_options(const ExperimentConfig& c) {
  OpenArrivalOptions o;
  o.process = parse_arrival_process(c.arrival_process);
  o.num_jobs = c.instances;
  o.mean_interarrival_s = c.arrival_mean_s;
  o.diurnal_period_s = c.diurnal_period_s;
  o.diurnal_low_frac = c.diurnal_low_frac;
  o.num_tenants = c.num_tenants;
  o.straggler_fraction = c.straggler_fraction;
  o.straggler_slowdown = c.straggler_slowdown;
  o.max_width = c.open_max_width;
  o.min_pages = c.open_min_pages;
  o.max_pages = c.open_max_pages;
  o.min_iterations = c.open_min_iterations;
  o.max_iterations = c.open_max_iterations;
  o.deadline_slack = c.deadline_slack;
  o.seed = c.seed;
  return o;
}

}  // namespace

RunOutcome run_open(const ExperimentConfig& config) {
  config.validate();
  if (config.arrival_process == "none") {
    throw std::invalid_argument(
        "run_open: config.arrival_process is 'none' (use run_gang)");
  }

  Cluster cluster(config.nodes, config.make_node_params(),
                  config.make_net_params(), config.seed, config.faults);

  GangParams params;
  params.quantum = config.quantum;
  params.bg_start_frac = config.bg_start_frac;
  params.pass_ws_hint = config.pass_ws_hint;
  params.pager.policy = config.policy;
  params.pager.reclaim_policy = config.reclaim_policy;
  params.sched_policy = config.sched_policy;
  params.policy_opts.dfrs_mem_frac = config.dfrs_mem_frac;
  params.policy_opts.dfrs_max_share = config.dfrs_max_share;
  params.policy_opts.auto_migrate = config.auto_migrate;
  if (config.switch_watchdog > 0) {
    params.switch_watchdog = config.switch_watchdog;
  } else if (config.switch_watchdog == 0 &&
             config.faults.disturbs_control_plane()) {
    params.switch_watchdog = 50 * kMillisecond;
  }
  GangScheduler scheduler(cluster, params);

  std::vector<std::unique_ptr<Process>> processes;
  std::map<int, std::unique_ptr<MpiComm>> comm_by_job;

  // Any node may host a rank of any parallel job, so every CPU dispatches
  // collective entries through the (job id -> communicator) map.
  auto* comms = &comm_by_job;
  for (int n = 0; n < cluster.size(); ++n) {
    cluster.node(n).cpu().set_comm_handler(
        [comms](Process& p, const CommOp& op, std::function<void()> resume) {
          comms->at(p.job_id)->enter(p, op, std::move(resume));
        });
  }
  scheduler.set_comm_resolver([comms](int job_id) -> MpiComm* {
    const auto it = comms->find(job_id);
    return it == comms->end() ? nullptr : it->second.get();
  });

  const std::vector<OpenJobSpec> specs =
      make_open_arrivals(open_options(config), config.nodes);
  std::size_t submitted = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const OpenJobSpec* spec = &specs[i];
    const std::string name = "t" + std::to_string(spec->tenant) + ".open#" +
                             std::to_string(i);
    cluster.sim().at(spec->arrival, [&, spec, name] {
      const std::vector<int> nodes = spec->placement(config.nodes);
      Job& job = scheduler.submit_job(name);
      job.declared_ws_pages = spec->pages;
      job.deadline = spec->deadline;
      job.estimated_runtime = spec->estimated_runtime;
      job.tenant = spec->tenant;
      if (config.quantum_override) {
        job.quantum_override = config.quantum_override;
      }
      std::unique_ptr<MpiComm> comm;
      if (spec->width > 1) {
        comm = std::make_unique<MpiComm>(cluster.sim(), cluster.network(),
                                         spec->width);
      }
      for (int r = 0; r < spec->width; ++r) {
        auto& node = cluster.node(nodes[static_cast<std::size_t>(r)]);
        const Pid pid = node.vmm().create_process(spec->pages);
        auto process = std::make_unique<Process>(
            name + ":r" + std::to_string(r), pid,
            make_open_job_program(*spec, r));
        node.cpu().attach(*process);
        if (comm) comm->bind(r, *process, nodes[static_cast<std::size_t>(r)]);
        job.add_process(nodes[static_cast<std::size_t>(r)], *process);
        processes.push_back(std::move(process));
      }
      if (comm) comm_by_job.emplace(job.id(), std::move(comm));
      scheduler.start_job(job);
      ++submitted;
    });
  }

  scheduler.start();
  const bool finished = cluster.sim().run_until(
      [&] { return submitted == specs.size() && scheduler.all_finished(); },
      config.horizon);

  RunOutcome out;
  out.label = config.describe();
  out.policy = config.sched_policy;
  out.makespan = finished ? scheduler.makespan() : -1;
  for (const auto& job : scheduler.jobs()) {
    JobOutcome jo;
    jo.name = job->name();
    jo.completion = job->finished_at();
    jo.failed = job->failed();
    jo.arrival = job->arrival;
    if (jo.failed) ++out.jobs_failed;
    if (!jo.failed && jo.completion >= 0) {
      jo.slowdown = bounded_slowdown(job->arrival, jo.completion,
                                     job->estimated_runtime.value_or(0));
    }
    for (const auto& placement : job->processes()) {
      const auto& proc = *placement.process;
      const auto& space =
          cluster.node(placement.node).vmm().space(proc.pid());
      jo.major_faults += space.stats().major_faults;
      jo.minor_faults += space.stats().minor_faults;
      jo.pages_swapped_in += space.stats().pages_swapped_in;
      jo.pages_swapped_out += space.stats().pages_swapped_out;
      jo.false_evictions += space.stats().false_evictions;
      jo.cpu_time += proc.stats().cpu_time;
      jo.fault_wait += proc.stats().fault_wait;
      jo.comm_wait += proc.stats().comm_wait;
    }
    out.pages_swapped_in += jo.pages_swapped_in;
    out.pages_swapped_out += jo.pages_swapped_out;
    out.major_faults += jo.major_faults;
    out.false_evictions += jo.false_evictions;
    out.jobs.push_back(std::move(jo));
  }
  finalize_slowdowns(out);
  out.switches = scheduler.switches();
  for (int n = 0; n < cluster.size(); ++n) {
    const auto& pstats = scheduler.pager(n).stats();
    out.pages_recorded += pstats.pages_recorded;
    out.pages_replayed += pstats.pages_replayed;
    out.bg_pages_written += pstats.bg_pages_written;
    auto& node = cluster.node(n);
    out.io_errors += node.disk().stats().io_errors;
    out.disk_blocks_written += node.disk().stats().blocks_written;
    out.disk_blocks_read += node.disk().stats().blocks_read;
    const auto& vstats = node.vmm().stats();
    out.io_retries += vstats.io_retries;
    out.pages_unrecoverable +=
        vstats.pages_unrecoverable + vstats.out_of_swap_faults;
  }
  out.nodes_failed = scheduler.stats().nodes_failed;
  out.signal_retransmits = scheduler.stats().signal_retransmits;
  out.jobs_recovered = scheduler.stats().jobs_recovered;
  out.lost_pages_recovered = scheduler.stats().lost_pages_recovered;
  out.lost_pages_fatal = scheduler.stats().lost_pages_fatal;
  out.jobs_migrated = scheduler.stats().jobs_migrated;
  out.migration_bytes = scheduler.stats().migration_bytes;
  return out;
}

}  // namespace apsim
