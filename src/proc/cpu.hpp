#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "mem/vmm.hpp"
#include "proc/process.hpp"
#include "sim/simulator.hpp"

/// \file cpu.hpp
/// Per-node CPU executor. Runs attached processes round-robin, consuming
/// their Programs: page-touch chunks go through the VMM fast path (blocking
/// the process on faults), compute ops burn virtual time, and communication
/// ops are delegated to the comm handler installed by the MPI layer. The
/// gang scheduler's SIGSTOP/SIGCONT arrive via stop_process()/cont_process().

namespace apsim {

struct CpuParams {
  /// Max virtual compute per executor slice; bounds signal latency and the
  /// quantization of reference timestamps.
  SimDuration slice = 20 * kMillisecond;

  /// Kernel context-switch cost when the CPU picks a new process.
  SimDuration context_switch = 10 * kMicrosecond;

  /// Pure-compute ops longer than this are split (keeps signals responsive).
  SimDuration max_compute_step = 100 * kMillisecond;

  /// Route access chunks through the batched touch engine (Vmm::touch_run).
  /// Observable behaviour is bit-identical to the scalar per-touch loop
  /// (the golden tests pin this); the flag exists so benches can time the
  /// scalar path (--scalar) and tests can fuzz the two against each other.
  bool batched_touch = true;
};

class Cpu {
 public:
  using CommHandler =
      std::function<void(Process&, const CommOp&, std::function<void()>)>;

  Cpu(Simulator& sim, Vmm& vmm, CpuParams params = {})
      : sim_(sim), vmm_(vmm), params_(params) {}

  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  /// Register a process (born stopped). The process must already have a VMM
  /// address space; Cpu caches the pointer for the touch fast path.
  void attach(Process& p);

  /// SIGCONT: start or resume the process.
  void cont_process(Process& p);

  /// SIGSTOP: request the process to stop. Running processes stop at the
  /// next slice boundary; blocked ones when their wait completes.
  void stop_process(Process& p);

  /// SIGKILL: the process enters kFailed immediately, never runs again, and
  /// all of its pending continuations are invalidated. Idempotent; a no-op
  /// on finished processes. The caller releases the VMM address space.
  void kill_process(Process& p);

  /// Kill every attached process (node crash).
  void kill_all();

  /// Remove a process from this CPU (restart migration). The process must
  /// not be running; any ready/current bookkeeping referring to it is
  /// dropped. Safe to call for a process that was never attached here.
  void detach(Process& p);

  /// Re-home a dead (killed) process onto this CPU under a fresh address
  /// space, leaving it stopped as if freshly attached. The checkpoint
  /// manager rewinds the program cursor separately; adopt only fixes up
  /// pid/space/scheduling state and invalidates stale continuations.
  void adopt(Process& p, Pid new_pid);

  /// Install the communication delegate (the MPI layer). Without one, comm
  /// ops complete immediately.
  void set_comm_handler(CommHandler handler) { comm_ = std::move(handler); }

  [[nodiscard]] bool idle() const { return current_ == nullptr; }
  [[nodiscard]] Process* current() const { return current_; }
  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] Vmm& vmm() { return vmm_; }
  [[nodiscard]] const CpuParams& params() const { return params_; }

  /// Total virtual time this CPU spent executing processes.
  [[nodiscard]] SimDuration busy_time() const { return busy_time_; }

  /// Processes registered on this CPU (the control plane's signal sampler
  /// sums their fault-stall times here).
  [[nodiscard]] const std::vector<Process*>& attached() const {
    return attached_;
  }

 private:
  void make_runnable(Process& p);
  void dispatch();
  void run_slice(Process& p);
  void run_access(Process& p);
  void run_compute(Process& p);
  void run_comm(Process& p);
  void finish(Process& p);
  void do_stop(Process& p);
  void unblock(Process& p);
  void yield_or_continue(Process& p);

  /// Schedule \p fn after \p delay, dropped if the process stops, blocks or
  /// finishes in the meantime. Templated so the capture moves straight into
  /// the event queue's InlineCallback — no std::function boxing, no per-slice
  /// heap allocation.
  template <typename F>
  void continue_after(Process& p, SimDuration delay, F&& fn) {
    const std::uint64_t gen = p.run_gen_;
    sim_.after(delay, [this, &p, gen, fn = std::forward<F>(fn)]() mutable {
      if (p.run_gen_ != gen || p.state_ != ProcState::kRunning) return;
      fn(p);
    });
  }

  Simulator& sim_;
  Vmm& vmm_;
  CpuParams params_;
  CommHandler comm_;

  std::deque<Process*> ready_;
  Process* current_ = nullptr;
  std::vector<Process*> attached_;
  SimDuration busy_time_ = 0;
};

}  // namespace apsim
