#include "proc/cpu.hpp"

#include <algorithm>
#include <cassert>

namespace apsim {

void Cpu::attach(Process& p) {
  assert(p.state_ == ProcState::kStopped);
  p.space_ = &vmm_.space(p.pid());
  p.stopped_since_ = sim_.now();
  attached_.push_back(&p);
}

void Cpu::cont_process(Process& p) {
  if (p.dead()) return;
  p.stop_requested_ = false;
  if (p.state_ == ProcState::kStopped) {
    p.stats_.stopped_time += sim_.now() - p.stopped_since_;
    make_runnable(p);
  }
  // Blocked states resume naturally; kReady/kRunning unaffected.
}

void Cpu::stop_process(Process& p) {
  if (p.dead()) return;
  p.stop_requested_ = true;
  if (p.state_ == ProcState::kReady) {
    std::erase(ready_, &p);
    ++p.run_gen_;
    p.state_ = ProcState::kStopped;
    p.stopped_since_ = sim_.now();
  }
  // kRunning: the active continuation observes the flag at its boundary.
  // kBlocked*: unblock() applies the flag when the wait completes.
}

void Cpu::kill_process(Process& p) {
  if (p.dead()) return;
  if (p.state_ == ProcState::kStopped) {
    p.stats_.stopped_time += sim_.now() - p.stopped_since_;
  }
  std::erase(ready_, &p);
  ++p.run_gen_;  // drop every pending continuation
  p.state_ = ProcState::kFailed;
  if (current_ == &p) current_ = nullptr;
  dispatch();
}

void Cpu::kill_all() {
  for (Process* p : attached_) kill_process(*p);
}

void Cpu::detach(Process& p) {
  std::erase(attached_, &p);
  std::erase(ready_, &p);
  if (current_ == &p) current_ = nullptr;
}

void Cpu::adopt(Process& p, Pid new_pid) {
  assert(p.dead());
  p.pid_ = new_pid;
  p.space_ = &vmm_.space(new_pid);
  ++p.run_gen_;  // drop anything still in flight from the previous life
  p.state_ = ProcState::kStopped;
  p.stop_requested_ = true;
  p.stopped_since_ = sim_.now();
  if (std::find(attached_.begin(), attached_.end(), &p) == attached_.end()) {
    attached_.push_back(&p);
  }
}

void Cpu::make_runnable(Process& p) {
  assert(!p.dead());
  p.state_ = ProcState::kReady;
  ready_.push_back(&p);
  dispatch();
}

void Cpu::dispatch() {
  if (current_ != nullptr || ready_.empty()) return;
  Process& p = *ready_.front();
  ready_.pop_front();
  current_ = &p;
  p.state_ = ProcState::kRunning;
  ++p.stats_.slices;
  const std::uint64_t gen = ++p.run_gen_;
  sim_.after(params_.context_switch, [this, &p, gen] {
    if (p.run_gen_ != gen || p.state_ != ProcState::kRunning) return;
    run_slice(p);
  });
}

void Cpu::run_slice(Process& p) {
  assert(p.state_ == ProcState::kRunning);
  if (p.stop_requested_) {
    do_stop(p);
    return;
  }
  if (!p.op_active_) {
    p.current_op_ = p.program_->next();
    p.op_active_ = true;
    p.op_pos_ = 0;
    if (params_.batched_touch && p.current_op_.kind == Op::Kind::kAccess) {
      // Hoist the chunk's loop invariants (zipf harmonic constant) once per
      // op instead of per touch.
      p.touch_plan_ = p.current_op_.access.prepare();
    }
  }
  switch (p.current_op_.kind) {
    case Op::Kind::kDone:
      finish(p);
      return;
    case Op::Kind::kCompute:
      run_compute(p);
      return;
    case Op::Kind::kComm:
      run_comm(p);
      return;
    case Op::Kind::kAccess:
      run_access(p);
      return;
  }
}

void Cpu::run_access(Process& p) {
  const AccessChunk& chunk = p.current_op_.access;
  assert(p.space_ != nullptr);

  SimDuration accum = 0;
  bool faulted = false;
  VPage fault_page = -1;
  if (params_.batched_touch) {
    // Batched fast path: hand the whole slice budget to the VMM in one call.
    // The scalar loop below stops once accum >= slice, i.e. after
    // ceil(slice / compute_per_touch) touches (the whole chunk when touches
    // cost nothing); touch_run applies exactly that prefix, stopping early
    // only at the first non-resident page.
    const std::int64_t remaining = chunk.touches - p.op_pos_;
    const SimDuration cpt = chunk.compute_per_touch;
    std::int64_t budget = remaining;
    if (cpt > 0) {
      budget = std::min<std::int64_t>(remaining, (params_.slice + cpt - 1) / cpt);
    }
    const Vmm::TouchRun run =
        vmm_.touch_run(*p.space_, p.touch_plan_, p.op_pos_, budget);
    accum = static_cast<SimDuration>(run.consumed) * cpt;
    p.op_pos_ += run.consumed;
    faulted = run.faulted;
    fault_page = run.fault_page;
  } else {
    while (p.op_pos_ < chunk.touches) {
      const VPage page = chunk.page_at(p.op_pos_);
      if (vmm_.touch(*p.space_, page, chunk.write)) {
        accum += chunk.compute_per_touch;
        ++p.op_pos_;
        if (accum >= params_.slice) break;
      } else {
        faulted = true;
        fault_page = page;
        break;
      }
    }
  }
  p.stats_.cpu_time += accum;
  busy_time_ += accum;
  const bool chunk_done = p.op_pos_ >= chunk.touches;

  continue_after(p, accum, [this, faulted, fault_page,
                            chunk_done](Process& proc) {
    if (chunk_done) {
      proc.op_active_ = false;
      yield_or_continue(proc);
      return;
    }
    if (faulted) {
      proc.state_ = ProcState::kBlockedFault;
      ++proc.run_gen_;
      proc.blocked_since_ = sim_.now();
      ++proc.stats_.faults_taken;
      if (current_ == &proc) {
        current_ = nullptr;
        dispatch();
      }
      const bool write = proc.current_op_.access.write;
      const std::uint64_t fgen = proc.run_gen_;
      vmm_.fault(proc.pid(), fault_page, write, [this, &proc, fgen] {
        // A process killed and later revived by the checkpoint manager must
        // not be touched by its previous life's fault completion.
        if (proc.run_gen_ != fgen ||
            proc.state_ != ProcState::kBlockedFault) {
          return;
        }
        proc.stats_.fault_wait += sim_.now() - proc.blocked_since_;
        ++proc.op_pos_;  // the VMM touched the page on completion
        unblock(proc);
      });
      return;
    }
    yield_or_continue(proc);  // slice budget exhausted
  });
}

void Cpu::run_compute(Process& p) {
  const SimDuration total = p.current_op_.compute;
  const SimDuration remaining = total - p.op_pos_;
  const SimDuration step = std::min(remaining, params_.max_compute_step);
  p.stats_.cpu_time += step;
  busy_time_ += step;
  continue_after(p, step, [this, step, total](Process& proc) {
    proc.op_pos_ += step;
    if (proc.op_pos_ >= total) {
      proc.op_active_ = false;
    }
    yield_or_continue(proc);
  });
}

void Cpu::run_comm(Process& p) {
  p.state_ = ProcState::kBlockedComm;
  const std::uint64_t gen = ++p.run_gen_;
  p.blocked_since_ = sim_.now();
  if (current_ == &p) {
    current_ = nullptr;
    dispatch();
  }
  auto resume = [this, &p, gen] {
    // Drop resumes aimed at a previous life of the process (killed while
    // blocked, then restarted from a checkpoint).
    if (p.run_gen_ != gen || p.state_ != ProcState::kBlockedComm) return;
    p.stats_.comm_wait += sim_.now() - p.blocked_since_;
    p.op_active_ = false;
    unblock(p);
  };
  if (comm_) {
    comm_(p, p.current_op_.comm, std::move(resume));
  } else {
    sim_.after(0, std::move(resume));
  }
}

void Cpu::yield_or_continue(Process& p) {
  if (!ready_.empty()) {
    // Round robin: give way to waiting processes.
    assert(current_ == &p);
    current_ = nullptr;
    ++p.run_gen_;
    p.state_ = ProcState::kReady;
    ready_.push_back(&p);
    dispatch();
    return;
  }
  run_slice(p);
}

void Cpu::unblock(Process& p) {
  if (p.dead()) return;  // killed or finished while the wait was in flight
  assert(p.state_ == ProcState::kBlockedFault ||
         p.state_ == ProcState::kBlockedComm);
  if (p.stop_requested_) {
    p.state_ = ProcState::kStopped;
    p.stopped_since_ = sim_.now();
    return;
  }
  make_runnable(p);
}

void Cpu::do_stop(Process& p) {
  assert(p.state_ == ProcState::kRunning);
  ++p.run_gen_;
  p.state_ = ProcState::kStopped;
  p.stopped_since_ = sim_.now();
  if (current_ == &p) {
    current_ = nullptr;
    dispatch();
  }
}

void Cpu::finish(Process& p) {
  assert(p.state_ == ProcState::kRunning);
  ++p.run_gen_;
  p.state_ = ProcState::kFinished;
  p.stats_.finished_at = sim_.now();
  if (current_ == &p) {
    current_ = nullptr;
  }
  if (p.on_finish) p.on_finish(p);
  dispatch();
}

}  // namespace apsim
