#include "proc/process.hpp"

namespace apsim {

std::string_view to_string(ProcState s) {
  switch (s) {
    case ProcState::kReady: return "ready";
    case ProcState::kRunning: return "running";
    case ProcState::kBlockedFault: return "fault-wait";
    case ProcState::kBlockedComm: return "comm-wait";
    case ProcState::kStopped: return "stopped";
    case ProcState::kFinished: return "finished";
    case ProcState::kFailed: return "failed";
  }
  return "?";
}

}  // namespace apsim
