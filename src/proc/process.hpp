#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "mem/page.hpp"
#include "proc/access.hpp"
#include "sim/time.hpp"

/// \file process.hpp
/// A simulated application process: a Program (its reference string), its
/// pid in the node's VMM, scheduling state, and per-process accounting. The
/// gang scheduler manipulates processes exclusively through SIGSTOP/SIGCONT
/// analogues on the owning Cpu, exactly like the paper's user-level
/// scheduler.

namespace apsim {

class AddressSpace;

enum class ProcState : std::uint8_t {
  kReady,         ///< runnable, waiting for the CPU
  kRunning,       ///< currently executing on the CPU
  kBlockedFault,  ///< waiting for a page fault to resolve
  kBlockedComm,   ///< waiting inside a communication op
  kStopped,       ///< SIGSTOPped by the gang scheduler
  kFinished,      ///< program completed
  kFailed,        ///< killed (node crash or unrecoverable page fault)
};

[[nodiscard]] std::string_view to_string(ProcState s);

class Process {
 public:
  Process(std::string name, Pid pid, std::unique_ptr<Program> program)
      : name_(std::move(name)), pid_(pid), program_(std::move(program)) {}

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Pid pid() const { return pid_; }
  [[nodiscard]] ProcState state() const { return state_; }
  [[nodiscard]] Program& program() { return *program_; }
  [[nodiscard]] bool stop_requested() const { return stop_requested_; }
  [[nodiscard]] bool finished() const { return state_ == ProcState::kFinished; }
  [[nodiscard]] bool failed() const { return state_ == ProcState::kFailed; }
  /// Finished or failed: the process will never run again.
  [[nodiscard]] bool dead() const { return finished() || failed(); }

  /// MPI identity (meaningful for parallel programs only).
  int rank = 0;
  int job_id = -1;

  /// Invoked exactly once when the program completes.
  std::function<void(Process&)> on_finish;

  struct Stats {
    SimDuration cpu_time = 0;
    SimDuration fault_wait = 0;    ///< blocked on page faults
    SimDuration comm_wait = 0;     ///< blocked in communication ops
    SimDuration stopped_time = 0;  ///< SIGSTOPped
    SimTime finished_at = -1;
    std::uint64_t slices = 0;      ///< executor slices consumed
    std::uint64_t faults_taken = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  friend class Cpu;
  friend class CheckpointManager;  // snapshots/restores the op cursor

  std::string name_;
  Pid pid_;
  std::unique_ptr<Program> program_;
  AddressSpace* space_ = nullptr;  // cached by Cpu::attach

  ProcState state_ = ProcState::kStopped;  // born stopped; start via cont
  bool stop_requested_ = true;
  std::uint64_t run_gen_ = 0;  ///< invalidates stale continuation events

  // Current-operation cursor.
  Op current_op_;
  bool op_active_ = false;
  std::int64_t op_pos_ = 0;  ///< touches done (kAccess) or ns elapsed (kCompute)
  TouchPlan touch_plan_;     ///< prepared form of current_op_.access (batched path)

  // Accounting anchors.
  SimTime blocked_since_ = 0;
  SimTime stopped_since_ = 0;

  Stats stats_;
};

}  // namespace apsim
