#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "mem/page.hpp"
#include "mem/touch_plan.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

/// \file access.hpp
/// Workload description consumed by the CPU executor. A Program yields a
/// stream of operations: page-touch chunks (the page reference string),
/// pure-compute intervals, and communication ops (handled by the mini-MPI
/// layer). Chunks are deterministic and position-addressable so the executor
/// can suspend mid-chunk at a page fault and resume exactly where it left
/// off.

namespace apsim {

/// A batch of page touches over one region with a fixed pattern.
struct AccessChunk {
  enum class Pattern : std::uint8_t {
    kSequential,  ///< region_start + i
    kStrided,     ///< region_start + (i * stride) mod region_pages
    kRandom,      ///< uniform over the region, hashed from (seed, i)
    kZipf,        ///< zipf-skewed over the region, hashed from (seed, i)
  };

  Pattern pattern = Pattern::kSequential;
  VPage region_start = 0;
  std::int64_t region_pages = 0;
  std::int64_t touches = 0;           ///< total page touches in the chunk
  std::int64_t stride = 1;            ///< for kStrided
  bool write = false;
  SimDuration compute_per_touch = 0;  ///< CPU time modelled per touch
  std::uint64_t seed = 0;             ///< randomness root for kRandom/kZipf
  double theta = 0.8;                 ///< zipf skew

  /// When true (default), IterativeProgram derives a fresh seed for this
  /// chunk every iteration (the touched subset churns, e.g. sort keys);
  /// when false the same skewed subset stays hot across iterations (e.g. a
  /// sparse matrix accessed through a stable structure).
  bool reseed_per_iteration = true;

  /// Deterministic page for the i-th touch (0 <= i < touches).
  [[nodiscard]] VPage page_at(std::int64_t i) const;

  /// Prepared form for the batched touch engine (Vmm::touch_run): same
  /// addressing, with the zipf harmonic constant precomputed so the
  /// per-touch hot loop does no pow/log.
  [[nodiscard]] TouchPlan prepare() const;

  /// Cached zipf harmonic constant for page_at (valid while the key fields
  /// match); mutable so the const hot path can fill it lazily. Not part of
  /// the chunk's identity.
  mutable double zipf_hn_cache = 0.0;
  mutable std::int64_t zipf_hn_n = -1;
  mutable double zipf_hn_theta = 0.0;
};

/// Communication operation (parallel programs only).
struct CommOp {
  enum class Type : std::uint8_t {
    kBarrier,    ///< all ranks synchronize
    kExchange,   ///< neighbour halo exchange of `bytes` per rank
    kAllreduce,  ///< reduction of `bytes` across all ranks
  };
  Type type = Type::kBarrier;
  std::int64_t bytes = 0;
};

/// One operation from a Program.
struct Op {
  enum class Kind : std::uint8_t { kAccess, kCompute, kComm, kDone };
  Kind kind = Kind::kDone;
  AccessChunk access;       ///< valid when kind == kAccess
  SimDuration compute = 0;  ///< valid when kind == kCompute
  CommOp comm;              ///< valid when kind == kComm

  [[nodiscard]] static Op access_op(AccessChunk chunk) {
    Op op;
    op.kind = Kind::kAccess;
    op.access = chunk;
    return op;
  }
  [[nodiscard]] static Op compute_op(SimDuration d) {
    Op op;
    op.kind = Kind::kCompute;
    op.compute = d;
    return op;
  }
  [[nodiscard]] static Op comm_op(CommOp comm) {
    Op op;
    op.kind = Kind::kComm;
    op.comm = comm;
    return op;
  }
  [[nodiscard]] static Op done_op() { return Op{}; }
};

/// Serializable position within a Program's op stream, captured by the
/// checkpoint subsystem. The fields mirror IterativeProgram's cursor state;
/// other Program shapes may interpret them as they see fit as long as
/// restore_cursor(save_cursor()) replays the identical op sequence.
struct ProgramCursor {
  bool in_prologue = false;
  std::uint64_t pos = 0;
  std::int64_t iter = 0;
  bool done = false;

  friend bool operator==(const ProgramCursor&, const ProgramCursor&) = default;
};

/// Stream of operations describing one process's execution.
class Program {
 public:
  virtual ~Program() = default;

  /// Next operation; called once the previous one fully completed. Must
  /// return kDone from then on once finished.
  [[nodiscard]] virtual Op next() = 0;

  /// Completion fraction in [0, 1]; informational only.
  [[nodiscard]] virtual double progress() const = 0;

  /// Checkpoint support. A program that can be rewound returns its cursor;
  /// the default (nullopt) marks the program non-checkpointable, and the
  /// recovery subsystem then leaves its job on the fatal path. A restored
  /// cursor must make the following next() calls replay exactly the
  /// sequence that followed the save — determinism of recovered runs
  /// depends on it.
  [[nodiscard]] virtual std::optional<ProgramCursor> save_cursor() const {
    return std::nullopt;
  }
  virtual bool restore_cursor(const ProgramCursor&) { return false; }
};

/// Program that runs a fixed prologue once, then repeats a cycle of ops for
/// a given number of iterations. Sufficient for the NPB-like kernels, whose
/// iterations are structurally identical. Ops containing randomised chunks
/// get a fresh seed each iteration (derived from the base seed) so the
/// reference string varies across iterations without storing state.
class IterativeProgram final : public Program {
 public:
  IterativeProgram(std::vector<Op> prologue, std::vector<Op> cycle,
                   std::int64_t iterations, std::uint64_t seed = 0);

  [[nodiscard]] Op next() override;
  [[nodiscard]] double progress() const override;

  [[nodiscard]] std::optional<ProgramCursor> save_cursor() const override;
  bool restore_cursor(const ProgramCursor& cursor) override;

  [[nodiscard]] std::int64_t iterations_total() const { return iterations_; }
  [[nodiscard]] std::int64_t iterations_done() const { return iter_; }

 private:
  std::vector<Op> prologue_;
  std::vector<Op> cycle_;
  std::int64_t iterations_;
  std::uint64_t seed_;
  std::size_t pos_ = 0;      // index within current list
  std::int64_t iter_ = 0;    // completed cycles
  bool in_prologue_;
  bool done_ = false;
};

}  // namespace apsim
