#include "proc/access.hpp"

#include <cassert>
#include <cmath>

namespace apsim {

namespace {

/// Stateless hash of (seed, i) with splitmix64.
[[nodiscard]] std::uint64_t hash_at(std::uint64_t seed, std::int64_t i) {
  std::uint64_t s = seed ^ (0x9E3779B97F4A7C15ULL + static_cast<std::uint64_t>(i));
  return splitmix64(s);
}

/// Map a uniform u64 to a zipf-distributed rank in [0, n).
[[nodiscard]] std::int64_t zipf_rank(std::uint64_t h, std::int64_t n,
                                     double theta) {
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  double x = 0.0;
  if (theta == 1.0) {
    const double hn = std::log(static_cast<double>(n) + 1.0);
    x = std::exp(u * hn) - 1.0;
  } else {
    const double hn =
        (std::pow(static_cast<double>(n) + 1.0, 1.0 - theta) - 1.0) /
        (1.0 - theta);
    x = std::pow(u * hn * (1.0 - theta) + 1.0, 1.0 / (1.0 - theta)) - 1.0;
  }
  auto r = static_cast<std::int64_t>(x);
  return r >= n ? n - 1 : (r < 0 ? 0 : r);
}

}  // namespace

VPage AccessChunk::page_at(std::int64_t i) const {
  assert(i >= 0 && i < touches);
  assert(region_pages > 0);
  switch (pattern) {
    case Pattern::kSequential:
      return region_start + (i % region_pages);
    case Pattern::kStrided:
      return region_start + (i * stride) % region_pages;
    case Pattern::kRandom:
      return region_start +
             static_cast<VPage>(hash_at(seed, i) %
                                static_cast<std::uint64_t>(region_pages));
    case Pattern::kZipf:
      return region_start + zipf_rank(hash_at(seed, i), region_pages, theta);
  }
  return region_start;
}

IterativeProgram::IterativeProgram(std::vector<Op> prologue,
                                   std::vector<Op> cycle,
                                   std::int64_t iterations, std::uint64_t seed)
    : prologue_(std::move(prologue)), cycle_(std::move(cycle)),
      iterations_(iterations), seed_(seed),
      in_prologue_(!prologue_.empty()) {
  assert(iterations >= 0);
}

Op IterativeProgram::next() {
  if (done_) return Op::done_op();

  if (in_prologue_) {
    if (pos_ < prologue_.size()) return prologue_[pos_++];
    in_prologue_ = false;
    pos_ = 0;
  }

  while (iter_ < iterations_) {
    if (pos_ < cycle_.size()) {
      Op op = cycle_[pos_++];
      if (op.kind == Op::Kind::kAccess && op.access.reseed_per_iteration &&
          (op.access.pattern == AccessChunk::Pattern::kRandom ||
           op.access.pattern == AccessChunk::Pattern::kZipf)) {
        // Vary randomised chunks per iteration, deterministically.
        std::uint64_t s = seed_ ^ (static_cast<std::uint64_t>(iter_) << 32) ^
                          static_cast<std::uint64_t>(pos_);
        op.access.seed = splitmix64(s);
      }
      return op;
    }
    pos_ = 0;
    ++iter_;
  }
  done_ = true;
  return Op::done_op();
}

double IterativeProgram::progress() const {
  if (done_) return 1.0;
  if (iterations_ == 0) return in_prologue_ ? 0.0 : 1.0;
  return static_cast<double>(iter_) / static_cast<double>(iterations_);
}

}  // namespace apsim
