#include "proc/access.hpp"

#include <cassert>
#include <cmath>

namespace apsim {

// The proc-layer pattern enum and the mem-layer TouchPattern must stay in
// lockstep: prepare() converts with a static_cast.
static_assert(static_cast<int>(AccessChunk::Pattern::kSequential) ==
              static_cast<int>(TouchPattern::kSequential));
static_assert(static_cast<int>(AccessChunk::Pattern::kStrided) ==
              static_cast<int>(TouchPattern::kStrided));
static_assert(static_cast<int>(AccessChunk::Pattern::kRandom) ==
              static_cast<int>(TouchPattern::kRandom));
static_assert(static_cast<int>(AccessChunk::Pattern::kZipf) ==
              static_cast<int>(TouchPattern::kZipf));

VPage AccessChunk::page_at(std::int64_t i) const {
  assert(i >= 0 && i < touches);
  assert(region_pages > 0);
  switch (pattern) {
    case Pattern::kSequential:
      return region_start + (i % region_pages);
    case Pattern::kStrided:
      return region_start + (i * stride) % region_pages;
    case Pattern::kRandom:
      return region_start +
             static_cast<VPage>(touch_hash(seed, i) %
                                static_cast<std::uint64_t>(region_pages));
    case Pattern::kZipf:
      if (zipf_hn_n != region_pages || zipf_hn_theta != theta) {
        zipf_hn_cache = zipf_harmonic(region_pages, theta);
        zipf_hn_n = region_pages;
        zipf_hn_theta = theta;
      }
      return region_start + zipf_rank(touch_hash(seed, i), region_pages, theta,
                                      zipf_hn_cache);
  }
  return region_start;
}

TouchPlan AccessChunk::prepare() const {
  TouchPlan plan;
  plan.pattern = static_cast<TouchPattern>(pattern);
  plan.region_start = region_start;
  plan.region_pages = region_pages;
  plan.touches = touches;
  plan.stride = stride;
  plan.write = write;
  plan.seed = seed;
  plan.theta = theta;
  if (pattern == Pattern::kZipf) {
    plan.zipf_hn = zipf_harmonic(region_pages, theta);
  }
  return plan;
}

IterativeProgram::IterativeProgram(std::vector<Op> prologue,
                                   std::vector<Op> cycle,
                                   std::int64_t iterations, std::uint64_t seed)
    : prologue_(std::move(prologue)), cycle_(std::move(cycle)),
      iterations_(iterations), seed_(seed),
      in_prologue_(!prologue_.empty()) {
  assert(iterations >= 0);
}

Op IterativeProgram::next() {
  if (done_) return Op::done_op();

  if (in_prologue_) {
    if (pos_ < prologue_.size()) return prologue_[pos_++];
    in_prologue_ = false;
    pos_ = 0;
  }

  while (iter_ < iterations_) {
    if (pos_ < cycle_.size()) {
      Op op = cycle_[pos_++];
      if (op.kind == Op::Kind::kAccess && op.access.reseed_per_iteration &&
          (op.access.pattern == AccessChunk::Pattern::kRandom ||
           op.access.pattern == AccessChunk::Pattern::kZipf)) {
        // Vary randomised chunks per iteration, deterministically.
        std::uint64_t s = seed_ ^ (static_cast<std::uint64_t>(iter_) << 32) ^
                          static_cast<std::uint64_t>(pos_);
        op.access.seed = splitmix64(s);
      }
      return op;
    }
    pos_ = 0;
    ++iter_;
  }
  done_ = true;
  return Op::done_op();
}

std::optional<ProgramCursor> IterativeProgram::save_cursor() const {
  ProgramCursor cursor;
  cursor.in_prologue = in_prologue_;
  cursor.pos = pos_;
  cursor.iter = iter_;
  cursor.done = done_;
  return cursor;
}

bool IterativeProgram::restore_cursor(const ProgramCursor& cursor) {
  if (cursor.iter < 0 || cursor.iter > iterations_) return false;
  const std::size_t limit =
      cursor.in_prologue ? prologue_.size() : cycle_.size();
  if (cursor.pos > limit) return false;
  in_prologue_ = cursor.in_prologue;
  pos_ = static_cast<std::size_t>(cursor.pos);
  iter_ = cursor.iter;
  done_ = cursor.done;
  return true;
}

double IterativeProgram::progress() const {
  if (done_) return 1.0;
  if (iterations_ == 0) return in_prologue_ ? 0.0 : 1.0;
  return static_cast<double>(iter_) / static_cast<double>(iterations_);
}

}  // namespace apsim
