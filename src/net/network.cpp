#include "net/network.hpp"

#include <algorithm>
#include <cassert>

namespace apsim {

Network::Network(Simulator& sim, int num_nodes, NetParams params)
    : sim_(sim), params_(params),
      tx_free_at_(static_cast<std::size_t>(num_nodes), 0),
      rx_free_at_(static_cast<std::size_t>(num_nodes), 0) {
  assert(num_nodes > 0);
}

SimDuration Network::transfer_time(std::int64_t bytes) const {
  assert(bytes >= 0);
  return static_cast<SimDuration>(static_cast<double>(bytes) /
                                  params_.bandwidth_bytes_per_sec * kSecond);
}

void Network::send(int from, int to, std::int64_t bytes,
                   std::function<void()> on_delivered) {
  assert(from >= 0 && from < num_nodes());
  assert(to >= 0 && to < num_nodes());
  ++stats_.messages;
  stats_.bytes += static_cast<std::uint64_t>(bytes);

  if (from == to) {
    // Loopback: software overhead only.
    sim_.after(2 * params_.per_message_overhead, std::move(on_delivered));
    return;
  }

  const SimTime now = sim_.now();
  auto& tx = tx_free_at_[static_cast<std::size_t>(from)];
  auto& rx = rx_free_at_[static_cast<std::size_t>(to)];
  const SimDuration xfer = transfer_time(bytes);

  // Cut-through switching: the message occupies the sender link for one
  // transfer time, and the receiver link for one transfer time starting a
  // switch latency later; either link may be busy with earlier traffic.
  const SimTime tx_start = std::max(now + params_.per_message_overhead, tx);
  tx = tx_start + xfer;
  const SimTime rx_start = std::max(tx_start + params_.latency, rx);
  const SimTime rx_done = rx_start + xfer;
  rx = rx_done;

  sim_.at(rx_done + params_.per_message_overhead, std::move(on_delivered));
}

void Network::charge(int from, int to, std::int64_t bytes) {
  assert(from >= 0 && from < num_nodes());
  assert(to >= 0 && to < num_nodes());
  (void)from;
  (void)to;
  ++stats_.messages;
  stats_.bytes += static_cast<std::uint64_t>(bytes);
}

}  // namespace apsim
