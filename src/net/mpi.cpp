#include "net/mpi.hpp"

#include <bit>
#include <cassert>

namespace apsim {

MpiComm::MpiComm(Simulator& sim, Network& net, int nranks)
    : sim_(sim), net_(net), nranks_(nranks),
      node_of_(static_cast<std::size_t>(nranks), -1),
      rank_seq_(static_cast<std::size_t>(nranks), 0) {
  assert(nranks > 0);
}

void MpiComm::bind(int rank, Process& process, int node_index) {
  assert(rank >= 0 && rank < nranks_);
  node_of_[static_cast<std::size_t>(rank)] = node_index;
  process.rank = rank;
}

void MpiComm::rebind_node(int rank, int node_index) {
  assert(rank >= 0 && rank < nranks_);
  node_of_[static_cast<std::size_t>(rank)] = node_index;
}

void MpiComm::reset_for_restart(const std::vector<std::uint64_t>& seqs) {
  assert(static_cast<int>(seqs.size()) == nranks_);
  open_.clear();
  rank_seq_ = seqs;
}

void MpiComm::install_exclusive(Cpu& cpu) {
  cpu.set_comm_handler([this](Process& p, const CommOp& op,
                              std::function<void()> resume) {
    enter(p, op, std::move(resume));
  });
}

void MpiComm::enter(Process& p, const CommOp& op,
                    std::function<void()> resume) {
  const int rank = p.rank;
  assert(rank >= 0 && rank < nranks_);
  const std::uint64_t seq = rank_seq_[static_cast<std::size_t>(rank)]++;

  auto [it, inserted] = open_.try_emplace(seq);
  Pending& pending = it->second;
  if (inserted) {
    pending.op = op;
    pending.resumes.assign(static_cast<std::size_t>(nranks_), nullptr);
  } else {
    assert(pending.op.type == op.type && "collective mismatch across ranks");
  }
  assert(!pending.resumes[static_cast<std::size_t>(rank)]);
  pending.resumes[static_cast<std::size_t>(rank)] = std::move(resume);
  ++pending.entered;

  if (pending.entered == nranks_) {
    Pending done = std::move(pending);
    open_.erase(it);
    complete(seq, done);
  }
}

void MpiComm::complete(std::uint64_t /*seq*/, Pending& pending) {
  const int log2n = nranks_ > 1 ? std::bit_width(
      static_cast<unsigned>(nranks_ - 1)) : 0;

  switch (pending.op.type) {
    case CommOp::Type::kBarrier: {
      ++stats_.barriers;
      // Dissemination barrier: ceil(log2 n) message rounds.
      const SimDuration cost =
          2 * net_.params().latency * std::max(1, log2n);
      for (auto& resume : pending.resumes) {
        sim_.after(cost, std::move(resume));
      }
      break;
    }
    case CommOp::Type::kExchange: {
      ++stats_.exchanges;
      run_exchange(pending);
      break;
    }
    case CommOp::Type::kAllreduce: {
      ++stats_.allreduces;
      // Recursive doubling: log2 n rounds, each moving `bytes` per rank.
      const SimDuration round = net_.params().latency +
                                net_.transfer_time(pending.op.bytes) +
                                2 * net_.params().per_message_overhead;
      const SimDuration cost = round * std::max(1, log2n);
      for (int r = 0; r < nranks_; ++r) {
        for (int round_i = 0; round_i < log2n; ++round_i) {
          const int peer = r ^ (1 << round_i);
          if (peer < nranks_ && peer >= 0) {
            net_.charge(node_of_[static_cast<std::size_t>(r)],
                        node_of_[static_cast<std::size_t>(peer)],
                        pending.op.bytes);
          }
        }
      }
      for (auto& resume : pending.resumes) {
        sim_.after(cost, std::move(resume));
      }
      break;
    }
  }
}

void MpiComm::run_exchange(const Pending& pending) {
  // Ring halo exchange: every rank sends `bytes` to both neighbours and
  // resumes once both of its incoming halves have been delivered. Uses real
  // Network sends so link contention is modelled.
  if (nranks_ == 1) {
    sim_.after(2 * net_.params().per_message_overhead,
               std::move(const_cast<Pending&>(pending).resumes[0]));
    return;
  }

  struct RankWait {
    int remaining = 0;
    std::function<void()> resume;
  };
  auto waits = std::make_shared<std::vector<RankWait>>(
      static_cast<std::size_t>(nranks_));
  const int expected = nranks_ == 2 ? 1 : 2;  // ring degenerates for n == 2
  for (int r = 0; r < nranks_; ++r) {
    (*waits)[static_cast<std::size_t>(r)].remaining = expected;
    (*waits)[static_cast<std::size_t>(r)].resume =
        std::move(const_cast<Pending&>(pending)
                      .resumes[static_cast<std::size_t>(r)]);
  }

  auto arrive = [this, waits](int rank) {
    auto& w = (*waits)[static_cast<std::size_t>(rank)];
    if (--w.remaining == 0) {
      sim_.after(0, std::move(w.resume));
    }
  };

  for (int r = 0; r < nranks_; ++r) {
    const int next = (r + 1) % nranks_;
    net_.send(node_of_[static_cast<std::size_t>(r)],
              node_of_[static_cast<std::size_t>(next)], pending.op.bytes,
              [arrive, next] { arrive(next); });
    if (nranks_ > 2) {
      const int prev = (r + nranks_ - 1) % nranks_;
      net_.send(node_of_[static_cast<std::size_t>(r)],
                node_of_[static_cast<std::size_t>(prev)], pending.op.bytes,
                [arrive, prev] { arrive(prev); });
    }
  }
}

}  // namespace apsim
