#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.hpp"

/// \file network.hpp
/// Cluster interconnect model: a non-blocking switch with one full-duplex
/// link per node (the paper's testbed is a 100 Mbps Ethernet switch). Each
/// message serializes on the sender's and receiver's links; the switch adds
/// fixed latency. Enough fidelity to reproduce gang skew: a rank that is
/// still paging delays everyone else's collectives.

namespace apsim {

struct NetParams {
  /// Link bandwidth in bytes per second (100 Mbps Ethernet).
  double bandwidth_bytes_per_sec = 100.0e6 / 8.0;

  /// One-way switch + stack latency per message.
  SimDuration latency = 100 * kMicrosecond;

  /// Fixed per-message software overhead on each endpoint.
  SimDuration per_message_overhead = 20 * kMicrosecond;
};

class Network {
 public:
  Network(Simulator& sim, int num_nodes, NetParams params = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] int num_nodes() const { return static_cast<int>(tx_free_at_.size()); }
  [[nodiscard]] const NetParams& params() const { return params_; }

  /// Send \p bytes from node \p from to node \p to; \p on_delivered fires at
  /// the receiver when the last byte lands. Self-sends are near-free.
  void send(int from, int to, std::int64_t bytes,
            std::function<void()> on_delivered);

  /// Account traffic that a higher layer modelled analytically (e.g. the
  /// allreduce formula) without scheduling per-message events.
  void charge(int from, int to, std::int64_t bytes);

  /// Pure transfer time of \p bytes over one link.
  [[nodiscard]] SimDuration transfer_time(std::int64_t bytes) const;

  struct Stats {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  Simulator& sim_;
  NetParams params_;
  std::vector<SimTime> tx_free_at_;  ///< sender link busy horizon
  std::vector<SimTime> rx_free_at_;  ///< receiver link busy horizon
  Stats stats_;
};

}  // namespace apsim
