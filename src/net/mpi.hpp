#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "net/network.hpp"
#include "proc/cpu.hpp"
#include "proc/process.hpp"

/// \file mpi.hpp
/// Minimal MPI-like communicator for one parallel job: barrier, neighbour
/// (halo) exchange, and allreduce across the job's ranks, over the Network
/// model. Collectives match by per-rank sequence number, which is correct
/// because every rank of an SPMD program executes the same collective
/// sequence. A rank that is SIGSTOPped (or still paging) simply has not
/// entered yet, so the others wait — the gang-skew effect the paper's
/// simultaneous paging compaction removes.

namespace apsim {

class MpiComm {
 public:
  MpiComm(Simulator& sim, Network& net, int nranks);

  MpiComm(const MpiComm&) = delete;
  MpiComm& operator=(const MpiComm&) = delete;

  /// Register rank -> (process, node). The node CPU's comm handler must
  /// route each process's comm ops to its job's communicator (CPUs are
  /// shared between jobs, so the handler dispatches by Process::job_id; see
  /// harness/runner.cpp), or call install_exclusive() when a CPU hosts only
  /// this communicator's rank.
  void bind(int rank, Process& process, int node_index);

  /// Convenience for single-job setups: make this communicator the CPU's
  /// comm handler directly.
  void install_exclusive(Cpu& cpu);

  [[nodiscard]] int nranks() const { return nranks_; }

  /// Entry point invoked by the CPU executor for every comm op.
  void enter(Process& p, const CommOp& op, std::function<void()> resume);

  struct Stats {
    std::uint64_t barriers = 0;
    std::uint64_t exchanges = 0;
    std::uint64_t allreduces = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Pending {
    CommOp op;
    int entered = 0;
    std::vector<std::function<void()>> resumes;  // indexed by rank
  };

  void complete(std::uint64_t seq, Pending& pending);
  void run_exchange(const Pending& pending);

  Simulator& sim_;
  Network& net_;
  int nranks_;
  std::vector<int> node_of_;               ///< rank -> node index
  std::vector<std::uint64_t> rank_seq_;    ///< next collective seq per rank
  std::map<std::uint64_t, Pending> open_;  ///< seq -> in-progress collective
  Stats stats_;
};

}  // namespace apsim
