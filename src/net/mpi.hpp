#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "net/network.hpp"
#include "proc/cpu.hpp"
#include "proc/process.hpp"

/// \file mpi.hpp
/// Minimal MPI-like communicator for one parallel job: barrier, neighbour
/// (halo) exchange, and allreduce across the job's ranks, over the Network
/// model. Collectives match by per-rank sequence number, which is correct
/// because every rank of an SPMD program executes the same collective
/// sequence. A rank that is SIGSTOPped (or still paging) simply has not
/// entered yet, so the others wait — the gang-skew effect the paper's
/// simultaneous paging compaction removes.

namespace apsim {

class MpiComm {
 public:
  MpiComm(Simulator& sim, Network& net, int nranks);

  MpiComm(const MpiComm&) = delete;
  MpiComm& operator=(const MpiComm&) = delete;

  /// Register rank -> (process, node). The node CPU's comm handler must
  /// route each process's comm ops to its job's communicator (CPUs are
  /// shared between jobs, so the handler dispatches by Process::job_id; see
  /// harness/runner.cpp), or call install_exclusive() when a CPU hosts only
  /// this communicator's rank.
  void bind(int rank, Process& process, int node_index);

  /// Convenience for single-job setups: make this communicator the CPU's
  /// comm handler directly.
  void install_exclusive(Cpu& cpu);

  [[nodiscard]] int nranks() const { return nranks_; }

  /// Entry point invoked by the CPU executor for every comm op.
  void enter(Process& p, const CommOp& op, std::function<void()> resume);

  /// Checkpoint/restart support -----------------------------------------

  /// Per-rank next collective sequence numbers (snapshot material).
  [[nodiscard]] const std::vector<std::uint64_t>& rank_seqs() const {
    return rank_seq_;
  }

  /// True while collective \p seq has entrants waiting for stragglers. A
  /// blocked rank whose previous collective is still open must re-enter it
  /// after a restart (the collective never completed); one that is closed
  /// already resumed every rank, so the restored rank rolls forward.
  [[nodiscard]] bool collective_open(std::uint64_t seq) const {
    return open_.contains(seq);
  }

  /// Re-home a rank after restart placement moved its process.
  void rebind_node(int rank, int node_index);

  /// Rewind the communicator to a checkpoint image: drop every in-progress
  /// collective (their resumes target dead incarnations and are dropped by
  /// the CPU's generation guards anyway) and restore the per-rank sequence
  /// counters so re-entered collectives match up again.
  void reset_for_restart(const std::vector<std::uint64_t>& seqs);

  struct Stats {
    std::uint64_t barriers = 0;
    std::uint64_t exchanges = 0;
    std::uint64_t allreduces = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Pending {
    CommOp op;
    int entered = 0;
    std::vector<std::function<void()>> resumes;  // indexed by rank
  };

  void complete(std::uint64_t seq, Pending& pending);
  void run_exchange(const Pending& pending);

  Simulator& sim_;
  Network& net_;
  int nranks_;
  std::vector<int> node_of_;               ///< rank -> node index
  std::vector<std::uint64_t> rank_seq_;    ///< next collective seq per rank
  std::map<std::uint64_t, Pending> open_;  ///< seq -> in-progress collective
  Stats stats_;
};

}  // namespace apsim
