#include "metrics/tracer.hpp"

#include <cassert>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace apsim {

namespace {

/// Format a numeric argument value: integers exactly, everything else with
/// enough digits to be useful. Output is locale-independent and deterministic.
std::string format_number(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else if (std::isfinite(v)) {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  } else {
    return "0";  // NaN/inf are invalid JSON; clamp rather than corrupt
  }
  return buf;
}

/// Microsecond timestamp with nanosecond fraction, as Chrome expects.
std::string format_ts(SimTime ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03d", ns / 1000,
                static_cast<int>(ns % 1000));
  return buf;
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void TraceSpan::end() {
  if (tracer_ == nullptr) return;
  tracer_->end_span(*this);
  tracer_ = nullptr;
}

std::uint32_t Tracer::intern(std::string_view s) {
  auto it = intern_index_.find(s);
  if (it != intern_index_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(strings_.size());
  strings_.emplace_back(s);
  intern_index_.emplace(strings_.back(), id);
  return id;
}

bool Tracer::record(TraceEventKind kind, SimTime ts, int track,
                    std::uint32_t cat, std::uint32_t name, std::uint64_t id,
                    std::initializer_list<TraceArg> args, bool force) {
  if (!force && events_.size() >= max_events_) {
    ++dropped_;
    return false;
  }
  TraceEvent ev;
  ev.ts = ts;
  ev.id = id;
  ev.cat = cat;
  ev.name = name;
  ev.track = track;
  ev.kind = kind;
  for (const TraceArg& arg : args) {
    if (ev.num_args >= ev.args.size()) break;
    ev.args[ev.num_args++] = {intern(arg.key), arg.value};
  }
  events_.push_back(ev);
  return true;
}

TraceSpan Tracer::span(int track, std::string_view category,
                       std::string_view name,
                       std::initializer_list<TraceArg> args) {
  const std::uint32_t cat_id = intern(category);
  const std::uint32_t name_id = intern(name);
  const SimTime ts = now();
  const bool stored = record(TraceEventKind::kBegin, ts, track, cat_id,
                             name_id, 0, args, /*force=*/false);
  return TraceSpan(this, track, cat_id, name_id, ts, 0, stored);
}

TraceSpan Tracer::async_span(int track, std::string_view category,
                             std::string_view name,
                             std::initializer_list<TraceArg> args) {
  const std::uint32_t cat_id = intern(category);
  const std::uint32_t name_id = intern(name);
  const SimTime ts = now();
  const std::uint64_t id = next_async_id_++;
  const bool stored = record(TraceEventKind::kAsyncBegin, ts, track, cat_id,
                             name_id, id, args, /*force=*/false);
  return TraceSpan(this, track, cat_id, name_id, ts, id, stored);
}

void Tracer::instant(int track, std::string_view category,
                     std::string_view name,
                     std::initializer_list<TraceArg> args) {
  record(TraceEventKind::kInstant, now(), track, intern(category),
         intern(name), 0, args, /*force=*/false);
}

void Tracer::counter(int track, std::string_view category,
                     std::string_view name, double value) {
  record(TraceEventKind::kCounter, now(), track, intern(category),
         intern(name), 0, {{"value", value}}, /*force=*/false);
}

void Tracer::set_track_name(int track, std::string name) {
  track_names_[track] = std::move(name);
}

void Tracer::end_span(const TraceSpan& span) {
  const SimTime ts = now();
  if (span.recorded_) {
    // Always close a begin that made it into the buffer, even past the cap,
    // so the exported JSON stays balanced; the overshoot is bounded by the
    // number of spans open when the cap was hit.
    record(span.async_id_ ? TraceEventKind::kAsyncEnd : TraceEventKind::kEnd,
           ts, span.track_, span.cat_, span.name_, span.async_id_, {},
           /*force=*/true);
  }
  const double secs = to_seconds(ts - span.begin_);
  PhaseAccumulator& acc = phase(span.cat_, span.name_);
  acc.stat.add(secs);
  acc.log_hist.add(std::log10(std::max(secs, 1e-9)));
}

Tracer::PhaseAccumulator& Tracer::phase(std::uint32_t cat,
                                        std::uint32_t name) {
  const std::uint64_t key = (static_cast<std::uint64_t>(cat) << 32) | name;
  auto it = phase_index_.find(key);
  if (it != phase_index_.end()) return phases_[it->second];
  phase_index_.emplace(key, phases_.size());
  phases_.emplace_back();
  phases_.back().cat = cat;
  phases_.back().name = name;
  return phases_.back();
}

std::vector<SwitchPhaseStat> Tracer::phase_stats() const {
  std::vector<SwitchPhaseStat> out;
  out.reserve(phases_.size());
  for (const PhaseAccumulator& acc : phases_) {
    SwitchPhaseStat stat;
    stat.category = strings_[acc.cat];
    stat.name = strings_[acc.name];
    stat.count = acc.stat.count();
    stat.total_s = acc.stat.sum();
    stat.mean_s = acc.stat.mean();
    stat.min_s = acc.stat.min();
    stat.max_s = acc.stat.max();
    stat.p95_s = acc.stat.count()
                     ? std::pow(10.0, acc.log_hist.quantile(0.95))
                     : 0.0;
    out.push_back(std::move(stat));
  }
  return out;
}

void Tracer::write_chrome_json(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& [track, name] : track_names_) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << track
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << json_escape(name) << "\"}}";
  }
  for (const TraceEvent& ev : events_) {
    if (!first) os << ',';
    first = false;
    const char* ph = "i";
    switch (ev.kind) {
      case TraceEventKind::kBegin: ph = "B"; break;
      case TraceEventKind::kEnd: ph = "E"; break;
      case TraceEventKind::kAsyncBegin: ph = "b"; break;
      case TraceEventKind::kAsyncEnd: ph = "e"; break;
      case TraceEventKind::kInstant: ph = "i"; break;
      case TraceEventKind::kCounter: ph = "C"; break;
    }
    os << "{\"ph\":\"" << ph << "\",\"pid\":0,\"tid\":" << ev.track
       << ",\"ts\":" << format_ts(ev.ts) << ",\"cat\":\""
       << json_escape(strings_[ev.cat]) << "\",\"name\":\""
       << json_escape(strings_[ev.name]) << '"';
    if (ev.kind == TraceEventKind::kAsyncBegin ||
        ev.kind == TraceEventKind::kAsyncEnd) {
      os << ",\"id\":\"0x" << std::hex << ev.id << std::dec << '"';
    }
    if (ev.kind == TraceEventKind::kInstant) os << ",\"s\":\"t\"";
    if (ev.num_args > 0 || ev.kind == TraceEventKind::kCounter) {
      os << ",\"args\":{";
      for (std::uint8_t i = 0; i < ev.num_args; ++i) {
        if (i) os << ',';
        os << '"' << json_escape(strings_[ev.args[i].first])
           << "\":" << format_number(ev.args[i].second);
      }
      os << '}';
    }
    os << '}';
  }
  os << "]}\n";
}

}  // namespace apsim
