#include "metrics/trace.hpp"

#include <algorithm>
#include <cmath>

namespace apsim {

void write_trace_csv(std::ostream& os, const PagingTrace& trace) {
  os << "time_s,pages_in,pages_out\n";
  const std::size_t n = std::max(trace.pages_in.buckets().size(),
                                 trace.pages_out.buckets().size());
  for (std::size_t i = 0; i < n; ++i) {
    const double in = i < trace.pages_in.buckets().size()
                          ? trace.pages_in.buckets()[i]
                          : 0.0;
    const double out = i < trace.pages_out.buckets().size()
                           ? trace.pages_out.buckets()[i]
                           : 0.0;
    os << i << ',' << in << ',' << out << '\n';
  }
}

std::string render_ascii_series(const TimeSeries& series,
                                const AsciiChartOptions& options) {
  const auto& buckets = series.buckets();
  const SimTime end = options.t_end >= 0
                          ? options.t_end
                          : series.origin() + static_cast<SimTime>(
                                                  buckets.size()) *
                                                  series.bucket_width();
  const SimTime begin = std::max(options.t_begin, series.origin());
  if (end <= begin || options.columns == 0 || options.rows == 0) return "";

  // Re-bin [begin, end) into `columns` cells.
  std::vector<double> cells(options.columns, 0.0);
  const double span = static_cast<double>(end - begin);
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const SimTime t = series.origin() +
                      static_cast<SimTime>(i) * series.bucket_width();
    if (t < begin || t >= end) continue;
    const auto cell = static_cast<std::size_t>(
        static_cast<double>(t - begin) / span *
        static_cast<double>(options.columns));
    cells[std::min(cell, options.columns - 1)] += buckets[i];
  }
  const double peak = *std::max_element(cells.begin(), cells.end());
  std::string out;
  if (peak <= 0.0) {
    out.assign(options.columns, '.');
    out += '\n';
    return out;
  }
  for (std::size_t row = 0; row < options.rows; ++row) {
    const double threshold = peak * static_cast<double>(options.rows - row) /
                             static_cast<double>(options.rows + 1);
    for (double cell : cells) {
      out += cell > threshold ? '#' : (row + 1 == options.rows && cell > 0.0 ? '_' : ' ');
    }
    out += '\n';
  }
  return out;
}

std::string render_ascii_trace(const PagingTrace& trace,
                               const AsciiChartOptions& options) {
  std::string out;
  out += trace.label + "  [page-in pages/s]\n";
  out += render_ascii_series(trace.pages_in, options);
  out += trace.label + "  [page-out pages/s]\n";
  out += render_ascii_series(trace.pages_out, options);
  return out;
}

double burst_concentration(const TimeSeries& series,
                           std::size_t peak_buckets) {
  const auto& buckets = series.buckets();
  if (buckets.empty() || series.total() <= 0.0) return 0.0;
  std::vector<double> sorted(buckets.begin(), buckets.end());
  std::partial_sort(sorted.begin(),
                    sorted.begin() +
                        static_cast<std::ptrdiff_t>(
                            std::min(peak_buckets, sorted.size())),
                    sorted.end(), std::greater<>{});
  double top = 0.0;
  for (std::size_t i = 0; i < std::min(peak_buckets, sorted.size()); ++i) {
    top += sorted[i];
  }
  return top / series.total();
}

}  // namespace apsim
