#include "metrics/trace.hpp"

#include <algorithm>
#include <cmath>

namespace apsim {

void write_trace_csv(std::ostream& os, const PagingTrace& trace) {
  os << "time_s,pages_in,pages_out\n";
  const std::size_t n = std::max(trace.pages_in.buckets().size(),
                                 trace.pages_out.buckets().size());
  for (std::size_t i = 0; i < n; ++i) {
    const double in = i < trace.pages_in.buckets().size()
                          ? trace.pages_in.buckets()[i]
                          : 0.0;
    const double out = i < trace.pages_out.buckets().size()
                           ? trace.pages_out.buckets()[i]
                           : 0.0;
    os << i << ',' << in << ',' << out << '\n';
  }
}

std::string render_ascii_series(const TimeSeries& series,
                                const AsciiChartOptions& options) {
  const auto& buckets = series.buckets();
  const SimTime end = options.t_end >= 0
                          ? options.t_end
                          : series.origin() + static_cast<SimTime>(
                                                  buckets.size()) *
                                                  series.bucket_width();
  // The x axis is [t_begin, t_end) verbatim; a window starting before the
  // series origin renders leading empty cells instead of silently shifting
  // the axis to the first sample.
  const SimTime begin = options.t_begin;
  if (end <= begin || options.columns == 0 || options.rows == 0) return "";

  // Re-bin [begin, end) into `columns` cells, attributing each bucket's
  // volume to the cells it overlaps in proportion to the overlap. (Mapping
  // whole buckets by their start time — the old behaviour — dropped the
  // in-window part of a bucket straddling t_begin, kept the out-of-window
  // tail of one straddling t_end, and produced spike/gap artifacts whenever
  // bucket and cell boundaries disagreed.)
  std::vector<double> cells(options.columns, 0.0);
  const SimTime window = end - begin;
  const auto columns = static_cast<SimTime>(options.columns);
  // Cell containing time t, exact in integer arithmetic (t in [begin, end)).
  const auto cell_of = [&](SimTime t) {
    return static_cast<std::size_t>((t - begin) * columns / window);
  };
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0.0) continue;
    const SimTime b0 = series.origin() +
                       static_cast<SimTime>(i) * series.bucket_width();
    const SimTime b1 = b0 + series.bucket_width();
    const SimTime lo = std::max(b0, begin);
    const SimTime hi = std::min(b1, end);
    if (hi <= lo) continue;  // bucket entirely outside the window
    const std::size_t c_lo = cell_of(lo);
    const std::size_t c_hi = cell_of(hi - 1);
    if (c_lo == c_hi) {
      // Fully inside one cell: add exactly (keeps aligned charts, where
      // every bucket nests in a cell, bit-identical to the start-time map).
      cells[c_lo] += buckets[i];
      continue;
    }
    const double density =
        buckets[i] / static_cast<double>(series.bucket_width());
    const double cell_w = static_cast<double>(window) /
                          static_cast<double>(options.columns);
    for (std::size_t c = c_lo; c <= c_hi; ++c) {
      const double cb = static_cast<double>(c) * cell_w;
      const double ce = static_cast<double>(c + 1) * cell_w;
      const double o_lo = std::max(cb, static_cast<double>(lo - begin));
      const double o_hi = std::min(ce, static_cast<double>(hi - begin));
      if (o_hi > o_lo) cells[c] += density * (o_hi - o_lo);
    }
  }
  const double peak = *std::max_element(cells.begin(), cells.end());
  std::string out;
  if (peak <= 0.0) {
    out.assign(options.columns, '.');
    out += '\n';
    return out;
  }
  for (std::size_t row = 0; row < options.rows; ++row) {
    const double threshold = peak * static_cast<double>(options.rows - row) /
                             static_cast<double>(options.rows + 1);
    for (double cell : cells) {
      out += cell > threshold ? '#' : (row + 1 == options.rows && cell > 0.0 ? '_' : ' ');
    }
    out += '\n';
  }
  return out;
}

std::string render_ascii_trace(const PagingTrace& trace,
                               const AsciiChartOptions& options) {
  std::string out;
  out += trace.label + "  [page-in pages/s]\n";
  out += render_ascii_series(trace.pages_in, options);
  out += trace.label + "  [page-out pages/s]\n";
  out += render_ascii_series(trace.pages_out, options);
  return out;
}

double burst_concentration(const TimeSeries& series,
                           std::size_t peak_buckets) {
  const auto& buckets = series.buckets();
  if (buckets.empty() || series.total() <= 0.0) return 0.0;
  std::vector<double> sorted(buckets.begin(), buckets.end());
  std::partial_sort(sorted.begin(),
                    sorted.begin() +
                        static_cast<std::ptrdiff_t>(
                            std::min(peak_buckets, sorted.size())),
                    sorted.end(), std::greater<>{});
  double top = 0.0;
  for (std::size_t i = 0; i < std::min(peak_buckets, sorted.size()); ++i) {
    top += sorted[i];
  }
  return top / series.total();
}

}  // namespace apsim
