#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "metrics/experiment.hpp"

/// \file csv.hpp
/// Small CSV writer plus exporters for the experiment outcome types, so
/// benchmark artifacts can be post-processed/plotted outside the repo.
/// Quoting follows RFC 4180 (fields containing comma, quote or newline are
/// double-quoted; embedded quotes doubled).

namespace apsim {

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  /// Write one row; fields are quoted as needed.
  void row(const std::vector<std::string>& fields);

  /// Escape a single field per RFC 4180 (exposed for tests): a field
  /// containing a comma, double quote, LF or CR is wrapped in double quotes
  /// with every embedded quote doubled; anything else passes through
  /// verbatim. Bare CR is quoted too (not just CRLF) — Excel and csv.reader
  /// both treat a lone CR as a record break. Round-trip property: a
  /// standard-conforming reader recovers the original field exactly.
  [[nodiscard]] static std::string escape(const std::string& field);

 private:
  std::ostream& os_;
};

/// One line per job of each outcome: label, policy, makespan, per-job
/// completion and paging counters.
void write_outcomes_csv(std::ostream& os,
                        const std::vector<RunOutcome>& outcomes);

/// One line per (outcome, switch phase): label, policy, span category/name,
/// count and latency summary in seconds. Outcomes without switch_phases
/// (untraced runs) contribute no rows.
void write_switch_phases_csv(std::ostream& os,
                             const std::vector<RunOutcome>& outcomes);

}  // namespace apsim
