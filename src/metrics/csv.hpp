#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "metrics/experiment.hpp"

/// \file csv.hpp
/// Small CSV writer plus exporters for the experiment outcome types, so
/// benchmark artifacts can be post-processed/plotted outside the repo.
/// Quoting follows RFC 4180 (fields containing comma, quote or newline are
/// double-quoted; embedded quotes doubled).

namespace apsim {

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  /// Write one row; fields are quoted as needed.
  void row(const std::vector<std::string>& fields);

  /// Escape a single field (exposed for tests).
  [[nodiscard]] static std::string escape(const std::string& field);

 private:
  std::ostream& os_;
};

/// One line per job of each outcome: label, policy, makespan, per-job
/// completion and paging counters.
void write_outcomes_csv(std::ostream& os,
                        const std::vector<RunOutcome>& outcomes);

}  // namespace apsim
