#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "metrics/trace.hpp"
#include "metrics/tracer.hpp"
#include "sim/time.hpp"

/// \file experiment.hpp
/// The paper's evaluation metrics. Given a gang-scheduled run and the batch
/// baseline of the same jobs:
///   switching overhead = (T_gang - T_batch) / T_gang      (Figures 7b/8be/9b)
///   paging reduction   = 1 - overhead_policy/overhead_orig (Figures 7c/8cf/9c)
/// The overhead is the fraction of wall time spent on job-switch paging; the
/// reduction compares a policy against the original kernel.

namespace apsim {

struct JobOutcome {
  std::string name;
  SimTime completion = -1;          ///< job finish time
  bool failed = false;              ///< aborted (node crash / lost page)
  bool recovered = false;           ///< restarted from a checkpoint at least once
  std::uint64_t major_faults = 0;
  std::uint64_t minor_faults = 0;
  std::uint64_t pages_swapped_in = 0;
  std::uint64_t pages_swapped_out = 0;
  std::uint64_t false_evictions = 0;
  SimDuration cpu_time = 0;
  SimDuration fault_wait = 0;
  SimDuration comm_wait = 0;

  // Open-arrival metrics (zero on fixed-set runs, where every job is
  // present from t = 0 and has no runtime estimate).
  SimTime arrival = 0;
  /// Bounded slowdown: max(1, response / max(estimated runtime, 10 s)).
  /// 0 until the job completes.
  double slowdown = 0.0;
};

struct RunOutcome {
  std::string label;                ///< e.g. "LU.B so/ao/ai/bg"
  std::string policy;               ///< canonical policy string or "batch"
  SimTime makespan = -1;
  std::vector<JobOutcome> jobs;
  std::vector<PagingTrace> traces;  ///< per node (captured on request)

  /// Per-phase latency statistics of the traced switch path (empty unless
  /// ExperimentConfig::trace_json was set). One entry per (category, name)
  /// span pair, in first-seen order.
  std::vector<SwitchPhaseStat> switch_phases;

  /// The run's tracer, holding the raw span/instant events (null unless
  /// ExperimentConfig::trace_json was set). Shared so outcomes stay copyable.
  std::shared_ptr<Tracer> trace;

  // Cluster-wide totals.
  std::uint64_t pages_swapped_in = 0;
  std::uint64_t pages_swapped_out = 0;
  std::uint64_t major_faults = 0;
  std::uint64_t false_evictions = 0;
  std::uint64_t pages_recorded = 0;   ///< adaptive page-in recorder volume
  std::uint64_t pages_replayed = 0;
  std::uint64_t bg_pages_written = 0;
  int switches = 0;

  // Compressed swap tier totals (all zero with the tier disabled).
  std::uint64_t tier_pool_hits = 0;        ///< swap-in pages served by the pool
  std::uint64_t tier_pool_misses = 0;      ///< swap-in pages read from disk
  std::uint64_t tier_pages_stored = 0;     ///< pages the pool admitted
  std::uint64_t tier_bytes_stored = 0;     ///< cumulative compressed bytes admitted
  std::uint64_t tier_writeback_pages = 0;  ///< pool entries drained to disk

  /// Mean compression ratio of admitted pages (compressed/raw, lower is
  /// better); 1.0 when nothing was stored.
  [[nodiscard]] double tier_compression_ratio() const;

  // Failure/robustness statistics (all zero on fault-free runs).
  int jobs_failed = 0;
  int nodes_failed = 0;
  std::uint64_t io_errors = 0;            ///< disk transfers completed in error
  std::uint64_t io_retries = 0;           ///< swap reads retried after errors
  std::uint64_t pages_unrecoverable = 0;  ///< abandoned faults (I/O + out-of-swap)
  std::uint64_t signal_retransmits = 0;   ///< watchdog-resent switch signals

  // Checkpoint/restart statistics (all zero with checkpoint_interval = 0).
  std::uint64_t checkpoints_taken = 0;    ///< committed coordinated images
  std::uint64_t checkpoint_failures = 0;  ///< attempts lost to image-write errors
  std::uint64_t ckpt_io_retries = 0;      ///< image-write re-issues (backoff ladder)
  std::uint64_t bytes_checkpointed = 0;   ///< raw image bytes (pre-compression)
  std::uint64_t pages_staged = 0;         ///< image pages written during restores
  int jobs_recovered = 0;                 ///< successful restarts from a checkpoint
  int restarts_failed = 0;                ///< give-ups (no placement / staging I/O)
  std::uint64_t lost_pages_recovered = 0; ///< lost-page casualties turned restarts
  std::uint64_t lost_pages_fatal = 0;     ///< lost-page casualties that killed jobs
  double lost_work_ms = 0.0;              ///< work destroyed by crashes (model-dependent)
  std::uint64_t disk_blocks_written = 0;  ///< cluster-wide (incl. checkpoint region)
  std::uint64_t disk_blocks_read = 0;

  // Open-arrival statistics (all zero on fixed-set runs). Slowdown moments
  // cover completed jobs only; see finalize_slowdowns().
  double mean_slowdown = 0.0;
  double p99_slowdown = 0.0;
  int jobs_migrated = 0;                 ///< completed inter-node migrations
  std::uint64_t migration_bytes = 0;     ///< network bytes spent migrating

  // Adaptive control plane statistics (all zero with autotune off).
  std::uint64_t autotune_ticks = 0;           ///< control-plane tick events
  std::uint64_t autotune_adjustments = 0;     ///< knob writes that changed a value
  std::uint64_t autotune_policy_switches = 0; ///< reclaim-policy swaps actuated

  [[nodiscard]] double makespan_s() const { return to_seconds(makespan); }
};

/// Fraction of the gang run's wall time attributable to job switching.
/// Clamped to [0, 1); returns 0 when the gang run beat the batch baseline.
[[nodiscard]] double switching_overhead(SimTime gang_makespan,
                                        SimTime batch_makespan);

/// Relative reduction of switching overhead vs the original policy, in
/// [0, 1] (negative if the policy made things worse).
[[nodiscard]] double paging_reduction(double overhead_policy,
                                      double overhead_original);

/// Mean completion time across jobs, seconds.
[[nodiscard]] double mean_completion_s(const RunOutcome& outcome);

/// Bounded slowdown of one completed job: max(1, response / reference)
/// with reference = max(estimate, 10 s) so short jobs do not dominate.
[[nodiscard]] double bounded_slowdown(SimTime arrival, SimTime completion,
                                      SimDuration estimated_runtime);

/// Fill RunOutcome::mean_slowdown / p99_slowdown from the per-job
/// slowdowns (jobs with slowdown == 0, i.e. failed or unfinished, are
/// excluded). p99 is the nearest-rank percentile.
void finalize_slowdowns(RunOutcome& outcome);

}  // namespace apsim
