#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <iterator>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/stats.hpp"
#include "sim/time.hpp"

/// \file tracer.hpp
/// Deterministic span/event tracer for the job-switch path. A `Tracer` is an
/// optional per-run collaborator: components hold a `Tracer*` that defaults to
/// nullptr, so a run without tracing performs no tracer work at all and is
/// bit-identical to a build without the subsystem. The tracer only *records* —
/// it never schedules simulation events, draws RNG, or otherwise feeds back
/// into model decisions, so even a traced run is semantically identical to an
/// untraced one.
///
/// Events are SimTime-stamped via the same clock-thunk idiom as `Logger` and
/// appended in callback execution order, which the simulator makes
/// deterministic. Two exporters read them back:
///
///  * `write_chrome_json` emits Chrome `trace_event` JSON (open the file in
///    chrome://tracing or https://ui.perfetto.dev). Tracks map to
///    pid 0 / tid `track`; see `trace_track()` for the per-node layout.
///  * `phase_stats` folds every completed span into a per-(category, name)
///    latency summary (`RunningStat` + log-scale `Histogram` for p95), the
///    backing data for `RunOutcome::switch_phases`, the phase CSV and
///    `switch_phase_table`.

namespace apsim {

class Tracer;

/// Numeric key/value attached to a span or instant. Values are numbers only
/// so the JSON exporter never has to escape user-controlled argument text.
struct TraceArg {
  const char* key;
  double value;
};

enum class TraceEventKind : std::uint8_t {
  kBegin,       ///< Chrome "B" — synchronous span open (must nest per track)
  kEnd,         ///< Chrome "E"
  kAsyncBegin,  ///< Chrome "b" — async span open (may overlap; paired by id)
  kAsyncEnd,    ///< Chrome "e"
  kInstant,     ///< Chrome "i"
  kCounter,     ///< Chrome "C"
};

/// One recorded event. Category/name/argument keys are interned; resolve them
/// with `Tracer::string()`.
struct TraceEvent {
  SimTime ts = 0;
  std::uint64_t id = 0;  ///< async pair id; 0 for non-async events
  std::uint32_t cat = 0;
  std::uint32_t name = 0;
  std::int32_t track = 0;
  TraceEventKind kind = TraceEventKind::kInstant;
  std::uint8_t num_args = 0;
  std::array<std::pair<std::uint32_t, double>, 4> args{};  ///< interned key, value
};

/// Chunked arena for the recorded event stream. A traced run appends
/// hundreds of thousands of events; a plain std::vector would re-allocate
/// and copy the whole (multi-megabyte) stream at every capacity doubling.
/// The arena allocates fixed-size chunks instead — appends never move
/// existing events, so the append cost is flat and event addresses are
/// stable for the lifetime of the tracer.
class TraceEventBuffer {
 public:
  static constexpr std::size_t kChunkBits = 12;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] const TraceEvent& operator[](std::size_t i) const {
    return (*chunks_[i >> kChunkBits])[i & (kChunkSize - 1)];
  }

  void push_back(const TraceEvent& ev) {
    if (size_ == chunks_.size() * kChunkSize) {
      chunks_.push_back(std::make_unique<Chunk>());
    }
    (*chunks_[size_ >> kChunkBits])[size_ & (kChunkSize - 1)] = ev;
    ++size_;
  }

  /// Random-access const iterator (index-based; chunks give stable storage).
  class const_iterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = TraceEvent;
    using difference_type = std::ptrdiff_t;
    using pointer = const TraceEvent*;
    using reference = const TraceEvent&;

    const_iterator() = default;
    const_iterator(const TraceEventBuffer* buf, std::size_t index)
        : buf_(buf), index_(index) {}

    reference operator*() const { return (*buf_)[index_]; }
    pointer operator->() const { return &(*buf_)[index_]; }
    reference operator[](difference_type n) const {
      return (*buf_)[index_ + static_cast<std::size_t>(n)];
    }
    const_iterator& operator++() { ++index_; return *this; }
    const_iterator operator++(int) { auto t = *this; ++index_; return t; }
    const_iterator& operator--() { --index_; return *this; }
    const_iterator operator--(int) { auto t = *this; --index_; return t; }
    const_iterator& operator+=(difference_type n) {
      index_ += static_cast<std::size_t>(n);
      return *this;
    }
    const_iterator& operator-=(difference_type n) {
      index_ -= static_cast<std::size_t>(n);
      return *this;
    }
    friend const_iterator operator+(const_iterator it, difference_type n) {
      return it += n;
    }
    friend const_iterator operator+(difference_type n, const_iterator it) {
      return it += n;
    }
    friend const_iterator operator-(const_iterator it, difference_type n) {
      return it -= n;
    }
    friend difference_type operator-(const const_iterator& a,
                                     const const_iterator& b) {
      return static_cast<difference_type>(a.index_) -
             static_cast<difference_type>(b.index_);
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.index_ == b.index_;
    }
    friend auto operator<=>(const const_iterator& a, const const_iterator& b) {
      return a.index_ <=> b.index_;
    }

   private:
    const TraceEventBuffer* buf_ = nullptr;
    std::size_t index_ = 0;
  };

  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, size_}; }

 private:
  using Chunk = std::array<TraceEvent, kChunkSize>;
  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::size_t size_ = 0;
};

/// Per-(category, name) latency summary over completed spans, in seconds.
/// `p95_s` is interpolated from a log10-scale histogram spanning 100 ns–100 s,
/// so microsecond decompress spans and multi-second page-out spans are both
/// resolved.
struct SwitchPhaseStat {
  std::string category;
  std::string name;
  std::uint64_t count = 0;
  double total_s = 0.0;
  double mean_s = 0.0;
  double min_s = 0.0;
  double max_s = 0.0;
  double p95_s = 0.0;
};

/// RAII handle for an open span. Move-only; `end()` is idempotent and the
/// destructor ends the span if still open. A default-constructed (or moved-
/// from) TraceSpan is inert, so call sites may hold one unconditionally.
class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  TraceSpan(TraceSpan&& other) noexcept { move_from(other); }
  TraceSpan& operator=(TraceSpan&& other) noexcept {
    if (this != &other) {
      end();
      move_from(other);
    }
    return *this;
  }
  ~TraceSpan() { end(); }

  /// Close the span at the tracer's current time. Safe to call repeatedly.
  void end();

  [[nodiscard]] bool active() const { return tracer_ != nullptr; }

 private:
  friend class Tracer;
  TraceSpan(Tracer* tracer, std::int32_t track, std::uint32_t cat,
            std::uint32_t name, SimTime begin, std::uint64_t async_id,
            bool recorded)
      : tracer_(tracer), begin_(begin), async_id_(async_id), track_(track),
        cat_(cat), name_(name), recorded_(recorded) {}

  void move_from(TraceSpan& other) {
    tracer_ = other.tracer_;
    begin_ = other.begin_;
    async_id_ = other.async_id_;
    track_ = other.track_;
    cat_ = other.cat_;
    name_ = other.name_;
    recorded_ = other.recorded_;
    other.tracer_ = nullptr;
  }

  Tracer* tracer_ = nullptr;
  SimTime begin_ = 0;
  std::uint64_t async_id_ = 0;  ///< 0 => synchronous B/E pair
  std::int32_t track_ = 0;
  std::uint32_t cat_ = 0;
  std::uint32_t name_ = 0;
  bool recorded_ = false;  ///< begin event made it into the buffer
};

class Tracer {
 public:
  using Clock = SimTime (*)(const void*);

  static constexpr std::size_t kDefaultMaxEvents = 1u << 20;

  /// \p clock_ctx / \p clock supply the current sim time (same contract as
  /// `Logger`). \p max_events bounds the event buffer: once full, new spans
  /// and instants are counted in `dropped()` instead of stored (ends of
  /// already-stored spans are always kept, so exported JSON stays balanced).
  /// Phase statistics keep accumulating past the cap.
  Tracer(const void* clock_ctx, Clock clock,
         std::size_t max_events = kDefaultMaxEvents)
      : clock_ctx_(clock_ctx), clock_(clock), max_events_(max_events) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  [[nodiscard]] SimTime now() const { return clock_ ? clock_(clock_ctx_) : 0; }

  /// Open a synchronous span ("B"). Sync spans on the same track must close
  /// in LIFO order (Chrome's nesting rule); use async_span() for anything
  /// that can overlap another span on its track.
  [[nodiscard]] TraceSpan span(int track, std::string_view category,
                               std::string_view name,
                               std::initializer_list<TraceArg> args = {});

  /// Open an async span ("b"/"e" with a fresh id); may overlap freely.
  [[nodiscard]] TraceSpan async_span(int track, std::string_view category,
                                     std::string_view name,
                                     std::initializer_list<TraceArg> args = {});

  /// Point event ("i").
  void instant(int track, std::string_view category, std::string_view name,
               std::initializer_list<TraceArg> args = {});

  /// Counter sample ("C"); plotted as a stepped series named \p name.
  void counter(int track, std::string_view category, std::string_view name,
               double value);

  /// Label a track in the exported JSON ("thread_name" metadata).
  void set_track_name(int track, std::string name);

  [[nodiscard]] const TraceEventBuffer& events() const { return events_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Resolve an interned category/name/argument-key id.
  [[nodiscard]] std::string_view string(std::uint32_t id) const {
    return strings_[id];
  }

  /// Latency summary per (category, name), in first-seen order (deterministic
  /// because interning order is).
  [[nodiscard]] std::vector<SwitchPhaseStat> phase_stats() const;

  /// Emit the whole buffer as Chrome trace_event JSON.
  void write_chrome_json(std::ostream& os) const;

 private:
  friend class TraceSpan;

  struct PhaseAccumulator {
    std::uint32_t cat = 0;
    std::uint32_t name = 0;
    RunningStat stat;
    Histogram log_hist{-7.0, 2.0, 90};  // log10(seconds), 0.1-decade buckets
  };

  [[nodiscard]] std::uint32_t intern(std::string_view s);
  /// Append an event if capacity allows (or \p force); returns stored?.
  bool record(TraceEventKind kind, SimTime ts, int track, std::uint32_t cat,
              std::uint32_t name, std::uint64_t id,
              std::initializer_list<TraceArg> args, bool force);
  void end_span(const TraceSpan& span);
  PhaseAccumulator& phase(std::uint32_t cat, std::uint32_t name);

  const void* clock_ctx_;
  Clock clock_;
  std::size_t max_events_;
  TraceEventBuffer events_;
  std::uint64_t dropped_ = 0;
  std::uint64_t next_async_id_ = 1;
  std::vector<std::string> strings_;
  std::map<std::string, std::uint32_t, std::less<>> intern_index_;
  std::vector<PhaseAccumulator> phases_;
  std::map<std::uint64_t, std::size_t> phase_index_;  // (cat<<32|name) -> idx
  std::map<int, std::string> track_names_;
};

/// Per-node track layout: each subsystem gets its own tid so that its
/// synchronous spans nest correctly regardless of what the others are doing.
/// The scheduler and pager share a track — their sync spans all live inside
/// one switch-action callback and nest by construction.
inline constexpr int kTrackSched = 0;
inline constexpr int kTrackVmm = 1;
inline constexpr int kTrackTier = 2;
inline constexpr int kTrackDisk = 3;
inline constexpr int kTracksPerNode = 4;

[[nodiscard]] constexpr int trace_track(int node, int subsystem) {
  return node * kTracksPerNode + subsystem;
}

/// Escape a string for embedding in a JSON string literal (quotes, control
/// characters, backslashes). Exposed for tests and other exporters.
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace apsim
