#include "metrics/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace apsim {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::seconds(double s, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*fs", precision, s);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << (c == 0 ? "" : "  ");
      os << cell;
      for (std::size_t pad = cell.size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

Table tier_summary_table(const std::vector<RunOutcome>& outcomes) {
  Table table({"run", "pool hits", "pool misses", "hit rate", "comp ratio",
               "pages stored", "writeback"});
  for (const auto& outcome : outcomes) {
    const std::uint64_t swapins =
        outcome.tier_pool_hits + outcome.tier_pool_misses;
    const bool tiered = swapins > 0 || outcome.tier_pages_stored > 0;
    if (!tiered) {
      table.add_row({outcome.label, "-", "-", "-", "-", "-", "-"});
      continue;
    }
    const double hit_rate =
        swapins > 0 ? static_cast<double>(outcome.tier_pool_hits) /
                          static_cast<double>(swapins)
                    : 0.0;
    table.add_row({outcome.label, std::to_string(outcome.tier_pool_hits),
                   std::to_string(outcome.tier_pool_misses),
                   Table::pct(hit_rate, 1),
                   Table::fmt(outcome.tier_compression_ratio(), 2),
                   std::to_string(outcome.tier_pages_stored),
                   std::to_string(outcome.tier_writeback_pages)});
  }
  return table;
}

Table switch_phase_table(const RunOutcome& outcome) {
  Table table({"phase", "count", "total", "mean ms", "min ms", "max ms",
               "p95 ms"});
  for (const auto& phase : outcome.switch_phases) {
    table.add_row({phase.category + "/" + phase.name,
                   std::to_string(phase.count),
                   Table::seconds(phase.total_s, 3),
                   Table::fmt(phase.mean_s * 1e3, 3),
                   Table::fmt(phase.min_s * 1e3, 3),
                   Table::fmt(phase.max_s * 1e3, 3),
                   Table::fmt(phase.p95_s * 1e3, 3)});
  }
  return table;
}

}  // namespace apsim
