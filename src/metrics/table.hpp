#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "metrics/experiment.hpp"

/// \file table.hpp
/// Column-aligned text tables for the benchmark harness output (one table
/// per figure panel, mirroring the paper's graphs as rows).

namespace apsim {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Add a row; missing trailing cells render empty.
  Table& add_row(std::vector<std::string> cells);

  /// Format helpers.
  [[nodiscard]] static std::string fmt(double value, int precision = 1);
  [[nodiscard]] static std::string pct(double fraction, int precision = 0);
  [[nodiscard]] static std::string seconds(double s, int precision = 0);

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Compressed-tier counters of each outcome as one table row: pool hit
/// rate, mean compression ratio, pages admitted/written back. Outcomes that
/// never touched the tier render as "-" so disk-only baselines stay legible
/// next to tiered runs.
[[nodiscard]] Table tier_summary_table(const std::vector<RunOutcome>& outcomes);

/// Switch-phase latency summary of one traced run (RunOutcome::switch_phases):
/// one row per span (category, name) with count, total seconds and
/// mean/min/max/p95 in milliseconds. Empty table for untraced runs.
[[nodiscard]] Table switch_phase_table(const RunOutcome& outcome);

}  // namespace apsim
