#include "metrics/csv.hpp"

namespace apsim {

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) os_ << ',';
    os_ << escape(fields[i]);
  }
  os_ << '\n';
}

void write_outcomes_csv(std::ostream& os,
                        const std::vector<RunOutcome>& outcomes) {
  CsvWriter csv(os);
  csv.row({"label", "policy", "makespan_s", "job", "completion_s",
           "major_faults", "minor_faults", "pages_in", "pages_out",
           "false_evictions", "cpu_s", "fault_wait_s", "comm_wait_s",
           "tier_pool_hits", "tier_pool_misses", "tier_comp_ratio",
           "tier_writeback_pages", "failed", "recovered", "checkpoints",
           "ckpt_bytes", "jobs_recovered", "lost_work_ms", "autotune_ticks",
           "autotune_adjustments", "autotune_policy_switches", "arrival_s",
           "slowdown", "mean_slowdown", "p99_slowdown", "jobs_migrated",
           "migration_bytes"});
  for (const auto& outcome : outcomes) {
    for (const auto& job : outcome.jobs) {
      csv.row({outcome.label, outcome.policy,
               std::to_string(to_seconds(outcome.makespan)), job.name,
               std::to_string(to_seconds(job.completion)),
               std::to_string(job.major_faults),
               std::to_string(job.minor_faults),
               std::to_string(job.pages_swapped_in),
               std::to_string(job.pages_swapped_out),
               std::to_string(job.false_evictions),
               std::to_string(to_seconds(job.cpu_time)),
               std::to_string(to_seconds(job.fault_wait)),
               std::to_string(to_seconds(job.comm_wait)),
               // Tier counters are cluster-wide, repeated on each job row
               // (like label/makespan) so the file stays one flat table.
               std::to_string(outcome.tier_pool_hits),
               std::to_string(outcome.tier_pool_misses),
               std::to_string(outcome.tier_compression_ratio()),
               std::to_string(outcome.tier_writeback_pages),
               // Recovery: failed/recovered are per job, the rest repeat
               // cluster-wide totals (all zero with checkpointing off).
               std::to_string(static_cast<int>(job.failed)),
               std::to_string(static_cast<int>(job.recovered)),
               std::to_string(outcome.checkpoints_taken),
               std::to_string(outcome.bytes_checkpointed),
               std::to_string(outcome.jobs_recovered),
               std::to_string(outcome.lost_work_ms),
               // Control plane: cluster-wide totals, zero with autotune off.
               std::to_string(outcome.autotune_ticks),
               std::to_string(outcome.autotune_adjustments),
               std::to_string(outcome.autotune_policy_switches),
               // Open-arrival columns: arrival/slowdown are per job, the
               // rest repeat run-level totals (all zero on fixed-set runs).
               std::to_string(to_seconds(job.arrival)),
               std::to_string(job.slowdown),
               std::to_string(outcome.mean_slowdown),
               std::to_string(outcome.p99_slowdown),
               std::to_string(outcome.jobs_migrated),
               std::to_string(outcome.migration_bytes)});
    }
  }
}

void write_switch_phases_csv(std::ostream& os,
                             const std::vector<RunOutcome>& outcomes) {
  CsvWriter csv(os);
  csv.row({"label", "policy", "category", "phase", "count", "total_s",
           "mean_s", "min_s", "max_s", "p95_s"});
  for (const auto& outcome : outcomes) {
    for (const auto& phase : outcome.switch_phases) {
      csv.row({outcome.label, outcome.policy, phase.category, phase.name,
               std::to_string(phase.count), std::to_string(phase.total_s),
               std::to_string(phase.mean_s), std::to_string(phase.min_s),
               std::to_string(phase.max_s), std::to_string(phase.p95_s)});
    }
  }
}

}  // namespace apsim
