#include "metrics/experiment.hpp"

#include <algorithm>
#include <cassert>

#include "mem/page.hpp"

namespace apsim {

double switching_overhead(SimTime gang_makespan, SimTime batch_makespan) {
  assert(gang_makespan > 0 && batch_makespan > 0);
  if (gang_makespan <= batch_makespan) return 0.0;
  const double overhead =
      static_cast<double>(gang_makespan - batch_makespan) /
      static_cast<double>(gang_makespan);
  return std::clamp(overhead, 0.0, 1.0);
}

double paging_reduction(double overhead_policy, double overhead_original) {
  if (overhead_original <= 0.0) return 0.0;
  return 1.0 - overhead_policy / overhead_original;
}

double RunOutcome::tier_compression_ratio() const {
  if (tier_pages_stored == 0) return 1.0;
  return static_cast<double>(tier_bytes_stored) /
         (static_cast<double>(tier_pages_stored) *
          static_cast<double>(kPageBytes));
}

double mean_completion_s(const RunOutcome& outcome) {
  if (outcome.jobs.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& job : outcome.jobs) {
    sum += to_seconds(job.completion);
  }
  return sum / static_cast<double>(outcome.jobs.size());
}

}  // namespace apsim
