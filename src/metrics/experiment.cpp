#include "metrics/experiment.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "mem/page.hpp"

namespace apsim {

double switching_overhead(SimTime gang_makespan, SimTime batch_makespan) {
  assert(gang_makespan > 0 && batch_makespan > 0);
  if (gang_makespan <= batch_makespan) return 0.0;
  const double overhead =
      static_cast<double>(gang_makespan - batch_makespan) /
      static_cast<double>(gang_makespan);
  return std::clamp(overhead, 0.0, 1.0);
}

double paging_reduction(double overhead_policy, double overhead_original) {
  if (overhead_original <= 0.0) return 0.0;
  return 1.0 - overhead_policy / overhead_original;
}

double RunOutcome::tier_compression_ratio() const {
  if (tier_pages_stored == 0) return 1.0;
  return static_cast<double>(tier_bytes_stored) /
         (static_cast<double>(tier_pages_stored) *
          static_cast<double>(kPageBytes));
}

double bounded_slowdown(SimTime arrival, SimTime completion,
                        SimDuration estimated_runtime) {
  assert(completion >= arrival);
  const double reference = static_cast<double>(
      std::max<SimDuration>(estimated_runtime, 10 * kSecond));
  const double response = static_cast<double>(completion - arrival);
  return std::max(1.0, response / reference);
}

void finalize_slowdowns(RunOutcome& outcome) {
  std::vector<double> slowdowns;
  slowdowns.reserve(outcome.jobs.size());
  for (const auto& job : outcome.jobs) {
    if (job.slowdown > 0.0) slowdowns.push_back(job.slowdown);
  }
  if (slowdowns.empty()) {
    outcome.mean_slowdown = 0.0;
    outcome.p99_slowdown = 0.0;
    return;
  }
  std::sort(slowdowns.begin(), slowdowns.end());
  double sum = 0.0;
  for (double s : slowdowns) sum += s;
  outcome.mean_slowdown = sum / static_cast<double>(slowdowns.size());
  // Nearest-rank p99: ceil(0.99 n) in 1-based rank terms.
  const auto n = slowdowns.size();
  const auto rank = static_cast<std::size_t>(
      std::ceil(0.99 * static_cast<double>(n)));
  outcome.p99_slowdown = slowdowns[std::min(n, std::max<std::size_t>(rank, 1)) - 1];
}

double mean_completion_s(const RunOutcome& outcome) {
  if (outcome.jobs.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& job : outcome.jobs) {
    sum += to_seconds(job.completion);
  }
  return sum / static_cast<double>(outcome.jobs.size());
}

}  // namespace apsim
