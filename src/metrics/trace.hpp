#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/stats.hpp"

/// \file trace.hpp
/// Paging-activity traces (the data behind the paper's Figure 6): per-node
/// page-in and page-out rates over time, with CSV export and an ASCII
/// renderer good enough to eyeball burst compaction in a terminal.

namespace apsim {

/// A captured pair of in/out series for one node.
struct PagingTrace {
  std::string label;
  TimeSeries pages_in{kSecond};
  TimeSeries pages_out{kSecond};
};

/// Write `time_s,pages_in,pages_out` rows.
void write_trace_csv(std::ostream& os, const PagingTrace& trace);

struct AsciiChartOptions {
  std::size_t columns = 100;   ///< chart width; buckets are re-binned to fit
  std::size_t rows = 8;        ///< vertical resolution per series
  SimTime t_begin = 0;
  SimTime t_end = -1;          ///< -1: end of data
};

/// Render one series as a bar chart (one char column per re-binned cell).
///
/// Contract: the x axis covers exactly [t_begin, t_end) — including any
/// leading part before the series origin, which renders empty. Each source
/// bucket's volume is attributed to the chart cells it overlaps in
/// proportion to the overlap, so buckets straddling the window edges
/// contribute only their in-window share and windows with t_begin > 0 chart
/// the same shape as the full view. Returns "" when the window is empty or
/// columns/rows is 0; an all-zero window renders one line of '.'.
[[nodiscard]] std::string render_ascii_series(const TimeSeries& series,
                                              const AsciiChartOptions& options);

/// Render a trace: page-in chart over page-out chart with a shared x axis.
[[nodiscard]] std::string render_ascii_trace(const PagingTrace& trace,
                                             const AsciiChartOptions& options);

/// Burst-compaction summary over a window: what fraction of total paging
/// volume lands within the busiest `peak_buckets` buckets. The paper's
/// adaptive mechanisms raise this sharply (compaction of Figure 1).
///
/// Edge cases (audited, relied on by callers): an empty series or one with
/// non-positive total returns 0.0; peak_buckets == 0 returns 0.0 (no
/// buckets can hold any volume); peak_buckets >= buckets().size() clamps to
/// the whole series and returns 1.0 whenever the total is positive. The
/// result is always in [0, 1] for series built from non-negative samples.
[[nodiscard]] double burst_concentration(const TimeSeries& series,
                                         std::size_t peak_buckets);

}  // namespace apsim
