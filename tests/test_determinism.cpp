// Thread-count independence of sweeps: parallel_map runs one Simulator per
// worker, shared-nothing, so mapping the same mixed gang/batch config list at
// 1, 2 and 8 threads must produce byte-identical RunOutcome vectors. Any
// divergence means a run read state outside its own Simulator (a global, a
// shared RNG, allocator-address-dependent ordering) — exactly the class of
// bug the slab event pool and callback changes could introduce.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/config.hpp"
#include "harness/runner.hpp"

namespace apsim {
namespace {

/// The mixed sweep: every policy over a small overcommitted scenario, gang
/// and batch interleaved, two apps, a tiered and a faulted variant.
std::vector<ExperimentConfig> sweep_configs() {
  std::vector<ExperimentConfig> configs;
  for (const char* policy : {"orig", "so", "so/ao", "so/ao/ai/bg"}) {
    ExperimentConfig config;
    config.app = NpbApp::kIS;
    config.cls = NpbClass::kW;
    config.nodes = 1;
    config.instances = 2;
    config.node_memory_mb = 64.0;
    config.usable_memory_mb = 22.0;
    config.quantum = 4 * kSecond;
    config.iterations_scale = 0.1;
    config.policy = PolicySet::parse(policy);
    configs.push_back(config);

    ExperimentConfig batch = config;
    batch.batch_mode = true;
    configs.push_back(batch);
  }
  {
    ExperimentConfig tiered = configs[0];
    tiered.app = NpbApp::kCG;
    tiered.policy = PolicySet::all();
    tiered.tier_mb = 4.0;
    configs.push_back(tiered);
  }
  {
    ExperimentConfig faulted = configs[0];
    faulted.policy = PolicySet::all();
    faulted.faults.add(FaultSpec::parse("disk_transient start_s=1 end_s=30 p=0.02"));
    configs.push_back(faulted);
  }
  return configs;
}

/// Everything in a RunOutcome that a run computes (the tracer pointer is
/// compared structurally as "both null" since these configs don't trace).
void expect_outcomes_equal(const RunOutcome& a, const RunOutcome& b,
                           const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    const JobOutcome& ja = a.jobs[j];
    const JobOutcome& jb = b.jobs[j];
    EXPECT_EQ(ja.name, jb.name);
    EXPECT_EQ(ja.completion, jb.completion);
    EXPECT_EQ(ja.failed, jb.failed);
    EXPECT_EQ(ja.major_faults, jb.major_faults);
    EXPECT_EQ(ja.minor_faults, jb.minor_faults);
    EXPECT_EQ(ja.pages_swapped_in, jb.pages_swapped_in);
    EXPECT_EQ(ja.pages_swapped_out, jb.pages_swapped_out);
    EXPECT_EQ(ja.false_evictions, jb.false_evictions);
    EXPECT_EQ(ja.cpu_time, jb.cpu_time);
    EXPECT_EQ(ja.fault_wait, jb.fault_wait);
    EXPECT_EQ(ja.comm_wait, jb.comm_wait);
  }
  EXPECT_EQ(a.pages_swapped_in, b.pages_swapped_in);
  EXPECT_EQ(a.pages_swapped_out, b.pages_swapped_out);
  EXPECT_EQ(a.major_faults, b.major_faults);
  EXPECT_EQ(a.false_evictions, b.false_evictions);
  EXPECT_EQ(a.pages_recorded, b.pages_recorded);
  EXPECT_EQ(a.pages_replayed, b.pages_replayed);
  EXPECT_EQ(a.bg_pages_written, b.bg_pages_written);
  EXPECT_EQ(a.switches, b.switches);
  EXPECT_EQ(a.tier_pool_hits, b.tier_pool_hits);
  EXPECT_EQ(a.tier_pool_misses, b.tier_pool_misses);
  EXPECT_EQ(a.tier_pages_stored, b.tier_pages_stored);
  EXPECT_EQ(a.tier_bytes_stored, b.tier_bytes_stored);
  EXPECT_EQ(a.tier_writeback_pages, b.tier_writeback_pages);
  EXPECT_EQ(a.jobs_failed, b.jobs_failed);
  EXPECT_EQ(a.nodes_failed, b.nodes_failed);
  EXPECT_EQ(a.io_errors, b.io_errors);
  EXPECT_EQ(a.io_retries, b.io_retries);
  EXPECT_EQ(a.pages_unrecoverable, b.pages_unrecoverable);
  EXPECT_EQ(a.signal_retransmits, b.signal_retransmits);
  EXPECT_EQ(a.trace == nullptr, b.trace == nullptr);
}

TEST(Determinism, ParallelMapIsThreadCountIndependent) {
  const std::vector<ExperimentConfig> configs = sweep_configs();
  const std::function<RunOutcome(const ExperimentConfig&)> fn = run_config;

  const std::vector<RunOutcome> serial = parallel_map<RunOutcome>(configs, fn, 1);
  ASSERT_EQ(serial.size(), configs.size());

  for (unsigned threads : {2u, 8u}) {
    const std::vector<RunOutcome> parallel =
        parallel_map<RunOutcome>(configs, fn, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      expect_outcomes_equal(
          serial[i], parallel[i],
          "config " + std::to_string(i) + " (" + configs[i].describe() +
              ") at " + std::to_string(threads) + " threads");
    }
  }
}

TEST(Determinism, RepeatedSerialRunsAreIdentical) {
  // Baseline for the test above: the map itself is deterministic run to run.
  const std::vector<ExperimentConfig> configs = sweep_configs();
  const std::function<RunOutcome(const ExperimentConfig&)> fn = run_config;
  const std::vector<RunOutcome> first = parallel_map<RunOutcome>(configs, fn, 1);
  const std::vector<RunOutcome> second = parallel_map<RunOutcome>(configs, fn, 1);
  for (std::size_t i = 0; i < first.size(); ++i) {
    expect_outcomes_equal(first[i], second[i], "config " + std::to_string(i));
  }
}

}  // namespace
}  // namespace apsim
