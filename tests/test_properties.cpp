// Property-based tests: system-level invariants that must hold after any
// gang-scheduled run, swept over policy combinations and seeds with
// parameterized gtest. These catch accounting leaks (frames, swap slots,
// dirty counters) and ordering violations that unit tests can miss.

#include <gtest/gtest.h>

#include <tuple>

#include "cluster/cluster.hpp"
#include "gang/gang_scheduler.hpp"
#include "net/mpi.hpp"
#include "workloads/npb.hpp"

namespace apsim {
namespace {

struct RunArtifacts {
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<GangScheduler> scheduler;
  std::vector<std::unique_ptr<Process>> procs;
  bool finished = false;
};

/// Gang-schedule two small LU-class-W jobs on one memory-stressed node.
RunArtifacts run_stressed(const PolicySet& policy, std::uint64_t seed) {
  RunArtifacts artifacts;
  NodeParams node;
  node.vmm.total_frames = mb_to_pages(24.0);
  node.vmm.freepages_min = 32;
  node.vmm.freepages_low = 64;
  node.vmm.freepages_high = 96;
  node.disk.num_blocks = mb_to_pages(128.0);
  artifacts.cluster = std::make_unique<Cluster>(1, node, NetParams{}, seed);

  GangParams params;
  params.quantum = 5 * kSecond;
  params.pager.policy = policy;
  artifacts.scheduler =
      std::make_unique<GangScheduler>(*artifacts.cluster, params);

  const WorkloadSpec spec = npb_spec(NpbApp::kLU, NpbClass::kW);  // ~15 MB
  for (int j = 0; j < 2; ++j) {
    Job& job = artifacts.scheduler->create_job("job" + std::to_string(j));
    NpbBuildOptions options;
    options.seed = seed + static_cast<std::uint64_t>(j);
    options.iterations_scale = 0.15;
    const Pid pid = artifacts.cluster->node(0).vmm().create_process(
        spec.footprint_pages(1));
    artifacts.procs.push_back(std::make_unique<Process>(
        "j" + std::to_string(j), pid, build_npb_program(spec, options)));
    artifacts.cluster->node(0).cpu().attach(*artifacts.procs.back());
    job.add_process(0, *artifacts.procs.back());
  }
  artifacts.scheduler->start();
  artifacts.finished = artifacts.cluster->sim().run_until(
      [&] { return artifacts.scheduler->all_finished(); }, 4 * 3600 * kSecond);
  return artifacts;
}

using PolicySeed = std::tuple<const char*, std::uint64_t>;

class InvariantTest : public ::testing::TestWithParam<PolicySeed> {};

TEST_P(InvariantTest, RunFinishesAndConservesResources) {
  const auto [policy_str, seed] = GetParam();
  auto artifacts = run_stressed(PolicySet::parse(policy_str), seed);
  ASSERT_TRUE(artifacts.finished) << "run hit the horizon";

  auto& vmm = artifacts.cluster->node(0).vmm();
  auto& swap = artifacts.cluster->node(0).swap();

  // All processes exited and were released: every frame is back in the free
  // pool and every swap slot returned.
  EXPECT_EQ(vmm.free_frames(), vmm.frames().usable_frames());
  EXPECT_EQ(swap.used_slots(), 0);

  // Per-space terminal state: nothing resident, nothing mid-I/O.
  for (Pid pid : vmm.pids()) {
    const auto& as = vmm.space(pid);
    EXPECT_FALSE(as.alive());
    EXPECT_EQ(as.resident_pages(), 0);
    EXPECT_EQ(as.dirty_pages(), 0);
    for (VPage v = 0; v < as.page_table().num_pages(); ++v) {
      const auto pte = as.page_table().at(v);
      EXPECT_FALSE(pte.present());
      EXPECT_FALSE(pte.io_busy());
      EXPECT_EQ(pte.frame(), kNoFrame);
      EXPECT_EQ(pte.slot(), kNoSwapSlot);
    }
  }

  // The disk never serviced more blocks than were submitted, and the queue
  // drained.
  EXPECT_EQ(artifacts.cluster->node(0).disk().queue_depth(), 0u);
  EXPECT_FALSE(artifacts.cluster->node(0).disk().busy());

  // Reclaim never had to release a strict waiter unsatisfied.
  EXPECT_EQ(vmm.stats().oom_waiter_releases, 0u);
}

TEST_P(InvariantTest, DeterministicReplay) {
  const auto [policy_str, seed] = GetParam();
  auto a = run_stressed(PolicySet::parse(policy_str), seed);
  auto b = run_stressed(PolicySet::parse(policy_str), seed);
  ASSERT_TRUE(a.finished);
  ASSERT_TRUE(b.finished);
  EXPECT_EQ(a.scheduler->makespan(), b.scheduler->makespan());
  EXPECT_EQ(a.scheduler->switches(), b.scheduler->switches());
  for (std::size_t i = 0; i < a.procs.size(); ++i) {
    EXPECT_EQ(a.procs[i]->stats().cpu_time, b.procs[i]->stats().cpu_time);
    EXPECT_EQ(a.procs[i]->stats().fault_wait, b.procs[i]->stats().fault_wait);
    EXPECT_EQ(a.procs[i]->stats().finished_at, b.procs[i]->stats().finished_at);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, InvariantTest,
    ::testing::Combine(::testing::Values("orig", "so", "ai", "so/ao",
                                         "so/ao/bg", "so/ao/ai/bg"),
                       ::testing::Values(1u, 7u)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '/') c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

/// Parallel variant: two 2-rank LU jobs with MPI collectives on a 2-node
/// memory-stressed cluster.
struct ParallelArtifacts {
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<GangScheduler> scheduler;
  std::vector<std::unique_ptr<Process>> procs;
  std::vector<std::unique_ptr<MpiComm>> comms;
  bool finished = false;
};

ParallelArtifacts run_parallel_stressed(const PolicySet& policy,
                                        std::uint64_t seed) {
  ParallelArtifacts artifacts;
  constexpr int kNodes = 2;
  NodeParams node;
  node.vmm.total_frames = mb_to_pages(13.0);
  node.vmm.freepages_min = 32;
  node.vmm.freepages_low = 64;
  node.vmm.freepages_high = 96;
  node.disk.num_blocks = mb_to_pages(128.0);
  artifacts.cluster =
      std::make_unique<Cluster>(kNodes, node, NetParams{}, seed);

  GangParams params;
  params.quantum = 5 * kSecond;
  params.pager.policy = policy;
  artifacts.scheduler =
      std::make_unique<GangScheduler>(*artifacts.cluster, params);

  const WorkloadSpec spec = npb_spec(NpbApp::kLU, NpbClass::kW);
  for (int j = 0; j < 2; ++j) {
    Job& job = artifacts.scheduler->create_job("pjob" + std::to_string(j));
    auto comm = std::make_unique<MpiComm>(artifacts.cluster->sim(),
                                          artifacts.cluster->network(), kNodes);
    for (int n = 0; n < kNodes; ++n) {
      NpbBuildOptions options;
      options.nprocs = kNodes;
      options.seed = seed + static_cast<std::uint64_t>(j);
      options.iterations_scale = 0.3;
      const Pid pid = artifacts.cluster->node(n).vmm().create_process(
          spec.footprint_pages(kNodes));
      artifacts.procs.push_back(std::make_unique<Process>(
          "p" + std::to_string(j) + ":" + std::to_string(n), pid,
          build_npb_program(spec, options)));
      artifacts.cluster->node(n).cpu().attach(*artifacts.procs.back());
      comm->bind(n, *artifacts.procs.back(), n);
      job.add_process(n, *artifacts.procs.back());
    }
    artifacts.comms.push_back(std::move(comm));
  }
  auto* comms = &artifacts.comms;
  for (int n = 0; n < kNodes; ++n) {
    artifacts.cluster->node(n).cpu().set_comm_handler(
        [comms](Process& p, const CommOp& op, std::function<void()> resume) {
          (*comms)[static_cast<std::size_t>(p.job_id)]->enter(
              p, op, std::move(resume));
        });
  }
  artifacts.scheduler->start();
  artifacts.finished = artifacts.cluster->sim().run_until(
      [&] { return artifacts.scheduler->all_finished(); },
      4 * 3600 * kSecond);
  return artifacts;
}

class ParallelInvariantTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ParallelInvariantTest, ParallelRunConservesResourcesOnEveryNode) {
  auto artifacts = run_parallel_stressed(PolicySet::parse(GetParam()), 5);
  ASSERT_TRUE(artifacts.finished) << "run hit the horizon";
  for (int n = 0; n < artifacts.cluster->size(); ++n) {
    auto& vmm = artifacts.cluster->node(n).vmm();
    EXPECT_EQ(vmm.free_frames(), vmm.frames().usable_frames()) << "node " << n;
    EXPECT_EQ(artifacts.cluster->node(n).swap().used_slots(), 0) << "node " << n;
    EXPECT_EQ(vmm.stats().oom_waiter_releases, 0u) << "node " << n;
  }
  // Ranks of each job finish together (the final collective synchronizes
  // them up to the trailing compute of the last iteration).
  for (std::size_t j = 0; j < 2; ++j) {
    const auto& job = *artifacts.scheduler->jobs()[j];
    SimTime lo = job.finished_at();
    SimTime hi = 0;
    for (const auto& placement : job.processes()) {
      lo = std::min(lo, placement.process->stats().finished_at);
      hi = std::max(hi, placement.process->stats().finished_at);
    }
    EXPECT_LT(hi - lo, 2 * kSecond);
  }
}

TEST_P(ParallelInvariantTest, ParallelDeterministicReplay) {
  auto a = run_parallel_stressed(PolicySet::parse(GetParam()), 9);
  auto b = run_parallel_stressed(PolicySet::parse(GetParam()), 9);
  ASSERT_TRUE(a.finished);
  ASSERT_TRUE(b.finished);
  EXPECT_EQ(a.scheduler->makespan(), b.scheduler->makespan());
  for (std::size_t i = 0; i < a.procs.size(); ++i) {
    EXPECT_EQ(a.procs[i]->stats().comm_wait, b.procs[i]->stats().comm_wait);
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, ParallelInvariantTest,
                         ::testing::Values("orig", "so/ao", "so/ao/ai/bg"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '/') c = '_';
                           }
                           return name;
                         });

class DominanceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DominanceTest, AdaptivePolicyNeverMuchWorseThanOriginal) {
  // Under genuine memory stress every adaptive combination should beat — or
  // at the very least not meaningfully lose to — the original policy.
  auto orig = run_stressed(PolicySet::original(), 3);
  auto adaptive = run_stressed(PolicySet::parse(GetParam()), 3);
  ASSERT_TRUE(orig.finished);
  ASSERT_TRUE(adaptive.finished);
  EXPECT_LT(static_cast<double>(adaptive.scheduler->makespan()),
            1.05 * static_cast<double>(orig.scheduler->makespan()))
      << "policy " << GetParam() << " regressed vs orig";
}

INSTANTIATE_TEST_SUITE_P(Combos, DominanceTest,
                         ::testing::Values("so", "so/ao", "so/ao/bg",
                                           "so/ao/ai/bg"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '/') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace apsim
