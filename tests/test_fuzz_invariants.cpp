// Fuzz property test over the whole simulator: a seeded generator draws
// random scenarios (job mix, policy set, quantum, tier and fault knobs) and
// every run must uphold the substrate invariants regardless of what was
// drawn — simulated time never runs backwards, every frame and swap slot is
// returned, the compressed pool drains with them, and the tracer's span
// stream stays balanced per track. The generator is deterministic in the
// seed, so any failure reproduces from the printed seed alone.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "fault/fault_plan.hpp"
#include "gang/gang_scheduler.hpp"
#include "metrics/tracer.hpp"
#include "sim/rng.hpp"
#include "tier/tier_manager.hpp"
#include "workloads/generator.hpp"

namespace apsim {
namespace {

SimTime fuzz_clock(const void* ctx) {
  return static_cast<const Simulator*>(ctx)->now();
}

struct FuzzScenario {
  int nodes = 1;
  std::int64_t frames = 512;
  double tier_pool_mb = 0.0;  // 0 = no compressed tier
  PolicySet policy;
  SimDuration quantum = 2 * kSecond;
  FaultPlan faults;
  struct JobSpec {
    std::int64_t pages;
    std::int64_t iterations;
    SimDuration compute_per_touch;
    int width;  // number of nodes the job spans (from node 0)
  };
  std::vector<JobSpec> jobs;

  [[nodiscard]] std::string describe() const {
    std::string s = std::to_string(nodes) + " node(s), " +
                    std::to_string(frames) + " frames, policy " +
                    policy.to_string() + ", tier " +
                    std::to_string(tier_pool_mb) + " MB, " +
                    std::to_string(jobs.size()) + " job(s)";
    if (!faults.empty()) s += ", faults: " + faults.to_string();
    return s;
  }
};

/// Draw a scenario from the seed. Every knob that exists in the simulator is
/// exercised somewhere in the seed space: single- and two-node clusters,
/// all 16 policy combinations, runs with and without the compressed tier,
/// and (every third seed) a random fault plan.
FuzzScenario draw_scenario(std::uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
  FuzzScenario s;
  s.nodes = 1 + static_cast<int>(rng.next_below(2));
  s.frames = 256 + static_cast<std::int64_t>(rng.next_below(3)) * 128;
  s.policy = PolicySet{(rng.next_below(2) != 0), (rng.next_below(2) != 0),
                       (rng.next_below(2) != 0), (rng.next_below(2) != 0)};
  s.quantum = (1 + static_cast<SimDuration>(rng.next_below(3))) * kSecond;
  if (rng.next_below(2) != 0) {
    s.tier_pool_mb = 0.25 * static_cast<double>(1 + rng.next_below(2));
  }
  if (seed % 3 == 0) {
    s.faults = FaultPlan::random(seed, s.nodes, 60 * kSecond);
  }
  const int njobs = 1 + static_cast<int>(rng.next_below(3));
  for (int j = 0; j < njobs; ++j) {
    FuzzScenario::JobSpec job;
    // Footprints range from comfortably resident to ~70% of memory, so with
    // several jobs the total overcommits and switches actually page.
    job.pages = static_cast<std::int64_t>(100 + rng.next_below(260));
    job.iterations = static_cast<std::int64_t>(100 + rng.next_below(300));
    job.compute_per_touch =
        (10 + static_cast<SimDuration>(rng.next_below(20))) * kMicrosecond;
    job.width = 1 + static_cast<int>(rng.next_below(
                        static_cast<std::uint64_t>(s.nodes)));
    s.jobs.push_back(job);
  }
  return s;
}

/// Walk the recorded trace stream and check structural sanity: per-track
/// nesting depth of synchronous B/E spans never goes negative and ends at
/// zero, and every async id opened is closed exactly once. (The tracer
/// always stores the end of a stored span even past the buffer cap, so
/// balance must hold regardless of drops.)
void expect_balanced_spans(const Tracer& tracer) {
  std::map<std::int32_t, long> sync_depth;
  std::map<std::uint64_t, long> async_open;
  for (const TraceEvent& ev : tracer.events()) {
    switch (ev.kind) {
      case TraceEventKind::kBegin:
        ++sync_depth[ev.track];
        break;
      case TraceEventKind::kEnd:
        --sync_depth[ev.track];
        ASSERT_GE(sync_depth[ev.track], 0)
            << "track " << ev.track << " closed more spans than it opened";
        break;
      case TraceEventKind::kAsyncBegin:
        ++async_open[ev.id];
        ASSERT_EQ(async_open[ev.id], 1) << "async id " << ev.id << " reopened";
        break;
      case TraceEventKind::kAsyncEnd:
        --async_open[ev.id];
        ASSERT_EQ(async_open[ev.id], 0)
            << "async id " << ev.id << " closed without open";
        break;
      case TraceEventKind::kInstant:
      case TraceEventKind::kCounter:
        break;
    }
  }
  for (const auto& [track, depth] : sync_depth) {
    EXPECT_EQ(depth, 0) << "track " << track << " ended with open sync spans";
  }
  for (const auto& [id, open] : async_open) {
    EXPECT_EQ(open, 0) << "async id " << id << " never closed";
  }
}

void run_fuzz_case(std::uint64_t seed) {
  const FuzzScenario s = draw_scenario(seed);
  SCOPED_TRACE("seed " + std::to_string(seed) + ": " + s.describe());

  NodeParams node_params;
  node_params.vmm.total_frames = s.frames;
  node_params.vmm.freepages_min = 8;
  node_params.vmm.freepages_low = 12;
  node_params.vmm.freepages_high = 16;
  node_params.disk.num_blocks = 1 << 16;
  node_params.tier.pool_mb = s.tier_pool_mb;

  Cluster cluster(s.nodes, node_params, NetParams{}, seed, s.faults);
  GangParams params;
  params.quantum = s.quantum;
  params.pager.policy = s.policy;
  if (s.faults.disturbs_control_plane()) {
    params.switch_watchdog = 50 * kMillisecond;
  }
  GangScheduler scheduler(cluster, params);

  // Wire a tracer onto every instrumented component, exactly as the harness
  // does for trace_json runs, so the span-balance property covers the whole
  // switch path (scheduler, pager, vmm, tier, disk).
  Tracer tracer(&cluster.sim(), fuzz_clock);
  scheduler.set_tracer(&tracer);
  for (int n = 0; n < s.nodes; ++n) {
    scheduler.pager(n).set_tracer(&tracer, trace_track(n, kTrackSched));
    cluster.node(n).vmm().set_tracer(&tracer, trace_track(n, kTrackVmm));
    cluster.node(n).disk().set_tracer(&tracer, trace_track(n, kTrackDisk));
    if (TierManager* tier = cluster.node(n).tier()) {
      tier->set_tracer(&tracer, trace_track(n, kTrackTier));
    }
  }

  std::vector<std::unique_ptr<Process>> procs;
  for (std::size_t j = 0; j < s.jobs.size(); ++j) {
    const auto& spec = s.jobs[j];
    Job& job = scheduler.create_job("fuzz" + std::to_string(j));
    for (int n = 0; n < spec.width; ++n) {
      SweepOptions options;
      options.pages = spec.pages;
      options.iterations = spec.iterations;
      options.compute_per_touch = spec.compute_per_touch;
      const Pid pid = cluster.node(n).vmm().create_process(spec.pages);
      procs.push_back(std::make_unique<Process>(
          "fuzz" + std::to_string(j) + ":" + std::to_string(n), pid,
          make_sweep_program(options)));
      cluster.node(n).cpu().attach(*procs.back());
      job.add_process(n, *procs.back());
    }
  }
  scheduler.start();

  // Invariant 1: simulated time is monotone. The predicate runs after every
  // dispatched event, so this observes each step of the clock.
  SimTime last_now = 0;
  bool time_ran_backwards = false;
  const bool finished = cluster.sim().run_until(
      [&] {
        if (cluster.sim().now() < last_now) time_ran_backwards = true;
        last_now = cluster.sim().now();
        return scheduler.all_finished();
      },
      30 * kMinute);
  EXPECT_FALSE(time_ran_backwards);
  ASSERT_TRUE(finished) << "run did not terminate";

  // Invariant 2: the run quiesces — nothing keeps rescheduling itself after
  // the jobs are done (planned faults and in-flight I/O may still drain).
  (void)cluster.sim().run_until([] { return false; },
                                cluster.sim().now() + 5 * kMinute);
  EXPECT_EQ(cluster.sim().pending_events(), 0u) << "event queue did not drain";

  // Invariant 3: conservation on every surviving node. All frames free, all
  // swap slots returned, and the compressed pool drained with them.
  for (int n = 0; n < s.nodes; ++n) {
    if (!cluster.node_alive(n)) continue;
    auto& vmm = cluster.node(n).vmm();
    EXPECT_EQ(vmm.free_frames(), vmm.frames().usable_frames()) << "node " << n;
    EXPECT_EQ(cluster.node(n).swap().used_slots(), 0) << "node " << n;
    if (const TierManager* tier = cluster.node(n).tier()) {
      EXPECT_EQ(tier->pool().entry_count(), 0) << "node " << n;
      EXPECT_EQ(tier->pool().bytes_used(), 0) << "node " << n;
    }
  }

  // Invariant 4: the trace stream is structurally sound.
  expect_balanced_spans(tracer);
  EXPECT_GT(tracer.events().size(), 0u) << "tracer recorded nothing";
}

TEST(FuzzInvariants, FiftyRandomScenariosUpholdAllInvariants) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    run_fuzz_case(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(FuzzInvariants, GeneratorCoversTheKnobSpace) {
  // The property above is weak if the generator never draws some knob.
  // Check the first 50 seeds actually cover: both cluster sizes, a tiered
  // and an untiered run, a faulted and a fault-free run, and at least 8
  // distinct policy combinations.
  int two_node = 0, tiered = 0, faulted = 0, multi_job = 0;
  std::map<std::string, int> policies;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const FuzzScenario s = draw_scenario(seed);
    two_node += s.nodes == 2;
    tiered += s.tier_pool_mb > 0.0;
    faulted += !s.faults.empty();
    multi_job += s.jobs.size() > 1;
    ++policies[s.policy.to_string()];
  }
  EXPECT_GT(two_node, 5);
  EXPECT_LT(two_node, 45);
  EXPECT_GT(tiered, 5);
  EXPECT_LT(tiered, 45);
  EXPECT_GT(faulted, 5);
  EXPECT_GT(multi_job, 10);
  EXPECT_GE(policies.size(), 8u);
}

}  // namespace
}  // namespace apsim
