// Unit tests for the swap-area slot allocator: contiguity preferences,
// fragmentation behaviour, exhaustion, I/O submission, and the slot release
// hook the compressed tier uses to keep pool entries in sync with slot
// ownership.

#include <gtest/gtest.h>

#include <vector>

#include "disk/swap_device.hpp"
#include "sim/simulator.hpp"
#include "tier/tier_manager.hpp"

namespace apsim {
namespace {

struct SwapFixture {
  Simulator sim;
  Disk disk{sim, DiskParams{.num_blocks = 4096}};
  SwapDevice swap{disk, 0, 1024};
};

TEST(SwapDevice, AllocOneAndFree) {
  SwapFixture f;
  auto slot = f.swap.alloc_one();
  ASSERT_TRUE(slot.has_value());
  EXPECT_TRUE(f.swap.is_allocated(*slot));
  EXPECT_EQ(f.swap.free_slots(), 1023);
  f.swap.free_slot(*slot);
  EXPECT_FALSE(f.swap.is_allocated(*slot));
  EXPECT_EQ(f.swap.free_slots(), 1024);
}

TEST(SwapDevice, AllocRunIsContiguous) {
  SwapFixture f;
  auto run = f.swap.alloc_run(64);
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(run->count, 64);
  for (std::int64_t i = 0; i < run->count; ++i) {
    EXPECT_TRUE(f.swap.is_allocated(run->start + i));
  }
}

TEST(SwapDevice, NextFitKeepsSequentialAllocationsAdjacent) {
  SwapFixture f;
  auto a = f.swap.alloc_one();
  auto b = f.swap.alloc_one();
  ASSERT_TRUE(a && b);
  EXPECT_EQ(*b, *a + 1);
}

TEST(SwapDevice, AllocPagesCoversRequestWithRuns) {
  SwapFixture f;
  auto runs = f.swap.alloc_pages(200, 64);
  std::int64_t total = 0;
  for (const auto& run : runs) {
    EXPECT_LE(run.count, 200);
    total += run.count;
  }
  EXPECT_EQ(total, 200);
  EXPECT_EQ(f.swap.used_slots(), 200);
}

TEST(SwapDevice, AllocPagesMergesAdjacentRuns) {
  SwapFixture f;
  // max_run 50, but runs continue each other: they must merge in the result.
  auto runs = f.swap.alloc_pages(150, 50);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].count, 150);
}

TEST(SwapDevice, FragmentationSplitsRuns) {
  SwapFixture f;
  auto big = f.swap.alloc_run(1024);
  ASSERT_TRUE(big.has_value());
  ASSERT_EQ(big->count, 1024);
  // Free every other slot: max contiguous run length becomes 1.
  for (SwapSlot s = 0; s < 1024; s += 2) f.swap.free_slot(s);
  auto runs = f.swap.alloc_pages(10, 64);
  std::int64_t total = 0;
  for (const auto& run : runs) {
    EXPECT_EQ(run.count, 1);
    total += run.count;
  }
  EXPECT_EQ(total, 10);
}

TEST(SwapDevice, ExhaustionReturnsNullopt) {
  SwapFixture f;
  (void)f.swap.alloc_pages(1024, 1024);
  EXPECT_EQ(f.swap.free_slots(), 0);
  EXPECT_FALSE(f.swap.alloc_one().has_value());
  EXPECT_FALSE(f.swap.alloc_run(4).has_value());
  EXPECT_TRUE(f.swap.alloc_pages(4, 4).empty());
}

TEST(SwapDevice, AllocPagesPartialWhenNearlyFull) {
  SwapFixture f;
  (void)f.swap.alloc_pages(1020, 1024);
  auto runs = f.swap.alloc_pages(10, 8);
  std::int64_t total = 0;
  for (const auto& run : runs) total += run.count;
  EXPECT_EQ(total, 4);  // only 4 slots were left
}

TEST(SwapDevice, ReadWriteRoundTripThroughDisk) {
  SwapFixture f;
  auto run = f.swap.alloc_run(16);
  ASSERT_TRUE(run.has_value());
  bool wrote = false, read = false;
  f.swap.write(*run, IoPriority::kForeground,
               [&](IoResult result) { wrote = result.ok; });
  f.swap.read(*run, IoPriority::kForeground,
              [&](IoResult result) { read = result.ok; });
  f.sim.run();
  EXPECT_TRUE(wrote);
  EXPECT_TRUE(read);
  EXPECT_EQ(f.disk.stats().blocks_written, 16u);
  EXPECT_EQ(f.disk.stats().blocks_read, 16u);
}

TEST(SwapDevice, BaseOffsetMapsToDiskBlocks) {
  Simulator sim;
  Disk disk(sim, DiskParams{.num_blocks = 4096});
  SwapDevice swap(disk, 100, 1024);
  EXPECT_EQ(swap.block_of(0), 100);
  EXPECT_EQ(swap.block_of(1023), 1123);
}

TEST(SwapDevice, ReleaseHookSeesEverySlotBeforeItIsFreed) {
  SwapFixture f;
  auto run = f.swap.alloc_run(8);
  ASSERT_TRUE(run.has_value());
  std::vector<SwapSlot> released;
  f.swap.set_slot_release_hook([&](SwapSlot slot) {
    // The hook fires while the slot is still allocated, so the observer can
    // look up per-slot state keyed on it.
    EXPECT_TRUE(f.swap.is_allocated(slot));
    released.push_back(slot);
  });
  for (std::int64_t i = 0; i < run->count; ++i) {
    f.swap.free_slot(run->start + i);
  }
  ASSERT_EQ(released.size(), 8u);
  for (std::int64_t i = 0; i < run->count; ++i) {
    EXPECT_EQ(released[static_cast<std::size_t>(i)], run->start + i);
    EXPECT_FALSE(f.swap.is_allocated(run->start + i));
  }
}

TEST(SwapDevice, ReleaseHookUnregistersWithNullptr) {
  SwapFixture f;
  int calls = 0;
  f.swap.set_slot_release_hook([&](SwapSlot) { ++calls; });
  auto a = f.swap.alloc_one();
  ASSERT_TRUE(a.has_value());
  f.swap.free_slot(*a);
  EXPECT_EQ(calls, 1);
  f.swap.set_slot_release_hook(nullptr);
  auto b = f.swap.alloc_one();
  ASSERT_TRUE(b.has_value());
  f.swap.free_slot(*b);  // must not crash, must not count
  EXPECT_EQ(calls, 1);
}

// Slot lifecycle under tier writeback: a slot written through the tier, then
// drained to disk by the background pass, then freed, must be reusable — and
// re-writing the recycled slot must land in the pool again with consistent
// accounting (no stale entries, no leaked budget).
TEST(SwapDevice, SlotsRecycleCleanlyUnderTierWriteback) {
  SwapFixture f;
  TierParams params;
  params.pool_mb = 0.0625;  // 64 KB: small enough that 64 pages overflow it
  params.ratio_model = TierRatioModel::kText;
  params.writeback = true;
  params.writeback_batch = 16;
  TierManager tier(f.sim, f.swap, params);

  auto run = f.swap.alloc_run(64);
  ASSERT_TRUE(run.has_value());
  ASSERT_EQ(run->count, 64);
  bool wrote = false;
  tier.write(*run, IoPriority::kForeground,
             [&](IoResult result) { wrote = result.ok; });
  f.sim.run();  // lets the writeback daemon drain below the low watermark
  EXPECT_TRUE(wrote);
  EXPECT_GT(tier.stats().writeback_pages, 0u);

  // Free the whole run: pool copies must vanish with the slots.
  for (std::int64_t i = 0; i < run->count; ++i) {
    f.swap.free_slot(run->start + i);
  }
  EXPECT_EQ(f.swap.used_slots(), 0);
  EXPECT_EQ(tier.pool().entry_count(), 0);
  EXPECT_EQ(tier.pool().bytes_used(), 0);

  // Recycle: the next-fit allocator will hand out fresh slots; writing them
  // through the tier must pool them again with the same deterministic sizes.
  auto again = f.swap.alloc_run(16);
  ASSERT_TRUE(again.has_value());
  std::int64_t expected_bytes = 0;
  for (std::int64_t i = 0; i < again->count; ++i) {
    expected_bytes += tier.pool().compressed_bytes_of(again->start + i);
  }
  bool rewrote = false;
  tier.write(*again, IoPriority::kForeground,
             [&](IoResult result) { rewrote = result.ok; });
  f.sim.run();
  EXPECT_TRUE(rewrote);
  // 16 KB of text-model pages fits the 64 KB budget: everything pooled.
  EXPECT_EQ(tier.pool().entry_count(), again->count);
  EXPECT_EQ(tier.pool().bytes_used(), expected_bytes);
}

TEST(SwapDeviceDeath, DoubleFreeAsserts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SwapFixture f;
  auto slot = f.swap.alloc_one();
  f.swap.free_slot(*slot);
  EXPECT_DEBUG_DEATH(f.swap.free_slot(*slot), "double free");
}

}  // namespace
}  // namespace apsim
