// Unit tests for the swap-area slot allocator: contiguity preferences,
// fragmentation behaviour, exhaustion, and I/O submission.

#include <gtest/gtest.h>

#include "disk/swap_device.hpp"
#include "sim/simulator.hpp"

namespace apsim {
namespace {

struct SwapFixture {
  Simulator sim;
  Disk disk{sim, DiskParams{.num_blocks = 4096}};
  SwapDevice swap{disk, 0, 1024};
};

TEST(SwapDevice, AllocOneAndFree) {
  SwapFixture f;
  auto slot = f.swap.alloc_one();
  ASSERT_TRUE(slot.has_value());
  EXPECT_TRUE(f.swap.is_allocated(*slot));
  EXPECT_EQ(f.swap.free_slots(), 1023);
  f.swap.free_slot(*slot);
  EXPECT_FALSE(f.swap.is_allocated(*slot));
  EXPECT_EQ(f.swap.free_slots(), 1024);
}

TEST(SwapDevice, AllocRunIsContiguous) {
  SwapFixture f;
  auto run = f.swap.alloc_run(64);
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(run->count, 64);
  for (std::int64_t i = 0; i < run->count; ++i) {
    EXPECT_TRUE(f.swap.is_allocated(run->start + i));
  }
}

TEST(SwapDevice, NextFitKeepsSequentialAllocationsAdjacent) {
  SwapFixture f;
  auto a = f.swap.alloc_one();
  auto b = f.swap.alloc_one();
  ASSERT_TRUE(a && b);
  EXPECT_EQ(*b, *a + 1);
}

TEST(SwapDevice, AllocPagesCoversRequestWithRuns) {
  SwapFixture f;
  auto runs = f.swap.alloc_pages(200, 64);
  std::int64_t total = 0;
  for (const auto& run : runs) {
    EXPECT_LE(run.count, 200);
    total += run.count;
  }
  EXPECT_EQ(total, 200);
  EXPECT_EQ(f.swap.used_slots(), 200);
}

TEST(SwapDevice, AllocPagesMergesAdjacentRuns) {
  SwapFixture f;
  // max_run 50, but runs continue each other: they must merge in the result.
  auto runs = f.swap.alloc_pages(150, 50);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].count, 150);
}

TEST(SwapDevice, FragmentationSplitsRuns) {
  SwapFixture f;
  auto big = f.swap.alloc_run(1024);
  ASSERT_TRUE(big.has_value());
  ASSERT_EQ(big->count, 1024);
  // Free every other slot: max contiguous run length becomes 1.
  for (SwapSlot s = 0; s < 1024; s += 2) f.swap.free_slot(s);
  auto runs = f.swap.alloc_pages(10, 64);
  std::int64_t total = 0;
  for (const auto& run : runs) {
    EXPECT_EQ(run.count, 1);
    total += run.count;
  }
  EXPECT_EQ(total, 10);
}

TEST(SwapDevice, ExhaustionReturnsNullopt) {
  SwapFixture f;
  (void)f.swap.alloc_pages(1024, 1024);
  EXPECT_EQ(f.swap.free_slots(), 0);
  EXPECT_FALSE(f.swap.alloc_one().has_value());
  EXPECT_FALSE(f.swap.alloc_run(4).has_value());
  EXPECT_TRUE(f.swap.alloc_pages(4, 4).empty());
}

TEST(SwapDevice, AllocPagesPartialWhenNearlyFull) {
  SwapFixture f;
  (void)f.swap.alloc_pages(1020, 1024);
  auto runs = f.swap.alloc_pages(10, 8);
  std::int64_t total = 0;
  for (const auto& run : runs) total += run.count;
  EXPECT_EQ(total, 4);  // only 4 slots were left
}

TEST(SwapDevice, ReadWriteRoundTripThroughDisk) {
  SwapFixture f;
  auto run = f.swap.alloc_run(16);
  ASSERT_TRUE(run.has_value());
  bool wrote = false, read = false;
  f.swap.write(*run, IoPriority::kForeground,
               [&](IoResult result) { wrote = result.ok; });
  f.swap.read(*run, IoPriority::kForeground,
              [&](IoResult result) { read = result.ok; });
  f.sim.run();
  EXPECT_TRUE(wrote);
  EXPECT_TRUE(read);
  EXPECT_EQ(f.disk.stats().blocks_written, 16u);
  EXPECT_EQ(f.disk.stats().blocks_read, 16u);
}

TEST(SwapDevice, BaseOffsetMapsToDiskBlocks) {
  Simulator sim;
  Disk disk(sim, DiskParams{.num_blocks = 4096});
  SwapDevice swap(disk, 100, 1024);
  EXPECT_EQ(swap.block_of(0), 100);
  EXPECT_EQ(swap.block_of(1023), 1123);
}

TEST(SwapDeviceDeath, DoubleFreeAsserts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SwapFixture f;
  auto slot = f.swap.alloc_one();
  f.swap.free_slot(*slot);
  EXPECT_DEBUG_DEATH(f.swap.free_slot(*slot), "double free");
}

}  // namespace
}  // namespace apsim
