// Unit and integration tests for the switch-phase tracer: recording
// primitives, the event cap, Chrome JSON export, phase statistics, and the
// end-to-end properties the subsystem promises — deterministic event streams,
// bit-identical outcomes with tracing off, and balanced, monotonically
// timestamped spans covering every gang switch.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "metrics/tracer.hpp"

namespace apsim {
namespace {

// ---------------------------------------------------------------------------
// Tracer primitives with a hand-cranked clock.

struct ManualClock {
  SimTime t = 0;
  static SimTime read(const void* ctx) {
    return static_cast<const ManualClock*>(ctx)->t;
  }
};

TEST(Tracer, SyncSpanRecordsBeginEndPair) {
  ManualClock clock;
  Tracer tracer(&clock, ManualClock::read);
  {
    clock.t = 100;
    TraceSpan span = tracer.span(0, "switch", "sigstop", {{"pid", 7.0}});
    clock.t = 250;
  }
  ASSERT_EQ(tracer.events().size(), 2u);
  const TraceEvent& begin = tracer.events()[0];
  const TraceEvent& end = tracer.events()[1];
  EXPECT_EQ(begin.kind, TraceEventKind::kBegin);
  EXPECT_EQ(begin.ts, 100);
  EXPECT_EQ(tracer.string(begin.cat), "switch");
  EXPECT_EQ(tracer.string(begin.name), "sigstop");
  ASSERT_EQ(begin.num_args, 1);
  EXPECT_EQ(tracer.string(begin.args[0].first), "pid");
  EXPECT_DOUBLE_EQ(begin.args[0].second, 7.0);
  EXPECT_EQ(end.kind, TraceEventKind::kEnd);
  EXPECT_EQ(end.ts, 250);
}

TEST(Tracer, EndIsIdempotentAndMoveTransfersOwnership) {
  ManualClock clock;
  Tracer tracer(&clock, ManualClock::read);
  TraceSpan span = tracer.span(0, "c", "n");
  TraceSpan moved = std::move(span);
  EXPECT_FALSE(span.active());  // NOLINT(bugprone-use-after-move): on purpose
  span.end();                   // inert, records nothing
  moved.end();
  moved.end();  // second end is a no-op
  EXPECT_EQ(tracer.events().size(), 2u);
}

TEST(Tracer, AsyncSpansGetDistinctIds) {
  ManualClock clock;
  Tracer tracer(&clock, ManualClock::read);
  TraceSpan a = tracer.async_span(0, "switch", "page_out");
  TraceSpan b = tracer.async_span(0, "switch", "page_out");
  a.end();
  b.end();
  ASSERT_EQ(tracer.events().size(), 4u);
  const std::uint64_t id_a = tracer.events()[0].id;
  const std::uint64_t id_b = tracer.events()[1].id;
  EXPECT_NE(id_a, 0u);
  EXPECT_NE(id_b, 0u);
  EXPECT_NE(id_a, id_b);
  EXPECT_EQ(tracer.events()[2].id, id_a);  // ends pair by id
  EXPECT_EQ(tracer.events()[3].id, id_b);
}

TEST(Tracer, PhaseStatsSummarizeCompletedSpans) {
  ManualClock clock;
  Tracer tracer(&clock, ManualClock::read);
  for (SimTime width : {kSecond, 3 * kSecond}) {
    clock.t = 0;
    TraceSpan span = tracer.span(0, "switch", "page_in");
    clock.t = width;
    span.end();
  }
  const auto stats = tracer.phase_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].category, "switch");
  EXPECT_EQ(stats[0].name, "page_in");
  EXPECT_EQ(stats[0].count, 2u);
  EXPECT_DOUBLE_EQ(stats[0].total_s, 4.0);
  EXPECT_DOUBLE_EQ(stats[0].mean_s, 2.0);
  EXPECT_DOUBLE_EQ(stats[0].min_s, 1.0);
  EXPECT_DOUBLE_EQ(stats[0].max_s, 3.0);
  EXPECT_GT(stats[0].p95_s, stats[0].min_s);
}

TEST(Tracer, EventCapDropsNewWorkButKeepsEndsBalanced) {
  ManualClock clock;
  Tracer tracer(&clock, ManualClock::read, /*max_events=*/3);
  TraceSpan a = tracer.span(0, "c", "a");      // stored (1)
  TraceSpan b = tracer.span(0, "c", "b");      // stored (2)
  tracer.instant(0, "c", "i1");                // stored (3) — at capacity now
  tracer.instant(0, "c", "i2");                // dropped
  TraceSpan c = tracer.span(0, "c", "c");      // begin dropped
  c.end();                                     // nothing to balance: skipped
  b.end();                                     // forced past the cap
  a.end();                                     // forced past the cap
  EXPECT_GE(tracer.dropped(), 2u);
  int begins = 0;
  int ends = 0;
  for (const TraceEvent& ev : tracer.events()) {
    if (ev.kind == TraceEventKind::kBegin) ++begins;
    if (ev.kind == TraceEventKind::kEnd) ++ends;
  }
  EXPECT_EQ(begins, 2);
  EXPECT_EQ(ends, 2);
  // Stats still cover the dropped span.
  ASSERT_EQ(tracer.phase_stats().size(), 3u);
}

TEST(Tracer, JsonEscapeHandlesControlCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Tracer, ChromeJsonIsStructurallySound) {
  ManualClock clock;
  Tracer tracer(&clock, ManualClock::read);
  tracer.set_track_name(0, "node0 switch");
  clock.t = 1500;  // 1.5 us
  TraceSpan sync = tracer.span(0, "switch", "sigstop");
  TraceSpan async = tracer.async_span(0, "switch", "page_out", {{"out", 1.0}});
  tracer.instant(0, "vmm", "major_fault", {{"vpage", 42.0}});
  tracer.counter(0, "disk", "queue_depth", 3.0);
  clock.t = 2500;
  sync.end();
  async.end();
  std::ostringstream os;
  tracer.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\"", 0), 0u);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("node0 switch"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  // Every ph letter appears the right number of times, async pairs share ids.
  auto count = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count("\"ph\":\"B\""), 1u);
  EXPECT_EQ(count("\"ph\":\"E\""), 1u);
  EXPECT_EQ(count("\"ph\":\"b\""), 1u);
  EXPECT_EQ(count("\"ph\":\"e\""), 1u);
  EXPECT_EQ(count("\"ph\":\"i\""), 1u);
  EXPECT_EQ(count("\"ph\":\"C\""), 1u);
  EXPECT_EQ(count("\"id\":\"0x"), 2u);
  // The whole document balances its brackets (cheap well-formedness check;
  // string values never contain braces thanks to json_escape + numeric args).
  EXPECT_EQ(count("{"), count("}"));
  EXPECT_EQ(count("["), count("]"));
}

// ---------------------------------------------------------------------------
// End-to-end: the traced switch path of a two-job gang run.

ExperimentConfig tiny(PolicySet policy = PolicySet::parse("so/ao/ai/bg")) {
  ExperimentConfig config;
  config.app = NpbApp::kLU;
  config.cls = NpbClass::kW;
  config.nodes = 1;
  config.instances = 2;
  config.node_memory_mb = 64.0;
  config.usable_memory_mb = 22.0;
  config.policy = policy;
  config.quantum = 4 * kSecond;
  config.iterations_scale = 0.2;
  return config;
}

/// Assert the stream is well formed: timestamps never go backwards, sync
/// begin/end nest per track, async begin/end pair by id. Returns the number
/// of completed async ("switch", "switch") spans.
int validate_events(const Tracer& tracer) {
  SimTime last_ts = 0;
  std::map<int, int> sync_depth;
  std::map<std::uint64_t, int> async_open;
  int switch_spans = 0;
  for (const TraceEvent& ev : tracer.events()) {
    EXPECT_GE(ev.ts, last_ts);  // append order == sim time order
    last_ts = ev.ts;
    switch (ev.kind) {
      case TraceEventKind::kBegin:
        ++sync_depth[ev.track];
        break;
      case TraceEventKind::kEnd:
        EXPECT_GT(sync_depth[ev.track], 0) << "E without B on a track";
        --sync_depth[ev.track];
        break;
      case TraceEventKind::kAsyncBegin:
        EXPECT_EQ(async_open.count(ev.id), 0u) << "async id reused while open";
        async_open[ev.id] = 1;
        break;
      case TraceEventKind::kAsyncEnd:
        EXPECT_EQ(async_open.count(ev.id), 1u) << "async end without begin";
        async_open.erase(ev.id);
        if (tracer.string(ev.cat) == "switch" &&
            tracer.string(ev.name) == "switch") {
          ++switch_spans;
        }
        break;
      case TraceEventKind::kInstant:
      case TraceEventKind::kCounter:
        break;
    }
  }
  for (const auto& [track, depth] : sync_depth) {
    EXPECT_EQ(depth, 0) << "unclosed sync span on track " << track;
  }
  EXPECT_TRUE(async_open.empty()) << "unclosed async spans";
  return switch_spans;
}

TEST(TracerRun, SpansCoverEveryGangSwitch) {
  auto config = tiny();
  config.trace_json = "-";
  const RunOutcome out = run_gang(config);
  ASSERT_NE(out.trace, nullptr);
  ASSERT_GT(out.switches, 0);
  EXPECT_EQ(out.trace->dropped(), 0u);

  const int switch_spans = validate_events(*out.trace);
  // One "switch" span per delivered switch action: every quantum-expiry
  // switch plus the initial slot activation and job-finish reschedules.
  EXPECT_GE(switch_spans, out.switches);

  // The phase summary exposes the full Figure 5 phase set.
  std::map<std::string, std::uint64_t> counts;
  for (const auto& phase : out.switch_phases) {
    counts[phase.category + "/" + phase.name] = phase.count;
  }
  EXPECT_EQ(counts.at("switch/switch"),
            static_cast<std::uint64_t>(switch_spans));
  EXPECT_GT(counts.at("switch/stop_bgwrite"), 0u);
  EXPECT_GT(counts.at("switch/sigstop"), 0u);
  EXPECT_GT(counts.at("switch/sigcont"), 0u);
  EXPECT_GT(counts.at("switch/page_out"), 0u);
  EXPECT_GT(counts.at("switch/page_in"), 0u);
}

TEST(TracerRun, EventStreamIsDeterministicAcrossReruns) {
  auto config = tiny();
  config.trace_json = "-";
  const RunOutcome first = run_gang(config);
  const RunOutcome second = run_gang(config);
  ASSERT_NE(first.trace, nullptr);
  ASSERT_NE(second.trace, nullptr);
  const auto& a = first.trace->events();
  const auto& b = second.trace->events();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ts, b[i].ts) << "event " << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << "event " << i;
    EXPECT_EQ(a[i].track, b[i].track) << "event " << i;
    EXPECT_EQ(a[i].id, b[i].id) << "event " << i;
    EXPECT_EQ(first.trace->string(a[i].cat), second.trace->string(b[i].cat));
    EXPECT_EQ(first.trace->string(a[i].name), second.trace->string(b[i].name));
  }
}

TEST(TracerRun, TracingOffProducesIdenticalOutcome) {
  auto config = tiny();
  const RunOutcome plain = run_gang(config);  // trace_json unset
  config.trace_json = "-";
  const RunOutcome traced = run_gang(config);

  EXPECT_EQ(plain.trace, nullptr);
  EXPECT_TRUE(plain.switch_phases.empty());
  EXPECT_NE(traced.trace, nullptr);

  // The tracer only records: every model-visible quantity matches exactly.
  EXPECT_EQ(plain.makespan, traced.makespan);
  EXPECT_EQ(plain.switches, traced.switches);
  EXPECT_EQ(plain.major_faults, traced.major_faults);
  EXPECT_EQ(plain.pages_swapped_in, traced.pages_swapped_in);
  EXPECT_EQ(plain.pages_swapped_out, traced.pages_swapped_out);
  EXPECT_EQ(plain.false_evictions, traced.false_evictions);
  EXPECT_EQ(plain.pages_recorded, traced.pages_recorded);
  EXPECT_EQ(plain.pages_replayed, traced.pages_replayed);
  EXPECT_EQ(plain.bg_pages_written, traced.bg_pages_written);
  ASSERT_EQ(plain.jobs.size(), traced.jobs.size());
  for (std::size_t j = 0; j < plain.jobs.size(); ++j) {
    EXPECT_EQ(plain.jobs[j].completion, traced.jobs[j].completion);
    EXPECT_EQ(plain.jobs[j].major_faults, traced.jobs[j].major_faults);
    EXPECT_EQ(plain.jobs[j].minor_faults, traced.jobs[j].minor_faults);
  }
}

TEST(TracerRun, WritesChromeJsonFile) {
  auto config = tiny();
  const std::string path = testing::TempDir() + "apsim_trace_test.json";
  config.trace_json = path;
  const RunOutcome out = run_gang(config);
  ASSERT_NE(out.trace, nullptr);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\"", 0), 0u);
  EXPECT_NE(json.find("\"name\":\"switch\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(TracerRun, ChaosRunWithTracerStaysQuiescentAndBalanced) {
  auto config = tiny();
  config.trace_json = "-";
  config.faults.add(FaultSpec::parse("disk_transient start_s=2 end_s=20 p=0.05"));
  config.faults.add(FaultSpec::parse("signal_drop start_s=2 end_s=20 p=0.3"));
  const RunOutcome out = run_gang(config);
  // The run reached a terminal state (all jobs finished or failed) and the
  // event stream is still well formed: fault paths close their spans too.
  ASSERT_NE(out.trace, nullptr);
  validate_events(*out.trace);
  EXPECT_FALSE(out.switch_phases.empty());
}

}  // namespace
}  // namespace apsim
