// Unit tests for the metrics layer: paper metric formulas, tables, trace
// CSV/ASCII rendering and burst concentration.

#include <gtest/gtest.h>

#include <sstream>

#include "metrics/experiment.hpp"
#include "metrics/table.hpp"
#include "metrics/trace.hpp"

namespace apsim {
namespace {

TEST(Metrics, SwitchingOverheadFormula) {
  // gang 100 s, batch 50 s: half the time is switching overhead.
  EXPECT_DOUBLE_EQ(switching_overhead(100 * kSecond, 50 * kSecond), 0.5);
  EXPECT_DOUBLE_EQ(switching_overhead(50 * kSecond, 50 * kSecond), 0.0);
  // Gang faster than batch clamps to zero.
  EXPECT_DOUBLE_EQ(switching_overhead(40 * kSecond, 50 * kSecond), 0.0);
}

TEST(Metrics, PagingReductionFormula) {
  EXPECT_DOUBLE_EQ(paging_reduction(0.05, 0.50), 0.9);
  EXPECT_DOUBLE_EQ(paging_reduction(0.50, 0.50), 0.0);
  EXPECT_LT(paging_reduction(0.60, 0.50), 0.0);  // made it worse
  EXPECT_DOUBLE_EQ(paging_reduction(0.10, 0.0), 0.0);  // nothing to reduce
}

TEST(Metrics, MeanCompletion) {
  RunOutcome outcome;
  outcome.jobs.push_back({.name = "a", .completion = 10 * kSecond});
  outcome.jobs.push_back({.name = "b", .completion = 20 * kSecond});
  EXPECT_DOUBLE_EQ(mean_completion_s(outcome), 15.0);
  EXPECT_DOUBLE_EQ(mean_completion_s(RunOutcome{}), 0.0);
}

TEST(Table, AlignsColumns) {
  Table table({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"longer-name", "22"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Header and the two rows plus separator.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, MissingCellsRenderEmpty) {
  Table table({"a", "b", "c"});
  table.add_row({"only"});
  EXPECT_NO_THROW((void)table.to_string());
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(0.346), "35%");
  EXPECT_EQ(Table::pct(0.345, 1), "34.5%");
  EXPECT_EQ(Table::seconds(12.3, 1), "12.3s");
}

TEST(Trace, CsvContainsAllBuckets) {
  PagingTrace trace;
  trace.label = "node0";
  trace.pages_in.add(0, 5);
  trace.pages_in.add(2 * kSecond, 3);
  trace.pages_out.add(kSecond, 7);
  std::ostringstream os;
  write_trace_csv(os, trace);
  EXPECT_EQ(os.str(),
            "time_s,pages_in,pages_out\n"
            "0,5,0\n"
            "1,0,7\n"
            "2,3,0\n");
}

TEST(Trace, AsciiChartMarksBursts) {
  TimeSeries series(kSecond);
  series.add(10 * kSecond, 100.0);
  AsciiChartOptions options;
  options.columns = 20;
  options.rows = 3;
  options.t_end = 20 * kSecond;
  const std::string chart = render_ascii_series(series, options);
  EXPECT_NE(chart.find('#'), std::string::npos);
  // 3 rows of 20 columns + newlines.
  EXPECT_EQ(chart.size(), 3u * 21u);
}

TEST(Trace, AsciiChartEmptySeries) {
  TimeSeries series(kSecond);
  AsciiChartOptions options;
  options.columns = 10;
  options.rows = 2;
  options.t_end = 5 * kSecond;
  const std::string chart = render_ascii_series(series, options);
  EXPECT_EQ(chart, "..........\n");
}

TEST(Trace, AsciiChartUniformSeriesHasNoRebinGaps) {
  // 10 one-second buckets re-binned into 20 cells: each bucket overlaps two
  // cells and must split evenly. The old start-time mapping piled each
  // bucket onto one cell, rendering a comb of spikes and gaps.
  TimeSeries series(kSecond);
  for (int i = 0; i < 10; ++i) series.add(i * kSecond, 10.0);
  AsciiChartOptions options;
  options.columns = 20;
  options.rows = 2;
  options.t_end = 10 * kSecond;
  const std::string chart = render_ascii_series(series, options);
  EXPECT_EQ(chart.find(' '), std::string::npos);
  EXPECT_EQ(chart.find('_'), std::string::npos);
  EXPECT_EQ(std::count(chart.begin(), chart.end(), '#'), 2 * 20);
}

TEST(Trace, AsciiChartWindowStartOffsetKeepsProportions) {
  // Window [30 s, 40 s) at 0.5 s cells: the burst bucket [35 s, 36 s) must
  // split across cells 10 and 11 (the old code dropped all its volume on
  // cell 10 and left 11 empty).
  TimeSeries series(kSecond);
  series.add(35 * kSecond, 100.0);
  AsciiChartOptions options;
  options.columns = 20;
  options.rows = 1;
  options.t_begin = 30 * kSecond;
  options.t_end = 40 * kSecond;
  const std::string chart = render_ascii_series(series, options);
  ASSERT_EQ(chart, std::string("          ##        \n"));
}

TEST(Trace, AsciiChartBucketStraddlingWindowStartStillRenders) {
  // A 10 s bucket [10 s, 20 s) viewed through the window [15 s, 25 s): its
  // in-window half must show up. The old begin-time filter discarded the
  // whole bucket because it starts before the window.
  TimeSeries series(10 * kSecond);
  series.add(10 * kSecond, 100.0);
  AsciiChartOptions options;
  options.columns = 10;
  options.rows = 1;
  options.t_begin = 15 * kSecond;
  options.t_end = 25 * kSecond;
  const std::string chart = render_ascii_series(series, options);
  // Cells 0-4 cover [15 s, 20 s): half the bucket, spread evenly.
  EXPECT_EQ(chart, "#####     \n");
}

TEST(Trace, AsciiChartHonorsWindowBeforeSeriesOrigin) {
  // A series whose first bucket starts at 10 s, charted over [0 s, 20 s):
  // the burst belongs in the middle of the axis, not at the left edge.
  TimeSeries series(kSecond, /*origin=*/10 * kSecond);
  series.add(10 * kSecond, 100.0);
  AsciiChartOptions options;
  options.columns = 20;
  options.rows = 1;
  options.t_begin = 0;
  options.t_end = 20 * kSecond;
  const std::string chart = render_ascii_series(series, options);
  ASSERT_EQ(chart.size(), 21u);
  EXPECT_EQ(chart.find('#'), 10u);
}

TEST(Trace, BurstConcentrationSeparatesShapes) {
  // Compact: everything in 2 buckets. Spread: uniform over 100.
  TimeSeries compact(kSecond);
  compact.add(5 * kSecond, 500.0);
  compact.add(6 * kSecond, 500.0);
  TimeSeries spread(kSecond);
  for (int i = 0; i < 100; ++i) spread.add(i * kSecond, 10.0);
  EXPECT_DOUBLE_EQ(burst_concentration(compact, 5), 1.0);
  EXPECT_NEAR(burst_concentration(spread, 5), 0.05, 1e-9);
  EXPECT_DOUBLE_EQ(burst_concentration(TimeSeries(kSecond), 5), 0.0);
}

TEST(Trace, BurstConcentrationEdgeCases) {
  TimeSeries series(kSecond);
  series.add(0, 10.0);
  series.add(kSecond, 30.0);
  series.add(2 * kSecond, 60.0);
  // Zero peak buckets hold zero volume.
  EXPECT_DOUBLE_EQ(burst_concentration(series, 0), 0.0);
  // More peak buckets than exist clamps to the whole (positive) series.
  EXPECT_DOUBLE_EQ(burst_concentration(series, 100), 1.0);
  // Empty series stays 0 for any request.
  EXPECT_DOUBLE_EQ(burst_concentration(TimeSeries(kSecond), 0), 0.0);
  EXPECT_DOUBLE_EQ(burst_concentration(TimeSeries(kSecond), 100), 0.0);
  // Ordinary case for reference: the top bucket holds 60%.
  EXPECT_DOUBLE_EQ(burst_concentration(series, 1), 0.6);
}

TEST(Table, SwitchPhaseTableRendersPhases) {
  RunOutcome outcome;
  SwitchPhaseStat phase;
  phase.category = "switch";
  phase.name = "page_out";
  phase.count = 4;
  phase.total_s = 2.0;
  phase.mean_s = 0.5;
  phase.min_s = 0.1;
  phase.max_s = 1.2;
  phase.p95_s = 1.1;
  outcome.switch_phases.push_back(phase);
  phase.name = "sigstop";
  outcome.switch_phases.push_back(phase);
  const Table table = switch_phase_table(outcome);
  EXPECT_EQ(table.rows(), 2u);
  const std::string text = table.to_string();
  EXPECT_NE(text.find("switch/page_out"), std::string::npos);
  EXPECT_NE(text.find("switch/sigstop"), std::string::npos);
  EXPECT_NE(text.find("500.000"), std::string::npos);  // mean ms
  // Untraced outcomes produce an empty (but printable) table.
  EXPECT_EQ(switch_phase_table(RunOutcome{}).rows(), 0u);
}

}  // namespace
}  // namespace apsim
