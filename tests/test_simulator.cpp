// Unit tests for the Simulator run loop: virtual time advancement, stop(),
// horizons, run_until predicates, and nested scheduling.

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace apsim {
namespace {

TEST(Simulator, TimeAdvancesToEventTimes) {
  Simulator sim;
  SimTime seen = -1;
  sim.after(100, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, RunReturnsEventCount) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.after(i, [] {});
  EXPECT_EQ(sim.run(), 5u);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) sim.after(10, chain);
  };
  sim.after(0, chain);
  sim.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now(), 90);
}

TEST(Simulator, HorizonStopsBeforeLaterEvents) {
  Simulator sim;
  bool early = false;
  bool late = false;
  sim.after(10, [&] { early = true; });
  sim.after(100, [&] { late = true; });
  sim.run(50);
  EXPECT_TRUE(early);
  EXPECT_FALSE(late);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_TRUE(late);
}

TEST(Simulator, StopHaltsTheLoop) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    sim.after(i, [&] {
      if (++count == 3) sim.stop();
    });
  }
  sim.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.pending_events(), 7u);
}

TEST(Simulator, RunUntilPredicate) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) sim.after(i, [&] { ++count; });
  const bool satisfied = sim.run_until([&] { return count == 4; });
  EXPECT_TRUE(satisfied);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(sim.now(), 4);
}

TEST(Simulator, RunUntilFalseWhenQueueDrains) {
  Simulator sim;
  sim.after(1, [] {});
  EXPECT_FALSE(sim.run_until([] { return false; }));
}

TEST(Simulator, CancelledEventsDoNotRun) {
  Simulator sim;
  bool ran = false;
  auto handle = sim.after(10, [&] { ran = true; });
  sim.cancel(handle);
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  SimTime inner = -1;
  sim.after(50, [&] {
    sim.after(0, [&] { inner = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner, 50);
}

TEST(Simulator, EventsDispatchedAccumulates) {
  Simulator sim;
  sim.after(1, [] {});
  sim.run();
  sim.after(2, [] {});
  sim.run();
  EXPECT_EQ(sim.events_dispatched(), 2u);
}

}  // namespace
}  // namespace apsim
