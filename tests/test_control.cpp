// Adaptive control plane tests: knob registry clamping, controller decision
// logic on synthetic signal traces (threshold crossings with hysteresis,
// hill-climb convergence and oscillation damping), the reclaim-policy
// registry and the generational policies (MGLRU aging, S3-FIFO ghost-queue
// promotion), end-to-end runs per policy/controller, golden pins with
// autotune on, bit-identity with autotune off, thread-count-independent
// sweeps, and a chaos run asserting knob bounds plus conservation.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "control/control_plane.hpp"
#include "control/controller.hpp"
#include "control/knobs.hpp"
#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "mem/reclaim_gen.hpp"
#include "mem/reclaim_registry.hpp"
#include "workloads/generator.hpp"

namespace apsim {
namespace {

// ---------------------------------------------------------------------------
// KnobRegistry

struct KnobFixture : ::testing::Test {
  double batch = 32.0;
  double frac = 0.9;
  KnobRegistry knobs;

  void SetUp() override {
    knobs.add({"reclaim_batch", 8.0, 512.0, 16.0},
              [this] { return batch; }, [this](double v) { batch = v; });
    knobs.add({"bg_start_frac", 0.5, 0.99, 0.05},
              [this] { return frac; }, [this](double v) { frac = v; });
  }
};

TEST_F(KnobFixture, SetClampsIntoSpecBounds) {
  EXPECT_EQ(knobs.set(0, 10000.0), 512.0);
  EXPECT_EQ(batch, 512.0);
  EXPECT_EQ(knobs.set(0, -5.0), 8.0);
  EXPECT_EQ(batch, 8.0);
  EXPECT_EQ(knobs.adjustments(), 2u);
}

TEST_F(KnobFixture, NoOpWritesAreNotCountedAsAdjustments) {
  knobs.set(0, 32.0);  // value unchanged
  EXPECT_EQ(knobs.adjustments(), 0u);
  knobs.set(0, 48.0);
  EXPECT_EQ(knobs.adjustments(), 1u);
}

TEST_F(KnobFixture, StepRefusesToLeaveTheBounds) {
  EXPECT_TRUE(knobs.step(0, +1));
  EXPECT_EQ(batch, 48.0);
  knobs.set(0, 512.0);
  EXPECT_FALSE(knobs.step(0, +1));
  EXPECT_EQ(batch, 512.0);
  knobs.set(0, 8.0);
  EXPECT_FALSE(knobs.step(0, -1));
  EXPECT_EQ(batch, 8.0);
}

TEST_F(KnobFixture, InitialValueIsCapturedAndFindWorks) {
  EXPECT_EQ(knobs.initial(0), 32.0);
  EXPECT_EQ(knobs.find("bg_start_frac"), 1);
  EXPECT_EQ(knobs.find("nope"), -1);
}

// ---------------------------------------------------------------------------
// DynThreshController on synthetic traces

SignalRates make_rates(double fault_rate, double stall_frac) {
  SignalRates r;
  r.dt_s = 1.0;
  r.fault_rate = fault_rate;
  r.stall_frac = stall_frac;
  r.free_frac = 0.5;
  return r;
}

TEST_F(KnobFixture, DynThreshCrossesBandsWithHysteresis) {
  DynThreshController ctl;
  using Mode = DynThreshController::Mode;
  EXPECT_EQ(ctl.mode(), Mode::kCalm);

  // Above the fault-rate entry threshold: calm -> pressure.
  ctl.tick(make_rates(300.0, 0.05), knobs);
  EXPECT_EQ(ctl.mode(), Mode::kPressure);

  // Inside the hysteresis band (lo < rate < hi): stays in pressure.
  ctl.tick(make_rates(100.0, 0.05), knobs);
  EXPECT_EQ(ctl.mode(), Mode::kPressure);

  // Below both exit thresholds: back to calm.
  ctl.tick(make_rates(10.0, 0.01), knobs);
  EXPECT_EQ(ctl.mode(), Mode::kCalm);

  // Stall above the thrash entry threshold: straight to thrash.
  ctl.tick(make_rates(10.0, 0.6), knobs);
  EXPECT_EQ(ctl.mode(), Mode::kThrash);

  // Stall inside the band: stays in thrash.
  ctl.tick(make_rates(10.0, 0.2), knobs);
  EXPECT_EQ(ctl.mode(), Mode::kThrash);

  // Stall below the exit threshold, fault rate low: calm again.
  ctl.tick(make_rates(10.0, 0.01), knobs);
  EXPECT_EQ(ctl.mode(), Mode::kCalm);
}

TEST_F(KnobFixture, DynThreshRampsKnobsTowardModeTargets) {
  DynThreshController ctl;
  // Two thrash ticks: reclaim_batch ramps toward max one step at a time.
  ctl.tick(make_rates(0.0, 0.9), knobs);
  EXPECT_EQ(batch, 48.0);
  ctl.tick(make_rates(0.0, 0.9), knobs);
  EXPECT_EQ(batch, 64.0);
  // bg_start_frac ramps down toward init - 2*step.
  EXPECT_NEAR(frac, 0.8, 1e-9);

  // Calm again: knobs walk back to their initials.
  ctl.tick(make_rates(0.0, 0.0), knobs);
  ctl.tick(make_rates(0.0, 0.0), knobs);
  EXPECT_EQ(batch, 32.0);
  EXPECT_NEAR(frac, 0.9, 1e-9);
}

TEST_F(KnobFixture, DynThreshSnapsDiscretePolicyKnobInThrash) {
  double policy = 0.0;
  knobs.add({"reclaim_policy", 0.0, 4.0, 1.0, /*continuous=*/false},
            [&] { return policy; }, [&](double v) { policy = v; });
  DynThreshParams params;
  params.thrash_policy_index = 4.0;
  DynThreshController ctl(params);

  ctl.tick(make_rates(0.0, 0.9), knobs);
  EXPECT_EQ(policy, 4.0);  // snapped, not ramped
  ctl.tick(make_rates(0.0, 0.0), knobs);
  EXPECT_EQ(policy, 0.0);  // calm restores the boot policy
}

// ---------------------------------------------------------------------------
// HillClimbController on synthetic objectives

TEST(HillClimb, ConvergesOnAConvexObjective) {
  double batch = 32.0;
  KnobRegistry knobs;
  knobs.add({"reclaim_batch", 8.0, 512.0, 16.0},
            [&] { return batch; }, [&](double v) { batch = v; });
  HillClimbController ctl;

  // Synthetic world: stall is minimised at batch == 256.
  const auto stall = [&] { return std::abs(batch - 256.0) / 1000.0; };
  for (int i = 0; i < 120; ++i) ctl.tick(make_rates(0.0, stall()), knobs);

  EXPECT_LT(std::abs(batch - 256.0), 3 * 16.0)
      << "climber did not approach the optimum, batch = " << batch;
}

TEST(HillClimb, DampsOscillationOnAFlatObjective) {
  double batch = 32.0;
  double lo = 32.0, hi = 32.0;
  KnobRegistry knobs;
  knobs.add({"reclaim_batch", 8.0, 512.0, 16.0},
            [&] { return batch; },
            [&](double v) {
              batch = v;
              lo = std::min(lo, v);
              hi = std::max(hi, v);
            });
  HillClimbController ctl;

  // Flat objective: every probe is rejected and reverted, and after both
  // directions fail the knob cools down, so the value never drifts.
  for (int i = 0; i < 100; ++i) ctl.tick(make_rates(0.0, 0.3), knobs);

  if (!ctl.probing()) {
    EXPECT_EQ(batch, 32.0);
  }
  // Probes only ever went one step out.
  EXPECT_GE(lo, 32.0 - 16.0);
  EXPECT_LE(hi, 32.0 + 16.0);
}

TEST(HillClimb, RespectsKnobBoundsWhileProbing) {
  double frac = 0.98;  // one step below the max
  KnobRegistry knobs;
  knobs.add({"bg_start_frac", 0.5, 0.99, 0.05},
            [&] { return frac; }, [&](double v) { frac = v; });
  HillClimbController ctl;
  for (int i = 0; i < 50; ++i) {
    ctl.tick(make_rates(0.0, 0.3), knobs);
    EXPECT_GE(frac, 0.5);
    EXPECT_LE(frac, 0.99);
  }
}

TEST(Controllers, FactoryConstructsEveryNameAndRejectsUnknown) {
  for (std::string_view name : controller_names()) {
    const auto ctl = make_controller(name);
    EXPECT_EQ(ctl->name(), name);
  }
  try {
    (void)make_controller("pid");
    FAIL() << "unknown controller did not throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("dyn-thresh"), std::string::npos) << what;
    EXPECT_NE(what.find("hill-climb"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------------------
// Reclaim-policy registry

TEST(ReclaimRegistry, ConstructsEveryRegisteredPolicy) {
  for (std::string_view name : reclaim_policy_names()) {
    const auto policy = make_reclaim_policy(name);
    EXPECT_EQ(policy->name(), name);
  }
}

TEST(ReclaimRegistry, UnknownNameThrowsListingValidNames) {
  try {
    (void)make_reclaim_policy("lirs");
    FAIL() << "unknown policy did not throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("clock-lru"), std::string::npos) << what;
    EXPECT_NE(what.find("s3-fifo"), std::string::npos) << what;
    EXPECT_NE(what.find("mglru"), std::string::npos) << what;
  }
}

TEST(ReclaimRegistry, ConfigValidationRejectsUnknownPolicyAndController) {
  ExperimentConfig config;
  config.reclaim_policy = "lirs";
  try {
    config.validate();
    FAIL() << "validate did not throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("clock-lru"), std::string::npos);
  }
  config.reclaim_policy = "clock-lru";
  config.autotune_controller = "pid";
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.autotune_controller = "hill-climb";
  EXPECT_NO_THROW(config.validate());
}

// ---------------------------------------------------------------------------
// Generational policies against a real Vmm

struct GenPolicyFixture : ::testing::Test {
  static VmmParams params() {
    VmmParams p;
    p.total_frames = 128;
    p.freepages_min = 8;
    p.freepages_low = 12;
    p.freepages_high = 16;
    p.page_cluster = 8;
    p.reclaim_batch = 4;  // small batches make victim order observable
    return p;
  }

  Simulator sim;
  Disk disk{sim, DiskParams{.num_blocks = 1 << 16}};
  SwapDevice swap{disk, 0, 1 << 16};
  Vmm vmm{sim, swap, params()};

  bool sync_fault(Pid pid, VPage v, bool write = false) {
    bool done = false;
    vmm.fault(pid, v, write, [&] { done = true; });
    sim.run();
    return done;
  }

  void populate(Pid pid, VPage begin, VPage end) {
    for (VPage v = begin; v < end; ++v) {
      if (!vmm.touch(pid, v, true)) ASSERT_TRUE(sync_fault(pid, v, true));
    }
  }

  void force_free(std::int64_t target) {
    bool done = false;
    vmm.request_free_frames(target, [&] { done = true; });
    sim.run();
    ASSERT_TRUE(done);
  }

  void clear_referenced(Pid pid, VPage begin, VPage end) {
    for (VPage v = begin; v < end; ++v) {
      vmm.space(pid).page_table().at(v).set_referenced(false);
    }
  }

  [[nodiscard]] bool present(Pid pid, VPage v) {
    return vmm.space(pid).page_table().at(v).present();
  }
};

TEST_F(GenPolicyFixture, MglruEvictsColdGenerationsBeforeHotOnes) {
  vmm.set_reclaim_policy(make_reclaim_policy("mglru"));
  const Pid pid = vmm.create_process(64);
  populate(pid, 0, 30);
  // Pages 0..11 stay hot (referenced); 12..29 go cold.
  clear_referenced(pid, 12, 30);

  // Needs 4 frames: the sweep promotes the hot pages to the youngest
  // generation and ages the cold ones down to eviction.
  force_free(102);
  for (VPage v = 0; v < 12; ++v) EXPECT_TRUE(present(pid, v)) << "page " << v;
  std::int64_t evicted = 0;
  for (VPage v = 12; v < 30; ++v) {
    if (!present(pid, v)) ++evicted;
  }
  EXPECT_GE(evicted, 4);

  // More pressure without re-touching: still only cold pages go.
  force_free(106);
  for (VPage v = 0; v < 12; ++v) EXPECT_TRUE(present(pid, v)) << "page " << v;
}

TEST_F(GenPolicyFixture, S3FifoGhostHitPromotesReenteringPagesToMain) {
  auto owned = std::make_unique<S3FifoPolicy>();
  S3FifoPolicy* policy = owned.get();
  vmm.set_reclaim_policy(std::move(owned));
  const Pid pid = vmm.create_process(64);
  populate(pid, 0, 30);
  // Make the front of the probationary queue evictable.
  clear_referenced(pid, 0, 9);

  force_free(102);  // evicts from the small queue, leaving ghosts
  EXPECT_GE(policy->stats().small_evictions, 4u);
  EXPECT_GE(policy->ghost_size(), 4);
  EXPECT_FALSE(present(pid, 0));
  EXPECT_TRUE(policy->in_ghost(pid, 0));

  // The evicted pages come back while their ghosts are live...
  ASSERT_TRUE(sync_fault(pid, 0));
  ASSERT_TRUE(sync_fault(pid, 1));

  // ...so the next reclaim pass ingests them straight into the main queue.
  clear_referenced(pid, 4, 9);
  force_free(static_cast<std::int64_t>(vmm.free_frames()) + 4);
  EXPECT_GE(policy->stats().ghost_hits, 2u);
  EXPECT_TRUE(policy->in_main(pid, 0));
  EXPECT_TRUE(policy->in_main(pid, 1));
}

TEST_F(GenPolicyFixture, S3FifoReferencedSmallPagesArePromotedNotEvicted) {
  auto owned = std::make_unique<S3FifoPolicy>();
  S3FifoPolicy* policy = owned.get();
  vmm.set_reclaim_policy(std::move(owned));
  const Pid pid = vmm.create_process(64);
  populate(pid, 0, 30);  // every page referenced
  clear_referenced(pid, 20, 30);

  force_free(102);
  // The referenced front of the small queue was promoted to main, and the
  // unreferenced tail was evicted.
  EXPECT_GE(policy->stats().promotions, 1u);
  EXPECT_GE(policy->main_size(), 1);
  for (VPage v = 0; v < 20; ++v) EXPECT_TRUE(present(pid, v)) << "page " << v;
}

// ---------------------------------------------------------------------------
// Vmm actuator setters

TEST_F(GenPolicyFixture, VmmActuatorSettersClampAndPreserveWatermarkOrder) {
  vmm.set_reclaim_batch(-3);
  EXPECT_EQ(vmm.params().reclaim_batch, 1);
  vmm.set_max_prefetch_run(0);
  EXPECT_EQ(vmm.params().max_prefetch_run, 1);

  // low is clamped into [min, high].
  vmm.set_freepages_low(2);
  EXPECT_EQ(vmm.params().freepages_low, 8);
  vmm.set_freepages_low(100);
  EXPECT_EQ(vmm.params().freepages_low, 16);

  // high never drops below low.
  vmm.set_freepages_high(4);
  EXPECT_EQ(vmm.params().freepages_high, 16);
  vmm.set_freepages_high(64);
  EXPECT_EQ(vmm.params().freepages_high, 64);
}

// ---------------------------------------------------------------------------
// Scenario keys

TEST(ControlScenario, ParsesAutotuneAndPolicyKeys) {
  std::istringstream in(R"(
[defaults]
app = IS
class = W
autotune = true
autotune_controller = hill-climb
autotune_interval_s = 0.5
autotune_policy = true
reclaim_policy = s3-fifo
reclaim_batch = 64
max_prefetch_run = 256

[run]
label = tuned
)");
  const auto configs = parse_scenario(in);
  ASSERT_EQ(configs.size(), 1u);
  const ExperimentConfig& c = configs[0];
  EXPECT_TRUE(c.autotune);
  EXPECT_EQ(c.autotune_controller, "hill-climb");
  EXPECT_EQ(c.autotune_interval, kSecond / 2);
  EXPECT_TRUE(c.autotune_policy);
  EXPECT_EQ(c.reclaim_policy, "s3-fifo");
  EXPECT_EQ(c.reclaim_batch, 64);
  EXPECT_EQ(c.max_prefetch_run, 256);
}

// ---------------------------------------------------------------------------
// End-to-end runs

ExperimentConfig small_config() {
  ExperimentConfig config;
  config.app = NpbApp::kIS;
  config.cls = NpbClass::kW;
  config.nodes = 1;
  config.instances = 2;
  config.node_memory_mb = 64.0;
  config.usable_memory_mb = 22.0;
  config.quantum = 4 * kSecond;
  // The golden-run scale: long enough that every switch pages (the signals
  // the controllers react to), short enough to stay a unit test.
  config.iterations_scale = 0.25;
  config.policy = PolicySet::parse("orig");
  return config;
}

TEST(ControlRuns, EveryReclaimPolicyCompletesGangAndBatchRuns) {
  for (std::string_view name : reclaim_policy_names()) {
    SCOPED_TRACE(std::string("policy ") + std::string(name));
    ExperimentConfig config = small_config();
    config.reclaim_policy = std::string(name);
    const RunOutcome gang = run_gang(config);
    EXPECT_GT(gang.makespan, 0);
    EXPECT_EQ(gang.jobs_failed, 0);
    config.batch_mode = true;
    const RunOutcome batch = run_batch(config);
    EXPECT_GT(batch.makespan, 0);
    EXPECT_EQ(batch.jobs_failed, 0);
  }
}

TEST(ControlRuns, AutotuneRunsTickAndAdjustUnderPressure) {
  for (const char* controller : {"dyn-thresh", "hill-climb"}) {
    SCOPED_TRACE(controller);
    ExperimentConfig config = small_config();
    config.autotune = true;
    config.autotune_controller = controller;
    config.autotune_interval = kSecond;
    const RunOutcome out = run_gang(config);
    EXPECT_GT(out.makespan, 0);
    EXPECT_GT(out.autotune_ticks, 0u);
    EXPECT_GT(out.autotune_adjustments, 0u);
  }
}

/// RunOutcome equality on everything the control plane could disturb.
void expect_same_run(const RunOutcome& a, const RunOutcome& b,
                     const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.major_faults, b.major_faults);
  EXPECT_EQ(a.pages_swapped_in, b.pages_swapped_in);
  EXPECT_EQ(a.pages_swapped_out, b.pages_swapped_out);
  EXPECT_EQ(a.false_evictions, b.false_evictions);
  EXPECT_EQ(a.switches, b.switches);
  EXPECT_EQ(a.autotune_ticks, b.autotune_ticks);
  EXPECT_EQ(a.autotune_adjustments, b.autotune_adjustments);
  EXPECT_EQ(a.autotune_policy_switches, b.autotune_policy_switches);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_EQ(a.jobs[j].completion, b.jobs[j].completion);
    EXPECT_EQ(a.jobs[j].major_faults, b.jobs[j].major_faults);
  }
}

TEST(ControlRuns, AutotuneOffIsBitIdenticalToDefaultConfig) {
  const RunOutcome base = run_gang(small_config());

  // Explicit defaults plus differing latent settings: with autotune off and
  // clock-lru named, nothing may change.
  ExperimentConfig config = small_config();
  config.autotune = false;
  config.autotune_controller = "hill-climb";
  config.autotune_interval = 250 * kMillisecond;
  config.autotune_policy = true;
  config.reclaim_policy = "clock-lru";
  const RunOutcome out = run_gang(config);
  expect_same_run(base, out, "autotune off must be inert");
  EXPECT_EQ(out.autotune_ticks, 0u);
  EXPECT_EQ(out.autotune_adjustments, 0u);
}

// Golden pins with autotune on: the control plane is deterministic, so these
// reproduce bit for bit on every platform. Drift means controller behaviour
// changed — update in the same commit, explaining why.
TEST(ControlGolden, AutotunedRunsArePinned) {
  struct Pin {
    const char* controller;
    bool tune_policy;
    SimTime makespan;
    std::uint64_t major_faults;
    std::uint64_t ticks;
  };
  // Reference: the same config with autotune off pins at makespan
  // 36857718138 / 3376 major faults (test_golden_run "orig"). Dyn-thresh
  // cuts both roughly in half on this trace; hill-climb's probing loses to
  // the bursty objective here (and the pin documents that honestly).
  const Pin pins[] = {
      {"dyn-thresh", false, 21660462197, 1606, 21},
      {"dyn-thresh", true, 25792152208, 2093, 25},
      {"hill-climb", false, 68085301780, 7210, 68},
  };
  for (const Pin& pin : pins) {
    SCOPED_TRACE(std::string(pin.controller) +
                 (pin.tune_policy ? "+policy" : ""));
    ExperimentConfig config = small_config();
    config.autotune = true;
    config.autotune_controller = pin.controller;
    config.autotune_policy = pin.tune_policy;
    const RunOutcome out = run_gang(config);
    EXPECT_EQ(out.makespan, pin.makespan);
    EXPECT_EQ(out.major_faults, pin.major_faults);
    EXPECT_EQ(out.autotune_ticks, pin.ticks);
  }
}

TEST(ControlDeterminism, AutotunedSweepIsThreadCountIndependent) {
  std::vector<ExperimentConfig> configs;
  for (const char* controller : {"dyn-thresh", "hill-climb"}) {
    for (const char* policy : {"clock-lru", "mglru", "s3-fifo"}) {
      ExperimentConfig config = small_config();
      config.autotune = true;
      config.autotune_controller = controller;
      config.reclaim_policy = policy;
      configs.push_back(config);
    }
  }
  configs[0].autotune_policy = true;  // one run that switches policies live

  const std::function<RunOutcome(const ExperimentConfig&)> fn = run_config;
  const auto serial = parallel_map<RunOutcome>(configs, fn, 1);
  for (unsigned threads : {2u, 8u}) {
    const auto parallel = parallel_map<RunOutcome>(configs, fn, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      expect_same_run(serial[i], parallel[i],
                      "config " + std::to_string(i) + " at " +
                          std::to_string(threads) + " threads");
    }
  }
}

// ---------------------------------------------------------------------------
// Chaos: control plane under injected faults

TEST(ControlChaos, KnobsStayBoundedAndMemoryIsConservedUnderFaults) {
  constexpr int kNodes = 2;
  NodeParams node_params;
  node_params.vmm.total_frames = 512;
  node_params.vmm.freepages_min = 8;
  node_params.vmm.freepages_low = 12;
  node_params.vmm.freepages_high = 16;
  node_params.disk.num_blocks = 1 << 16;

  FaultPlan plan;
  plan.add(FaultSpec::parse("disk_transient start_s=1 end_s=30 p=0.02"));

  Cluster cluster(kNodes, node_params, NetParams{}, /*seed=*/7, plan);
  GangParams params;
  params.quantum = 2 * kSecond;
  GangScheduler scheduler(cluster, params);

  std::vector<std::unique_ptr<Process>> procs;
  auto add_job = [&](const std::string& name, const std::vector<int>& nodes,
                     std::int64_t pages, std::int64_t iterations) {
    Job& job = scheduler.create_job(name);
    for (int n : nodes) {
      SweepOptions options;
      options.pages = pages;
      options.iterations = iterations;
      options.compute_per_touch = 20 * kMicrosecond;
      const Pid pid = cluster.node(n).vmm().create_process(pages);
      procs.push_back(std::make_unique<Process>(
          name + ":" + std::to_string(n), pid, make_sweep_program(options)));
      cluster.node(n).cpu().attach(*procs.back());
      job.add_process(n, *procs.back());
    }
  };
  add_job("wide-a", {0, 1}, 300, 2000);
  add_job("wide-b", {0, 1}, 300, 2000);

  ControlPlaneParams pparams;
  pparams.controller = "hill-climb";
  pparams.interval = 500 * kMillisecond;
  pparams.tune_policy = true;
  ControlPlane plane(cluster, scheduler, pparams);

  scheduler.start();
  plane.start();
  const bool finished = cluster.sim().run_until(
      [&] { return scheduler.all_finished(); }, 30 * kMinute);
  EXPECT_TRUE(finished);

  // The plane stops ticking once the schedule drains: the queue quiesces.
  (void)cluster.sim().run_until([] { return false; },
                                cluster.sim().now() + 5 * kMinute);
  EXPECT_EQ(cluster.sim().pending_events(), 0u);

  EXPECT_GT(plane.stats().ticks, 0u);

  // Every knob ends inside its declared bounds despite fault-driven signal
  // swings, and surviving nodes conserve frames and swap slots.
  for (int n = 0; n < kNodes; ++n) {
    KnobRegistry& knobs = plane.knobs(n);
    for (std::size_t i = 0; i < knobs.size(); ++i) {
      const KnobSpec& spec = knobs.spec(i);
      const double v = knobs.get(i);
      EXPECT_GE(v, spec.min) << "node " << n << " knob " << spec.name;
      EXPECT_LE(v, spec.max) << "node " << n << " knob " << spec.name;
    }
    if (!cluster.node_alive(n)) continue;
    auto& vmm = cluster.node(n).vmm();
    EXPECT_EQ(vmm.free_frames(), vmm.frames().usable_frames()) << "node " << n;
    EXPECT_EQ(cluster.node(n).swap().used_slots(), 0) << "node " << n;
  }
}

}  // namespace
}  // namespace apsim
