// Tests for the batched touch engine: golden page_at values pinning the
// reference-string addressing (all four patterns, both zipf regimes), the
// prepared TouchPlan agreeing with AccessChunk, bulk-vs-scalar equivalence
// (direct Vmm::touch_run fuzz and full CPU-executor runs under memory
// pressure), and residency-cache invalidation across the evict, reclaim,
// writeback, tier, prefetch and fault-injection paths.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "mem/vmm.hpp"
#include "proc/cpu.hpp"
#include "tier/tier_manager.hpp"
#include "workloads/generator.hpp"

namespace apsim {
namespace {

// ---------------------------------------------------------------------------
// Golden addressing values

/// Fixed chunk shape shared by the golden tests: values below were produced
/// by this exact configuration and pin the addressing functions — any change
/// to touch_hash, zipf_rank or the pattern arithmetic must show up here.
AccessChunk golden_chunk(AccessChunk::Pattern pattern, double theta = 0.8) {
  AccessChunk c;
  c.pattern = pattern;
  c.region_start = 1000;
  c.region_pages = 97;
  c.touches = 100000;
  c.seed = 12345;
  c.stride = 7;
  c.theta = theta;
  return c;
}

constexpr std::int64_t kGoldenIdx[] = {0, 1, 2, 42, 96, 97, 1000, 99999};

void expect_golden(const AccessChunk& chunk, const std::int64_t (&want)[8]) {
  for (int k = 0; k < 8; ++k) {
    EXPECT_EQ(chunk.page_at(kGoldenIdx[k]), want[k]) << "index " << kGoldenIdx[k];
  }
  // The prepared plan must address identically to the chunk.
  const TouchPlan plan = chunk.prepare();
  for (int k = 0; k < 8; ++k) {
    EXPECT_EQ(plan.page_at(kGoldenIdx[k]), want[k]) << "index " << kGoldenIdx[k];
  }
}

TEST(TouchGolden, Sequential) {
  auto c = golden_chunk(AccessChunk::Pattern::kSequential);
  expect_golden(c, {1000, 1001, 1002, 1042, 1096, 1000, 1030, 1089});
}

TEST(TouchGolden, Strided) {
  auto c = golden_chunk(AccessChunk::Pattern::kStrided);
  expect_golden(c, {1000, 1007, 1014, 1003, 1090, 1000, 1016, 1041});
}

TEST(TouchGolden, Random) {
  auto c = golden_chunk(AccessChunk::Pattern::kRandom);
  expect_golden(c, {1071, 1027, 1032, 1036, 1035, 1000, 1066, 1030});
}

TEST(TouchGolden, ZipfTheta08) {
  auto c = golden_chunk(AccessChunk::Pattern::kZipf, 0.8);
  expect_golden(c, {1035, 1043, 1030, 1084, 1010, 1000, 1062, 1031});
}

TEST(TouchGolden, ZipfTheta10) {
  // theta == 1.0 takes the harmonic/exponential special case.
  auto c = golden_chunk(AccessChunk::Pattern::kZipf, 1.0);
  expect_golden(c, {1023, 1030, 1020, 1078, 1005, 1000, 1050, 1020});
}

TEST(TouchGolden, ZipfHnCacheSurvivesParameterChange) {
  // The lazily-filled harmonic cache must be keyed on (region_pages, theta):
  // mutating either must not reuse the stale constant.
  auto c = golden_chunk(AccessChunk::Pattern::kZipf, 0.8);
  const VPage before = c.page_at(42);
  c.theta = 1.0;
  auto fresh = golden_chunk(AccessChunk::Pattern::kZipf, 1.0);
  EXPECT_EQ(c.page_at(42), fresh.page_at(42));
  c.theta = 0.8;
  EXPECT_EQ(c.page_at(42), before);
  c.region_pages = 53;
  auto small = golden_chunk(AccessChunk::Pattern::kZipf, 0.8);
  small.region_pages = 53;
  EXPECT_EQ(c.page_at(42), small.page_at(42));
}

TEST(TouchGolden, PreparedPlanMatchesChunkEverywhere) {
  for (const auto pattern :
       {AccessChunk::Pattern::kSequential, AccessChunk::Pattern::kStrided,
        AccessChunk::Pattern::kRandom, AccessChunk::Pattern::kZipf}) {
    for (const double theta : {0.8, 1.0}) {
      AccessChunk c = golden_chunk(pattern, theta);
      const TouchPlan plan = c.prepare();
      for (std::int64_t i = 0; i < 500; ++i) {
        ASSERT_EQ(plan.page_at(i), c.page_at(i))
            << "pattern " << static_cast<int>(pattern) << " theta " << theta
            << " i " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Fixtures

VmmParams small_params() {
  VmmParams p;
  p.total_frames = 128;
  p.freepages_min = 8;
  p.freepages_low = 12;
  p.freepages_high = 16;
  p.page_cluster = 8;
  return p;
}

/// One full memory stack; the equivalence tests run two of these in
/// lock-step (identical construction order, hence identical RNG streams).
struct Stack {
  explicit Stack(VmmParams params = small_params())
      : vmm(sim, swap, params) {}

  Simulator sim;
  Disk disk{sim, DiskParams{.num_blocks = 1 << 16}};
  SwapDevice swap{disk, 0, 1 << 16};
  Vmm vmm;

  bool sync_fault(Pid pid, VPage v, bool write = false) {
    bool done = false;
    vmm.fault(pid, v, write, [&] { done = true; });
    sim.run();
    return done;
  }

  void populate(Pid pid, VPage begin, VPage end, bool write = true) {
    for (VPage v = begin; v < end; ++v) {
      if (!vmm.touch(pid, v, write)) {
        ASSERT_TRUE(sync_fault(pid, v, write));
      }
    }
  }

  void force_free(std::int64_t target) {
    bool done = false;
    vmm.request_free_frames(target, [&] { done = true; });
    sim.run();
    ASSERT_TRUE(done);
  }
};

/// Ground truth for region_fully_resident: a fresh page-table scan.
bool scan_fully_resident(const AddressSpace& as, VPage start,
                         std::int64_t pages) {
  for (VPage v = start; v < start + pages; ++v) {
    if (!as.page_table().at(v).present()) return false;
  }
  return true;
}

void expect_equal_spaces(const AddressSpace& a, const AddressSpace& b) {
  ASSERT_EQ(a.num_pages(), b.num_pages());
  EXPECT_EQ(a.resident_pages(), b.resident_pages());
  EXPECT_EQ(a.dirty_pages(), b.dirty_pages());
  EXPECT_EQ(a.ws_pages(), b.ws_pages());
  EXPECT_EQ(a.stats().minor_faults, b.stats().minor_faults);
  EXPECT_EQ(a.stats().major_faults, b.stats().major_faults);
  EXPECT_EQ(a.stats().pages_swapped_in, b.stats().pages_swapped_in);
  EXPECT_EQ(a.stats().pages_swapped_out, b.stats().pages_swapped_out);
  EXPECT_EQ(a.stats().pages_clean_dropped, b.stats().pages_clean_dropped);
  EXPECT_EQ(a.stats().false_evictions, b.stats().false_evictions);
  for (VPage v = 0; v < a.num_pages(); ++v) {
    const auto x = a.page_table().at(v);
    const auto y = b.page_table().at(v);
    ASSERT_EQ(x.present(), y.present()) << "page " << v;
    ASSERT_EQ(x.frame(), y.frame()) << "page " << v;
    ASSERT_EQ(x.slot(), y.slot()) << "page " << v;
    ASSERT_EQ(x.last_ref(), y.last_ref()) << "page " << v;
    ASSERT_EQ(x.ws_seen(), y.ws_seen()) << "page " << v;
    ASSERT_EQ(x.referenced(), y.referenced()) << "page " << v;
    ASSERT_EQ(x.dirty(), y.dirty()) << "page " << v;
    ASSERT_EQ(x.age(), y.age()) << "page " << v;
  }
}

// ---------------------------------------------------------------------------
// Bulk vs scalar: direct Vmm::touch_run fuzz

TEST(TouchRunEquivalence, FuzzAgainstScalarLoop) {
  // Two identical stacks: A consumes plans through touch_run, B through the
  // scalar touch() loop. Every observable — consumed count, fault page, the
  // full page tables and all counters — must stay bit-identical across
  // randomized plans, partial residency and resumed runs.
  Stack a;
  Stack b;
  const std::int64_t kPages = 256;
  const Pid pid_a = a.vmm.create_process(kPages);
  const Pid pid_b = b.vmm.create_process(kPages);
  std::mt19937_64 rng(0xC0FFEE);

  // Partial residency: fault in a pseudo-random subset, same on both.
  for (VPage v = 0; v < kPages; ++v) {
    if ((rng() & 3) != 0) {  // ~75% resident
      ASSERT_TRUE(a.sync_fault(pid_a, v, true));
      ASSERT_TRUE(b.sync_fault(pid_b, v, true));
    }
  }

  auto& as_a = a.vmm.space(pid_a);
  auto& as_b = b.vmm.space(pid_b);
  const TouchPattern patterns[] = {TouchPattern::kSequential,
                                   TouchPattern::kStrided,
                                   TouchPattern::kRandom, TouchPattern::kZipf};
  for (int round = 0; round < 200; ++round) {
    TouchPlan plan;
    plan.pattern = patterns[rng() % 4];
    plan.region_pages = 1 + static_cast<std::int64_t>(rng() % kPages);
    plan.region_start =
        static_cast<VPage>(rng() % (kPages - plan.region_pages + 1));
    plan.touches = 1 << 20;
    plan.stride = static_cast<std::int64_t>(rng() % 300);  // 0 included
    plan.write = (rng() & 1) != 0;
    plan.seed = rng();
    plan.theta = (rng() & 1) != 0 ? 1.0 : 0.8;
    if (plan.pattern == TouchPattern::kZipf) {
      plan.zipf_hn = zipf_harmonic(plan.region_pages, plan.theta);
    }
    const auto begin = static_cast<std::int64_t>(rng() % 5000);
    const auto budget = static_cast<std::int64_t>(1 + rng() % 700);

    const Vmm::TouchRun run = a.vmm.touch_run(as_a, plan, begin, budget);

    // Scalar reference on stack B.
    std::int64_t consumed = budget;
    VPage fault_page = -1;
    bool faulted = false;
    for (std::int64_t k = 0; k < budget; ++k) {
      const VPage v = plan.page_at(begin + k);
      if (!b.vmm.touch(as_b, v, plan.write)) {
        consumed = k;
        fault_page = v;
        faulted = true;
        break;
      }
    }

    ASSERT_EQ(run.consumed, consumed) << "round " << round;
    ASSERT_EQ(run.faulted, faulted) << "round " << round;
    ASSERT_EQ(run.fault_page, faulted ? fault_page : -1) << "round " << round;
    // Occasionally fault the missing page in (both stacks), advance the
    // epoch, or evict — so later rounds see changed residency.
    if (faulted && (rng() & 1) != 0) {
      ASSERT_TRUE(a.sync_fault(pid_a, fault_page, plan.write));
      ASSERT_TRUE(b.sync_fault(pid_b, fault_page, plan.write));
    }
    if (round % 37 == 17) {
      a.vmm.begin_ws_epoch(pid_a);
      b.vmm.begin_ws_epoch(pid_b);
    }
    if (round % 51 == 23) {
      a.force_free(40);
      b.force_free(40);
    }
  }
  expect_equal_spaces(as_a, as_b);
  EXPECT_EQ(a.sim.now(), b.sim.now());
}

TEST(TouchRunEquivalence, FastForwardStridedOrbitMatchesScalar) {
  // stride sharing a factor with region_pages: the orbit period is shorter
  // than the budget, so the fast path applies fewer distinct touches — the
  // result must still match the scalar loop exactly.
  Stack a;
  Stack b;
  const std::int64_t kPages = 96;
  const Pid pid_a = a.vmm.create_process(kPages);
  const Pid pid_b = b.vmm.create_process(kPages);
  a.populate(pid_a, 0, kPages);
  b.populate(pid_b, 0, kPages);
  auto& as_a = a.vmm.space(pid_a);
  auto& as_b = b.vmm.space(pid_b);

  for (const std::int64_t stride : {0, 1, 4, 6, 12, 96, 97, 192}) {
    TouchPlan plan;
    plan.pattern = stride == 1 ? TouchPattern::kSequential
                               : TouchPattern::kStrided;
    plan.region_start = 0;
    plan.region_pages = kPages;
    plan.touches = 1 << 20;
    plan.stride = stride;
    plan.write = (stride % 2) == 0;

    const Vmm::TouchRun run = a.vmm.touch_run(as_a, plan, 13, 500);
    EXPECT_EQ(run.consumed, 500);
    EXPECT_FALSE(run.faulted);
    for (std::int64_t k = 0; k < 500; ++k) {
      ASSERT_TRUE(b.vmm.touch(as_b, plan.page_at(13 + k), plan.write));
    }
    expect_equal_spaces(as_a, as_b);
  }
}

// ---------------------------------------------------------------------------
// Bulk vs scalar: whole CPU-executor runs

void run_program_pair(std::unique_ptr<Program> prog_a,
                      std::unique_ptr<Program> prog_b) {
  Stack a;
  Stack b;
  CpuParams batched;
  batched.batched_touch = true;
  CpuParams scalar;
  scalar.batched_touch = false;
  Cpu cpu_a(a.sim, a.vmm, batched);
  Cpu cpu_b(b.sim, b.vmm, scalar);

  const Pid pid_a = a.vmm.create_process(400);
  const Pid pid_b = b.vmm.create_process(400);
  Process proc_a("a", pid_a, std::move(prog_a));
  Process proc_b("b", pid_b, std::move(prog_b));
  cpu_a.attach(proc_a);
  cpu_b.attach(proc_b);
  cpu_a.cont_process(proc_a);
  cpu_b.cont_process(proc_b);
  a.sim.run();
  b.sim.run();

  ASSERT_EQ(proc_a.state(), ProcState::kFinished);
  ASSERT_EQ(proc_b.state(), ProcState::kFinished);
  // Full observable equality: virtual time, scheduling, accounting, memory.
  EXPECT_EQ(a.sim.now(), b.sim.now());
  EXPECT_EQ(a.sim.events_dispatched(), b.sim.events_dispatched());
  EXPECT_EQ(proc_a.stats().cpu_time, proc_b.stats().cpu_time);
  EXPECT_EQ(proc_a.stats().fault_wait, proc_b.stats().fault_wait);
  EXPECT_EQ(proc_a.stats().finished_at, proc_b.stats().finished_at);
  EXPECT_EQ(proc_a.stats().slices, proc_b.stats().slices);
  EXPECT_EQ(proc_a.stats().faults_taken, proc_b.stats().faults_taken);
  expect_equal_spaces(a.vmm.space(pid_a), b.vmm.space(pid_b));
  EXPECT_EQ(a.disk.stats().blocks_written, b.disk.stats().blocks_written);
}

TEST(CpuBatchedVsScalar, SweepUnderMemoryPressure) {
  // 400-page footprint on 128 frames: the run faults, evicts and re-faults
  // throughout — both engines must produce the identical execution.
  SweepOptions options;
  options.pages = 400;
  options.iterations = 3;
  options.compute_per_touch = 10 * kMicrosecond;
  run_program_pair(make_sweep_program(options), make_sweep_program(options));
}

TEST(CpuBatchedVsScalar, HotColdUnderMemoryPressure) {
  HotColdOptions options;
  options.pages = 400;
  options.iterations = 4;
  options.touches_per_iteration = 1500;
  options.seed = 77;
  run_program_pair(make_hot_cold_program(options),
                   make_hot_cold_program(options));
}

TEST(CpuBatchedVsScalar, RandomUnderMemoryPressure) {
  RandomOptions options;
  options.pages = 400;
  options.iterations = 4;
  options.touches_per_iteration = 1500;
  options.seed = 5;
  run_program_pair(make_random_program(options), make_random_program(options));
}

// ---------------------------------------------------------------------------
// Residency-cache invalidation

struct ResidencyFixture : ::testing::Test {
  Stack s;
  Pid pid = s.vmm.create_process(256);

  bool probe(VPage start, std::int64_t pages) {
    auto& as = s.vmm.space(pid);
    const bool got = s.vmm.region_fully_resident(as, start, pages);
    // Whatever the cache answers must agree with a fresh page-table scan.
    EXPECT_EQ(got, scan_fully_resident(as, start, pages));
    return got;
  }
};

TEST_F(ResidencyFixture, EvictionInvalidatesAndRefaultRestores) {
  s.populate(pid, 0, 100);
  EXPECT_TRUE(probe(0, 100));
  s.force_free(64);  // evicts part of the region
  EXPECT_FALSE(probe(0, 100));
  s.populate(pid, 0, 100);  // fault everything back in
  EXPECT_TRUE(probe(0, 100));
}

TEST_F(ResidencyFixture, WritebackKeepsPagesResident) {
  s.populate(pid, 0, 100);
  EXPECT_TRUE(probe(0, 100));
  std::int64_t started = -1;
  s.vmm.writeback_dirty(pid, 50, IoPriority::kBackground,
                        [&](std::int64_t n) { started = n; });
  s.sim.run();
  EXPECT_GT(started, 0);
  // Background writing does not unmap: the region must still test resident.
  EXPECT_TRUE(probe(0, 100));
  // ... but a subsequent eviction (now cheap: clean swap copies) must not.
  s.force_free(64);
  EXPECT_FALSE(probe(0, 100));
}

TEST_F(ResidencyFixture, PrefetchRemapsAndRevalidates) {
  s.populate(pid, 0, 100);
  s.force_free(64);
  ASSERT_FALSE(probe(0, 100));
  bool done = false;
  s.vmm.prefetch(pid, {{0, 100}}, [&] { done = true; });
  s.sim.run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(probe(0, 100));
}

TEST_F(ResidencyFixture, WatchTableEvictionStaysCorrect) {
  // More distinct regions than watch slots: early watches get recycled, and
  // a later probe of the first region must re-register and still be exact.
  s.populate(pid, 0, 100);
  ASSERT_TRUE(probe(0, 100));
  for (VPage start = 0; start < 12; ++start) {
    EXPECT_TRUE(probe(start, 20));  // 12 regions > 8 watch slots
  }
  s.force_free(64);  // invalidates whatever is still watched — and the rest
  EXPECT_FALSE(probe(0, 100));
  s.populate(pid, 0, 100);
  EXPECT_TRUE(probe(0, 100));
  for (VPage start = 0; start < 12; ++start) {
    EXPECT_TRUE(probe(start, 20));
  }
}

TEST_F(ResidencyFixture, EpochAndWsAccountingUnaffectedByProbes) {
  s.populate(pid, 0, 50);
  s.vmm.begin_ws_epoch(pid);
  EXPECT_EQ(s.vmm.space(pid).ws_pages(), 0);
  (void)probe(0, 50);
  // Probing must not touch pages: the working set stays empty.
  EXPECT_EQ(s.vmm.space(pid).ws_pages(), 0);
  TouchPlan plan;
  plan.pattern = TouchPattern::kSequential;
  plan.region_start = 0;
  plan.region_pages = 50;
  plan.touches = 1 << 20;
  const auto run = s.vmm.touch_run(s.vmm.space(pid), plan, 0, 50);
  EXPECT_EQ(run.consumed, 50);
  EXPECT_EQ(s.vmm.space(pid).ws_pages(), 50);
}

TEST(ResidencyTier, TierEvictionInvalidates) {
  // With the compressed tier interposed, evictions route through the pool;
  // the unmap bookkeeping must invalidate the cache all the same.
  Stack s;
  TierParams tp;
  tp.pool_mb = 1.0;
  tp.ratio_model = TierRatioModel::kText;
  TierManager tier(s.sim, s.swap, tp);
  s.vmm.set_tier(&tier);
  const Pid pid = s.vmm.create_process(256);
  s.populate(pid, 0, 100);
  auto& as = s.vmm.space(pid);
  EXPECT_TRUE(s.vmm.region_fully_resident(as, 0, 100));
  s.force_free(64);
  EXPECT_FALSE(s.vmm.region_fully_resident(as, 0, 100));
  EXPECT_EQ(s.vmm.region_fully_resident(as, 0, 100),
            scan_fully_resident(as, 0, 100));
  s.populate(pid, 0, 100);
  EXPECT_TRUE(s.vmm.region_fully_resident(as, 0, 100));
}

TEST(ResidencyFault, InjectedDiskFaultsKeepCacheExact) {
  // Transient disk failures make eviction writes and swap reads fail and
  // retry; through all of it the cache must keep agreeing with the page
  // table.
  Stack s;
  FaultPlan plan;
  plan.add(FaultSpec::parse("disk_transient node=0 start_s=0 end_s=3600 p=0.1"));
  FaultInjector injector(s.sim, plan);
  s.disk.set_fault_injector(&injector, 0);

  const Pid pid = s.vmm.create_process(256);
  s.populate(pid, 0, 100);
  auto& as = s.vmm.space(pid);
  EXPECT_TRUE(s.vmm.region_fully_resident(as, 0, 100));
  for (int round = 0; round < 5; ++round) {
    s.force_free(64);
    EXPECT_EQ(s.vmm.region_fully_resident(as, 0, 100),
              scan_fully_resident(as, 0, 100));
    s.populate(pid, 0, 100);
    EXPECT_EQ(s.vmm.region_fully_resident(as, 0, 100),
              scan_fully_resident(as, 0, 100));
    EXPECT_TRUE(s.vmm.region_fully_resident(as, 0, 100));
  }
}

TEST(ResidencyRelease, ReleaseDropsWatchesSafely) {
  // Releasing a process with active watches must not leave the counters
  // pointing at torn-down state; a second process reusing the frames works.
  Stack s;
  const Pid first = s.vmm.create_process(128);
  s.populate(first, 0, 100);
  EXPECT_TRUE(s.vmm.region_fully_resident(s.vmm.space(first), 0, 100));
  s.vmm.release_process(first);
  s.sim.run();
  const Pid second = s.vmm.create_process(128);
  s.populate(second, 0, 100);
  EXPECT_TRUE(s.vmm.region_fully_resident(s.vmm.space(second), 0, 100));
}

}  // namespace
}  // namespace apsim
