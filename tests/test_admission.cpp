// Tests for the memory-aware admission-control extension and the extra
// replacement-policy baselines (exact LRU, FIFO).

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "gang/gang_scheduler.hpp"
#include "mem/reclaim_extra.hpp"
#include "workloads/generator.hpp"

namespace apsim {
namespace {

struct AdmissionFixture : ::testing::Test {
  static NodeParams node_params() {
    NodeParams n;
    n.vmm.total_frames = 1000;
    n.vmm.freepages_min = 8;
    n.vmm.freepages_low = 12;
    n.vmm.freepages_high = 16;
    n.disk.num_blocks = 1 << 15;
    return n;
  }

  AdmissionFixture() : cluster(1, node_params()) {}

  Job& add_job(GangScheduler& scheduler, const std::string& name,
               std::int64_t ws_pages, std::int64_t iterations) {
    Job& job = scheduler.create_job(name);
    SweepOptions options;
    options.pages = ws_pages;
    options.iterations = iterations;
    options.compute_per_touch = 20 * kMicrosecond;
    const Pid pid = cluster.node(0).vmm().create_process(ws_pages);
    procs.push_back(std::make_unique<Process>(name, pid,
                                              make_sweep_program(options)));
    cluster.node(0).cpu().attach(*procs.back());
    job.add_process(0, *procs.back());
    job.declared_ws_pages = ws_pages;
    return job;
  }

  Cluster cluster;
  std::vector<std::unique_ptr<Process>> procs;
};

TEST_F(AdmissionFixture, OvercommittingJobWaitsUntilMemoryFrees) {
  GangParams params;
  params.quantum = kSecond;
  params.admission_control = true;
  GangScheduler scheduler(cluster, params);
  Job& big = add_job(scheduler, "big", 600, 200);
  Job& other = add_job(scheduler, "other", 600, 200);  // 1200 > 900 budget
  scheduler.start();
  EXPECT_TRUE(scheduler.admitted(big));
  EXPECT_FALSE(scheduler.admitted(other));
  EXPECT_EQ(procs[1]->state(), ProcState::kStopped);

  ASSERT_TRUE(cluster.sim().run_until(
      [&] { return scheduler.all_finished(); }, 30 * kMinute));
  EXPECT_TRUE(scheduler.admitted(other));  // admitted after big exited
  // Strictly serialized: the waiting job started only after the first done.
  EXPECT_GT(other.finished_at(), 2 * big.finished_at() - kSecond);
  // And no switch paging happened at all.
  EXPECT_EQ(cluster.node(0).vmm().space(procs[1]->pid()).stats().major_faults,
            0u);
}

TEST_F(AdmissionFixture, FittingJobsTimeshareNormally) {
  GangParams params;
  params.quantum = kSecond;
  params.admission_control = true;
  GangScheduler scheduler(cluster, params);
  Job& a = add_job(scheduler, "a", 300, 400);
  Job& b = add_job(scheduler, "b", 300, 400);  // 600 <= 900 budget
  scheduler.start();
  EXPECT_TRUE(scheduler.admitted(a));
  EXPECT_TRUE(scheduler.admitted(b));
  ASSERT_TRUE(cluster.sim().run_until(
      [&] { return scheduler.all_finished(); }, 30 * kMinute));
  // Timeshared: completions are interleaved, not back to back.
  EXPECT_LT(b.finished_at(), 2 * a.finished_at());
  EXPECT_GT(scheduler.switches(), 0);
}

TEST_F(AdmissionFixture, DisabledAdmissionAdmitsEverything) {
  GangParams params;
  params.quantum = kSecond;
  params.admission_control = false;
  GangScheduler scheduler(cluster, params);
  Job& big = add_job(scheduler, "big", 600, 50);
  Job& other = add_job(scheduler, "other", 600, 50);
  scheduler.start();
  EXPECT_TRUE(scheduler.admitted(big));
  EXPECT_TRUE(scheduler.admitted(other));
}

struct PolicyBaselineFixture : ::testing::Test {
  Simulator sim;
  Disk disk{sim, DiskParams{.num_blocks = 1 << 14}};
  SwapDevice swap{disk, 0, 1 << 14};
  Vmm vmm{sim, swap, VmmParams{.total_frames = 256,
                               .freepages_min = 8,
                               .freepages_low = 12,
                               .freepages_high = 16}};

  Pid populated(std::int64_t pages) {
    const Pid pid = vmm.create_process(pages);
    for (VPage v = 0; v < pages; ++v) {
      if (!vmm.touch(pid, v, true)) {
        bool done = false;
        vmm.fault(pid, v, true, [&] { done = true; });
        sim.run();
        EXPECT_TRUE(done);
      }
    }
    return pid;
  }
};

TEST_F(PolicyBaselineFixture, ExactLruEvictsGloballyOldest) {
  const Pid a = populated(60);
  const Pid b = populated(60);
  // Age a's pages: advance time and re-touch b only.
  (void)sim.at(sim.now() + kSecond, [&] {
    for (VPage v = 0; v < 60; ++v) {
      EXPECT_TRUE(vmm.touch(b, v, false));
    }
  });
  sim.run();
  ExactLruPolicy policy;
  auto victims = policy.select_victims(vmm, 40);
  ASSERT_EQ(victims.size(), 40u);
  for (const auto& victim : victims) {
    EXPECT_EQ(victim.pid, a) << "LRU must pick the untouched process first";
  }
}

TEST_F(PolicyBaselineFixture, ExactLruIgnoresReferencedBitSecondChance) {
  // Unlike the clock, exact LRU evicts a just-referenced page if it is
  // globally oldest by timestamp ordering of everything else.
  const Pid a = populated(20);
  ExactLruPolicy policy;
  auto victims = policy.select_victims(vmm, 5);
  ASSERT_EQ(victims.size(), 5u);
  for (const auto& victim : victims) {
    EXPECT_EQ(victim.pid, a);
  }
}

TEST_F(PolicyBaselineFixture, FifoCyclesThroughResidentSet) {
  const Pid a = populated(50);
  (void)a;
  FifoPolicy policy;
  auto first = policy.select_victims(vmm, 20);
  ASSERT_EQ(first.size(), 20u);
  auto second = policy.select_victims(vmm, 20);
  ASSERT_EQ(second.size(), 20u);
  // No overlap: the cursor advances.
  for (const auto& v1 : first) {
    for (const auto& v2 : second) {
      EXPECT_FALSE(v1 == v2);
    }
  }
}

TEST_F(PolicyBaselineFixture, BaselinesDriveRealEvictions) {
  for (int which = 0; which < 2; ++which) {
    if (which == 0) {
      vmm.set_reclaim_policy(std::make_unique<ExactLruPolicy>());
    } else {
      vmm.set_reclaim_policy(std::make_unique<FifoPolicy>());
    }
    const Pid pid = populated(100);
    bool done = false;
    vmm.request_free_frames(vmm.free_frames() + 50, [&] { done = true; });
    sim.run();
    ASSERT_TRUE(done);
    EXPECT_LE(vmm.space(pid).resident_pages(), 100 - 40);
    vmm.release_process(pid);
    sim.run();
  }
}

}  // namespace
}  // namespace apsim
