// Unit tests for the VMM: fault paths, read-ahead, watermark reclaim, swap
// cache semantics, prefetch, background writeback, working-set accounting,
// and the eviction observer — the substrate the adaptive mechanisms drive.

#include <gtest/gtest.h>

#include <set>

#include "mem/vmm.hpp"

namespace apsim {
namespace {

struct VmmFixture : ::testing::Test {
  static VmmParams small_params() {
    VmmParams p;
    p.total_frames = 128;
    p.freepages_min = 8;
    p.freepages_low = 12;
    p.freepages_high = 16;
    p.page_cluster = 8;
    return p;
  }

  Simulator sim;
  Disk disk{sim, DiskParams{.num_blocks = 1 << 16}};
  SwapDevice swap{disk, 0, 1 << 16};
  Vmm vmm{sim, swap, small_params()};

  bool sync_fault(Pid pid, VPage v, bool write = false) {
    bool done = false;
    vmm.fault(pid, v, write, [&] { done = true; });
    sim.run();
    return done;
  }

  void populate(Pid pid, VPage begin, VPage end, bool write = true) {
    for (VPage v = begin; v < end; ++v) {
      if (!vmm.touch(pid, v, write)) {
        ASSERT_TRUE(sync_fault(pid, v, write));
      }
    }
  }

  /// Force eviction of everything evictable down to `target` free frames.
  void force_free(std::int64_t target) {
    bool done = false;
    vmm.request_free_frames(target, [&] { done = true; });
    sim.run();
    ASSERT_TRUE(done);
  }
};

TEST_F(VmmFixture, MinorFaultPopulatesPage) {
  const Pid pid = vmm.create_process(64);
  ASSERT_TRUE(sync_fault(pid, 5, false));
  const auto& as = vmm.space(pid);
  const auto pte = as.page_table().at(5);
  EXPECT_TRUE(pte.present());
  EXPECT_TRUE(pte.dirty());  // anonymous pages are born dirty
  EXPECT_TRUE(pte.ever_touched());
  EXPECT_EQ(as.resident_pages(), 1);
  EXPECT_EQ(as.dirty_pages(), 1);
  EXPECT_EQ(as.stats().minor_faults, 1u);
  EXPECT_EQ(as.stats().major_faults, 0u);
}

TEST_F(VmmFixture, TouchMissesWhenNotPresent) {
  const Pid pid = vmm.create_process(64);
  EXPECT_FALSE(vmm.touch(pid, 0, false));
}

TEST_F(VmmFixture, TouchHitUpdatesBits) {
  const Pid pid = vmm.create_process(64);
  ASSERT_TRUE(sync_fault(pid, 0, false));
  EXPECT_TRUE(vmm.touch(pid, 0, false));
  const auto pte = vmm.space(pid).page_table().at(0);
  EXPECT_TRUE(pte.referenced());
}

TEST_F(VmmFixture, EvictionWritesDirtyPagesAndUnmaps) {
  const Pid pid = vmm.create_process(256);
  populate(pid, 0, 120);
  const auto before = vmm.space(pid).resident_pages();
  force_free(64);
  EXPECT_LT(vmm.space(pid).resident_pages(), before);
  EXPECT_GE(vmm.free_frames(), 64);
  EXPECT_GT(vmm.space(pid).stats().pages_swapped_out, 0u);
  EXPECT_GT(disk.stats().blocks_written, 0u);
}

TEST_F(VmmFixture, MajorFaultRestoresEvictedPage) {
  const Pid pid = vmm.create_process(256);
  populate(pid, 0, 120);
  force_free(64);
  // Find an evicted page.
  VPage victim = -1;
  for (VPage v = 0; v < 120; ++v) {
    const auto pte = vmm.space(pid).page_table().at(v);
    if (!pte.present() && pte.slot() != kNoSwapSlot) {
      victim = v;
      break;
    }
  }
  ASSERT_GE(victim, 0);
  ASSERT_TRUE(sync_fault(pid, victim, false));
  const auto pte = vmm.space(pid).page_table().at(victim);
  EXPECT_TRUE(pte.present());
  EXPECT_FALSE(pte.dirty());                 // clean copy from swap
  EXPECT_NE(pte.slot(), kNoSwapSlot);        // swap-cache copy retained
  EXPECT_GT(vmm.space(pid).stats().major_faults, 0u);
  EXPECT_GT(vmm.space(pid).stats().pages_swapped_in, 0u);
}

TEST_F(VmmFixture, ReadAheadBringsNeighbours) {
  const Pid pid = vmm.create_process(256);
  populate(pid, 0, 64);
  force_free(128);  // evict everything (slots stay sequential)
  const auto& as = vmm.space(pid);
  ASSERT_EQ(as.resident_pages(), 0);
  const auto in_before = as.stats().pages_swapped_in;
  ASSERT_TRUE(sync_fault(pid, 30, false));
  // One fault must have pulled a cluster (8), not a single page.
  EXPECT_GE(as.stats().pages_swapped_in - in_before, 4u);
  EXPECT_GT(as.resident_pages(), 1);
  // Only the faulting page is referenced.
  EXPECT_TRUE(as.page_table().at(30).referenced());
}

TEST_F(VmmFixture, WriteTouchInvalidatesSwapCopy) {
  const Pid pid = vmm.create_process(256);
  populate(pid, 0, 100);
  force_free(64);
  VPage victim = -1;
  for (VPage v = 0; v < 100; ++v) {
    if (!vmm.space(pid).page_table().at(v).present()) {
      victim = v;
      break;
    }
  }
  ASSERT_GE(victim, 0);
  ASSERT_TRUE(sync_fault(pid, victim, false));
  const SwapSlot slot = vmm.space(pid).page_table().at(victim).slot();
  ASSERT_NE(slot, kNoSwapSlot);
  ASSERT_TRUE(swap.is_allocated(slot));
  EXPECT_TRUE(vmm.touch(pid, victim, true));  // dirty it
  const auto pte = vmm.space(pid).page_table().at(victim);
  EXPECT_TRUE(pte.dirty());
  EXPECT_EQ(pte.slot(), kNoSwapSlot);
  EXPECT_FALSE(swap.is_allocated(slot));  // slot was released
}

TEST_F(VmmFixture, CleanPagesDropWithoutDiskWrites) {
  const Pid pid = vmm.create_process(256);
  populate(pid, 0, 100);
  force_free(128);  // evict everything: all pages now clean copies in swap
  ASSERT_EQ(vmm.space(pid).resident_pages(), 0);
  // Fault half of them back in, read-only: resident but clean.
  for (VPage v = 0; v < 50; ++v) {
    if (!vmm.space(pid).page_table().at(v).present()) {
      ASSERT_TRUE(sync_fault(pid, v, false));
    }
  }
  ASSERT_EQ(vmm.space(pid).dirty_pages(), 0);
  const auto writes_before = disk.stats().blocks_written;
  const auto drops_before = vmm.space(pid).stats().pages_clean_dropped;
  force_free(128);  // evict them again
  EXPECT_GT(vmm.space(pid).stats().pages_clean_dropped, drops_before);
  // Every page had a valid swap copy: no disk writes needed.
  EXPECT_EQ(disk.stats().blocks_written, writes_before);
}

TEST_F(VmmFixture, PrefetchMapsRecordedRuns) {
  const Pid pid = vmm.create_process(256);
  populate(pid, 0, 100);
  force_free(128);  // evict everything
  ASSERT_EQ(vmm.space(pid).resident_pages(), 0);
  bool done = false;
  vmm.prefetch(pid, {PageRun{0, 50}}, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(vmm.space(pid).resident_pages(), 50);
  for (VPage v = 0; v < 50; ++v) {
    EXPECT_TRUE(vmm.space(pid).page_table().at(v).present()) << v;
  }
}

TEST_F(VmmFixture, PrefetchSkipsResidentAndUnswappedPages) {
  const Pid pid = vmm.create_process(256);
  populate(pid, 0, 10);  // resident, never swapped
  bool done = false;
  const auto reads_before = disk.stats().blocks_read;
  vmm.prefetch(pid, {PageRun{0, 20}}, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(disk.stats().blocks_read, reads_before);  // nothing to read
}

TEST_F(VmmFixture, PrefetchUsesLargeBlockReads) {
  const Pid pid = vmm.create_process(256);
  populate(pid, 0, 100);
  force_free(128);
  const auto services_before = disk.stats().services;
  bool done = false;
  vmm.prefetch(pid, {PageRun{0, 100}}, [&] { done = true; });
  sim.run();
  ASSERT_TRUE(done);
  const auto services = disk.stats().services - services_before;
  // 100 pages must arrive in a handful of transfers, not 100.
  EXPECT_LE(services, 12u);
}

TEST_F(VmmFixture, WritebackCleansWithoutUnmapping) {
  const Pid pid = vmm.create_process(64);
  populate(pid, 0, 40);
  ASSERT_EQ(vmm.space(pid).dirty_pages(), 40);
  std::int64_t started = -1;
  vmm.writeback_dirty(pid, 16, IoPriority::kBackground,
                      [&](std::int64_t n) { started = n; });
  sim.run();
  EXPECT_EQ(started, 16);
  const auto& as = vmm.space(pid);
  EXPECT_EQ(as.resident_pages(), 40);   // still mapped
  EXPECT_EQ(as.dirty_pages(), 24);      // 16 cleaned
  EXPECT_EQ(as.stats().pages_swapped_out, 16u);
  std::int64_t with_slots = 0;
  for (VPage v = 0; v < 40; ++v) {
    const auto pte = as.page_table().at(v);
    if (pte.present() && !pte.dirty() && pte.slot() != kNoSwapSlot) ++with_slots;
  }
  EXPECT_EQ(with_slots, 16);
}

TEST_F(VmmFixture, RedirtyDuringWritebackInvalidatesCopy) {
  const Pid pid = vmm.create_process(64);
  populate(pid, 0, 8);
  vmm.writeback_dirty(pid, 8, IoPriority::kForeground, nullptr);
  // The writes are now in flight; re-dirty page 3 before they complete.
  EXPECT_TRUE(vmm.touch(pid, 3, true));
  sim.run();
  const auto pte = vmm.space(pid).page_table().at(3);
  EXPECT_TRUE(pte.present());
  EXPECT_TRUE(pte.dirty());
  EXPECT_EQ(pte.slot(), kNoSwapSlot);  // stale copy released
  // Its neighbours were cleaned normally.
  EXPECT_FALSE(vmm.space(pid).page_table().at(4).dirty());
  EXPECT_NE(vmm.space(pid).page_table().at(4).slot(), kNoSwapSlot);
}

TEST_F(VmmFixture, WsEpochCountsDistinctPages) {
  const Pid pid = vmm.create_process(64);
  populate(pid, 0, 20);
  vmm.begin_ws_epoch(pid);
  EXPECT_EQ(vmm.space(pid).ws_pages(), 0);
  for (VPage v = 0; v < 10; ++v) EXPECT_TRUE(vmm.touch(pid, v, false));
  for (VPage v = 0; v < 10; ++v) EXPECT_TRUE(vmm.touch(pid, v, true));
  EXPECT_EQ(vmm.space(pid).ws_pages(), 10);  // distinct, not total
  vmm.begin_ws_epoch(pid);
  EXPECT_EQ(vmm.space(pid).ws_pages(), 0);
}

TEST_F(VmmFixture, EvictObserverSeesEvictions) {
  const Pid pid = vmm.create_process(256);
  std::set<VPage> seen;
  vmm.set_evict_observer([&](Pid p, VPage v) {
    EXPECT_EQ(p, pid);
    seen.insert(v);
  });
  populate(pid, 0, 120);
  force_free(64);
  EXPECT_GE(std::ssize(seen), 40);
}

TEST_F(VmmFixture, FalseEvictionDetectedWithinEpoch) {
  const Pid pid = vmm.create_process(256);
  populate(pid, 0, 120);
  force_free(64);  // evicts within the current epoch
  VPage victim = -1;
  for (VPage v = 0; v < 120; ++v) {
    if (!vmm.space(pid).page_table().at(v).present()) {
      victim = v;
      break;
    }
  }
  ASSERT_GE(victim, 0);
  ASSERT_TRUE(sync_fault(pid, victim, false));
  EXPECT_GE(vmm.space(pid).stats().false_evictions, 1u);
  // After an epoch boundary, refaults are not false evictions.
  force_free(64);
  vmm.begin_ws_epoch(pid);
  VPage victim2 = -1;
  for (VPage v = 0; v < 120; ++v) {
    if (!vmm.space(pid).page_table().at(v).present() &&
        vmm.space(pid).page_table().at(v).slot() != kNoSwapSlot) {
      victim2 = v;
      break;
    }
  }
  ASSERT_GE(victim2, 0);
  const auto fe_before = vmm.space(pid).stats().false_evictions;
  ASSERT_TRUE(sync_fault(pid, victim2, false));
  EXPECT_EQ(vmm.space(pid).stats().false_evictions, fe_before);
}

TEST_F(VmmFixture, ReleaseProcessFreesFramesAndSlots) {
  const Pid pid = vmm.create_process(256);
  populate(pid, 0, 100);
  force_free(64);
  const auto used_slots_before = swap.used_slots();
  EXPECT_GT(used_slots_before, 0);
  vmm.release_process(pid);
  sim.run();
  EXPECT_EQ(swap.used_slots(), 0);
  EXPECT_EQ(vmm.free_frames(), vmm.frames().usable_frames());
  EXPECT_FALSE(vmm.space(pid).alive());
}

TEST_F(VmmFixture, RequestFreeFramesImmediateWhenSatisfied) {
  (void)vmm.create_process(16);
  bool done = false;
  vmm.request_free_frames(16, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
}

TEST_F(VmmFixture, ConcurrentFaultsOnSamePagePiggyback) {
  const Pid pid = vmm.create_process(256);
  populate(pid, 0, 64);
  force_free(128);
  ASSERT_FALSE(vmm.space(pid).page_table().at(10).present());
  int resumed = 0;
  const auto reads_before = disk.stats().blocks_read;
  vmm.fault(pid, 10, false, [&] { ++resumed; });
  vmm.fault(pid, 10, true, [&] { ++resumed; });
  sim.run();
  EXPECT_EQ(resumed, 2);
  // The second fault must not have issued a second read of page 10: at most
  // one cluster's worth of blocks.
  EXPECT_LE(disk.stats().blocks_read - reads_before,
            static_cast<std::uint64_t>(small_params().page_cluster));
}

TEST_F(VmmFixture, PrefetchUnderMemoryPressureReclaimsAsItGoes) {
  // Two processes: evict A fully, let B occupy nearly all memory, then
  // prefetch A's recorded set — the pump must interleave reclaim (of B)
  // with its reads instead of giving up.
  const Pid a = vmm.create_process(256);
  populate(a, 0, 100);
  force_free(128);
  ASSERT_EQ(vmm.space(a).resident_pages(), 0);
  const Pid b = vmm.create_process(256);
  populate(b, 0, 110);  // nearly fills the 128 frames
  bool done = false;
  vmm.prefetch(a, {PageRun{0, 100}}, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_GT(vmm.space(a).resident_pages(), 50);
  EXPECT_LT(vmm.space(b).resident_pages(), 110);  // B was reclaimed
}

TEST_F(VmmFixture, ReadAheadDoesNotCrossNonContiguousSlots) {
  const Pid pid = vmm.create_process(256);
  populate(pid, 0, 40);
  force_free(128);
  // Punch a hole in the swap contiguity: re-fault page 20 alone, dirty it
  // (frees its slot), evict again — it gets a fresh, distant-ish slot.
  ASSERT_TRUE(sync_fault(pid, 20, true));
  force_free(128);
  const auto p19 = vmm.space(pid).page_table().at(19);
  const auto p20 = vmm.space(pid).page_table().at(20);
  ASSERT_NE(p19.slot(), kNoSwapSlot);
  ASSERT_NE(p20.slot(), kNoSwapSlot);
  ASSERT_NE(p20.slot(), p19.slot() + 1);
  // Fault page 16: the read-ahead cluster must stop before page 20.
  ASSERT_TRUE(sync_fault(pid, 16, false));
  EXPECT_FALSE(vmm.space(pid).page_table().at(20).present());
}

TEST_F(VmmFixture, WatermarkKeepsMinimumFreePool) {
  const Pid pid = vmm.create_process(512);
  populate(pid, 0, 400);  // far beyond physical memory
  EXPECT_GE(vmm.free_frames(), small_params().freepages_min);
  EXPECT_GT(vmm.space(pid).stats().pages_swapped_out, 0u);
}

}  // namespace
}  // namespace apsim
