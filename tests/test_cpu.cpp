// Unit tests for the CPU executor: program execution, faulting, signals
// (SIGSTOP/SIGCONT semantics), round-robin sharing, and accounting.

#include <gtest/gtest.h>

#include "mem/vmm.hpp"
#include "proc/cpu.hpp"
#include "workloads/generator.hpp"

namespace apsim {
namespace {

struct CpuFixture : ::testing::Test {
  static VmmParams params() {
    VmmParams p;
    p.total_frames = 256;
    p.freepages_min = 8;
    p.freepages_low = 12;
    p.freepages_high = 16;
    return p;
  }

  Simulator sim;
  Disk disk{sim, DiskParams{.num_blocks = 1 << 16}};
  SwapDevice swap{disk, 0, 1 << 16};
  Vmm vmm{sim, swap, params()};
  Cpu cpu{sim, vmm};

  std::unique_ptr<Process> make_sweeper(std::int64_t pages,
                                        std::int64_t iterations,
                                        const std::string& name = "p") {
    SweepOptions options;
    options.pages = pages;
    options.iterations = iterations;
    options.compute_per_touch = 10 * kMicrosecond;
    const Pid pid = vmm.create_process(pages);
    auto proc =
        std::make_unique<Process>(name, pid, make_sweep_program(options));
    cpu.attach(*proc);
    return proc;
  }
};

TEST_F(CpuFixture, ProcessRunsToCompletion) {
  auto proc = make_sweeper(64, 3);
  EXPECT_EQ(proc->state(), ProcState::kStopped);
  cpu.cont_process(*proc);
  sim.run();
  EXPECT_EQ(proc->state(), ProcState::kFinished);
  EXPECT_GT(proc->stats().finished_at, 0);
  EXPECT_GT(proc->stats().cpu_time, 0);
  // 64 pages populated: 64 minor faults.
  EXPECT_EQ(vmm.space(proc->pid()).stats().minor_faults, 64u);
}

TEST_F(CpuFixture, OnFinishFires) {
  auto proc = make_sweeper(16, 1);
  bool finished = false;
  proc->on_finish = [&](Process& p) {
    EXPECT_EQ(&p, proc.get());
    finished = true;
  };
  cpu.cont_process(*proc);
  sim.run();
  EXPECT_TRUE(finished);
}

TEST_F(CpuFixture, StopHaltsExecutionContResumes) {
  auto proc = make_sweeper(64, 2000);
  cpu.cont_process(*proc);
  // Let it run a bit, then stop (takes effect at the next slice boundary).
  sim.run(50 * kMillisecond);
  ASSERT_EQ(proc->state(), ProcState::kRunning);
  cpu.stop_process(*proc);
  sim.run(sim.now() + 200 * kMillisecond);
  EXPECT_EQ(proc->state(), ProcState::kStopped);
  const auto cpu_at_stop = proc->stats().cpu_time;
  // Resume one virtual second later.
  (void)sim.at(sim.now() + kSecond, [&] { cpu.cont_process(*proc); });
  sim.run();
  EXPECT_EQ(proc->state(), ProcState::kFinished);
  EXPECT_GT(proc->stats().stopped_time, 900 * kMillisecond);
  EXPECT_GT(proc->stats().cpu_time, cpu_at_stop);
}

TEST_F(CpuFixture, StopBeforeStartKeepsProcessStopped) {
  auto proc = make_sweeper(16, 1);
  cpu.stop_process(*proc);
  sim.run();
  EXPECT_EQ(proc->state(), ProcState::kStopped);
}

TEST_F(CpuFixture, FaultsBlockAndResume) {
  // Footprint 400 pages > 256 frames: the sweep must fault against the
  // watermark reclaimer and still finish.
  auto proc = make_sweeper(400, 2);
  cpu.cont_process(*proc);
  sim.run();
  EXPECT_EQ(proc->state(), ProcState::kFinished);
  EXPECT_GT(proc->stats().fault_wait, 0);
  EXPECT_GT(vmm.space(proc->pid()).stats().major_faults, 0u);
}

TEST_F(CpuFixture, RoundRobinSharesCpu) {
  auto a = make_sweeper(32, 40, "a");
  auto b = make_sweeper(32, 40, "b");
  cpu.cont_process(*a);
  cpu.cont_process(*b);
  sim.run();
  EXPECT_EQ(a->state(), ProcState::kFinished);
  EXPECT_EQ(b->state(), ProcState::kFinished);
  // Both did the same work; completion should be near-simultaneous
  // (within one slice + context switches), proving interleaving.
  const auto gap =
      std::abs(a->stats().finished_at - b->stats().finished_at);
  EXPECT_LT(gap, 2 * cpu.params().slice + 10 * kMillisecond);
}

TEST_F(CpuFixture, PureComputeOpRuns) {
  const Pid pid = vmm.create_process(1);
  auto program = std::make_unique<IterativeProgram>(
      std::vector<Op>{}, std::vector<Op>{Op::compute_op(500 * kMillisecond)},
      2);
  Process proc("compute", pid, std::move(program));
  cpu.attach(proc);
  cpu.cont_process(proc);
  sim.run();
  EXPECT_EQ(proc.state(), ProcState::kFinished);
  EXPECT_EQ(proc.stats().cpu_time, kSecond);
  EXPECT_GE(sim.now(), kSecond);
}

TEST_F(CpuFixture, CommOpWithoutHandlerCompletes) {
  const Pid pid = vmm.create_process(1);
  auto program = std::make_unique<IterativeProgram>(
      std::vector<Op>{},
      std::vector<Op>{Op::comm_op(CommOp{CommOp::Type::kBarrier, 0})}, 3);
  Process proc("comm", pid, std::move(program));
  cpu.attach(proc);
  cpu.cont_process(proc);
  sim.run();
  EXPECT_EQ(proc.state(), ProcState::kFinished);
}

TEST_F(CpuFixture, CommHandlerReceivesOps) {
  const Pid pid = vmm.create_process(1);
  auto program = std::make_unique<IterativeProgram>(
      std::vector<Op>{},
      std::vector<Op>{Op::comm_op(CommOp{CommOp::Type::kExchange, 4096})}, 2);
  Process proc("comm", pid, std::move(program));
  cpu.attach(proc);
  int calls = 0;
  cpu.set_comm_handler([&](Process& p, const CommOp& op,
                           std::function<void()> resume) {
    EXPECT_EQ(&p, &proc);
    EXPECT_EQ(op.type, CommOp::Type::kExchange);
    EXPECT_EQ(op.bytes, 4096);
    ++calls;
    sim.after(kMillisecond, std::move(resume));
  });
  cpu.cont_process(proc);
  sim.run();
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(proc.stats().comm_wait, 2 * kMillisecond);
}

TEST_F(CpuFixture, StopWhileBlockedAppliesOnUnblock) {
  auto proc = make_sweeper(400, 1);
  cpu.cont_process(*proc);
  // Run until the process blocks on a fault, then stop it.
  const bool blocked = sim.run_until(
      [&] { return proc->state() == ProcState::kBlockedFault; });
  ASSERT_TRUE(blocked);
  cpu.stop_process(*proc);
  sim.run(sim.now() + kSecond);
  EXPECT_EQ(proc->state(), ProcState::kStopped);
  cpu.cont_process(*proc);
  sim.run();
  EXPECT_EQ(proc->state(), ProcState::kFinished);
}

TEST_F(CpuFixture, BusyTimeAccumulates) {
  auto proc = make_sweeper(32, 5);
  cpu.cont_process(*proc);
  sim.run();
  EXPECT_EQ(cpu.busy_time(), proc->stats().cpu_time);
}

}  // namespace
}  // namespace apsim
