// Unit tests for the disk cost model, the C-LOOK scheduler, request
// coalescing, and priority handling — the physics behind block paging.

#include <gtest/gtest.h>

#include <vector>

#include "disk/disk.hpp"
#include "sim/simulator.hpp"

namespace apsim {
namespace {

DiskParams small_disk() {
  DiskParams p;
  p.num_blocks = 100000;
  return p;
}

TEST(DiskModel, SeekTimeMonotonicInDistance) {
  DiskModel model(small_disk());
  EXPECT_EQ(model.seek_time(0, 0), 0);
  const auto near = model.seek_time(0, 10);
  const auto mid = model.seek_time(0, 10000);
  const auto far = model.seek_time(0, 99999);
  EXPECT_GT(near, 0);
  EXPECT_LT(near, mid);
  EXPECT_LT(mid, far);
  EXPECT_LE(far, model.params().full_stroke_seek);
}

TEST(DiskModel, SeekSymmetric) {
  DiskModel model(small_disk());
  EXPECT_EQ(model.seek_time(100, 5000), model.seek_time(5000, 100));
}

TEST(DiskModel, TransferTimeLinear) {
  DiskModel model(small_disk());
  const auto one = model.transfer_time(1);
  const auto hundred = model.transfer_time(100);
  EXPECT_NEAR(static_cast<double>(hundred),
              100.0 * static_cast<double>(one), 100.0);
}

TEST(DiskModel, SequentialAccessSkipsSeekAndRotation) {
  DiskModel model(small_disk());
  const auto sequential = model.service_time(500, 500, 8);
  const auto random = model.service_time(0, 500, 8);
  EXPECT_EQ(sequential,
            model.params().per_request_overhead + model.transfer_time(8));
  EXPECT_GT(random, sequential + model.params().rotation_half());
}

TEST(DiskModel, BlockTransferBeatsScattered) {
  // The core economics of block paging: one 64-block transfer must be far
  // cheaper than 64 scattered single-block transfers.
  DiskModel model(small_disk());
  const auto block = model.service_time(0, 50000, 64);
  SimDuration scattered = 0;
  for (int i = 0; i < 64; ++i) {
    scattered += model.service_time(i * 1000, (i + 1) * 1000, 1);
  }
  EXPECT_GT(scattered, 8 * block);
}

TEST(Disk, CompletesRequestAndMovesHead) {
  Simulator sim;
  Disk disk(sim, small_disk());
  bool done = false;
  disk.submit({.start = 100, .nblocks = 4, .write = false,
               .priority = IoPriority::kForeground,
               .on_complete = [&](IoResult result) {
                 EXPECT_TRUE(result.ok);
                 done = true;
               }});
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(disk.head(), 104);
  EXPECT_EQ(disk.stats().blocks_read, 4u);
  EXPECT_EQ(disk.stats().services, 1u);
}

TEST(Disk, ClookOrdersService) {
  Simulator sim;
  Disk disk(sim, small_disk());
  std::vector<int> order;
  // Busy the head with a request at 0, then queue out-of-order requests.
  disk.submit({.start = 0, .nblocks = 1, .write = false,
               .priority = IoPriority::kForeground, .on_complete = [](IoResult) {}});
  auto submit = [&](int tag, BlockNum start) {
    disk.submit({.start = start, .nblocks = 1, .write = false,
                 .priority = IoPriority::kForeground,
                 .on_complete =
                     [&order, tag](IoResult) { order.push_back(tag); }});
  };
  submit(3, 9000);
  submit(1, 100);
  submit(2, 5000);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Disk, CoalescesContiguousRequests) {
  Simulator sim;
  Disk disk(sim, small_disk());
  int completions = 0;
  // First request makes the device busy so the rest sit in the queue and
  // can merge.
  disk.submit({.start = 0, .nblocks = 1, .write = true,
               .priority = IoPriority::kForeground,
               .on_complete = [&](IoResult) { ++completions; }});
  for (int i = 0; i < 8; ++i) {
    disk.submit({.start = 1000 + i * 4, .nblocks = 4, .write = true,
                 .priority = IoPriority::kForeground,
                 .on_complete = [&](IoResult) { ++completions; }});
  }
  sim.run();
  EXPECT_EQ(completions, 9);
  // 1 head request + 1 merged transfer.
  EXPECT_EQ(disk.stats().services, 2u);
  EXPECT_EQ(disk.stats().blocks_written, 33u);
}

TEST(Disk, DoesNotMergeReadsIntoWrites) {
  Simulator sim;
  Disk disk(sim, small_disk());
  disk.submit({.start = 0, .nblocks = 1, .write = false,
               .priority = IoPriority::kForeground, .on_complete = [](IoResult) {}});
  disk.submit({.start = 100, .nblocks = 4, .write = true,
               .priority = IoPriority::kForeground, .on_complete = [](IoResult) {}});
  disk.submit({.start = 104, .nblocks = 4, .write = false,
               .priority = IoPriority::kForeground, .on_complete = [](IoResult) {}});
  sim.run();
  EXPECT_EQ(disk.stats().services, 3u);
}

TEST(Disk, BackgroundYieldsToForeground) {
  Simulator sim;
  Disk disk(sim, small_disk());
  std::vector<char> order;
  disk.submit({.start = 0, .nblocks = 1, .write = false,
               .priority = IoPriority::kForeground, .on_complete = [](IoResult) {}});
  disk.submit({.start = 10, .nblocks = 1, .write = true,
               .priority = IoPriority::kBackground,
               .on_complete = [&](IoResult) { order.push_back('b'); }});
  disk.submit({.start = 20, .nblocks = 1, .write = false,
               .priority = IoPriority::kForeground,
               .on_complete = [&](IoResult) { order.push_back('f'); }});
  sim.run();
  EXPECT_EQ(order, (std::vector<char>{'f', 'b'}));
}

TEST(Disk, ClookWrapsToLowestAfterEnd) {
  Simulator sim;
  Disk disk(sim, small_disk());
  std::vector<int> order;
  // Busy the head at a high position, then queue requests below it plus one
  // above: C-LOOK serves the one ahead first, then wraps to the lowest.
  disk.submit({.start = 50000, .nblocks = 1, .write = false,
               .priority = IoPriority::kForeground, .on_complete = [](IoResult) {}});
  auto submit = [&](int tag, BlockNum start) {
    disk.submit({.start = start, .nblocks = 1, .write = false,
                 .priority = IoPriority::kForeground,
                 .on_complete =
                     [&order, tag](IoResult) { order.push_back(tag); }});
  };
  submit(3, 20000);  // behind the head: served after the wrap
  submit(1, 60000);  // ahead: served first
  submit(2, 100);    // lowest: first after the wrap
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Disk, MergeStopsAtGaps) {
  Simulator sim;
  Disk disk(sim, small_disk());
  disk.submit({.start = 0, .nblocks = 1, .write = true,
               .priority = IoPriority::kForeground, .on_complete = [](IoResult) {}});
  // Two contiguous requests, then a gap, then another pair.
  for (BlockNum start : {1000, 1004, 2000, 2004}) {
    disk.submit({.start = start, .nblocks = 4, .write = true,
                 .priority = IoPriority::kForeground, .on_complete = [](IoResult) {}});
  }
  sim.run();
  // head request + two merged groups.
  EXPECT_EQ(disk.stats().services, 3u);
}

TEST(Disk, UtilizationBetweenZeroAndOne) {
  Simulator sim;
  Disk disk(sim, small_disk());
  disk.submit({.start = 1000, .nblocks = 64, .write = true,
               .priority = IoPriority::kForeground, .on_complete = [](IoResult) {}});
  sim.run();
  EXPECT_GT(disk.utilization(), 0.0);
  EXPECT_LE(disk.utilization(), 1.0);
}

TEST(Disk, QueueDepthTracked) {
  Simulator sim;
  Disk disk(sim, small_disk());
  for (int i = 0; i < 5; ++i) {
    disk.submit({.start = i * 500, .nblocks = 1, .write = false,
                 .priority = IoPriority::kForeground, .on_complete = [](IoResult) {}});
  }
  EXPECT_GE(disk.stats().max_queue_depth, 4u);
  sim.run();
  EXPECT_EQ(disk.queue_depth(), 0u);
}

}  // namespace
}  // namespace apsim
