// Unit tests for PolicySet parsing, the RLE page recorder, and the
// working-set estimator — the small pieces of the paper's contribution.

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/page_record.hpp"
#include "core/policy.hpp"
#include "core/ws_estimator.hpp"

namespace apsim {
namespace {

TEST(PolicySet, ParseCanonicalCombos) {
  EXPECT_EQ(PolicySet::parse("orig"), PolicySet::original());
  EXPECT_EQ(PolicySet::parse("lru"), PolicySet::original());
  EXPECT_EQ(PolicySet::parse(""), PolicySet::original());
  EXPECT_EQ(PolicySet::parse("so/ao/ai/bg"), PolicySet::all());

  const PolicySet so = PolicySet::parse("so");
  EXPECT_TRUE(so.selective_out);
  EXPECT_FALSE(so.aggressive_out);
  EXPECT_FALSE(so.adaptive_in);
  EXPECT_FALSE(so.bg_write);

  const PolicySet mixed = PolicySet::parse("ai/bg");
  EXPECT_TRUE(mixed.adaptive_in);
  EXPECT_TRUE(mixed.bg_write);
  EXPECT_FALSE(mixed.selective_out);
}

TEST(PolicySet, ParseOrderInsensitive) {
  EXPECT_EQ(PolicySet::parse("bg/ai/ao/so"), PolicySet::all());
}

TEST(PolicySet, ParseRejectsUnknownToken) {
  EXPECT_THROW((void)PolicySet::parse("so/xx"), std::invalid_argument);
}

TEST(PolicySet, ToStringCanonical) {
  EXPECT_EQ(PolicySet::original().to_string(), "orig");
  EXPECT_EQ(PolicySet::all().to_string(), "so/ao/ai/bg");
  EXPECT_EQ(PolicySet::parse("ao/so").to_string(), "so/ao");
}

TEST(PolicySet, RoundTripThroughString) {
  for (const char* combo :
       {"orig", "so", "ai", "so/ao", "so/ao/bg", "so/ao/ai/bg", "ai/bg"}) {
    const PolicySet set = PolicySet::parse(combo);
    EXPECT_EQ(PolicySet::parse(set.to_string()), set) << combo;
  }
}

TEST(PageRecorder, MergesContiguousRuns) {
  PageRecorder rec;
  rec.record(10);
  rec.record(11);
  rec.record(12);
  ASSERT_EQ(rec.runs().size(), 1u);
  EXPECT_EQ(rec.runs()[0], (PageRun{10, 3}));
  EXPECT_EQ(rec.pages(), 3);
}

TEST(PageRecorder, BreaksRunOnGap) {
  PageRecorder rec;
  rec.record(10);
  rec.record(12);
  rec.record(13);
  ASSERT_EQ(rec.runs().size(), 2u);
  EXPECT_EQ(rec.runs()[0], (PageRun{10, 1}));
  EXPECT_EQ(rec.runs()[1], (PageRun{12, 2}));
}

TEST(PageRecorder, BackwardAddressOpensNewRun) {
  PageRecorder rec;
  rec.record(10);
  rec.record(9);
  ASSERT_EQ(rec.runs().size(), 2u);
}

TEST(PageRecorder, TakeDrainsRecorder) {
  PageRecorder rec;
  rec.record(1);
  rec.record(2);
  auto runs = rec.take();
  EXPECT_EQ(runs.size(), 1u);
  EXPECT_TRUE(rec.empty());
  EXPECT_EQ(rec.pages(), 0);
}

TEST(PageRecorder, EncodedBytesBeatFlatListForSequentialFlushes) {
  PageRecorder rec;
  for (VPage v = 0; v < 10000; ++v) rec.record(v);
  EXPECT_EQ(rec.runs().size(), 1u);
  EXPECT_EQ(rec.encoded_bytes(), 12);
  EXPECT_EQ(rec.flat_bytes(), 80000);
  // The paper's point: RLE keeps the kernel record tiny.
  EXPECT_LT(rec.encoded_bytes() * 1000, rec.flat_bytes());
}

TEST(PageRecorder, FragmentedPatternStillBounded) {
  PageRecorder rec;
  for (VPage v = 0; v < 1000; v += 2) rec.record(v);  // all gaps
  EXPECT_EQ(rec.runs().size(), 500u);
  EXPECT_EQ(rec.pages(), 500);
  EXPECT_EQ(rec.encoded_bytes(), 500 * 12);
}

TEST(WsEstimator, FirstObservationSetsEstimate) {
  WsEstimator est;
  EXPECT_EQ(est.estimate(), 0);
  est.observe(1000);
  EXPECT_EQ(est.estimate(), 1000);
}

TEST(WsEstimator, EwmaTracksRecentQuanta) {
  WsEstimator est(0.7);
  est.observe(1000);
  est.observe(2000);
  EXPECT_EQ(est.estimate(), 1700);  // 0.7*2000 + 0.3*1000
  est.observe(2000);
  EXPECT_GT(est.estimate(), 1700);
}

TEST(WsEstimator, ConvergesToSteadyState) {
  WsEstimator est(0.5);
  for (int i = 0; i < 30; ++i) est.observe(5000);
  EXPECT_EQ(est.estimate(), 5000);
}

TEST(WsEstimator, AdaptsDownwardAfterPhaseChange) {
  WsEstimator est(0.7);
  est.observe(10000);
  for (int i = 0; i < 10; ++i) est.observe(100);
  EXPECT_LT(est.estimate(), 200);
}

}  // namespace
}  // namespace apsim
