// Unit tests for the Ousterhout scheduling matrix: slot packing of
// full-width and narrow jobs, removal/compaction, and occupancy.

#include <gtest/gtest.h>

#include "gang/matrix.hpp"

namespace apsim {
namespace {

TEST(ScheduleMatrix, FullWidthJobsGetOwnSlots) {
  ScheduleMatrix matrix(4);
  EXPECT_EQ(matrix.assign(0, {0, 1, 2, 3}), 0);
  EXPECT_EQ(matrix.assign(1, {0, 1, 2, 3}), 1);
  EXPECT_EQ(matrix.num_slots(), 2);
  EXPECT_EQ(matrix.job_at(0, 2), 0);
  EXPECT_EQ(matrix.job_at(1, 2), 1);
}

TEST(ScheduleMatrix, NarrowJobsPackSideBySide) {
  ScheduleMatrix matrix(4);
  EXPECT_EQ(matrix.assign(0, {0, 1}), 0);
  EXPECT_EQ(matrix.assign(1, {2, 3}), 0);  // fits next to job 0
  EXPECT_EQ(matrix.assign(2, {1, 2}), 1);  // conflicts with both
  EXPECT_EQ(matrix.num_slots(), 2);
  EXPECT_EQ(matrix.jobs_in_slot(0), (std::vector<int>{0, 1}));
  EXPECT_EQ(matrix.jobs_in_slot(1), (std::vector<int>{2}));
}

TEST(ScheduleMatrix, JobAtEmptyCellIsMinusOne) {
  ScheduleMatrix matrix(4);
  (void)matrix.assign(0, {0});
  EXPECT_EQ(matrix.job_at(0, 0), 0);
  EXPECT_EQ(matrix.job_at(0, 3), -1);
}

TEST(ScheduleMatrix, RemoveCompactsEmptySlots) {
  ScheduleMatrix matrix(2);
  (void)matrix.assign(0, {0, 1});
  (void)matrix.assign(1, {0, 1});
  (void)matrix.assign(2, {0, 1});
  ASSERT_EQ(matrix.num_slots(), 3);
  matrix.remove(1);
  EXPECT_EQ(matrix.num_slots(), 2);
  EXPECT_EQ(matrix.job_at(0, 0), 0);
  EXPECT_EQ(matrix.job_at(1, 0), 2);  // slot shifted up
}

TEST(ScheduleMatrix, RemoveKeepsPartiallyOccupiedSlot) {
  ScheduleMatrix matrix(4);
  (void)matrix.assign(0, {0, 1});
  (void)matrix.assign(1, {2, 3});
  matrix.remove(0);
  EXPECT_EQ(matrix.num_slots(), 1);
  EXPECT_EQ(matrix.jobs_in_slot(0), (std::vector<int>{1}));
}

TEST(ScheduleMatrix, SlotOfFindsJob) {
  ScheduleMatrix matrix(2);
  (void)matrix.assign(7, {0, 1});
  (void)matrix.assign(9, {0});
  EXPECT_EQ(matrix.slot_of(7), 0);
  EXPECT_EQ(matrix.slot_of(9), 1);
  EXPECT_FALSE(matrix.slot_of(42).has_value());
}

TEST(ScheduleMatrix, OccupancyReflectsPacking) {
  ScheduleMatrix matrix(4);
  EXPECT_DOUBLE_EQ(matrix.occupancy(), 0.0);
  (void)matrix.assign(0, {0, 1, 2, 3});
  EXPECT_DOUBLE_EQ(matrix.occupancy(), 1.0);
  (void)matrix.assign(1, {0});
  EXPECT_DOUBLE_EQ(matrix.occupancy(), 5.0 / 8.0);
}

TEST(ScheduleMatrix, FillsHolesBeforeAppending) {
  ScheduleMatrix matrix(4);
  (void)matrix.assign(0, {0, 1, 2, 3});
  (void)matrix.assign(1, {0, 1});
  // A 2-node job fits in slot 1's free columns.
  EXPECT_EQ(matrix.assign(2, {2, 3}), 1);
  EXPECT_EQ(matrix.num_slots(), 2);
}

}  // namespace
}  // namespace apsim
