// Tests for the optional Linux-2.2-style page-aging mode of the clock
// replacement policy.

#include <gtest/gtest.h>

#include "mem/vmm.hpp"

namespace apsim {
namespace {

struct AgingFixture : ::testing::Test {
  static VmmParams params(bool aging) {
    VmmParams p;
    p.total_frames = 128;
    p.freepages_min = 8;
    p.freepages_low = 12;
    p.freepages_high = 16;
    p.page_aging = aging;
    return p;
  }

  void build(bool aging) {
    disk = std::make_unique<Disk>(sim, DiskParams{.num_blocks = 1 << 14});
    swap = std::make_unique<SwapDevice>(*disk, 0, 1 << 14);
    vmm = std::make_unique<Vmm>(sim, *swap, params(aging));
  }

  void populate(Pid pid, VPage begin, VPage end) {
    for (VPage v = begin; v < end; ++v) {
      bool done = false;
      vmm->fault(pid, v, true, [&] { done = true; });
      sim.run();
      ASSERT_TRUE(done);
    }
  }

  Simulator sim;
  std::unique_ptr<Disk> disk;
  std::unique_ptr<SwapDevice> swap;
  std::unique_ptr<Vmm> vmm;
};

TEST_F(AgingFixture, FreshPagesStartWithInitialAge) {
  build(true);
  const Pid pid = vmm->create_process(32);
  populate(pid, 0, 4);
  EXPECT_EQ(vmm->space(pid).page_table().at(0).age(),
            vmm->params().age_initial);
}

TEST_F(AgingFixture, AgingProtectsPagesForSeveralSweeps) {
  build(true);
  const Pid pid = vmm->create_process(64);
  populate(pid, 0, 32);
  ClockReclaimPolicy policy;
  // First selection pass: every page is referenced (cleared, aged up) or
  // still carries age — with 32 fresh pages and a demand of 8, the policy
  // must need multiple conceptual revolutions, and ages must decline.
  auto victims = policy.select_victims(*vmm, 8);
  EXPECT_EQ(victims.size(), 8u);  // budget guarantees eventual victims
  // Pages it passed over lost age but survived.
  bool some_aged_down = false;
  for (VPage v = 0; v < 32; ++v) {
    const auto pte = vmm->space(pid).page_table().at(v);
    if (pte.present() && !pte.referenced() && pte.age() > 0 &&
        pte.age() < vmm->params().age_initial + vmm->params().age_advance) {
      some_aged_down = true;
    }
  }
  EXPECT_TRUE(some_aged_down);
}

TEST_F(AgingFixture, VictimSearchTakesManyMoreEncountersThanOneBitClock) {
  // With every page referenced once, the one-bit clock needs two
  // revolutions to evict; with aging, pages are first bumped to
  // initial+advance and must then decline to zero — roughly
  // (initial+advance)/decline extra revolutions. Observable effect: after
  // one aging victim search, the surviving pages' ages have been ground
  // down close to zero, never exceeding age_max.
  build(true);
  const Pid pid = vmm->create_process(64);
  populate(pid, 0, 16);
  ClockReclaimPolicy policy;
  auto victims = policy.select_victims(*vmm, 1);
  ASSERT_EQ(victims.size(), 1u);
  const auto& params = vmm->params();
  for (VPage v = 0; v < 16; ++v) {
    const auto pte = vmm->space(pid).page_table().at(v);
    if (!pte.present()) continue;
    EXPECT_FALSE(pte.referenced());  // the sweep consumed every bit
    EXPECT_LE(pte.age(), params.age_max);
    EXPECT_LE(pte.age(), params.age_decline)
        << "survivors must be nearly aged out when the first victim falls";
  }
}

TEST_F(AgingFixture, WithoutAgingSecondChanceIsOneBit) {
  build(false);
  const Pid pid = vmm->create_process(64);
  populate(pid, 0, 32);
  ClockReclaimPolicy policy;
  // All pages referenced once: one revolution clears, the next evicts —
  // exactly 8 victims found without any aging protection.
  auto victims = policy.select_victims(*vmm, 8);
  EXPECT_EQ(victims.size(), 8u);
  for (VPage v = 0; v < 32; ++v) {
    EXPECT_EQ(vmm->space(pid).page_table().at(v).age(),
              vmm->params().age_initial)
        << "age must be inert when aging is disabled";
  }
}

TEST_F(AgingFixture, AgingStillFindsVictimsUnderUniformPressure) {
  build(true);
  const Pid pid = vmm->create_process(256);
  populate(pid, 0, 100);
  bool done = false;
  vmm->request_free_frames(64, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_GE(vmm->free_frames(), 64);
  EXPECT_EQ(vmm->stats().oom_waiter_releases, 0u);
}

}  // namespace
}  // namespace apsim
