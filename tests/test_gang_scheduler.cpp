// Unit tests for the gang scheduler (quantum switching, signal sequencing,
// job completion handling, quantum overrides) and the batch baseline.

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "gang/gang_scheduler.hpp"
#include "workloads/generator.hpp"

namespace apsim {
namespace {

struct GangFixture : ::testing::Test {
  static NodeParams node_params() {
    NodeParams n;
    n.vmm.total_frames = 512;
    n.vmm.freepages_min = 8;
    n.vmm.freepages_low = 12;
    n.vmm.freepages_high = 16;
    n.disk.num_blocks = 1 << 16;
    return n;
  }

  GangFixture() : cluster(2, node_params()) {}

  /// Add a job with one sweeper process per node.
  template <typename Scheduler>
  Job& add_sweep_job(Scheduler& scheduler, const std::string& name,
                     std::int64_t pages, std::int64_t iterations) {
    Job& job = scheduler.create_job(name);
    for (int n = 0; n < cluster.size(); ++n) {
      SweepOptions options;
      options.pages = pages;
      options.iterations = iterations;
      options.compute_per_touch = 20 * kMicrosecond;
      const Pid pid = cluster.node(n).vmm().create_process(pages);
      procs.push_back(std::make_unique<Process>(name + ":" + std::to_string(n),
                                                pid,
                                                make_sweep_program(options)));
      cluster.node(n).cpu().attach(*procs.back());
      job.add_process(n, *procs.back());
    }
    return job;
  }

  Cluster cluster;
  std::vector<std::unique_ptr<Process>> procs;
};

TEST_F(GangFixture, TwoJobsAlternateAndFinish) {
  GangParams params;
  params.quantum = 2 * kSecond;
  GangScheduler scheduler(cluster, params);
  add_sweep_job(scheduler, "a", 128, 2000);
  add_sweep_job(scheduler, "b", 128, 2000);
  scheduler.start();
  const bool finished = cluster.sim().run_until(
      [&] { return scheduler.all_finished(); }, 10 * kMinute);
  ASSERT_TRUE(finished);
  EXPECT_GT(scheduler.switches(), 2);
  EXPECT_GT(scheduler.makespan(), 0);
  // Each process spent real time stopped (it shared the machine).
  for (const auto& p : procs) {
    EXPECT_GT(p->stats().stopped_time, kSecond);
  }
}

TEST_F(GangFixture, SingleJobRunsWithoutSwitching) {
  GangParams params;
  params.quantum = kSecond;
  GangScheduler scheduler(cluster, params);
  add_sweep_job(scheduler, "solo", 64, 100);
  scheduler.start();
  const bool finished = cluster.sim().run_until(
      [&] { return scheduler.all_finished(); }, 10 * kMinute);
  ASSERT_TRUE(finished);
  EXPECT_EQ(scheduler.switches(), 0);
}

TEST_F(GangFixture, FinishedJobYieldsMachineImmediately) {
  GangParams params;
  params.quantum = 10 * kSecond;
  GangScheduler scheduler(cluster, params);
  add_sweep_job(scheduler, "short", 32, 5);     // finishes within slot 0
  add_sweep_job(scheduler, "long", 64, 2000);
  scheduler.start();
  const bool finished = cluster.sim().run_until(
      [&] { return scheduler.all_finished(); }, 30 * kMinute);
  ASSERT_TRUE(finished);
  // The long job must have been promoted as soon as the short one exited,
  // not after the short job's full quantum.
  const SimTime short_done = scheduler.jobs()[0]->finished_at();
  EXPECT_LT(short_done, 5 * kSecond);
  // Long job total work ~ 64 pages * 2000 iters * 20us = 2560 s of compute.
  // It must not have waited for the rest of short's quantum at every turn.
  EXPECT_GT(procs[2]->stats().cpu_time, 0);
}

TEST_F(GangFixture, QuantumOverrideExtendsSlot) {
  GangParams params;
  params.quantum = kSecond;
  GangScheduler scheduler(cluster, params);
  Job& a = add_sweep_job(scheduler, "a", 64, 4000);
  a.quantum_override = 5 * kSecond;
  add_sweep_job(scheduler, "b", 64, 4000);
  scheduler.start();
  // After 4.5 virtual seconds, job a (slot 0, 5 s quantum) must still hold
  // the machine.
  (void)cluster.sim().at(4500 * kMillisecond, [&] {
    EXPECT_EQ(procs[0]->state(), ProcState::kRunning);
    EXPECT_EQ(procs[2]->state(), ProcState::kStopped);
    cluster.sim().stop();
  });
  cluster.sim().run();
}

TEST_F(GangFixture, MakespanMinusOneUntilAllFinish) {
  GangParams params;
  GangScheduler scheduler(cluster, params);
  add_sweep_job(scheduler, "a", 64, 1000);
  scheduler.start();
  EXPECT_EQ(scheduler.makespan(), -1);
  cluster.sim().run();
  EXPECT_GT(scheduler.makespan(), 0);
}

TEST_F(GangFixture, BatchRunsJobsSequentially) {
  BatchRunner runner(cluster);
  add_sweep_job(runner, "first", 64, 200);
  add_sweep_job(runner, "second", 64, 200);
  runner.start();
  cluster.sim().run();
  ASSERT_TRUE(runner.all_finished());
  const SimTime first = runner.jobs()[0]->finished_at();
  const SimTime second = runner.jobs()[1]->finished_at();
  EXPECT_GT(first, 0);
  EXPECT_GT(second, first);
  // No overlap: the second job accrued zero CPU before the first finished.
  EXPECT_EQ(runner.makespan(), second);
  // Equal work, so the second takes about as long again as the first.
  EXPECT_NEAR(static_cast<double>(second), 2.0 * static_cast<double>(first),
              0.25 * static_cast<double>(first));
}

TEST_F(GangFixture, GangTracksBatchWhenMemoryIsAmple) {
  // Both jobs fit comfortably: gang scheduling should cost almost nothing
  // vs batch (only signal latencies and context switches).
  GangParams params;
  params.quantum = 2 * kSecond;
  GangScheduler gang(cluster, params);
  add_sweep_job(gang, "a", 100, 400);
  add_sweep_job(gang, "b", 100, 400);
  gang.start();
  ASSERT_TRUE(cluster.sim().run_until([&] { return gang.all_finished(); },
                                      60 * kMinute));
  const double gang_s = to_seconds(gang.makespan());

  Cluster cluster2(2, node_params());
  BatchRunner batch(cluster2);
  std::vector<std::unique_ptr<Process>> procs2;
  for (const char* name : {"a", "b"}) {
    Job& job = batch.create_job(name);
    for (int n = 0; n < cluster2.size(); ++n) {
      SweepOptions options;
      options.pages = 100;
      options.iterations = 400;
      options.compute_per_touch = 20 * kMicrosecond;
      const Pid pid = cluster2.node(n).vmm().create_process(options.pages);
      procs2.push_back(std::make_unique<Process>(
          std::string(name) + ":" + std::to_string(n), pid,
          make_sweep_program(options)));
      cluster2.node(n).cpu().attach(*procs2.back());
      job.add_process(n, *procs2.back());
    }
  }
  batch.start();
  cluster2.sim().run();
  ASSERT_TRUE(batch.all_finished());
  const double batch_s = to_seconds(batch.makespan());
  EXPECT_NEAR(gang_s, batch_s, 0.05 * batch_s);
}

TEST_F(GangFixture, PagersExistPerNode) {
  GangParams params;
  params.pager.policy = PolicySet::all();
  GangScheduler scheduler(cluster, params);
  EXPECT_EQ(scheduler.pager(0).policy(), PolicySet::all());
  EXPECT_EQ(scheduler.pager(1).policy(), PolicySet::all());
}

TEST_F(GangFixture, JobAdmittedMidSwitchDoesNotCorruptTheRotation) {
  // Regression for the job-set-immutability assumption the open-arrival work
  // removed: a job admitted via submit_job()/start_job() while a switch
  // generation is still settling (signals sent, paging in flight) must slot
  // into the rotation without invalidating the live matrix rows — the
  // in-flight switch actions still name the rows captured when the signal
  // was sent.
  GangParams params;
  params.quantum = 2 * kSecond;
  GangScheduler scheduler(cluster, params);
  // Footprints that overcommit the 512-frame nodes jointly, so every switch
  // has to page and the settle window is wide.
  add_sweep_job(scheduler, "a", 300, 2000);
  add_sweep_job(scheduler, "b", 300, 2000);
  scheduler.start();

  // Poll at millisecond grain; the first time a switch generation is in
  // flight but not yet settled, inject a third job into the rotation.
  bool injected = false;
  std::uint64_t injected_at_gen = 0;
  std::function<void()> poll = [&] {
    if (!injected && scheduler.switch_generation() > 0 &&
        !scheduler.switch_settled()) {
      injected = true;
      injected_at_gen = scheduler.switch_generation();
      Job& job = scheduler.submit_job("late");
      for (int n = 0; n < cluster.size(); ++n) {
        SweepOptions options;
        options.pages = 200;
        options.iterations = 500;
        options.compute_per_touch = 20 * kMicrosecond;
        const Pid pid = cluster.node(n).vmm().create_process(options.pages);
        procs.push_back(std::make_unique<Process>(
            "late:" + std::to_string(n), pid, make_sweep_program(options)));
        cluster.node(n).cpu().attach(*procs.back());
        job.add_process(n, *procs.back());
      }
      scheduler.start_job(job);
      return;
    }
    if (!injected) (void)cluster.sim().after(kMillisecond, poll);
  };
  (void)cluster.sim().after(kMillisecond, poll);

  const bool finished = cluster.sim().run_until(
      [&] { return injected && scheduler.all_finished(); }, 60 * kMinute);
  ASSERT_TRUE(finished);
  ASSERT_TRUE(injected) << "no switch window was observed";
  EXPECT_GT(injected_at_gen, 0u);
  for (const auto& job : scheduler.jobs()) {
    EXPECT_TRUE(job->finished()) << job->name();
    EXPECT_FALSE(job->failed()) << job->name();
  }
  // The rotation kept time-sharing after the admission.
  EXPECT_GT(scheduler.switches(), 2);
}

}  // namespace
}  // namespace apsim
