// Copy-on-write snapshot / prefix-fork determinism. A sweep point forked
// from a MemSnapshot must be bit-identical — counters, clock, disk head AND
// full page-table content — to running warmup + point from scratch, at any
// worker-thread count, and one snapshot must support any number of forks.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "harness/sweep.hpp"
#include "mem/page_table.hpp"
#include "mem/vmm.hpp"

namespace apsim {
namespace {

/// Sequential touch driver (every 8th touch a write); misses take the full
/// fault path and the sweep self-schedules off each fault completion.
void touch_sweep(Vmm& vmm, Pid pid, std::int64_t npages, std::int64_t total) {
  auto& as = vmm.space(pid);
  auto touched = std::make_shared<std::int64_t>(0);
  auto step = std::make_shared<std::function<void()>>();
  // The step function holds only a weak self-reference; the pending fault
  // callback carries the strong one, so the chain frees itself when the
  // last touch lands instead of leaking a shared_ptr cycle.
  const std::weak_ptr<std::function<void()>> weak = step;
  *step = [touched, weak, total, npages, pid, &vmm, &as] {
    while (*touched < total) {
      const VPage v = *touched % npages;
      const bool write = (*touched & 7) == 0;
      if (vmm.touch(as, v, write)) {
        ++*touched;
        continue;
      }
      vmm.fault(pid, v, write, [touched, strong = weak.lock()] {
        ++*touched;
        (*strong)();
      });
      return;
    }
  };
  (*step)();
}

struct LabConfig {
  MemLabParams params;
  std::int64_t npages = 0;
  std::int64_t warm_touches = 0;
  std::int64_t point_touches = 0;
};

LabConfig test_config() {
  LabConfig cfg;
  cfg.params.frames = 256;
  cfg.params.freepages_min = 16;
  cfg.params.freepages_low = 24;
  cfg.params.freepages_high = 32;
  cfg.params.disk_blocks = 1 << 14;
  cfg.params.swap_slots = 1 << 14;
  cfg.npages = cfg.params.frames * 2;
  cfg.warm_touches = cfg.npages * 3;
  cfg.point_touches = cfg.npages / 2;
  return cfg;
}

std::function<void(MemLab&)> make_warmup(const LabConfig& cfg) {
  return [cfg](MemLab& lab) {
    const Pid pid = lab.vmm().create_process(cfg.npages);
    touch_sweep(lab.vmm(), pid, cfg.npages, cfg.warm_touches);
  };
}

std::vector<SweepPoint> make_points(const LabConfig& cfg) {
  std::vector<SweepPoint> points;
  for (const std::int64_t batch : {8, 16, 32, 64}) {
    SweepPoint p;
    p.label = "reclaim_batch=" + std::to_string(batch);
    p.apply = [batch](MemLab& lab) { lab.vmm().set_reclaim_batch(batch); };
    p.body = [cfg](MemLab& lab) {
      const Pid pid = lab.vmm().pids().front();
      touch_sweep(lab.vmm(), pid, cfg.npages, cfg.point_touches);
    };
    points.push_back(std::move(p));
  }
  return points;
}

/// Reference result: warmup + point run from scratch in a private lab.
std::unique_ptr<MemLab> run_point_from_scratch(const LabConfig& cfg,
                                               const SweepPoint& point) {
  auto lab = std::make_unique<MemLab>(cfg.params);
  const auto warmup = make_warmup(cfg);
  lab->run([&] { warmup(*lab); });
  if (point.apply) point.apply(*lab);
  lab->run([&] { point.body(*lab); });
  return lab;
}

void expect_labs_identical(MemLab& got, MemLab& want, const std::string& label) {
  // Scalar outcome: counters, residency, clock, disk state.
  const Pid pid = want.vmm().pids().front();
  ASSERT_EQ(got.vmm().pids(), want.vmm().pids()) << label;
  const auto& ga = got.vmm().space(pid);
  const auto& wa = want.vmm().space(pid);
  EXPECT_EQ(ga.stats().minor_faults, wa.stats().minor_faults) << label;
  EXPECT_EQ(ga.stats().major_faults, wa.stats().major_faults) << label;
  EXPECT_EQ(ga.stats().pages_swapped_in, wa.stats().pages_swapped_in) << label;
  EXPECT_EQ(ga.stats().pages_swapped_out, wa.stats().pages_swapped_out)
      << label;
  EXPECT_EQ(ga.stats().pages_clean_dropped, wa.stats().pages_clean_dropped)
      << label;
  EXPECT_EQ(ga.stats().false_evictions, wa.stats().false_evictions) << label;
  EXPECT_EQ(ga.resident_pages(), wa.resident_pages()) << label;
  EXPECT_EQ(ga.dirty_pages(), wa.dirty_pages()) << label;
  EXPECT_EQ(got.vmm().stats().reclaim_steps, want.vmm().stats().reclaim_steps)
      << label;
  EXPECT_EQ(got.vmm().free_frames(), want.vmm().free_frames()) << label;
  EXPECT_EQ(got.swap().used_slots(), want.swap().used_slots()) << label;
  EXPECT_EQ(got.sim().now(), want.sim().now()) << label;
  EXPECT_EQ(got.disk().head(), want.disk().head()) << label;
  EXPECT_EQ(got.disk().stats().blocks_read, want.disk().stats().blocks_read)
      << label;
  EXPECT_EQ(got.disk().stats().blocks_written,
            want.disk().stats().blocks_written)
      << label;

  // Full page-table content, word for word.
  const PageTable::Meta& gm = ga.page_table().ro();
  const PageTable::Meta& wm = wa.page_table().ro();
  ASSERT_EQ(gm.npages, wm.npages) << label;
  EXPECT_EQ(gm.present, wm.present) << label;
  EXPECT_EQ(gm.referenced, wm.referenced) << label;
  EXPECT_EQ(gm.dirty, wm.dirty) << label;
  EXPECT_EQ(gm.io_busy, wm.io_busy) << label;
  EXPECT_EQ(gm.ever_touched, wm.ever_touched) << label;
  EXPECT_EQ(gm.has_slot, wm.has_slot) << label;
  EXPECT_EQ(gm.ws_seen, wm.ws_seen) << label;
  EXPECT_EQ(gm.evicted, wm.evicted) << label;
  EXPECT_EQ(gm.frame, wm.frame) << label;
  EXPECT_EQ(gm.slot, wm.slot) << label;
  EXPECT_EQ(gm.last_ref, wm.last_ref) << label;
  EXPECT_EQ(gm.age, wm.age) << label;
  EXPECT_EQ(ga.page_table().clock_hand(), wa.page_table().clock_hand())
      << label;
}

TEST(SnapshotFork, ForkedPointsMatchScratchAtEveryThreadCount) {
  const LabConfig cfg = test_config();
  const std::vector<SweepPoint> points = make_points(cfg);

  std::vector<std::unique_ptr<MemLab>> scratch;
  scratch.reserve(points.size());
  for (const SweepPoint& p : points) {
    scratch.push_back(run_point_from_scratch(cfg, p));
  }

  for (const unsigned threads : {1u, 2u, 8u}) {
    std::vector<std::unique_ptr<MemLab>> forked =
        run_forked_sweep(cfg.params, make_warmup(cfg), points, threads);
    ASSERT_EQ(forked.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      expect_labs_identical(
          *forked[i], *scratch[i],
          points[i].label + " @" + std::to_string(threads) + " threads");
    }
  }
}

TEST(SnapshotFork, OneSnapshotForksManyTimes) {
  const LabConfig cfg = test_config();
  MemLab prefix(cfg.params);
  const auto warmup = make_warmup(cfg);
  prefix.run([&] { warmup(prefix); });
  const MemSnapshot snap = prefix.checkpoint();

  const SweepPoint point = make_points(cfg).front();
  auto run_fork = [&] {
    auto lab = MemLab::fork(cfg.params, snap);
    if (point.apply) point.apply(*lab);
    lab->run([&] { point.body(*lab); });
    return lab;
  };
  auto first = run_fork();
  auto second = run_fork();
  expect_labs_identical(*second, *first, "second fork of one snapshot");

  // The snapshot image itself must have stayed frozen: a third fork started
  // after the first two mutated their copies still sees the capture state.
  auto third = MemLab::fork(cfg.params, snap);
  EXPECT_EQ(third->sim().now(), snap.when);
  const Pid pid = third->vmm().pids().front();
  EXPECT_EQ(third->vmm().space(pid).page_table().share_meta().get(),
            snap.spaces.front().meta.get());
}

TEST(SnapshotFork, CaptureDoesNotPerturbTheCapturedRun) {
  const LabConfig cfg = test_config();
  const auto warmup = make_warmup(cfg);

  MemLab plain(cfg.params);
  plain.run([&] { warmup(plain); });

  MemLab captured(cfg.params);
  captured.run([&] { warmup(captured); });
  const MemSnapshot snap = captured.checkpoint();

  // Continue both labs identically; the captured one now copy-on-writes.
  const SweepPoint point = make_points(cfg).front();
  for (MemLab* lab : {&plain, &captured}) {
    if (point.apply) point.apply(*lab);
    lab->run([&] { point.body(*lab); });
  }
  expect_labs_identical(captured, plain, "continuation after a capture");
}

}  // namespace
}  // namespace apsim
