// Golden-run regression test: the full RunOutcome counter set of a small
// fig7-style scenario (IS.W, two instances on one overcommitted node), pinned
// per policy. The simulator is deterministic, so these values must reproduce
// bit for bit on every platform and after every refactor — any drift means an
// intended behavior change (update the table in the same commit, explaining
// why) or an unintended one (a bug). The event-queue/callback overhaul that
// introduced this test was validated against these exact pre-overhaul values.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "harness/config.hpp"
#include "harness/runner.hpp"

namespace apsim {
namespace {

ExperimentConfig golden_config(const std::string& policy) {
  ExperimentConfig config;
  config.app = NpbApp::kIS;
  config.cls = NpbClass::kW;
  config.nodes = 1;
  config.instances = 2;
  config.node_memory_mb = 64.0;
  config.usable_memory_mb = 22.0;  // overcommitted: every switch pages
  config.quantum = 4 * kSecond;
  config.iterations_scale = 0.25;
  config.policy = PolicySet::parse(policy);
  return config;
}

struct Golden {
  SimTime makespan;
  std::uint64_t major_faults;
  std::uint64_t pages_swapped_in;
  std::uint64_t pages_swapped_out;
  std::uint64_t false_evictions;
  std::uint64_t pages_recorded;
  std::uint64_t pages_replayed;
  std::uint64_t bg_pages_written;
  int switches;
  SimTime job_completion[2];
  std::uint64_t job_major_faults[2];
};

struct GoldenCase {
  const char* policy;
  Golden want;
};

// Values recorded from the pre-overhaul simulator (RelWithDebInfo, x86-64);
// the deterministic substrate makes them platform-independent.
constexpr GoldenCase kGolden[] = {
    {"orig",
     {36857718138, 3376, 14883, 8117, 1483, 0, 0, 0, 8,
      {35846631324, 36857718138}, {1893, 1483}}},
    {"so",
     {23620194353, 1827, 4072, 3672, 0, 0, 0, 0, 4,
      {19952620393, 23620194353}, {930, 897}}},
    {"ao",
     {27951936247, 1940, 8058, 6526, 797, 0, 0, 0, 5,
      {27951936247, 23636754872}, {1122, 818}}},
    {"ai",
     {22972400451, 978, 9875, 6265, 976, 4227, 4227, 0, 4,
      {19962815966, 22972400451}, {316, 662}}},
    {"bg",
     {12663175491, 375, 4792, 4795, 221, 0, 0, 1024, 2,
      {10735283383, 12663175491}, {222, 153}}},
    {"so/ao/ai/bg",
     {10444548366, 0, 3268, 3332, 0, 3268, 3268, 1024, 2,
      {9237326596, 10444548366}, {0, 0}}},
};

TEST(GoldenRun, Fig7SmallCountersPinnedPerPolicy) {
  for (const GoldenCase& golden : kGolden) {
    SCOPED_TRACE(std::string("policy ") + golden.policy);
    const RunOutcome out = run_gang(golden_config(golden.policy));

    EXPECT_EQ(out.makespan, golden.want.makespan);
    EXPECT_EQ(out.major_faults, golden.want.major_faults);
    EXPECT_EQ(out.pages_swapped_in, golden.want.pages_swapped_in);
    EXPECT_EQ(out.pages_swapped_out, golden.want.pages_swapped_out);
    EXPECT_EQ(out.false_evictions, golden.want.false_evictions);
    EXPECT_EQ(out.pages_recorded, golden.want.pages_recorded);
    EXPECT_EQ(out.pages_replayed, golden.want.pages_replayed);
    EXPECT_EQ(out.bg_pages_written, golden.want.bg_pages_written);
    EXPECT_EQ(out.switches, golden.want.switches);

    ASSERT_EQ(out.jobs.size(), 2u);
    for (int j = 0; j < 2; ++j) {
      EXPECT_EQ(out.jobs[static_cast<std::size_t>(j)].completion,
                golden.want.job_completion[j])
          << "job " << j;
      EXPECT_EQ(out.jobs[static_cast<std::size_t>(j)].major_faults,
                golden.want.job_major_faults[j])
          << "job " << j;
      EXPECT_FALSE(out.jobs[static_cast<std::size_t>(j)].failed);
    }

    // This scenario runs without tier or faults, so every counter of those
    // subsystems is pinned to zero — nonzero means a subsystem leaked into a
    // configuration that did not ask for it.
    EXPECT_EQ(out.tier_pool_hits, 0u);
    EXPECT_EQ(out.tier_pool_misses, 0u);
    EXPECT_EQ(out.tier_pages_stored, 0u);
    EXPECT_EQ(out.tier_bytes_stored, 0u);
    EXPECT_EQ(out.tier_writeback_pages, 0u);
    EXPECT_EQ(out.jobs_failed, 0);
    EXPECT_EQ(out.nodes_failed, 0);
    EXPECT_EQ(out.io_errors, 0u);
    EXPECT_EQ(out.io_retries, 0u);
    EXPECT_EQ(out.pages_unrecoverable, 0u);
    EXPECT_EQ(out.signal_retransmits, 0u);
  }
}

TEST(GoldenRun, ExtractedMatrixPolicyMatchesPreRefactorGolden) {
  // Differential pin for the SchedulerPolicy extraction: selecting the
  // paper's rotation by name through the policy registry must reproduce the
  // pre-extraction golden counters bit for bit. Two cases bracket the
  // spectrum: the no-optimization baseline and the full paper stack.
  for (const GoldenCase& golden : {kGolden[0], kGolden[5]}) {
    SCOPED_TRACE(std::string("policy ") + golden.policy);
    ExperimentConfig config = golden_config(golden.policy);
    config.sched_policy = "matrix";  // explicit, resolved via the registry
    const RunOutcome out = run_gang(config);
    EXPECT_EQ(out.makespan, golden.want.makespan);
    EXPECT_EQ(out.major_faults, golden.want.major_faults);
    EXPECT_EQ(out.pages_swapped_in, golden.want.pages_swapped_in);
    EXPECT_EQ(out.pages_swapped_out, golden.want.pages_swapped_out);
    EXPECT_EQ(out.false_evictions, golden.want.false_evictions);
    EXPECT_EQ(out.switches, golden.want.switches);
    ASSERT_EQ(out.jobs.size(), 2u);
    for (int j = 0; j < 2; ++j) {
      EXPECT_EQ(out.jobs[static_cast<std::size_t>(j)].completion,
                golden.want.job_completion[j])
          << "job " << j;
    }
  }
}

TEST(GoldenRun, TracingDoesNotPerturbTheCounters) {
  // A traced run must be semantically identical to an untraced one: the
  // tracer records but never feeds back. Re-run one golden case with the
  // in-memory tracer and expect the exact same pinned numbers.
  ExperimentConfig config = golden_config("so/ao/ai/bg");
  config.trace_json = "-";
  const RunOutcome out = run_gang(config);
  const Golden& want = kGolden[5].want;
  EXPECT_EQ(out.makespan, want.makespan);
  EXPECT_EQ(out.major_faults, want.major_faults);
  EXPECT_EQ(out.pages_swapped_in, want.pages_swapped_in);
  EXPECT_EQ(out.pages_swapped_out, want.pages_swapped_out);
  EXPECT_EQ(out.switches, want.switches);
  ASSERT_NE(out.trace, nullptr);
  EXPECT_GT(out.trace->events().size(), 0u);
}

}  // namespace
}  // namespace apsim
