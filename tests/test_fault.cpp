// Tests for the fault-injection subsystem: FaultSpec parsing, the
// FaultInjector's disk and control-plane hooks, device failure, and the
// failure-resilient behaviour of the VMM, gang scheduler, and harness
// (retry-then-recover, watchdog retransmission, node-crash fencing, clean
// out-of-swap job failure).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "gang/gang_scheduler.hpp"
#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "workloads/generator.hpp"

namespace apsim {
namespace {

// ---------------------------------------------------------------------------
// FaultSpec parsing

TEST(FaultSpec, ParsesAllKindsAndKeys) {
  const auto transient =
      FaultSpec::parse("disk_transient node=0 start_s=10 end_s=60 p=0.05");
  EXPECT_EQ(transient.kind, FaultKind::kDiskTransient);
  EXPECT_EQ(transient.node, 0);
  EXPECT_EQ(transient.start, 10 * kSecond);
  EXPECT_EQ(transient.end, 60 * kSecond);
  EXPECT_DOUBLE_EQ(transient.probability, 0.05);

  const auto slow = FaultSpec::parse("disk_slow start_s=30 end_s=90 slow=4");
  EXPECT_EQ(slow.kind, FaultKind::kDiskSlow);
  EXPECT_EQ(slow.node, -1);
  EXPECT_DOUBLE_EQ(slow.slow_factor, 4.0);

  const auto drop = FaultSpec::parse("signal_drop node=1 p=0.2");
  EXPECT_EQ(drop.kind, FaultKind::kSignalDrop);
  EXPECT_DOUBLE_EQ(drop.probability, 0.2);

  const auto delay = FaultSpec::parse("signal_delay delay_ms=5");
  EXPECT_EQ(delay.kind, FaultKind::kSignalDelay);
  EXPECT_EQ(delay.extra_delay, 5 * kMillisecond);

  const auto crash = FaultSpec::parse("node_crash node=1 at_s=120");
  EXPECT_EQ(crash.kind, FaultKind::kNodeCrash);
  EXPECT_EQ(crash.node, 1);
  EXPECT_EQ(crash.start, 120 * kSecond);

  const auto persistent = FaultSpec::parse("disk_persistent start_s=5");
  EXPECT_EQ(persistent.kind, FaultKind::kDiskPersistent);
  EXPECT_DOUBLE_EQ(persistent.probability, 1.0);
}

TEST(FaultSpec, ToStringRoundTrips) {
  for (const char* text :
       {"disk_transient node=0 start_s=10 end_s=60 p=0.05",
        "disk_slow start_s=30 end_s=90 slow=4", "signal_drop node=1 p=0.2",
        "signal_delay delay_ms=5", "node_crash node=1 at_s=120"}) {
    const auto spec = FaultSpec::parse(text);
    const auto reparsed = FaultSpec::parse(spec.to_string());
    EXPECT_EQ(reparsed.kind, spec.kind) << text;
    EXPECT_EQ(reparsed.node, spec.node) << text;
    EXPECT_EQ(reparsed.start, spec.start) << text;
    EXPECT_EQ(reparsed.end, spec.end) << text;
    EXPECT_DOUBLE_EQ(reparsed.probability, spec.probability) << text;
    EXPECT_DOUBLE_EQ(reparsed.slow_factor, spec.slow_factor) << text;
    EXPECT_EQ(reparsed.extra_delay, spec.extra_delay) << text;
  }
}

TEST(FaultSpec, RejectsMalformedInput) {
  EXPECT_THROW((void)FaultSpec::parse(""), std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("meteor_strike"), std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("disk_transient p"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("disk_transient p=1.5"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("disk_transient p=abc"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("disk_transient frequency=2"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("disk_transient start_s=60 end_s=10"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("disk_slow slow=0.5"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("disk_slow"), std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("signal_delay"), std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("signal_delay delay_ms=-1"),
               std::invalid_argument);
}

TEST(FaultSpec, AppliesChecksNodeAndWindow) {
  const auto spec =
      FaultSpec::parse("disk_transient node=1 start_s=10 end_s=20");
  EXPECT_FALSE(spec.applies(0, 15 * kSecond));  // wrong node
  EXPECT_FALSE(spec.applies(1, 5 * kSecond));   // before the window
  EXPECT_TRUE(spec.applies(1, 10 * kSecond));   // [start, end)
  EXPECT_TRUE(spec.applies(1, 19 * kSecond));
  EXPECT_FALSE(spec.applies(1, 20 * kSecond));  // end is exclusive

  const auto all = FaultSpec::parse("disk_transient start_s=10 end_s=20");
  EXPECT_TRUE(all.applies(0, 15 * kSecond));
  EXPECT_TRUE(all.applies(7, 15 * kSecond));
}

TEST(FaultPlan, DisturbsControlPlaneDetection) {
  FaultPlan disk_only;
  disk_only.add(FaultSpec::parse("disk_transient p=0.1"));
  disk_only.add(FaultSpec::parse("disk_slow slow=2"));
  EXPECT_FALSE(disk_only.disturbs_control_plane());

  FaultPlan drops = disk_only;
  drops.add(FaultSpec::parse("signal_drop p=0.1"));
  EXPECT_TRUE(drops.disturbs_control_plane());

  FaultPlan crash;
  crash.add(FaultSpec::parse("node_crash node=0 at_s=1"));
  EXPECT_TRUE(crash.disturbs_control_plane());
}

TEST(FaultPlan, RandomIsDeterministicBoundedAndQuiescible) {
  const SimTime horizon = 600 * kSecond;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const FaultPlan plan = FaultPlan::random(seed, 4, horizon);
    EXPECT_EQ(plan.to_string(), FaultPlan::random(seed, 4, horizon).to_string());
    ASSERT_FALSE(plan.empty());
    int crashes = 0;
    for (const auto& spec : plan.specs) {
      EXPECT_GE(spec.node, -1);
      EXPECT_LT(spec.node, 4);
      EXPECT_GE(spec.probability, 0.0);
      EXPECT_LE(spec.probability, 1.0);
      EXPECT_GE(spec.slow_factor, 1.0);
      if (spec.kind == FaultKind::kNodeCrash) {
        ++crashes;
      } else {
        // Every window closes before the horizon so the run can quiesce.
        EXPECT_LT(spec.end, horizon);
      }
    }
    EXPECT_LE(crashes, 1);  // at least one node always survives
  }
  // Single-node clusters never get a crash (nothing would survive).
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    EXPECT_FALSE(FaultPlan::random(seed, 1, horizon).has(FaultKind::kNodeCrash));
  }
}

// ---------------------------------------------------------------------------
// FaultInjector + Disk

DiskParams small_disk() {
  DiskParams p;
  p.num_blocks = 100000;
  return p;
}

TEST(FaultInjector, InjectsDiskErrorsInsideWindowOnly) {
  Simulator sim;
  FaultPlan plan;
  plan.add(FaultSpec::parse("disk_transient start_s=10 end_s=20 p=1"));
  FaultInjector injector(sim, plan);
  Disk disk(sim, small_disk());
  disk.set_fault_injector(&injector, /*node=*/0);

  int errors = 0, successes = 0;
  auto submit = [&] {
    disk.submit({.start = 0, .nblocks = 1, .write = false,
                 .priority = IoPriority::kForeground,
                 .on_complete = [&](IoResult result) {
                   (result.ok ? successes : errors)++;
                 }});
  };
  submit();                                   // before the window: fine
  (void)sim.at(15 * kSecond, submit);         // inside: always fails
  (void)sim.at(25 * kSecond, submit);         // after: fine again
  sim.run();
  EXPECT_EQ(errors, 1);
  EXPECT_EQ(successes, 2);
  EXPECT_EQ(disk.stats().io_errors, 1u);
  EXPECT_EQ(injector.stats().disk_errors_injected, 1u);
  EXPECT_FALSE(disk.failed());  // transient errors don't kill the device
}

TEST(FaultInjector, TargetsOnlyTheNamedNode) {
  Simulator sim;
  FaultPlan plan;
  plan.add(FaultSpec::parse("disk_transient node=1 p=1"));
  FaultInjector injector(sim, plan);
  Disk disk0(sim, small_disk());
  Disk disk1(sim, small_disk());
  disk0.set_fault_injector(&injector, 0);
  disk1.set_fault_injector(&injector, 1);

  bool ok0 = false, ok1 = true;
  disk0.submit({.start = 0, .nblocks = 1, .write = false,
                .priority = IoPriority::kForeground,
                .on_complete = [&](IoResult r) { ok0 = r.ok; }});
  disk1.submit({.start = 0, .nblocks = 1, .write = false,
                .priority = IoPriority::kForeground,
                .on_complete = [&](IoResult r) { ok1 = r.ok; }});
  sim.run();
  EXPECT_TRUE(ok0);
  EXPECT_FALSE(ok1);
}

TEST(FaultInjector, FailSlowStretchesServiceTime) {
  auto timed_request = [](double slow) {
    Simulator sim;
    FaultPlan plan;
    if (slow > 1.0) {
      plan.add(FaultSpec::parse("disk_slow slow=" + std::to_string(slow)));
    }
    auto injector =
        plan.empty() ? nullptr : std::make_unique<FaultInjector>(sim, plan);
    Disk disk(sim, small_disk());
    if (injector) disk.set_fault_injector(injector.get(), 0);
    SimTime done = -1;
    disk.submit({.start = 5000, .nblocks = 8, .write = false,
                 .priority = IoPriority::kForeground,
                 .on_complete = [&](IoResult r) {
                   EXPECT_TRUE(r.ok);
                   done = sim.now();
                 }});
    sim.run();
    return done;
  };
  const SimTime base = timed_request(1.0);
  const SimTime slowed = timed_request(4.0);
  ASSERT_GT(base, 0);
  EXPECT_NEAR(static_cast<double>(slowed), 4.0 * static_cast<double>(base),
              0.01 * static_cast<double>(slowed));
}

TEST(FaultInjector, SignalOutcomesFollowThePlan) {
  Simulator sim;
  FaultPlan plan;
  plan.add(FaultSpec::parse("signal_drop node=0 p=1"));
  plan.add(FaultSpec::parse("signal_delay node=1 delay_ms=5"));
  FaultInjector injector(sim, plan);

  const auto on0 = injector.on_control_signal(0);
  EXPECT_TRUE(on0.drop);
  const auto on1 = injector.on_control_signal(1);
  EXPECT_FALSE(on1.drop);
  EXPECT_EQ(on1.extra_delay, 5 * kMillisecond);
  const auto on2 = injector.on_control_signal(2);
  EXPECT_FALSE(on2.drop);
  EXPECT_EQ(on2.extra_delay, 0);
  EXPECT_EQ(injector.stats().signals_dropped, 1u);
  EXPECT_EQ(injector.stats().signals_delayed, 1u);
}

TEST(FaultInjector, SchedulesCrashesAtPlannedTimes) {
  Simulator sim;
  FaultPlan plan;
  plan.add(FaultSpec::parse("node_crash node=1 at_s=3"));
  FaultInjector injector(sim, plan);
  std::vector<std::pair<int, SimTime>> crashes;
  injector.schedule_crashes(
      [&](int node) { crashes.emplace_back(node, sim.now()); });
  sim.run();
  ASSERT_EQ(crashes.size(), 1u);
  EXPECT_EQ(crashes[0].first, 1);
  EXPECT_EQ(crashes[0].second, 3 * kSecond);
  EXPECT_EQ(injector.stats().node_crashes, 1u);
}

TEST(Disk, FailDeviceDrainsQueueWithErrors) {
  Simulator sim;
  Disk disk(sim, small_disk());
  int errors = 0;
  auto count_errors = [&](IoResult r) {
    if (!r.ok) ++errors;
  };
  for (int i = 0; i < 4; ++i) {
    disk.submit({.start = i * 1000, .nblocks = 1, .write = false,
                 .priority = IoPriority::kForeground,
                 .on_complete = count_errors});
  }
  disk.fail_device();
  EXPECT_TRUE(disk.failed());
  // Requests submitted after the failure also complete (in error).
  disk.submit({.start = 9000, .nblocks = 1, .write = true,
               .priority = IoPriority::kForeground,
               .on_complete = count_errors});
  sim.run();
  // The in-service request may complete either way; everything queued or
  // submitted afterwards must error out.
  EXPECT_GE(errors, 4);
  EXPECT_EQ(sim.pending_events(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end recovery through the harness

ExperimentConfig tiny_config() {
  ExperimentConfig config;
  config.app = NpbApp::kLU;
  config.cls = NpbClass::kW;
  config.nodes = 1;
  config.instances = 2;
  config.node_memory_mb = 64.0;
  config.usable_memory_mb = 22.0;
  config.quantum = 4 * kSecond;
  config.iterations_scale = 0.2;
  return config;
}

TEST(FaultRecovery, TransientDiskErrorsAreRetriedAndTheRunCompletes) {
  auto config = tiny_config();
  // The window covers the whole paging phase; paging I/O starts ~4 s in,
  // once both instances are faulting against 22 MB of usable memory.
  config.faults.add(FaultSpec::parse("disk_transient start_s=2 end_s=40 p=0.2"));
  const RunOutcome outcome = run_gang(config);
  ASSERT_GT(outcome.makespan, 0) << "run must survive transient errors";
  EXPECT_EQ(outcome.jobs_failed, 0);
  EXPECT_GT(outcome.io_errors, 0u);
  EXPECT_GT(outcome.io_retries, 0u);
  EXPECT_EQ(outcome.pages_unrecoverable, 0u);
}

TEST(FaultRecovery, FaultFreeRunsAreBitIdenticalWithFaultCodeCompiledIn) {
  const RunOutcome a = run_gang(tiny_config());
  const RunOutcome b = run_gang(tiny_config());
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.pages_swapped_in, b.pages_swapped_in);
  EXPECT_EQ(a.pages_swapped_out, b.pages_swapped_out);
  EXPECT_EQ(a.major_faults, b.major_faults);
  EXPECT_EQ(a.io_errors, 0u);
  EXPECT_EQ(a.io_retries, 0u);
  EXPECT_EQ(a.signal_retransmits, 0u);
}

TEST(FaultRecovery, SameSeedSameFaultsIsReproducible) {
  auto config = tiny_config();
  config.faults.add(FaultSpec::parse("disk_transient start_s=1 end_s=5 p=0.2"));
  config.faults.add(FaultSpec::parse("signal_drop p=0.3"));
  const RunOutcome a = run_gang(config);
  const RunOutcome b = run_gang(config);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.io_errors, b.io_errors);
  EXPECT_EQ(a.io_retries, b.io_retries);
  EXPECT_EQ(a.signal_retransmits, b.signal_retransmits);
  EXPECT_EQ(a.pages_swapped_in, b.pages_swapped_in);
}

TEST(FaultRecovery, PersistentDiskFailureFailsJobsCleanly) {
  auto config = tiny_config();
  // Fail the disk mid-run, once both jobs have pages out on swap. Swap-in
  // reads then fail permanently: the retry ladder must exhaust and the jobs
  // must be aborted cleanly — marked failed, with the lost pages counted —
  // rather than hanging (we got here before the 100 h horizon).
  config.faults.add(FaultSpec::parse("disk_persistent start_s=30"));
  const RunOutcome outcome = run_gang(config);
  EXPECT_EQ(outcome.jobs_failed, 2);
  EXPECT_GT(outcome.pages_unrecoverable, 0u);
  EXPECT_GT(outcome.io_retries, 0u);  // transient-style retries were tried
  for (const auto& job : outcome.jobs) EXPECT_TRUE(job.failed);
}

TEST(FaultRecovery, WatchdogRecoversFromDroppedSwitchSignals) {
  auto config = tiny_config();
  config.faults.add(FaultSpec::parse("signal_drop p=0.5"));
  const RunOutcome outcome = run_gang(config);  // watchdog auto-armed
  ASSERT_GT(outcome.makespan, 0) << "dropped signals must not wedge the gang";
  EXPECT_EQ(outcome.jobs_failed, 0);
  EXPECT_GT(outcome.signal_retransmits, 0u);
}

TEST(FaultRecovery, OutOfSwapFailsJobsInsteadOfHanging) {
  auto config = tiny_config();
  // Shrink wired-down memory so a deliberately tiny swap passes validation,
  // then give the two instances far less swap than their eviction traffic
  // needs. The first fault that cannot be served once the device fills must
  // abort its job with a diagnosable out-of-swap count — not spin forever —
  // and the surviving job must then run to completion.
  config.node_memory_mb = 24.0;  // wired = 2 MB
  config.swap_mb = 4.0;
  const RunOutcome outcome = run_gang(config);
  ASSERT_GT(outcome.makespan, 0) << "survivor must finish after the abort";
  EXPECT_GE(outcome.jobs_failed, 1);
  EXPECT_GT(outcome.pages_unrecoverable, 0u);
}

// ---------------------------------------------------------------------------
// Node crashes and the gang scheduler

NodeParams gang_node_params() {
  NodeParams n;
  n.vmm.total_frames = 512;
  n.vmm.freepages_min = 8;
  n.vmm.freepages_low = 12;
  n.vmm.freepages_high = 16;
  n.disk.num_blocks = 1 << 16;
  return n;
}

/// Add a sweep job placed on the given nodes only.
template <typename Scheduler>
Job& add_job(Cluster& cluster, Scheduler& scheduler,
             std::vector<std::unique_ptr<Process>>& procs,
             const std::string& name, const std::vector<int>& nodes,
             std::int64_t pages, std::int64_t iterations) {
  Job& job = scheduler.create_job(name);
  for (int n : nodes) {
    SweepOptions options;
    options.pages = pages;
    options.iterations = iterations;
    options.compute_per_touch = 20 * kMicrosecond;
    const Pid pid = cluster.node(n).vmm().create_process(pages);
    procs.push_back(std::make_unique<Process>(name + ":" + std::to_string(n),
                                              pid,
                                              make_sweep_program(options)));
    cluster.node(n).cpu().attach(*procs.back());
    job.add_process(n, *procs.back());
  }
  return job;
}

TEST(NodeFailure, SurvivingNodeJobsCompleteAfterACrash) {
  FaultPlan plan;
  plan.add(FaultSpec::parse("node_crash node=1 at_s=2"));
  Cluster cluster(2, gang_node_params(), NetParams{}, /*seed=*/1, plan);
  GangParams params;
  params.quantum = kSecond;
  GangScheduler scheduler(cluster, params);
  std::vector<std::unique_ptr<Process>> procs;
  add_job(cluster, scheduler, procs, "survivor", {0}, 128, 3000);
  add_job(cluster, scheduler, procs, "casualty", {1}, 128, 3000);
  scheduler.start();
  const bool finished = cluster.sim().run_until(
      [&] { return scheduler.all_finished(); }, 10 * kMinute);
  ASSERT_TRUE(finished);

  EXPECT_TRUE(cluster.node_alive(0));
  EXPECT_FALSE(cluster.node_alive(1));
  EXPECT_EQ(scheduler.stats().nodes_failed, 1);
  EXPECT_EQ(scheduler.stats().jobs_failed, 1);

  const Job& survivor = *scheduler.jobs()[0];
  const Job& casualty = *scheduler.jobs()[1];
  EXPECT_FALSE(survivor.failed());
  EXPECT_GT(survivor.finished_at(), 0);
  EXPECT_TRUE(casualty.failed());
  EXPECT_EQ(casualty.failed_at(), 2 * kSecond);

  // The surviving node ended the run with all resources returned.
  auto& vmm = cluster.node(0).vmm();
  EXPECT_EQ(vmm.free_frames(), vmm.frames().usable_frames());
  EXPECT_EQ(cluster.node(0).swap().used_slots(), 0);
}

TEST(NodeFailure, CrashMidRotationKeepsTheOtherJobsSwitching) {
  FaultPlan plan;
  plan.add(FaultSpec::parse("node_crash node=1 at_s=3"));
  Cluster cluster(2, gang_node_params(), NetParams{}, /*seed=*/1, plan);
  GangParams params;
  params.quantum = kSecond;
  GangScheduler scheduler(cluster, params);
  std::vector<std::unique_ptr<Process>> procs;
  // Two full-width jobs die with the node; two single-node jobs survive and
  // must keep timesharing node 0 after the crash.
  add_job(cluster, scheduler, procs, "wide-a", {0, 1}, 96, 4000);
  add_job(cluster, scheduler, procs, "wide-b", {0, 1}, 96, 4000);
  add_job(cluster, scheduler, procs, "solo-a", {0}, 96, 2000);
  add_job(cluster, scheduler, procs, "solo-b", {0}, 96, 2000);
  scheduler.start();
  const bool finished = cluster.sim().run_until(
      [&] { return scheduler.all_finished(); }, 30 * kMinute);
  ASSERT_TRUE(finished);
  EXPECT_EQ(scheduler.stats().nodes_failed, 1);
  EXPECT_EQ(scheduler.stats().jobs_failed, 2);
  for (const auto& job : scheduler.jobs()) {
    if (job->name().rfind("wide", 0) == 0) {
      EXPECT_TRUE(job->failed()) << job->name();
    } else {
      EXPECT_FALSE(job->failed()) << job->name();
      EXPECT_GT(job->finished_at(), 3 * kSecond) << job->name();
    }
  }
}

TEST(NodeFailure, PreStartCrashFailsItsJobsImmediately) {
  FaultPlan plan;
  plan.add(FaultSpec::parse("node_crash node=0 at_s=0"));
  Cluster cluster(2, gang_node_params(), NetParams{}, /*seed=*/1, plan);
  GangParams params;
  GangScheduler scheduler(cluster, params);
  std::vector<std::unique_ptr<Process>> procs;
  add_job(cluster, scheduler, procs, "doomed", {0}, 64, 100);
  add_job(cluster, scheduler, procs, "fine", {1}, 64, 100);
  // Let the t=0 crash fire before the scheduler starts.
  (void)cluster.sim().at(kMillisecond, [&] { scheduler.start(); });
  const bool finished = cluster.sim().run_until(
      [&] { return scheduler.all_finished(); }, 10 * kMinute);
  ASSERT_TRUE(finished);
  EXPECT_TRUE(scheduler.jobs()[0]->failed());
  EXPECT_FALSE(scheduler.jobs()[1]->failed());
}

// ---------------------------------------------------------------------------
// Config validation + scenario plumbing

TEST(ConfigValidate, RejectsNonsenseWithSpecificErrors) {
  auto expect_throw = [](auto mutate) {
    auto config = tiny_config();
    mutate(config);
    EXPECT_THROW(config.validate(), std::invalid_argument);
  };
  expect_throw([](auto& c) { c.nodes = 0; });
  expect_throw([](auto& c) { c.instances = 0; });
  expect_throw([](auto& c) { c.quantum = -kSecond; });
  expect_throw([](auto& c) { c.quantum = 0; });
  expect_throw([](auto& c) { c.quantum_override = -kSecond; });
  expect_throw([](auto& c) { c.bg_start_frac = -0.1; });
  expect_throw([](auto& c) { c.bg_start_frac = 1.5; });
  expect_throw([](auto& c) { c.node_memory_mb = 0.0; });
  expect_throw([](auto& c) { c.usable_memory_mb = 0.0; });
  expect_throw([](auto& c) { c.usable_memory_mb = c.node_memory_mb + 1.0; });
  expect_throw([](auto& c) { c.usable_memory_mb = 1.0; });  // < watermarks
  expect_throw([](auto& c) { c.page_cluster = 0; });
  expect_throw([](auto& c) { c.iterations_scale = 0.0; });
  expect_throw([](auto& c) { c.horizon = 0; });
  expect_throw([](auto& c) { c.swap_mb = -1.0; });
  expect_throw([](auto& c) { c.swap_mb = 1.0; });  // smaller than wired memory
  EXPECT_NO_THROW(tiny_config().validate());
}

TEST(ConfigValidate, RunnersRejectInvalidConfigs) {
  auto config = tiny_config();
  config.quantum = -kSecond;
  EXPECT_THROW((void)run_gang(config), std::invalid_argument);
  config.batch_mode = true;
  EXPECT_THROW((void)run_batch(config), std::invalid_argument);
}

TEST(Scenario, FaultWatchdogAndSwapKeysApply) {
  const auto runs = parse_scenario(
      "[run]\n"
      "label = chaos\n"
      "fault = disk_transient start_s=10 end_s=60 p=0.05\n"
      "fault = node_crash node=0 at_s=120\n"
      "watchdog_ms = 25\n"
      "swap_mb = 96\n");
  ASSERT_EQ(runs.size(), 1u);
  const auto& config = runs[0];
  ASSERT_EQ(config.faults.specs.size(), 2u);
  EXPECT_EQ(config.faults.specs[0].kind, FaultKind::kDiskTransient);
  EXPECT_EQ(config.faults.specs[1].kind, FaultKind::kNodeCrash);
  EXPECT_TRUE(config.faults.disturbs_control_plane());
  EXPECT_EQ(config.switch_watchdog, 25 * kMillisecond);
  EXPECT_DOUBLE_EQ(config.swap_mb, 96.0);
}

TEST(Scenario, BadFaultLineReportsLineNumber) {
  try {
    (void)parse_scenario("[run]\nfault = warp_core_breach\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace apsim
