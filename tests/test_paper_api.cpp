// Integration tests that exercise the paper's kernel API exactly as its
// Figure 5 architecture describes: a user-level scheduler issuing
// stop/cont signals around adaptive_page_out / adaptive_page_in /
// start_bgwrite / stop_bgwrite, across full switch cycles — and the paper's
// headline claims at miniature scale (false-eviction elimination, switch
// compaction, switch-time reduction).

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "core/adaptive_pager.hpp"
#include "gang/gang_scheduler.hpp"
#include "workloads/generator.hpp"

namespace apsim {
namespace {

struct PaperApiFixture : ::testing::Test {
  static NodeParams node_params() {
    NodeParams n;
    n.vmm.total_frames = mb_to_pages(20.0);  // 5120 frames
    n.vmm.freepages_min = 32;
    n.vmm.freepages_low = 64;
    n.vmm.freepages_high = 96;
    n.disk.num_blocks = mb_to_pages(256.0);
    return n;
  }

  PaperApiFixture() : cluster(1, node_params()) {}

  std::unique_ptr<Process> make_job(const std::string& name,
                                    std::int64_t iterations) {
    SweepOptions options;
    options.pages = mb_to_pages(14.0);  // two of these overcommit 20 MB
    options.iterations = iterations;
    options.compute_per_touch = 15 * kMicrosecond;
    const Pid pid = cluster.node(0).vmm().create_process(options.pages);
    auto proc =
        std::make_unique<Process>(name, pid, make_sweep_program(options));
    cluster.node(0).cpu().attach(*proc);
    return proc;
  }

  Cluster cluster;
};

TEST_F(PaperApiFixture, FullSwitchCycleThroughTheApi) {
  AdaptivePagerParams pparams;
  pparams.policy = PolicySet::all();
  AdaptivePager pager(cluster.node(0), pparams);
  auto& cpu = cluster.node(0).cpu();
  auto& vmm = cluster.node(0).vmm();
  auto& sim = cluster.sim();

  auto a = make_job("A", 2000);
  auto b = make_job("B", 2000);
  pager.register_process(a->pid());
  pager.register_process(b->pid());

  // Quantum 1: A runs; B stopped. (scheduler: SIGCONT A)
  pager.on_quantum_start(a->pid());
  cpu.cont_process(*a);
  sim.run(3 * kSecond);
  ASSERT_EQ(a->state(), ProcState::kRunning);
  const auto a_resident = vmm.space(a->pid()).resident_pages();
  EXPECT_GT(a_resident, mb_to_pages(12.0));

  // Near quantum end: start background writing for the running job.
  pager.start_bgwrite(a->pid());
  sim.run(sim.now() + kSecond);
  pager.stop_bgwrite();
  EXPECT_GT(pager.stats().bg_pages_written, 0u);

  // Switch A -> B: the paper's exact sequence.
  pager.on_quantum_end(a->pid());
  cpu.stop_process(*a);
  pager.adaptive_page_out(a->pid(), b->pid());
  pager.on_quantum_start(b->pid());
  pager.adaptive_page_in(b->pid());  // no record yet: no-op
  cpu.cont_process(*b);
  sim.run(sim.now() + 5 * kSecond);
  EXPECT_EQ(a->state(), ProcState::kStopped);
  EXPECT_EQ(b->state(), ProcState::kRunning);
  // B's working set displaced most of A.
  EXPECT_GT(vmm.space(b->pid()).resident_pages(), mb_to_pages(12.0));
  EXPECT_LT(vmm.space(a->pid()).resident_pages(), a_resident);
  // A's flushed pages were recorded for replay.
  EXPECT_GT(pager.recorder(a->pid()).pages(), 0);

  // Switch B -> A: the recorded set is replayed.
  const auto recorded = pager.recorder(a->pid()).pages();
  pager.on_quantum_end(b->pid());
  cpu.stop_process(*b);
  pager.adaptive_page_out(b->pid(), a->pid());
  pager.on_quantum_start(a->pid());
  pager.adaptive_page_in(a->pid());
  cpu.cont_process(*a);
  sim.run(sim.now() + 5 * kSecond);
  EXPECT_TRUE(pager.recorder(a->pid()).empty());
  EXPECT_EQ(pager.stats().pages_replayed,
            static_cast<std::uint64_t>(recorded));
  EXPECT_EQ(a->state(), ProcState::kRunning);
}

TEST_F(PaperApiFixture, SelectivePageOutEliminatesFalseEvictions) {
  // The paper's core pathology claim, at miniature scale: run the same
  // two-job rotation under orig and under `so`, and compare per-space
  // false-eviction counters.
  auto run = [this](PolicySet policy) {
    Cluster local(1, node_params());
    GangParams params;
    params.quantum = 2 * kSecond;
    params.pager.policy = policy;
    GangScheduler scheduler(local, params);
    std::vector<std::unique_ptr<Process>> procs;
    for (int j = 0; j < 2; ++j) {
      Job& job = scheduler.create_job("j" + std::to_string(j));
      SweepOptions options;
      options.pages = mb_to_pages(14.0);
      options.iterations = 1200;
      options.compute_per_touch = 15 * kMicrosecond;
      const Pid pid = local.node(0).vmm().create_process(options.pages);
      procs.push_back(std::make_unique<Process>("j" + std::to_string(j), pid,
                                                make_sweep_program(options)));
      local.node(0).cpu().attach(*procs.back());
      job.add_process(0, *procs.back());
    }
    scheduler.start();
    EXPECT_TRUE(local.sim().run_until(
        [&] { return scheduler.all_finished(); }, 4 * 3600 * kSecond));
    std::uint64_t false_evictions = 0;
    for (Pid pid : local.node(0).vmm().pids()) {
      false_evictions += local.node(0).vmm().space(pid).stats().false_evictions;
    }
    return false_evictions;
  };
  const auto orig = run(PolicySet::original());
  const auto selective = run(PolicySet::parse("so"));
  EXPECT_GT(orig, 0u);
  EXPECT_LT(selective, orig / 4) << "selective page-out must eliminate most "
                                    "false evictions";
}

TEST_F(PaperApiFixture, AdaptiveSwitchIsFasterEndToEnd) {
  // Headline: job switching time drops sharply. Proxy: incoming job's
  // fault-wait accumulated across the run.
  auto run = [this](PolicySet policy) {
    Cluster local(1, node_params());
    GangParams params;
    params.quantum = 2 * kSecond;
    params.pager.policy = policy;
    GangScheduler scheduler(local, params);
    std::vector<std::unique_ptr<Process>> procs;
    for (int j = 0; j < 2; ++j) {
      Job& job = scheduler.create_job("j" + std::to_string(j));
      SweepOptions options;
      options.pages = mb_to_pages(14.0);
      options.iterations = 1200;
      options.compute_per_touch = 15 * kMicrosecond;
      const Pid pid = local.node(0).vmm().create_process(options.pages);
      procs.push_back(std::make_unique<Process>("j" + std::to_string(j), pid,
                                                make_sweep_program(options)));
      local.node(0).cpu().attach(*procs.back());
      job.add_process(0, *procs.back());
    }
    scheduler.start();
    EXPECT_TRUE(local.sim().run_until(
        [&] { return scheduler.all_finished(); }, 4 * 3600 * kSecond));
    SimDuration fault_wait = 0;
    for (const auto& p : procs) fault_wait += p->stats().fault_wait;
    return fault_wait;
  };
  const auto orig = run(PolicySet::original());
  const auto adaptive = run(PolicySet::all());
  EXPECT_LT(adaptive, orig / 2)
      << "adaptive paging must at least halve total fault-stall time";
}

}  // namespace
}  // namespace apsim
